// Package bench regenerates every figure of the paper's evaluation as a
// Go benchmark. Each benchmark runs a scaled version of the corresponding
// experiment (full paper-scale runs live behind cmd/dynabench) and reports
// the paper's headline quantities as custom benchmark metrics, so
// `go test -bench=. -benchmem` prints a machine-readable reproduction of
// the evaluation. EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/geo"
	"dynatune/internal/netsim"
	"dynatune/internal/workload"
)

func stable100() netsim.Profile {
	return netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond})
}

// BenchmarkFig4ElectionPerformance reproduces Fig. 4: detection and OTS
// time CDFs over repeated leader failures at RTT 100 ms / 0 % loss,
// Raft vs Dynatune. Paper means: detection 1205→237 ms (−80 %), OTS
// 1449→797 ms (−45 %).
func BenchmarkFig4ElectionPerformance(b *testing.B) {
	const trials = 300
	run := func(b *testing.B, v cluster.Variant) {
		var det, ots float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 42 + int64(i), Variant: v, Profile: stable100(),
			}, trials, 4*time.Second)
			d, o := res.Summary()
			det, ots = d.Mean, o.Mean
		}
		b.ReportMetric(det, "detect-ms")
		b.ReportMetric(ots, "ots-ms")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
}

// BenchmarkFig5PeakThroughput reproduces Fig. 5: open-loop throughput–
// latency ramp without failures. Paper peaks: Raft 13678 req/s, Dynatune
// 12800 req/s (−6.4 %).
func BenchmarkFig5PeakThroughput(b *testing.B) {
	ramp := workload.PaperRamp(18000)
	ramp.Poisson = true
	run := func(b *testing.B, v cluster.Variant) {
		var peak, knee float64
		for i := 0; i < b.N; i++ {
			pts := cluster.RunThroughputRamp(cluster.Options{
				N: 5, Seed: 21 + int64(i), Variant: v, Profile: stable100(),
			}, ramp, 1)
			peak = cluster.PeakThroughput(pts)
			for _, p := range pts {
				if p.LatencyMs < 400 && p.ThroughputRS > knee {
					knee = p.ThroughputRS
				}
			}
		}
		b.ReportMetric(peak, "peak-req/s")
		b.ReportMetric(knee, "low-lat-req/s")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
}

// BenchmarkFig6aGradualRTT reproduces Fig. 6a: gradual RTT 50→200→50 ms in
// 10 ms steps held 1 min each (31 min horizon). Reported: total OTS
// seconds and mid-run third-smallest randomizedTimeout. Paper: Dynatune
// and Raft see no OTS; Raft-Low suffers ≈15 s and later ≈10 min of OTS.
func BenchmarkFig6aGradualRTT(b *testing.B) {
	prof := netsim.GradualRTTRamp(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 200*time.Millisecond, 10*time.Millisecond, time.Minute)
	horizon := 31 * time.Minute
	run := func(b *testing.B, v cluster.Variant) {
		var otsSec, randMid float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunFluctuation(cluster.Options{
				N: 5, Seed: 7 + int64(i), Variant: v, Profile: prof,
			}, horizon, 5*time.Second)
			otsSec = res.OTS.Total().Seconds()
			randMid = res.RandTimeout3rdMs.MeanBetween(horizon*2/5, horizon*3/5)
		}
		b.ReportMetric(otsSec, "ots-s")
		b.ReportMetric(randMid, "randTO-ms")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Raft-Low", func(b *testing.B) { run(b, cluster.VariantRaftLow()) })
}

// BenchmarkFig6bRadicalRTT reproduces Fig. 6b: abrupt RTT 50→500→50 ms
// (1 min each). Paper: Dynatune false-detects but aborts at pre-vote (no
// OTS); Raft rides it out; Raft-Low loses the whole high-RTT minute.
func BenchmarkFig6bRadicalRTT(b *testing.B) {
	prof := netsim.RadicalRTTSpike(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 500*time.Millisecond, time.Minute)
	horizon := 3 * time.Minute
	run := func(b *testing.B, v cluster.Variant) {
		var otsSec, reverts, elections float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunFluctuation(cluster.Options{
				N: 5, Seed: 9 + int64(i), Variant: v, Profile: prof,
			}, horizon, 5*time.Second)
			otsSec = res.OTS.Total().Seconds()
			reverts = float64(res.Reverts)
			elections = float64(res.Elections)
		}
		b.ReportMetric(otsSec, "ots-s")
		b.ReportMetric(reverts, "reverts")
		b.ReportMetric(elections, "elections")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Raft-Low", func(b *testing.B) { run(b, cluster.VariantRaftLow()) })
}

// lossSweepRun powers Fig. 7a/7b: RTT 200 ms, loss 0→30→0 % in 3-min
// holds, Dynatune vs Fix-K(10) at N ∈ {5, 17, 65}.
func lossSweepRun(b *testing.B, n int, v cluster.Variant) cluster.SeriesResult {
	prof := netsim.LossSweep(netsim.Params{RTT: 200 * time.Millisecond, Jitter: 2 * time.Millisecond}, 3*time.Minute)
	var res cluster.SeriesResult
	for i := 0; i < b.N; i++ {
		res = cluster.RunFluctuation(cluster.Options{
			N: n, Seed: 3 + int64(i), Variant: v, Profile: prof,
		}, 39*time.Minute, 5*time.Second)
	}
	return res
}

// BenchmarkFig7aHeartbeatInterval reproduces Fig. 7a: the tuned h over the
// loss sweep. Paper: Dynatune lowers h as loss grows (≈Et at 0 %, tens of
// ms at 30 %) and restores it on the way down; Fix-K stays ≈Et/10.
func BenchmarkFig7aHeartbeatInterval(b *testing.B) {
	for _, v := range []cluster.Variant{cluster.VariantDynatune(dynatune.Options{}), cluster.VariantFixK(10)} {
		v := v
		b.Run(v.Name+"/N=5", func(b *testing.B) {
			res := lossSweepRun(b, 5, v)
			b.ReportMetric(res.LeaderHMs.MeanBetween(1*time.Minute, 3*time.Minute), "h0loss-ms")
			b.ReportMetric(res.LeaderHMs.MeanBetween(19*time.Minute, 21*time.Minute), "h30loss-ms")
			b.ReportMetric(float64(res.Elections), "elections")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkFig7bCPUUtilization reproduces Fig. 7b: leader/follower CPU
// under the loss sweep. Paper: the Fix-K leader exceeds 100 % of its
// 2-core allocation at N=65; Dynatune uses less than half, with a peak
// tracking the loss rate.
func BenchmarkFig7bCPUUtilization(b *testing.B) {
	for _, n := range []int{5, 17, 65} {
		for _, v := range []cluster.Variant{cluster.VariantDynatune(dynatune.Options{}), cluster.VariantFixK(10)} {
			n, v := n, v
			b.Run(v.Name+"/N="+itoa(n), func(b *testing.B) {
				res := lossSweepRun(b, n, v)
				b.ReportMetric(res.LeaderCPU.MeanBetween(1*time.Minute, 3*time.Minute), "leadCPU0-%")
				b.ReportMetric(res.LeaderCPU.MeanBetween(19*time.Minute, 21*time.Minute), "leadCPU30-%")
				b.ReportMetric(res.FollowerCPU.MeanBetween(19*time.Minute, 21*time.Minute), "folCPU30-%")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}

// BenchmarkFig8GeoDistributed reproduces Fig. 8: the five-region AWS
// deployment (Tokyo, London, California, Sydney, São Paulo). Paper means:
// detection 1137→213 ms (−81 %), OTS 1718→1145 ms (−33 %).
func BenchmarkFig8GeoDistributed(b *testing.B) {
	const trials = 300
	run := func(b *testing.B, v cluster.Variant) {
		var det, ots float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 11 + int64(i), Variant: v,
				Regions: geo.Regions, GeoJitterFrac: 0.05, GeoLoss: 0.001,
			}, trials, 5*time.Second)
			d, o := res.Summary()
			det, ots = d.Mean, o.Mean
		}
		b.ReportMetric(det, "detect-ms")
		b.ReportMetric(ots, "ots-ms")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
}

// BenchmarkAblationSafetyFactor sweeps the safety factor s (§III-D1
// design choice): smaller s detects faster but risks false detections
// under jitter.
func BenchmarkAblationSafetyFactor(b *testing.B) {
	prof := netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 8 * time.Millisecond})
	for _, s := range []float64{1, 2, 3, 4} {
		s := s
		b.Run("s="+ftoa(s), func(b *testing.B) {
			var det float64
			var falseTO float64
			for i := 0; i < b.N; i++ {
				res := cluster.RunElectionTrials(cluster.Options{
					N: 5, Seed: 13 + int64(i),
					Variant: cluster.VariantDynatune(dynatune.Options{SafetyFactor: s}),
					Profile: prof,
				}, 100, 4*time.Second)
				d, _ := res.Summary()
				det = d.Mean
				falseTO = float64(res.FailedTrials)
			}
			b.ReportMetric(det, "detect-ms")
			b.ReportMetric(falseTO, "failed-trials")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationArrivalProbability sweeps x (§III-D2): lower x means
// fewer heartbeats (cheaper) but more spurious timeouts under loss.
func BenchmarkAblationArrivalProbability(b *testing.B) {
	prof := netsim.Constant(netsim.Params{RTT: 200 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.2})
	for _, x := range []float64{0.9, 0.99, 0.999, 0.9999} {
		x := x
		b.Run("x="+ftoa(x), func(b *testing.B) {
			var hMs, timeouts float64
			for i := 0; i < b.N; i++ {
				res := cluster.RunFluctuation(cluster.Options{
					N: 5, Seed: 15 + int64(i),
					Variant: cluster.VariantDynatune(dynatune.Options{ArrivalProbability: x}),
					Profile: prof,
				}, 5*time.Minute, 5*time.Second)
				hMs = res.LeaderHMs.MeanBetween(2*time.Minute, 5*time.Minute)
				timeouts = float64(res.Timeouts)
			}
			b.ReportMetric(hMs, "h-ms")
			b.ReportMetric(timeouts, "timeouts")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationMinListSize sweeps the warm-up threshold (§III-E):
// smaller engages tuning sooner after a leader change but on noisier
// statistics.
func BenchmarkAblationMinListSize(b *testing.B) {
	for _, m := range []int{2, 10, 50} {
		m := m
		b.Run("minList="+itoa(m), func(b *testing.B) {
			var det, ots float64
			for i := 0; i < b.N; i++ {
				res := cluster.RunElectionTrials(cluster.Options{
					N: 5, Seed: 17 + int64(i),
					Variant: cluster.VariantDynatune(dynatune.Options{MinListSize: m}),
					Profile: stable100(),
				}, 100, 8*time.Second)
				d, o := res.Summary()
				det, ots = d.Mean, o.Mean
			}
			b.ReportMetric(det, "detect-ms")
			b.ReportMetric(ots, "ots-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkAblationSplitVoteRate quantifies the §IV-E discussion: a
// smaller Et narrows the randomization window, so more concurrent
// candidacies and more split votes, lengthening the election phase even
// as detection shrinks.
func BenchmarkAblationSplitVoteRate(b *testing.B) {
	for _, et := range []time.Duration{100 * time.Millisecond, 250 * time.Millisecond, 1000 * time.Millisecond} {
		et := et
		b.Run("Et="+et.String(), func(b *testing.B) {
			var splits, electionMs float64
			for i := 0; i < b.N; i++ {
				v := cluster.Variant{
					Name:           "Static",
					NewTuner:       func() raftTuner { return newStatic(et) },
					HeartbeatClass: netsim.TCP,
				}
				res := cluster.RunElectionTrials(cluster.Options{
					N: 5, Seed: 19 + int64(i), Variant: v, Profile: stable100(),
				}, 100, 2*time.Second)
				d, o := res.Summary()
				splits = float64(res.SplitVoteRounds)
				electionMs = o.Mean - d.Mean
			}
			b.ReportMetric(splits, "split-rounds")
			b.ReportMetric(electionMs, "election-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}

// BenchmarkExtensionFutureWork evaluates the paper's §IV-E proposed
// optimizations (implemented here as opt-in features): heartbeat
// suppression under replication load plus a consolidated leader heartbeat
// timer. The paper predicts they recover part of Dynatune's ≈6% peak
// throughput deficit.
func BenchmarkExtensionFutureWork(b *testing.B) {
	ramp := workload.PaperRamp(18000)
	ramp.Poisson = true
	run := func(b *testing.B, v cluster.Variant) {
		var peak float64
		for i := 0; i < b.N; i++ {
			pts := cluster.RunThroughputRamp(cluster.Options{
				N: 5, Seed: 23 + int64(i), Variant: v, Profile: stable100(),
			}, ramp, 1)
			peak = cluster.PeakThroughput(pts)
		}
		b.ReportMetric(peak, "peak-req/s")
		b.ReportMetric(0, "ns/op")
	}
	b.Run("Dynatune", func(b *testing.B) { run(b, cluster.VariantDynatune(dynatune.Options{})) })
	b.Run("Dynatune-Ext", func(b *testing.B) { run(b, cluster.VariantDynatuneExt(dynatune.Options{})) })
	b.Run("Raft", func(b *testing.B) { run(b, cluster.VariantRaft()) })

	// The extensions must not regress election performance.
	b.Run("Dynatune-Ext/failover", func(b *testing.B) {
		var det float64
		for i := 0; i < b.N; i++ {
			res := cluster.RunElectionTrials(cluster.Options{
				N: 5, Seed: 29 + int64(i), Variant: cluster.VariantDynatuneExt(dynatune.Options{}),
				Profile: stable100(),
			}, 100, 4*time.Second)
			d, _ := res.Summary()
			det = d.Mean
		}
		b.ReportMetric(det, "detect-ms")
		b.ReportMetric(0, "ns/op")
	})
}

// BenchmarkPlannedMaintenance contrasts crash failover (Fig. 4's OTS)
// with leadership transfer, the etcd mechanism this library adds on top
// of the paper's scope: planned handover costs ≈1.5 RTT instead of a
// detection timeout, under both static and tuned parameters.
func BenchmarkPlannedMaintenance(b *testing.B) {
	for _, v := range []cluster.Variant{cluster.VariantRaft(), cluster.VariantDynatune(dynatune.Options{})} {
		v := v
		b.Run(v.Name+"/crash", func(b *testing.B) {
			var ots float64
			for i := 0; i < b.N; i++ {
				res := cluster.RunElectionTrials(cluster.Options{
					N: 5, Seed: 61 + int64(i), Variant: v, Profile: stable100(),
				}, 100, 4*time.Second)
				_, o := res.Summary()
				ots = o.Mean
			}
			b.ReportMetric(ots, "ots-ms")
			b.ReportMetric(0, "ns/op")
		})
		b.Run(v.Name+"/transfer", func(b *testing.B) {
			var handover float64
			for i := 0; i < b.N; i++ {
				res := cluster.RunTransferTrials(cluster.Options{
					N: 5, Seed: 63 + int64(i), Variant: v, Profile: stable100(),
				}, 100, 4*time.Second)
				handover = metricsMean(res.HandoverMs)
			}
			b.ReportMetric(handover, "handover-ms")
			b.ReportMetric(0, "ns/op")
		})
	}
}
