package shard

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	return keys
}

func TestRouterDeterministicAndInRange(t *testing.T) {
	r := NewRouter(8, 0)
	for _, k := range testKeys(2000) {
		g := r.Route(k)
		if g < 0 || int(g) >= r.Groups() {
			t.Fatalf("Route(%q) = %d out of [0,%d)", k, g, r.Groups())
		}
		if again := r.Route(k); again != g {
			t.Fatalf("Route(%q) unstable: %d then %d", k, g, again)
		}
	}
}

func TestRouterStableAcrossInstantiation(t *testing.T) {
	a := NewRouter(4, 64)
	b := NewRouter(4, 64)
	for _, k := range testKeys(5000) {
		if a.Route(k) != b.Route(k) {
			t.Fatalf("key %q routed to %d and %d by identical routers", k, a.Route(k), b.Route(k))
		}
	}
}

func TestRouterUniformity(t *testing.T) {
	const nKeys = 40000
	keys := testKeys(nKeys)
	for _, groups := range []int{4, 8, 16} {
		r := NewRouter(groups, 0)
		counts := make([]int, groups)
		for _, k := range keys {
			counts[r.Route(k)]++
		}
		want := nKeys / groups
		for g, c := range counts {
			// Consistent hashing with 256 virtual nodes keeps per-group
			// share within ≈±10% of uniform; allow ±25%.
			if c < want*75/100 || c > want*125/100 {
				t.Fatalf("groups=%d: group %d owns %d of %d keys (want ≈%d)", groups, g, c, nKeys, want)
			}
		}
	}
}

func TestRouterPartitionCoversAllKeys(t *testing.T) {
	r := NewRouter(4, 0)
	keys := testKeys(1000)
	parts := r.Partition(keys)
	total := 0
	for g, ks := range parts {
		total += len(ks)
		for _, k := range ks {
			if r.Route(k) != g {
				t.Fatalf("key %q partitioned into %d but routes to %d", k, g, r.Route(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("partition dropped keys: %d of %d", total, len(keys))
	}
}

func TestRouterConsistentGrowth(t *testing.T) {
	// Growing 4 → 5 groups must move only a minority of the keyspace, and
	// every moved key must land on the new group (consistent hashing's
	// minimal-disruption property, which the future rebalance PR depends
	// on).
	small := NewRouter(4, 0)
	big := NewRouter(5, 0)
	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		a, b := small.Route(k), big.Route(k)
		if a == b {
			continue
		}
		moved++
		if b != GroupID(4) {
			t.Fatalf("key %q moved %d→%d instead of onto the new group", k, a, b)
		}
	}
	// Expected ≈1/5 of keys move; allow generous slack but far below a
	// rehash-everything router (which would move ≈4/5).
	if moved == 0 || moved > len(keys)*35/100 {
		t.Fatalf("growth moved %d of %d keys; want ≈%d", moved, len(keys), len(keys)/5)
	}
}

func TestRouterPanicsOnNoGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(0, _) did not panic")
		}
	}()
	NewRouter(0, 8)
}

// TestRouterEpochAddGroup is the live-rebalancing property pair: AddGroup
// moves ≈1/(G+1) of a large key sample (all of it onto the new group),
// and every unmoved key routes identically across the epoch boundary —
// checked against the displaced ring itself via RoutePrev, not a fresh
// router.
func TestRouterEpochAddGroup(t *testing.T) {
	r := NewRouter(4, 0)
	if r.Epoch() != 0 {
		t.Fatalf("fresh router at epoch %d", r.Epoch())
	}
	if _, ok := r.RoutePrev("x"); ok {
		t.Fatal("epoch 0 has no previous ring")
	}
	keys := testKeys(20000)
	before := make([]GroupID, len(keys))
	for i, k := range keys {
		before[i] = r.Route(k)
	}
	g := r.AddGroup()
	if g != GroupID(4) || r.Groups() != 5 || r.Epoch() != 1 {
		t.Fatalf("AddGroup → id %d, groups %d, epoch %d", g, r.Groups(), r.Epoch())
	}
	moved := 0
	for i, k := range keys {
		now := r.Route(k)
		prev, ok := r.RoutePrev(k)
		if !ok || prev != before[i] {
			t.Fatalf("RoutePrev(%q) = %d,%v; the displaced ring said %d", k, prev, ok, before[i])
		}
		if now != before[i] {
			moved++
			if now != g {
				t.Fatalf("key %q moved %d→%d instead of onto the new group", k, before[i], now)
			}
		}
	}
	// ≈1/(G+1) = 1/5 of the sample moves; ±20% of that expectation.
	want := float64(len(keys)) / 5
	if f := float64(moved); f < want*0.8 || f > want*1.2 {
		t.Fatalf("AddGroup moved %d of %d keys; want %.0f ±20%%", moved, len(keys), want)
	}
}

// TestRouterEpochRemoveGroup: removing the last group moves exactly its
// resident share onto the survivors and leaves every other key in place;
// the shrunk ring equals a fresh router of the smaller size.
func TestRouterEpochRemoveGroup(t *testing.T) {
	r := NewRouter(5, 0)
	keys := testKeys(20000)
	before := make([]GroupID, len(keys))
	for i, k := range keys {
		before[i] = r.Route(k)
	}
	r.RemoveGroup(4)
	if r.Groups() != 4 || r.Epoch() != 1 {
		t.Fatalf("RemoveGroup → groups %d, epoch %d", r.Groups(), r.Epoch())
	}
	fresh := NewRouter(4, 0)
	moved := 0
	for i, k := range keys {
		now := r.Route(k)
		if now != fresh.Route(k) {
			t.Fatalf("shrunk ring disagrees with a fresh 4-group router on %q", k)
		}
		if before[i] == GroupID(4) {
			moved++
			if now == GroupID(4) {
				t.Fatalf("key %q still routes to the removed group", k)
			}
		} else if now != before[i] {
			t.Fatalf("key %q not owned by the removed group moved %d→%d", k, before[i], now)
		}
	}
	want := float64(len(keys)) / 5
	if f := float64(moved); f < want*0.8 || f > want*1.2 {
		t.Fatalf("RemoveGroup moved %d of %d keys; want %.0f ±20%%", moved, len(keys), want)
	}
}

func TestRouterRemoveGroupGuards(t *testing.T) {
	r := NewRouter(3, 8)
	for _, g := range []GroupID{0, 1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RemoveGroup(%d) of 3 groups did not panic", g)
				}
			}()
			r.RemoveGroup(g)
		}()
	}
	r.RemoveGroup(2)
	r.RemoveGroup(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("removing the final group did not panic")
			}
		}()
		r.RemoveGroup(0)
	}()
}
