// Membership: grow a running 4-node Dynatune cluster to 5 nodes the safe
// way — add the newcomer as a non-voting learner, let it catch up and let
// its tuner warm, promote it to voter, then retire the oldest member with
// a planned leadership transfer followed by removal. No out-of-service
// window at any step.
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
)

func main() {
	network := netsim.Constant(netsim.Params{
		RTT:    100 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
	})
	c := cluster.New(cluster.Options{
		N:              5,
		InitialMembers: 4, // node 5 exists on the network but is not a member yet
		Seed:           1,
		Variant:        cluster.VariantDynatune(dynatune.Options{}),
		Profile:        network,
	})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	if lead == nil {
		panic("no leader")
	}
	c.Run(4 * time.Second)
	lead = c.Leader()
	fmt.Printf("4-voter cluster up; leader node %d, quorum %d\n", lead.ID(), lead.Quorum())

	// Commit some history the newcomer will have to replicate.
	for i := 1; i <= 200; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i),
			Key: fmt.Sprintf("k%03d", i), Value: []byte("v")}
		if _, err := lead.Propose(kv.Encode(cmd)); err != nil {
			panic(err)
		}
		if i%64 == 0 {
			c.Run(100 * time.Millisecond)
		}
	}
	c.Run(time.Second)

	// Step 1: add node 5 as a learner — it replicates but holds no vote,
	// so a slow newcomer can never stall commits or disrupt elections.
	joiner := raft.ID(5)
	t0 := c.Now()
	if _, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddLearner, Node: joiner}); err != nil {
		panic(err)
	}
	target := lead.Log().LastIndex()
	for c.Node(joiner).Log().Applied() < target {
		c.Run(50 * time.Millisecond)
	}
	fmt.Printf("learner caught up %d entries in %v (quorum still %d)\n",
		target, c.Now()-t0, c.Leader().Quorum())

	// Its Dynatune state warms from the heartbeats it now receives.
	tn := c.DynatuneTuner(joiner)
	for !tn.Tuned() {
		c.Run(100 * time.Millisecond)
	}
	fmt.Printf("joiner's tuner engaged after %v: Et=%v\n", c.Now()-t0, tn.ElectionTimeout())

	// Step 2: promote to voter.
	if _, err := c.Leader().ProposeConfChange(raft.ConfChange{Op: raft.ConfAddVoter, Node: joiner}); err != nil {
		panic(err)
	}
	c.Run(time.Second)
	fmt.Printf("promoted: %d voters, quorum %d\n", len(c.Leader().Voters()), c.Leader().Quorum())

	// Step 3: retire node 1 — transfer leadership away first if it leads.
	retiree := raft.ID(1)
	if c.Leader().ID() == retiree {
		if err := c.Leader().TransferLeadership(2); err != nil {
			panic(err)
		}
		c.Run(2 * time.Second)
		fmt.Printf("leadership handed to node %d (planned transfer, ≈1.5 RTT)\n", c.Leader().ID())
	}
	if _, err := c.Leader().ProposeConfChange(raft.ConfChange{Op: raft.ConfRemoveNode, Node: retiree}); err != nil {
		panic(err)
	}
	c.Run(2 * time.Second)
	fmt.Printf("node %d removed: voters %v, quorum %d\n",
		retiree, c.Leader().Voters(), c.Leader().Quorum())
	if !c.Node(retiree).Removed() {
		panic("retiree does not know it was removed")
	}

	// The reshaped cluster still serves and fails over fast.
	old, failAt := c.PauseLeader()
	if c.WaitLeader(30*time.Second) == nil {
		panic("no successor")
	}
	det, _ := c.Recorder().FirstDetectionAfter(failAt)
	fmt.Printf("failover drill after reshape: node %d killed, detected in %v\n", old, det)
}
