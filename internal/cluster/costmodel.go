package cluster

import (
	"time"

	"dynatune/internal/raft"
)

// CostModel assigns CPU service time to every message and timer a node
// handles. It substitutes for the paper's `docker stats` measurements
// (§IV-C2) and for the request-path overhead that shapes the
// throughput–latency curve (§IV-B2): utilization and queueing delay come
// out of the *actual simulated message flow* priced by these constants.
//
// Calibration targets (documented in EXPERIMENTS.md):
//   - a 5-node Raft leader saturates near the paper's ≈13.7k req/s;
//   - a Fix-K leader with 64 followers at h≈21 ms exceeds 100% of its
//     2-core allocation, as in Fig. 7b;
//   - Dynatune's tuning work costs a measurable premium per heartbeat and
//     a small premium per replicated entry (per-follower timer management
//     in the send path), yielding the paper's ≈6% peak-throughput gap.
type CostModel struct {
	// Heartbeat path.
	HeartbeatSend     time.Duration // leader: build+send one heartbeat
	HeartbeatRecv     time.Duration // follower: process heartbeat + send response
	HeartbeatRespRecv time.Duration // leader: process one response

	// Replication path.
	AppendSendBase  time.Duration // leader: per MsgApp
	AppendSendEntry time.Duration // leader: per entry marshalled
	AppendRecv      time.Duration // follower: per MsgApp
	AppendRecvEntry time.Duration // follower: per entry appended
	AppendRespRecv  time.Duration // leader: per ack
	ApplyEntry      time.Duration // any node: apply one committed entry

	// Election path.
	VoteProc time.Duration // any vote/pre-vote message, either side

	// Client path (leader only).
	ProposeBase  time.Duration // per flush of the proposal buffer
	ProposeEntry time.Duration // per proposed command

	// Tuning overhead (applied only when the node runs a measuring tuner):
	// extra work per heartbeat handled (timestamping, statistics, retune)
	// and per entry sent (per-follower timer bookkeeping in the hot path).
	TuneHeartbeat time.Duration
	TuneSendEntry time.Duration

	// Snapshot path (InstallSnapshot transfers).
	SnapshotMarshal time.Duration
	SnapshotRestore time.Duration

	// Timer fire overhead (scheduler wakeup).
	TimerFire time.Duration

	// Cores is the container's CPU allocation; reported CPU% saturates at
	// Cores×100 (the paper's plots top out at 200%).
	Cores int
}

// DefaultCostModel returns the calibrated model used by all experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		HeartbeatSend:     75 * time.Microsecond,
		HeartbeatRecv:     40 * time.Microsecond,
		HeartbeatRespRecv: 70 * time.Microsecond,

		AppendSendBase:  4 * time.Microsecond,
		AppendSendEntry: 13 * time.Microsecond,
		AppendRecv:      4 * time.Microsecond,
		AppendRecvEntry: 6 * time.Microsecond,
		AppendRespRecv:  4 * time.Microsecond,
		ApplyEntry:      10 * time.Microsecond,

		VoteProc: 20 * time.Microsecond,

		ProposeBase:  6 * time.Microsecond,
		ProposeEntry: 8 * time.Microsecond,

		TuneHeartbeat: 18 * time.Microsecond,
		TuneSendEntry: 1200 * time.Nanosecond,

		SnapshotMarshal: 500 * time.Microsecond,
		SnapshotRestore: 500 * time.Microsecond,

		TimerFire: 2 * time.Microsecond,

		Cores: 2,
	}
}

// sendCost prices an outgoing message on the sender.
func (c CostModel) sendCost(m raft.Message, tuned bool) time.Duration {
	switch m.Type {
	case raft.MsgHeartbeat:
		d := c.HeartbeatSend
		if tuned {
			d += c.TuneHeartbeat
		}
		return d
	case raft.MsgApp:
		d := c.AppendSendBase + time.Duration(len(m.Entries))*c.AppendSendEntry
		if tuned {
			d += time.Duration(len(m.Entries)) * c.TuneSendEntry
		}
		return d
	case raft.MsgVote, raft.MsgPreVote:
		return c.VoteProc
	case raft.MsgSnap:
		return c.AppendSendBase // marshalling already charged via the hook
	default:
		// Responses are priced on the receiver; sending them is folded
		// into the receive cost of the message that triggered them.
		return 0
	}
}

// recvCost prices an incoming message on the receiver.
func (c CostModel) recvCost(m raft.Message, tuned bool) time.Duration {
	switch m.Type {
	case raft.MsgHeartbeat:
		d := c.HeartbeatRecv
		if tuned {
			d += c.TuneHeartbeat
		}
		return d
	case raft.MsgHeartbeatResp:
		d := c.HeartbeatRespRecv
		if tuned {
			d += c.TuneHeartbeat
		}
		return d
	case raft.MsgApp:
		return c.AppendRecv + time.Duration(len(m.Entries))*c.AppendRecvEntry
	case raft.MsgAppResp, raft.MsgSnapResp:
		// A chunk ack costs the leader the same bookkeeping as an append
		// ack; the next chunk's send is priced separately.
		return c.AppendRespRecv
	case raft.MsgVote, raft.MsgVoteResp, raft.MsgPreVote, raft.MsgPreVoteResp:
		return c.VoteProc
	case raft.MsgSnap:
		return c.AppendRecv // restore charged via the hook
	default:
		return time.Microsecond
	}
}
