// Sharded multi-Raft: the same keyed open-loop workload (60k req/s) is
// offered to one Raft group and to four consistent-hash-routed groups —
// each group a 3-node cluster with its own Dynatune tuner — under the
// paper's fluctuating-WAN conditions (RTT 50→200→50 ms). One leader's CPU
// caps the single group far below the offered load; four leaders commit
// in parallel, multiplying aggregate throughput and collapsing the
// saturated tail latency. A MultiGet at the end shows the cross-shard
// read path.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
	"dynatune/internal/shard"
	"dynatune/internal/workload"
)

func main() {
	profile := netsim.GradualRTTRamp(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond, 4*time.Second)
	ramp := workload.Ramp{StartRPS: 60000, StepRPS: 0, StepDuration: 5 * time.Second, Steps: 3, Poisson: true}

	var results []shard.RampResult
	for _, groups := range []int{1, 4} {
		res := shard.RunRamp(shard.Options{
			Groups: groups, NodesPerGroup: 3, Seed: 41,
			Variant: cluster.VariantDynatune(dynatune.Options{}),
			Profile: profile,
		}, ramp, shard.LoadOptions{Keys: 4096})
		results = append(results, res)

		fmt.Printf("=== %d shard(s) × 3 nodes, offered %d req/s ===\n", groups, ramp.StartRPS)
		for i, p := range res.Points {
			fmt.Printf("  step %d: committed %7.0f req/s   mean %7.0f ms   p99 %7.0f ms\n",
				i+1, p.ThroughputRS, p.LatencyMs, p.P99Ms)
		}
		fmt.Printf("  aggregate %7.0f req/s   p99 %7.0f ms   (%d committed)\n\n",
			res.AggThroughput, res.P99Ms, res.Completed)
	}
	fmt.Printf("speedup: %.2fx aggregate committed-ops throughput, p99 %0.f ms → %0.f ms\n\n",
		results[1].AggThroughput/results[0].AggThroughput, results[0].P99Ms, results[1].P99Ms)

	// Cross-shard reads: write a handful of keys through the router, read
	// them back in one MultiGet fan-out.
	s := shard.New(shard.Options{Groups: 4, NodesPerGroup: 3, Seed: 5,
		Profile: netsim.Constant(netsim.Params{RTT: 20 * time.Millisecond, Jitter: time.Millisecond})})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		panic("no leaders")
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d", i)
		if err := s.Put(keys[i], []byte(fmt.Sprintf("profile#%d", i)), 10*time.Second); err != nil {
			panic(err)
		}
	}
	got := s.MultiGet(keys...)
	fmt.Println("cross-shard MultiGet:")
	for _, k := range keys {
		fmt.Printf("  %-8s → %-10s (group %d)\n", k, got[k], s.Router().Route(k))
	}
}
