// Package sweep is the parameter-grid campaign engine above the scenario
// layer: it takes one base scenario.Spec (a registry entry or a spec
// file) plus a set of grid axes — cluster size, link loss and RTT, tuner
// variant, shard count, scenario scale — expands the cross-product into
// concrete specs, executes every (cell, repetition) unit on the
// deterministic sharded trial runner, and aggregates each cell's
// measurement into metrics.Summary rows (mean/p50/p99 over the pooled
// samples plus a 95% CI over the per-rep means).
//
// Everything is deterministic: unit seeds derive from the campaign seed
// and the unit's grid coordinates alone — never from the worker that
// happens to execute the unit — and results merge in grid order, so a
// campaign's CSV/JSON report is byte-identical for any worker count.
// Reports feed the baseline gate (baseline.go): diffing a campaign
// against a prior report flags per-cell regressions beyond a relative
// threshold, turning any scenario into a perf gate.
package sweep

import (
	"fmt"
	"strings"

	"dynatune/internal/scenario"
)

// DefaultMaxCells bounds a campaign's grid unless the caller raises it:
// cross-products grow fast, and a mistyped axis should fail loudly, not
// queue a thousand simulations.
const DefaultMaxCells = 64

// Axis is one swept dimension: a known axis name (see axes.go) and the
// values it takes, in sweep order. Values stay strings — exactly what the
// operator typed — and are parsed by the axis definition at expansion, so
// the report echoes the operator's spelling.
type Axis struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// ParseAxis parses one "-axis name=v1,v2,..." flag.
func ParseAxis(s string) (Axis, error) {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || name == "" || vals == "" {
		return Axis{}, fmt.Errorf("sweep: axis %q is not name=v1,v2,...", s)
	}
	ax := Axis{Name: name, Values: strings.Split(vals, ",")}
	for _, v := range ax.Values {
		if v == "" {
			return Axis{}, fmt.Errorf("sweep: axis %q has an empty value", s)
		}
	}
	return ax, nil
}

// Campaign is one sweep: a base spec crossed with the axes.
type Campaign struct {
	// Base is the scenario every cell derives from. Its own Seed is
	// ignored — unit seeds derive from the campaign Seed.
	Base scenario.Spec
	// Axes are applied in order; the cross-product enumerates the first
	// axis slowest and the last axis fastest (row-major), which fixes the
	// report's row order.
	Axes []Axis
	// Reps is the number of independent repetitions per cell (default 1),
	// each a full run of the cell's spec on its own derived seed.
	Reps int
	// Seed is the campaign seed all unit seeds derive from.
	Seed int64
	// MaxCells guards the expansion (default DefaultMaxCells).
	MaxCells int
	// Workers is the parallel worker count over (cell, rep) units
	// (default cluster.TrialWorkers()). It never affects results.
	Workers int
}

// Cell is one realized grid point.
type Cell struct {
	// Values holds one value per campaign axis, in axis order.
	Values []string
	// Spec is the base spec with every axis value applied.
	Spec scenario.Spec
}

// Key renders the cell as "n=3 loss=0.1" — the identity baseline
// comparison matches rows by. A value beyond the axis list (a mangled
// or version-skewed report) keeps a positional name rather than
// panicking: the key simply matches nothing, which Compare reports.
func (c Cell) Key(axes []Axis) string {
	parts := make([]string, len(c.Values))
	for i, v := range c.Values {
		name := fmt.Sprintf("axis%d", i)
		if i < len(axes) {
			name = axes[i].Name
		}
		parts[i] = name + "=" + v
	}
	return strings.Join(parts, " ")
}

// Cells expands the campaign's cross-product in row-major order (first
// axis slowest), applying each axis to a clone of the base spec and
// validating every resulting cell — a grid point the engine cannot run
// fails the whole campaign here, before anything executes.
func (c Campaign) Cells() ([]Cell, error) {
	if len(c.Axes) == 0 {
		return nil, fmt.Errorf("sweep: campaign has no axes (use the scenario command for single runs)")
	}
	seen := map[string]bool{}
	total := 1
	for _, ax := range c.Axes {
		if _, err := axisDef(ax.Name); err != nil {
			return nil, err
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("sweep: axis %q given twice", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		total *= len(ax.Values)
	}
	max := c.MaxCells
	if max <= 0 {
		max = DefaultMaxCells
	}
	if total > max {
		return nil, fmt.Errorf("sweep: grid expands to %d cells (max %d); shrink an axis or raise -max-cells", total, max)
	}

	cells := make([]Cell, 0, total)
	idx := make([]int, len(c.Axes))
	for {
		cell := Cell{Values: make([]string, len(c.Axes)), Spec: c.Base.Clone()}
		for i, ax := range c.Axes {
			v := ax.Values[idx[i]]
			cell.Values[i] = v
			def, _ := axisDef(ax.Name)
			if err := def.apply(&cell.Spec, v); err != nil {
				return nil, fmt.Errorf("sweep: cell %s: %w", cell.Key(c.Axes), err)
			}
		}
		cell.Spec.Name = c.Base.Name
		if err := cell.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cell.Key(c.Axes), err)
		}
		cells = append(cells, cell)
		// Odometer increment, last axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(c.Axes[i].Values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return cells, nil
		}
	}
}

// UnitSeed derives the engine seed of one (cell, rep) unit from the
// campaign seed and the unit's grid coordinates alone (splitmix64-style
// mixing, so neighbouring cells do not share seed arithmetic with the
// trial runner's per-shard stride). Depending only on indices is what
// makes campaign output independent of the worker count.
func UnitSeed(campaign int64, cell, rep int) int64 {
	z := uint64(campaign) + 0x9E3779B97F4A7C15*uint64(cell+1) + 0xBF58476D1CE4E5B9*uint64(rep+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}
