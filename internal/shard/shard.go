package shard

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/kv"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
	"dynatune/internal/sim"
)

// Options configure a sharded Cluster.
type Options struct {
	// Groups is the number of independent Raft groups (default 4).
	Groups int
	// NodesPerGroup is each group's replication factor (default 3).
	NodesPerGroup int
	Seed          int64
	// Variant selects the system under test per group; every group gets
	// its own tuner instances (one per node, as in the single-group
	// testbed).
	Variant cluster.Variant
	// Profile is the shared WAN schedule: every group's links follow the
	// same netsim profile, modelling shards co-deployed on one network.
	Profile netsim.Profile
	// Replicas is the router's virtual-node count (0 = DefaultReplicas).
	Replicas int
	// Cost overrides the per-node CPU cost model (zero = calibrated
	// default).
	Cost cluster.CostModel
	// Persist gives every node in every group a durable store, enabling
	// crash faults (group-addressed crash-node) against sharded runs. The
	// persister survives the crash; the rebuilt node replays from it.
	Persist bool

	// Snapshot arms the per-node automatic snapshot policy in every group:
	// each node snapshots its kv store and truncates its log whenever the
	// live tail outgrows the thresholds (see raft.SnapshotPolicy). Zero
	// disables it.
	Snapshot raft.SnapshotPolicy
	// SnapshotChunk bounds one streamed InstallSnapshot message; 0 keeps
	// single-envelope transfers.
	SnapshotChunk int
	// MigrateKeyStream reverts group migrations to the pre-snapshot-ship
	// protocol that proposes every moved key as its own command. The
	// default (false) bulk-ships the moved span as OpInstallSpan chunks —
	// O(chunks) consensus rounds instead of O(keys) — and key-streams only
	// the delta; kept as an A/B switch for dynabench's migration
	// comparison.
	MigrateKeyStream bool

	// PerGroupMesh disables the multi-Raft node consolidation: every
	// group builds its own private netsim mesh, its own per-timer engine
	// events, and ships one wire message per raft message — the
	// pre-consolidation deployment, kept for A/B benchmarking
	// (dynabench's -groups-curve reports both builds). The default
	// (false) runs all groups over one shared physical mesh with
	// consolidated per-node ticks and per-node-pair envelope batching.
	PerGroupMesh bool
	// Fabric tunes the consolidated transport (tick grids, batch
	// window); zero fields take cluster.Fabric defaults. Ignored under
	// PerGroupMesh.
	Fabric cluster.FabricOptions
}

func (o Options) withDefaults() Options {
	if o.Groups == 0 {
		o.Groups = 4
	}
	if o.NodesPerGroup == 0 {
		o.NodesPerGroup = 3
	}
	// Seed 0 is preserved as an explicit seed, consistent with the sweep
	// layer's UnitSeed. (It used to alias seed 1, which silently folded
	// seed-0 campaign cells onto their seed-1 neighbours.)
	return o
}

// Cluster is a sharded deployment: G Raft groups sharing one virtual
// clock, with a consistent-hash router in front. Each group is a full
// cluster.Cluster — own netsim mesh (same profile), own kv stores, own
// tuners, own leader — so failures and tuning in one group never touch
// another.
//
// The group set is dynamic: AddGroupLive / RemoveGroupLive (migrate.go)
// grow or shrink it mid-run with a drain → cutover → serve migration.
// Retired groups keep their slot in the group table (paused) so GroupIDs
// stay stable; Groups() counts the serving groups, GroupSlots() the table.
type Cluster struct {
	opts   Options
	eng    *sim.Engine
	router *Router
	groups []*cluster.Cluster

	// fabric is the consolidation layer all groups share (nil under
	// Options.PerGroupMesh): one physical mesh, one tick driver per node,
	// per-node-pair envelope batching.
	fabric *cluster.Fabric

	// retired marks group-table slots decommissioned by RemoveGroupLive
	// (or an aborted add) and not since reused; lifecycle churn must not
	// scan them as serving groups.
	retired []bool

	seq     uint64 // client sequence for direct Puts
	migrSeq uint64 // migration-stream sequence (client migrClientID)

	migr       *migration
	rebalances []scenario.RebalanceStats

	// onGroupAdded observers fire after a new group is built but before
	// it starts (so a load generator can wire SetOnApply). Epoch flips
	// have no callback: consumers poll Epoch(), which flips at most once
	// per migration.
	onGroupAdded []func(GroupID)
}

// shardClientID marks direct Put traffic in the kv idempotence table,
// distinct from the load generator's client 1.
const shardClientID = 2

// New builds (but does not start) a sharded cluster.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	s := &Cluster{
		opts:   opts,
		eng:    sim.NewEngine(opts.Seed),
		router: NewRouter(opts.Groups, opts.Replicas),
	}
	if !opts.PerGroupMesh {
		s.fabric = cluster.NewFabric(s.eng, opts.NodesPerGroup, opts.Profile, opts.Fabric)
	}
	s.groups = make([]*cluster.Cluster, opts.Groups)
	s.retired = make([]bool, opts.Groups)
	for g := range s.groups {
		s.groups[g] = s.newGroup()
	}
	return s
}

// newGroup builds one Raft group on the shared engine, attached to the
// consolidation fabric unless the deployment runs per-group meshes.
func (s *Cluster) newGroup() *cluster.Cluster {
	return cluster.NewWithEngine(s.eng, cluster.Options{
		N:             s.opts.NodesPerGroup,
		Variant:       s.opts.Variant,
		Profile:       s.opts.Profile,
		Cost:          s.opts.Cost,
		Persist:       s.opts.Persist,
		Snapshot:      s.opts.Snapshot,
		SnapshotChunk: s.opts.SnapshotChunk,
		Fabric:        s.fabric,
	})
}

// Start arms every node in every group; per-group elections follow.
func (s *Cluster) Start() {
	for _, c := range s.groups {
		c.Start()
	}
}

// Engine exposes the shared simulation engine.
func (s *Cluster) Engine() *sim.Engine { return s.eng }

// Router exposes the key→group mapping.
func (s *Cluster) Router() *Router { return s.router }

// Epoch returns the router's ring version (bumped by every live move).
func (s *Cluster) Epoch() int { return s.router.Epoch() }

// Groups returns the number of serving Raft groups under the current
// routing epoch.
func (s *Cluster) Groups() int { return s.router.Groups() }

// GroupSlots returns the size of the group table, including slots retired
// by RemoveGroupLive; per-group bookkeeping (load generators) indexes by
// slot so GroupIDs stay stable across the lifecycle.
func (s *Cluster) GroupSlots() int { return len(s.groups) }

// Group returns one group's underlying cluster.
func (s *Cluster) Group(g GroupID) *cluster.Cluster { return s.groups[g] }

// OnGroupAdded registers an observer of new groups, called after the
// group is built but before it starts — the point where a load generator
// must wire SetOnApply.
func (s *Cluster) OnGroupAdded(fn func(GroupID)) { s.onGroupAdded = append(s.onGroupAdded, fn) }

// Now returns virtual time.
func (s *Cluster) Now() time.Duration { return s.eng.Now() }

// Run advances the whole deployment (all groups share the clock) by d.
func (s *Cluster) Run(d time.Duration) { s.eng.Run(s.eng.Now() + d) }

// Leader returns group g's live leader, or nil. A slot outside the group
// table or retired by RemoveGroupLive has no leader by definition —
// lifecycle churn (a prober holding a GroupID across a decommission) gets
// nil instead of a scan of frozen runtimes.
func (s *Cluster) Leader(g GroupID) *raft.Node {
	if int(g) < 0 || int(g) >= len(s.groups) || s.retired[g] {
		return nil
	}
	return s.groups[g].Leader()
}

// Retired reports whether group slot g was decommissioned by
// RemoveGroupLive (or an aborted add migration) and not since reused by
// AddGroupLive.
func (s *Cluster) Retired(g GroupID) bool {
	return int(g) >= 0 && int(g) < len(s.retired) && s.retired[g]
}

// HasLeaders reports whether every serving group currently has a leader.
// (A group still booting inside an add migration, or retired by a remove,
// is not a serving group.)
func (s *Cluster) HasLeaders() bool {
	for g := 0; g < s.router.Groups(); g++ {
		if s.migr != nil && s.migr.kind == "add-group" && s.migr.phase == phasePrepare &&
			GroupID(g) == s.migr.target {
			continue
		}
		if s.retired[g] {
			// Serving groups form a prefix of the table (removes retire the
			// top slot, adds reuse it), so a retired slot below Groups()
			// would be a lifecycle bug — but never scan one as serving.
			continue
		}
		if s.groups[g].Leader() == nil {
			return false
		}
	}
	return true
}

// WaitLeaders runs until every group has elected a leader, up to timeout.
func (s *Cluster) WaitLeaders(timeout time.Duration) bool {
	deadline := s.eng.Now() + timeout
	for s.eng.Now() < deadline {
		if s.HasLeaders() {
			return true
		}
		s.Run(10 * time.Millisecond)
	}
	return s.HasLeaders()
}

// Put routes key to its group, proposes the write on that group's leader
// and advances the simulation until the command applies there (or timeout
// elapses). It is the testbed's synchronous client call. While the key is
// fenced by a live migration the call waits for the cutover first — the
// blocked span is exactly the mid-move write latency the rebalance
// scenarios measure.
func (s *Cluster) Put(key string, value []byte, timeout time.Duration) error {
	deadline := s.eng.Now() + timeout
	for s.Fenced(key) {
		if s.eng.Now() >= deadline {
			return fmt.Errorf("shard: key %q stayed fenced by a group migration for %v", key, timeout)
		}
		s.Run(time.Millisecond)
	}
	g := s.router.Route(key)
	c := s.groups[g]
	s.seq++
	seq := s.seq
	data := kv.Encode(kv.Command{
		Op: kv.OpPut, Client: shardClientID, Seq: seq, Key: key, Value: value,
	})
	// Propose through LeaderProposeBatch so synchronous Puts pay the same
	// leader CPU cost (and queue behind the same backlog) as every other
	// client path — a free side door would skew the utilization and
	// saturation curves the testbed measures.
	var (
		idx      uint64
		perr     error
		proposed bool
	)
	if !c.LeaderProposeBatch([][]byte{data}, func(first, _ uint64, err error) {
		idx, perr, proposed = first, err, true
	}) {
		return fmt.Errorf("shard: group %d has no leader", g)
	}
	for s.eng.Now() < deadline && !proposed {
		s.Run(time.Millisecond)
	}
	if !proposed {
		return fmt.Errorf("shard: group %d leader did not process the propose within %v", g, timeout)
	}
	if perr != nil {
		return fmt.Errorf("shard: group %d propose: %w", g, perr)
	}
	for s.eng.Now() < deadline {
		// Poll the group's *current* leader each iteration: the proposer
		// may be paused or deposed mid-wait, and its stalled store would
		// time out a write that in fact committed on its successor.
		if cur := c.Leader(); cur != nil {
			store := c.Store(cur.ID())
			if store.AppliedIndex() >= idx {
				// Applied is not committed-as-proposed: a newer leader may
				// have overwritten idx with its own entry. The idempotence
				// table is the authoritative witness — no later seq of this
				// client can exist while this call blocks, and it rides in
				// snapshots, so it stays valid even if idx was compacted
				// away before this node caught up.
				if store.LastSeq(shardClientID) >= seq {
					return nil
				}
				return fmt.Errorf("shard: group %d write at index %d was superseded by a newer leader", g, idx)
			}
		}
		s.Run(time.Millisecond)
	}
	return fmt.Errorf("shard: group %d did not commit index %d within %v", g, idx, timeout)
}

// Get reads key from its group leader's store (leader-local reads, the
// same consistency the single-group testbed serves). Before a migration's
// cutover it dual-reads: a miss at the key's current owner falls back to
// its previous-epoch owner, so a read can never miss a key that committed
// before the move (the copy stream may simply not have reached it yet —
// and the write fence guarantees the source copy is never stale). After
// cutover the destination is authoritative and a miss stays a miss. It
// returns false when the key is absent or the group momentarily has no
// leader.
func (s *Cluster) Get(key string) ([]byte, bool) {
	if v, ok := s.getFrom(s.router.Route(key), key); ok {
		return v, true
	}
	if s.dualReadActive() {
		if pg, ok := s.router.RoutePrev(key); ok {
			return s.getFrom(pg, key)
		}
	}
	return nil, false
}

func (s *Cluster) getFrom(g GroupID, key string) ([]byte, bool) {
	lead := s.groups[g].Leader()
	if lead == nil {
		return nil, false
	}
	return s.groups[g].Store(lead.ID()).Get(key)
}

// MultiGet is the cross-shard read path: it partitions keys by group and
// reads each batch from that group's leader, with the same per-key
// dual-read fallback as Get during a migration. The result is per-group
// leader-local consistent but is not a snapshot across groups — groups
// commit independently, which is the price of sharding (and exactly what
// a future cross-shard transaction PR would address). Missing keys are
// absent from the result.
func (s *Cluster) MultiGet(keys ...string) map[string][]byte {
	out := make(map[string][]byte, len(keys))
	for g, ks := range s.router.Partition(keys) {
		lead := s.groups[g].Leader()
		var store *kv.Store
		if lead != nil {
			store = s.groups[g].Store(lead.ID())
		}
		for _, k := range ks {
			if store != nil {
				if v, ok := store.Get(k); ok {
					out[k] = v
					continue
				}
			}
			if s.dualReadActive() {
				if pg, ok := s.router.RoutePrev(k); ok {
					if v, ok := s.getFrom(pg, k); ok {
						out[k] = v
					}
				}
			}
		}
	}
	return out
}

// liveSlot reports whether g names a current, non-retired group slot.
func (s *Cluster) liveSlot(g int) bool {
	return g >= 0 && g < len(s.groups) && !s.retired[g]
}

// GroupLeader returns serving group g's current leader id, or 0 when the
// slot is out of range, retired, or mid-election — the group-addressed
// fault kinds' fire-time target resolution.
func (s *Cluster) GroupLeader(g int) raft.ID {
	if l := s.Leader(GroupID(g)); l != nil {
		return l.ID()
	}
	return 0
}

// PauseGroupNode / ResumeGroupNode / CrashGroupNode / RestartGroupNode /
// GroupNodePaused expose one group's process controls to the scenario
// layer's group-addressed faults. Every call tolerates a slot retired
// between fire and heal: a heal landing on a decommissioned group must
// not wake its (deliberately frozen) nodes.
func (s *Cluster) PauseGroupNode(g int, id raft.ID) {
	if s.liveSlot(g) {
		s.groups[g].Pause(id)
	}
}

func (s *Cluster) ResumeGroupNode(g int, id raft.ID) {
	if s.liveSlot(g) {
		s.groups[g].Resume(id)
	}
}

func (s *Cluster) GroupNodePaused(g int, id raft.ID) bool {
	return !s.liveSlot(g) || s.groups[g].Paused(id)
}

func (s *Cluster) CrashGroupNode(g int, id raft.ID) {
	if s.liveSlot(g) {
		s.groups[g].Crash(id)
	}
}

func (s *Cluster) RestartGroupNode(g int, id raft.ID) {
	if s.liveSlot(g) {
		s.groups[g].Restart(id)
	}
}

// GroupStores returns group g's live (non-paused, non-crashed) replica
// stores — the invariant checker's convergence and double-apply surface.
func (s *Cluster) GroupStores(g int) []scenario.StoreProbe {
	if !s.liveSlot(g) {
		return nil
	}
	c := s.groups[g]
	out := make([]scenario.StoreProbe, 0, c.N())
	for id := raft.ID(1); int(id) <= c.N(); id++ {
		if !c.Paused(id) {
			out = append(out, c.Store(id))
		}
	}
	return out
}

// ProbeRead reads key through the same owner-then-previous-owner path as
// Get/MultiGet and additionally reports servability: whether some
// responsible group could authoritatively answer. An unservable result
// (every responsible side mid-election) tells the invariant checker to
// skip the sample rather than score a miss it cannot trust.
func (s *Cluster) ProbeRead(key string) (v []byte, found, servable bool) {
	g := s.router.Route(key)
	lead := s.Leader(g)
	if lead != nil {
		if v, ok := s.groups[g].Store(lead.ID()).Get(key); ok {
			return v, true, true
		}
		if !s.dualReadActive() {
			return nil, false, true // post-cutover the owner's miss is authoritative
		}
	}
	if s.dualReadActive() {
		pg, moved := s.router.RoutePrev(key)
		if !moved {
			// The key is not part of the live move; the owner's answer (or
			// its leaderless silence) stands alone.
			return nil, false, lead != nil
		}
		if plead := s.Leader(pg); plead != nil {
			if v, ok := s.groups[pg].Store(plead.ID()).Get(key); ok {
				return v, true, true
			}
			// Both responsible sides answered: an authoritative miss —
			// unless the current owner was leaderless, in which case only
			// the fallback spoke and a copy could be in flight toward the
			// silent side.
			return nil, false, lead != nil
		}
	}
	return nil, false, false
}

// PhysLinks exposes the consolidated deployment's shared physical mesh —
// every group's traffic rides it, so one SetDown severs the path for all
// of them. It is nil under Options.PerGroupMesh, where each group owns a
// private mesh (Group(g).Network()).
func (s *Cluster) PhysLinks() *netsim.Network[netsim.Envelope[raft.Message]] {
	if s.fabric == nil {
		return nil
	}
	return s.fabric.Net()
}

// WireStats reports the consolidated transport's message accounting:
// logical is the number of raft messages submitted by senders (what a
// per-group mesh would have put on the wire one-per-message), wire the
// number of envelopes that actually crossed the shared mesh. Their ratio
// is the per-node-pair batching factor. Both are zero under
// Options.PerGroupMesh.
func (s *Cluster) WireStats() (logical, wire uint64) {
	if s.fabric == nil {
		return 0, 0
	}
	st := s.fabric.Net().TotalStats()
	return s.fabric.LogicalMessages(), st.Sent[netsim.TCP] + st.Sent[netsim.UDP]
}

// CompactAll compacts every node's log in every group.
func (s *Cluster) CompactAll(keepLast uint64) {
	for _, c := range s.groups {
		c.CompactAll(keepLast)
	}
}

// MaxLogStats samples the worst per-node live Raft log across serving
// (non-retired) groups — the memory footprint the snapshot policy
// bounds. Retired groups' frozen logs are excluded: their processes are
// decommissioned, not resident.
func (s *Cluster) MaxLogStats() (entries int, bytes uint64) {
	for g, c := range s.groups {
		if s.retired[g] {
			continue
		}
		ls := c.LogStatsNow()
		if ls.MaxEntries > entries {
			entries = ls.MaxEntries
		}
		if ls.MaxBytes > bytes {
			bytes = ls.MaxBytes
		}
	}
	return entries, bytes
}
