package wireclient

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNotFound reports an absent key from the typed helpers.
var ErrNotFound = errors.New("wireclient: key not found")

// notReadyBackoff mirrors the HTTP front's pause when a member hints at
// itself: a freshly elected leader whose no-op or lease has not committed
// answers not-leader with its own ID for a few milliseconds.
const notReadyBackoff = 50 * time.Millisecond

// GroupClient talks to the members of one Raft group over pooled
// pipelined connections, following in-protocol StatusNotLeader hints the
// way the HTTP front follows X-Raft-Leader. Writes are only re-sent when
// the failure provably happened before any bytes left (a dial error) —
// the same at-most-once discipline as the HTTP path.
type GroupClient struct {
	pools []*Pool // index = node ID-1

	mu     sync.Mutex
	leader int // cached leader index
}

// NewGroupClient builds a client over the group's member binary
// addresses, indexed by node ID-1.
func NewGroupClient(addrs []string, cfg PoolConfig) *GroupClient {
	pools := make([]*Pool, len(addrs))
	for i, a := range addrs {
		pools[i] = NewPool(a, cfg)
	}
	return &GroupClient{pools: pools}
}

// Close tears down every member pool.
func (gc *GroupClient) Close() {
	for _, p := range gc.pools {
		p.Close()
	}
}

// Call routes r to the group's current leader: it starts at the cached
// leader, follows not-leader hints (bounded, loop-detected), and falls
// back to probing every member — the broadcast analog — before giving up.
func (gc *GroupClient) Call(r *Request) (Response, error) {
	members := gc.pools
	gc.mu.Lock()
	idx := gc.leader
	gc.mu.Unlock()
	leaderOnly := r.Op != OpPing && !(r.Op == OpGet && r.Flags&FlagLocal != 0)
	var lastErr error
	// failed: members that already failed this call; misdirected: members
	// that answered not-leader. Together they bound hint-following so two
	// members with mutually stale views cannot ping-pong the walk.
	failed := make(map[int]bool, len(members))
	misdirected := make(map[int]bool, len(members))
	backedOff := false
	for attempt := 0; attempt < len(members)+2; attempt++ {
		for n := 0; failed[idx%len(members)] && n < len(members); n++ {
			idx++
		}
		cur := idx % len(members)
		conn, err := gc.pools[cur].Get()
		if err != nil {
			// Dial failures never put bytes on the wire: safe to walk on
			// for every op, writes included.
			lastErr = err
			failed[cur] = true
			idx++
			continue
		}
		resp, err := conn.Call(r)
		if err != nil {
			if r.Op == OpPut {
				// The request may have reached the server before the
				// connection died; re-sending could commit it twice.
				return Response{}, fmt.Errorf("wireclient: write outcome unknown: %w", err)
			}
			lastErr = err
			failed[cur] = true
			idx++
			continue
		}
		if resp.Status == StatusNotLeader {
			misdirected[cur] = true
			hint := int(resp.Leader)
			if hint >= 1 && hint <= len(members) && !failed[hint-1] && (!misdirected[hint-1] || hint-1 == cur) {
				if hint-1 == cur {
					// The member IS the leader but not ready yet; wait one
					// beat, once per call.
					if backedOff {
						idx++
						lastErr = fmt.Errorf("wireclient: no leader (hint %d)", hint)
						continue
					}
					backedOff = true
					time.Sleep(notReadyBackoff)
				}
				idx = hint - 1
			} else {
				idx++
			}
			lastErr = fmt.Errorf("wireclient: no leader (hint %d)", hint)
			continue
		}
		if leaderOnly {
			gc.mu.Lock()
			gc.leader = cur
			gc.mu.Unlock()
		}
		return resp, nil
	}
	return Response{}, lastErr
}

// Client issues requests against one or more binary Front addresses,
// spreading load round-robin. The typed helpers cover the common calls;
// Do exposes the raw pipelined path for load generators.
type Client struct {
	pools []*Pool
	next  atomic.Uint64
}

// NewClient builds a client over front addresses.
func NewClient(addrs []string, cfg PoolConfig) *Client {
	pools := make([]*Pool, len(addrs))
	for i, a := range addrs {
		pools[i] = NewPool(a, cfg)
	}
	return &Client{pools: pools}
}

// Close tears down every pool.
func (c *Client) Close() {
	for _, p := range c.pools {
		p.Close()
	}
}

func (c *Client) pool() *Pool {
	return c.pools[c.next.Add(1)%uint64(len(c.pools))]
}

// Do issues r asynchronously on a pooled connection.
func (c *Client) Do(r *Request, cb func(Response, error)) { c.pool().Do(r, cb) }

// Call issues r and waits.
func (c *Client) Call(r *Request) (Response, error) { return c.pool().Call(r) }

// Put replicates key=value.
func (c *Client) Put(key string, value []byte) error {
	resp, err := c.Call(&Request{Op: OpPut, Key: key, Value: value})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Get reads key (leader lease read).
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.Call(&Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	if resp.Status == StatusNotFound {
		return nil, ErrNotFound
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// MultiGet reads keys positionally; absent keys come back nil with
// found=false.
func (c *Client) MultiGet(keys []string) (vals [][]byte, found []bool, err error) {
	resp, err := c.Call(&Request{Op: OpMultiGet, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, nil, err
	}
	return resp.Multi, resp.Found, nil
}

// Ping round-trips the protocol.
func (c *Client) Ping() error {
	resp, err := c.Call(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	return respErr(resp)
}

// respErr converts a non-OK/non-NotFound response into an error.
func respErr(r Response) error {
	switch r.Status {
	case StatusOK, StatusNotFound:
		return nil
	case StatusNotLeader:
		return fmt.Errorf("wireclient: not leader (hint %d)", r.Leader)
	default:
		return fmt.Errorf("wireclient: %s", r.Err)
	}
}
