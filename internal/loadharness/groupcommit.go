package loadharness

import (
	"fmt"
	"runtime"
	"time"
)

// Group-commit validation: the same closed-loop put-heavy drive, run
// twice over identical fleets — once with server-side proposal batching
// on, once per-request — at matched connection count and pipeline
// depth. Closed-loop (every slot waits for its reply before reissuing)
// makes ops/s a direct capacity read, which is the honest way to score
// a CPU-work optimization; the open-loop ramp stays the tool for
// latency-under-offered-load questions.

// GroupCommitOptions configure the batched-vs-per-request shoot-out.
type GroupCommitOptions struct {
	// Groups / NodesPerGroup size the fleet (defaults 1 / 3 — group
	// commit is a per-leader effect, one group keeps the contrast clean).
	Groups        int
	NodesPerGroup int
	// Conns is the binary connection count per mode (default 1024).
	Conns int
	// Depth is the pipeline depth per connection (default 4).
	Depth int
	// Duration is each mode's measured window (default 5s).
	Duration time.Duration
	// Keys is the keyspace (default 4096).
	Keys int
	// WriteFrac defaults to 1.0: group commit batches the propose path,
	// so an all-put drive measures exactly the optimized work.
	WriteFrac float64
	// BatchWindow for the batched mode (default batcher.DefaultWindow via
	// server.Config).
	BatchWindow time.Duration
	// Procs lists GOMAXPROCS settings to sweep (default {1} on a
	// single-core host, {1, NumCPU} otherwise — the multi-core column
	// only exists when the cores do).
	Procs []int
	// Progress receives one line per completed row.
	Progress func(string)
}

// GroupCommitRow is one (mode, GOMAXPROCS) measurement.
type GroupCommitRow struct {
	Mode        string    `json:"mode"` // "batched" | "per_request"
	Procs       int       `json:"gomaxprocs"`
	Conns       int       `json:"conns"`
	Depth       int       `json:"depth"`
	OpsPerSec   float64   `json:"ops_per_sec"`
	P99Ms       float64   `json:"p99_ms"`
	ClientPuts  uint64    `json:"client_puts"` // commands through the propose path
	Entries     uint64    `json:"entries"`     // raft entries proposed for them
	ProposeAmp  float64   `json:"propose_amp"` // Entries / ClientPuts
	MeanBatch   float64   `json:"mean_batch_depth"`
	MaxBatch    int       `json:"max_batch_depth"`
	FlushWindow uint64    `json:"flush_window"`
	FlushOps    uint64    `json:"flush_ops"`
	FlushBytes  uint64    `json:"flush_bytes"`
	CoreUtil    []float64 `json:"core_util,omitempty"`
}

// GroupCommitResult is the full sweep plus the headline ratio.
type GroupCommitResult struct {
	Rows []GroupCommitRow `json:"rows"`
	// Speedup is batched ops/s over per-request ops/s at the highest
	// GOMAXPROCS swept.
	Speedup float64 `json:"speedup"`
}

func (o *GroupCommitOptions) defaults() {
	if o.Groups <= 0 {
		o.Groups = 1
	}
	if o.NodesPerGroup <= 0 {
		o.NodesPerGroup = 3
	}
	if o.Conns <= 0 {
		o.Conns = 1024
	}
	if o.Depth <= 0 {
		o.Depth = 4
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if o.WriteFrac == 0 {
		o.WriteFrac = 1.0
	}
	if len(o.Procs) == 0 {
		o.Procs = []int{1}
		if n := runtime.NumCPU(); n > 1 {
			o.Procs = append(o.Procs, n)
		}
	}
}

// RunGroupCommitCompare measures batched vs per-request throughput at
// matched load for every requested GOMAXPROCS.
func RunGroupCommitCompare(o GroupCommitOptions) (*GroupCommitResult, error) {
	o.defaults()
	if _, err := RaiseFDLimit(uint64(o.Conns)*4 + fdSlack); err != nil {
		return nil, err
	}
	res := &GroupCommitResult{}
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	var perReqAtMax, batchedAtMax float64
	for _, procs := range o.Procs {
		runtime.GOMAXPROCS(procs)
		for _, mode := range []string{"per_request", "batched"} {
			window := time.Duration(0)
			if mode == "batched" {
				window = o.BatchWindow
				if window == 0 {
					window = 200 * time.Microsecond
				}
			}
			row, err := runGroupCommitMode(o, mode, procs, window)
			if err != nil {
				return nil, fmt.Errorf("loadharness: group commit %s @%d procs: %w", mode, procs, err)
			}
			res.Rows = append(res.Rows, *row)
			if procs == o.Procs[len(o.Procs)-1] {
				if mode == "batched" {
					batchedAtMax = row.OpsPerSec
				} else {
					perReqAtMax = row.OpsPerSec
				}
			}
			if o.Progress != nil {
				o.Progress(fmt.Sprintf("group-commit %s procs=%d: %.0f ops/s p99=%.2fms amp=%.3f mean-batch=%.1f",
					mode, procs, row.OpsPerSec, row.P99Ms, row.ProposeAmp, row.MeanBatch))
			}
		}
	}
	if perReqAtMax > 0 {
		res.Speedup = batchedAtMax / perReqAtMax
	}
	return res, nil
}

// runGroupCommitMode boots a fresh fleet, drives it closed-loop, and
// reads the propose-amplification counters off the servers themselves.
func runGroupCommitMode(o GroupCommitOptions, mode string, procs int, window time.Duration) (*GroupCommitRow, error) {
	f, err := StartFleet(FleetConfig{
		Groups:        o.Groups,
		NodesPerGroup: o.NodesPerGroup,
		BatchWindow:   window,
	})
	if err != nil {
		return nil, err
	}
	defer f.Stop()

	co := CompareOptions{
		BinAddr:   f.BinAddr,
		Conns:     o.Conns,
		Duration:  o.Duration,
		Depth:     o.Depth,
		Keys:      o.Keys,
		WriteFrac: o.WriteFrac,
	}
	if o.WriteFrac < 1 {
		if err := preload(Options{Addr: f.BinAddr, Keys: o.Keys, ValueBytes: 8}); err != nil {
			return nil, err
		}
	}
	base := f.BatchStats()
	before := sampleCPU()
	ops, p99, err := runBinClosed(co)
	util := cpuUtil(before, sampleCPU())
	if err != nil {
		return nil, err
	}
	st := f.BatchStats()
	row := &GroupCommitRow{
		Mode: mode, Procs: procs, Conns: o.Conns, Depth: o.Depth,
		OpsPerSec:   ops,
		P99Ms:       p99,
		ClientPuts:  st.ClientOps - base.ClientOps,
		Entries:     st.Entries - base.Entries,
		MaxBatch:    st.MaxDepth,
		FlushWindow: st.FlushWindow - base.FlushWindow,
		FlushOps:    st.FlushOps - base.FlushOps,
		FlushBytes:  st.FlushBytes - base.FlushBytes,
		CoreUtil:    util,
	}
	if row.ClientPuts > 0 {
		row.ProposeAmp = float64(row.Entries) / float64(row.ClientPuts)
	}
	if batches := st.Batches - base.Batches; batches > 0 {
		row.MeanBatch = float64(st.Ops-base.Ops) / float64(batches)
	}
	return row, nil
}
