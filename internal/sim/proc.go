package sim

import "time"

// Proc models a node's CPU as a single serial processor with a work queue.
// Every message handled and every timer fired consumes a configurable
// amount of service time; work that arrives while the processor is busy
// queues behind it. This is the substitute for the paper's `docker stats`
// CPU measurements and for the request-latency saturation curve of Fig. 5:
// utilization and queueing delay both fall out of the actual simulated
// message flow rather than an analytic formula.
//
// The processor serializes the node's event handlers, which also mirrors
// etcd's single raft goroutine.
type Proc struct {
	eng *Engine

	// busyUntil is the virtual time at which the processor drains the work
	// currently accepted. Work arriving at t begins at max(t, busyUntil).
	busyUntil time.Duration

	// busy accumulates total service time consumed, for utilization
	// accounting. windowBusy accumulates since the last TakeWindow call.
	busy       time.Duration
	windowBusy time.Duration

	// paused freezes the processor: work submitted (or completing) while
	// paused is dropped (a paused container's process is frozen and its
	// sockets overflow), matching the paper's `docker pause` failure mode.
	paused bool
}

// NewProc returns a processor bound to the engine's clock.
func NewProc(eng *Engine) *Proc {
	return &Proc{eng: eng}
}

// Exec schedules fn to run after the processor has worked off its current
// backlog plus cost service time; fn runs at the completion instant. A zero
// cost executes at max(now, busyUntil) — still serialized. Returns false if
// the processor is paused (the work is dropped).
func (p *Proc) Exec(cost time.Duration, fn func()) bool {
	return p.ExecNotify(cost, fn, func() {})
}

// ExecNotify behaves like Exec but calls dropped — immediately when the
// work is rejected outright, or at the completion instant when a pause
// landed between acceptance and execution — whenever fn will never run.
// Exec's silent skip models the frozen node itself; a caller acting for a
// remote client (which observes its RPC die with the frozen server) needs
// the notification to keep its accounting complete.
func (p *Proc) ExecNotify(cost time.Duration, fn, dropped func()) bool {
	if p.paused {
		dropped()
		return false
	}
	if cost < 0 {
		cost = 0
	}
	now := p.eng.Now()
	start := now
	if p.busyUntil > start {
		start = p.busyUntil
	}
	done := start + cost
	p.busyUntil = done
	p.busy += cost
	p.windowBusy += cost
	p.eng.Schedule(done, func() {
		if p.paused {
			dropped()
			return
		}
		fn()
	})
	return true
}

// Charge accrues cost of work that completes logically "now" (e.g. firing
// a packet onto the wire): the processor's backlog and utilization grow,
// delaying future Exec work, but no callback is scheduled. No-op while
// paused.
func (p *Proc) Charge(cost time.Duration) {
	if p.paused || cost <= 0 {
		return
	}
	now := p.eng.Now()
	if p.busyUntil < now {
		p.busyUntil = now
	}
	p.busyUntil += cost
	p.busy += cost
	p.windowBusy += cost
}

// Pause freezes the processor: queued completions are suppressed and new
// work is rejected until Resume.
func (p *Proc) Pause() { p.paused = true }

// Resume unfreezes the processor. Work dropped while paused stays dropped;
// the backlog clock restarts from the current instant.
func (p *Proc) Resume() {
	p.paused = false
	if now := p.eng.Now(); p.busyUntil < now {
		p.busyUntil = now
	}
}

// Paused reports whether the processor is frozen.
func (p *Proc) Paused() bool { return p.paused }

// Busy returns total service time consumed since construction.
func (p *Proc) Busy() time.Duration { return p.busy }

// TakeWindowBusy returns service time consumed since the previous call and
// resets the window accumulator. Dividing by the wall window length yields
// the utilization of one core over that window.
func (p *Proc) TakeWindowBusy() time.Duration {
	b := p.windowBusy
	p.windowBusy = 0
	return b
}

// Backlog returns how much accepted work is still pending at the current
// instant (zero when idle).
func (p *Proc) Backlog() time.Duration {
	if d := p.busyUntil - p.eng.Now(); d > 0 {
		return d
	}
	return 0
}
