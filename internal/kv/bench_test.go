package kv

import (
	"fmt"
	"testing"

	"dynatune/internal/raft"
)

// BenchmarkEncode measures command serialization (the per-request client
// cost on the leader's proposal path).
func BenchmarkEncode(b *testing.B) {
	c := Command{Op: OpPut, Client: 1, Seq: 42, Key: "some/realistic/key", Value: []byte("value-bytes-here")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(c)
	}
}

// BenchmarkDecodeApply measures state-machine application throughput.
func BenchmarkDecodeApply(b *testing.B) {
	s := NewStore()
	ents := make([]raft.Entry, 64)
	for i := range ents {
		ents[i] = raft.Entry{
			Term: 1, Index: uint64(i + 1),
			Data: Encode(Command{Op: OpPut, Client: 1, Seq: uint64(i + 1), Key: fmt.Sprintf("k%d", i%16), Value: []byte("v")}),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s = NewStore()
		b.StartTimer()
		s.Apply(ents)
	}
}
