package cluster

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"dynatune/internal/scenario"
)

// This file is the parallel trial runner. Every experiment in the testbed
// is a batch of independent simulations — each trial (or shard of trials)
// runs on its own sim.Engine with its own seed — so wall time scales with
// worker count while results stay bit-for-bit identical to a sequential
// run: shard seeds are derived from the experiment seed and the shard
// index (never from the worker that happens to execute the shard), and
// results are merged in shard order after all workers finish.

// trialShardSize is how many trials one shard (one cluster, one engine,
// one seed) runs sequentially. Trials within a shard share warmed tuner
// state exactly as the original sequential runners did; experiments with
// at most this many trials are bit-identical to the pre-parallel code.
// The scenario engine owns the canonical value; this name keeps the
// package's determinism tests reading naturally.
const trialShardSize = scenario.TrialShardSize

// TrialWorkers returns the worker count for parallel experiment runs: the
// DYNATUNE_TRIAL_WORKERS environment variable if set to a positive
// integer, otherwise GOMAXPROCS.
func TrialWorkers() int {
	if s := os.Getenv("DYNATUNE_TRIAL_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// RunSharded executes run(0..shards-1) on a pool of workers and returns
// the results indexed by shard. The output is independent of the worker
// count: shard inputs depend only on the shard index, and out[i] is
// written by whichever worker ran shard i. A panic in any shard is
// re-raised on the caller's goroutine after the pool drains.
func RunSharded[T any](workers, shards int, run func(shard int) T) []T {
	out := make([]T, shards)
	if shards == 0 {
		return out
	}
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for i := range out {
			out[i] = run(i)
		}
		return out
	}
	var next atomic.Int64
	var panicOnce sync.Once
	var panicked any
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= shards {
					return
				}
				out[i] = run(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// shardTrialCounts splits trials into shard-sized blocks: [size, size,
// ..., remainder]. Delegates to the scenario engine's canonical split.
func shardTrialCounts(trials, size int) []int {
	return scenario.ShardCounts(trials, size)
}

// shardSeed derives shard s's engine seed; the scenario engine owns the
// scheme (shard 0 keeps the experiment seed for historical
// reproducibility, later shards stride by a large odd constant).
func shardSeed(seed int64, s int) int64 {
	return scenario.ShardSeed(seed, s)
}
