package raft

import (
	"fmt"
	"math/rand"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/sim"
)

// testRuntime adapts one Node to the sim engine and a netsim network.
// It is a miniature version of the full cluster harness (which lives in
// internal/cluster); keeping a local copy lets the raft package be tested
// in isolation.
type testRuntime struct {
	eng    *sim.Engine
	net    *netsim.Network[Message]
	id     ID
	node   *Node
	timers map[timerKey]sim.Handle
	// class decides how heartbeats travel; consensus always uses TCP.
	hbClass netsim.Class
	applied []Entry
	down    bool
}

type timerKey struct {
	kind TimerKind
	peer ID
}

func (rt *testRuntime) Now() time.Duration { return rt.eng.Now() }
func (rt *testRuntime) Rand() *rand.Rand   { return rt.eng.Rand() }

func (rt *testRuntime) Send(m Message) {
	cls := netsim.TCP
	if m.Type == MsgHeartbeat || m.Type == MsgHeartbeatResp {
		cls = rt.hbClass
	}
	rt.net.Send(int(rt.id-1), int(m.To-1), cls, m)
}

func (rt *testRuntime) SetTimer(kind TimerKind, peer ID, at time.Duration) {
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.eng.Cancel(h)
	}
	rt.timers[key] = rt.eng.Schedule(at, func() {
		delete(rt.timers, key)
		if !rt.down {
			rt.node.OnTimer(kind, peer)
		}
	})
}

func (rt *testRuntime) CancelTimer(kind TimerKind, peer ID) {
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.eng.Cancel(h)
		delete(rt.timers, key)
	}
}

// testCluster wires n nodes over a simulated network.
type testCluster struct {
	eng    *sim.Engine
	net    *netsim.Network[Message]
	rts    []*testRuntime
	nodes  []*Node
	events []Event
}

type clusterOpts struct {
	n int
	// memberN, when non-zero, makes only the first memberN mesh endpoints
	// initial cluster members; the rest join later via addNode +
	// ProposeConfChange.
	memberN    int
	seed       int64
	params     netsim.Params
	tuners     func(i int) Tuner
	hbClass    netsim.Class
	noPreVote  bool
	noCheckQ   bool
	dropVotes  bool // used by targeted tests
	interceptf func(to int, m Message) bool
	// persisters, if set, supplies one Persister per node.
	persisters func(i int) Persister
}

func defaultOpts() clusterOpts {
	return clusterOpts{
		n:      3,
		seed:   1,
		params: netsim.Params{RTT: 10 * time.Millisecond, Jitter: time.Millisecond},
		tuners: func(int) Tuner {
			return NewStaticTuner(1000*time.Millisecond, 100*time.Millisecond)
		},
		hbClass: netsim.TCP,
	}
}

type recordTracer struct{ c *testCluster }

func (r recordTracer) Trace(ev Event) { r.c.events = append(r.c.events, ev) }

func newTestCluster(opts clusterOpts) *testCluster {
	c := &testCluster{eng: sim.NewEngine(opts.seed)}
	c.net = netsim.New[Message](c.eng, opts.n, netsim.Constant(opts.params), func(to int, m Message) {
		if to >= len(c.rts) {
			return // endpoint exists in the mesh but has not joined yet
		}
		rt := c.rts[to]
		if rt.down {
			return
		}
		if opts.interceptf != nil && !opts.interceptf(to, m) {
			return
		}
		rt.node.Step(m)
	})
	memberN := opts.memberN
	if memberN == 0 {
		memberN = opts.n
	}
	peers := make([]ID, memberN)
	for i := range peers {
		peers[i] = ID(i + 1)
	}
	for i := 0; i < memberN; i++ {
		rt := &testRuntime{
			eng:     c.eng,
			net:     c.net,
			id:      ID(i + 1),
			timers:  map[timerKey]sim.Handle{},
			hbClass: opts.hbClass,
		}
		var p Persister
		if opts.persisters != nil {
			p = opts.persisters(i)
		}
		node, err := NewNode(Config{
			ID:                 ID(i + 1),
			Peers:              peers,
			Runtime:            rt,
			Tuner:              opts.tuners(i),
			Tracer:             recordTracer{c},
			Apply:              func(ents []Entry) { rt.applied = append(rt.applied, ents...) },
			DisablePreVote:     opts.noPreVote,
			DisableCheckQuorum: opts.noCheckQ,
			Persister:          p,
		})
		if err != nil {
			panic(err)
		}
		rt.node = node
		c.rts = append(c.rts, rt)
		c.nodes = append(c.nodes, node)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c
}

// run advances the simulation d of virtual time.
func (c *testCluster) run(d time.Duration) {
	c.eng.Run(c.eng.Now() + d)
}

// leader returns the unique live leader, or nil.
func (c *testCluster) leader() *Node {
	var lead *Node
	for i, n := range c.nodes {
		if c.rts[i].down {
			continue
		}
		if n.State() == StateLeader {
			if lead != nil {
				// Two leaders may coexist transiently at different terms;
				// prefer the higher term.
				if n.Term() > lead.Term() {
					lead = n
				}
				continue
			}
			lead = n
		}
	}
	return lead
}

// waitLeader runs until a leader exists (or the deadline passes) and
// returns it.
func (c *testCluster) waitLeader(deadline time.Duration) *Node {
	for c.eng.Now() < deadline {
		if l := c.leader(); l != nil {
			return l
		}
		c.run(10 * time.Millisecond)
	}
	return c.leader()
}

// crash freezes a node: it stops processing messages and timers.
func (c *testCluster) crash(id ID) {
	c.rts[id-1].down = true
}

// restart unfreezes a node (its volatile state persists, like a paused
// container resuming).
func (c *testCluster) restart(id ID) {
	rt := c.rts[id-1]
	rt.down = false
	// Re-arm its election timer: frozen timers fired into the void.
	rt.node.Start()
}

func (c *testCluster) checkElectionSafety() error {
	// At most one leader per term, ever, judging by trace events.
	byTerm := map[uint64]ID{}
	for _, ev := range c.events {
		if ev.Kind != EventLeaderElected {
			continue
		}
		if prev, ok := byTerm[ev.Term]; ok && prev != ev.Node {
			return fmt.Errorf("two leaders in term %d: %d and %d", ev.Term, prev, ev.Node)
		}
		byTerm[ev.Term] = ev.Node
	}
	return nil
}

func (c *testCluster) checkLogMatching() error {
	// If two logs contain an entry with the same index and term, the
	// entries (and all preceding ones) must be identical.
	for i := 0; i < len(c.nodes); i++ {
		for j := i + 1; j < len(c.nodes); j++ {
			li, lj := c.nodes[i].Log(), c.nodes[j].Log()
			lo := max(li.FirstIndex()+1, lj.FirstIndex()+1)
			hi := min(li.LastIndex(), lj.LastIndex())
			for idx := hi; idx >= lo && idx > 0; idx-- {
				ti, _ := li.Term(idx)
				tj, _ := lj.Term(idx)
				if ti == tj {
					ei, _ := li.Entry(idx)
					ej, _ := lj.Entry(idx)
					if string(ei.Data) != string(ej.Data) {
						return fmt.Errorf("log matching violated at index %d", idx)
					}
				}
			}
		}
	}
	return nil
}

func (c *testCluster) checkCommittedPrefixAgreement() error {
	// Committed entries must agree across all nodes.
	minCommit := uint64(1<<63 - 1)
	for _, n := range c.nodes {
		if cm := n.Log().Committed(); cm < minCommit {
			minCommit = cm
		}
	}
	for idx := uint64(1); idx <= minCommit; idx++ {
		var data *string
		for _, n := range c.nodes {
			e, ok := n.Log().Entry(idx)
			if !ok {
				continue // compacted
			}
			s := string(e.Data)
			if data == nil {
				data = &s
			} else if *data != s {
				return fmt.Errorf("committed entry %d differs across nodes", idx)
			}
		}
	}
	return nil
}
