//go:build linux

package loadharness

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
	"unsafe"
)

// Core pinning and per-core utilization, Linux only. Worker processes
// pin themselves to one core each (round-robin assignment from the
// parent) so the load generators stop migrating across the cores the
// fleet needs, and the parent samples /proc/stat around each measured
// window to report how busy every core actually was. Both are
// best-effort: a container that masks the syscall or mounts no /proc
// degrades to the unpinned behavior, not an error.

// pinToCore binds every current thread of this process to one CPU.
// Threads spawned later inherit their creator's mask, so calling this
// early in a worker's life covers the runtime's pool too.
func pinToCore(core int) error {
	if core < 0 {
		return nil
	}
	var mask [16]uint64 // room for 1024 CPUs
	if core >= len(mask)*64 {
		return fmt.Errorf("loadharness: core %d out of range", core)
	}
	mask[core/64] |= 1 << (core % 64)
	tasks, err := os.ReadDir("/proc/self/task")
	if err != nil {
		return err
	}
	for _, t := range tasks {
		tid, err := strconv.Atoi(t.Name())
		if err != nil {
			continue
		}
		_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
			uintptr(tid), uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
		if errno != 0 && errno != syscall.ESRCH { // a thread may exit mid-walk
			return fmt.Errorf("loadharness: sched_setaffinity tid %d core %d: %v", tid, core, errno)
		}
	}
	return nil
}

// cpuSample is one /proc/stat reading: cumulative idle and total jiffies
// per core, in core order.
type cpuSample struct {
	idle  []uint64
	total []uint64
}

// sampleCPU reads the per-core counters; nil when /proc is unreadable.
func sampleCPU() *cpuSample {
	f, err := os.Open("/proc/stat")
	if err != nil {
		return nil
	}
	defer f.Close()
	s := &cpuSample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Per-core lines are "cpuN ..."; the aggregate "cpu" line is skipped.
		if len(fields) < 5 || !strings.HasPrefix(fields[0], "cpu") || fields[0] == "cpu" {
			continue
		}
		var idle, total uint64
		for i, fld := range fields[1:] {
			v, err := strconv.ParseUint(fld, 10, 64)
			if err != nil {
				break
			}
			total += v
			if i == 3 || i == 4 { // idle + iowait
				idle += v
			}
		}
		s.idle = append(s.idle, idle)
		s.total = append(s.total, total)
	}
	if len(s.total) == 0 {
		return nil
	}
	return s
}

// cpuUtil converts two samples into per-core busy fractions.
func cpuUtil(before, after *cpuSample) []float64 {
	if before == nil || after == nil {
		return nil
	}
	n := len(before.total)
	if len(after.total) < n {
		n = len(after.total)
	}
	util := make([]float64, n)
	for i := 0; i < n; i++ {
		dt := after.total[i] - before.total[i]
		if dt == 0 {
			continue
		}
		di := after.idle[i] - before.idle[i]
		util[i] = 1 - float64(di)/float64(dt)
	}
	return util
}
