package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
	"dynatune/internal/scenario/bind"
	"dynatune/internal/shard"
	"dynatune/internal/sim"
	"dynatune/internal/workload"
)

// MicroBench is one hot-path microbenchmark result.
type MicroBench struct {
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// FigureWall is the wall-clock cost of regenerating one (scaled-down)
// figure on this machine.
type FigureWall struct {
	Name   string  `json:"name"`
	WallMs float64 `json:"wall_ms"`
}

// ParallelTrials reports the parallel trial runner's wall time against the
// one-worker path, plus the determinism check: both runs must summarize
// identically or the speedup is meaningless.
type ParallelTrials struct {
	Trials       int     `json:"trials"`
	Workers      int     `json:"workers"`
	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// ScenarioWall times the declarative scenario engine end to end (registry
// lookup → bind realization → sharded execution), so the perf trajectory
// covers the orchestration layer and not just the raw loops.
type ScenarioWall struct {
	Name   string  `json:"name"`
	Scale  float64 `json:"scale"`
	WallMs float64 `json:"wall_ms"`
}

// GroupsPoint is one G of the multi-Raft groups-scaling curve: a fixed
// open-loop ramp over a G-group consolidated deployment, with the
// pre-consolidation per-group-mesh build run on the same profile for
// comparison (up to -legacy-max). AggOpsPerSec is committed requests per
// virtual second (capacity); OpsPerWallSec and EventsPerWallSec measure
// the simulator itself — the quantity the consolidation exists to scale.
type GroupsPoint struct {
	Groups           int     `json:"groups"`
	OfferedRPS       int     `json:"offered_rps"`
	Completed        int     `json:"completed"`
	AggOpsPerSec     float64 `json:"agg_ops_per_sec"`
	WallMs           float64 `json:"wall_ms"`
	OpsPerWallSec    float64 `json:"ops_per_wall_sec"`
	EventsPerWallSec float64 `json:"events_per_wall_sec"`
	// LogicalMsgs / WireMsgs: raft messages submitted vs envelopes that
	// crossed the shared mesh; their ratio is the per-node-pair batching
	// factor.
	LogicalMsgs  uint64  `json:"logical_msgs"`
	WireMsgs     uint64  `json:"wire_msgs"`
	MsgReduction float64 `json:"msg_reduction"`
	// Legacy* report the per-group-mesh build of the same point; Speedup
	// is consolidated over legacy ops-per-wall-second. Zero when the
	// legacy run was skipped (-legacy-max).
	LegacyWallMs        float64 `json:"legacy_wall_ms,omitempty"`
	LegacyOpsPerWallSec float64 `json:"legacy_ops_per_wall_sec,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// BenchReport is the BENCH.json schema: the per-PR perf trajectory record
// CI uploads as an artifact.
type BenchReport struct {
	Schema        string                `json:"schema"`
	GeneratedUnix int64                 `json:"generated_unix"`
	GoVersion     string                `json:"go_version"`
	GoMaxProcs    int                   `json:"gomaxprocs"`
	Micro         map[string]MicroBench `json:"microbench"`
	Figures       []FigureWall          `json:"figures"`
	Parallel      ParallelTrials        `json:"parallel_trials"`
	Scenarios     []ScenarioWall        `json:"scenario_runner"`
	GroupsCurve   []GroupsPoint         `json:"groups_curve,omitempty"`
	Compaction    *CompactionCurve      `json:"compaction_curve,omitempty"`
}

func parseGroupsList(csv string) []int {
	var out []int
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		g, err := strconv.Atoi(tok)
		if err != nil || g < 1 {
			fmt.Fprintf(os.Stderr, "bench: -groups entry %q is not a positive integer\n", tok)
			os.Exit(1)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "bench: -groups is empty")
		os.Exit(1)
	}
	return out
}

// groupsRun is one raw execution of the curve workload.
type groupsRun struct {
	offered   int
	completed int
	virtual   time.Duration
	wall      time.Duration
	fired     uint64
	logical   uint64
	wire      uint64
}

// runGroupsRamp drives a fixed open-loop ramp over a G-group deployment:
// the aggregate offered rate grows with G (300 req/s per group) up to a
// cap, so small points measure scaling and large points measure the
// simulator under heavy fan-out. Seeds and ramp are fixed — the only
// variable across a curve is G and the transport build.
func runGroupsRamp(groups int, perGroupMesh bool) groupsRun {
	aggRPS := 300 * groups
	if aggRPS > 8000 {
		aggRPS = 8000
	}
	ramp := workload.Ramp{StartRPS: aggRPS, StepRPS: 0, StepDuration: 2 * time.Second, Steps: 3}
	s := shard.New(shard.Options{
		Groups: groups, NodesPerGroup: 3, Seed: 77,
		Variant: cluster.VariantRaft(), Profile: stable100(),
		PerGroupMesh: perGroupMesh,
	})
	lg := shard.NewLoadGen(s, ramp, shard.LoadOptions{Keys: 4096})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		fmt.Fprintf(os.Stderr, "bench: groups-curve G=%d never elected all leaders\n", groups)
		os.Exit(1)
	}
	s.Run(time.Second)
	// Wall time covers the loaded window only: boot (G elections) and the
	// pre-load settle second measure deployment spin-up, not sustained
	// throughput, and at small ramps they would drown the signal.
	start := time.Now()
	f0 := s.Engine().Fired()
	lg.Start()
	s.Run(ramp.Duration() + 3*time.Second)
	r := groupsRun{
		offered:   aggRPS,
		completed: lg.TotalCompleted(),
		virtual:   ramp.Duration(),
		wall:      time.Since(start),
		fired:     s.Engine().Fired() - f0,
	}
	r.logical, r.wire = s.WireStats()
	return r
}

// groupsReps is how many times each curve point runs; the minimum wall
// time is kept. Virtual-time results are identical across reps (the
// simulation is deterministic) — only the wall clock is noisy, and min
// is its least-noise estimator.
const groupsReps = 3

// runGroupsBest runs one curve configuration groupsReps times and keeps
// the rep with the lowest wall time.
func runGroupsBest(groups int, perGroupMesh bool) groupsRun {
	best := runGroupsRamp(groups, perGroupMesh)
	for i := 1; i < groupsReps; i++ {
		if r := runGroupsRamp(groups, perGroupMesh); r.wall < best.wall {
			best = r
		}
	}
	return best
}

// runGroupsPoint runs the consolidated build of one curve point.
func runGroupsPoint(groups int) GroupsPoint {
	r := runGroupsBest(groups, false)
	pt := GroupsPoint{
		Groups:       groups,
		OfferedRPS:   r.offered,
		Completed:    r.completed,
		AggOpsPerSec: float64(r.completed) / r.virtual.Seconds(),
		WallMs:       float64(r.wall) / float64(time.Millisecond),
		LogicalMsgs:  r.logical,
		WireMsgs:     r.wire,
	}
	if r.wall > 0 {
		pt.OpsPerWallSec = float64(r.completed) / r.wall.Seconds()
		pt.EventsPerWallSec = float64(r.fired) / r.wall.Seconds()
	}
	if r.wire > 0 {
		pt.MsgReduction = float64(r.logical) / float64(r.wire)
	}
	return pt
}

func toMicro(r testing.BenchmarkResult) MicroBench {
	ns := float64(r.NsPerOp())
	eps := 0.0
	if ns > 0 {
		eps = 1e9 / ns
	}
	return MicroBench{NsPerOp: ns, EventsPerSec: eps, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
}

// bench runs the hot-path microbenchmarks, times quick versions of the
// figures, exercises the parallel trial runner, and (with -json) writes
// the whole report as BENCH.json.
func bench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonPath := fs.String("json", "", "write the report as JSON to this path (e.g. BENCH.json)")
	trials := fs.Int("trials", 150, "election trials for the parallel-runner timing")
	groupsCurve := fs.Bool("groups-curve", false, "run the multi-Raft groups-scaling curve")
	compactionCurve := fs.Bool("compaction-curve", false, "run the log-compaction growth curve and migration-mode comparison")
	groupsList := fs.String("groups", "1,2,4,8,16,32,64,128,256", "comma-separated group counts for -groups-curve")
	legacyMax := fs.Int("legacy-max", 64, "largest G to also run on the per-group-mesh build for comparison")
	fs.Parse(args) //nolint:errcheck // ExitOnError

	rep := BenchReport{
		Schema:        "dynatune-bench/v1",
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Micro:         map[string]MicroBench{},
	}

	fmt.Println("== Hot-path microbenchmarks (allocation-free sim core) ==")
	rep.Micro["engine_schedule_fire"] = toMicro(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Schedule(e.Now()+time.Microsecond, fn)
			e.Step()
		}
	}))
	rep.Micro["engine_timer_churn"] = toMicro(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		fn := func() {}
		var h sim.Handle
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Cancel(h)
			h = e.Schedule(e.Now()+time.Millisecond, fn)
			if i%64 == 0 {
				e.Step()
			}
		}
	}))
	rep.Micro["engine_deep_queue"] = toMicro(testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		fn := func() {}
		for i := 0; i < 4096; i++ { // steady 4k-event backlog
			e.Schedule(e.Now()+time.Duration(i)*time.Microsecond, fn)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Schedule(e.Now()+4096*time.Microsecond, fn)
			e.Step()
		}
	}))
	rep.Micro["netsim_udp_send_deliver"] = toMicro(testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine(1)
		nw := netsim.New(eng, 2, netsim.Constant(netsim.Params{RTT: time.Millisecond, Jitter: 100 * time.Microsecond}),
			func(to, msg int) {})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nw.Send(0, 1, netsim.UDP, i)
			eng.Run(eng.Now() + 2*time.Millisecond)
		}
	}))
	rep.Micro["netsim_tcp_send_deliver"] = toMicro(testing.Benchmark(func(b *testing.B) {
		eng := sim.NewEngine(1)
		nw := netsim.New(eng, 2, netsim.Constant(netsim.Params{RTT: time.Millisecond, Loss: 0.05}),
			func(to, msg int) {})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nw.Send(0, 1, netsim.TCP, i)
			eng.Run(eng.Now() + 2*time.Millisecond)
		}
	}))
	for _, k := range []string{"engine_schedule_fire", "engine_timer_churn", "engine_deep_queue", "netsim_udp_send_deliver", "netsim_tcp_send_deliver"} {
		m := rep.Micro[k]
		fmt.Printf("  %-24s %8.1f ns/op  %12.0f events/s  %3d allocs/op  %4d B/op\n",
			k, m.NsPerOp, m.EventsPerSec, m.AllocsPerOp, m.BytesPerOp)
	}

	fmt.Println("== Per-figure wall time (scaled-down experiments) ==")
	timeFig := func(name string, fn func()) {
		start := time.Now()
		fn()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		rep.Figures = append(rep.Figures, FigureWall{Name: name, WallMs: ms})
		fmt.Printf("  %-16s %8.0f ms\n", name, ms)
	}
	timeFig("fig4-elections", func() {
		for _, v := range []cluster.Variant{cluster.VariantRaft(), cluster.VariantDynatune(dynatune.Options{})} {
			cluster.RunElectionTrials(cluster.Options{N: 5, Seed: 42, Variant: v, Profile: stable100()}, 60, 4*time.Second)
		}
	})
	timeFig("fig5-ramp", func() {
		ramp := workload.Ramp{StartRPS: 4000, StepRPS: 4000, StepDuration: 2 * time.Second, Steps: 4}
		cluster.RunThroughputRamp(cluster.Options{N: 5, Seed: 21, Variant: cluster.VariantRaft(), Profile: stable100()}, ramp, 2)
	})
	timeFig("xfer-handover", func() {
		cluster.RunTransferTrials(cluster.Options{N: 5, Seed: 61, Variant: cluster.VariantRaft(), Profile: stable100()}, 30, time.Second)
	})
	timeFig("sharded-ramp", func() {
		ramp := workload.Ramp{StartRPS: 2000, StepRPS: 0, StepDuration: time.Second, Steps: 3}
		shard.RunRamp(shard.Options{Groups: 4, NodesPerGroup: 3, Seed: 23, Variant: cluster.VariantRaft(),
			Profile: stable100()}, ramp, shard.LoadOptions{Keys: 1024})
	})

	fmt.Println("== Scenario engine wall time (registry → bind → sharded execution) ==")
	for _, sc := range []struct {
		name  string
		scale float64
	}{
		{"asym-partition-abdication", 0.15},
		{"cascading-leader-failures", 1},
		{"loss-pulse-degrade", 1},
	} {
		start := time.Now()
		if _, err := bind.RunNamed(sc.name, sc.scale); err != nil {
			fmt.Fprintf(os.Stderr, "bench: scenario %s: %v\n", sc.name, err)
			os.Exit(1)
		}
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		rep.Scenarios = append(rep.Scenarios, ScenarioWall{Name: sc.name, Scale: sc.scale, WallMs: ms})
		fmt.Printf("  %-28s (x%.2f) %8.0f ms\n", sc.name, sc.scale, ms)
	}

	if *groupsCurve {
		fmt.Println("== Multi-Raft groups-scaling curve (consolidated vs per-group-mesh) ==")
		for _, g := range parseGroupsList(*groupsList) {
			pt := runGroupsPoint(g)
			if g <= *legacyMax {
				lr := runGroupsBest(g, true)
				pt.LegacyWallMs = float64(lr.wall) / float64(time.Millisecond)
				if lr.wall > 0 {
					pt.LegacyOpsPerWallSec = float64(lr.completed) / lr.wall.Seconds()
				}
				if pt.LegacyOpsPerWallSec > 0 {
					pt.Speedup = pt.OpsPerWallSec / pt.LegacyOpsPerWallSec
				}
			}
			rep.GroupsCurve = append(rep.GroupsCurve, pt)
			fmt.Printf("  G=%-4d %7d ops (%6.0f ops/vs) wall %7.0f ms  %11.0f ev/s  msgs %9d→%8d (%4.1fx)",
				pt.Groups, pt.Completed, pt.AggOpsPerSec, pt.WallMs, pt.EventsPerWallSec,
				pt.LogicalMsgs, pt.WireMsgs, pt.MsgReduction)
			if pt.Speedup > 0 {
				fmt.Printf("  legacy %7.0f ms (%4.2fx)", pt.LegacyWallMs, pt.Speedup)
			}
			fmt.Println()
		}
	}

	if *compactionCurve {
		fmt.Println("== Compaction curve (bounded logs + snapshot-ship vs key-stream migration) ==")
		rep.Compaction = runCompactionCurve()
	}

	fmt.Println("== Parallel trial runner (workers vs 1, identical results required) ==")
	opts := cluster.Options{N: 5, Seed: 42, Variant: cluster.VariantRaft(), Profile: stable100()}
	fingerprint := func(r cluster.ElectionResult) string {
		det, ots := r.Summary()
		return fmt.Sprintf("%d/%d/%v/%v/%v", len(r.DetectionMs), r.FailedTrials, det, ots, r.MeanRandTimeoutMs)
	}
	prevWorkers, hadWorkers := os.LookupEnv("DYNATUNE_TRIAL_WORKERS")
	os.Setenv("DYNATUNE_TRIAL_WORKERS", "1")
	start := time.Now()
	seq := cluster.RunElectionTrials(opts, *trials, 4*time.Second)
	seqMs := float64(time.Since(start)) / float64(time.Millisecond)
	if hadWorkers {
		os.Setenv("DYNATUNE_TRIAL_WORKERS", prevWorkers)
	} else {
		os.Unsetenv("DYNATUNE_TRIAL_WORKERS")
	}
	workers := cluster.TrialWorkers()
	start = time.Now()
	par := cluster.RunElectionTrials(opts, *trials, 4*time.Second)
	parMs := float64(time.Since(start)) / float64(time.Millisecond)
	rep.Parallel = ParallelTrials{
		Trials: *trials, Workers: workers,
		SequentialMs: seqMs, ParallelMs: parMs,
		Speedup:   seqMs / parMs,
		Identical: fingerprint(seq) == fingerprint(par),
	}
	fmt.Printf("  %d trials: 1 worker %.0f ms, %d workers %.0f ms (%.2fx), identical=%v\n",
		*trials, seqMs, workers, parMs, rep.Parallel.Speedup, rep.Parallel.Identical)
	if !rep.Parallel.Identical {
		fmt.Fprintln(os.Stderr, "bench: parallel trial runner diverged from sequential results")
		os.Exit(1)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}
