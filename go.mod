module dynatune

go 1.24.0
