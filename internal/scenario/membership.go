package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/raft"
)

// runMembership grows an (N−1)-voter cluster by one node: add it as a
// learner, wait for catch-up, promote it to voter, then crash the leader
// to measure failover with the fresh member in place. Under Dynatune the
// joiner starts with cold measurement state — its election timeout sits
// at the conservative fallback until minListSize heartbeats arrive, so a
// failover immediately after the join is detected by the *old* members'
// tuned timers, not the joiner's. The Env's cluster must be built with
// InitialMembers = N−1 (the legacy wrapper and bind both arrange this).
func runMembership(spec Spec, env Env) *MembershipResult {
	preload := 0
	if spec.Membership != nil {
		preload = spec.Membership.Preload
	}
	c := env.NewCluster(spec.Seed)
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		panic(fmt.Sprintf("membership(%s): no leader", env.variantName(spec)))
	}
	c.Run(3 * time.Second)
	lead = c.Leader()
	for i := 0; i < preload; i++ {
		if err := proposePut(lead, 1, uint64(i+1), fmt.Sprintf("preload-%d", i), []byte("x")); err != nil {
			panic(err)
		}
		if i%64 == 63 {
			c.Run(50 * time.Millisecond)
		}
	}
	c.Run(2 * time.Second)

	eng := c.Engine()
	rec := c.Recorder()
	res := &MembershipResult{Variant: env.variantName(spec)}
	joiner := raft.ID(c.N())
	target := lead.Log().LastIndex()

	addAt := eng.Now()
	if _, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddLearner, Node: joiner}); err != nil {
		panic(err)
	}
	deadline := eng.Now() + 60*time.Second
	for eng.Now() < deadline {
		c.Run(20 * time.Millisecond)
		if c.Node(joiner).Log().Applied() >= target {
			break
		}
	}
	res.CatchupMs = float64(eng.Now()-addAt) / float64(time.Millisecond)

	if tn := c.DynatuneTuner(joiner); tn != nil {
		for eng.Now() < deadline {
			if tn.Tuned() {
				res.JoinerTunedMs = float64(eng.Now()-addAt) / float64(time.Millisecond)
				break
			}
			c.Run(20 * time.Millisecond)
		}
	}

	lead = c.Leader()
	promoteAt := eng.Now()
	idx, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddVoter, Node: joiner})
	if err != nil {
		panic(err)
	}
	for eng.Now() < deadline {
		c.Run(10 * time.Millisecond)
		if lead.Log().Applied() >= idx {
			break
		}
	}
	res.PromoteMs = float64(eng.Now()-promoteAt) / float64(time.Millisecond)
	c.Run(500 * time.Millisecond)

	// Failover with the fresh voter in place.
	old, failAt := c.PauseLeader()
	fDeadline := eng.Now() + 60*time.Second
	for eng.Now() < fDeadline {
		c.Run(20 * time.Millisecond)
		if d, who, ok := rec.FirstElectionAfter(failAt); ok {
			res.PostFailoverOTSMs = float64(d) / float64(time.Millisecond)
			res.JoinerBecameLeader = who == joiner
			break
		}
	}
	c.Resume(old)
	return res
}
