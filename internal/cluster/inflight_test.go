package cluster

import (
	"testing"
	"time"

	"dynatune/internal/raft"
)

// TestInflightTermAccounting pins the collision semantics the load
// generators' metrics rest on: index reuse across terms counts the losing
// proposal lost exactly once, keeps the winner, and term-mismatched
// applies never fabricate completions.
func TestInflightTermAccounting(t *testing.T) {
	f := NewInflight()
	f.Record(100, 2, []time.Duration{1, 2}, 99) // indexes 100,101 under term 2

	// A newer-term batch reusing index 100 (the old leader died with it
	// unreplicated, the log was truncated): old pending displaced, lost.
	f.Record(100, 3, []time.Duration{5}, 99)
	if got := f.Lost(); got != 1 {
		t.Fatalf("lost after displacement = %d, want 1", got)
	}
	if at, ok := f.Resolve(raft.Entry{Index: 100, Term: 3}); !ok || at != 5 {
		t.Fatalf("resolve(100,t3) = %v,%v, want 5,true", at, ok)
	}

	// A stale deposed leader's late propose reusing a tracked index with
	// an OLDER term: the stale batch is the lost one, the tracked pending
	// stays and still completes.
	f.Record(101, 1, []time.Duration{9}, 99)
	if got := f.Lost(); got != 2 {
		t.Fatalf("lost after stale propose = %d, want 2", got)
	}
	if at, ok := f.Resolve(raft.Entry{Index: 101, Term: 2}); !ok || at != 2 {
		t.Fatalf("resolve(101,t2) = %v,%v, want 2,true", at, ok)
	}

	// An entry applied with a different term than proposed: not a
	// completion, counted lost, and the slot is cleared.
	f.Record(200, 4, []time.Duration{7}, 199)
	if _, ok := f.Resolve(raft.Entry{Index: 200, Term: 5}); ok {
		t.Fatal("term-mismatched apply must not complete")
	}
	if got := f.Lost(); got != 3 {
		t.Fatalf("lost after term mismatch = %d, want 3", got)
	}
	if got := f.Len(); got != 0 {
		t.Fatalf("len = %d, want 0", got)
	}
	// Untracked entries resolve to nothing.
	if _, ok := f.Resolve(raft.Entry{Index: 999, Term: 1}); ok {
		t.Fatal("untracked index must not complete")
	}

	// A stale leader proposing at or below the group's applied watermark:
	// the slot was already committed and applied under a newer term, no
	// future apply event will carry it — counted lost immediately, never
	// tracked (a tracked copy would leak forever).
	f.Record(300, 6, []time.Duration{1, 2, 3}, 301)
	if got := f.Lost(); got != 5 {
		t.Fatalf("lost after stale-floor record = %d, want 5", got)
	}
	if got := f.Len(); got != 1 {
		t.Fatalf("len after stale-floor record = %d, want 1 (only index 302)", got)
	}
	if at, ok := f.Resolve(raft.Entry{Index: 302, Term: 6}); !ok || at != 3 {
		t.Fatalf("resolve(302,t6) = %v,%v, want 3,true", at, ok)
	}
}
