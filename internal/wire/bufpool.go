package wire

import "sync"

// Size-classed byte-buffer pools shared by the wire codec, the transport,
// and the binary client protocol (internal/wireclient): frame encode and
// decode scratch cycles through here instead of the garbage collector.
// Classes are powers of two from 512 B up to MaxFrame; a request for more
// than MaxFrame falls through to a plain allocation (such buffers are
// rejected by the framers anyway, so pooling them would only pin memory).

const (
	minPoolClass = 9  // 512 B
	maxPoolClass = 26 // 64 MiB == MaxFrame
)

var bufPools [maxPoolClass - minPoolClass + 1]sync.Pool

func poolClass(n int) int {
	c := minPoolClass
	for n > 1<<c {
		c++
	}
	return c
}

// GetBuf returns a zero-length buffer with capacity ≥ n from the pool.
func GetBuf(n int) []byte {
	if n > MaxFrame {
		return make([]byte, 0, n)
	}
	c := poolClass(n)
	if v := bufPools[c-minPoolClass].Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<c)
}

// PutBuf recycles a buffer obtained from GetBuf. The caller must not use b
// afterwards. Buffers of foreign sizes (grown past their class, or larger
// than MaxFrame) are dropped rather than poisoning a class with the wrong
// capacity.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolClass || c > MaxFrame {
		return
	}
	cls := poolClass(c)
	if 1<<cls != c {
		return // not an exact class size: grown or foreign
	}
	bufPools[cls-minPoolClass].Put(b[:0]) //nolint:staticcheck // slice header boxing is fine here
}
