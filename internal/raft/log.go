package raft

import "fmt"

// Log is the in-memory replicated log. Index 0 is a sentinel (term 0);
// real entries start at index 1. A production deployment would persist
// entries and compact with snapshots; the evaluation workloads here are
// bounded, so the log additionally supports manual compaction that keeps
// a tail window (CompactTo) to bound memory in long simulations.
type Log struct {
	// offset is the index of entries[0]. Compaction advances it.
	offset  uint64
	entries []Entry

	// bytes is the payload size of the retained real entries (the
	// sentinel's data is always discarded), maintained incrementally so
	// size-based compaction policies don't rescan the log.
	bytes uint64

	committed uint64
	applied   uint64

	obs LogObserver
}

// LogObserver is notified synchronously of log mutations that must be made
// durable; the node installs one when a Persister is configured.
type LogObserver interface {
	// Appended reports entries added after the current tail.
	Appended(entries []Entry)
	// TruncatedFrom reports that entries with Index >= index were dropped
	// (a conflicting suffix being replaced).
	TruncatedFrom(index uint64)
}

// NewLog returns a log containing only the index-0 sentinel.
func NewLog() *Log {
	return &Log{entries: []Entry{{Term: 0, Index: 0}}}
}

// NewLogFromState rebuilds a log from recovered durable state: a snapshot
// floor (snapIndex, snapTerm) — zero for none — and the contiguous entry
// suffix above it. Commit and apply restart at the snapshot floor.
func NewLogFromState(snapIndex, snapTerm uint64, entries []Entry) *Log {
	l := &Log{
		offset:    snapIndex,
		entries:   make([]Entry, 1, len(entries)+1),
		committed: snapIndex,
		applied:   snapIndex,
	}
	l.entries[0] = Entry{Term: snapTerm, Index: snapIndex}
	for _, e := range entries {
		if e.Index != l.LastIndex()+1 {
			panic(fmt.Sprintf("raft: restored entries not contiguous at %d (want %d)", e.Index, l.LastIndex()+1))
		}
		l.entries = append(l.entries, e)
		l.bytes += uint64(len(e.Data))
	}
	return l
}

// SetObserver installs the durability observer. Pre-existing entries (a
// restored suffix) are not re-notified.
func (l *Log) SetObserver(obs LogObserver) { l.obs = obs }

// LastIndex returns the index of the last entry.
func (l *Log) LastIndex() uint64 {
	return l.offset + uint64(len(l.entries)) - 1
}

// FirstIndex returns the index of the oldest retained entry (the sentinel
// counts, so this is offset).
func (l *Log) FirstIndex() uint64 { return l.offset }

// Committed returns the commit index.
func (l *Log) Committed() uint64 { return l.committed }

// Applied returns the apply index.
func (l *Log) Applied() uint64 { return l.applied }

// Term returns the term of the entry at index i, or false if i has been
// compacted away or lies beyond the last entry.
func (l *Log) Term(i uint64) (uint64, bool) {
	if i < l.offset || i > l.LastIndex() {
		return 0, false
	}
	return l.entries[i-l.offset].Term, true
}

// Entry returns the real entry at index i. The compaction sentinel at
// FirstIndex does not count (its Data was discarded); use Term for
// consistency checks at that position.
func (l *Log) Entry(i uint64) (Entry, bool) {
	if i <= l.offset || i > l.LastIndex() {
		return Entry{}, false
	}
	return l.entries[i-l.offset], true
}

// LastTerm returns the term of the last entry.
func (l *Log) LastTerm() uint64 {
	t, _ := l.Term(l.LastIndex())
	return t
}

// Append adds entries after the current last index, assigning indexes.
// It returns the new last index.
func (l *Log) Append(term uint64, data ...[]byte) uint64 {
	first := len(l.entries)
	for _, d := range data {
		l.entries = append(l.entries, Entry{Term: term, Index: l.LastIndex() + 1, Data: d})
		l.bytes += uint64(len(d))
	}
	if l.obs != nil && len(l.entries) > first {
		l.obs.Appended(l.entries[first:])
	}
	return l.LastIndex()
}

// AppendTyped adds one entry of an explicit type (conf changes) after the
// current last index and returns its index.
func (l *Log) AppendTyped(term uint64, typ EntryType, data []byte) uint64 {
	e := Entry{Term: term, Index: l.LastIndex() + 1, Type: typ, Data: data}
	l.entries = append(l.entries, e)
	l.bytes += uint64(len(data))
	if l.obs != nil {
		l.obs.Appended(l.entries[len(l.entries)-1:])
	}
	return l.LastIndex()
}

// MatchesPrev reports whether the log contains an entry at prevIndex with
// prevTerm — Raft's AppendEntries consistency check.
func (l *Log) MatchesPrev(prevIndex, prevTerm uint64) bool {
	t, ok := l.Term(prevIndex)
	return ok && t == prevTerm
}

// MaybeAppend applies the AppendEntries rules: given a consistent
// (prevIndex, prevTerm), it truncates any conflicting suffix and appends
// the new entries. It returns the resulting last index of the appended
// range and true, or 0 and false if the consistency check fails.
func (l *Log) MaybeAppend(prevIndex, prevTerm uint64, entries []Entry) (uint64, bool) {
	if !l.MatchesPrev(prevIndex, prevTerm) {
		return 0, false
	}
	lastNew := prevIndex + uint64(len(entries))
	for i, e := range entries {
		if t, ok := l.Term(e.Index); ok {
			if t == e.Term {
				continue // already have it
			}
			if e.Index <= l.committed {
				panic(fmt.Sprintf("raft: conflict at committed index %d (term %d vs %d)", e.Index, t, e.Term))
			}
			l.truncateFrom(e.Index)
		}
		l.entries = append(l.entries, entries[i:]...)
		for _, e := range entries[i:] {
			l.bytes += uint64(len(e.Data))
		}
		if l.obs != nil {
			l.obs.Appended(entries[i:])
		}
		break
	}
	return lastNew, true
}

func (l *Log) truncateFrom(i uint64) {
	if i <= l.offset {
		panic(fmt.Sprintf("raft: truncate at compacted index %d (offset %d)", i, l.offset))
	}
	for _, e := range l.entries[i-l.offset:] {
		l.bytes -= uint64(len(e.Data))
	}
	l.entries = l.entries[:i-l.offset]
	if l.obs != nil {
		l.obs.TruncatedFrom(i)
	}
}

// Slice returns entries in [lo, hi] inclusive, capped at maxEntries
// (0 = unlimited). It returns false if lo has been compacted away.
func (l *Log) Slice(lo, hi uint64, maxEntries int) ([]Entry, bool) {
	if lo < l.offset || lo > l.LastIndex() {
		return nil, false
	}
	if hi > l.LastIndex() {
		hi = l.LastIndex()
	}
	if hi < lo {
		return nil, true
	}
	n := hi - lo + 1
	if maxEntries > 0 && n > uint64(maxEntries) {
		n = uint64(maxEntries)
	}
	out := make([]Entry, n)
	copy(out, l.entries[lo-l.offset:lo-l.offset+n])
	return out, true
}

// CommitTo advances the commit index (never backwards past committed,
// never beyond the last entry).
func (l *Log) CommitTo(i uint64) {
	if i > l.LastIndex() {
		i = l.LastIndex()
	}
	if i > l.committed {
		l.committed = i
	}
}

// NextToApply returns committed-but-unapplied entries and marks them
// applied. Callers feed them to the state machine in order.
func (l *Log) NextToApply() []Entry {
	if l.applied >= l.committed {
		return nil
	}
	ents, ok := l.Slice(l.applied+1, l.committed, 0)
	if !ok {
		panic(fmt.Sprintf("raft: apply range [%d,%d] compacted (offset %d)", l.applied+1, l.committed, l.offset))
	}
	l.applied = l.committed
	return ents
}

// IsUpToDate reports whether a candidate whose last entry is (index, term)
// is at least as up to date as this log — Raft's §5.4.1 voting rule.
func (l *Log) IsUpToDate(index, term uint64) bool {
	lt := l.LastTerm()
	return term > lt || (term == lt && index >= l.LastIndex())
}

// CompactTo discards entries up to and including index i (which must be
// applied), keeping i as the new sentinel. Used to bound memory in long
// throughput simulations.
func (l *Log) CompactTo(i uint64) {
	if i > l.applied {
		panic(fmt.Sprintf("raft: compacting beyond applied (%d > %d)", i, l.applied))
	}
	if i <= l.offset {
		return
	}
	// Everything through index i leaves the retained window — including
	// the payload of the entry becoming the new sentinel.
	for _, e := range l.entries[1 : i-l.offset+1] {
		l.bytes -= uint64(len(e.Data))
	}
	keep := l.entries[i-l.offset:]
	l.entries = append(make([]Entry, 0, len(keep)), keep...)
	// entries[0] is now the entry at index i, acting as the sentinel: its
	// Term is preserved so MatchesPrev(i, term) still works.
	l.entries[0].Data = nil
	l.offset = i
}

// Len returns the number of real entries retained (excluding the sentinel).
func (l *Log) Len() int { return len(l.entries) - 1 }

// Bytes returns the payload size of the retained real entries.
func (l *Log) Bytes() uint64 { return l.bytes }

// RestoreSnapshot discards the entire log and re-bases it on a snapshot
// whose last included entry is (index, term). Commit and apply indexes
// jump to the snapshot point; the state machine must be restored
// separately by the caller.
func (l *Log) RestoreSnapshot(index, term uint64) {
	l.offset = index
	l.entries = []Entry{{Term: term, Index: index}}
	l.bytes = 0
	l.committed = index
	l.applied = index
}
