package transport

import (
	"net"
	"testing"
	"time"

	"dynatune/internal/raft"
)

func reserveAddr(t *testing.T, network string) string {
	t.Helper()
	if network == "udp" {
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := pc.LocalAddr().String()
		pc.Close()
		return addr
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// Messages sent while a peer is down must queue and flush, in order, once
// the peer restarts at the SAME address — the background-redial path, as
// opposed to TestReconnectAfterPeerRestart's explicit re-SetPeer on fresh
// ports.
func TestRedialFlushesQueueAfterPeerRestart(t *testing.T) {
	peerTCP := reserveAddr(t, "tcp")
	peerUDP := reserveAddr(t, "udp")

	in1 := make(chan raft.Message, 64)
	t1, err := Start(Config{
		ID:      1,
		Listen:  PeerAddr{TCP: "127.0.0.1:0", UDP: "127.0.0.1:0"},
		Handler: func(m raft.Message) { in1 <- m },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()

	start2 := func() (*Transport, chan raft.Message) {
		in := make(chan raft.Message, 64)
		tr, err := Start(Config{
			ID:      2,
			Listen:  PeerAddr{TCP: peerTCP, UDP: peerUDP},
			Handler: func(m raft.Message) { in <- m },
		})
		if err != nil {
			t.Fatal(err)
		}
		tr.SetPeer(1, t1.Addrs())
		return tr, in
	}

	t2, in2 := start2()
	t1.SetPeer(2, PeerAddr{TCP: peerTCP, UDP: peerUDP})
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 1})
	recvOne(t, in2)

	// Peer goes down. The first post-outage write may still land in the
	// dying socket's buffer and be lost (at-most-once transport — raft
	// retransmits); everything after the break is detected must queue and
	// flush in order once the peer is back.
	t2.Close()
	time.Sleep(50 * time.Millisecond) // let the listener actually close
	for term := uint64(2); term <= 5; term++ {
		t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: term})
		time.Sleep(10 * time.Millisecond) // give the writer time to see the break
	}

	// Peer restarts at the same address; the queued tail must drain in
	// order, ending with term 5.
	t2b, in2b := start2()
	defer t2b.Close()

	deadline := time.After(10 * time.Second)
	last := uint64(0)
	for last != 5 {
		select {
		case m := <-in2b:
			if m.Term <= last {
				t.Fatalf("redial flush out of order: got term %d after %d", m.Term, last)
			}
			last = m.Term
		case <-deadline:
			t.Fatalf("queue never flushed after restart (last term seen: %d)", last)
		}
	}

	// And the connection is live again for fresh traffic.
	t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 6})
	if m := recvOne(t, in2b); m.Term != 6 {
		t.Fatalf("post-restart send: term %d", m.Term)
	}
}

// Close during an outage must not leak the redial goroutine or panic on
// the WaitGroup: queued messages are dropped and Close returns promptly.
func TestCloseDuringRedialOutage(t *testing.T) {
	peerTCP := reserveAddr(t, "tcp")
	peerUDP := reserveAddr(t, "udp")
	t1, err := Start(Config{
		ID:      1,
		Listen:  PeerAddr{TCP: "127.0.0.1:0", UDP: "127.0.0.1:0"},
		Handler: func(raft.Message) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t1.SetPeer(2, PeerAddr{TCP: peerTCP, UDP: peerUDP}) // nothing listening
	for i := 0; i < 10; i++ {
		t1.Send(raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: uint64(i)})
	}
	done := make(chan struct{})
	go func() { t1.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung while a redial was in flight")
	}
}
