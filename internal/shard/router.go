// Package shard implements the sharded multi-Raft layer: a consistent-hash
// router that maps keys onto N independent Raft groups, a simulated
// multi-group cluster running every group on one virtual clock (each group
// with its own kv state machine, log and tuner instance), a keyed open-loop
// load generator that fans traffic out across the groups, and the ramp
// experiment comparing aggregate committed-ops throughput at different
// shard counts.
//
// A single Raft group serializes every write through one leader, so no
// matter how well the paper's tuner adapts timeouts the service capacity is
// one leader's CPU. Sharding multiplies that ceiling: disjoint key ranges
// commit through disjoint leaders, while each group keeps its own dynatune
// instance adapting to the shared WAN conditions.
package shard

import (
	"fmt"
	"sort"
)

// GroupID identifies one Raft group (0-based).
type GroupID int

// DefaultReplicas is the default number of virtual nodes each group
// places on the ring. More replicas smooth the key distribution; 256
// keeps per-group load within ≈10% of uniform up to 16 groups.
const DefaultReplicas = 256

// Router maps keys onto groups with a consistent-hash ring (each group
// contributes `replicas` virtual points; a key belongs to the first point
// clockwise of its hash). The mapping is a pure function of (groups,
// replicas): re-instantiating with the same shape yields the same routing,
// and growing the group count moves only ≈1/(G+1) of the keyspace — the
// property a future rebalancing PR relies on.
type Router struct {
	groups   int
	replicas int
	ring     []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	group GroupID
}

// NewRouter builds a ring over the given number of groups. replicas <= 0
// takes DefaultReplicas. It panics on a non-positive group count (a router
// with nothing to route to is a programming error).
func NewRouter(groups, replicas int) *Router {
	if groups <= 0 {
		panic(fmt.Sprintf("shard: NewRouter with %d groups", groups))
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Router{groups: groups, replicas: replicas, ring: make([]ringPoint, 0, groups*replicas)}
	for g := 0; g < groups; g++ {
		for v := 0; v < replicas; v++ {
			h := fnv1a(fmt.Sprintf("group-%d#%d", g, v))
			r.ring = append(r.ring, ringPoint{hash: h, group: GroupID(g)})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r
}

// fnv1a is the 64-bit FNV-1a hash with a splitmix64 finalizer, computed
// inline so routing a key does not allocate. Raw FNV-1a scatters short,
// similar keys ("key-0001", "key-0002", …) poorly across the high bits
// the ring search orders by; the finalizer restores avalanche.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Route returns the group owning key.
func (r *Router) Route(key string) GroupID {
	h := fnv1a(key)
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	if i == len(r.ring) {
		i = 0 // wrap: past the last point belongs to the first
	}
	return r.ring[i].group
}

// Groups returns the number of groups on the ring.
func (r *Router) Groups() int { return r.groups }

// Partition splits keys by owning group, preserving the input order
// within each group.
func (r *Router) Partition(keys []string) map[GroupID][]string {
	out := make(map[GroupID][]string)
	for _, k := range keys {
		g := r.Route(k)
		out[g] = append(out[g], k)
	}
	return out
}
