package raft

import (
	"errors"
	"fmt"
	"time"
)

// ErrNotLeader is returned by Propose on a non-leader; callers forward to
// Lead() if known.
var ErrNotLeader = errors.New("raft: not the leader")

// Config configures a Node.
type Config struct {
	// ID is this node's identity; it must appear in Peers or Learners.
	ID ID
	// Peers lists every initial voting member. Membership can change at
	// runtime through ProposeConfChange.
	Peers []ID
	// Learners lists initial non-voting members: they replicate the log
	// and reset election timers on leader traffic but hold no vote. A
	// joining node typically starts here and is promoted once caught up.
	Learners []ID
	// Runtime supplies clock, transport, timers and randomness.
	Runtime Runtime
	// Tuner supplies election parameters (static baseline or Dynatune).
	Tuner Tuner
	// Tracer observes protocol events; nil means no tracing.
	Tracer Tracer
	// Apply, if non-nil, receives committed entries in order. Entries with
	// nil Data are internal no-ops appended on leader election.
	Apply func([]Entry)

	// DisablePreVote turns off the pre-vote phase (on by default, as in
	// recent etcd — the paper's baseline includes it, §II-A).
	DisablePreVote bool
	// DisableCheckQuorum turns off leader self-demotion without quorum
	// contact (on by default, as in etcd).
	DisableCheckQuorum bool
	// MaxEntriesPerApp caps entries per MsgApp (default 64).
	MaxEntriesPerApp int

	// SuppressHeartbeatWhileReplicating implements the first future-work
	// optimization of the paper's §IV-E: replication traffic doubles as
	// liveness (followers reset their election timers on MsgApp), so a
	// leader that just shipped entries to a peer pushes that peer's next
	// heartbeat back by one interval, eliminating redundant beats under
	// client load and recovering peak throughput.
	SuppressHeartbeatWhileReplicating bool
	// ConsolidatedHeartbeats implements the second §IV-E optimization: a
	// single leader timer armed at the minimum per-peer interval sends all
	// heartbeats in one sweep, replacing the n−1 per-pair timers Dynatune
	// otherwise needs and reducing leader scheduling load.
	ConsolidatedHeartbeats bool

	// Persister, when set, receives durable-state transitions (term/vote,
	// log appends and truncations, snapshots) before any dependent message
	// is sent. Nil disables persistence — the pure in-memory mode the
	// paper's pause-failure experiments use.
	Persister Persister
	// Restored resumes the node from state a Persister recovered after a
	// crash (term, vote, snapshot, log suffix). Nil starts fresh.
	Restored *Restored

	// SnapshotData, when set, lets a leader ship state-machine snapshots
	// to followers whose log tail was compacted away (InstallSnapshot,
	// Raft §7). It must return the state at the log's applied index.
	SnapshotData func() []byte
	// RestoreSnapshot installs snapshot data on the state machine; index
	// is the snapshot's last included log index. Required when
	// SnapshotData is set.
	RestoreSnapshot func(data []byte, index uint64)

	// SnapshotChunk caps the snapshot bytes carried per MsgSnap. Larger
	// snapshots stream as a chunk sequence with offset/resume and one
	// in-flight chunk per follower; 0 (the default) ships any snapshot in
	// a single envelope, the legacy byte-compatible behaviour.
	SnapshotChunk int
	// Snapshot, when armed (any trigger non-zero), automatically
	// snapshots the state machine and truncates the log as entries apply.
	// Requires SnapshotData.
	Snapshot SnapshotPolicy
}

func (c *Config) validate() error {
	if c.ID == None {
		return errors.New("raft: config needs a non-zero ID")
	}
	if c.Runtime == nil {
		return errors.New("raft: config needs a Runtime")
	}
	if c.Tuner == nil {
		return errors.New("raft: config needs a Tuner")
	}
	found := false
	seen := map[ID]bool{}
	for _, p := range append(append([]ID(nil), c.Peers...), c.Learners...) {
		if p == None {
			return errors.New("raft: peer ID 0 is reserved")
		}
		if seen[p] {
			return fmt.Errorf("raft: duplicate member %d", p)
		}
		seen[p] = true
		if p == c.ID {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("raft: ID %d not in peers %v or learners %v", c.ID, c.Peers, c.Learners)
	}
	return nil
}

// progress is the leader's view of one follower (etcd's Progress).
type progress struct {
	match uint64
	next  uint64
	// recentActive is set by any response since the last check-quorum
	// sweep.
	recentActive bool
	// lastActive is the time of the most recent response; the lease-read
	// path derives the check-quorum lease from it.
	lastActive time.Duration
	// snap is the in-flight chunked snapshot transfer to this follower
	// (nil when none). Dying with the progress map on step-down is the
	// term-change abort path.
	snap *snapXfer
}

// Node is a single Raft participant. It is not safe for concurrent use:
// all inputs must arrive on one goroutine (the simulator loop or the
// server's event loop).
type Node struct {
	cfg Config
	id  ID

	// Membership. voters and learners are the authoritative sets; peers
	// (every remote member, sorted) and quorum are caches rebuilt on every
	// configuration change.
	voters   map[ID]bool
	learners map[ID]bool
	peers    []ID // excluding self
	quorum   int
	// removed is set once this node saw its own removal commit; it goes
	// quiet (no campaigns) but keeps answering reads of its local state.
	removed bool
	// pendingConfIndex is the log index of the newest unapplied
	// configuration change; at most one may be in flight (etcd's rule).
	pendingConfIndex uint64

	state State
	term  uint64
	vote  ID
	lead  ID
	log   *Log

	// pendingSnap is the partially received chunked snapshot (follower
	// side); any role or term change discards it.
	pendingSnap *inboundSnap

	// randRatio is u in randomizedTimeout = Et·(1+u). Keeping u stable
	// while Et is retuned makes randomizedTimeout track Et continuously
	// (what Fig. 6 plots); u is redrawn on role/term changes and timer
	// expirations, as etcd redraws its randomized timeout.
	randRatio         float64
	lastLeaderContact time.Duration

	// campaign bookkeeping
	granted map[ID]bool
	refused map[ID]bool

	// lastPersisted is the most recent HardState handed to the Persister,
	// to skip redundant saves.
	lastPersisted HardState

	// leader bookkeeping
	prs map[ID]*progress
	// matchBuf is maybeCommit's reusable match-index scratch (hot on
	// every append response; a per-call allocation shows up at scale).
	matchBuf []uint64
	// transferee is the pending leadership-transfer target (None if no
	// transfer is in flight).
	transferee ID

	// linearizable-read bookkeeping (readindex.go)
	readCtx      uint64
	pendingReads []*readRequest
	readWaiters  []readWaiter

	tracer Tracer
}

// NewNode validates cfg and returns an inert node; call Start to arm its
// first election timer.
func NewNode(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.MaxEntriesPerApp <= 0 {
		cfg.MaxEntriesPerApp = 64
	}
	n := &Node{
		cfg:      cfg,
		id:       cfg.ID,
		log:      NewLog(),
		state:    StateFollower,
		tracer:   cfg.Tracer,
		voters:   make(map[ID]bool, len(cfg.Peers)),
		learners: make(map[ID]bool, len(cfg.Learners)),
	}
	if n.tracer == nil {
		n.tracer = NopTracer{}
	}
	for _, p := range cfg.Peers {
		n.voters[p] = true
	}
	for _, p := range cfg.Learners {
		n.learners[p] = true
	}
	n.rebuildMembership()
	if r := cfg.Restored; r != nil {
		n.term = r.HardState.Term
		n.vote = r.HardState.Vote
		n.lastPersisted = r.HardState
		if r.Snapshot != nil {
			n.log = NewLogFromState(r.Snapshot.Index, r.Snapshot.Term, r.Entries)
			if cfg.RestoreSnapshot != nil {
				cfg.RestoreSnapshot(r.Snapshot.Data, r.Snapshot.Index)
			}
			if len(r.Snapshot.Voters) > 0 {
				// The snapshot's membership supersedes the configured one:
				// conf changes below its floor are not in the log anymore.
				n.adoptMembership(r.Snapshot.Voters, r.Snapshot.Learners)
			}
		} else {
			n.log = NewLogFromState(0, 0, r.Entries)
		}
	}
	if cfg.Persister != nil {
		// Installed after restore so the recovered suffix is not re-saved.
		n.log.SetObserver(logPersister{cfg.Persister})
	}
	n.randRatio = n.cfg.Runtime.Rand().Float64()
	return n, nil
}

// Start arms the initial election timer. The node begins as a follower
// with no known leader.
func (n *Node) Start() {
	n.lastLeaderContact = -time.Hour // no contact yet; lease never blocks at boot
	n.resetElectionTimer()
}

// --- accessors ---

// ID returns the node's identity.
func (n *Node) ID() ID { return n.id }

// State returns the current role.
func (n *Node) State() State { return n.state }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.term }

// Lead returns the believed leader (None if unknown).
func (n *Node) Lead() ID { return n.lead }

// Log exposes the node's log (read-mostly; used by tests and the apply
// loop).
func (n *Node) Log() *Log { return n.log }

// Quorum returns the majority size.
func (n *Node) Quorum() int { return n.quorum }

// FirstIndex returns the oldest retained log index (the compaction
// floor) — observability for the snapshot/compaction policy.
func (n *Node) FirstIndex() uint64 { return n.log.FirstIndex() }

// LogEntries returns how many real entries the log currently retains.
func (n *Node) LogEntries() int { return n.log.Len() }

// LogBytes returns the payload size of the retained log entries.
func (n *Node) LogBytes() uint64 { return n.log.Bytes() }

// ElectionTimeoutBase returns the tuner's current Et.
func (n *Node) ElectionTimeoutBase() time.Duration { return n.cfg.Tuner.ElectionTimeout() }

// RandomizedTimeout returns Et·(1+u), the value Fig. 6 plots.
func (n *Node) RandomizedTimeout() time.Duration {
	et := n.cfg.Tuner.ElectionTimeout()
	return et + time.Duration(n.randRatio*float64(et))
}

// Tuner returns the node's tuner.
func (n *Node) Tuner() Tuner { return n.cfg.Tuner }

// --- timers ---

func (n *Node) resetElectionTimer() {
	now := n.cfg.Runtime.Now()
	var d time.Duration
	if n.state == StateLeader {
		// Check-quorum sweep period: the base (non-randomized) timeout.
		d = n.cfg.Tuner.ElectionTimeout()
	} else {
		d = n.RandomizedTimeout()
	}
	n.cfg.Runtime.SetTimer(TimerElection, None, now+d)
}

func (n *Node) redrawRandom() {
	n.randRatio = n.cfg.Runtime.Rand().Float64()
}

// OnTimer is the runtime's callback when a timer armed via SetTimer fires.
func (n *Node) OnTimer(kind TimerKind, peer ID) {
	switch kind {
	case TimerElection:
		n.onElectionTimeout()
	case TimerHeartbeat:
		n.onHeartbeatTimeout(peer)
	default:
		panic(fmt.Sprintf("raft: unknown timer kind %d", kind))
	}
}

func (n *Node) onElectionTimeout() {
	if n.state == StateLeader {
		n.checkQuorum()
		return
	}
	if n.removed || n.learners[n.id] {
		// Non-voters never campaign. A learner still falls back to default
		// parameters on timeout (its measurements are stale) and keeps a
		// timer running so Dynatune instrumentation stays live.
		n.lead = None
		n.cfg.Tuner.Reset(ResetTimeout)
		n.redrawRandom()
		n.resetElectionTimer()
		return
	}
	// A follower that believed in a leader has just detected its failure —
	// the instant the paper measures as "detection" (§IV-A). Candidates
	// re-timing-out indicate a fruitless (split or stalled) round.
	if n.lead != None && n.state == StateFollower {
		n.trace(EventTimeout)
	} else if n.state == StateCandidate || n.state == StatePreCandidate {
		n.trace(EventSplitVote)
	}
	n.lead = None
	// Paper §III-B: on a local timeout the follower discards collected
	// network data and falls back to the conservative defaults.
	n.cfg.Tuner.Reset(ResetTimeout)
	n.redrawRandom()
	n.campaign()
	n.resetElectionTimer()
}

func (n *Node) onHeartbeatTimeout(peer ID) {
	if n.state != StateLeader {
		return // stale timer after stepping down
	}
	if n.cfg.ConsolidatedHeartbeats {
		// Single-timer mode: one sweep beats every follower, re-armed at
		// the minimum tuned interval (paper §IV-E).
		for _, p := range n.peers {
			n.sendHeartbeat(p)
		}
		n.armConsolidatedHeartbeat()
		return
	}
	n.sendHeartbeat(peer)
	now := n.cfg.Runtime.Now()
	n.cfg.Runtime.SetTimer(TimerHeartbeat, peer, now+n.cfg.Tuner.HeartbeatInterval(peer))
}

// minHeartbeatInterval returns the smallest tuned interval across peers.
func (n *Node) minHeartbeatInterval() time.Duration {
	var m time.Duration
	for _, p := range n.peers {
		if h := n.cfg.Tuner.HeartbeatInterval(p); m == 0 || h < m {
			m = h
		}
	}
	return m
}

func (n *Node) armConsolidatedHeartbeat() {
	n.cfg.Runtime.SetTimer(TimerHeartbeat, None, n.cfg.Runtime.Now()+n.minHeartbeatInterval())
}

func (n *Node) checkQuorum() {
	// A transfer that has not completed within one election timeout is
	// abandoned (the target may have died); leadership stays here.
	n.abortTransfer()
	if n.cfg.DisableCheckQuorum {
		n.resetElectionTimer()
		return
	}
	active := 0
	if n.isVoter() {
		active = 1 // self
	}
	for id, pr := range n.prs {
		if pr.recentActive && n.voters[id] {
			active++
		}
		pr.recentActive = false
	}
	if active < n.quorum {
		// Lost contact with the majority: abdicate (etcd check-quorum).
		n.becomeFollower(n.term, None)
		return
	}
	n.resetElectionTimer()
}

// --- role transitions ---

func (n *Node) becomeFollower(term uint64, lead ID) {
	oldState, oldLead, oldTerm := n.state, n.lead, n.term
	if n.state == StateLeader {
		for _, p := range n.peers {
			n.cfg.Runtime.CancelTimer(TimerHeartbeat, p)
		}
		n.cfg.Runtime.CancelTimer(TimerHeartbeat, None)
	}
	n.state = StateFollower
	if term > n.term {
		n.term = term
		n.vote = None
	}
	n.lead = lead
	n.prs = nil
	n.transferee = None
	n.granted, n.refused = nil, nil
	n.pendingSnap = nil
	n.failPendingReads()
	if lead != None {
		n.lastLeaderContact = n.cfg.Runtime.Now()
	}
	if lead != oldLead {
		// Fresh leader relationship: per-pair statistics are stale
		// (paper §III-B: return to Step 0 under a newly elected leader).
		n.cfg.Tuner.Reset(ResetLeaderChange)
	}
	n.persistHardState()
	n.redrawRandom()
	n.resetElectionTimer()
	if oldState != StateFollower {
		n.trace(EventStateChange)
	}
	if (oldState == StatePreCandidate || oldState == StateCandidate) && lead != None {
		n.trace(EventRevert)
	}
	if term > oldTerm {
		n.trace(EventTermChange)
	}
}

func (n *Node) becomePreCandidate() {
	n.state = StatePreCandidate
	n.lead = None
	n.granted = map[ID]bool{n.id: true}
	n.refused = map[ID]bool{}
	n.trace(EventStateChange)
}

func (n *Node) becomeCandidate() {
	n.state = StateCandidate
	n.term++
	n.vote = n.id
	n.lead = None
	n.granted = map[ID]bool{n.id: true}
	n.refused = map[ID]bool{}
	n.persistHardState()
	n.trace(EventStateChange)
	n.trace(EventTermChange)
}

func (n *Node) becomeLeader() {
	n.state = StateLeader
	n.lead = n.id
	n.granted, n.refused = nil, nil
	n.transferee = None
	n.pendingReads, n.readWaiters = nil, nil
	n.prs = make(map[ID]*progress, len(n.peers))
	last := n.log.LastIndex()
	for _, p := range n.peers {
		n.prs[p] = &progress{next: last + 1}
	}
	// Re-arm the pending-change guard across leadership changes: an
	// unapplied conf entry inherited from a previous term still blocks new
	// ones (etcd scans its log tail the same way).
	n.pendingConfIndex = 0
	for i := n.log.Applied() + 1; i <= last; i++ {
		if e, ok := n.log.Entry(i); ok && e.Type == EntryConfChange {
			n.pendingConfIndex = i
		}
	}
	// Leader-side tuning state starts fresh (paper §III-B Step 0).
	n.cfg.Tuner.Reset(ResetBecameLeader)
	n.trace(EventStateChange)
	n.trace(EventLeaderElected)
	// Commit an entry from the new term immediately (Raft §5.4.2 no-op).
	n.log.Append(n.term, nil)
	n.maybeCommit()
	n.broadcastAppend()
	now := n.cfg.Runtime.Now()
	if n.cfg.ConsolidatedHeartbeats {
		for _, p := range n.peers {
			n.sendHeartbeat(p)
		}
		n.armConsolidatedHeartbeat()
	} else {
		for _, p := range n.peers {
			n.sendHeartbeat(p)
			n.cfg.Runtime.SetTimer(TimerHeartbeat, p, now+n.cfg.Tuner.HeartbeatInterval(p))
		}
	}
	n.resetElectionTimer() // check-quorum sweep
}

func (n *Node) trace(kind EventKind) {
	n.tracer.Trace(Event{
		Time:              n.cfg.Runtime.Now(),
		Node:              n.id,
		Kind:              kind,
		Term:              n.term,
		State:             n.state,
		Lead:              n.lead,
		RandomizedTimeout: n.RandomizedTimeout(),
	})
}

// send fills in From and dispatches.
func (n *Node) send(m Message) {
	m.From = n.id
	if m.Term == 0 {
		m.Term = n.term
	}
	n.cfg.Runtime.Send(m)
}
