// Package wire is the binary codec for raft messages on real networks:
// UDP datagrams for Dynatune's heartbeat path and length-prefixed TCP
// frames for consensus traffic (the paper's hybrid transport, §III-E).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dynatune/internal/raft"
)

// MaxFrame bounds a single message frame (64 MiB) to stop a corrupt
// length prefix from allocating unbounded memory.
const MaxFrame = 64 << 20

// ErrCorrupt reports an undecodable message.
var ErrCorrupt = errors.New("wire: corrupt message")

const headerLen = 1 + 8 + 8 + 8 + 8 + 8 + 8 + 1 + 8 + // type..hint
	8 + 8 + 8 + // heartbeat meta
	8 + 8 + // heartbeat resp meta
	8 + // read context
	4 // entry count
// A 4-byte snapshot length (possibly 0) follows the entries.

// Append serializes m onto buf and returns the extended slice.
func Append(buf []byte, m raft.Message) []byte {
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.From))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.To))
	buf = binary.BigEndian.AppendUint64(buf, m.Term)
	buf = binary.BigEndian.AppendUint64(buf, m.Index)
	buf = binary.BigEndian.AppendUint64(buf, m.LogTerm)
	buf = binary.BigEndian.AppendUint64(buf, m.Commit)
	var flags byte
	if m.Reject {
		flags |= 1
	}
	if m.Transfer {
		flags |= 2
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, m.Hint)
	buf = binary.BigEndian.AppendUint64(buf, m.HB.Seq)
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.HB.SendTime))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.HB.RTT))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.HBResp.EchoTime))
	buf = binary.BigEndian.AppendUint64(buf, uint64(m.HBResp.Interval))
	buf = binary.BigEndian.AppendUint64(buf, m.ReadCtx)
	if len(m.Entries) > math.MaxUint32 {
		panic("wire: too many entries")
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		buf = binary.BigEndian.AppendUint64(buf, e.Term)
		buf = binary.BigEndian.AppendUint64(buf, e.Index)
		buf = append(buf, byte(e.Type))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Data)))
		buf = append(buf, e.Data...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Snap)))
	buf = append(buf, m.Snap...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.SnapVoters)))
	for _, id := range m.SnapVoters {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.SnapLearners)))
	for _, id := range m.SnapLearners {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// Encode serializes m into a fresh buffer.
func Encode(m raft.Message) []byte {
	size := headerLen + 4 + len(m.Snap) + 8 + 8*(len(m.SnapVoters)+len(m.SnapLearners))
	for _, e := range m.Entries {
		size += 8 + 8 + 1 + 4 + len(e.Data)
	}
	return Append(make([]byte, 0, size), m)
}

// Decode parses a message encoded by Encode/Append.
func Decode(b []byte) (raft.Message, error) {
	var m raft.Message
	if len(b) < headerLen {
		return m, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(b))
	}
	m.Type = raft.MsgType(b[0])
	if m.Type < raft.MsgApp || m.Type > raft.MsgTimeoutNow {
		return m, fmt.Errorf("%w: bad type %d", ErrCorrupt, b[0])
	}
	m.From = raft.ID(binary.BigEndian.Uint64(b[1:]))
	m.To = raft.ID(binary.BigEndian.Uint64(b[9:]))
	m.Term = binary.BigEndian.Uint64(b[17:])
	m.Index = binary.BigEndian.Uint64(b[25:])
	m.LogTerm = binary.BigEndian.Uint64(b[33:])
	m.Commit = binary.BigEndian.Uint64(b[41:])
	m.Reject = b[49]&1 != 0
	m.Transfer = b[49]&2 != 0
	m.Hint = binary.BigEndian.Uint64(b[50:])
	m.HB.Seq = binary.BigEndian.Uint64(b[58:])
	m.HB.SendTime = int64(binary.BigEndian.Uint64(b[66:]))
	m.HB.RTT = int64(binary.BigEndian.Uint64(b[74:]))
	m.HBResp.EchoTime = int64(binary.BigEndian.Uint64(b[82:]))
	m.HBResp.Interval = int64(binary.BigEndian.Uint64(b[90:]))
	m.ReadCtx = binary.BigEndian.Uint64(b[98:])
	n := binary.BigEndian.Uint32(b[106:])
	rest := b[headerLen:]
	if n > 0 {
		m.Entries = make([]raft.Entry, 0, min(int(n), 4096))
	}
	for i := uint32(0); i < n; i++ {
		if len(rest) < 21 {
			return m, fmt.Errorf("%w: truncated entry %d", ErrCorrupt, i)
		}
		var e raft.Entry
		e.Term = binary.BigEndian.Uint64(rest)
		e.Index = binary.BigEndian.Uint64(rest[8:])
		e.Type = raft.EntryType(rest[16])
		if e.Type > raft.EntryConfChange {
			return m, fmt.Errorf("%w: bad entry type %d", ErrCorrupt, rest[16])
		}
		dlen := binary.BigEndian.Uint32(rest[17:])
		rest = rest[21:]
		if uint32(len(rest)) < dlen {
			return m, fmt.Errorf("%w: truncated entry data %d", ErrCorrupt, i)
		}
		if dlen > 0 {
			e.Data = append([]byte(nil), rest[:dlen]...)
		}
		rest = rest[dlen:]
		m.Entries = append(m.Entries, e)
	}
	if len(rest) < 4 {
		return m, fmt.Errorf("%w: missing snapshot length", ErrCorrupt)
	}
	slen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) < slen {
		return m, fmt.Errorf("%w: snapshot length %d vs %d bytes", ErrCorrupt, slen, len(rest))
	}
	if slen > 0 {
		m.Snap = append([]byte(nil), rest[:slen]...)
	}
	rest = rest[slen:]
	var err error
	if m.SnapVoters, rest, err = decodeIDs(rest); err != nil {
		return m, fmt.Errorf("%w: snapshot voters: %v", ErrCorrupt, err)
	}
	if m.SnapLearners, rest, err = decodeIDs(rest); err != nil {
		return m, fmt.Errorf("%w: snapshot learners: %v", ErrCorrupt, err)
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return m, nil
}

// decodeIDs parses a count-prefixed ID list, returning the remainder.
func decodeIDs(b []byte) ([]raft.ID, []byte, error) {
	if len(b) < 4 {
		return nil, b, errors.New("missing count")
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) < 8*uint64(n) {
		return nil, b, fmt.Errorf("truncated list of %d", n)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]raft.ID, n)
	for i := range out {
		out[i] = raft.ID(binary.BigEndian.Uint64(b))
		b = b[8:]
	}
	return out, b, nil
}

// WriteFrame writes m as a length-prefixed frame (TCP streams).
func WriteFrame(w io.Writer, m raft.Message) error {
	payload := Encode(m)
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame %d exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) (raft.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return raft.Message{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return raft.Message{}, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return raft.Message{}, err
	}
	return Decode(payload)
}
