package cluster

import (
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/metrics"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
	"dynatune/internal/workload"
)

// LoadGen drives an open-loop client population against the cluster's
// leader, reproducing §IV-B2: requests arrive on a ramp schedule
// regardless of completions; the generator batches arrivals into leader
// proposals every flush interval (etcd's Ready-loop batching) and
// measures per-request latency from arrival to commit-and-reply.
type LoadGen struct {
	c         *Cluster
	ramp      workload.Ramp
	gen       *workload.Generator
	clientRTT time.Duration // client↔leader round trip added to latency
	flushEach time.Duration

	// queue holds arrival times of requests accepted but not yet due.
	queue []time.Duration
	// parked holds due arrivals waiting out a leaderless window. Keeping
	// them out of queue means an election costs one leader check per
	// tick, not a rescan and copy of the whole backlog (quadratic at the
	// benchmark's offered rates).
	parked []time.Duration
	// inflight tracks proposed-but-uncommitted requests.
	inflight *Inflight

	// perStep aggregates completions by the ramp step of their arrival.
	perStep []stepAgg

	proposeErrors uint64
	seq           uint64
	base          time.Duration // virtual time of ramp t=0
}

// Inflight tracks one Raft group's proposed-but-uncommitted requests and
// resolves applied entries against them, keyed with the leader term each
// batch was appended under so an entry overwritten by a newer leader is
// counted as lost instead of mistaken for a completion. Both this
// package's load generator and the shard layer's complete requests
// through it, keeping the term-check semantics in one place.
type Inflight struct {
	m    map[uint64]pending
	lost uint64
}

// pending is one proposed-but-uncommitted request.
type pending struct {
	at   time.Duration // arrival time, relative to ramp t=0
	term uint64        // leader term the entry was appended under
}

// NewInflight returns an empty tracker.
func NewInflight() *Inflight { return &Inflight{m: make(map[uint64]pending)} }

// Record registers a proposed batch: arrival ats[i] sits at log index
// first+i, appended under term. appliedFloor is the group's highest
// applied index at record time — a fresh proposal always lands above it,
// so an index at or below the floor means a stale deposed leader
// appended onto its obsolete log after the slot was already committed
// (and applied) under a newer term; no future apply event will carry
// that index, so the request is counted lost immediately instead of
// leaking in the tracker. Surviving index collisions resolve by term —
// the higher-term proposal is the one that can still commit, the other
// was fed to a since-truncated log (older-term pending displaced after
// its leader died unreplicated) or to a stale leader's busy queue.
// Either way each losing request is counted lost exactly once.
func (f *Inflight) Record(first, term uint64, ats []time.Duration, appliedFloor uint64) {
	for i, at := range ats {
		idx := first + uint64(i)
		if idx <= appliedFloor {
			f.lost++
			continue
		}
		if old, ok := f.m[idx]; ok {
			f.lost++
			if old.term >= term {
				// The tracked pending is the newer proposal: this batch
				// came from a stale leader and is the lost one; keep the
				// entry that can still complete.
				continue
			}
		}
		f.m[idx] = pending{at: at, term: term}
	}
}

// Resolve matches an applied entry against the tracked proposals. It
// returns the request's arrival time when e completes one; an entry whose
// index is tracked but whose term differs was overwritten by a newer
// leader — the proposal was lost, not committed, and counting it as a
// completion would inflate throughput and fabricate a latency sample.
func (f *Inflight) Resolve(e raft.Entry) (at time.Duration, ok bool) {
	p, ok := f.m[e.Index]
	if !ok {
		return 0, false
	}
	delete(f.m, e.Index)
	if e.Term != p.term {
		f.lost++
		return 0, false
	}
	return p.at, true
}

// ResolveApplied runs the completion gate shared by both load
// generators: a request completes once the group's current leader has
// applied its entry — the client-visible commit point — so entries a
// node applies ahead of the leader wait for the leader's own apply
// event, while entries a new leader applied back when it was still a
// follower drain at the next apply observation instead of stranding.
// complete receives each resolved request's arrival time.
func (f *Inflight) ResolveApplied(leaderApplied uint64, ents []raft.Entry, complete func(at time.Duration)) {
	f.ResolveAppliedEntries(leaderApplied, ents, func(_ raft.Entry, at time.Duration) {
		complete(at)
	})
}

// ResolveAppliedEntries is ResolveApplied with the resolved entry handed
// to the completion callback alongside the arrival time. Observers that
// need to know *what* completed — the invariant checker decodes the
// entry's command for its key and sequence — hook in here; callers that
// only meter latency use ResolveApplied and never pay for the pass-through.
func (f *Inflight) ResolveAppliedEntries(leaderApplied uint64, ents []raft.Entry, complete func(e raft.Entry, at time.Duration)) {
	for _, e := range ents {
		if e.Index > leaderApplied {
			continue // resolved later, at the leader's own apply event
		}
		if at, ok := f.Resolve(e); ok {
			complete(e, at)
		}
	}
}

// Len returns the number of tracked proposals.
func (f *Inflight) Len() int { return len(f.m) }

// Lost returns how many proposals a newer leader overwrote.
func (f *Inflight) Lost() uint64 { return f.lost }

type stepAgg struct {
	completed int
	latency   metrics.Welford
}

// NewLoadGen attaches a load generator to a not-yet-started cluster.
func NewLoadGen(c *Cluster, ramp workload.Ramp, clientRTT time.Duration) *LoadGen {
	g, err := workload.NewGenerator(ramp, c.eng.Rand())
	if err != nil {
		panic(err)
	}
	lg := &LoadGen{
		c:         c,
		ramp:      ramp,
		gen:       g,
		clientRTT: clientRTT,
		flushEach: time.Millisecond,
		inflight:  NewInflight(),
		perStep:   make([]stepAgg, ramp.Steps),
	}
	c.SetOnApply(lg.onApply)
	return lg
}

// LeaderProposeBatch charges the current leader's CPU for one client
// batch (etcd's Ready-loop flush) and proposes it, invoking done with the
// first assigned log index and the leader term it was appended under once
// the leader's processor gets to the work. It reports false — without
// calling done — when no leader exists; the caller requeues and retries,
// modelling client retry against a new leader.
func (c *Cluster) LeaderProposeBatch(datas [][]byte, done func(first, term uint64, err error)) bool {
	lead := c.Leader()
	if lead == nil {
		return false
	}
	rt := c.rts[lead.ID()-1]
	cost := c.cost.ProposeBase + time.Duration(len(datas))*c.cost.ProposeEntry
	// Fabric-attached groups take the consolidation fast path: an idle
	// leader CPU (with no staged inbox ahead) processes the batch inside
	// this event, charging the same cost without an engine event. The
	// classic single-group path is untouched, so its goldens hold.
	if rt.fnode != nil && !rt.paused && !rt.drainArmed && rt.proc.Backlog() == 0 {
		rt.proc.Charge(cost)
		first, _, err := lead.ProposeBatch(datas)
		done(first, lead.Term(), err)
		return true
	}
	rt.proc.ExecNotify(cost, func() {
		first, _, err := lead.ProposeBatch(datas)
		done(first, lead.Term(), err)
	}, func() {
		// The leader froze between accepting the batch and processing it
		// (pause injection lands in the busy-queue window): the client's
		// RPC dies with the frozen server, and done must still learn it or
		// the batch would vanish from all accounting.
		done(0, 0, raft.ErrNotLeader)
	})
	return true
}

// Start begins the flush loop at the current virtual time; the ramp's t=0
// is "now".
func (lg *LoadGen) Start() {
	base := lg.c.eng.Now()
	lg.base = base
	end := base + lg.ramp.Duration() + 10*time.Second
	RunPump(lg.c.eng, end, lg.flushEach,
		func() { lg.flush(base) },
		func() { lg.c.CompactAll(4096) })
}

// flush moves due arrivals into a leader proposal batch.
func (lg *LoadGen) flush(base time.Duration) {
	now := lg.c.eng.Now() - base
	for {
		at, ok := lg.gen.Next()
		if !ok || at > now {
			if ok {
				// Put the overshoot arrival back by buffering it: the
				// generator has no un-next, so track it in the queue with
				// its absolute time and stop pulling.
				lg.queue = append(lg.queue, at)
			}
			break
		}
		lg.queue = append(lg.queue, at)
	}
	due, rest := SplitDue(lg.queue, now, func(at time.Duration) time.Duration { return at })
	lg.queue = rest
	lg.parked = ProposeParked(lg.c, lg.inflight, lg.parked, due,
		func(at time.Duration) time.Duration { return at },
		func(time.Duration) []byte {
			lg.seq++
			return kv.Encode(kv.Command{Op: kv.OpPut, Client: 1, Seq: lg.seq, Key: "bench", Value: []byte("v")})
		},
		&lg.proposeErrors)
}

// onApply observes applied entries and completes requests through the
// shared Inflight.ResolveApplied gate (see its doc for the semantics).
func (lg *LoadGen) onApply(node raft.ID, ents []raft.Entry) {
	now := lg.c.eng.Now() - lg.base
	lg.inflight.ResolveApplied(lg.c.ApplyGate(), ents, func(at time.Duration) {
		// Bin by completion time: achieved throughput during a ramp level
		// is what the paper's "average throughput" measures, and it is
		// what saturates at the service capacity.
		step := lg.ramp.StepOf(now)
		if step < 0 || step >= len(lg.perStep) {
			return
		}
		// Latency: client→leader half, queueing+commit, leader→client half.
		lat := (now - at) + lg.clientRTT
		lg.perStep[step].completed++
		lg.perStep[step].latency.Add(float64(lat) / float64(time.Millisecond))
	})
}

// StepResult is the aggregated outcome for one ramp step (the engine's
// shared step type; this generator leaves P99Ms zero).
type StepResult = scenario.Step

// Results returns per-step aggregates. Call after the ramp (plus drain)
// has run.
func (lg *LoadGen) Results() []StepResult {
	out := make([]StepResult, len(lg.perStep))
	for i := range lg.perStep {
		rps, _ := lg.ramp.RPSAt(time.Duration(i)*lg.ramp.StepDuration + 1)
		out[i] = StepResult{
			OfferedRPS:   rps,
			ThroughputRS: float64(lg.perStep[i].completed) / lg.ramp.StepDuration.Seconds(),
			LatencyMs:    lg.perStep[i].latency.Mean(),
			Completed:    lg.perStep[i].completed,
		}
	}
	return out
}

// ProposeErrors returns how many requests failed to propose (no leader).
func (lg *LoadGen) ProposeErrors() uint64 { return lg.proposeErrors }

// Lost returns how many proposed requests were overwritten by a newer
// leader before committing (client would retry; the testbed just counts).
func (lg *LoadGen) Lost() uint64 { return lg.inflight.Lost() }

// Inflight returns the number of requests proposed but not yet committed.
func (lg *LoadGen) Inflight() int { return lg.inflight.Len() }

// Pending returns the number of arrivals accepted but never proposed
// (still queued, or parked behind a leaderless window when the run
// ended).
func (lg *LoadGen) Pending() int { return len(lg.queue) + len(lg.parked) }
