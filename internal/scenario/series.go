package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/raft"
)

// runSeries is the §IV-C scenario shape: start a cluster under the
// spec's profile, wait for a leader, then probe once per second for the
// horizon while the fault schedule (if any) fires on absolute times.
// With an empty schedule the event sequence is identical to the
// historical RunFluctuation, which the behavioral tests pin.
func runSeries(spec Spec, env Env) *SeriesResult {
	horizon := spec.Horizon.D()
	cpuEvery := spec.CPUEvery.D()
	if cpuEvery <= 0 {
		cpuEvery = 5 * time.Second
	}
	c := env.NewCluster(spec.Seed)
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		panic(fmt.Sprintf("cluster(%s): no initial leader", env.variantName(spec)))
	}
	leadID := lead.ID()
	// Pick the observation follower: the next node after the leader.
	followerID := raft.ID(1)
	if leadID == 1 {
		followerID = 2
	}
	eng := c.Engine()
	rec := c.Recorder()
	start := eng.Now()

	res := &SeriesResult{
		Variant:          env.variantName(spec),
		Horizon:          horizon,
		RandTimeout3rdMs: metrics.NewTimeSeries("randomizedTimeout(ms)"),
		LinkRTTMs:        metrics.NewTimeSeries("rtt(ms)"),
		LeaderHMs:        metrics.NewTimeSeries("h(ms)"),
		LeaderCPU:        metrics.NewTimeSeries("leaderCPU(%)"),
		FollowerCPU:      metrics.NewTimeSeries("followerCPU(%)"),
		MeasuredLossPct:  metrics.NewTimeSeries("loss(%)"),
	}

	// Per-second probes.
	var probe func()
	probe = func() {
		t := eng.Now() - start
		if t > horizon {
			return
		}
		res.RandTimeout3rdMs.Add(t, float64(c.KthSmallestRandomizedTimeout(3))/float64(time.Millisecond))
		res.LinkRTTMs.Add(t, float64(c.LinkRTT(1, 2))/float64(time.Millisecond))
		if h := c.LeaderMeanHeartbeatInterval(); h > 0 {
			res.LeaderHMs.Add(t, float64(h)/float64(time.Millisecond))
		}
		if tn := c.DynatuneTuner(followerID); tn != nil {
			res.MeasuredLossPct.Add(t, tn.MeasuredLoss()*100)
		}
		eng.After(time.Second, probe)
	}
	eng.After(time.Second, probe)

	// CPU probes (leader identity may move; sample the *current* leader's
	// runtime and the fixed observation follower).
	var cpu func()
	cpu = func() {
		t := eng.Now() - start
		if t > horizon {
			return
		}
		if l := c.Leader(); l != nil {
			res.LeaderCPU.Add(t, c.CPUPercent(l.ID(), cpuEvery))
		}
		res.FollowerCPU.Add(t, c.CPUPercent(followerID, cpuEvery))
		eng.After(cpuEvery, cpu)
	}
	eng.After(cpuEvery, cpu)

	// Periodic compaction keeps week-long runs bounded.
	var compact func()
	compact = func() {
		if eng.Now()-start > horizon {
			return
		}
		c.CompactAll(64)
		eng.After(10*time.Second, compact)
	}
	eng.After(10*time.Second, compact)

	armFaults(c, start, spec.Faults)

	c.Run(horizon)

	res.OTS = rec.OTSIntervals(start, start+horizon)
	res.Timeouts = rec.CountKind(raft.EventTimeout, start, start+horizon)
	res.Elections = rec.CountKind(raft.EventLeaderElected, start, start+horizon)
	res.Reverts = rec.CountKind(raft.EventRevert, start, start+horizon)
	return res
}
