package cluster

import (
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/raft"
)

// These tests extend the single FailPartition case in experiments_test.go
// with the properties that distinguish the stale-leader path from the
// paper's pause model.

// TestPartitionVsPauseDetectionGap pins that follower-side detection is
// the same mechanism under both failure modes: a symmetric partition cuts
// the heartbeat stream exactly like a frozen process does, so for the
// same deployment the detection means must sit within one tuned
// randomized-timeout spread of each other. (The asymmetric partition is
// the mode with a real gap — see below.)
func TestPartitionVsPauseDetectionGap(t *testing.T) {
	opts := Options{N: 5, Seed: 51, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)}
	paused := RunElectionTrialsWithFailure(opts, 10, 4*time.Second, FailPause)
	parted := RunElectionTrialsWithFailure(opts, 10, 4*time.Second, FailPartition)
	pd, _ := paused.Summary()
	qd, _ := parted.Summary()
	if len(paused.DetectionMs) < 8 || len(parted.DetectionMs) < 8 {
		t.Fatalf("samples: pause=%d partition=%d", len(paused.DetectionMs), len(parted.DetectionMs))
	}
	gap := qd.Mean - pd.Mean
	if gap < 0 {
		gap = -gap
	}
	// Tuned detection sits near 130 ms at RTT 100 ms; the two failure
	// modes must agree to well within one detection time.
	if gap > pd.Mean/2 {
		t.Fatalf("pause vs partition detection gap %.0fms (pause %.0f, partition %.0f) — modes should match",
			gap, pd.Mean, qd.Mean)
	}
}

// TestAsymPartitionDetectionSlowerThanPause pins the opposite property
// for the asymmetric cut: the deaf leader keeps heartbeating, so the
// followers' detectors are suppressed until check-quorum forces
// abdication, and detection is materially later than under pause.
func TestAsymPartitionDetectionSlowerThanPause(t *testing.T) {
	opts := Options{N: 5, Seed: 51, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)}
	paused := RunElectionTrialsWithFailure(opts, 10, 4*time.Second, FailPause)
	deaf := RunElectionTrialsWithFailure(opts, 10, 4*time.Second, FailAsymPartition)
	if len(deaf.OTSMs) < 8 {
		t.Fatalf("only %d/%d asym trials succeeded", len(deaf.OTSMs), deaf.Trials)
	}
	pd, _ := paused.Summary()
	ad, aots := deaf.Summary()
	if ad.Mean < 2*pd.Mean {
		t.Fatalf("asym detection %.0fms not clearly beyond pause %.0fms — heartbeat suppression missing",
			ad.Mean, pd.Mean)
	}
	if aots.Mean <= ad.Mean {
		t.Fatalf("asym OTS %.0f <= detection %.0f", aots.Mean, ad.Mean)
	}
}

// TestPartitionedLeaderAbdicatesByCheckQuorumNotTerm pins *how* the old
// leader yields: while its links are still cut no higher-term message can
// reach it, so when it stops leading its term must be unchanged —
// check-quorum abdication, not a term bump. Only after the heal does it
// adopt the majority's newer term.
func TestPartitionedLeaderAbdicatesByCheckQuorumNotTerm(t *testing.T) {
	c := New(Options{N: 5, Seed: 57, Variant: VariantRaft(), Profile: stableNet(50)})
	c.Start()
	lead := c.WaitLeader(10 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(time.Second)
	lead = c.Leader()
	reignTerm := lead.Term()
	c.Network().PartitionNode(int(lead.ID()-1), true)

	deadline := c.Now() + 10*time.Second
	for c.Now() < deadline && lead.State() == raft.StateLeader {
		c.Run(10 * time.Millisecond)
	}
	if lead.State() == raft.StateLeader {
		t.Fatal("isolated leader never abdicated")
	}
	// Still partitioned: abdication happened with no outside information.
	if got := lead.Term(); got != reignTerm {
		t.Fatalf("old leader's term moved %d -> %d while isolated — stepped down on a term, not check-quorum",
			reignTerm, got)
	}
	// The majority side elects at a higher term while the cut holds; the
	// isolated ex-leader still cannot learn about it.
	var nl *raft.Node
	for c.Now() < deadline {
		if nl = c.Leader(); nl != nil && nl.ID() != lead.ID() {
			break
		}
		c.Run(10 * time.Millisecond)
	}
	if nl == nil || nl.ID() == lead.ID() {
		t.Fatal("majority side did not elect a successor")
	}
	if got := lead.Term(); got != reignTerm {
		t.Fatalf("isolated ex-leader's term moved %d -> %d before the heal", reignTerm, got)
	}
	if nl.Term() <= reignTerm {
		t.Fatalf("successor term %d not beyond the old reign %d", nl.Term(), reignTerm)
	}

	// Heal: the stale leader must now adopt the newer term and submit.
	c.Network().PartitionNode(int(lead.ID()-1), false)
	c.Run(5 * time.Second)
	if lead.State() == raft.StateLeader {
		t.Fatal("stale leader still leading after heal")
	}
	if lead.Term() < nl.Term() {
		t.Fatalf("stale leader never caught up: term %d vs %d", lead.Term(), nl.Term())
	}
}
