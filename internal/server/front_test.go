package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// startShardedCluster boots g independent real Raft groups of n nodes
// each and returns a Front over their HTTP endpoints.
func startShardedCluster(t *testing.T, g, n int) (*Front, [][]*Server) {
	t.Helper()
	groups := make([][]*Server, g)
	urls := make([][]string, g)
	for i := 0; i < g; i++ {
		groups[i] = startClusterStatic(t, n, fastTuner)
		urls[i] = make([]string, n)
		for j, s := range groups[i] {
			urls[i][j] = "http://" + s.HTTPAddr()
		}
	}
	front, err := NewFront(urls)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g; i++ {
		waitLeader(t, groups[i], 10*time.Second)
	}
	return front, groups
}

func TestFrontRoutesAcrossGroups(t *testing.T) {
	front, groups := startShardedCluster(t, 2, 3)
	fs := httptest.NewServer(front)
	defer fs.Close()

	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("front-%03d", i)
		req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/"+keys[i], strings.NewReader("v"+keys[i]))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s = %d", keys[i], resp.StatusCode)
		}
	}
	// Reads come back through the front, tagged with the owning group.
	seen := map[string]bool{}
	for _, k := range keys {
		resp, err := http.Get(fs.URL + "/kv/" + k)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "v"+k {
			t.Fatalf("GET %s = %d %q", k, resp.StatusCode, body)
		}
		seen[resp.Header.Get("X-Shard-Group")] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all keys served by groups %v; front not sharding", seen)
	}
	// Each key lives only in its owning group's stores.
	for _, k := range keys {
		owner := front.Router().Route(k)
		for gi, grp := range groups {
			_, ok := grp[0].Get(k)
			if want := int(owner) == gi; ok != want {
				t.Fatalf("key %q present=%v in group %d (owner %d)", k, ok, gi, owner)
			}
		}
	}
}

func TestFrontMultiGet(t *testing.T) {
	front, _ := startShardedCluster(t, 2, 3)
	fs := httptest.NewServer(front)
	defer fs.Close()

	keys := []string{"mg-a", "mg-b", "mg-c", "mg-d"}
	for _, k := range keys {
		req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/"+k, strings.NewReader("val-"+k))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	q := make([]string, 0, len(keys)+1)
	for _, k := range append(keys, "mg-absent") {
		q = append(q, "key="+k)
	}
	resp, err := http.Get(fs.URL + "/multiget?" + strings.Join(q, "&"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiget = %d", resp.StatusCode)
	}
	var got map[string][]byte // values arrive base64-encoded
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("multiget returned %d of %d keys: %v", len(got), len(keys), got)
	}
	for _, k := range keys {
		if string(got[k]) != "val-"+k {
			t.Fatalf("multiget[%q] = %q", k, got[k])
		}
	}
}

// Keys with reserved URL characters must survive the front→member hop:
// the front forwards the escaped path, not the decoded one.
func TestFrontEscapedKeys(t *testing.T) {
	front, _ := startShardedCluster(t, 2, 3)
	fs := httptest.NewServer(front)
	defer fs.Close()

	keys := []string{"100%", "a?b", "a b", "pre#fix"}
	for _, k := range keys {
		req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/"+url.PathEscape(k), strings.NewReader("val-"+k))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %q = %d", k, resp.StatusCode)
		}
		resp, err = http.Get(fs.URL + "/kv/" + url.PathEscape(k))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "val-"+k {
			t.Fatalf("GET %q = %d %q", k, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(fs.URL + "/multiget?" + url.Values{"key": keys}.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string][]byte // values arrive base64-encoded
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if string(got[k]) != "val-"+k {
			t.Fatalf("multiget[%q] = %q", k, got[k])
		}
	}
}

func TestFrontValidation(t *testing.T) {
	if _, err := NewFront(nil); err == nil {
		t.Fatal("expected error for empty group set")
	}
	if _, err := NewFront([][]string{{}}); err == nil {
		t.Fatal("expected error for group with no members")
	}
}
