package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/sweep"
)

// axisFlags collects the repeatable -axis name=v1,v2,... flag.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%v", []sweep.Axis(*a)) }

func (a *axisFlags) Set(s string) error {
	ax, err := sweep.ParseAxis(s)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

// sweepCmd runs one named scenario (or spec file) across a parameter
// grid and emits a machine-readable campaign report; with -baseline it
// additionally diffs against a prior JSON report and exits non-zero on
// any per-cell regression beyond -threshold.
func sweepCmd(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	name := fs.String("scenario", "", "base scenario from the registry")
	file := fs.String("file", "", "base scenario from a JSON spec file instead")
	var axes axisFlags
	fs.Var(&axes, "axis", "grid axis name=v1,v2,... (repeatable; axes: "+strings.Join(sweep.AxisNames(), ", ")+")")
	reps := fs.Int("reps", 1, "independent repetitions per grid cell")
	seed := fs.Int64("seed", 1, "campaign seed (unit seeds derive from it)")
	scale := fs.Float64("scale", 1, "shrink the base scenario's trials/horizons first (0 < f <= 1)")
	out := fs.String("out", "", "write the report here (default stdout)")
	format := fs.String("format", "csv", "report format: csv | json")
	baseline := fs.String("baseline", "", "prior JSON report to gate against")
	threshold := fs.Float64("threshold", 0.10, "relative worsening that counts as a regression")
	maxCells := fs.Int("max-cells", sweep.DefaultMaxCells, "refuse grids larger than this")
	workers := fs.Int("workers", 0, "parallel workers over grid cells (0 = DYNATUNE_TRIAL_WORKERS/GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dynabench sweep -scenario <name> | -file spec.json  -axis n=3,5 [-axis loss=0,0.1 ...] [flags]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError

	var base scenario.Spec
	switch {
	case *name != "" && *file != "":
		fmt.Fprintln(os.Stderr, "dynabench: -scenario and -file are mutually exclusive")
		os.Exit(2)
	case *name != "":
		var ok bool
		base, ok = scenario.Lookup(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dynabench: unknown scenario %q; `dynabench scenario -list` shows the registry\n", *name)
			os.Exit(1)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "dynabench: %s: %v\n", *file, err)
			os.Exit(1)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}
	base = scenario.Scale(base, *scale)

	campaign := sweep.Campaign{
		Base: base, Axes: axes,
		Reps: *reps, Seed: *seed,
		MaxCells: *maxCells, Workers: *workers,
	}
	start := time.Now()
	report, err := sweep.Run(campaign)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "csv":
		err = report.WriteCSV(w)
	case "json":
		err = report.WriteJSON(w)
	default:
		fmt.Fprintf(os.Stderr, "dynabench: unknown format %q (csv | json)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "sweep: %d cells x %d reps in %.0f ms\n",
		len(report.Rows), report.Reps, float64(time.Since(start))/float64(time.Millisecond))

	if *baseline != "" {
		bf, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		baseRep, err := sweep.ReadReport(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "dynabench: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		regs, err := sweep.Compare(report, baseRep, *threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "sweep: %d regression(s) beyond %.0f%% vs %s:\n", len(regs), *threshold*100, *baseline)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r.String())
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sweep: no regressions beyond %.0f%% vs %s\n", *threshold*100, *baseline)
	}
}
