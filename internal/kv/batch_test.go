package kv

import (
	"bytes"
	"testing"

	"dynatune/internal/raft"
)

func batchEntry(t *testing.T, index uint64, cmds ...Command) raft.Entry {
	t.Helper()
	return raft.Entry{Index: index, Type: raft.EntryNormal, Data: Encode(BatchCommand(cmds))}
}

func TestBatchRoundTrip(t *testing.T) {
	cmds := []Command{
		{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("va")},
		{Op: OpDelete, Client: 2, Seq: 7, Key: "b"},
		{Op: OpPut, Key: "c", Value: nil}, // no idempotence pair
		{Op: OpNoop},
	}
	enc := EncodeOps(cmds)
	got, err := DecodeOps(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cmds) {
		t.Fatalf("decoded %d commands, want %d", len(got), len(cmds))
	}
	for i := range cmds {
		if got[i].Op != cmds[i].Op || got[i].Client != cmds[i].Client ||
			got[i].Seq != cmds[i].Seq || got[i].Key != cmds[i].Key ||
			!bytes.Equal(got[i].Value, cmds[i].Value) {
			t.Fatalf("command %d: got %+v want %+v", i, got[i], cmds[i])
		}
	}
	if re := EncodeOps(got); !bytes.Equal(re, enc) {
		t.Fatal("re-encode is not canonical")
	}
}

func TestBatchApplyInOrder(t *testing.T) {
	s := NewStore()
	s.Apply([]raft.Entry{batchEntry(t, 1,
		Command{Op: OpPut, Client: 1, Seq: 1, Key: "k", Value: []byte("first")},
		Command{Op: OpPut, Client: 2, Seq: 1, Key: "k", Value: []byte("second")},
		Command{Op: OpPut, Client: 3, Seq: 1, Key: "other", Value: []byte("x")},
	)})
	if v, _ := s.Get("k"); string(v) != "second" {
		t.Fatalf("k = %q, want the later sub-command to win", v)
	}
	if got := s.Applies(); got != 3 {
		t.Fatalf("applies = %d, want one per sub-command (3)", got)
	}
	if s.AppliedIndex() != 1 {
		t.Fatalf("applied index = %d", s.AppliedIndex())
	}
}

func TestBatchIdempotence(t *testing.T) {
	s := NewStore()
	// Client 1's seq 1 lands alone first.
	s.Apply([]raft.Entry{{Index: 1, Type: raft.EntryNormal,
		Data: Encode(Command{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("v1")})}})
	// A retried batch carries the duplicate beside a fresh command: only
	// the fresh one applies.
	s.Apply([]raft.Entry{batchEntry(t, 2,
		Command{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("stale")},
		Command{Op: OpPut, Client: 1, Seq: 2, Key: "b", Value: []byte("v2")},
	)})
	if v, _ := s.Get("a"); string(v) != "v1" {
		t.Fatalf("a = %q, duplicate sub-command applied", v)
	}
	if v, _ := s.Get("b"); string(v) != "v2" {
		t.Fatalf("b = %q", v)
	}
	if s.Dupes() != 1 {
		t.Fatalf("dupes = %d, want 1", s.Dupes())
	}
	// The whole batch replicated again (a new entry after a leader change
	// raced a client retry): every sub-command dedupes.
	s.Apply([]raft.Entry{batchEntry(t, 3,
		Command{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("stale")},
		Command{Op: OpPut, Client: 1, Seq: 2, Key: "b", Value: []byte("stale")},
	)})
	if v, _ := s.Get("b"); string(v) != "v2" {
		t.Fatalf("b = %q after replay", v)
	}
	if s.Dupes() != 3 {
		t.Fatalf("dupes = %d, want 3", s.Dupes())
	}
	if s.LastSeq(1) != 2 {
		t.Fatalf("lastSeq = %d", s.LastSeq(1))
	}
}

func TestBatchDecodeRejects(t *testing.T) {
	nested := EncodeOps([]Command{{Op: OpPut, Key: "k", Value: []byte("v")}})
	cases := map[string][]byte{
		"short":          {0, 0, 1},
		"count overflow": {255, 255, 255, 255},
		"trailing bytes": append(EncodeOps(nil), 0xff),
		"truncated sub":  EncodeOps([]Command{{Op: OpPut, Key: "k"}})[:10],
		"nested batch":   EncodeOps([]Command{{Op: OpBatch, Value: nested}}),
	}
	for name, b := range cases {
		if _, err := DecodeOps(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestBatchCommandPanicsOnNesting(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nested batch")
		}
	}()
	inner := BatchCommand([]Command{{Op: OpNoop}})
	BatchCommand([]Command{inner})
}

// FuzzDecodeOps guards the group-commit payload codec the same way the
// wire codecs are fuzzed: arbitrary bytes must never panic, and anything
// that decodes must re-encode byte-identically (canonical form).
func FuzzDecodeOps(f *testing.F) {
	f.Add(EncodeOps(nil))
	f.Add(EncodeOps([]Command{{Op: OpPut, Client: 3, Seq: 9, Key: "k", Value: []byte("v")}}))
	f.Add(EncodeOps([]Command{
		{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("va")},
		{Op: OpDelete, Client: 2, Seq: 2, Key: "b"},
		{Op: OpNoop},
	}))
	f.Add(EncodeOps([]Command{{Op: OpInstallSpan, Value: EncodeSpan([]Pair{{Key: "s", Value: []byte("v")}})}}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		cmds, err := DecodeOps(b)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeOps(cmds), b) {
			t.Fatalf("decode→encode not canonical for %x", b)
		}
	})
}
