// Geo-replicated SMR (paper §IV-D): five nodes in Tokyo, London,
// California, Sydney and São Paulo. Dynatune tunes each leader→follower
// pair separately, so nearby followers get tight timeouts and distant
// ones get slack — something a single static Et cannot express.
//
//	go run ./examples/georeplicated
package main

import (
	"fmt"
	"sort"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/geo"
	"dynatune/internal/raft"
)

func main() {
	c := cluster.New(cluster.Options{
		N:             5,
		Seed:          2026,
		Variant:       cluster.VariantDynatune(dynatune.Options{}),
		Regions:       geo.Regions,
		GeoJitterFrac: 0.05,
		GeoLoss:       0.001,
	})
	c.Start()
	lead := c.WaitLeader(15 * time.Second)
	if lead == nil {
		panic("no leader")
	}
	c.Run(20 * time.Second) // warm up per-pair measurements

	leadRegion := geo.Regions[lead.ID()-1]
	fmt.Printf("leader: node %d (%v)\n\n", lead.ID(), leadRegion)
	fmt.Println("per-pair tuning on the leader (paper §III-B: one h per leader-follower path):")

	tn := c.DynatuneTuner(lead.ID())
	type row struct {
		id raft.ID
		h  time.Duration
	}
	var rows []row
	for id, h := range tn.LeaderIntervals() {
		rows = append(rows, row{id, h})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	for _, r := range rows {
		region := geo.Regions[r.id-1]
		fmt.Printf("  → node %d %-11v  link RTT %-6v  tuned h %v\n",
			r.id, region, geo.RTT(leadRegion, region), r.h.Round(time.Millisecond))
	}

	fmt.Println("\nfollower election timeouts (each tracks its own leader-link RTT):")
	for id := raft.ID(1); id <= 5; id++ {
		if id == lead.ID() {
			continue
		}
		ft := c.DynatuneTuner(id)
		mu, sigma := ft.MeasuredRTT()
		fmt.Printf("  node %d %-11v  µ=%5.0fms σ=%4.1fms → Et %v (fallback would be %v)\n",
			id, geo.Regions[id-1], mu*1000, sigma*1000,
			ft.ElectionTimeout().Round(time.Millisecond), dynatune.DefaultEt)
	}

	// Kill the leader and watch the geo cluster recover (Fig. 8).
	_, failAt := c.PauseLeader()
	c.Run(15 * time.Second)
	detect, _ := c.Recorder().FirstDetectionAfter(failAt)
	ots, winner, ok := c.Recorder().FirstElectionAfter(failAt)
	if !ok {
		panic("no re-election")
	}
	fmt.Printf("\nleader (%v) frozen → detected in %v; node %d (%v) took over after %v\n",
		leadRegion, detect.Round(time.Millisecond), winner, geo.Regions[winner-1], ots.Round(time.Millisecond))
	fmt.Println("(paper Fig. 8: Dynatune detection ≈213 ms vs Raft ≈1137 ms)")
}
