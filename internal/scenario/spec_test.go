package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// fullSpec populates every field of the spec tree, so the round-trip test
// fails if a field loses its JSON tag (a file-driven spec would silently
// drop it).
func fullSpec() Spec {
	return Spec{
		Name:        "round-trip",
		Description: "every field populated",
		Measure:     MeasureFailover,
		Topology: Topology{
			N: 5, Groups: 4, NodesPerGroup: 3,
			Regions:       []string{"tokyo", "london", "california", "sydney", "sao-paulo"},
			GeoJitterFrac: 0.05, GeoLoss: 0.001,
			InitialMembers: 4, Persist: true,
		},
		Network: Net{
			Segments: []Segment{
				{Start: 0, RTT: Duration(100 * time.Millisecond), Jitter: Duration(2 * time.Millisecond), Loss: 0.1, Dup: 0.01},
				{Start: Duration(time.Minute), RTT: Duration(250 * time.Millisecond)},
			},
			FlushOnChange: true,
		},
		Variant: VariantSpec{
			Name: "dynatune", FixK: 10, SafetyFactor: 3,
			ArrivalProbability: 0.999, MinListSize: 7, Estimator: "ewma",
		},
		Faults: []Fault{
			{Kind: FaultPauseLeader, At: Duration(10 * time.Second), Every: Duration(5 * time.Second),
				Count: 3, Duration: Duration(2 * time.Second)},
			{Kind: FaultLinkDown, From: 1, To: 2, At: Duration(time.Second), Duration: Duration(time.Second)},
			{Kind: FaultDegradeLinks, At: Duration(3 * time.Second), Duration: Duration(4 * time.Second),
				RTT: Duration(300 * time.Millisecond), Jitter: Duration(5 * time.Millisecond), Loss: 0.25},
			{Kind: FaultPartitionNode, Node: 3, At: Duration(8 * time.Second)},
		},
		Workload: &Workload{
			StartRPS: 1000, StepRPS: 500, StepDuration: Duration(10 * time.Second),
			Steps: 8, Poisson: true, Keys: 4096, Zipf: 1.2,
			ClientRTT: Duration(100 * time.Millisecond),
		},
		Trials: 100, Reps: 3, Seed: 42,
		Settle:  Duration(4 * time.Second),
		Horizon: Duration(3 * time.Minute), CPUEvery: Duration(5 * time.Second),
		Downtime:   Duration(500 * time.Millisecond),
		Reads:      &ReadProbe{Reads: 1000, Every: Duration(25 * time.Millisecond), Mode: "lease"},
		Membership: &MembershipProbe{Preload: 500},
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := fullSpec()
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round-trip changed the spec:\n in: %+v\nout: %+v\njson: %s", in, out, data)
	}
}

func TestRegistrySpecsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		spec, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) after Names listed it", name)
		}
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		var out Spec
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(spec, out) {
			t.Fatalf("%s: round-trip changed the spec:\n in: %+v\nout: %+v", name, spec, out)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%s: decoded spec invalid: %v", name, err)
		}
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"150ms"`), &d); err != nil || d.D() != 150*time.Millisecond {
		t.Fatalf("string form: %v %v", d.D(), err)
	}
	if err := json.Unmarshal([]byte(`2000000`), &d); err != nil || d.D() != 2*time.Millisecond {
		t.Fatalf("numeric form: %v %v", d.D(), err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatal("bad duration accepted")
	}
	b, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(b) != `"1m30s"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
}

func TestSpecValidateRejectsNonsense(t *testing.T) {
	cases := []Spec{
		{Measure: "nope"},
		{Measure: MeasureFailover}, // no trials
		{Measure: MeasureFailover, Trials: 1, Faults: []Fault{{Kind: FaultLinkDown}}}, // not a trial injector (and bad link)
		{Measure: MeasureSeries},                               // no horizon
		{Measure: MeasureThroughput},                           // no workload
		{Measure: MeasureReads},                                // no probe
		{Measure: MeasureMembership, Topology: Topology{N: 2}}, // too small
		{Measure: MeasureSeries, Horizon: 1, Faults: []Fault{{Kind: FaultCrashLeader}}},           // crash without persist
		{Measure: MeasureSeries, Horizon: 1, Faults: []Fault{{Kind: FaultPauseNode}}},             // no node
		{Measure: MeasureSeries, Horizon: 1, Faults: []Fault{{Kind: FaultPauseLeader, Count: 3}}}, // repeat without every
		{Measure: MeasureSeries, Horizon: 1, Faults: []Fault{{Kind: FaultDegradeLinks}}},          // no rtt/duration
		// Fault schedules a measure would silently ignore must be rejected.
		{Measure: MeasureFailover, Trials: 1,
			Faults: []Fault{{Kind: FaultPauseLeader}, {Kind: FaultPauseLeader, At: 1}}}, // >1 trial fault
		{Measure: MeasureFailover, Trials: 1,
			Faults: []Fault{{Kind: FaultPauseLeader, Duration: Duration(2 * time.Second)}}}, // timing on a trial fault
		{Measure: MeasureReads, Reads: &ReadProbe{Reads: 1, Every: 1},
			Faults: []Fault{{Kind: FaultPauseLeader}}},
		{Measure: MeasureMembership, Topology: Topology{N: 5},
			Faults: []Fault{{Kind: FaultPauseLeader}}},
		{Measure: MeasureThroughput, Topology: Topology{N: 3, Groups: 4},
			Workload: &Workload{StartRPS: 1, Steps: 1, StepDuration: 1},
			Faults:   []Fault{{Kind: FaultPauseLeader}}},
		{Measure: MeasureThroughput, Topology: Topology{N: 3, Groups: 4},
			Workload: &Workload{StartRPS: 100}}, // zero-length ramp → NaN aggregates
		{Measure: MeasureSeries, Horizon: 1, Topology: Topology{N: 5, Persist: true},
			Faults: []Fault{{Kind: FaultRollingRestart, Every: 1, Count: 5}}}, // crash with no restart
		{Measure: MeasureThroughput, Topology: Topology{N: 3, Groups: 4, Regions: []string{"tokyo", "london", "california"}},
			Workload: &Workload{StartRPS: 1, Steps: 1, StepDuration: 1}}, // geo dropped by sharded testbed
		{Measure: MeasureSeries, Horizon: 1, Topology: Topology{N: 5},
			Faults: []Fault{{Kind: FaultPauseNode, Node: 7}}}, // node out of range
		{Measure: MeasureSeries, Horizon: 1, Topology: Topology{N: 5},
			Faults: []Fault{{Kind: FaultLinkDown, From: 1, To: 6}}}, // link endpoint out of range
		{Measure: MeasureFailover, Trials: 1, Topology: Topology{N: 3, Groups: 2},
			Faults: []Fault{{Kind: FaultPauseLeader}}}, // sharded topologies run throughput only
		{Measure: MeasureFailover, Trials: 1,
			Topology: Topology{N: 3, Regions: []string{"tokyo", "london", "california", "sydney", "sao-paulo"}}}, // 5 regions for 3 nodes
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted: %+v", i, s)
		}
	}
}

func TestScaleShrinksOnlyCost(t *testing.T) {
	s := fullSpec()
	small := Scale(s, 0.1)
	if small.Trials != 10 || small.Reps != 1 {
		t.Fatalf("trials/reps: %d/%d", small.Trials, small.Reps)
	}
	if small.Horizon.D() != 18*time.Second {
		t.Fatalf("horizon: %v", small.Horizon.D())
	}
	if small.Reads.Reads != 100 || small.Workload.Steps != 1 {
		t.Fatalf("reads/steps: %d/%d", small.Reads.Reads, small.Workload.Steps)
	}
	// Structure is untouched; fault times keep their meaning.
	if !reflect.DeepEqual(small.Faults, s.Faults) || !reflect.DeepEqual(small.Topology, s.Topology) {
		t.Fatal("Scale changed scenario structure")
	}
	// Scale copies the nested sections it shrinks.
	if s.Reads.Reads != 1000 || s.Workload.Steps != 8 {
		t.Fatal("Scale mutated the original spec")
	}
	if got := Scale(s, 1); !reflect.DeepEqual(got, s) {
		t.Fatal("Scale(1) should be identity")
	}
}
