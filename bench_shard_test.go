package bench

import (
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
	"dynatune/internal/shard"
	"dynatune/internal/workload"
)

// BenchmarkShardedScaling measures the sharded multi-Raft layer beyond
// the paper's single-group scope: the same keyed open-loop workload is
// offered to 1 group and to 4 groups (consistent-hash routed, each group
// its own Dynatune-tuned 3-node Raft) under a compressed version of the
// paper's fluctuating-WAN profile (RTT 50→200→50 ms). One leader's CPU
// caps a single group near the Fig. 5 service capacity; four leaders
// commit in parallel, so aggregate committed-ops throughput must scale
// ≥2× while the saturated tail latency collapses.
func BenchmarkShardedScaling(b *testing.B) {
	prof := netsim.GradualRTTRamp(netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond, 4*time.Second)
	ramp := workload.Ramp{StartRPS: 60000, StepRPS: 0, StepDuration: 5 * time.Second, Steps: 3, Poisson: true}
	run := func(groups int, seed int64) shard.RampResult {
		return shard.RunRamp(shard.Options{
			Groups: groups, NodesPerGroup: 3, Seed: seed,
			Variant: cluster.VariantDynatune(dynatune.Options{}),
			Profile: prof,
		}, ramp, shard.LoadOptions{Keys: 4096})
	}
	b.Run("FluctuatingWAN/1v4", func(b *testing.B) {
		var r1, r4 shard.RampResult
		for i := 0; i < b.N; i++ {
			r1 = run(1, 41+int64(i))
			r4 = run(4, 41+int64(i))
		}
		b.ReportMetric(r1.AggThroughput, "agg1-req/s")
		b.ReportMetric(r4.AggThroughput, "agg4-req/s")
		b.ReportMetric(r1.P99Ms, "p99-1shard-ms")
		b.ReportMetric(r4.P99Ms, "p99-4shard-ms")
		b.ReportMetric(r4.AggThroughput/r1.AggThroughput, "speedup-x")
		b.ReportMetric(0, "ns/op")
	})
}
