package raft

import (
	"testing"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/sim"
)

// newChunkedSnapshotCluster is newSnapshotCluster with the streaming knobs
// armed and a tap on every delivered message, so tests can assert the
// transfer really went chunk by chunk.
func newChunkedSnapshotCluster(opts clusterOpts, chunk int, policy SnapshotPolicy, tap func(Message)) (*testCluster, []*miniSM) {
	c := &testCluster{eng: sim.NewEngine(opts.seed)}
	c.net = netsim.New[Message](c.eng, opts.n, netsim.Constant(opts.params), func(to int, m Message) {
		if tap != nil {
			tap(m)
		}
		rt := c.rts[to]
		if rt.down {
			return
		}
		rt.node.Step(m)
	})
	peers := make([]ID, opts.n)
	for i := range peers {
		peers[i] = ID(i + 1)
	}
	sms := make([]*miniSM, opts.n)
	for i := 0; i < opts.n; i++ {
		rt := &testRuntime{
			eng:     c.eng,
			net:     c.net,
			id:      ID(i + 1),
			timers:  map[timerKey]sim.Handle{},
			hbClass: opts.hbClass,
		}
		sm := &miniSM{}
		sms[i] = sm
		node, err := NewNode(Config{
			ID:              ID(i + 1),
			Peers:           peers,
			Runtime:         rt,
			Tuner:           opts.tuners(i),
			Tracer:          recordTracer{c},
			Apply:           sm.apply,
			SnapshotData:    sm.snapshot,
			RestoreSnapshot: sm.restore,
			SnapshotChunk:   chunk,
			Snapshot:        policy,
		})
		if err != nil {
			panic(err)
		}
		rt.node = node
		c.rts = append(c.rts, rt)
		c.nodes = append(c.nodes, node)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c, sms
}

// TestChunkedSnapshotCatchUp: the 16-byte miniSM snapshot with a 4-byte
// chunk size must cross as 4 chunks, and the restarted follower must end
// up state-identical to the leader.
func TestChunkedSnapshotCatchUp(t *testing.T) {
	opts := defaultOpts()
	chunks, whole := 0, 0
	c, sms := newChunkedSnapshotCluster(opts, 4, SnapshotPolicy{}, func(m Message) {
		if m.Type != MsgSnap {
			return
		}
		if m.SnapTotal == 0 {
			whole++
			return
		}
		chunks++
		if len(m.Snap) > 4 {
			t.Errorf("chunk of %d bytes exceeds the 4-byte chunk size", len(m.Snap))
		}
	})
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 80; i++ {
		if _, err := lead.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)
	lead.CompactLog(2)
	c.restart(follower.ID())
	c.run(5 * time.Second)

	if whole != 0 {
		t.Fatalf("%d single-envelope snapshots sent despite the chunk size", whole)
	}
	if chunks < 4 {
		t.Fatalf("only %d snapshot chunks observed, want >= 4", chunks)
	}
	leadSM, folSM := sms[lead.ID()-1], sms[follower.ID()-1]
	if folSM.sum != leadSM.sum || folSM.applied != leadSM.applied {
		t.Fatalf("state machines diverged after streamed catch-up: follower (%d,%d) vs leader (%d,%d)",
			folSM.applied, folSM.sum, leadSM.applied, leadSM.sum)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedSnapshotSurvivesLoss: with 20% message loss the stream's
// stall-resend must still complete the transfer.
func TestChunkedSnapshotSurvivesLoss(t *testing.T) {
	opts := defaultOpts()
	opts.params = netsim.Params{RTT: 10 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.2}
	c, sms := newChunkedSnapshotCluster(opts, 4, SnapshotPolicy{}, nil)
	lead := c.waitLeader(10 * time.Second)
	if lead == nil {
		t.Fatal("no leader under loss")
	}
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 60; i++ {
		lead.Propose([]byte{byte(i)}) //nolint:errcheck // leader is established
	}
	c.run(2 * time.Second)
	lead.CompactLog(0)
	c.restart(follower.ID())
	c.run(30 * time.Second)

	leadSM, folSM := sms[lead.ID()-1], sms[follower.ID()-1]
	if folSM.sum != leadSM.sum {
		t.Fatalf("streamed catch-up under loss diverged: follower sum %d, leader sum %d", folSM.sum, leadSM.sum)
	}
}

// TestChunkedSnapshotLeaderProtocol drives the leader side by hand: one
// in-flight chunk, ack-clocked advance, duplicate acks answered by the
// follower's authoritative position, and the final MsgAppResp clearing
// the transfer.
func TestChunkedSnapshotLeaderProtocol(t *testing.T) {
	rt := newFakeRuntime()
	sm := &miniSM{}
	n, err := NewNode(Config{
		ID:              1,
		Peers:           []ID{1, 2, 3},
		Runtime:         rt,
		Tuner:           NewStaticTuner(time.Second, 100*time.Millisecond),
		Apply:           sm.apply,
		SnapshotData:    sm.snapshot,
		RestoreSnapshot: sm.restore,
		SnapshotChunk:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	rt.take()
	electIsolated(t, n, rt)

	// Commit and apply a few entries via peer 2's acks, then compact.
	for i := 0; i < 10; i++ {
		if _, err := n.Propose([]byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	last := n.log.LastIndex()
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Index: last})
	if n.log.Applied() != last {
		t.Fatalf("applied %d, want %d", n.log.Applied(), last)
	}
	n.CompactLog(0)
	if n.log.FirstIndex() != last {
		t.Fatalf("first index %d after full compaction, want %d", n.log.FirstIndex(), last)
	}
	rt.take()

	// Peer 3 rejects from far behind: the leader must open a stream (the
	// 16-byte snapshot exceeds the 6-byte chunk).
	n.Step(Message{Type: MsgAppResp, From: 3, To: 1, Term: n.Term(), Reject: true, Index: 1, Hint: 0})
	chunk, ok := rt.lastOfType(MsgSnap)
	if !ok || chunk.SnapTotal != 16 || chunk.SnapOffset != 0 || len(chunk.Snap) != 6 {
		t.Fatalf("first chunk = %+v, %v", chunk, ok)
	}
	rt.take()

	// No ack yet: replication traffic must not push more chunks (one in
	// flight, stall timeout not reached).
	n.Step(Message{Type: MsgHeartbeatResp, From: 3, To: 1, Term: n.Term()})
	if m, ok := rt.lastOfType(MsgSnap); ok {
		t.Fatalf("unacked transfer pushed another chunk: %+v", m)
	}

	// Ack clocks the next chunk from the follower's position.
	n.Step(Message{Type: MsgSnapResp, From: 3, To: 1, Term: n.Term(), Index: chunk.Index, Hint: 6})
	second, ok := rt.lastOfType(MsgSnap)
	if !ok || second.SnapOffset != 6 || len(second.Snap) != 6 {
		t.Fatalf("second chunk = %+v, %v", second, ok)
	}
	rt.take()

	// A duplicate ack at a stale position resumes from that position.
	n.Step(Message{Type: MsgSnapResp, From: 3, To: 1, Term: n.Term(), Index: chunk.Index, Hint: 6})
	dup, ok := rt.lastOfType(MsgSnap)
	if !ok || dup.SnapOffset != 6 {
		t.Fatalf("resume after duplicate ack = %+v, %v", dup, ok)
	}
	rt.take()

	n.Step(Message{Type: MsgSnapResp, From: 3, To: 1, Term: n.Term(), Index: chunk.Index, Hint: 12})
	final, ok := rt.lastOfType(MsgSnap)
	if !ok || final.SnapOffset != 12 || len(final.Snap) != 4 {
		t.Fatalf("final chunk = %+v, %v", final, ok)
	}

	// The install ack closes the stream and restores normal progress.
	n.Step(Message{Type: MsgAppResp, From: 3, To: 1, Term: n.Term(), Index: chunk.Index})
	if n.prs[3].snap != nil {
		t.Fatal("transfer state survived the install ack")
	}
	if n.prs[3].match != chunk.Index {
		t.Fatalf("match %d after install, want %d", n.prs[3].match, chunk.Index)
	}
}

// TestChunkedSnapshotFollowerProtocol drives the follower side by hand:
// contiguous reassembly, duplicate and gap chunks answered with the
// actual position, and a term change discarding the partial buffer.
func TestChunkedSnapshotFollowerProtocol(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	snap := []byte("0123456789abcdef")

	chunkMsg := func(from ID, term uint64, off int) Message {
		end := off + 4
		if end > len(snap) {
			end = len(snap)
		}
		return Message{
			Type: MsgSnap, From: from, To: 1, Term: term,
			Index: 10, LogTerm: term, Snap: snap[off:end],
			SnapOffset: uint64(off), SnapTotal: uint64(len(snap)),
		}
	}

	n.Step(chunkMsg(2, 1, 0))
	resp, ok := rt.lastOfType(MsgSnapResp)
	if !ok || resp.Hint != 4 || resp.Index != 10 {
		t.Fatalf("first chunk ack = %+v, %v", resp, ok)
	}
	rt.take()

	// Duplicate chunk: ack the real position, don't re-append.
	n.Step(chunkMsg(2, 1, 0))
	resp, _ = rt.lastOfType(MsgSnapResp)
	if resp.Hint != 4 {
		t.Fatalf("duplicate chunk ack hint = %d, want 4", resp.Hint)
	}
	rt.take()

	// Gap (a dropped chunk): same answer.
	n.Step(chunkMsg(2, 1, 12))
	resp, _ = rt.lastOfType(MsgSnapResp)
	if resp.Hint != 4 {
		t.Fatalf("gap chunk ack hint = %d, want 4", resp.Hint)
	}
	rt.take()

	// A term change mid-transfer discards the partial buffer.
	n.Step(Message{Type: MsgHeartbeat, From: 3, To: 1, Term: 2})
	if n.pendingSnap != nil {
		t.Fatal("partial snapshot survived a term change")
	}
	rt.take()

	// The new leader restarts the stream; a mid-stream chunk is answered
	// with position 0 (start over), then a full contiguous pass installs.
	n.Step(chunkMsg(3, 2, 4))
	resp, _ = rt.lastOfType(MsgSnapResp)
	if resp.Hint != 0 {
		t.Fatalf("post-restart mid-stream chunk ack hint = %d, want 0", resp.Hint)
	}
	rt.take()
	for off := 0; off < len(snap); off += 4 {
		n.Step(chunkMsg(3, 2, off))
	}
	install, ok := rt.lastOfType(MsgAppResp)
	if !ok || install.Index != 10 || install.Reject {
		t.Fatalf("install ack = %+v, %v", install, ok)
	}
	if n.pendingSnap != nil {
		t.Fatal("reassembly buffer survived the install")
	}
	if n.log.FirstIndex() != 10 || n.log.Committed() != 10 {
		t.Fatalf("log not re-based: first=%d committed=%d", n.log.FirstIndex(), n.log.Committed())
	}
}

// TestSnapshotPolicyBoundsLog: with the automatic policy armed, a long
// proposal stream must keep every node's retained log at or under
// EveryEntries and advance the compaction floor — no manual CompactLog.
func TestSnapshotPolicyBoundsLog(t *testing.T) {
	opts := defaultOpts()
	policy := SnapshotPolicy{EveryEntries: 24, RetainEntries: 8}
	c, sms := newChunkedSnapshotCluster(opts, 0, policy, nil)
	lead := c.waitLeader(10 * time.Second)
	for i := 0; i < 200; i++ {
		if _, err := lead.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			c.run(200 * time.Millisecond)
		}
	}
	c.run(2 * time.Second)
	for _, n := range c.nodes {
		if n.FirstIndex() == 0 {
			t.Fatalf("node %d never compacted (first index 0, %d entries)", n.ID(), n.LogEntries())
		}
		if got := uint64(n.LogEntries()); got > policy.EveryEntries {
			t.Fatalf("node %d retains %d entries, policy bound %d", n.ID(), got, policy.EveryEntries)
		}
	}
	for i := 1; i < len(sms); i++ {
		if sms[i].sum != sms[0].sum {
			t.Fatalf("state machines diverged under the policy: node %d sum %d vs node 1 sum %d", i+1, sms[i].sum, sms[0].sum)
		}
	}
}

// TestSnapshotPolicyByteTrigger: the EveryBytes trigger compacts once the
// retained payload crosses the bound.
func TestSnapshotPolicyByteTrigger(t *testing.T) {
	opts := defaultOpts()
	policy := SnapshotPolicy{EveryBytes: 256, RetainEntries: 4}
	c, _ := newChunkedSnapshotCluster(opts, 0, policy, nil)
	lead := c.waitLeader(10 * time.Second)
	payload := make([]byte, 32)
	for i := 0; i < 40; i++ {
		if _, err := lead.Propose(payload); err != nil {
			t.Fatal(err)
		}
		if i%8 == 7 {
			c.run(200 * time.Millisecond)
		}
	}
	c.run(2 * time.Second)
	for _, n := range c.nodes {
		if n.LogBytes() > policy.EveryBytes {
			t.Fatalf("node %d retains %d log bytes, policy bound %d", n.ID(), n.LogBytes(), policy.EveryBytes)
		}
		if n.FirstIndex() == 0 {
			t.Fatalf("node %d never compacted on the byte trigger", n.ID())
		}
	}
}

// TestLogBytesTracking pins the incremental byte accounting across every
// mutation path: append, conflict truncation, compaction, restore.
func TestLogBytesTracking(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("aa"), []byte("bbb"))
	if l.Bytes() != 5 {
		t.Fatalf("bytes after append = %d, want 5", l.Bytes())
	}
	// Conflicting suffix replacement: entry 2 is overwritten.
	l.MaybeAppend(1, 1, []Entry{{Term: 2, Index: 2, Data: []byte("cccc")}})
	if l.Bytes() != 6 {
		t.Fatalf("bytes after conflict truncation = %d, want 6", l.Bytes())
	}
	l.CommitTo(2)
	l.NextToApply()
	l.CompactTo(1)
	if l.Bytes() != 4 {
		t.Fatalf("bytes after compaction = %d, want 4", l.Bytes())
	}
	l.RestoreSnapshot(10, 3)
	if l.Bytes() != 0 {
		t.Fatalf("bytes after restore = %d, want 0", l.Bytes())
	}
	rebuilt := NewLogFromState(5, 2, []Entry{{Term: 2, Index: 6, Data: []byte("dd")}})
	if rebuilt.Bytes() != 2 {
		t.Fatalf("bytes after rebuild = %d, want 2", rebuilt.Bytes())
	}
}
