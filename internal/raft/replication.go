package raft

import (
	"fmt"
	"time"
)

// Propose appends a client command on the leader and replicates it. It
// returns the assigned log index.
func (n *Node) Propose(data []byte) (uint64, error) {
	if n.state != StateLeader {
		return 0, ErrNotLeader
	}
	if n.transferee != None {
		return 0, ErrTransferring
	}
	idx := n.log.Append(n.term, data)
	n.maybeCommit() // single-node clusters commit immediately
	n.broadcastAppend()
	return idx, nil
}

// ProposeBatch appends several commands at once (one MsgApp per peer),
// the batching etcd's Ready loop performs under load; the throughput
// experiment relies on it.
func (n *Node) ProposeBatch(datas [][]byte) (first, last uint64, err error) {
	if n.state != StateLeader {
		return 0, 0, ErrNotLeader
	}
	if n.transferee != None {
		return 0, 0, ErrTransferring
	}
	if len(datas) == 0 {
		return 0, 0, nil
	}
	last = n.log.Append(n.term, datas...)
	first = last - uint64(len(datas)) + 1
	n.maybeCommit()
	n.broadcastAppend()
	return first, last, nil
}

func (n *Node) broadcastAppend() {
	if n.state != StateLeader {
		// A conf change applied mid-flow (self-removal) may have already
		// stepped us down.
		return
	}
	hadEntries := n.log.LastIndex() > 0
	for _, p := range n.peers {
		if pr := n.prs[p]; pr != nil && pr.next > n.log.LastIndex() {
			hadEntries = false
		}
		n.sendAppend(p)
	}
	if n.cfg.SuppressHeartbeatWhileReplicating && n.cfg.ConsolidatedHeartbeats && hadEntries && n.state == StateLeader {
		// Every follower just received a timer-resetting MsgApp; the
		// shared heartbeat can wait one full minimum interval.
		n.cfg.Runtime.SetTimer(TimerHeartbeat, None, n.cfg.Runtime.Now()+n.minHeartbeatInterval())
	}
}

// sendAppend ships the next batch of entries to peer (or an empty probe
// carrying commit if the peer is caught up). If the tail the peer needs
// was compacted away, a snapshot is shipped instead (Raft §7).
func (n *Node) sendAppend(peer ID) {
	pr := n.prs[peer]
	if n.state != StateLeader || pr == nil {
		return // stepped down or the peer was removed mid-flow
	}
	if pr.next <= n.log.FirstIndex() {
		if n.sendSnapshot(peer) {
			return
		}
		// No snapshot support configured: restart from the oldest retained
		// point (its sentinel term is preserved, so the consistency check
		// still functions for peers that merely lag within one window).
		pr.next = n.log.FirstIndex() + 1
	}
	prevIndex := pr.next - 1
	prevTerm, ok := n.log.Term(prevIndex)
	if !ok {
		return
	}
	entries, _ := n.log.Slice(pr.next, n.log.LastIndex(), n.cfg.MaxEntriesPerApp)
	n.send(Message{
		Type:    MsgApp,
		To:      peer,
		Term:    n.term,
		Index:   prevIndex,
		LogTerm: prevTerm,
		Entries: entries,
		Commit:  n.log.Committed(),
	})
	// Optimistic pipelining (etcd's replicate mode): assume the entries
	// land and advance next immediately, so back-to-back proposals stream
	// instead of re-sending the unacked window every time. A rejection
	// rewinds next.
	pr.next += uint64(len(entries))

	if n.cfg.SuppressHeartbeatWhileReplicating && len(entries) > 0 && !n.cfg.ConsolidatedHeartbeats {
		// The MsgApp resets the follower's election timer, so the next
		// heartbeat to this peer can wait a full interval from now
		// (paper §IV-E). In consolidated mode the shared timer is pushed
		// back only by broadcastAppend, when every peer was beaten.
		now := n.cfg.Runtime.Now()
		n.cfg.Runtime.SetTimer(TimerHeartbeat, peer, now+n.cfg.Tuner.HeartbeatInterval(peer))
	}
}

// sendSnapshot ships the state machine at the leader's applied index to a
// peer that fell behind the compaction window. It reports whether a
// snapshot was sent (false when snapshots are not configured). Snapshots
// above Config.SnapshotChunk stream chunk by chunk (snapshot.go); at most
// one transfer per follower is in flight, and while one is, this only
// resends the current chunk after a stall — the flow control that keeps a
// slow follower from being buried under retransmits.
func (n *Node) sendSnapshot(peer ID) bool {
	if n.cfg.SnapshotData == nil {
		return false
	}
	pr := n.prs[peer]
	if x := pr.snap; x != nil {
		if n.cfg.Runtime.Now()-x.sentAt >= n.cfg.Tuner.ElectionTimeout() {
			n.sendSnapChunk(x) // chunk or ack presumed lost: resume
		}
		return true
	}
	index := n.log.Applied()
	term, ok := n.log.Term(index)
	if !ok {
		return false
	}
	data := n.cfg.SnapshotData()
	if n.cfg.SnapshotChunk <= 0 || len(data) <= n.cfg.SnapshotChunk {
		n.send(Message{
			Type:         MsgSnap,
			To:           peer,
			Term:         n.term,
			Index:        index,
			LogTerm:      term,
			Snap:         data,
			SnapVoters:   n.Voters(),
			SnapLearners: n.Learners(),
		})
		// Optimistically assume installation; a rejection (or a normal
		// ack) re-synchronizes progress.
		pr.next = index + 1
		return true
	}
	x := &snapXfer{
		to: peer, index: index, term: term, data: data,
		voters: n.Voters(), learners: n.Learners(),
	}
	pr.snap = x
	n.sendSnapChunk(x)
	// pr.next stays below the compaction floor until the install acks, so
	// replication keeps routing here while the stream is in flight.
	return true
}

// handleSnapshot installs a leader snapshot on a follower. Term relations
// were normalized by Step (m.Term == n.term, sender is leader).
func (n *Node) handleSnapshot(m Message) {
	if n.state != StateFollower || n.lead != m.From {
		n.becomeFollower(m.Term, m.From)
	}
	n.lead = m.From
	n.lastLeaderContact = n.cfg.Runtime.Now()
	n.resetElectionTimer()

	if m.Index <= n.log.Committed() {
		// Stale snapshot: we already have everything it contains. The ack
		// at our commit point also tells a streaming leader to drop the
		// transfer (commit outran the snapshot mid-stream).
		if n.pendingSnap != nil && n.pendingSnap.index <= n.log.Committed() {
			n.pendingSnap = nil
		}
		n.send(Message{Type: MsgAppResp, To: m.From, Term: n.term, Index: n.log.Committed()})
		return
	}
	if m.SnapTotal == 0 {
		// Legacy single-envelope install.
		n.installSnapshot(m.From, m.Index, m.LogTerm, m.Snap, m.SnapVoters, m.SnapLearners)
		return
	}
	// One chunk of a streamed transfer. Anything that doesn't match the
	// reassembly buffer (new transfer, changed coordinates) restarts it;
	// a chunk that isn't the next contiguous piece is answered with our
	// actual byte position so the leader resumes from there.
	ps := n.pendingSnap
	if ps == nil || ps.from != m.From || ps.index != m.Index ||
		ps.term != m.LogTerm || ps.total != m.SnapTotal {
		ps = &inboundSnap{from: m.From, index: m.Index, term: m.LogTerm, total: m.SnapTotal}
		n.pendingSnap = ps
	}
	if m.SnapOffset != uint64(len(ps.buf)) {
		n.send(Message{Type: MsgSnapResp, To: m.From, Term: n.term, Index: m.Index, Hint: uint64(len(ps.buf))})
		return
	}
	ps.buf = append(ps.buf, m.Snap...)
	if uint64(len(ps.buf)) < ps.total {
		n.send(Message{Type: MsgSnapResp, To: m.From, Term: n.term, Index: m.Index, Hint: uint64(len(ps.buf))})
		return
	}
	data := ps.buf
	n.pendingSnap = nil
	n.installSnapshot(m.From, m.Index, m.LogTerm, data, m.SnapVoters, m.SnapLearners)
}

func (n *Node) sendHeartbeat(peer ID) {
	now := n.cfg.Runtime.Now()
	meta := n.cfg.Tuner.PrepareHeartbeat(peer, now)
	// Commit is capped at the follower's match so it never learns a commit
	// index beyond its own log (etcd does the same).
	commit := n.log.Committed()
	if pr := n.prs[peer]; pr != nil && pr.match < commit {
		commit = pr.match
	}
	n.send(Message{Type: MsgHeartbeat, To: peer, Term: n.term, Commit: commit, HB: meta})
}

// handleAppend processes MsgApp on a follower/candidate. Term relations
// were normalized by Step: m.Term == n.term here.
func (n *Node) handleAppend(m Message) {
	if n.state != StateFollower || n.lead != m.From {
		// A candidate (or pre-candidate) discovering a live leader at its
		// own term reverts (etcd behaviour); a follower adopting a leader
		// restarts measurement state via the tuner reset inside.
		n.becomeFollower(m.Term, m.From)
	}
	n.lead = m.From
	n.lastLeaderContact = n.cfg.Runtime.Now()
	n.resetElectionTimer()

	if lastNew, ok := n.log.MaybeAppend(m.Index, m.LogTerm, m.Entries); ok {
		commit := m.Commit
		if commit > lastNew {
			commit = lastNew
		}
		n.commitTo(commit)
		n.send(Message{Type: MsgAppResp, To: m.From, Term: n.term, Index: lastNew})
	} else {
		n.send(Message{
			Type:   MsgAppResp,
			To:     m.From,
			Term:   n.term,
			Reject: true,
			Index:  m.Index,
			Hint:   n.log.LastIndex(),
		})
	}
}

func (n *Node) handleAppendResp(m Message) {
	if n.state != StateLeader {
		return
	}
	pr, ok := n.prs[m.From]
	if !ok {
		return
	}
	pr.recentActive = true
	pr.lastActive = n.cfg.Runtime.Now()
	if m.Reject {
		// Back up next; the follower's hint (its last index) lets us skip
		// the gap in one step (etcd's fast conflict resolution).
		next := m.Index // the prevIndex we tried
		if m.Hint+1 < next {
			next = m.Hint + 1
		}
		if next < 1 {
			next = 1
		}
		if next < pr.next {
			pr.next = next
		}
		n.sendAppend(m.From)
		return
	}
	if x := pr.snap; x != nil && m.Index >= x.index {
		// The streamed snapshot installed (or the follower's commit point
		// outran it): the transfer is over either way.
		pr.snap = nil
	}
	if m.Index > pr.match {
		pr.match = m.Index
		if m.From == n.transferee && pr.match == n.log.LastIndex() {
			// The transfer target caught up: hand over now.
			n.sendTimeoutNow(m.From)
		}
		if m.Index+1 > pr.next {
			// Never rewind an optimistically advanced next on a stale ack.
			pr.next = m.Index + 1
		}
		if n.maybeCommit() {
			// Propagate the new commit index promptly so followers apply
			// without waiting a full heartbeat interval.
			n.broadcastAppend()
		}
	}
	if pr.next <= n.log.LastIndex() {
		n.sendAppend(m.From)
	}
}

func (n *Node) handleHeartbeat(m Message) {
	if n.state != StateFollower || n.lead != m.From {
		n.becomeFollower(m.Term, m.From)
	}
	n.lead = m.From
	n.lastLeaderContact = n.cfg.Runtime.Now()
	n.resetElectionTimer()
	n.commitTo(m.Commit)
	resp := n.cfg.Tuner.ObserveHeartbeat(m.From, m.HB, n.cfg.Runtime.Now())
	n.send(Message{Type: MsgHeartbeatResp, To: m.From, Term: n.term, HBResp: resp, ReadCtx: m.ReadCtx})
}

func (n *Node) handleHeartbeatResp(m Message) {
	if n.state != StateLeader {
		return
	}
	pr, ok := n.prs[m.From]
	if !ok {
		return
	}
	pr.recentActive = true
	pr.lastActive = n.cfg.Runtime.Now()
	n.cfg.Tuner.ObserveHeartbeatResp(m.From, m.HBResp, n.cfg.Runtime.Now())
	n.onReadAck(m.From, m.ReadCtx)
	if pr.match < n.log.LastIndex() {
		n.sendAppend(m.From)
	}
}

// maybeCommit advances the commit index to the quorum match point,
// restricted to entries of the current term (Raft §5.4.2). It reports
// whether the commit index advanced. Only voters count: learner acks never
// advance the commit point.
func (n *Node) maybeCommit() bool {
	matches := n.matchBuf[:0]
	if n.isVoter() {
		matches = append(matches, n.log.LastIndex())
	}
	for id, pr := range n.prs {
		if n.voters[id] {
			matches = append(matches, pr.match)
		}
	}
	n.matchBuf = matches
	if len(matches) < n.quorum {
		return false
	}
	// Insertion sort, descending: the slice is one entry per voter (a
	// handful), and this runs on every append response — a per-call
	// reflection-based sort is measurable at multi-Raft scale.
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j] > matches[j-1]; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	candidate := matches[n.quorum-1]
	if candidate <= n.log.Committed() {
		return false
	}
	if t, ok := n.log.Term(candidate); !ok || t != n.term {
		return false
	}
	n.commitTo(candidate)
	return true
}

func (n *Node) commitTo(i uint64) {
	before := n.log.Committed()
	n.log.CommitTo(i)
	if n.log.Committed() == before {
		return
	}
	ents := n.log.NextToApply()
	if len(ents) == 0 {
		return
	}
	// Configuration changes are applied by the raft layer itself, in log
	// order relative to the surrounding entries; the state machine sees
	// the full batch but skips EntryConfChange records.
	for _, e := range ents {
		if e.Type != EntryConfChange {
			continue
		}
		cc, err := DecodeConfChange(e.Data)
		if err != nil {
			panic(fmt.Sprintf("raft: committed conf change %d undecodable: %v", e.Index, err))
		}
		n.applyConfChange(cc)
	}
	if n.cfg.Apply != nil {
		n.cfg.Apply(ents)
	}
	n.notifyReadWaiters()
	n.maybeAutoCompact()
}

// CompactLog discards applied entries older than keepLast entries behind
// the minimum replication point, bounding memory in long-running
// simulations. Safe to call at any time on any role. When snapshot
// shipping is configured, a leader may compact past lagging followers —
// they will be caught up by InstallSnapshot; without it, compaction is
// clamped at the slowest follower's match index.
func (n *Node) CompactLog(keepLast uint64) {
	if n.cfg.Persister != nil && n.cfg.SnapshotData != nil {
		// Make the durable log compactable too: snapshot the state machine
		// at the applied index so replay does not need the full history.
		if term, ok := n.log.Term(n.log.Applied()); ok {
			n.persistSnapshot(Snapshot{
				Index: n.log.Applied(), Term: term, Data: n.cfg.SnapshotData(),
				Voters: n.Voters(), Learners: n.Learners(),
			})
		}
	}
	limit := n.log.Applied()
	if n.state == StateLeader && n.cfg.SnapshotData == nil {
		for _, pr := range n.prs {
			if pr.match < limit {
				limit = pr.match
			}
		}
	}
	if limit > keepLast {
		limit -= keepLast
	} else {
		limit = 0
	}
	if limit > n.log.FirstIndex() {
		n.log.CompactTo(limit)
	}
}

// LeaderMatch returns the leader's match index for peer (testing/metrics).
func (n *Node) LeaderMatch(peer ID) (uint64, bool) {
	pr, ok := n.prs[peer]
	if !ok {
		return 0, false
	}
	return pr.match, true
}

// TimeSinceLeaderContact reports how long ago the node last heard from a
// leader (instrumentation for tests).
func (n *Node) TimeSinceLeaderContact() time.Duration {
	return n.cfg.Runtime.Now() - n.lastLeaderContact
}
