package kv

import (
	"encoding/binary"
	"fmt"
)

// OpBatch payload codec. A batch is the server-side group-commit unit:
// several independent client commands replicated as ONE raft entry. The
// payload holds count(4) followed by length-prefixed Encode() blobs, so
// decoding a batch reuses the single-command codec unchanged and a
// decode→re-encode round trip is byte-identical (the fuzz target's
// canonical-form check). Batches never nest — an inner OpBatch is a
// protocol error, not recursion.

// EncodeOps serializes cmds as an OpBatch payload.
func EncodeOps(cmds []Command) []byte {
	size := 4
	encs := make([][]byte, len(cmds))
	for i, c := range cmds {
		encs[i] = Encode(c)
		size += 4 + len(encs[i])
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(cmds)))
	for _, e := range encs {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(e)))
		buf = append(buf, e...)
	}
	return buf
}

// DecodeOps parses an OpBatch payload produced by EncodeOps. Nested
// batches are rejected.
func DecodeOps(b []byte) ([]Command, error) {
	if len(b) < 4 {
		return nil, ErrCorrupt
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(n)*5 > uint64(len(b)) { // each sub costs ≥ 4(len)+1 bytes
		return nil, fmt.Errorf("%w: batch count %d exceeds payload", ErrCorrupt, n)
	}
	cmds := make([]Command, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, ErrCorrupt
		}
		clen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint64(len(b)) < uint64(clen) {
			return nil, ErrCorrupt
		}
		c, err := Decode(b[:clen])
		if err != nil {
			return nil, fmt.Errorf("batch command %d: %w", i, err)
		}
		if c.Op == OpBatch {
			return nil, fmt.Errorf("%w: nested batch", ErrCorrupt)
		}
		cmds = append(cmds, c)
		b = b[clen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	return cmds, nil
}

// BatchCommand wraps cmds into one OpBatch command ready for Encode. The
// outer Client/Seq stay zero — idempotence lives on the inner commands.
// It panics on a nested batch, which is a programming error, not data.
func BatchCommand(cmds []Command) Command {
	for _, c := range cmds {
		if c.Op == OpBatch {
			panic("kv: nested OpBatch")
		}
	}
	return Command{Op: OpBatch, Value: EncodeOps(cmds)}
}
