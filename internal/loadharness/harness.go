package loadharness

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/wireclient"
)

// Options configure one open-loop run against a binary Front.
type Options struct {
	// Addr is the binary Front address.
	Addr string
	// Conns is the peak concurrent connection count.
	Conns int
	// StartConns begins the ramp (default min(Conns, 10000)).
	StartConns int
	// Stages is the number of ramp steps from StartConns to Conns
	// (default 4; 1 jumps straight to Conns).
	Stages int
	// StageDuration is the measured window per stage (default 5s).
	StageDuration time.Duration
	// Rate is the total target arrival rate (req/s) at peak; stages run
	// at Rate scaled by their connection fraction (default 5000).
	Rate float64
	// WriteFrac is the fraction of puts (default 0.1).
	WriteFrac float64
	// Keys is the keyspace size (default 4096).
	Keys int
	// ValueBytes sizes put values (default 128).
	ValueBytes int
	// SLA is the closed-SLA threshold (default 100ms): each stage reports
	// the fraction of requests answered within it.
	SLA time.Duration
	// DialParallel bounds concurrent dials while ramping (default 512).
	DialParallel int
	// CoalesceWindow tunes per-connection write coalescing (default
	// wireclient.DefaultCoalesceWindow).
	CoalesceWindow time.Duration
	// Preload, when true, writes every key once before measuring so gets
	// hit (default true via Run).
	Preload bool
	// SourceIPs lists local IPs to spread dials across. One source IP
	// exhausts the ~28k-port ephemeral range against a single destination,
	// so 100k+ connections need several; every 127.0.0.x is host-local on
	// Linux without configuration. Empty auto-sizes from Conns.
	SourceIPs []string
	// FleetBins lists each group's member binary addresses (indexed by
	// node ID-1). Worker processes use them to run a private BinFront of
	// their own; empty makes workers dial Addr directly.
	FleetBins [][]string
	// WorkerCmd is the argv that re-execs this program into WorkerMain
	// (e.g. {os.Executable(), "load-worker"}). When the connection count
	// exceeds the per-process descriptor budget the run shards across
	// that many worker processes; empty disables sharding, and an
	// over-budget run fails loudly instead of dialing into the wall.
	WorkerCmd []string
	// WorkerEnv is appended to each worker's environment (tests use it to
	// arm the helper-process trigger).
	WorkerEnv []string
	// MaxFDs overrides the probed descriptor budget (testing; 0 probes
	// the real rlimit).
	MaxFDs uint64
	// PinCores pins each load-worker process to its own CPU (round-robin)
	// when the machine has more than one, so generators stop migrating
	// across the cores the fleet needs. No-op on a single-core host or a
	// non-Linux build.
	PinCores bool
	// CPUProfile, when set, writes a CPU profile of this process covering
	// the peak (final) stage to the given path. In a sharded run the
	// parent hosts the fleet, so the profile captures the serving path.
	CPUProfile string
	// Progress, if set, receives one line per stage.
	Progress func(string)
}

func (o *Options) defaults() error {
	if o.Addr == "" {
		return fmt.Errorf("loadharness: need Addr")
	}
	if o.Conns <= 0 {
		o.Conns = 10000
	}
	if o.StartConns <= 0 {
		o.StartConns = 10000
	}
	if o.StartConns > o.Conns {
		o.StartConns = o.Conns
	}
	if o.Stages <= 0 {
		o.Stages = 4
	}
	if o.StartConns == o.Conns {
		o.Stages = 1
	}
	if o.StageDuration <= 0 {
		o.StageDuration = 5 * time.Second
	}
	if o.Rate <= 0 {
		o.Rate = 5000
	}
	if o.WriteFrac < 0 || o.WriteFrac > 1 {
		return fmt.Errorf("loadharness: WriteFrac %v out of [0,1]", o.WriteFrac)
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if o.ValueBytes <= 0 {
		o.ValueBytes = 128
	}
	if o.SLA <= 0 {
		o.SLA = 100 * time.Millisecond
	}
	if o.DialParallel <= 0 {
		o.DialParallel = 512
	}
	if len(o.SourceIPs) == 0 {
		// ~15k conns per source IP leaves headroom inside the default
		// 32768–60999 ephemeral range.
		n := o.Conns/15000 + 1
		if n > 12 {
			n = 12
		}
		for i := 0; i < n; i++ {
			o.SourceIPs = append(o.SourceIPs, fmt.Sprintf("127.0.0.%d", i+1))
		}
	}
	return nil
}

// StageResult is one ramp step's closed-SLA report.
type StageResult struct {
	Conns        int     `json:"conns"`
	TargetRate   float64 `json:"target_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	Issued       uint64  `json:"issued"`
	OK           uint64  `json:"ok"`
	NotFound     uint64  `json:"not_found"`
	Errors       uint64  `json:"errors"`
	MeanMs       float64 `json:"mean_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`
	P999Ms       float64 `json:"p999_ms"`
	SLAMs        float64 `json:"sla_ms"`
	WithinSLA    uint64  `json:"within_sla"`
	SLAFrac      float64 `json:"sla_frac"` // WithinSLA / Issued
	// CoreUtil is each CPU's busy fraction over the measured window
	// (/proc/stat delta; omitted off-Linux).
	CoreUtil []float64 `json:"core_util,omitempty"`
}

// Result is a whole run.
type Result struct {
	Conns  int           `json:"conns"`
	Stages []StageResult `json:"stages"`
	Peak   StageResult   `json:"peak"` // last (full-concurrency) stage
}

// latRec collects latencies with low contention: callbacks hash onto
// shards by connection index.
type latRec struct {
	mu   sync.Mutex
	lats []float64 // milliseconds
}

const latShards = 16

// fdSlack covers everything beyond the 2-fds-per-loopback-conn cost:
// listeners, raft sockets, backend pools, epoll, stdio.
const fdSlack = 4096

// Run executes the staged open-loop ramp. Latency for each request is
// measured from its *scheduled* arrival instant, not from when the
// generator got around to sending it — the open-loop discipline that
// keeps queueing delay visible.
//
// When the requested connection count exceeds what one process's
// RLIMIT_NOFILE can hold (each loopback conn costs TWO descriptors when
// both ends share a process), the run shards across WorkerCmd
// subprocesses — fd limits are per-process — and fails loudly if no
// WorkerCmd was provided rather than dialing into the wall.
func Run(o Options) (*Result, error) {
	if err := o.defaults(); err != nil {
		return nil, err
	}
	need := uint64(o.Conns)*2 + fdSlack
	limit := o.MaxFDs
	if limit == 0 {
		var err error
		limit, err = RaiseFDLimit(need)
		if err != nil {
			return nil, fmt.Errorf("loadharness: fd limit: %w (need ~%d)", err, need)
		}
	}
	if o.Preload {
		if err := preload(o); err != nil {
			return nil, err
		}
	}
	if limit < need {
		if len(o.WorkerCmd) > 0 {
			return runSharded(o, limit)
		}
		return nil, fmt.Errorf("loadharness: %d connections need ~%d fds but the hard limit allows %d; set WorkerCmd to shard across processes",
			o.Conns, need, limit)
	}

	var conns []*wireclient.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	res := &Result{Conns: o.Conns}
	for stage := 0; stage < o.Stages; stage++ {
		want := stageConns(o, stage)
		var err error
		conns, err = growConns(conns, want, o)
		if err != nil {
			return nil, err
		}
		rate := o.Rate * float64(want) / float64(o.Conns)
		stopProf, err := profileStage(o, stage)
		if err != nil {
			return nil, err
		}
		before := sampleCPU()
		sr, lats := runStage(conns, rate, o)
		sr.CoreUtil = cpuUtil(before, sampleCPU())
		stopProf()
		finalizeStage(&sr, lats, o.StageDuration)
		res.Stages = append(res.Stages, sr)
		progressStage(o, stage, sr)
	}
	res.Peak = res.Stages[len(res.Stages)-1]
	return res, nil
}

// profileStage starts the requested CPU profile when stage is the peak
// (final) one; the returned func stops and flushes it.
func profileStage(o Options, stage int) (func(), error) {
	if o.CPUProfile == "" || stage != o.Stages-1 {
		return func() {}, nil
	}
	f, err := os.Create(o.CPUProfile)
	if err != nil {
		return nil, fmt.Errorf("loadharness: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("loadharness: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// stageConns is the ramp schedule: linear StartConns→Conns over Stages.
func stageConns(o Options, stage int) int {
	if o.Stages <= 1 {
		return o.Conns
	}
	return o.StartConns + (o.Conns-o.StartConns)*stage/(o.Stages-1)
}

func progressStage(o Options, stage int, sr StageResult) {
	if o.Progress == nil {
		return
	}
	o.Progress(fmt.Sprintf("stage %d/%d: conns=%d rate=%.0f/s p50=%.2fms p99=%.2fms p999=%.2fms sla=%.4f err=%d",
		stage+1, o.Stages, sr.Conns, sr.AchievedRate, sr.P50Ms, sr.P99Ms, sr.P999Ms, sr.SLAFrac, sr.Errors))
}

// growConns dials until len == want, with bounded parallelism.
func growConns(conns []*wireclient.Conn, want int, o Options) ([]*wireclient.Conn, error) {
	need := want - len(conns)
	if need <= 0 {
		return conns, nil
	}
	// Per-conn buffers stay small at harness scale: 100k connections at
	// 64 KiB of bufio each would be 6 GB before the first request.
	cfg := wireclient.ConnConfig{CoalesceWindow: o.CoalesceWindow, ReadBuffer: 4 << 10}
	base := len(conns)
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, o.DialParallel)
	var wg sync.WaitGroup
	out := make([]*wireclient.Conn, need)
	for i := 0; i < need; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			c, err := dialFrom(o.SourceIPs[(base+i)%len(o.SourceIPs)], o.Addr, cfg)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			out[i] = c
		}(i)
	}
	wg.Wait()
	for _, c := range out {
		if c != nil {
			conns = append(conns, c)
		}
	}
	if firstErr != nil {
		return conns, fmt.Errorf("loadharness: dial to %d conns: %w", want, firstErr)
	}
	return conns, nil
}

// dialFrom dials addr with an explicit local source IP, multiplying the
// ephemeral-port space across SourceIPs.
func dialFrom(srcIP, addr string, cfg wireclient.ConnConfig) (*wireclient.Conn, error) {
	d := net.Dialer{Timeout: 10 * time.Second}
	if ip := net.ParseIP(srcIP); ip != nil && srcIP != "127.0.0.1" {
		d.LocalAddr = &net.TCPAddr{IP: ip}
	}
	nc, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return wireclient.NewConn(nc, cfg), nil
}

// runStage drives one open-loop measured window over the given conns,
// returning the counts plus the raw latency samples so callers (the
// single-process path and the worker protocol alike) can merge before
// computing quantiles.
func runStage(conns []*wireclient.Conn, rate float64, o Options) (StageResult, []float64) {
	var (
		issued    uint64
		okN       atomic.Uint64
		notFound  atomic.Uint64
		errs      atomic.Uint64
		inflight  atomic.Int64
		withinSLA atomic.Uint64
	)
	recs := make([]latRec, latShards)
	slaMs := float64(o.SLA) / float64(time.Millisecond)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	val := []byte(strings.Repeat("x", o.ValueBytes))

	start := time.Now()
	interval := float64(time.Second) / rate
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for now := range tick.C {
		elapsed := now.Sub(start)
		if elapsed >= o.StageDuration {
			break
		}
		due := uint64(float64(elapsed) / interval)
		for issued < due {
			i := issued
			issued++
			// The request's ideal arrival instant on the open-loop clock.
			sched := start.Add(time.Duration(float64(i) * interval))
			conn := conns[int(i)%len(conns)]
			key := fmt.Sprintf("lh-%06d", rng.Intn(o.Keys))
			req := wireclient.Request{Op: wireclient.OpGet, Key: key}
			if rng.Float64() < o.WriteFrac {
				req = wireclient.Request{Op: wireclient.OpPut, Key: key, Value: val}
			}
			shard := &recs[int(i)%latShards]
			inflight.Add(1)
			conn.Do(&req, func(resp wireclient.Response, err error) {
				defer inflight.Add(-1)
				if err != nil {
					errs.Add(1)
					return
				}
				switch resp.Status {
				case wireclient.StatusOK:
					okN.Add(1)
				case wireclient.StatusNotFound:
					notFound.Add(1)
				default:
					errs.Add(1)
					return
				}
				ms := float64(time.Since(sched)) / float64(time.Millisecond)
				if ms <= slaMs {
					withinSLA.Add(1)
				}
				shard.mu.Lock()
				shard.lats = append(shard.lats, ms)
				shard.mu.Unlock()
			})
		}
	}
	// Grace period for stragglers; whatever is still pending counts as an
	// SLA miss but not an error.
	graceEnd := time.Now().Add(2 * o.SLA)
	for inflight.Load() > 0 && time.Now().Before(graceEnd) {
		time.Sleep(5 * time.Millisecond)
	}

	var lats []float64
	for i := range recs {
		recs[i].mu.Lock()
		lats = append(lats, recs[i].lats...)
		recs[i].mu.Unlock()
	}
	sr := StageResult{
		Conns:      len(conns),
		TargetRate: rate,
		Issued:     issued,
		OK:         okN.Load(),
		NotFound:   notFound.Load(),
		Errors:     errs.Load(),
		SLAMs:      slaMs,
		WithinSLA:  withinSLA.Load(),
	}
	return sr, lats
}

// finalizeStage fills the derived fields (quantiles, achieved rate, SLA
// fraction) from merged raw samples.
func finalizeStage(sr *StageResult, lats []float64, dur time.Duration) {
	if sr.Issued > 0 {
		sr.SLAFrac = float64(sr.WithinSLA) / float64(sr.Issued)
	}
	if len(lats) == 0 {
		return
	}
	sum := metrics.Summarize(lats)
	qs := metrics.Quantiles(lats, 0.5, 0.9, 0.99, 0.999)
	sr.MeanMs, sr.P50Ms, sr.P90Ms, sr.P99Ms, sr.P999Ms = sum.Mean, qs[0], qs[1], qs[2], qs[3]
	sr.AchievedRate = float64(len(lats)) / dur.Seconds()
}

// preload writes every key once through a small pooled client so the
// measured phase reads hit.
func preload(o Options) error {
	cl := wireclient.NewClient([]string{o.Addr}, wireclient.PoolConfig{Size: 4})
	defer cl.Close()
	val := []byte(strings.Repeat("x", o.ValueBytes))
	sem := make(chan struct{}, 64)
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	for i := 0; i < o.Keys; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := cl.Put(fmt.Sprintf("lh-%06d", i), val); err != nil {
				select {
				case errc <- fmt.Errorf("loadharness: preload key %d: %w", i, err):
				default:
				}
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// CompareOptions configure the closed-loop binary-vs-HTTP shoot-out at
// equal connection count.
type CompareOptions struct {
	BinAddr  string
	HTTPAddr string // host:port of the HTTP Front
	Conns    int    // per protocol (default 64)
	Duration time.Duration
	// Depth is the binary pipeline depth per connection (default 16);
	// HTTP/1.1 is inherently 1 in-flight per connection.
	Depth     int
	Keys      int
	WriteFrac float64
}

// CompareResult reports ops/s for both protocols over the same fleet.
type CompareResult struct {
	Conns         int     `json:"conns"`
	BinOpsPerSec  float64 `json:"bin_ops_per_sec"`
	HTTPOpsPerSec float64 `json:"http_ops_per_sec"`
	Speedup       float64 `json:"speedup"` // bin / http
	BinP99Ms      float64 `json:"bin_p99_ms"`
	HTTPP99Ms     float64 `json:"http_p99_ms"`
}

// CompareProtocols runs the closed-loop comparison: same fleet, same
// connection count, binary pipelined vs HTTP request-per-connection.
func CompareProtocols(o CompareOptions) (*CompareResult, error) {
	if o.Conns <= 0 {
		o.Conns = 64
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Depth <= 0 {
		o.Depth = 16
	}
	if o.Keys <= 0 {
		o.Keys = 4096
	}
	if _, err := RaiseFDLimit(uint64(o.Conns*4 + 4096)); err != nil {
		return nil, err
	}
	res := &CompareResult{Conns: o.Conns}

	binOps, binP99, err := runBinClosed(o)
	if err != nil {
		return nil, fmt.Errorf("loadharness: binary side: %w", err)
	}
	res.BinOpsPerSec, res.BinP99Ms = binOps, binP99

	httpOps, httpP99, err := runHTTPClosed(o)
	if err != nil {
		return nil, fmt.Errorf("loadharness: http side: %w", err)
	}
	res.HTTPOpsPerSec, res.HTTPP99Ms = httpOps, httpP99
	if httpOps > 0 {
		res.Speedup = binOps / httpOps
	}
	return res, nil
}

func runBinClosed(o CompareOptions) (opsPerSec, p99Ms float64, err error) {
	conns := make([]*wireclient.Conn, o.Conns)
	for i := range conns {
		c, err := wireclient.Dial(o.BinAddr, 10*time.Second, wireclient.ConnConfig{})
		if err != nil {
			for _, p := range conns[:i] {
				p.Close()
			}
			return 0, 0, err
		}
		conns[i] = c
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	var ops atomic.Uint64
	var errN atomic.Uint64
	recs := make([]latRec, latShards)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ci, c := range conns {
		// Each connection keeps Depth requests in flight: the callback
		// immediately issues the successor — closed-loop per slot.
		for d := 0; d < o.Depth; d++ {
			wg.Add(1)
			seed := int64(ci*o.Depth + d)
			go func(c *wireclient.Conn, shard *latRec, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					req := compareReq(rng, o)
					t0 := time.Now()
					resp, err := c.Call(&req)
					if err != nil {
						errN.Add(1)
						return // conn dead; slot retires
					}
					if resp.Status == wireclient.StatusErr || resp.Status == wireclient.StatusNotLeader {
						errN.Add(1)
						continue
					}
					ops.Add(1)
					ms := float64(time.Since(t0)) / float64(time.Millisecond)
					shard.mu.Lock()
					shard.lats = append(shard.lats, ms)
					shard.mu.Unlock()
				}
			}(c, &recs[(ci*o.Depth+d)%latShards], seed)
		}
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	return finishClosed(&ops, recs, o.Duration)
}

func runHTTPClosed(o CompareOptions) (opsPerSec, p99Ms float64, err error) {
	var ops atomic.Uint64
	recs := make([]latRec, latShards)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	base := "http://" + o.HTTPAddr
	for ci := 0; ci < o.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			// One transport per worker pins exactly one TCP connection —
			// the equal-connection-count ground rule.
			tr := &http.Transport{MaxIdleConnsPerHost: 1, MaxConnsPerHost: 1}
			client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
			defer tr.CloseIdleConnections()
			rng := rand.New(rand.NewSource(int64(ci)))
			shard := &recs[ci%latShards]
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("lh-%06d", rng.Intn(o.Keys))
				var (
					resp *http.Response
					err  error
				)
				t0 := time.Now()
				if rng.Float64() < o.WriteFrac {
					req, _ := http.NewRequest(http.MethodPut, base+"/kv/"+key, strings.NewReader("xxxxxxxx"))
					resp, err = client.Do(req)
				} else {
					resp, err = client.Get(base + "/kv/" + key)
				}
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for reuse
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					continue
				}
				ops.Add(1)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				shard.mu.Lock()
				shard.lats = append(shard.lats, ms)
				shard.mu.Unlock()
			}
		}(ci)
	}
	time.Sleep(o.Duration)
	close(stop)
	wg.Wait()
	return finishClosed(&ops, recs, o.Duration)
}

func compareReq(rng *rand.Rand, o CompareOptions) wireclient.Request {
	key := fmt.Sprintf("lh-%06d", rng.Intn(o.Keys))
	if rng.Float64() < o.WriteFrac {
		return wireclient.Request{Op: wireclient.OpPut, Key: key, Value: []byte("xxxxxxxx")}
	}
	return wireclient.Request{Op: wireclient.OpGet, Key: key}
}

func finishClosed(ops *atomic.Uint64, recs []latRec, d time.Duration) (float64, float64, error) {
	var lats []float64
	for i := range recs {
		recs[i].mu.Lock()
		lats = append(lats, recs[i].lats...)
		recs[i].mu.Unlock()
	}
	var p99 float64
	if len(lats) > 0 {
		p99 = metrics.Quantiles(lats, 0.99)[0]
	}
	return float64(ops.Load()) / d.Seconds(), p99, nil
}
