package main

import (
	"time"

	"dynatune/internal/raft"
)

// raftTuner aliases the tuner interface for the ablation variants.
type raftTuner = raft.Tuner

// newStatic builds a static tuner with the etcd h = Et/10 ratio.
func newStatic(et time.Duration) raftTuner {
	return raft.NewStaticTuner(et, et/10)
}
