package kv

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dynatune/internal/raft"
)

func TestSpanCodecRoundTrip(t *testing.T) {
	pairs := []Pair{
		{Key: "a", Value: []byte("1")},
		{Key: "b/long/key", Value: nil},
		{Key: "", Value: []byte{0xFF, 0x00}},
	}
	got, err := DecodeSpan(EncodeSpan(pairs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("len = %d", len(got))
	}
	for i, p := range pairs {
		if got[i].Key != p.Key || !bytes.Equal(got[i].Value, p.Value) && !(len(got[i].Value) == 0 && len(p.Value) == 0) {
			t.Fatalf("pair %d: %+v vs %+v", i, got[i], p)
		}
	}
	if _, err := DecodeSpan(nil); err == nil {
		t.Fatal("nil span decoded")
	}
	if _, err := DecodeSpan(append(EncodeSpan(pairs), 0x01)); err == nil {
		t.Fatal("trailing junk decoded")
	}
	if _, err := DecodeSpan(EncodeSpan(pairs)[:7]); err == nil {
		t.Fatal("truncated span decoded")
	}
}

func TestSpanExportFiltersAndChunks(t *testing.T) {
	s := NewStore()
	var ents []raft.Entry
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("k%02d", i)
		ents = append(ents, entry(uint64(i+1), Command{Op: OpPut, Client: 1, Seq: uint64(i + 1), Key: k, Value: []byte(strings.Repeat("v", 10))}))
	}
	s.Apply(ents)

	owned := func(k string) bool { return k >= "k05" && k < "k15" }
	chunks, keys := s.SpanExport(owned, 64)
	if len(keys) != 10 {
		t.Fatalf("keys = %d (%v)", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks under 64-byte cap, got %d", len(chunks))
	}
	for i, c := range chunks {
		if len(c) > 64 {
			t.Fatalf("chunk %d is %d bytes, exceeds cap", i, len(c))
		}
	}

	// Installing every chunk into a fresh store reproduces exactly the
	// owned span.
	dst := NewStore()
	idx := uint64(0)
	for _, c := range chunks {
		idx++
		dst.Apply([]raft.Entry{entry(idx, Command{Op: OpInstallSpan, Client: 3, Seq: idx, Value: c})})
	}
	if dst.Len() != 10 {
		t.Fatalf("dst len = %d", dst.Len())
	}
	for _, k := range keys {
		want, _ := s.Get(k)
		got, ok := dst.Get(k)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("key %q: got %q ok=%v", k, got, ok)
		}
	}
}

func TestSpanExportOversizePairGetsOwnChunk(t *testing.T) {
	s := NewStore()
	s.Apply([]raft.Entry{
		entry(1, Command{Op: OpPut, Client: 1, Seq: 1, Key: "big", Value: bytes.Repeat([]byte("x"), 500)}),
		entry(2, Command{Op: OpPut, Client: 1, Seq: 2, Key: "small", Value: []byte("y")}),
	})
	chunks, keys := s.SpanExport(func(string) bool { return true }, 64)
	if len(keys) != 2 || len(chunks) != 2 {
		t.Fatalf("chunks=%d keys=%d", len(chunks), len(keys))
	}
}

func TestSpanInstallIdempotent(t *testing.T) {
	s := NewStore()
	chunk := EncodeSpan([]Pair{{Key: "a", Value: []byte("1")}})
	c := Command{Op: OpInstallSpan, Client: 3, Seq: 1, Value: chunk}
	s.Apply([]raft.Entry{entry(1, c)})
	s.Apply([]raft.Entry{entry(2, c)}) // retried at a later index
	if s.Dupes() != 1 {
		t.Fatalf("dupes = %d", s.Dupes())
	}
	if v, _ := s.Get("a"); string(v) != "1" {
		t.Fatalf("a = %q", v)
	}
}

func TestSpanExportDeterministic(t *testing.T) {
	build := func() *Store {
		s := NewStore()
		var ents []raft.Entry
		for i := 0; i < 50; i++ {
			ents = append(ents, entry(uint64(i+1), Command{Op: OpPut, Client: 1, Seq: uint64(i + 1), Key: fmt.Sprintf("key-%03d", i*7%50), Value: SeqValue(uint64(i))}))
		}
		s.Apply(ents)
		return s
	}
	a, _ := build().SpanExport(func(string) bool { return true }, 128)
	b, _ := build().SpanExport(func(string) bool { return true }, 128)
	if len(a) != len(b) {
		t.Fatalf("chunk counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("chunk %d differs", i)
		}
	}
}
