package raft

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/sim"
)

// miniSM is a trivial state machine for snapshot tests: it remembers the
// highest applied index and a running checksum of entry payloads.
type miniSM struct {
	mu      sync.Mutex
	applied uint64
	sum     uint64
}

func (m *miniSM) apply(ents []Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range ents {
		if e.Index <= m.applied {
			continue
		}
		m.applied = e.Index
		for _, b := range e.Data {
			m.sum += uint64(b)
		}
	}
}

func (m *miniSM) snapshot() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := binary.BigEndian.AppendUint64(nil, m.applied)
	return binary.BigEndian.AppendUint64(buf, m.sum)
}

func (m *miniSM) restore(data []byte, index uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.applied = index
	m.sum = binary.BigEndian.Uint64(data[8:])
}

// newSnapshotCluster builds a cluster whose nodes support InstallSnapshot.
func newSnapshotCluster(opts clusterOpts) (*testCluster, []*miniSM) {
	c := &testCluster{eng: sim.NewEngine(opts.seed)}
	c.net = netsim.New[Message](c.eng, opts.n, netsim.Constant(opts.params), func(to int, m Message) {
		if to >= len(c.rts) {
			return // endpoint not joined yet (memberN < n)
		}
		rt := c.rts[to]
		if rt.down {
			return
		}
		rt.node.Step(m)
	})
	memberN := opts.memberN
	if memberN == 0 {
		memberN = opts.n
	}
	peers := make([]ID, memberN)
	for i := range peers {
		peers[i] = ID(i + 1)
	}
	sms := make([]*miniSM, memberN)
	for i := 0; i < memberN; i++ {
		rt := &testRuntime{
			eng:     c.eng,
			net:     c.net,
			id:      ID(i + 1),
			timers:  map[timerKey]sim.Handle{},
			hbClass: opts.hbClass,
		}
		sm := &miniSM{}
		sms[i] = sm
		node, err := NewNode(Config{
			ID:              ID(i + 1),
			Peers:           peers,
			Runtime:         rt,
			Tuner:           opts.tuners(i),
			Tracer:          recordTracer{c},
			Apply:           sm.apply,
			SnapshotData:    sm.snapshot,
			RestoreSnapshot: sm.restore,
		})
		if err != nil {
			panic(err)
		}
		rt.node = node
		c.rts = append(c.rts, rt)
		c.nodes = append(c.nodes, node)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c, sms
}

func TestSnapshotCatchUpAfterDeepCompaction(t *testing.T) {
	opts := defaultOpts()
	opts.n = 3
	c, sms := newSnapshotCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 100; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)
	// Compact far past the dead follower's position.
	lead.CompactLog(2)
	if lead.Log().FirstIndex() < 50 {
		t.Fatalf("compaction too shallow: first=%d", lead.Log().FirstIndex())
	}
	c.restart(follower.ID())
	c.run(5 * time.Second)
	// The follower must now hold the full state via snapshot + tail.
	if follower.Log().Committed() != lead.Log().Committed() {
		t.Fatalf("follower committed %d, leader %d", follower.Log().Committed(), lead.Log().Committed())
	}
	leadSM := sms[lead.ID()-1]
	folSM := sms[follower.ID()-1]
	if folSM.sum != leadSM.sum || folSM.applied != leadSM.applied {
		t.Fatalf("state machines diverged: follower (%d,%d) vs leader (%d,%d)",
			folSM.applied, folSM.sum, leadSM.applied, leadSM.sum)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotThenNewEntries(t *testing.T) {
	// After installing a snapshot the follower must continue replicating
	// normal entries from the snapshot point.
	opts := defaultOpts()
	opts.n = 3
	c, sms := newSnapshotCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	c.crash(follower.ID())
	for i := 0; i < 50; i++ {
		lead.Propose([]byte{1}) //nolint:errcheck // leader is established
	}
	c.run(time.Second)
	lead.CompactLog(0)
	c.restart(follower.ID())
	c.run(3 * time.Second)
	// Now new writes after the snapshot.
	for i := 0; i < 20; i++ {
		if _, err := lead.Propose([]byte{2}); err != nil {
			t.Fatal(err)
		}
	}
	c.run(2 * time.Second)
	if sms[follower.ID()-1].sum != sms[lead.ID()-1].sum {
		t.Fatalf("post-snapshot replication diverged: %d vs %d",
			sms[follower.ID()-1].sum, sms[lead.ID()-1].sum)
	}
}

func TestStaleSnapshotIgnored(t *testing.T) {
	// A snapshot older than the follower's commit point must be refused
	// without destroying state.
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.log.Append(1, []byte("a"), []byte("b"), []byte("c"))
	n.term = 1
	n.log.CommitTo(3)
	n.log.NextToApply()
	n.Step(Message{Type: MsgSnap, From: 2, To: 1, Term: 1, Index: 2, LogTerm: 1, Snap: []byte("old")})
	if n.log.Committed() != 3 || n.log.LastIndex() != 3 {
		t.Fatalf("stale snapshot damaged the log: committed=%d last=%d", n.log.Committed(), n.log.LastIndex())
	}
	resp, ok := rt.lastOfType(MsgAppResp)
	if !ok || resp.Index != 3 {
		t.Fatalf("stale snapshot response = %+v, %v", resp, ok)
	}
}

func TestSnapshotRestoreRebasesLog(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"))
	l.RestoreSnapshot(10, 4)
	if l.FirstIndex() != 10 || l.LastIndex() != 10 || l.Committed() != 10 || l.Applied() != 10 {
		t.Fatalf("log after restore: first=%d last=%d committed=%d applied=%d",
			l.FirstIndex(), l.LastIndex(), l.Committed(), l.Applied())
	}
	if term, ok := l.Term(10); !ok || term != 4 {
		t.Fatalf("sentinel term = %d, %v", term, ok)
	}
	// Appends continue from the snapshot point.
	if last := l.Append(5, []byte("c")); last != 11 {
		t.Fatalf("append after restore = %d", last)
	}
	if !l.MatchesPrev(10, 4) {
		t.Fatal("consistency check at snapshot point failed")
	}
}
