package main

import (
	"fmt"
	"os"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/shard"
	"dynatune/internal/workload"
)

// LogCurvePoint samples the worst live replica log across a deployment at
// one instant of virtual time.
type LogCurvePoint struct {
	AtMs    float64 `json:"at_ms"`
	Entries int     `json:"entries"`
	Bytes   uint64  `json:"bytes"`
}

// MigrationBench is one bulk-move measurement: the same scale-out
// (1 group → 2, fixed resident set) run in one of the two transfer modes.
type MigrationBench struct {
	Mode        string  `json:"mode"` // "snapshot-ship" | "key-stream"
	Keys        int     `json:"keys"`
	MovedKeys   int     `json:"moved_keys"`
	BulkChunks  int     `json:"bulk_chunks"`
	DrainRounds int     `json:"drain_rounds"`
	ProposeOps  int     `json:"propose_ops"`
	VirtualMs   float64 `json:"virtual_ms"`
	WallMs      float64 `json:"wall_ms"`
}

// CompactionCurve is the BENCH.json section for the snapshot/compaction
// subsystem: log growth with and without a retention policy under the
// same sustained load, plus the snapshot-ship vs key-stream migration
// comparison.
type CompactionCurve struct {
	Policy             []LogCurvePoint  `json:"policy"`
	Unbounded          []LogCurvePoint  `json:"unbounded"`
	PolicyPeakBytes    uint64           `json:"policy_peak_bytes"`
	UnboundedPeakBytes uint64           `json:"unbounded_peak_bytes"`
	Migrations         []MigrationBench `json:"migrations"`
}

// runLogCurve drives a fixed sustained load over a 2-group deployment and
// samples the worst replica log every 500ms of virtual time.
func runLogCurve(policy raft.SnapshotPolicy) []LogCurvePoint {
	s := shard.New(shard.Options{
		Groups: 2, NodesPerGroup: 3, Seed: 33,
		Variant: cluster.VariantRaft(), Profile: stable100(),
		Snapshot: policy,
	})
	ramp := workload.Ramp{StartRPS: 1200, StepRPS: 0, StepDuration: 2 * time.Second, Steps: 5}
	lg := shard.NewLoadGen(s, ramp, shard.LoadOptions{Keys: 2048})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		fmt.Fprintln(os.Stderr, "bench: compaction-curve deployment never elected leaders")
		os.Exit(1)
	}
	s.Run(time.Second)
	lg.Start()
	t0 := s.Now()
	var pts []LogCurvePoint
	for s.Now()-t0 < ramp.Duration() {
		s.Run(500 * time.Millisecond)
		e, b := s.MaxLogStats()
		pts = append(pts, LogCurvePoint{
			AtMs: float64(s.Now()-t0) / float64(time.Millisecond), Entries: e, Bytes: b,
		})
	}
	return pts
}

// runMigrationBench seeds `keys` keys into a 1-group deployment (via a
// direct snapshot restore, standing in for a long-lived resident set) and
// times the live scale-out to 2 groups.
func runMigrationBench(keys int, keyStream bool) MigrationBench {
	mode := "snapshot-ship"
	if keyStream {
		mode = "key-stream"
	}
	s := shard.New(shard.Options{
		Groups: 1, NodesPerGroup: 1, Seed: 97,
		Variant: cluster.VariantRaft(), Profile: stable100(),
		MigrateKeyStream: keyStream,
	})
	fix := kv.NewStore()
	ents := make([]raft.Entry, 0, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("bulk-%06d", i)
		ents = append(ents, raft.Entry{Index: uint64(i + 1), Type: raft.EntryNormal,
			Data: kv.Encode(kv.Command{Op: kv.OpPut, Client: 9, Seq: uint64(i + 1), Key: k, Value: []byte("v-" + k)})})
	}
	fix.Apply(ents)
	snap := fix.MarshalSnapshot()
	if err := s.Group(0).Store(1).RestoreSnapshot(snap, 0); err != nil {
		fmt.Fprintf(os.Stderr, "bench: compaction-curve seed: %v\n", err)
		os.Exit(1)
	}
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		fmt.Fprintln(os.Stderr, "bench: compaction-curve migration never elected a leader")
		os.Exit(1)
	}
	start := time.Now()
	if err := s.AddGroupLive(10 * time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "bench: compaction-curve migration: %v\n", err)
		os.Exit(1)
	}
	deadline := s.Now() + 20*time.Minute
	for s.Rebalancing() && s.Now() < deadline {
		s.Run(100 * time.Millisecond)
	}
	rb := s.Rebalances()
	if len(rb) != 1 || rb[0].Aborted {
		fmt.Fprintf(os.Stderr, "bench: compaction-curve %s migration did not complete\n", mode)
		os.Exit(1)
	}
	st := rb[0]
	return MigrationBench{
		Mode: mode, Keys: keys, MovedKeys: st.MovedKeys,
		BulkChunks: st.BulkChunks, DrainRounds: st.DrainRounds, ProposeOps: st.ProposeOps,
		VirtualMs: st.DoneMs - st.StartMs,
		WallMs:    float64(time.Since(start)) / float64(time.Millisecond),
	}
}

func peakBytes(pts []LogCurvePoint) uint64 {
	var peak uint64
	for _, p := range pts {
		if p.Bytes > peak {
			peak = p.Bytes
		}
	}
	return peak
}

// runCompactionCurve builds the compaction_curve BENCH.json section.
func runCompactionCurve() *CompactionCurve {
	cc := &CompactionCurve{
		Policy:    runLogCurve(raft.SnapshotPolicy{EveryEntries: 512, RetainEntries: 64}),
		Unbounded: runLogCurve(raft.SnapshotPolicy{}),
	}
	cc.PolicyPeakBytes = peakBytes(cc.Policy)
	cc.UnboundedPeakBytes = peakBytes(cc.Unbounded)
	fmt.Printf("  log growth over %d samples: policy peak %d B, unbounded peak %d B (%.1fx)\n",
		len(cc.Policy), cc.PolicyPeakBytes, cc.UnboundedPeakBytes,
		float64(cc.UnboundedPeakBytes)/float64(cc.PolicyPeakBytes))
	const migrKeys = 40_000
	for _, keyStream := range []bool{false, true} {
		mb := runMigrationBench(migrKeys, keyStream)
		cc.Migrations = append(cc.Migrations, mb)
		fmt.Printf("  migrate %d keys (%s): moved %d, %d propose ops, %d chunks, %d drain rounds, %.0f virtual ms, %.0f wall ms\n",
			mb.Keys, mb.Mode, mb.MovedKeys, mb.ProposeOps, mb.BulkChunks, mb.DrainRounds, mb.VirtualMs, mb.WallMs)
	}
	return cc
}
