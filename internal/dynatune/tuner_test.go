package dynatune

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dynatune/internal/raft"
)

func msd(d int) time.Duration { return time.Duration(d) * time.Millisecond }

func newTuner(t *testing.T, opts Options) *Tuner {
	t.Helper()
	tn, err := NewTuner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

// feed simulates min heartbeats arriving with the given RTT (constant) at
// the follower side, with consecutive sequence numbers.
func feed(tn *Tuner, n int, rtt time.Duration, startSeq uint64) uint64 {
	seq := startSeq
	for i := 0; i < n; i++ {
		seq++
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(rtt)}, 0)
	}
	return seq
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{SafetyFactor: -1},
		{ArrivalProbability: 1.5},
		{ArrivalProbability: -0.1},
		{MinListSize: 5, MaxListSize: 2},
		{FixK: -3},
	}
	for i, o := range bad {
		if _, err := NewTuner(o); err == nil {
			t.Errorf("options %d should fail", i)
		}
	}
	if _, err := NewTuner(Options{}); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Options{SafetyFactor: -1})
}

func TestDefaultsMatchPaper(t *testing.T) {
	tn := newTuner(t, Options{})
	o := tn.Options()
	if o.SafetyFactor != 2 || o.ArrivalProbability != 0.999 ||
		o.MinListSize != 10 || o.MaxListSize != 1000 ||
		o.FallbackEt != time.Second || o.FallbackH != 100*time.Millisecond {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestFallbackBeforeMinListSize(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 10})
	feed(tn, 9, msd(50), 0)
	if tn.Tuned() {
		t.Fatal("tuned with fewer than minListSize samples")
	}
	if tn.ElectionTimeout() != DefaultEt {
		t.Fatalf("Et = %v, want fallback", tn.ElectionTimeout())
	}
	// The 10th sample engages tuning.
	feed(tn, 1, msd(50), 9)
	if !tn.Tuned() {
		t.Fatal("not tuned at minListSize samples")
	}
}

func TestEtFormulaConstantRTT(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 10})
	feed(tn, 20, msd(100), 0)
	// σ ≈ 0 → Et ≈ µ = 100ms (floating-point residue allowed).
	if got := tn.ElectionTimeout(); got < msd(100) || got > msd(100)+time.Microsecond {
		t.Fatalf("Et = %v, want ≈100ms", got)
	}
	mu, sigma := tn.MeasuredRTT()
	if math.Abs(mu-0.1) > 1e-9 || sigma > 1e-6 {
		t.Fatalf("measured µ=%v σ=%v", mu, sigma)
	}
}

func TestEtFormulaWithSpread(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2, SafetyFactor: 2})
	// Alternate 90/110ms: µ=100ms, σ=10ms → Et = 120ms.
	seq := uint64(0)
	for i := 0; i < 50; i++ {
		rtt := msd(90)
		if i%2 == 1 {
			rtt = msd(110)
		}
		seq++
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(rtt)}, 0)
	}
	got := tn.ElectionTimeout()
	if got < msd(119) || got > msd(121) {
		t.Fatalf("Et = %v, want ≈120ms", got)
	}
}

func TestSafetyFactorScalesEt(t *testing.T) {
	for _, s := range []float64{1, 2, 4} {
		tn := newTuner(t, Options{MinListSize: 2, SafetyFactor: s})
		seq := uint64(0)
		for i := 0; i < 40; i++ {
			rtt := msd(90)
			if i%2 == 1 {
				rtt = msd(110)
			}
			seq++
			tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(rtt)}, 0)
		}
		want := 100 + s*10 // ms
		got := float64(tn.ElectionTimeout()) / float64(time.Millisecond)
		if math.Abs(got-want) > 1 {
			t.Fatalf("s=%v: Et = %vms, want %vms", s, got, want)
		}
	}
}

func TestMinEtFloor(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2, MinEt: msd(10)})
	feed(tn, 10, time.Millisecond, 0)
	if got := tn.ElectionTimeout(); got != msd(10) {
		t.Fatalf("Et = %v, want MinEt floor 10ms", got)
	}
}

func TestKFormulaZeroLoss(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 5})
	feed(tn, 20, msd(100), 0)
	// p=0 → K=1 → h=Et.
	if tn.TunedH() != tn.TunedEt() {
		t.Fatalf("h = %v, want Et %v at zero loss", tn.TunedH(), tn.TunedEt())
	}
}

func TestKFormulaUnderLoss(t *testing.T) {
	// Feed sequence numbers with every other one missing → p = 0.5 minus
	// window edge effects. K = ⌈log_0.5(0.001)⌉ = 10.
	tn := newTuner(t, Options{MinListSize: 5})
	for seq := uint64(1); seq <= 99; seq += 2 {
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(msd(100))}, 0)
	}
	p := tn.MeasuredLoss()
	if math.Abs(p-0.4949) > 0.01 {
		t.Fatalf("measured p = %v, want ≈0.49", p)
	}
	wantK := math.Ceil(math.Log(0.001) / math.Log(p))
	gotK := float64(tn.TunedEt()) / float64(tn.TunedH())
	if math.Abs(gotK-wantK) > 0.5 {
		t.Fatalf("K = %v, want %v", gotK, wantK)
	}
}

// Property: the paper's guarantee 1 − p^K ≥ x holds for every measured
// loss rate in (0,1) when the MinH floor is not binding.
func TestPropertyArrivalGuarantee(t *testing.T) {
	f := func(pRaw uint16) bool {
		p := float64(pRaw%999+1) / 1000 // (0.001 .. 0.999)
		tn := MustNew(Options{MinListSize: 2, MinH: time.Nanosecond})
		tn.tunedEt = time.Second
		k := tn.requiredK(p)
		if k < 1 {
			return false
		}
		return 1-math.Pow(p, float64(k)) >= tn.opts.ArrivalProbability-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: K is monotone non-decreasing in p (more loss → more
// heartbeats).
func TestPropertyKMonotoneInLoss(t *testing.T) {
	tn := MustNew(Options{MinH: time.Nanosecond})
	tn.tunedEt = time.Second
	prev := 0
	for p := 0.0; p < 1.0; p += 0.01 {
		k := tn.requiredK(p)
		if k < prev {
			t.Fatalf("K decreased at p=%v: %d after %d", p, k, prev)
		}
		prev = k
	}
}

func TestKTotalLossUsesMinHFloor(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2, MinH: msd(5)})
	tn.tunedEt = msd(100)
	if k := tn.requiredK(1.0); k != 20 {
		t.Fatalf("K at p=1 = %d, want Et/MinH = 20", k)
	}
}

func TestFixKMode(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 5, FixK: 10})
	feed(tn, 20, msd(200), 0)
	wantH := tn.TunedEt() / 10
	if tn.TunedH() != wantH {
		t.Fatalf("Fix-K h = %v, want Et/10 = %v", tn.TunedH(), wantH)
	}
	// Loss must not change K in Fix-K mode.
	for seq := uint64(100); seq <= 200; seq += 3 {
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(msd(200))}, 0)
	}
	if got := tn.TunedEt() / tn.TunedH(); got != 10 {
		t.Fatalf("Fix-K ratio = %d, want 10", got)
	}
}

func TestDuplicateAndReorderedHeartbeats(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2})
	// Deliver 1..10 out of order with duplicates; loss must read 0.
	for _, seq := range []uint64{2, 1, 4, 3, 3, 6, 5, 8, 7, 10, 9, 9, 2} {
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(msd(50))}, 0)
	}
	if p := tn.MeasuredLoss(); p != 0 {
		t.Fatalf("loss = %v with no gaps, want 0", p)
	}
}

func TestEchoTimePropagation(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2})
	resp := tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: 1, SendTime: 12345}, 0)
	if resp.EchoTime != 12345 {
		t.Fatalf("EchoTime = %d, want 12345", resp.EchoTime)
	}
	// Untuned follower piggybacks no interval.
	if resp.Interval != 0 {
		t.Fatalf("Interval = %d before tuning", resp.Interval)
	}
}

func TestLeaderSideRTTMeasurement(t *testing.T) {
	tn := newTuner(t, Options{})
	meta := tn.PrepareHeartbeat(2, 1*time.Second)
	if meta.Seq != 1 || meta.SendTime != int64(time.Second) || meta.RTT != 0 {
		t.Fatalf("first meta = %+v", meta)
	}
	// Response arrives 100ms later echoing our send time.
	tn.ObserveHeartbeatResp(2, raft.HeartbeatRespMeta{EchoTime: meta.SendTime}, 1100*time.Millisecond)
	meta2 := tn.PrepareHeartbeat(2, 2*time.Second)
	if meta2.Seq != 2 {
		t.Fatalf("seq = %d", meta2.Seq)
	}
	if time.Duration(meta2.RTT) != msd(100) {
		t.Fatalf("RTT in next beat = %v, want 100ms", time.Duration(meta2.RTT))
	}
}

func TestLeaderAppliesPiggybackedInterval(t *testing.T) {
	tn := newTuner(t, Options{})
	if got := tn.HeartbeatInterval(2); got != DefaultH {
		t.Fatalf("interval before tuning = %v", got)
	}
	tn.ObserveHeartbeatResp(2, raft.HeartbeatRespMeta{Interval: int64(msd(42))}, 0)
	if got := tn.HeartbeatInterval(2); got != msd(42) {
		t.Fatalf("interval = %v, want 42ms", got)
	}
	// Other peers unaffected.
	if got := tn.HeartbeatInterval(3); got != DefaultH {
		t.Fatalf("peer 3 interval = %v", got)
	}
	ivs := tn.LeaderIntervals()
	if len(ivs) != 1 || ivs[2] != msd(42) {
		t.Fatalf("LeaderIntervals = %v", ivs)
	}
}

func TestIntervalFloor(t *testing.T) {
	tn := newTuner(t, Options{MinH: msd(5)})
	tn.ObserveHeartbeatResp(2, raft.HeartbeatRespMeta{Interval: int64(time.Microsecond)}, 0)
	if got := tn.HeartbeatInterval(2); got != msd(5) {
		t.Fatalf("interval = %v, want MinH floor", got)
	}
}

func TestResetDiscardsEverything(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 5})
	feed(tn, 20, msd(100), 0)
	tn.ObserveHeartbeatResp(2, raft.HeartbeatRespMeta{Interval: int64(msd(42))}, 0)
	if !tn.Tuned() {
		t.Fatal("precondition: tuned")
	}
	tn.Reset(raft.ResetTimeout)
	if tn.Tuned() {
		t.Fatal("still tuned after reset")
	}
	if tn.ElectionTimeout() != DefaultEt {
		t.Fatalf("Et = %v after reset", tn.ElectionTimeout())
	}
	if tn.HeartbeatInterval(2) != DefaultH {
		t.Fatalf("h = %v after reset", tn.HeartbeatInterval(2))
	}
	if tn.SampleCount() != 0 || tn.MeasuredLoss() != 0 {
		t.Fatal("measurement state survived reset")
	}
	if tn.Resets() != 1 {
		t.Fatalf("Resets = %d", tn.Resets())
	}
}

func TestBareHeartbeatIgnored(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 1})
	resp := tn.ObserveHeartbeat(1, raft.HeartbeatMeta{}, 0)
	if resp != (raft.HeartbeatRespMeta{}) {
		t.Fatalf("resp to bare heartbeat = %+v", resp)
	}
	if tn.SampleCount() != 0 {
		t.Fatal("bare heartbeat recorded a sample")
	}
}

func TestNegativeRTTIgnoredOnLeader(t *testing.T) {
	tn := newTuner(t, Options{})
	// EchoTime in the future (clock anomaly) must not poison lastRTT.
	tn.ObserveHeartbeatResp(2, raft.HeartbeatRespMeta{EchoTime: int64(time.Hour)}, time.Second)
	meta := tn.PrepareHeartbeat(2, 2*time.Second)
	if meta.RTT != 0 {
		t.Fatalf("RTT = %v from negative measurement", meta.RTT)
	}
}

func TestMaxListSizeBoundsWindows(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 2, MaxListSize: 10})
	feed(tn, 100, msd(50), 0)
	if tn.SampleCount() != 10 {
		t.Fatalf("rtts window = %d, want 10", tn.SampleCount())
	}
	if tn.ids.Len() != 10 {
		t.Fatalf("ids window = %d, want 10", tn.ids.Len())
	}
	// Old RTT regime (50ms) fully evicted after 10 samples at 200ms.
	feed(tn, 10, msd(200), 100)
	mu, _ := tn.MeasuredRTT()
	if math.Abs(mu-0.2) > 1e-9 {
		t.Fatalf("µ = %v, want 0.2 after eviction", mu)
	}
}

func TestAdaptsToRTTIncrease(t *testing.T) {
	tn := newTuner(t, Options{MinListSize: 5, MaxListSize: 20})
	seq := feed(tn, 20, msd(50), 0)
	etLow := tn.ElectionTimeout()
	feed(tn, 20, msd(200), seq)
	etHigh := tn.ElectionTimeout()
	if etHigh <= etLow {
		t.Fatalf("Et did not grow with RTT: %v → %v", etLow, etHigh)
	}
	if etHigh < msd(195) {
		t.Fatalf("Et = %v, want ≈200ms after window turnover", etHigh)
	}
}

func TestIDWindow(t *testing.T) {
	w := newIDWindow(5)
	for _, id := range []uint64{5, 3, 9, 3, 7} {
		w.Add(id)
	}
	if w.Len() != 4 { // 3 deduplicated
		t.Fatalf("Len = %d", w.Len())
	}
	// Expected range 3..9 = 7, received 4 → p = 3/7.
	if p := w.LossRate(); math.Abs(p-3.0/7.0) > 1e-9 {
		t.Fatalf("p = %v", p)
	}
	// Overflow drops the smallest.
	w.Add(11)
	w.Add(13)
	if w.Len() != 5 {
		t.Fatalf("Len after overflow = %d", w.Len())
	}
	if w.ids[0] != 5 {
		t.Fatalf("oldest surviving id = %d, want 5", w.ids[0])
	}
	w.Reset()
	if w.Len() != 0 || w.LossRate() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: idWindow stays sorted and duplicate-free under arbitrary
// insertion orders.
func TestPropertyIDWindowSorted(t *testing.T) {
	f := func(ids []uint16) bool {
		w := newIDWindow(64)
		for _, id := range ids {
			w.Add(uint64(id) + 1)
		}
		for i := 1; i < len(w.ids); i++ {
			if w.ids[i] <= w.ids[i-1] {
				return false
			}
		}
		p := w.LossRate()
		return p >= 0 && p < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with zero measured loss, h always equals Et (K=1); with any
// loss, h divides Et into at least 2 beats.
func TestPropertyHDividesEt(t *testing.T) {
	f := func(gapRaw uint8) bool {
		gap := uint64(gapRaw%5) + 1 // stride between received seqs (1 = no loss)
		tn := MustNew(Options{MinListSize: 5})
		for seq := uint64(1); seq < 200; seq += gap {
			tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: seq, SendTime: 1, RTT: int64(msd(100))}, 0)
		}
		if !tn.Tuned() {
			return false
		}
		k := int(tn.TunedEt() / tn.TunedH())
		if gap == 1 {
			return k == 1
		}
		return k >= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
