package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over a fixed sample
// set, the form in which Figs. 4 and 8 present detection and OTS times.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, sorted).
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the smallest sample x with P(X ≤ x) ≥ p.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	idx := int(p*float64(len(c.sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var s float64
	for _, x := range c.sorted {
		s += x
	}
	return s / float64(len(c.sorted))
}

// Points returns up to n evenly spaced (x, P) points suitable for plotting
// the CDF curve, always including the first and last samples.
func (c *CDF) Points(n int) [](struct{ X, P float64 }) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([]struct{ X, P float64 }, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		out = append(out, struct{ X, P float64 }{
			X: c.sorted[idx],
			P: float64(idx+1) / float64(len(c.sorted)),
		})
	}
	return out
}

// Render returns a textual plot of the CDF series on a shared x-axis:
// a poor man's Fig. 4. Each series is sampled at `cols` x positions across
// [0, xmax]; rows are probability deciles.
func RenderCDFs(series map[string]*CDF, xmax float64, cols int) string {
	if cols <= 0 {
		cols = 60
	}
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		c := series[name]
		fmt.Fprintf(&b, "%-24s mean=%8.1f  p50=%8.1f  p90=%8.1f  p99=%8.1f  (n=%d)\n",
			name, c.Mean(), c.Inverse(0.50), c.Inverse(0.90), c.Inverse(0.99), c.N())
		b.WriteString("  ")
		for i := 0; i < cols; i++ {
			x := xmax * float64(i) / float64(cols-1)
			p := c.At(x)
			b.WriteByte(" .:-=+*#%@"[min(int(p*9.999), 9)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
