package scenario

import (
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// Negative tests for the invariant suite: each detector must trip when
// pointed at a deliberately-broken target, and a faithful target must
// trip nothing. No simulation in the loop — the fake target implements
// the probe surface directly.

type fakeStore struct {
	m     map[string]uint64 // key → value seq
	dupes uint64
}

func (s *fakeStore) Get(key string) ([]byte, bool) {
	seq, ok := s.m[key]
	if !ok {
		return nil, false
	}
	return kv.SeqValue(seq), true
}

func (s *fakeStore) SortedKeys() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	// Deterministic order, as the real store guarantees.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *fakeStore) Dupes() uint64 { return s.dupes }

// fakeTarget is an invariantTarget whose read path serves straight from
// acked: the per-test breakages override pieces of it.
type fakeTarget struct {
	leaderless bool
	stores     [][]StoreProbe // per group
	read       func(key string) (v []byte, found, servable bool)
}

func (t *fakeTarget) Groups() int { return len(t.stores) }

func (t *fakeTarget) GroupLeader(g int) raft.ID {
	if t.leaderless {
		return 0
	}
	return 1
}

func (t *fakeTarget) GroupStores(g int) []StoreProbe { return t.stores[g] }

func (t *fakeTarget) ProbeRead(key string) ([]byte, bool, bool) { return t.read(key) }

// faithful builds a one-group target whose reads serve exactly the acked
// sequences and whose two replicas agree.
func faithful(acked map[string]uint64) *fakeTarget {
	a := &fakeStore{m: acked}
	b := &fakeStore{m: acked}
	return &fakeTarget{
		stores: [][]StoreProbe{{a, b}},
		read: func(key string) ([]byte, bool, bool) {
			seq, ok := acked[key]
			if !ok {
				return nil, false, true
			}
			return kv.SeqValue(seq), true, true
		},
	}
}

func checkerOver(t *fakeTarget) (*invariantChecker, *sim.Engine) {
	eng := sim.NewEngine(1)
	cfg := Invariants{Every: Duration(100 * time.Millisecond), MaxUnavail: Duration(200 * time.Millisecond)}
	return newInvariantChecker(cfg, t, eng), eng
}

func hasViolation(rep *InvariantReport, invariant string) bool {
	for _, v := range rep.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// run drives a full checker lifecycle: acks, armed probes for a second of
// sim time, stop, report.
func runChecker(c *invariantChecker, eng *sim.Engine, acked map[string]uint64) *InvariantReport {
	for k, seq := range acked {
		c.onComplete(k, seq)
	}
	c.arm()
	eng.Run(eng.Now() + time.Second)
	c.stop()
	return c.report()
}

func ack3() map[string]uint64 {
	return map[string]uint64{"alpha": 3, "beta": 7, "gamma": 2}
}

func TestInvariantsCleanTargetTripsNothing(t *testing.T) {
	acked := ack3()
	c, eng := checkerOver(faithful(acked))
	rep := runChecker(c, eng, acked)
	if !rep.OK() {
		t.Fatalf("faithful target tripped invariants: %+v", rep.Violations)
	}
	if rep.AckedWrites != 3 {
		t.Fatalf("AckedWrites = %d, want 3", rep.AckedWrites)
	}
	if rep.Probes == 0 {
		t.Fatalf("armed checker issued no stale-read probes")
	}
	if len(rep.Checked) != len(invariantNames) {
		t.Fatalf("Checked = %v, want all of %v", rep.Checked, invariantNames)
	}
}

func TestInvariantDurabilityCatchesLostWrite(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	inner := tgt.read
	tgt.read = func(key string) ([]byte, bool, bool) {
		if key == "beta" {
			return nil, false, true // acked write vanished
		}
		return inner(key)
	}
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if !hasViolation(rep, "durability") {
		t.Fatalf("dropped acked write not caught: %+v", rep.Violations)
	}
}

func TestInvariantDurabilityCatchesStaleSurvivor(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	tgt.read = func(key string) ([]byte, bool, bool) {
		return kv.SeqValue(1), true, true // every key rolled back to seq 1
	}
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if !hasViolation(rep, "durability") {
		t.Fatalf("rolled-back survivor not caught: %+v", rep.Violations)
	}
}

func TestInvariantStaleReadCatchesOldValue(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	tgt.read = func(key string) ([]byte, bool, bool) {
		return kv.SeqValue(1), true, true
	}
	c, eng := checkerOver(tgt)
	// Persistent staleness must survive the confirm re-check and be
	// reported by the mid-run probes, not only the final sweep.
	for k, seq := range acked {
		c.onComplete(k, seq)
	}
	c.arm()
	eng.Run(eng.Now() + 2*time.Second)
	c.stop()
	rep := c.report()
	if !hasViolation(rep, "stale-read") {
		t.Fatalf("persistently stale reads not caught mid-run: %+v", rep.Violations)
	}
}

func TestInvariantStaleReadForgivesTransientApplyGap(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	inner := tgt.read
	healAt := 300 * time.Millisecond // shorter than confirmAfter
	var eng *sim.Engine
	tgt.read = func(key string) ([]byte, bool, bool) {
		if eng.Now() < healAt {
			return kv.SeqValue(1), true, true // briefly behind, then catches up
		}
		return inner(key)
	}
	c, e := checkerOver(tgt)
	eng = e
	rep := runChecker(c, eng, acked)
	if hasViolation(rep, "stale-read") {
		t.Fatalf("transient apply gap reported as staleness: %+v", rep.Violations)
	}
}

func TestInvariantDoubleApplyCatchesDupes(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	tgt.stores[0][1].(*fakeStore).dupes = 2
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if !hasViolation(rep, "double-apply") {
		t.Fatalf("duplicate applies not caught: %+v", rep.Violations)
	}
}

func TestInvariantConvergenceCatchesDivergedReplicas(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	diverged := map[string]uint64{"alpha": 3, "beta": 7, "gamma": 99}
	tgt.stores[0][1] = &fakeStore{m: diverged}
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if !hasViolation(rep, "convergence") {
		t.Fatalf("diverged replicas not caught: %+v", rep.Violations)
	}
}

func TestInvariantUnavailabilityCatchesLongOutage(t *testing.T) {
	acked := ack3()
	tgt := faithful(acked)
	tgt.leaderless = true // a full second leaderless against a 200ms bound
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if !hasViolation(rep, "unavailability") {
		t.Fatalf("leaderless span beyond the bound not caught: %+v", rep.Violations)
	}
	if rep.MaxUnavailMs < 500 {
		t.Fatalf("MaxUnavailMs = %.0f, want the bulk of the 1s run", rep.MaxUnavailMs)
	}
}

func TestInvariantViolationCapSuppresses(t *testing.T) {
	// 20 lost keys against a 16-violation cap: detail for 16, the rest
	// counted, OK still false.
	acked := map[string]uint64{}
	for i := 0; i < 20; i++ {
		acked[string(rune('a'+i))] = uint64(i + 1)
	}
	tgt := faithful(acked)
	tgt.read = func(key string) ([]byte, bool, bool) { return nil, false, true }
	c, eng := checkerOver(tgt)
	rep := runChecker(c, eng, acked)
	if rep.OK() {
		t.Fatalf("20 lost writes reported OK")
	}
	if len(rep.Violations) > maxViolations {
		t.Fatalf("violation detail uncapped: %d entries", len(rep.Violations))
	}
	if rep.Suppressed == 0 {
		t.Fatalf("overflow violations not counted as suppressed")
	}
}
