package cluster

import (
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/metrics"
	"dynatune/internal/raft"
	"dynatune/internal/workload"
)

// LoadGen drives an open-loop client population against the cluster's
// leader, reproducing §IV-B2: requests arrive on a ramp schedule
// regardless of completions; the generator batches arrivals into leader
// proposals every flush interval (etcd's Ready-loop batching) and
// measures per-request latency from arrival to commit-and-reply.
type LoadGen struct {
	c         *Cluster
	ramp      workload.Ramp
	gen       *workload.Generator
	clientRTT time.Duration // client↔leader round trip added to latency
	flushEach time.Duration

	// queue holds arrival times of requests accepted but not yet proposed
	// (waiting for the next flush or for a leader).
	queue []time.Duration
	// inflight maps log index → arrival time.
	inflight map[uint64]time.Duration

	// perStep aggregates completions by the ramp step of their arrival.
	perStep []stepAgg

	proposeErrors uint64
	seq           uint64
	base          time.Duration // virtual time of ramp t=0
}

type stepAgg struct {
	completed int
	latency   metrics.Welford
}

// NewLoadGen attaches a load generator to a not-yet-started cluster.
func NewLoadGen(c *Cluster, ramp workload.Ramp, clientRTT time.Duration) *LoadGen {
	g, err := workload.NewGenerator(ramp, c.eng.Rand())
	if err != nil {
		panic(err)
	}
	lg := &LoadGen{
		c:         c,
		ramp:      ramp,
		gen:       g,
		clientRTT: clientRTT,
		flushEach: time.Millisecond,
		inflight:  make(map[uint64]time.Duration),
		perStep:   make([]stepAgg, ramp.Steps),
	}
	c.onApply = lg.onApply
	return lg
}

// Start begins the flush loop at the current virtual time; the ramp's t=0
// is "now".
func (lg *LoadGen) Start() {
	base := lg.c.eng.Now()
	lg.base = base
	var tick func()
	tick = func() {
		lg.flush(base)
		if lg.c.eng.Now() < base+lg.ramp.Duration()+10*time.Second {
			lg.c.eng.After(lg.flushEach, tick)
		}
	}
	lg.c.eng.After(lg.flushEach, tick)
	// Compact logs periodically so multi-minute ramps stay in memory.
	var compact func()
	compact = func() {
		lg.c.CompactAll(4096)
		if lg.c.eng.Now() < base+lg.ramp.Duration()+10*time.Second {
			lg.c.eng.After(time.Second, compact)
		}
	}
	lg.c.eng.After(time.Second, compact)
}

// flush moves due arrivals into a leader proposal batch.
func (lg *LoadGen) flush(base time.Duration) {
	now := lg.c.eng.Now() - base
	for {
		at, ok := lg.gen.Next()
		if !ok || at > now {
			if ok {
				// Put the overshoot arrival back by buffering it: the
				// generator has no un-next, so track it in the queue with
				// its absolute time and stop pulling.
				lg.queue = append(lg.queue, at)
			}
			break
		}
		lg.queue = append(lg.queue, at)
	}
	// Partition queue into due and future arrivals.
	due := lg.queue[:0:0]
	rest := lg.queue[:0]
	for _, at := range lg.queue {
		if at <= now {
			due = append(due, at)
		} else {
			rest = append(rest, at)
		}
	}
	lg.queue = rest
	if len(due) == 0 {
		return
	}
	lead := lg.c.Leader()
	if lead == nil {
		// No leader: requests wait (client retries); put them back.
		lg.queue = append(due, lg.queue...)
		return
	}
	rt := lg.c.rts[lead.ID()-1]
	cost := lg.c.cost.ProposeBase + time.Duration(len(due))*lg.c.cost.ProposeEntry
	arrivals := append([]time.Duration(nil), due...)
	rt.proc.Exec(cost, func() {
		datas := make([][]byte, len(arrivals))
		for i := range arrivals {
			lg.seq++
			datas[i] = kv.Encode(kv.Command{Op: kv.OpPut, Client: 1, Seq: lg.seq, Key: "bench", Value: []byte("v")})
		}
		first, _, err := lead.ProposeBatch(datas)
		if err != nil {
			lg.proposeErrors += uint64(len(arrivals))
			return
		}
		for i, at := range arrivals {
			lg.inflight[first+uint64(i)] = at
		}
	})
}

// onApply observes applied entries; completions are measured on the node
// that proposed (the leader), whose apply instant is the commit point at
// which etcd answers the client.
func (lg *LoadGen) onApply(node raft.ID, ents []raft.Entry) {
	lead := lg.c.Leader()
	if lead == nil || lead.ID() != node {
		return
	}
	now := lg.c.eng.Now() - lg.base
	for _, e := range ents {
		at, ok := lg.inflight[e.Index]
		if !ok {
			continue
		}
		delete(lg.inflight, e.Index)
		// Bin by completion time: achieved throughput during a ramp level
		// is what the paper's "average throughput" measures, and it is
		// what saturates at the service capacity.
		step := lg.ramp.StepOf(now)
		if step < 0 || step >= len(lg.perStep) {
			continue
		}
		// Latency: client→leader half, queueing+commit, leader→client half.
		lat := (now - at) + lg.clientRTT
		lg.perStep[step].completed++
		lg.perStep[step].latency.Add(float64(lat) / float64(time.Millisecond))
	}
}

// StepResult is the aggregated outcome for one ramp step.
type StepResult struct {
	OfferedRPS   int
	ThroughputRS float64 // completed requests per second
	LatencyMs    float64 // mean latency
	Completed    int
}

// Results returns per-step aggregates. Call after the ramp (plus drain)
// has run.
func (lg *LoadGen) Results() []StepResult {
	out := make([]StepResult, len(lg.perStep))
	for i := range lg.perStep {
		rps, _ := lg.ramp.RPSAt(time.Duration(i)*lg.ramp.StepDuration + 1)
		out[i] = StepResult{
			OfferedRPS:   rps,
			ThroughputRS: float64(lg.perStep[i].completed) / lg.ramp.StepDuration.Seconds(),
			LatencyMs:    lg.perStep[i].latency.Mean(),
			Completed:    lg.perStep[i].completed,
		}
	}
	return out
}

// ProposeErrors returns how many requests failed to propose (no leader).
func (lg *LoadGen) ProposeErrors() uint64 { return lg.proposeErrors }

// Inflight returns the number of requests proposed but not yet committed.
func (lg *LoadGen) Inflight() int { return len(lg.inflight) }
