package server

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/transport"
)

// fastTuner keeps wall-clock tests quick: Et 150ms, h 15ms.
func fastTuner() raft.Tuner {
	return raft.NewStaticTuner(150*time.Millisecond, 15*time.Millisecond)
}

// fastDynatune keeps fallback parameters small so elections stay fast in
// wall-clock tests while still exercising measurement and retuning.
func fastDynatune() raft.Tuner {
	return dynatune.MustNew(dynatune.Options{
		FallbackEt:  200 * time.Millisecond,
		FallbackH:   20 * time.Millisecond,
		MinListSize: 5,
		MinEt:       20 * time.Millisecond,
		MinH:        2 * time.Millisecond,
	})
}

// startClusterStatic boots n servers with pre-allocated ports so the peer
// set is known at Start (the production path).
func startClusterStatic(t *testing.T, n int, mk func() raft.Tuner) []*Server {
	t.Helper()
	// Reserve ports by binding ephemeral listeners, then reuse them.
	addrs := make(map[raft.ID]transport.PeerAddr, n)
	for i := 0; i < n; i++ {
		tcp := reservePort(t, "tcp")
		udp := reservePort(t, "udp")
		addrs[raft.ID(i+1)] = transport.PeerAddr{TCP: tcp, UDP: udp}
	}
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		s, err := Start(Config{
			ID:         raft.ID(i + 1),
			Listen:     addrs[raft.ID(i+1)],
			HTTPListen: "127.0.0.1:0",
			Peers:      addrs,
			Tuner:      mk(),
		})
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = s
		t.Cleanup(s.Stop)
	}
	return srvs
}

func reservePort(t *testing.T, network string) string {
	t.Helper()
	switch network {
	case "tcp":
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	default:
		pc, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := pc.LocalAddr().String()
		pc.Close()
		return addr
	}
}

func waitLeader(t *testing.T, srvs []*Server, timeout time.Duration) *Server {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range srvs {
			if s.Status().State == "leader" {
				return s
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("no leader within timeout")
	return nil
}

func TestRealClusterElectsAndReplicates(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	if err := lead.Propose(kv.Command{Op: kv.OpPut, Key: "greeting", Value: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	// All nodes converge.
	deadline := time.Now().Add(5 * time.Second)
	for _, s := range srvs {
		for {
			if v, ok := s.Get("greeting"); ok && string(v) == "hello" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never applied the entry", s.cfg.ID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestProposeOnFollowerReturnsNotLeader(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	for _, s := range srvs {
		if s == lead {
			continue
		}
		err := s.Propose(kv.Command{Op: kv.OpPut, Key: "x", Value: []byte("y")})
		if err == nil {
			// Leadership may have moved to s; tolerate only that case.
			if s.Status().State != "leader" {
				t.Fatal("follower accepted a proposal")
			}
		}
	}
}

func TestHTTPAPI(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	base := "http://" + lead.HTTPAddr()

	req, _ := http.NewRequest(http.MethodPut, base+"/kv/color", strings.NewReader("blue"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	get, err := http.Get(base + "/kv/color")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if string(body) != "blue" {
		t.Fatalf("GET = %q", body)
	}

	st, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	stBody, _ := io.ReadAll(st.Body)
	st.Body.Close()
	if !strings.Contains(string(stBody), `"state":"leader"`) {
		t.Fatalf("status = %s", stBody)
	}

	// Missing key → 404.
	nf, _ := http.Get(base + "/kv/absent")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent = %d", nf.StatusCode)
	}

	// PUT on a follower → 421 with leader hint.
	var follower *Server
	for _, s := range srvs {
		if s != lead && s.Status().State == "follower" {
			follower = s
			break
		}
	}
	if follower != nil {
		req, _ = http.NewRequest(http.MethodPut, "http://"+follower.HTTPAddr()+"/kv/color", strings.NewReader("red"))
		fr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		fr.Body.Close()
		if fr.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("follower PUT = %d", fr.StatusCode)
		}
		if fr.Header.Get("X-Raft-Leader") == "" {
			t.Fatal("no leader hint header")
		}
	}
}

func TestLeaderFailoverRealTime(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	if err := lead.Propose(kv.Command{Op: kv.OpPut, Key: "k", Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	lead.Stop()
	survivors := make([]*Server, 0, 2)
	for _, s := range srvs {
		if s != lead {
			survivors = append(survivors, s)
		}
	}
	newLead := waitLeader(t, survivors, 10*time.Second)
	if err := newLead.Propose(kv.Command{Op: kv.OpPut, Key: "k", Value: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	if v, ok := newLead.Get("k"); !ok || string(v) != "v2" {
		t.Fatalf("k = %q, %v", v, ok)
	}
}

func TestDynatuneTunesOnRealNetwork(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastDynatune)
	lead := waitLeader(t, srvs, 10*time.Second)
	// Loopback RTT is ~0.05ms; after minListSize beats the followers'
	// tuned Et must collapse to the MinEt floor (20ms), far below the
	// 200ms fallback.
	deadline := time.Now().Add(8 * time.Second)
	for {
		tuned := 0
		for _, s := range srvs {
			if s == lead {
				continue
			}
			if st := s.Status(); st.EtMs < 100 && st.EtMs > 0 {
				tuned++
			}
		}
		if tuned >= 1 {
			return
		}
		if time.Now().After(deadline) {
			for _, s := range srvs {
				t.Logf("node %d: %+v", s.cfg.ID, s.Status())
			}
			t.Fatal("no follower tuned its Et on the real network")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestStatusFields(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	st := lead.Status()
	if st.Leader != st.ID || st.Term == 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.RandTOMs < st.EtMs || st.RandTOMs >= 2*st.EtMs+1 {
		t.Fatalf("randomized %v outside [Et, 2Et): Et=%v", st.RandTOMs, st.EtMs)
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Config{ID: 1}); err == nil {
		t.Fatal("expected error without tuner")
	}
	if _, err := Start(Config{ID: 1, Tuner: fastTuner(), HTTPListen: "300.0.0.1:0"}); err == nil {
		t.Fatal("expected error for invalid HTTP address")
	}
}

func TestProposeManyConcurrent(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	errs := make(chan error, 50)
	for g := 0; g < 5; g++ {
		g := g
		go func() {
			for i := 0; i < 10; i++ {
				errs <- lead.Propose(kv.Command{
					Op: kv.OpPut, Client: uint64(g + 1), Seq: uint64(i + 1),
					Key: fmt.Sprintf("k%d-%d", g, i), Value: []byte("v"),
				})
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if lead.Store().Applies() < 50 {
		t.Fatalf("applies = %d", lead.Store().Applies())
	}
}

func TestSnapshotOverRealNetwork(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	var follower *Server
	for _, s := range srvs {
		if s != lead {
			follower = s
			break
		}
	}
	// Take the follower's transport offline by pointing the leader at a
	// dead address... simpler: stop it entirely and restart is not
	// supported; instead exploit compaction: write enough that the
	// periodic CompactLog(1024) cannot trigger, so force compaction via
	// many writes is impractical here. Directly exercise the snapshot path
	// by writing, compacting through the loop, and verifying stores match.
	for i := 0; i < 50; i++ {
		if err := lead.Propose(kv.Command{Op: kv.OpPut, Client: 9, Seq: uint64(i + 1),
			Key: fmt.Sprintf("snap-%d", i), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := follower.Get("snap-49"); ok && string(v) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !follower.Store().Equal(lead.Store()) {
		t.Fatal("stores differ")
	}
}
