package dynatune

import (
	"testing"
	"time"

	"dynatune/internal/raft"
)

// BenchmarkObserveHeartbeat measures the follower-side per-heartbeat
// tuning work: id insertion, RTT window update, Et/K/h recomputation —
// the cost the paper's §IV-B2 throughput discussion worries about.
func BenchmarkObserveHeartbeat(b *testing.B) {
	tn := MustNew(Options{})
	rtt := int64(100 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: uint64(i + 1), SendTime: 1, RTT: rtt}, 0)
	}
}

// BenchmarkObserveHeartbeatLossy measures the same path with gaps in the
// sequence (sorted insertion exercised off the fast append path).
func BenchmarkObserveHeartbeatLossy(b *testing.B) {
	tn := MustNew(Options{})
	rtt := int64(100 * time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.ObserveHeartbeat(1, raft.HeartbeatMeta{Seq: uint64(i*3 + 1), SendTime: 1, RTT: rtt}, 0)
	}
}

// BenchmarkPrepareHeartbeat measures the leader-side stamp.
func BenchmarkPrepareHeartbeat(b *testing.B) {
	tn := MustNew(Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.PrepareHeartbeat(2, time.Duration(i))
	}
}
