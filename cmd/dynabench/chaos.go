package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dynatune/internal/chaos"
	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// chaosCmd is the storm-mode front end: sample `-storms` seeded fault
// schedules from a budget, run each on the sharded testbed with the
// invariant suite armed, shrink every failure to a minimal reproducer,
// and persist the reproducers under -out-dir. `-replay` instead runs one
// previously persisted schedule (or any scenario spec file) and, when it
// trips, shrinks and persists it — the triage loop for a failing storm.
// Exit status is non-zero when any invariant tripped.
func chaosCmd(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	budgetFile := fs.String("budget", "", "JSON fault budget (default: the built-in storm budget)")
	storms := fs.Int("storms", 20, "independent storms to sample and run")
	seed := fs.Int64("seed", 1, "campaign seed (storm i runs under StormSeed(seed, i))")
	workers := fs.Int("workers", 0, "parallel storm workers (0 = DYNATUNE_TRIAL_WORKERS/GOMAXPROCS)")
	outDir := fs.String("out-dir", "", "write shrunk reproducer specs into this directory")
	replay := fs.String("replay", "", "run this spec file instead of sampling storms")
	showBudget := fs.Bool("show-budget", false, "print the resolved budget as JSON and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dynabench chaos [-budget b.json] [-storms n] [-seed n] [-workers n] [-out-dir d] | -replay spec.json [-out-dir d]")
		fs.PrintDefaults()
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError

	budget := chaos.DefaultBudget()
	if *budgetFile != "" {
		data, err := os.ReadFile(*budgetFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &budget); err != nil {
			fmt.Fprintf(os.Stderr, "dynabench: %s: %v\n", *budgetFile, err)
			os.Exit(1)
		}
	}
	if *showBudget {
		data, _ := json.MarshalIndent(budget, "", "  ")
		fmt.Printf("%s\n", data)
		return
	}

	if *replay != "" {
		replaySpec(*replay, *workers, *outDir)
		return
	}

	start := time.Now()
	rep, err := chaos.RunStorms(budget, *storms, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	for _, v := range rep.Verdicts {
		if v.OK {
			line := fmt.Sprintf("storm %3d seed %19d: OK   %d faults", v.Storm, v.Seed, v.Faults)
			if r := v.Report; r != nil {
				line += fmt.Sprintf(" | %d acked, %d probes, max unavail %.0fms", r.AckedWrites, r.Probes, r.MaxUnavailMs)
			}
			fmt.Println(line)
			continue
		}
		fmt.Printf("storm %3d seed %19d: FAIL %d faults -> shrunk to %d (%d replays)\n",
			v.Storm, v.Seed, v.Faults, v.ShrunkFaults, v.ShrinkRuns)
		for _, viol := range v.Violations {
			fmt.Printf("    %s: %s\n", viol.Invariant, viol.Detail)
		}
		if *outDir != "" {
			path, err := chaos.WriteReproducer(*outDir, v)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dynabench:", err)
				os.Exit(1)
			}
			fmt.Printf("    reproducer: %s\n", path)
		}
	}
	fmt.Printf("chaos: %d storms, %d failed | wall time %.0f ms\n",
		rep.Storms, rep.Failures, float64(time.Since(start))/float64(time.Millisecond))
	if rep.Failures > 0 {
		os.Exit(1)
	}
}

// replaySpec runs one schedule file deterministically and, on an
// invariant trip, shrinks it and (with -out-dir) persists the minimal
// reproducer.
func replaySpec(path string, workers int, outDir string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	var spec scenario.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		fmt.Fprintf(os.Stderr, "dynabench: %s: %v\n", path, err)
		os.Exit(1)
	}
	res, err := bind.RunWorkers(spec, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	fmt.Print(bind.Summarize(res))
	vs := res.Violations()
	if len(vs) == 0 {
		fmt.Printf("chaos replay: %s holds all invariants\n", path)
		return
	}
	shrunk, shrunkVs, runs := chaos.Shrink(spec, 0)
	fmt.Printf("chaos replay: %d violation(s); shrunk %d -> %d fault(s) in %d replays\n",
		len(vs), len(spec.Faults), len(shrunk.Faults), runs)
	for _, viol := range shrunkVs {
		fmt.Printf("    still trips %s: %s\n", viol.Invariant, viol.Detail)
	}
	if outDir != "" {
		p, err := chaos.WriteReproducer(outDir, chaos.Verdict{Seed: spec.Seed, Reproducer: &shrunk})
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		fmt.Printf("    reproducer: %s\n", p)
	}
	os.Exit(1)
}
