package shard

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/workload"
)

// seedKeys writes n keys with per-key values through the synchronous
// client and returns them.
func seedKeys(t *testing.T, s *Cluster, n int) []string {
	t.Helper()
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("mk-%05d", i)
		if err := s.Put(keys[i], []byte("v-"+keys[i]), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// checkAll asserts every key reads back with its seeded value.
func checkAll(t *testing.T, s *Cluster, keys []string, when string) {
	t.Helper()
	for _, k := range keys {
		v, ok := s.Get(k)
		if !ok {
			t.Fatalf("%s: Get(%q) missed", when, k)
		}
		if string(v) != "v-"+k {
			t.Fatalf("%s: Get(%q) = %q, want %q", when, k, v, "v-"+k)
		}
	}
}

// runUntilMigrated drives the simulation until the live migration
// finishes, reading every key at each step so any window where a
// committed key is unreadable fails loudly.
func runUntilMigrated(t *testing.T, s *Cluster, keys []string) {
	t.Helper()
	deadline := s.Now() + 60*time.Second
	for s.Rebalancing() {
		if s.Now() >= deadline {
			t.Fatalf("migration did not finish within 60s (phase %d)", s.migr.phase)
		}
		s.Run(25 * time.Millisecond)
		checkAll(t, s, keys, "mid-migration")
	}
}

func TestAddGroupLiveMigratesItsShare(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 41, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 300)
	s.Run(time.Second) // let followers catch up

	if err := s.AddGroupLive(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Groups(); got != 4 {
		t.Fatalf("Groups() = %d after AddGroupLive, want 4", got)
	}
	if s.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", s.Epoch())
	}
	runUntilMigrated(t, s, keys)
	checkAll(t, s, keys, "post-migration")

	moves := s.Rebalances()
	if len(moves) != 1 {
		t.Fatalf("%d rebalances recorded, want 1", len(moves))
	}
	mv := moves[0]
	if mv.Kind != "add-group" || mv.Group != 3 || mv.Aborted {
		t.Fatalf("unexpected move record: %+v", mv)
	}
	if mv.TotalKeys != len(keys) {
		t.Fatalf("move saw %d resident keys, want %d", mv.TotalKeys, len(keys))
	}
	// Consistent hashing moves ≈1/(G+1) = 1/4 of the keyspace onto the
	// new group (wide bounds: 300 keys is a small sample).
	if mv.MovedFraction < 0.10 || mv.MovedFraction > 0.45 {
		t.Fatalf("moved fraction %.3f implausible for 3→4 groups (want ≈0.25)", mv.MovedFraction)
	}
	if mv.CutoverMs < mv.StartMs || mv.DoneMs < mv.CutoverMs || mv.DrainRounds < 1 {
		t.Fatalf("incoherent move timeline: %+v", mv)
	}

	// Serve state: every key lives in exactly the group that owns it —
	// the new group got its share, the sources were cleaned up, and no
	// write was lost or double-applied across the cutover.
	movedSeen := 0
	for _, k := range keys {
		owner := s.Router().Route(k)
		if owner == 3 {
			movedSeen++
		}
		for g := 0; g < s.Groups(); g++ {
			st, ok := s.leaderStore(GroupID(g))
			if !ok {
				t.Fatalf("group %d leaderless at verification", g)
			}
			_, has := st.Get(k)
			if has != (GroupID(g) == owner) {
				t.Fatalf("key %q present=%v in group %d (owner %d)", k, has, g, owner)
			}
		}
	}
	if movedSeen != mv.MovedKeys {
		t.Fatalf("router says %d keys moved, stats say %d", movedSeen, mv.MovedKeys)
	}
}

func TestRemoveGroupLiveDrainsToSurvivors(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 43, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 300)
	s.Run(time.Second)

	if err := s.RemoveGroupLive(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Groups(); got != 3 {
		t.Fatalf("Groups() = %d after RemoveGroupLive, want 3", got)
	}
	runUntilMigrated(t, s, keys)
	checkAll(t, s, keys, "post-migration")

	moves := s.Rebalances()
	if len(moves) != 1 || moves[0].Kind != "remove-group" || moves[0].Group != 3 {
		t.Fatalf("unexpected rebalance records: %+v", moves)
	}
	// The retired group's entire resident set moved: ≈1/4 of the keyspace.
	if f := moves[0].MovedFraction; f < 0.10 || f > 0.45 {
		t.Fatalf("moved fraction %.3f implausible for 4→3 groups (want ≈0.25)", f)
	}
	// Decommissioned: every node of the retired group is paused.
	for i := 1; i <= 3; i++ {
		if !s.Group(3).Paused(raft.ID(i)) {
			t.Fatalf("retired group node %d still running", i)
		}
	}
	// Survivors own everything.
	for _, k := range keys {
		if g := s.Router().Route(k); g == 3 {
			t.Fatalf("key %q still routes to the removed group", k)
		}
	}
}

// TestMultiGetNeverStaleDuringMigration is the dual-read regression: a
// moved key overwritten right after cutover must never read back as its
// pre-move value while the source's stale copy still awaits cleanup.
func TestMultiGetNeverStaleDuringMigration(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 47, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 200)
	s.Run(time.Second)
	if err := s.AddGroupLive(0); err != nil {
		t.Fatal(err)
	}

	// MultiGet must serve every committed key through the whole move
	// (fallback to the previous-epoch owner covers not-yet-copied keys).
	step := func() {
		s.Run(10 * time.Millisecond)
		got := s.MultiGet(keys...)
		if len(got) != len(keys) {
			t.Fatalf("MultiGet returned %d of %d keys mid-migration", len(got), len(keys))
		}
	}
	for s.Rebalancing() && s.migr.phase <= phaseDrain {
		step()
	}
	if !s.Rebalancing() {
		t.Fatal("migration finished before the cleanup window was observed")
	}

	// Cutover happened: the fence is down but stale source copies may
	// still exist. Overwrite every moved key and require MultiGet to
	// return the new value from here on.
	moved := []string{}
	for _, k := range keys {
		if s.Router().Route(k) == 3 {
			moved = append(moved, k)
		}
	}
	if len(moved) == 0 {
		t.Fatal("no keys moved to the new group")
	}
	// Regression: post-cutover the destination is authoritative. Overwrite
	// one moved key, then make the destination momentarily leaderless —
	// the resulting miss must stay a miss, not fall back to the stale
	// source copy still awaiting cleanup.
	k0 := moved[0]
	if err := s.Put(k0, []byte("new-"+k0), 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Rebalancing() { // cleanup pending → the stale source copy may still exist
		lead := s.Group(3).Leader()
		if lead == nil {
			t.Fatal("destination leaderless right after a successful Put")
		}
		s.Group(3).Pause(lead.ID())
		if v, ok := s.Get(k0); ok && string(v) == "v-"+k0 {
			t.Fatalf("leaderless destination served the stale pre-move value of %q", k0)
		}
		if got := s.MultiGet(k0); string(got[k0]) == "v-"+k0 {
			t.Fatalf("MultiGet served the stale pre-move value of %q", k0)
		}
		s.Group(3).Resume(lead.ID())
	}
	for _, k := range moved {
		if err := s.Put(k, []byte("new-"+k), 10*time.Second); err != nil {
			t.Fatal(err)
		}
		got := s.MultiGet(k)
		if string(got[k]) != "new-"+k {
			t.Fatalf("MultiGet(%q) = %q after post-cutover write, want %q (stale pre-move value?)", k, got[k], "new-"+k)
		}
	}
	for i := 0; i < 1000 && s.Rebalancing(); i++ {
		s.Run(25 * time.Millisecond)
		for _, k := range moved {
			got := s.MultiGet(k)
			if string(got[k]) != "new-"+k {
				t.Fatalf("MultiGet(%q) = %q during cleanup, want %q", k, got[k], "new-"+k)
			}
		}
	}
}

// TestPutWaitsOutTheFence: a synchronous write to a key mid-move blocks
// until cutover and then lands at the new owner — the mid-move write
// latency the rebalance scenarios measure.
func TestPutWaitsOutTheFence(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 53, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 100)
	s.Run(time.Second)
	if err := s.AddGroupLive(0); err != nil {
		t.Fatal(err)
	}
	// Find a key the move fences.
	var fenced string
	for _, k := range keys {
		if s.Fenced(k) {
			fenced = k
			break
		}
	}
	if fenced == "" {
		t.Fatal("no key fenced right after AddGroupLive")
	}
	before := s.Now()
	if err := s.Put(fenced, []byte("during"), 60*time.Second); err != nil {
		t.Fatalf("fenced Put failed: %v", err)
	}
	if s.Fenced(fenced) {
		t.Fatal("Put returned while the key was still fenced")
	}
	if waited := s.Now() - before; waited <= 0 {
		t.Fatalf("fenced Put waited %v, expected a positive mid-move delay", waited)
	}
	if v, ok := s.Get(fenced); !ok || string(v) != "during" {
		t.Fatalf("post-fence write lost: %q %v", v, ok)
	}
	// And it landed at the new owner, not the old one.
	owner := s.Router().Route(fenced)
	if owner != 3 {
		t.Fatalf("fenced key owner %d, want the new group 3", owner)
	}
}

// TestAddGroupAbortsOnDeadline: a new group that cannot elect a leader
// before the cutover deadline rolls the ring back and records an aborted
// move; the deployment keeps serving on the old topology.
func TestAddGroupAbortsOnDeadline(t *testing.T) {
	s := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 59, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 60)
	// 1ms deadline: the first migration tick (5ms) finds it expired long
	// before any election (~100ms+) can complete.
	if err := s.AddGroupLive(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := s.Now() + 10*time.Second
	for s.Rebalancing() && s.Now() < deadline {
		s.Run(5 * time.Millisecond)
	}
	moves := s.Rebalances()
	if len(moves) != 1 || !moves[0].Aborted {
		t.Fatalf("expected one aborted move, got %+v", moves)
	}
	if got := s.Groups(); got != 2 {
		t.Fatalf("Groups() = %d after abort, want 2 (ring rolled back)", got)
	}
	checkAll(t, s, keys, "post-abort")
	if err := s.Put("post-abort", []byte("ok"), 10*time.Second); err != nil {
		t.Fatalf("write after aborted move: %v", err)
	}
}

// TestScaleOutUnderLoadLosesNothing drives the keyed open-loop generator
// through a live scale-out: zero lost proposals, zero propose errors,
// nothing left pending, and mid-move completions recorded in the phase
// buckets.
func TestScaleOutUnderLoadLosesNothing(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 61, Profile: fastProfile()})
	ramp := workload.Ramp{StartRPS: 800, StepRPS: 0, StepDuration: time.Second, Steps: 6}
	lg := NewLoadGen(s, ramp, LoadOptions{Keys: 1024})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	s.Run(2 * time.Second)
	lg.Start()
	s.Run(2 * time.Second)
	if err := s.AddGroupLive(0); err != nil {
		t.Fatal(err)
	}
	s.Run(ramp.Duration() + 5*time.Second)
	for i := 0; i < 600 && s.Rebalancing(); i++ {
		s.Run(100 * time.Millisecond)
	}
	if s.Rebalancing() {
		t.Fatal("migration never converged under load")
	}
	if lg.TotalCompleted() == 0 {
		t.Fatal("no requests completed")
	}
	if lg.Lost() != 0 || lg.ProposeErrors() != 0 {
		t.Fatalf("scale-out lost writes: lost=%d proposeErrors=%d", lg.Lost(), lg.ProposeErrors())
	}
	if p := lg.Pending(); p != 0 {
		t.Fatalf("%d arrivals stranded after the move", p)
	}
	if lg.Inflight() != 0 {
		t.Fatalf("%d requests still in flight after drain", lg.Inflight())
	}
	pre, mid, post := lg.PhaseLatencies()
	if pre.Completed == 0 || post.Completed == 0 {
		t.Fatalf("phase buckets empty: pre=%d mid=%d post=%d", pre.Completed, mid.Completed, post.Completed)
	}
	if mid.Completed == 0 {
		t.Fatalf("no completions recorded during the move (did the migration run entirely between steps?)")
	}
	// The new group serves its share after the move.
	st, ok := s.leaderStore(3)
	if !ok {
		t.Fatal("new group leaderless after the move")
	}
	if st.Len() == 0 {
		t.Fatal("new group holds no keys after the move")
	}
	// Double-apply witness: the generator's idempotence table means a
	// replayed command is counted, not applied; across a clean scale-out
	// the client stream must not have produced any duplicates.
	for g := 0; g < s.Groups(); g++ {
		st, ok := s.leaderStore(GroupID(g))
		if !ok {
			t.Fatalf("group %d leaderless", g)
		}
		if d := st.Dupes(); d != 0 {
			t.Fatalf("group %d suppressed %d duplicate client commands", g, d)
		}
	}
}

// TestSeedZeroIsDistinct: seed 0 must be an explicit seed, not an alias
// of seed 1 (sweep campaigns derive unit seeds that can legitimately be
// small).
func TestSeedZeroIsDistinct(t *testing.T) {
	s0 := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 0, Profile: fastProfile()})
	s1 := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 1, Profile: fastProfile()})
	if a, b := s0.Engine().Rand().Int63(), s1.Engine().Rand().Int63(); a == b {
		t.Fatalf("seed 0 still aliases seed 1 (both drew %d)", a)
	}
}

// TestLatePreFlipCommitSurvivesCutover stages the barrier race: a client
// write accepted by the retiring group's leader just before the ring
// flips is still sitting in that leader's CPU queue (behind a ~0.5s
// backlog — long enough to outlast the drain's first convergence scans,
// short enough not to depose the leader) when the migration starts. The
// flip-time barrier queues behind it, so the drain must not cut over —
// and decommission must not discard the source copy — until the late
// write has applied and been streamed to its new owner.
func TestLatePreFlipCommitSurvivesCutover(t *testing.T) {
	s := New(Options{Groups: 2, NodesPerGroup: 3, Seed: 67, Profile: fastProfile(), Cost: inflatedCost()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 80)
	s.Run(time.Second)

	// A key the retiring group (1) owns; it moves to a survivor on flip.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("late-%05d", i)
		if s.Router().Route(k) == 1 {
			key = k
			break
		}
	}

	// Jam the retiring leader's processor with ~0.5s of propose work,
	// then queue the racing write behind it: without the barrier the
	// drain converges (and the group is decommissioned) well before the
	// write ever applies.
	backlog := make([][]byte, 1250)
	for i := range backlog {
		backlog[i] = kv.Encode(kv.Command{Op: kv.OpNoop, Client: 9, Seq: uint64(i + 1)})
	}
	if !s.Group(1).LeaderProposeBatch(backlog, func(_, _ uint64, _ error) {}) {
		t.Fatal("retiring group has no leader")
	}
	late := kv.Encode(kv.Command{Op: kv.OpPut, Client: 8, Seq: 1, Key: key, Value: []byte("late")})
	if !s.Group(1).LeaderProposeBatch([][]byte{late}, func(_, _ uint64, _ error) {}) {
		t.Fatal("retiring group has no leader for the late write")
	}
	if err := s.RemoveGroupLive(0); err != nil {
		t.Fatal(err)
	}
	runUntilMigrated(t, s, keys)

	if v, ok := s.Get(key); !ok || string(v) != "late" {
		t.Fatalf("late pre-flip commit lost across the cutover: %q %v", v, ok)
	}
	owner := s.Router().Route(key)
	if owner != 0 {
		t.Fatalf("late key owner %d, want the surviving group 0", owner)
	}
	st, ok := s.leaderStore(owner)
	if !ok {
		t.Fatal("surviving group leaderless")
	}
	if v, has := st.Get(key); !has || string(v) != "late" {
		t.Fatalf("late write never streamed to its new owner: %q %v", v, has)
	}
}

// TestRemoveGroupAbortsOnDeadline: a drain that cannot cut over by the
// deadline rolls the ring back — the retiring group keeps serving and no
// key is lost or left fenced.
func TestRemoveGroupAbortsOnDeadline(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 71, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 120)
	s.Run(time.Second)
	// 1ms deadline: the first drain tick (5ms) finds it expired before a
	// single convergence scan can complete the move.
	if err := s.RemoveGroupLive(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := s.Now() + 10*time.Second
	for s.Rebalancing() && s.Now() < deadline {
		s.Run(5 * time.Millisecond)
	}
	moves := s.Rebalances()
	if len(moves) != 1 || !moves[0].Aborted || moves[0].Kind != "remove-group" {
		t.Fatalf("expected one aborted remove, got %+v", moves)
	}
	if got := s.Groups(); got != 3 {
		t.Fatalf("Groups() = %d after abort, want 3 (ring restored)", got)
	}
	checkAll(t, s, keys, "post-abort")
	// The restored group still serves writes; nothing stays fenced.
	for _, k := range keys {
		if s.Fenced(k) {
			t.Fatalf("key %q still fenced after abort", k)
		}
	}
	var kept string
	for i := 0; ; i++ {
		k := fmt.Sprintf("kept-%04d", i)
		if s.Router().Route(k) == 2 {
			kept = k
			break
		}
	}
	if err := s.Put(kept, []byte("served"), 10*time.Second); err != nil {
		t.Fatalf("restored group rejected a write: %v", err)
	}
}

// TestAbortedRemoveStraysDoNotPoisonLaterAdd: an aborted remove leaves
// duplicate key copies at the survivors; when the key's value then
// changes and a later add-group moves it, the drain must stream only
// from the authoritative previous-epoch owner — competing sources would
// make the convergence scans oscillate between the two values forever.
func TestAbortedRemoveStraysDoNotPoisonLaterAdd(t *testing.T) {
	s := New(Options{Groups: 3, NodesPerGroup: 3, Seed: 73, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 300)
	s.Run(time.Second)

	// Start a remove and abort it mid-drain: long enough for the first
	// copy batches to land at the survivors, short of convergence.
	if err := s.RemoveGroupLive(18 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for s.Rebalancing() {
		s.Run(5 * time.Millisecond)
	}
	moves := s.Rebalances()
	if len(moves) != 1 || !moves[0].Aborted {
		t.Skipf("remove did not abort mid-drain with this timing (moves %+v); stray scenario not staged", moves)
	}
	// Let in-flight copy batches finish applying, then require real
	// strays: keys resident in more than one group.
	s.Run(time.Second)
	strays := 0
	for _, k := range keys {
		holders := 0
		for g := 0; g < s.Groups(); g++ {
			st, ok := s.leaderStore(GroupID(g))
			if !ok {
				t.Fatalf("group %d leaderless", g)
			}
			if _, has := st.Get(k); has {
				holders++
			}
		}
		if holders > 1 {
			strays++
		}
	}
	if strays == 0 {
		t.Skip("no duplicate copies survived the abort; stray scenario not staged")
	}

	// Overwrite every key at its (restored) owner: any stray copy at a
	// survivor is now stale.
	for _, k := range keys {
		if err := s.Put(k, []byte("v2-"+k), 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// A later scale-out must converge and serve only the new values.
	if err := s.AddGroupLive(0); err != nil {
		t.Fatal(err)
	}
	deadline := s.Now() + 60*time.Second
	for s.Rebalancing() {
		if s.Now() >= deadline {
			t.Fatalf("add-group drain never converged (stray-copy oscillation?), phase %d", s.migr.phase)
		}
		s.Run(25 * time.Millisecond)
	}
	adds := s.Rebalances()
	if got := adds[len(adds)-1]; got.Kind != "add-group" || got.Aborted {
		t.Fatalf("add-group did not complete: %+v", got)
	}
	for _, k := range keys {
		v, ok := s.Get(k)
		if !ok || string(v) != "v2-"+k {
			t.Fatalf("Get(%q) = %q, %v after the move; stale stray served?", k, v, ok)
		}
	}
}
