package sweep

import (
	"strings"
	"testing"
	"time"

	"dynatune/internal/scenario"
)

func baseSpec() scenario.Spec {
	return scenario.Spec{
		Name:     "grid-base",
		Measure:  scenario.MeasureFailover,
		Topology: scenario.Topology{N: 5},
		Network:  scenario.Stable(100 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft"},
		Faults:   []scenario.Fault{{Kind: scenario.FaultPauseLeader}},
		Trials:   4, Seed: 1, Settle: scenario.Duration(2 * time.Second),
	}
}

// TestCellsCrossProductOrder pins the expansion order the emitters and
// the baseline gate depend on: row-major, first axis slowest.
func TestCellsCrossProductOrder(t *testing.T) {
	c := Campaign{Base: baseSpec(), Axes: []Axis{
		{Name: "n", Values: []string{"3", "5"}},
		{Name: "loss", Values: []string{"0", "0.1"}},
	}}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"3", "0"}, {"3", "0.1"}, {"5", "0"}, {"5", "0.1"}}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i, cell := range cells {
		if strings.Join(cell.Values, ",") != strings.Join(want[i], ",") {
			t.Fatalf("cell %d is %v, want %v", i, cell.Values, want[i])
		}
	}
	// Axis values must be applied to the specs, not just recorded.
	if cells[0].Spec.Topology.N != 3 || cells[3].Spec.Topology.N != 5 {
		t.Fatalf("n axis not applied: %d / %d", cells[0].Spec.Topology.N, cells[3].Spec.Topology.N)
	}
	if l := cells[1].Spec.Network.Segments[0].Loss; l != 0.1 {
		t.Fatalf("loss axis not applied: %v", l)
	}
	if l := cells[2].Spec.Network.Segments[0].Loss; l != 0 {
		t.Fatalf("loss leaked across cells: %v", l)
	}
	// The base spec must be untouched by expansion.
	if b := c.Base; b.Topology.N != 5 || b.Network.Segments[0].Loss != 0 {
		t.Fatalf("expansion mutated the base: %+v", b.Topology)
	}
}

func TestCellsAxisValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		axes []Axis
	}{
		{"unknown axis", []Axis{{Name: "nope", Values: []string{"1"}}}},
		{"duplicate axis", []Axis{{Name: "n", Values: []string{"3"}}, {Name: "n", Values: []string{"5"}}}},
		{"no axes", nil},
		{"empty values", []Axis{{Name: "n", Values: nil}}},
		{"bad int", []Axis{{Name: "n", Values: []string{"three"}}}},
		{"negative loss", []Axis{{Name: "loss", Values: []string{"-0.1"}}}},
		{"loss of 1", []Axis{{Name: "loss", Values: []string{"1"}}}},
		{"bad rtt", []Axis{{Name: "rtt", Values: []string{"50"}}}},
		{"unknown variant", []Axis{{Name: "variant", Values: []string{"paxos"}}}},
		{"zero shards", []Axis{{Name: "shards", Values: []string{"0"}}}},
		{"scale beyond 1", []Axis{{Name: "scale", Values: []string{"2"}}}},
	} {
		if _, err := (Campaign{Base: baseSpec(), Axes: tc.axes}).Cells(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestCellsRejectsInvalidCellSpec pins that a grid point the engine
// cannot run fails the campaign at expansion, not mid-run: n=2 cannot
// hold a membership experiment, and a geo base rejects the rtt axis.
func TestCellsRejectsInvalidCellSpec(t *testing.T) {
	base := baseSpec()
	base.Measure = scenario.MeasureMembership
	base.Faults, base.Trials = nil, 0
	base.Membership = &scenario.MembershipProbe{Preload: 10}
	if _, err := (Campaign{Base: base, Axes: []Axis{{Name: "n", Values: []string{"5", "2"}}}}).Cells(); err == nil {
		t.Fatal("membership cell with n=2 accepted")
	}
	geo := baseSpec()
	geo.Topology.Regions = []string{"tokyo", "london", "california", "sydney", "sao-paulo"}
	if _, err := (Campaign{Base: geo, Axes: []Axis{{Name: "rtt", Values: []string{"50ms"}}}}).Cells(); err == nil {
		t.Fatal("rtt axis on a geo topology accepted")
	}
	// The n axis cannot re-place a geo topology's fixed region list…
	if _, err := (Campaign{Base: geo, Axes: []Axis{{Name: "n", Values: []string{"3"}}}}).Cells(); err == nil {
		t.Fatal("n axis mismatching the region count accepted")
	}
	// …and the shards axis cannot shard a measure only the single-group
	// testbed runs. Both used to panic inside a trial worker instead.
	if _, err := (Campaign{Base: baseSpec(), Axes: []Axis{{Name: "shards", Values: []string{"2"}}}}).Cells(); err == nil {
		t.Fatal("shards axis on a failover scenario accepted")
	}
	// A spec with no network section would run bind's default profile no
	// matter what loss/rtt value the cell is labelled with.
	bare := baseSpec()
	bare.Network = scenario.Net{}
	for _, ax := range []Axis{{Name: "loss", Values: []string{"0.1"}}, {Name: "rtt", Values: []string{"50ms"}}} {
		if _, err := (Campaign{Base: bare, Axes: []Axis{ax}}).Cells(); err == nil {
			t.Fatalf("%s axis on a segmentless network accepted", ax.Name)
		}
	}
}

// TestFaultAxis sweeps a scalar fault field across the grid and pins the
// aliasing contract: each cell mutates its own clone of the schedule,
// never the base's or a sibling's.
func TestFaultAxis(t *testing.T) {
	// Timed fault fields belong to series/throughput schedules, not
	// failover trials — sweep them on a series base.
	series := func() scenario.Spec {
		s := baseSpec()
		s.Measure, s.Trials = scenario.MeasureSeries, 0
		s.Horizon = scenario.Duration(10 * time.Second)
		s.Faults = []scenario.Fault{{Kind: scenario.FaultPauseLeader, At: scenario.Duration(time.Second)}}
		return s
	}
	c := Campaign{Base: series(), Axes: []Axis{
		{Name: "fault", Values: []string{"duration:500ms", "duration:2s"}},
	}}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if d := cells[0].Spec.Faults[0].Duration.D(); d != 500*time.Millisecond {
		t.Fatalf("cell 0 duration %v, want 500ms", d)
	}
	if d := cells[1].Spec.Faults[0].Duration.D(); d != 2*time.Second {
		t.Fatalf("cell 1 duration %v, want 2s", d)
	}
	if d := c.Base.Faults[0].Duration; d != 0 {
		t.Fatalf("fault axis mutated the base schedule: %v", d)
	}

	// The "<idx>." prefix picks a later fault.
	multi := series()
	multi.Faults = append(multi.Faults, scenario.Fault{Kind: scenario.FaultPauseLeader, At: scenario.Duration(2 * time.Second)})
	cells, err = (Campaign{Base: multi, Axes: []Axis{{Name: "fault", Values: []string{"1.duration:3s"}}}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	if d0, d1 := cells[0].Spec.Faults[0].Duration.D(), cells[0].Spec.Faults[1].Duration.D(); d0 != 0 || d1 != 3*time.Second {
		t.Fatalf("indexed override applied %v/%v, want 0/3s", d0, d1)
	}

	for _, tc := range []struct {
		name  string
		value string
	}{
		{"missing colon", "duration"},
		{"unknown field", "nope:1s"},
		{"index out of range", "7.duration:1s"},
		{"negative duration", "duration:-1s"},
		{"loss of 1", "loss:1"},
		{"loss not a number", "loss:lots"},
	} {
		if _, err := (Campaign{Base: series(), Axes: []Axis{{Name: "fault", Values: []string{tc.value}}}}).Cells(); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	bare := series()
	bare.Faults = nil
	if _, err := (Campaign{Base: bare, Axes: []Axis{{Name: "fault", Values: []string{"duration:1s"}}}}).Cells(); err == nil {
		t.Error("fault axis on a faultless base accepted")
	}
}

// TestVariantAxisDelegatesToBind: the axis must accept exactly what bind
// accepts — including display spellings — instead of keeping a second
// name list.
func TestVariantAxisDelegatesToBind(t *testing.T) {
	cells, err := (Campaign{Base: baseSpec(), Axes: []Axis{{Name: "variant", Values: []string{"Raft", "Dynatune"}}}}).Cells()
	if err != nil {
		t.Fatalf("display spellings rejected: %v", err)
	}
	if cells[0].Spec.Variant.Name != "Raft" {
		t.Fatalf("variant not applied: %+v", cells[0].Spec.Variant)
	}
}

func TestCellsMaxCellsGuard(t *testing.T) {
	c := Campaign{Base: baseSpec(), Axes: []Axis{
		{Name: "n", Values: []string{"3", "5", "7"}},
		{Name: "loss", Values: []string{"0", "0.1", "0.2"}},
	}, MaxCells: 8}
	if _, err := c.Cells(); err == nil || !strings.Contains(err.Error(), "max-cells") {
		t.Fatalf("9 cells passed a max of 8: %v", err)
	}
	c.MaxCells = 9
	if _, err := c.Cells(); err != nil {
		t.Fatalf("9 cells rejected at max 9: %v", err)
	}
}

func TestParseAxis(t *testing.T) {
	ax, err := ParseAxis("n=3,5")
	if err != nil || ax.Name != "n" || len(ax.Values) != 2 {
		t.Fatalf("ParseAxis: %+v, %v", ax, err)
	}
	for _, bad := range []string{"n", "=3", "n=", "n=3,,5"} {
		if _, err := ParseAxis(bad); err == nil {
			t.Errorf("ParseAxis(%q) accepted", bad)
		}
	}
}

// TestUnitSeedProperties: unit seeds must depend only on coordinates, be
// distinct across neighbouring units, and never collapse to zero.
func TestUnitSeedProperties(t *testing.T) {
	seen := map[int64]bool{}
	for cell := 0; cell < 8; cell++ {
		for rep := 0; rep < 4; rep++ {
			s := UnitSeed(42, cell, rep)
			if s <= 0 {
				t.Fatalf("seed(%d,%d) = %d", cell, rep, s)
			}
			if seen[s] {
				t.Fatalf("seed collision at (%d,%d)", cell, rep)
			}
			seen[s] = true
			if s != UnitSeed(42, cell, rep) {
				t.Fatal("UnitSeed not a pure function")
			}
		}
	}
}

// TestScaleAxisShrinksTrials: the scale axis applies scenario.Scale per
// cell, so one campaign can sweep cost itself.
func TestScaleAxisShrinksTrials(t *testing.T) {
	base := baseSpec()
	base.Trials = 100
	cells, err := (Campaign{Base: base, Axes: []Axis{{Name: "scale", Values: []string{"1", "0.1"}}}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Spec.Trials != 100 || cells[1].Spec.Trials != 10 {
		t.Fatalf("trials: %d / %d", cells[0].Spec.Trials, cells[1].Spec.Trials)
	}
}

// TestShardsAxisSetsNodesPerGroup pins that sweeping shard counts keeps
// the base's per-group size.
func TestShardsAxisSetsNodesPerGroup(t *testing.T) {
	base := scenario.Spec{
		Name:     "shard-base",
		Measure:  scenario.MeasureThroughput,
		Topology: scenario.Topology{N: 3},
		Network:  scenario.Stable(20 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft"},
		Workload: &scenario.Workload{StartRPS: 100, StepRPS: 0,
			StepDuration: scenario.Duration(time.Second), Steps: 1, Keys: 64},
		Seed: 1,
	}
	cells, err := (Campaign{Base: base, Axes: []Axis{{Name: "shards", Values: []string{"1", "4"}}}}).Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 4} {
		if g := cells[i].Spec.Topology.Groups; g != want {
			t.Fatalf("cell %d groups = %d, want %d", i, g, want)
		}
		if npg := cells[i].Spec.Topology.NodesPerGroup; npg != 3 {
			t.Fatalf("cell %d nodes/group = %d, want 3", i, npg)
		}
	}
}

func shardedBaseSpec() scenario.Spec {
	return scenario.Spec{
		Name:     "sharded-base",
		Measure:  scenario.MeasureThroughput,
		Topology: scenario.Topology{N: 3, Groups: 3, NodesPerGroup: 3},
		Network:  scenario.Stable(80 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft"},
		Workload: &scenario.Workload{StartRPS: 500, StepRPS: 0,
			StepDuration: scenario.Duration(10 * time.Second), Steps: 4, Keys: 512},
		Reps: 1, Seed: 1,
	}
}

func TestJitterAxis(t *testing.T) {
	c := Campaign{Base: baseSpec(), Axes: []Axis{{Name: "jitter", Values: []string{"1ms", "8ms"}}}}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if j := cells[1].Spec.Network.Segments[0].Jitter.D(); j != 8*time.Millisecond {
		t.Fatalf("jitter axis not applied: %v", j)
	}
	if j := cells[0].Spec.Network.Segments[0].Jitter.D(); j != time.Millisecond {
		t.Fatalf("jitter leaked across cells: %v", j)
	}
	// Geo topologies take jitter from the matrix: reject.
	geo := baseSpec()
	geo.Topology.Regions = []string{"tokyo", "london", "california", "sydney", "sao-paulo"}
	geo.Network = scenario.Net{}
	if _, err := (Campaign{Base: geo, Axes: []Axis{{Name: "jitter", Values: []string{"1ms"}}}}).Cells(); err == nil {
		t.Fatal("jitter axis accepted a geo topology")
	}
}

func TestZipfAxis(t *testing.T) {
	c := Campaign{Base: shardedBaseSpec(), Axes: []Axis{{Name: "zipf", Values: []string{"0", "1.2", "2"}}}}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 1.2, 2} {
		if z := cells[i].Spec.Workload.Zipf; z != want {
			t.Fatalf("cell %d zipf %v, want %v", i, z, want)
		}
	}
	// Exponents in (0, 1] are invalid for the sampler; the axis must say
	// so at expansion, not panic inside a worker.
	if _, err := (Campaign{Base: shardedBaseSpec(), Axes: []Axis{{Name: "zipf", Values: []string{"0.9"}}}}).Cells(); err == nil {
		t.Fatal("zipf axis accepted an exponent in (0, 1]")
	}
	// The keyed sampler exists only in the sharded generator.
	single := baseSpec()
	if _, err := (Campaign{Base: single, Axes: []Axis{{Name: "zipf", Values: []string{"1.5"}}}}).Cells(); err == nil {
		t.Fatal("zipf axis accepted a non-sharded base")
	}
}

func TestGroupsDeltaAxis(t *testing.T) {
	c := Campaign{Base: shardedBaseSpec(), Axes: []Axis{{Name: "groups-delta", Values: []string{"+1", "-1"}}}}
	cells, err := c.Cells()
	if err != nil {
		t.Fatal(err)
	}
	add := cells[0].Spec.Faults
	if len(add) != 1 || add[0].Kind != scenario.FaultAddGroup {
		t.Fatalf("+1 cell faults: %+v", add)
	}
	// Mid-ramp: the 40s ramp's midpoint.
	if at := add[0].At.D(); at != 20*time.Second {
		t.Fatalf("+1 fires at %v, want mid-ramp 20s", at)
	}
	rm := cells[1].Spec.Faults
	if len(rm) != 1 || rm[0].Kind != scenario.FaultRemoveGroup {
		t.Fatalf("-1 cell faults: %+v", rm)
	}
	// A delta that would shrink below one group fails cell validation.
	if _, err := (Campaign{Base: shardedBaseSpec(), Axes: []Axis{{Name: "groups-delta", Values: []string{"-3"}}}}).Cells(); err == nil {
		t.Fatal("groups-delta accepted shrinking below one group")
	}
	// Non-sharded bases have no group lifecycle.
	if _, err := (Campaign{Base: baseSpec(), Axes: []Axis{{Name: "groups-delta", Values: []string{"+1"}}}}).Cells(); err == nil {
		t.Fatal("groups-delta accepted a non-sharded base")
	}
	// The rebalancing cells carry the move's metric columns.
	mset, err := metricSet(cells[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, d := range mset {
		names[d.name] = true
	}
	if !names["moved_frac"] || !names["mid_move_p99_ms"] || !names["moves_done"] {
		t.Fatalf("rebalance metrics missing from the sharded set: %v", names)
	}
}

// TestGroupsDeltaMovedFracOverSharedMesh actually executes a -1 cell —
// a live remove-group rebalance whose traffic rides the consolidated
// shared mesh — and sanity-checks the reported moved_frac: shrinking
// 3 groups to 2 must move roughly a third of the keyspace, and exactly
// one move must complete.
func TestGroupsDeltaMovedFracOverSharedMesh(t *testing.T) {
	base := shardedBaseSpec()
	base.Workload = &scenario.Workload{StartRPS: 300, StepRPS: 0,
		StepDuration: scenario.Duration(5 * time.Second), Steps: 2, Keys: 256}
	rep, err := Run(Campaign{
		Base: base,
		Axes: []Axis{{Name: "groups-delta", Values: []string{"-1"}}},
		Reps: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("rows: %d", len(rep.Rows))
	}
	got := map[string]MetricSummary{}
	for _, m := range rep.Rows[0].Metrics {
		got[m.Name] = m
	}
	if d := got["moves_done"]; d.Mean != 1 {
		t.Fatalf("moves_done = %v, want exactly 1", d.Mean)
	}
	if f := got["moved_frac"]; f.Mean < 0.15 || f.Mean > 0.55 {
		t.Fatalf("moved_frac = %v over shared mesh, implausible for 3->2 groups (want ~0.33)", f.Mean)
	}
	if p := got["mid_move_p99_ms"]; p.Mean <= 0 {
		t.Fatalf("mid_move_p99_ms = %v, want positive while keys fence", p.Mean)
	}
}
