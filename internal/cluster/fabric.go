package cluster

import (
	"fmt"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// Fabric is the multi-Raft node consolidation layer: G groups co-located
// on the same N simulated nodes share one physical transport and one
// timer driver per node instead of duplicating both per group.
//
//   - One netsim mesh for the whole deployment. Each directed node pair
//     has a single link (profile, TCP ordering floor, fault state), so a
//     partition or degrade cuts the physical path once and every group
//     riding it is affected — and the mesh holds N² links instead of G·N².
//   - One scheduled engine event per node per tick-class. Group timers
//     register in a per-node consolidated table; the earliest deadline
//     arms the node's tick, which dispatches every due (group, peer)
//     timer in deterministic order. Deadlines snap to a coarse grid
//     (heartbeats to HeartbeatTick, elections to ElectionTick) so
//     co-located groups phase-lock: G groups heartbeating at the same
//     interval collapse to a few grid phases rather than G scattered
//     wakeups.
//   - Per-node-pair message batching. Messages bound for the same peer
//     node within BatchWindow ship as one netsim.Envelope of per-group
//     payloads and are unbatched on arrival (each payload still pays the
//     receiver's per-message CPU cost).
//
// A Fabric is installed via Options.Fabric; single-group clusters built
// without one keep their private mesh and per-timer engine events, so
// the classic testbed's behavior (and its goldens) is untouched.
type Fabric struct {
	eng  *sim.Engine
	n    int
	opts FabricOptions

	net *netsim.Network[netsim.Envelope[raft.Message]]

	// members indexes attached groups by their attach UID. Entries are
	// never removed or reused: a decommissioned group stays in the table
	// so envelopes still in flight land on its paused runtimes (and die
	// there) instead of leaking into a slot-reusing successor.
	members []*Cluster

	nodes []*fabricNode

	// logical counts raft messages submitted by senders — what the wire
	// would have carried one-per-message without envelope batching.
	logical uint64

	// pool recycles envelope payload slices. The engine is single-threaded,
	// so a plain freelist suffices; only TCP envelopes come back (see
	// Envelope.Recycle), everything else is left to the GC.
	pool [][]netsim.GroupMsg[raft.Message]
}

func (f *Fabric) getMsgs() []netsim.GroupMsg[raft.Message] {
	if n := len(f.pool); n > 0 {
		s := f.pool[n-1]
		f.pool = f.pool[:n-1]
		return s[:0]
	}
	return nil
}

func (f *Fabric) putMsgs(s []netsim.GroupMsg[raft.Message]) {
	if cap(s) == 0 {
		return
	}
	f.pool = append(f.pool, s)
}

// FabricOptions tune the consolidation. Zero values take the defaults;
// negative values disable the corresponding mechanism (no quantization /
// no batching delay beyond same-instant coalescing).
type FabricOptions struct {
	// ElectionTick is the election-timer grid. Deadlines round up (an
	// election timer must never fire early), so the grid only needs to be
	// small against the 1000–2000 ms randomized timeouts it snaps.
	ElectionTick time.Duration
	// HeartbeatTick is the heartbeat-timer grid: with the default grid
	// equal to the baseline h=100 ms, every group heartbeating at the
	// default cadence collapses onto a single shared phase, so one tick
	// per node drives all of them and their wire traffic batches into
	// one envelope per peer. The grid adapts downward per timer — it
	// halves until one step is at most a quarter of the timer's lead
	// time — because a Dynatune-tuned interval can sit far below the
	// baseline, and parking a tuned ~25 ms heartbeat on a 100 ms grid
	// would starve the followers' equally-tuned failure detectors and
	// churn elections. Groups with similar tuned cadences still share
	// the finer slots.
	HeartbeatTick time.Duration
	// BatchWindow is how long an outgoing per-(peer, class) batch
	// accumulates before it ships as one envelope.
	BatchWindow time.Duration
}

// Fabric defaults: the heartbeat grid equals the baseline h=100 ms (one
// shared phase for every default-tuned group), the election grid is small
// against the 1000–2000 ms randomized timeouts, and the batch window is
// two loadgen flush periods — invisible against a WAN RTT, and it folds
// a request's whole per-group fan-out into one envelope per peer.
const (
	DefaultElectionTick  = 5 * time.Millisecond
	DefaultHeartbeatTick = BaselineH
	DefaultBatchWindow   = 2 * time.Millisecond
)

func (o FabricOptions) withDefaults() FabricOptions {
	if o.ElectionTick == 0 {
		o.ElectionTick = DefaultElectionTick
	}
	if o.HeartbeatTick == 0 {
		o.HeartbeatTick = DefaultHeartbeatTick
	}
	if o.BatchWindow == 0 {
		o.BatchWindow = DefaultBatchWindow
	}
	return o
}

// NewFabric builds the shared transport for a deployment of n physical
// nodes. Every directed link follows profile (nil Segments take the
// testbed's default constant profile). Groups attach via Options.Fabric.
func NewFabric(eng *sim.Engine, n int, profile netsim.Profile, opts FabricOptions) *Fabric {
	if profile.Segments == nil {
		profile = netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond})
	}
	f := &Fabric{eng: eng, n: n, opts: opts.withDefaults()}
	f.net = netsim.New[netsim.Envelope[raft.Message]](eng, n, profile, f.deliverEnvelope)
	f.nodes = make([]*fabricNode, n)
	for i := 0; i < n; i++ {
		nd := &fabricNode{
			f:       f,
			id:      i,
			stride:  2 * (n + 1),
			batches: make([]outBatch, n*2),
		}
		nd.flushFn = nd.flush
		nd.fireFns[raft.TimerElection] = func() { nd.fire(raft.TimerElection) }
		nd.fireFns[raft.TimerHeartbeat] = func() { nd.fire(raft.TimerHeartbeat) }
		f.nodes[i] = nd
	}
	return f
}

// Net exposes the shared physical mesh — the fault surface for the whole
// deployment: one SetDown severs the path for every attached group.
func (f *Fabric) Net() *netsim.Network[netsim.Envelope[raft.Message]] { return f.net }

// N returns the number of physical nodes.
func (f *Fabric) N() int { return f.n }

// Groups returns how many groups have attached over the fabric's
// lifetime (decommissioned groups included — attach UIDs are not reused).
func (f *Fabric) Groups() int { return len(f.members) }

// LogicalMessages returns the count of raft messages submitted by
// senders. Divide by the mesh's TotalStats().Sent to get the envelope
// batching factor.
func (f *Fabric) LogicalMessages() uint64 { return f.logical }

// attach registers a group and returns its UID. Called from build() when
// Options.Fabric is set.
func (f *Fabric) attach(c *Cluster) int {
	if c.opts.N != f.n {
		panic(fmt.Sprintf("cluster: fabric spans %d nodes, group wants %d", f.n, c.opts.N))
	}
	f.members = append(f.members, c)
	return len(f.members) - 1
}

// deliverEnvelope is the mesh sink: it demuxes an arrived envelope to the
// addressed groups' runtimes on the destination node, feeding each
// consecutive same-group run to its replica in one call. Each payload
// still pays its own receive CPU cost; a paused runtime (retired group,
// frozen container) drops its share. Runs never retain the envelope's
// backing slice (queued ones stage into the replica's inbox), so a
// recyclable envelope goes straight back to the pool.
func (f *Fabric) deliverEnvelope(to int, env netsim.Envelope[raft.Message]) {
	msgs := env.Msgs
	for i := 0; i < len(msgs); {
		j := i + 1
		for j < len(msgs) && msgs[j].Group == msgs[i].Group {
			j++
		}
		f.members[msgs[i].Group].rts[to].deliverRun(msgs[i:j])
		i = j
	}
	if env.Recycle {
		f.putMsgs(msgs)
	}
}

type fabTimer struct {
	at time.Duration
	rt *nodeRT // nil marks an empty slot
}

// fabricNode is one physical node's consolidated driver: the merged
// timer table of every co-located group replica and the outgoing
// per-(peer, class) batches.
type fabricNode struct {
	f  *Fabric
	id int // 0-based physical node

	// slots merges every attached replica's armed timers, indexed by
	// uid*stride + kind*(n+1) + peer — a flat array instead of a hashed
	// map because timer resets are the fabric's hottest write (every
	// append or heartbeat response re-deadlines the election timer).
	// Ascending index order is (uid, kind, peer) order, so a linear scan
	// is already the deterministic dispatch order. Per tick-class at most
	// one engine event is armed, at the earliest deadline; firing
	// dispatches everything due and re-arms at the new minimum. A timer
	// cancelled while armed just leaves a spurious wakeup behind.
	slots    []fabTimer
	stride   int
	armed    [2]sim.Handle
	armedAt  [2]time.Duration
	hasArmed [2]bool
	fireFns  [2]func()
	due      []int32 // dispatch scratch

	// batches accumulate one delivery window's traffic per (peer, class).
	// A single armed flush event per node ships every non-empty batch, so
	// a heartbeat sweep or append fan-out over all peers costs one event,
	// not one per pair.
	batches    []outBatch // [to*2+class]
	flushArmed bool
	flushFn    func()
}

// slot maps one replica timer to its index in slots, growing the table
// when a newly attached group's uid is first seen.
func (nd *fabricNode) slot(uid int, kind raft.TimerKind, peer raft.ID) int {
	if need := (uid + 1) * nd.stride; len(nd.slots) < need {
		nd.slots = append(nd.slots, make([]fabTimer, need-len(nd.slots))...)
	}
	return uid*nd.stride + int(kind)*(nd.f.n+1) + int(peer)
}

// outBatch accumulates one delivery window's messages for a (peer,
// class) pair.
type outBatch struct {
	msgs []netsim.GroupMsg[raft.Message]
}

// flush ships every non-empty batch of the node in (peer, class) order.
func (nd *fabricNode) flush() {
	nd.flushArmed = false
	for i := range nd.batches {
		b := &nd.batches[i]
		if len(b.msgs) == 0 {
			continue
		}
		cls := netsim.Class(i & 1)
		// A TCP envelope is delivered at most once, so the receiver can
		// hand the slice back to the fabric pool after demux. UDP
		// duplication may deliver the same envelope twice, so those
		// slices go to the GC.
		env := netsim.Envelope[raft.Message]{Msgs: b.msgs, Recycle: cls == netsim.TCP}
		b.msgs = nil
		nd.f.net.Send(nd.id, i>>1, cls, env)
	}
}

// send enqueues one logical message into the (peer, class) batch, arming
// the node's flush on first use in a window. With BatchWindow <= 0 the
// flush still lands at the current instant *after* the running event
// cascade, so same-instant sends (a heartbeat sweep, a loadgen flush
// fanning over groups) coalesce even with no added delay.
func (nd *fabricNode) send(uid int, cls netsim.Class, m raft.Message) {
	f := nd.f
	f.logical++
	to := int(m.To - 1)
	b := &nd.batches[to*2+int(cls)]
	if b.msgs == nil {
		b.msgs = f.getMsgs()
	}
	b.msgs = append(b.msgs, netsim.GroupMsg[raft.Message]{Group: uid, Msg: m})
	if !nd.flushArmed {
		nd.flushArmed = true
		w := f.opts.BatchWindow
		if w < 0 {
			w = 0
		}
		f.eng.Schedule(f.eng.Now()+w, nd.flushFn)
	}
}

// quantizeCeil snaps at up to the next grid point (never earlier).
func quantizeCeil(at, tick time.Duration) time.Duration {
	if tick <= 0 {
		return at
	}
	if r := at % tick; r != 0 {
		at += tick - r
	}
	return at
}

// setTimer registers (or re-deadlines) one replica's timer in the node's
// consolidated table. Skew transforms were already applied by the
// caller; quantization happens here, after them, so a skewed clock still
// lands on the shared grid.
func (nd *fabricNode) setTimer(rt *nodeRT, kind raft.TimerKind, peer raft.ID, at time.Duration) {
	f := nd.f
	now := f.eng.Now()
	switch kind {
	case raft.TimerElection:
		at = quantizeCeil(at, f.opts.ElectionTick)
	case raft.TimerHeartbeat:
		// Round up onto the coarsest grid whose one-step delay stays
		// small (≤ 1/4) against the timer's lead time. Any interval that
		// is a multiple of its grid phase-locks after one quantization —
		// spacing is exactly h thereafter, so the followers' tuned
		// timeouts see the same cadence as the per-group build — while a
		// tuned ~25 ms heartbeat lands on a proportionally finer grid
		// instead of being parked 4 intervals out past its failure
		// detectors.
		grid := f.opts.HeartbeatTick
		for delta := at - now; grid > time.Millisecond && grid*4 > delta; {
			grid >>= 1
		}
		at = quantizeCeil(at, grid)
	}
	if at < now {
		at = now
	}
	nd.slots[nd.slot(rt.fabUID, kind, peer)] = fabTimer{at: at, rt: rt}
	k := int(kind)
	if nd.hasArmed[k] && nd.armedAt[k] <= at {
		return // the armed tick already covers this deadline
	}
	if nd.hasArmed[k] {
		f.eng.Cancel(nd.armed[k])
	}
	nd.armed[k] = f.eng.Schedule(at, nd.fireFns[k])
	nd.armedAt[k] = at
	nd.hasArmed[k] = true
}

func (nd *fabricNode) cancelTimer(uid int, kind raft.TimerKind, peer raft.ID) {
	nd.slots[nd.slot(uid, kind, peer)].rt = nil
	// The armed tick, if it was for this deadline, fires as a cheap
	// spurious wakeup and re-arms at the surviving minimum.
}

// dropTimers forgets every timer of one replica — a crashed process's
// timers must never drive its successor.
func (nd *fabricNode) dropTimers(uid int) {
	lo := uid * nd.stride
	if lo >= len(nd.slots) {
		return
	}
	for i := lo; i < lo+nd.stride; i++ {
		nd.slots[i].rt = nil
	}
}

// fire is the node's tick for one class: it collects every due timer in
// slot order — already deterministic (uid, peer) order — dispatches them
// through each replica's CPU, and re-arms at the remaining minimum. Due
// slots are cleared at collection, before any handler runs; a handler
// only ever touches its own replica's slots (which were just cleared),
// so later due entries stay valid. An idle replica's handler runs
// inline — charging its CPU without a per-timer engine event — while a
// busy one queues through Exec.
func (nd *fabricNode) fire(kind raft.TimerKind) {
	k := int(kind)
	nd.hasArmed[k] = false
	now := nd.f.eng.Now()
	base := k * (nd.f.n + 1)
	due := nd.due[:0]
	for lo := 0; lo < len(nd.slots); lo += nd.stride {
		for p := 0; p <= nd.f.n; p++ {
			i := lo + base + p
			if t := nd.slots[i]; t.rt != nil && t.at <= now {
				due = append(due, int32(i))
			}
		}
	}
	for _, i := range due {
		rt := nd.slots[i].rt
		nd.slots[i].rt = nil
		if rt.paused {
			continue
		}
		// stride is a multiple of n+1, so the peer is the index mod n+1.
		peer := raft.ID(int(i) % (nd.f.n + 1))
		if rt.proc.Backlog() == 0 {
			rt.proc.Charge(rt.c.cost.TimerFire)
			rt.node.OnTimer(kind, peer)
			continue
		}
		rt.proc.Exec(rt.c.cost.TimerFire, func() {
			rt.node.OnTimer(kind, peer)
		})
	}
	nd.due = due[:0]
	nd.rearm(k)
}

// rearm schedules the class tick at the table's minimum deadline, unless
// an earlier (or equal) tick is already armed.
func (nd *fabricNode) rearm(k int) {
	var min time.Duration
	found := false
	base := k * (nd.f.n + 1)
	for lo := 0; lo < len(nd.slots); lo += nd.stride {
		for p := 0; p <= nd.f.n; p++ {
			if t := nd.slots[lo+base+p]; t.rt != nil && (!found || t.at < min) {
				min, found = t.at, true
			}
		}
	}
	if !found {
		return
	}
	if nd.hasArmed[k] {
		if nd.armedAt[k] <= min {
			return
		}
		nd.f.eng.Cancel(nd.armed[k])
	}
	nd.armed[k] = nd.f.eng.Schedule(min, nd.fireFns[k])
	nd.armedAt[k] = min
	nd.hasArmed[k] = true
}
