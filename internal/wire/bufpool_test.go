package wire

import "testing"

func TestBufPoolClasses(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20} {
		b := GetBuf(n)
		if len(b) != 0 {
			t.Fatalf("GetBuf(%d) len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuf(%d) cap = %d", n, cap(b))
		}
		PutBuf(b)
	}
}

func TestBufPoolReuse(t *testing.T) {
	b := GetBuf(1024)
	b = append(b, "marker"...)
	PutBuf(b)
	// The next same-class Get must come back zero-length regardless of
	// whether it is the recycled buffer.
	b2 := GetBuf(1024)
	if len(b2) != 0 {
		t.Fatalf("recycled buffer len = %d", len(b2))
	}
	PutBuf(b2)
}

func TestBufPoolOversize(t *testing.T) {
	b := GetBuf(MaxFrame + 1)
	if cap(b) < MaxFrame+1 {
		t.Fatalf("oversize cap = %d", cap(b))
	}
	PutBuf(b) // must not panic, silently dropped
	// Grown-out-of-class buffers are dropped, not pooled.
	PutBuf(make([]byte, 0, 777))
}
