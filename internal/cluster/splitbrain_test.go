package cluster

import (
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
)

// TestSplitBrainNoDoubleCommit is the safety assertion behind the
// split-brain-2-3 scenario: across a 2/3 group partition the minority
// side — which keeps a reigning leader for up to one check-quorum sweep —
// must never commit a write, the majority side must keep committing, and
// after the heal every store converges on the majority's history with
// the minority's write nowhere.
func TestSplitBrainNoDoubleCommit(t *testing.T) {
	c := New(Options{N: 5, Seed: 63, Variant: VariantRaft(), Profile: stableNet(50)})
	c.Start()
	if c.WaitLeader(10*time.Second) == nil {
		t.Fatal("no initial leader")
	}
	c.Run(2 * time.Second)
	old := c.Leader()

	// Put the current leader on the minority side with one neighbour; the
	// other three nodes form the majority.
	minority := []int{int(old.ID() - 1), int(old.ID()) % 5}
	inMinority := map[int]bool{minority[0]: true, minority[1]: true}
	var majority []int
	for i := 0; i < 5; i++ {
		if !inMinority[i] {
			majority = append(majority, i)
		}
	}
	c.Network().PartitionGroups(minority, majority, true)

	// The cut leader still believes it reigns: it must accept — and never
	// commit — a proposal.
	put := func(l *raft.Node, seq uint64, key string) {
		t.Helper()
		if _, err := l.Propose(kv.Encode(kv.Command{Op: kv.OpPut, Client: 7, Seq: seq, Key: key, Value: []byte("v")})); err != nil {
			t.Fatalf("propose %q on node %d: %v", key, l.ID(), err)
		}
	}
	put(old, 1, "minority-write")

	// The majority elects a successor and commits through it.
	deadline := c.Now() + 15*time.Second
	var successor *raft.Node
	for c.Now() < deadline {
		if l := c.Leader(); l != nil && l.ID() != old.ID() {
			successor = l
			break
		}
		c.Run(10 * time.Millisecond)
	}
	if successor == nil {
		t.Fatal("majority never elected a successor")
	}
	put(successor, 2, "majority-write")
	c.Run(3 * time.Second)

	for id := raft.ID(1); id <= 5; id++ {
		if _, ok := c.Store(id).Get("minority-write"); ok {
			t.Fatalf("node %d applied the minority write during the split — double commit", id)
		}
	}
	if _, ok := c.Store(successor.ID()).Get("majority-write"); !ok {
		t.Fatal("majority side could not commit during the split")
	}

	// Heal: one history. The minority's uncommitted entry is overwritten,
	// the majority's committed entry reaches everyone.
	c.Network().PartitionGroups(minority, majority, false)
	c.Run(5 * time.Second)
	for id := raft.ID(1); id <= 5; id++ {
		if _, ok := c.Store(id).Get("minority-write"); ok {
			t.Fatalf("node %d surfaced the minority write after the heal", id)
		}
		if _, ok := c.Store(id).Get("majority-write"); !ok {
			t.Fatalf("node %d is missing the majority write after the heal", id)
		}
	}
	if err := c.StoresConsistent(); err != nil {
		t.Fatal(err)
	}
	if l := c.Leader(); l == nil || l.Term() < successor.Term() {
		t.Fatal("no post-heal leader at the majority's term")
	}
}
