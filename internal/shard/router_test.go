package shard

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	return keys
}

func TestRouterDeterministicAndInRange(t *testing.T) {
	r := NewRouter(8, 0)
	for _, k := range testKeys(2000) {
		g := r.Route(k)
		if g < 0 || int(g) >= r.Groups() {
			t.Fatalf("Route(%q) = %d out of [0,%d)", k, g, r.Groups())
		}
		if again := r.Route(k); again != g {
			t.Fatalf("Route(%q) unstable: %d then %d", k, g, again)
		}
	}
}

func TestRouterStableAcrossInstantiation(t *testing.T) {
	a := NewRouter(4, 64)
	b := NewRouter(4, 64)
	for _, k := range testKeys(5000) {
		if a.Route(k) != b.Route(k) {
			t.Fatalf("key %q routed to %d and %d by identical routers", k, a.Route(k), b.Route(k))
		}
	}
}

func TestRouterUniformity(t *testing.T) {
	const nKeys = 40000
	keys := testKeys(nKeys)
	for _, groups := range []int{4, 8, 16} {
		r := NewRouter(groups, 0)
		counts := make([]int, groups)
		for _, k := range keys {
			counts[r.Route(k)]++
		}
		want := nKeys / groups
		for g, c := range counts {
			// Consistent hashing with 256 virtual nodes keeps per-group
			// share within ≈±10% of uniform; allow ±25%.
			if c < want*75/100 || c > want*125/100 {
				t.Fatalf("groups=%d: group %d owns %d of %d keys (want ≈%d)", groups, g, c, nKeys, want)
			}
		}
	}
}

func TestRouterPartitionCoversAllKeys(t *testing.T) {
	r := NewRouter(4, 0)
	keys := testKeys(1000)
	parts := r.Partition(keys)
	total := 0
	for g, ks := range parts {
		total += len(ks)
		for _, k := range ks {
			if r.Route(k) != g {
				t.Fatalf("key %q partitioned into %d but routes to %d", k, g, r.Route(k))
			}
		}
	}
	if total != len(keys) {
		t.Fatalf("partition dropped keys: %d of %d", total, len(keys))
	}
}

func TestRouterConsistentGrowth(t *testing.T) {
	// Growing 4 → 5 groups must move only a minority of the keyspace, and
	// every moved key must land on the new group (consistent hashing's
	// minimal-disruption property, which the future rebalance PR depends
	// on).
	small := NewRouter(4, 0)
	big := NewRouter(5, 0)
	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		a, b := small.Route(k), big.Route(k)
		if a == b {
			continue
		}
		moved++
		if b != GroupID(4) {
			t.Fatalf("key %q moved %d→%d instead of onto the new group", k, a, b)
		}
	}
	// Expected ≈1/5 of keys move; allow generous slack but far below a
	// rehash-everything router (which would move ≈4/5).
	if moved == 0 || moved > len(keys)*35/100 {
		t.Fatalf("growth moved %d of %d keys; want ≈%d", moved, len(keys), len(keys)/5)
	}
}

func TestRouterPanicsOnNoGroups(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRouter(0, _) did not panic")
		}
	}()
	NewRouter(0, 8)
}
