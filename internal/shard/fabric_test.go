package shard

import (
	"testing"
	"time"

	"dynatune/internal/raft"
	"dynatune/internal/workload"
)

// TestRetiredSlotAccessors is the lifecycle-churn regression: a prober
// that cached a GroupID across a decommission must get benign answers
// from every accessor, and the leader-wait helpers must never count a
// retired slot as a serving group.
func TestRetiredSlotAccessors(t *testing.T) {
	s := New(Options{Groups: 4, NodesPerGroup: 3, Seed: 47, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	keys := seedKeys(t, s, 120)
	if err := s.RemoveGroupLive(0); err != nil {
		t.Fatal(err)
	}
	runUntilMigrated(t, s, keys)

	top := GroupID(3)
	if !s.Retired(top) {
		t.Fatalf("Retired(%d) = false after RemoveGroupLive", top)
	}
	if l := s.Leader(top); l != nil {
		t.Fatalf("Leader(%d) = node %d, want nil for a retired slot", top, l.ID())
	}
	// Out-of-range slots are equally benign.
	if s.Leader(GroupID(-1)) != nil || s.Leader(GroupID(99)) != nil {
		t.Fatal("Leader() non-nil for out-of-range slot")
	}
	if s.Retired(GroupID(-1)) || s.Retired(GroupID(99)) {
		t.Fatal("Retired() true for out-of-range slot")
	}
	// HasLeaders/WaitLeaders skip the retired slot: they must report
	// healthy from the survivors alone, without running any further
	// (the retired replicas are paused and can never elect).
	if !s.HasLeaders() {
		t.Fatal("HasLeaders() = false with all serving groups led")
	}
	before := s.Now()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("WaitLeaders stalled on a retired slot")
	}
	if s.Now() != before {
		t.Fatalf("WaitLeaders advanced the sim %v waiting on a retired slot", s.Now()-before)
	}
}

// TestConsolidatedMessageReductionAtG16 pins the per-node-pair batching
// win: at G=16 the shared mesh must carry at least 5x fewer envelopes
// than the logical raft messages a per-group mesh would have sent
// one-per-message.
func TestConsolidatedMessageReductionAtG16(t *testing.T) {
	s := New(Options{Groups: 16, NodesPerGroup: 3, Seed: 7, Profile: fastProfile()})
	ramp := workload.Ramp{StartRPS: 4000, StepRPS: 0, StepDuration: time.Second, Steps: 2}
	lg := NewLoadGen(s, ramp, LoadOptions{Keys: 1024})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	lg.Start()
	s.Run(ramp.StepDuration * time.Duration(ramp.Steps))

	logical, wire := s.WireStats()
	if logical == 0 || wire == 0 {
		t.Fatalf("WireStats() = (%d, %d), expected traffic", logical, wire)
	}
	if ratio := float64(logical) / float64(wire); ratio < 5 {
		t.Fatalf("batching factor %.2f (logical %d / wire %d), want >= 5 at G=16",
			ratio, logical, wire)
	}
	if lg.TotalCompleted() == 0 {
		t.Fatal("load generator completed nothing")
	}

	// The per-group-mesh build has no shared fabric to account for.
	legacy := New(Options{Groups: 16, NodesPerGroup: 3, Seed: 7, Profile: fastProfile(), PerGroupMesh: true})
	if l, w := legacy.WireStats(); l != 0 || w != 0 {
		t.Fatalf("PerGroupMesh WireStats() = (%d, %d), want zeros", l, w)
	}
	if legacy.PhysLinks() != nil {
		t.Fatal("PerGroupMesh PhysLinks() non-nil")
	}
}

// TestSharedMeshFaultSeversAllGroups pins group-aware fault semantics on
// the consolidated fabric: partitioning one physical node severs that
// replica for EVERY group at once, so all groups it led re-elect onto the
// survivors.
func TestSharedMeshFaultSeversAllGroups(t *testing.T) {
	s := New(Options{Groups: 6, NodesPerGroup: 3, Seed: 13, Profile: fastProfile()})
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leaders")
	}
	victim := raft.ID(1)
	// Mesh node ids are 0-based; raft IDs are 1-based.
	s.PhysLinks().PartitionNode(int(victim)-1, true)
	// A stale partitioned leader stays in StateLeader at its old term, so
	// don't trust WaitLeaders here — run long enough for every group to
	// elect a higher-term leader among the two connected survivors.
	s.Run(10 * time.Second)
	for g := 0; g < s.Groups(); g++ {
		l := s.Leader(GroupID(g))
		if l == nil {
			t.Fatalf("group %d leaderless after re-election window", g)
		}
		if l.ID() == victim {
			t.Fatalf("group %d still led by partitioned node %d — fault did not reach it", g, victim)
		}
	}
	// Heal; the mesh must keep every group serving.
	s.PhysLinks().PartitionNode(int(victim)-1, false)
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("groups lost leaders after heal")
	}
}
