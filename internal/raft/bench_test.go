package raft

import (
	"testing"
	"time"
)

// BenchmarkStepHeartbeat measures the hot path of a follower processing a
// leader heartbeat (reset timer, respond).
func BenchmarkStepHeartbeat(b *testing.B) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(10 * time.Second)
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	m := Message{Type: MsgHeartbeat, From: lead.ID(), To: follower.ID(), Term: lead.Term()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower.Step(m)
	}
}

// BenchmarkProposeReplicate measures a leader appending and fanning out
// one proposal to four followers.
func BenchmarkProposeReplicate(b *testing.B) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	payload := []byte("benchmark-payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lead.Propose(payload); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			b.StopTimer()
			c.run(time.Second) // drain and commit
			lead.CompactLog(64)
			b.StartTimer()
		}
	}
}

// BenchmarkLogAppend measures raw log appends with periodic compaction.
func BenchmarkLogAppend(b *testing.B) {
	l := NewLog()
	data := []byte("entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(1, data)
		if l.Len() > 1<<16 {
			l.CommitTo(l.LastIndex())
			l.NextToApply()
			l.CompactTo(l.LastIndex() - 16)
		}
	}
}

// BenchmarkLogMaybeAppend measures the follower-side consistency check and
// append for batches of 64.
func BenchmarkLogMaybeAppend(b *testing.B) {
	batch := make([]Entry, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		l := NewLog()
		for j := range batch {
			batch[j] = Entry{Term: 1, Index: uint64(j + 1), Data: []byte("x")}
		}
		b.StartTimer()
		if _, ok := l.MaybeAppend(0, 0, batch); !ok {
			b.Fatal("append rejected")
		}
	}
}

// BenchmarkFullElection measures a complete leader election round trip in
// a 5-node simulated cluster (detection excluded — timers start expired).
func BenchmarkFullElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := defaultOpts()
		opts.n = 5
		opts.seed = int64(i + 1)
		c := newTestCluster(opts)
		if c.waitLeader(30*time.Second) == nil {
			b.Fatal("no leader")
		}
	}
}

// BenchmarkChaosRound measures the chaos harness itself, as a guard
// against the property tests becoming too slow to run routinely.
func BenchmarkChaosRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chaosRun(b, int64(i+1), 5, 0, nil)
	}
}
