package chaos

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"dynatune/internal/scenario"
)

// quickBudget keeps storm tests fast: a short two-step ramp, tight fault
// durations, no reordering coin flips removed (left at default).
func quickBudget() Budget {
	b := DefaultBudget()
	b.Steps = 2
	b.StepDuration = scenario.Duration(time.Second)
	b.MaxDur = scenario.Duration(time.Second)
	return b
}

func TestStormSeedStableAndPositive(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := StormSeed(42, i)
		if s < 0 {
			t.Fatalf("StormSeed(42, %d) = %d, want non-negative", i, s)
		}
		if seen[s] {
			t.Fatalf("StormSeed(42, %d) = %d collides with an earlier storm", i, s)
		}
		seen[s] = true
		if s != StormSeed(42, i) {
			t.Fatalf("StormSeed(42, %d) unstable across calls", i)
		}
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	b := DefaultBudget()
	a1, err := Schedule(b, 99)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Schedule(b, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("same (budget, seed) sampled different schedules")
	}
	other, err := Schedule(b, 100)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1.Faults, other.Faults) {
		t.Fatalf("seeds 99 and 100 sampled identical fault schedules")
	}
}

func TestScheduleSamplesValidSpecs(t *testing.T) {
	b := DefaultBudget()
	for seed := int64(1); seed <= 25; seed++ {
		spec, err := Schedule(b, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Schedule already validates; pin the budget's structural promises.
		n := 0
		for _, f := range spec.Faults {
			if f.Kind == scenario.FaultAddGroup || f.Kind == scenario.FaultRemoveGroup {
				continue
			}
			n++
		}
		if n < b.MinFaults || n > b.MaxFaults {
			t.Fatalf("seed %d: %d non-rebalance faults outside budget [%d,%d]", seed, n, b.MinFaults, b.MaxFaults)
		}
		degrades := 0
		for _, f := range spec.Faults {
			if f.Kind == scenario.FaultDegradeLinks {
				degrades++
			}
		}
		if degrades > 1 {
			t.Fatalf("seed %d: %d degrade-links faults, want at most one per storm", seed, degrades)
		}
		for i := 1; i < len(spec.Faults); i++ {
			if spec.Faults[i].At < spec.Faults[i-1].At {
				t.Fatalf("seed %d: schedule not chronological", seed)
			}
		}
		if spec.Invariants == nil {
			t.Fatalf("seed %d: storm spec left the invariant suite unarmed", seed)
		}
	}
}

// TestRunStormsWorkerCountInvariance is the campaign-level determinism
// acceptance: the same (budget, seed) must produce a byte-identical
// report whether the storms run on one worker or eight.
func TestRunStormsWorkerCountInvariance(t *testing.T) {
	b := quickBudget()
	one, err := RunStorms(b, 4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunStorms(b, 4, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(one)
	if err != nil {
		t.Fatal(err)
	}
	j8, err := json.Marshal(eight)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j8) {
		t.Fatalf("worker count leaked into the campaign report:\n 1 worker: %s\n 8 workers: %s", j1, j8)
	}
}

// TestStormShrinksToMinimalReproducer is the shrinking acceptance: a
// storm over a deliberately weakened invariant (an unattainable 1ms
// unavailability bound) must trip, shrink to a reproducer of at most
// three faults, and that reproducer must still fail on replay.
func TestStormShrinksToMinimalReproducer(t *testing.T) {
	b := quickBudget()
	b.Invariants = &scenario.Invariants{MaxUnavail: scenario.Duration(time.Millisecond)}
	rep, err := RunStorms(b, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures == 0 {
		t.Fatalf("no storm tripped a 1ms unavailability bound under leader faults")
	}
	for _, v := range rep.Verdicts {
		if v.OK {
			continue
		}
		if v.Reproducer == nil {
			t.Fatalf("storm %d failed without a reproducer", v.Storm)
		}
		if v.ShrunkFaults > 3 {
			t.Fatalf("storm %d shrank to %d faults, want <= 3", v.Storm, v.ShrunkFaults)
		}
		if len(v.ShrunkViolations) == 0 {
			t.Fatalf("storm %d: shrunk spec recorded no violations", v.Storm)
		}
		vs, err := Replay(*v.Reproducer, 1)
		if err != nil {
			t.Fatalf("storm %d: reproducer replay failed: %v", v.Storm, err)
		}
		if len(vs) == 0 {
			t.Fatalf("storm %d: shrunk reproducer no longer trips on replay", v.Storm)
		}
		return // one failing storm fully verified is the acceptance
	}
}

func TestBudgetValidateRejectsNonsense(t *testing.T) {
	bad := []Budget{
		{Groups: 1, NodesPerGroup: 2},                         // sub-quorum group
		{MinFaults: 5, MaxFaults: 2},                          // inverted count range
		{WindowFrac: 1.5},                                     // window past the ramp
		{MinDur: scenario.Duration(2 * time.Second), MaxDur: scenario.Duration(time.Second)}, // inverted durations
		{Rebalance: 2},                                        // not a probability
		{Kinds: map[string]float64{"meteor-strike": 1}},       // unknown kind
		{Kinds: map[string]float64{"crash-node": -1}},         // negative weight
		{Persist: false, Kinds: map[string]float64{"crash-node": 1}}, // crash without persistence
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad budget %d validated: %+v", i, b)
		}
	}
	if err := DefaultBudget().Validate(); err != nil {
		t.Fatalf("default budget invalid: %v", err)
	}
}

func TestCrashDropsFromDefaultPoolWithoutPersist(t *testing.T) {
	b := DefaultBudget()
	b.Persist = false
	if w := b.weightOf(scenario.FaultCrashNode); w != 0 {
		t.Fatalf("crash-node weight %v on a non-persisted default pool, want 0", w)
	}
	// Sampled schedules must honor it.
	for seed := int64(1); seed <= 10; seed++ {
		spec, err := Schedule(b, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, f := range spec.Faults {
			if f.Kind == scenario.FaultCrashNode {
				t.Fatalf("seed %d: non-persisted storm sampled a crash-node fault", seed)
			}
		}
	}
}
