package cluster

import (
	"math/rand"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// nodeRT adapts one raft.Node to the simulated testbed: it implements
// raft.Runtime, serializes all of the node's work through a sim.Proc
// (modelling its CPU), routes messages over the netsim mesh, and applies
// the failure model (a paused node drops everything, like a paused
// container).
type nodeRT struct {
	c    *Cluster
	id   raft.ID
	node *raft.Node
	proc *sim.Proc

	timers map[timerKey]sim.Handle

	// fnode / fabUID route this runtime through the consolidation fabric
	// when the cluster is one group of a multi-Raft deployment: sends go
	// into the node's per-peer batches and timers into the node's
	// consolidated tick table instead of the private mesh and per-timer
	// engine events. Nil for a standalone cluster.
	fnode  *fabricNode
	fabUID int

	// tuned enables the tuning-overhead cost components.
	tuned bool
	// hbClass is the delivery class for heartbeats and their responses
	// (UDP for Dynatune's hybrid transport, TCP for stock etcd).
	hbClass netsim.Class

	paused bool

	// skewOffset / skewDrift skew this node's election timer (the clock-skew
	// fault): each armed delay is scaled by (1+drift) and shifted by offset.
	// Heartbeat timers are untouched — the fault models NTP error on the
	// failure detector, not a wholesale slowdown of the process.
	skewOffset time.Duration
	skewDrift  float64

	// inbox stages fabric payloads queued behind a busy CPU (see
	// deliverRun). One drain event at a time is armed; runs staged while
	// it is pending just charge their CPU cost and ride the armed drain,
	// so a busy burst costs one engine event and zero per-run closures.
	// The drain/drop callbacks are built once at construction.
	inbox      []raft.Message
	inboxHead  int
	drainArmed bool
	drainFn    func()
	dropFn     func()

	// stats
	msgsSent, msgsRecv uint64
}

type timerKey struct {
	kind raft.TimerKind
	peer raft.ID
}

var _ raft.Runtime = (*nodeRT)(nil)

func (rt *nodeRT) Now() time.Duration { return rt.c.eng.Now() }
func (rt *nodeRT) Rand() *rand.Rand   { return rt.c.eng.Rand() }

func (rt *nodeRT) Send(m raft.Message) {
	if rt.paused {
		return
	}
	rt.msgsSent++
	// Sending consumes CPU on this node (it delays this node's future
	// work) but does not delay the wire departure: the cost accrues to the
	// processor, the packet leaves now.
	rt.proc.Charge(rt.c.cost.sendCost(m, rt.tuned))
	cls := netsim.TCP
	if m.Type == raft.MsgHeartbeat || m.Type == raft.MsgHeartbeatResp {
		cls = rt.hbClass
	}
	if rt.fnode != nil {
		rt.fnode.send(rt.fabUID, cls, m)
		return
	}
	rt.c.net.Send(int(rt.id-1), int(m.To-1), cls, m)
}

func (rt *nodeRT) deliver(m raft.Message) {
	if rt.paused {
		return // frozen container: sockets overflow, packets die
	}
	rt.msgsRecv++
	rt.proc.Exec(rt.c.cost.recvCost(m, rt.tuned), func() {
		rt.node.Step(m)
	})
}

// deliverRun is the fabric's receive path: one envelope's consecutive
// same-group payloads, delivered together. When the node's CPU is idle
// (and nothing is staged ahead) the run is stepped inside the caller's
// event — the envelope sink — charging each message's receive cost
// without per-message engine events or closures. Otherwise the payloads
// are staged in the replica's reusable inbox: the first staged run arms
// one drain event at the backlog's end, later runs charge their CPU cost
// and ride it, so a busy burst costs one engine event total and the
// envelope's slice is never retained.
func (rt *nodeRT) deliverRun(run []netsim.GroupMsg[raft.Message]) {
	if rt.paused {
		return // frozen container: sockets overflow, packets die
	}
	rt.msgsRecv += uint64(len(run))
	// The drainArmed check keeps FIFO order: a drain whose deadline has
	// arrived but whose event has not yet fired must still step its
	// staged payloads before anything newer runs inline.
	if !rt.drainArmed && rt.proc.Backlog() == 0 {
		for i := range run {
			rt.proc.Charge(rt.c.cost.recvCost(run[i].Msg, rt.tuned))
			rt.node.Step(run[i].Msg)
		}
		return
	}
	var total time.Duration
	for i := range run {
		total += rt.c.cost.recvCost(run[i].Msg, rt.tuned)
		rt.inbox = append(rt.inbox, run[i].Msg)
	}
	if rt.drainArmed {
		rt.proc.Charge(total)
		return
	}
	rt.drainArmed = true
	rt.proc.ExecNotify(total, rt.drainFn, rt.dropFn)
}

// initDrain builds the inbox drain callbacks (once, at cluster build).
// drainFn steps everything staged; payloads that landed after the drain
// was armed are processed here too — slightly earlier than their charged
// CPU completion, the price of coalescing a burst into one event. dropFn
// is the pause path: a frozen container's queued work is discarded.
func (rt *nodeRT) initDrain() {
	rt.drainFn = func() {
		rt.drainArmed = false
		for rt.inboxHead < len(rt.inbox) {
			m := rt.inbox[rt.inboxHead]
			rt.inboxHead++
			rt.node.Step(m)
		}
		rt.inbox = rt.inbox[:0]
		rt.inboxHead = 0
	}
	rt.dropFn = func() {
		rt.drainArmed = false
		rt.inbox = rt.inbox[:0]
		rt.inboxHead = 0
	}
}

func (rt *nodeRT) SetTimer(kind raft.TimerKind, peer raft.ID, at time.Duration) {
	if kind == raft.TimerElection && (rt.skewDrift != 0 || rt.skewOffset != 0) {
		now := rt.c.eng.Now()
		d := at - now
		if d < 0 {
			d = 0
		}
		d = time.Duration(float64(d)*(1+rt.skewDrift)) + rt.skewOffset
		if d < 0 {
			d = 0
		}
		at = now + d
	}
	if rt.fnode != nil {
		// Consolidated path: the node's fabric driver owns the deadline
		// (quantized onto the shared tick grid, after the skew transform
		// above so a skewed clock still lands on the grid).
		rt.fnode.setTimer(rt, kind, peer, at)
		return
	}
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.c.eng.Cancel(h)
	}
	rt.timers[key] = rt.c.eng.Schedule(at, func() {
		delete(rt.timers, key)
		if rt.paused {
			return
		}
		rt.proc.Exec(rt.c.cost.TimerFire, func() {
			rt.node.OnTimer(kind, peer)
		})
	})
}

func (rt *nodeRT) CancelTimer(kind raft.TimerKind, peer raft.ID) {
	if rt.fnode != nil {
		rt.fnode.cancelTimer(rt.fabUID, kind, peer)
		return
	}
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.c.eng.Cancel(h)
		delete(rt.timers, key)
	}
}

// pause freezes the node (the paper's `docker pause` failure).
func (rt *nodeRT) pause() {
	rt.paused = true
	rt.proc.Pause()
}

// resume unfreezes the node. Timers that fired while frozen are gone, so
// the election timer is re-armed; a stale leader will step down via
// check-quorum or on the first higher-term message.
func (rt *nodeRT) resume() {
	rt.paused = false
	rt.proc.Resume()
	rt.node.Start()
}

// dropTimers cancels and forgets every armed timer — a crashed process's
// timers must never drive its successor.
func (rt *nodeRT) dropTimers() {
	if rt.fnode != nil {
		rt.fnode.dropTimers(rt.fabUID)
		return
	}
	for key, h := range rt.timers {
		rt.c.eng.Cancel(h)
		delete(rt.timers, key)
	}
}
