package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"dynatune/internal/raft"
)

// frameBoundaryMessages are the size-edge cases the binary serving path
// must survive: empty payloads, 0-byte entry data, and frames that brush
// the MaxFrame ceiling.
func frameBoundaryMessages() []raft.Message {
	big := make([]byte, MaxFrame-headerLen-64) // just under the frame cap
	return []raft.Message{
		{Type: raft.MsgHeartbeat, From: 1, To: 2, Term: 1},
		{Type: raft.MsgApp, From: 1, To: 2, Term: 3, Entries: []raft.Entry{
			{Term: 3, Index: 9, Type: raft.EntryNormal}, // nil Data
		}},
		{Type: raft.MsgApp, From: 1, To: 2, Term: 3, Entries: []raft.Entry{
			{Term: 3, Index: 10, Type: raft.EntryNormal, Data: []byte{}}, // 0-byte value
		}},
		{Type: raft.MsgSnap, From: 2, To: 3, Term: 7, Snap: []byte{}},
		{Type: raft.MsgSnap, From: 2, To: 3, Term: 7, Snap: big},
	}
}

func TestFrameSizeBoundaries(t *testing.T) {
	for i, m := range frameBoundaryMessages() {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatalf("msg %d: WriteFrame: %v", i, err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("msg %d: ReadFrame: %v", i, err)
		}
		// nil vs empty slices are semantically identical on the wire.
		if got.Type != m.Type || got.Term != m.Term || len(got.Entries) != len(m.Entries) || !bytes.Equal(got.Snap, m.Snap) {
			t.Fatalf("msg %d: round trip mismatch: %+v vs %+v", i, got, m)
		}
	}
	// One past the cap must be rejected at write time.
	over := raft.Message{Type: raft.MsgSnap, From: 1, To: 2, Snap: make([]byte, MaxFrame)}
	if err := WriteFrame(io.Discard, over); err == nil {
		t.Fatal("WriteFrame accepted an over-MaxFrame message")
	}
}

// Every truncation of a valid frame must fail cleanly — io error or
// ErrCorrupt — never panic and never yield a bogus message.
func TestTruncatedFramesCleanErrors(t *testing.T) {
	m := raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 5, Index: 9, Entries: []raft.Entry{
		{Term: 5, Index: 10, Type: raft.EntryNormal, Data: []byte("hello")},
	}, Snap: []byte("snapshot")}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(full))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: unexpected error class %v", cut, err)
		}
	}
}

// FuzzWireDecode drives Decode with arbitrary bytes: it must never panic,
// and anything it accepts must re-encode to a decode-equal message (the
// codec is canonical).
func FuzzWireDecode(f *testing.F) {
	for _, m := range frameBoundaryMessages() {
		if len(Encode(m)) < 4096 { // keep the corpus small
			f.Add(Encode(m))
		}
	}
	m := raft.Message{Type: raft.MsgVote, From: 3, To: 1, Term: 9, LogTerm: 8, Index: 44,
		SnapVoters: []raft.ID{1, 2, 3}, SnapLearners: []raft.ID{4}}
	enc := Encode(m)
	f.Add(enc)
	f.Add(enc[:len(enc)-3]) // truncated tail
	f.Add(enc[:headerLen])  // header only
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(got)
		got2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed to decode: %v", err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(got2)) {
			t.Fatalf("decode/encode/decode mismatch:\n%+v\n%+v", got, got2)
		}
	})
}

// normalize maps nil and empty slices onto one representation: the wire
// format cannot distinguish them.
func normalize(m raft.Message) raft.Message {
	if len(m.Snap) == 0 {
		m.Snap = nil
	}
	if len(m.Entries) == 0 {
		m.Entries = nil
	}
	for i := range m.Entries {
		if len(m.Entries[i].Data) == 0 {
			m.Entries[i].Data = nil
		}
	}
	if len(m.SnapVoters) == 0 {
		m.SnapVoters = nil
	}
	if len(m.SnapLearners) == 0 {
		m.SnapLearners = nil
	}
	return m
}
