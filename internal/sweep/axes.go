package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// The known axes. Each definition parses one operator-supplied value and
// applies it to a cell's spec; anything a value makes unrunnable is
// caught by the spec validation that follows in Cells.

type def struct {
	doc   string
	apply func(spec *scenario.Spec, value string) error
}

var defs = map[string]def{
	"n": {
		doc: "cluster size (per-group size for sharded topologies)",
		apply: func(spec *scenario.Spec, v string) error {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return fmt.Errorf("axis n: %q is not a positive integer", v)
			}
			spec.Topology.N = n
			if spec.Topology.Groups > 0 {
				spec.Topology.NodesPerGroup = n
			}
			return nil
		},
	},
	"loss": {
		doc: "packet-loss rate on every link segment (geo topologies: the matrix loss)",
		apply: func(spec *scenario.Spec, v string) error {
			loss, err := strconv.ParseFloat(v, 64)
			if err != nil || loss < 0 || loss >= 1 {
				return fmt.Errorf("axis loss: %q is not a rate in [0, 1)", v)
			}
			if len(spec.Topology.Regions) > 0 {
				spec.Topology.GeoLoss = loss
				return nil
			}
			if len(spec.Network.Segments) == 0 {
				// bind would fall back to its default profile: the cell
				// would be labelled with a loss that was never applied.
				return fmt.Errorf("axis loss: the base spec has no network segments to apply it to")
			}
			spec.Network = spec.Network.WithLoss(loss)
			return nil
		},
	},
	"rtt": {
		doc: "RTT on every link segment, e.g. 50ms (not valid for geo topologies)",
		apply: func(spec *scenario.Spec, v string) error {
			rtt, err := time.ParseDuration(v)
			if err != nil || rtt <= 0 {
				return fmt.Errorf("axis rtt: %q is not a positive duration", v)
			}
			if len(spec.Topology.Regions) > 0 {
				return fmt.Errorf("axis rtt: geo topologies take their RTTs from the region matrix")
			}
			if len(spec.Network.Segments) == 0 {
				return fmt.Errorf("axis rtt: the base spec has no network segments to apply it to")
			}
			spec.Network = spec.Network.WithRTT(scenario.Duration(rtt))
			return nil
		},
	},
	"variant": {
		doc: "system under test: raft | raft-low | dynatune | dynatune-ext | fix-k",
		apply: func(spec *scenario.Spec, v string) error {
			// bind owns the name registry; asking it keeps one source of
			// truth (and accepts the display spellings spec files may use).
			probe := spec.Variant
			probe.Name = v
			if _, err := bind.Variant(probe); err != nil {
				return fmt.Errorf("axis variant: %w", err)
			}
			spec.Variant.Name = v
			return nil
		},
	},
	"shards": {
		doc: "Raft group count (throughput scenarios; all values must be positive)",
		apply: func(spec *scenario.Spec, v string) error {
			g, err := strconv.Atoi(v)
			if err != nil || g < 1 {
				return fmt.Errorf("axis shards: %q is not a positive integer", v)
			}
			spec.Topology.Groups = g
			if spec.Topology.NodesPerGroup == 0 {
				spec.Topology.NodesPerGroup = spec.Topology.N
			}
			return nil
		},
	},
	"scale": {
		doc: "scenario.Scale fraction shrinking trials/horizon per cell, in (0, 1]",
		apply: func(spec *scenario.Spec, v string) error {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("axis scale: %q is not a fraction in (0, 1]", v)
			}
			*spec = scenario.Scale(*spec, f)
			return nil
		},
	},
	"jitter": {
		doc: "delay jitter on every link segment, e.g. 5ms (not valid for geo topologies)",
		apply: func(spec *scenario.Spec, v string) error {
			j, err := time.ParseDuration(v)
			if err != nil || j < 0 {
				return fmt.Errorf("axis jitter: %q is not a non-negative duration", v)
			}
			if len(spec.Topology.Regions) > 0 {
				return fmt.Errorf("axis jitter: geo topologies take jitter from geo_jitter_frac")
			}
			if len(spec.Network.Segments) == 0 {
				return fmt.Errorf("axis jitter: the base spec has no network segments to apply it to")
			}
			spec.Network = spec.Network.WithJitter(scenario.Duration(j))
			return nil
		},
	},
	"zipf": {
		doc: "Zipf exponent of the sharded loadgen's key sampler, > 1 (0 = uniform)",
		apply: func(spec *scenario.Spec, v string) error {
			z, err := strconv.ParseFloat(v, 64)
			if err != nil || (z != 0 && z <= 1) {
				return fmt.Errorf("axis zipf: %q is not 0 (uniform) or an exponent > 1", v)
			}
			if spec.Topology.Groups == 0 || spec.Workload == nil {
				// Only the sharded generator samples keys; a single-group
				// cell would be labelled with a skew that was never applied.
				return fmt.Errorf("axis zipf: needs a sharded throughput base (the keyed generator)")
			}
			spec.Workload.Zipf = z
			return nil
		},
	},
	"fault": {
		doc: "override one scalar field of a scheduled fault: [<idx>.]<field>:<value>, field in duration|at|every|deadline|rtt|jitter|reorder|reorder_every|loss (e.g. duration:500ms or 1.loss:0.2)",
		apply: func(spec *scenario.Spec, v string) error {
			idx := 0
			rest := v
			// An optional leading "<idx>." picks the fault; the default is
			// the first. The probe is unambiguous: a field name never parses
			// as an integer.
			if dot := strings.IndexByte(v, '.'); dot > 0 {
				if i, err := strconv.Atoi(v[:dot]); err == nil {
					idx, rest = i, v[dot+1:]
				}
			}
			field, val, ok := strings.Cut(rest, ":")
			if !ok {
				return fmt.Errorf("axis fault: %q is not [<idx>.]<field>:<value>", v)
			}
			if len(spec.Faults) == 0 {
				return fmt.Errorf("axis fault: the base spec schedules no faults to override")
			}
			if idx < 0 || idx >= len(spec.Faults) {
				return fmt.Errorf("axis fault: index %d out of range (spec schedules %d fault(s))", idx, len(spec.Faults))
			}
			f := &spec.Faults[idx]
			switch field {
			case "loss":
				loss, err := strconv.ParseFloat(val, 64)
				if err != nil || loss < 0 || loss >= 1 {
					return fmt.Errorf("axis fault: loss %q is not a rate in [0, 1)", val)
				}
				f.Loss = loss
			case "duration", "at", "every", "deadline", "rtt", "jitter", "reorder", "reorder_every":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return fmt.Errorf("axis fault: %s %q is not a non-negative duration", field, val)
				}
				dd := scenario.Duration(d)
				switch field {
				case "duration":
					f.Duration = dd
				case "at":
					f.At = dd
				case "every":
					f.Every = dd
				case "deadline":
					f.Deadline = dd
				case "rtt":
					f.RTT = dd
				case "jitter":
					f.Jitter = dd
				case "reorder":
					f.Reorder = dd
				case "reorder_every":
					f.ReorderEvery = dd
				}
			default:
				return fmt.Errorf("axis fault: unknown field %q", field)
			}
			return nil
		},
	},
	"groups-delta": {
		doc: "live rebalance mid-ramp: +k adds k groups, -k removes k (sharded throughput)",
		apply: func(spec *scenario.Spec, v string) error {
			k, err := strconv.Atoi(v)
			if err != nil || k == 0 {
				return fmt.Errorf("axis groups-delta: %q is not a non-zero integer", v)
			}
			if spec.Topology.Groups == 0 || spec.Measure != scenario.MeasureThroughput || spec.Workload == nil {
				return fmt.Errorf("axis groups-delta: needs a sharded throughput base")
			}
			kind := scenario.FaultAddGroup
			count := k
			if k < 0 {
				kind, count = scenario.FaultRemoveGroup, -k
			}
			f := scenario.Fault{
				Kind: kind, Count: count,
				// Fire at mid-ramp so pre/mid/post phase buckets all fill;
				// successive moves are spaced for the drain to converge
				// (overlapping moves are skipped, not queued).
				At:       scenario.Duration(spec.Workload.Ramp().Duration() / 2),
				Deadline: scenario.Duration(15 * time.Second),
			}
			if count > 1 {
				f.Every = scenario.Duration(10 * time.Second)
			}
			spec.Faults = append(spec.Faults, f)
			return nil
		},
	},
}

func axisDef(name string) (def, error) {
	d, ok := defs[name]
	if !ok {
		return def{}, fmt.Errorf("sweep: unknown axis %q (known: %s)", name, strings.Join(AxisNames(), ", "))
	}
	return d, nil
}

// AxisNames lists the known axes in sorted order.
func AxisNames() []string {
	out := make([]string, 0, len(defs))
	for n := range defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AxisDoc returns one axis's help line.
func AxisDoc(name string) string { return defs[name].doc }
