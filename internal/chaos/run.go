package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dynatune/internal/cluster"
	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// Verdict is one storm's outcome. When the storm tripped an invariant,
// Reproducer holds the shrunk schedule (a complete runnable spec) and
// ShrunkViolations what it still trips.
type Verdict struct {
	Storm int   `json:"storm"`
	Seed  int64 `json:"seed"`
	OK    bool  `json:"ok"`
	// Faults is the sampled schedule length (before shrinking).
	Faults int `json:"faults"`
	// Report is the run's invariant report (first repetition).
	Report *scenario.InvariantReport `json:"report,omitempty"`
	// Violations are the original storm's invariant trips.
	Violations []scenario.Violation `json:"violations,omitempty"`
	// Reproducer is the shrunk minimal failing spec; ShrunkFaults its
	// schedule length and ShrinkRuns how many replays the shrinker spent.
	Reproducer       *scenario.Spec       `json:"reproducer,omitempty"`
	ShrunkFaults     int                  `json:"shrunk_faults,omitempty"`
	ShrinkRuns       int                  `json:"shrink_runs,omitempty"`
	ShrunkViolations []scenario.Violation `json:"shrunk_violations,omitempty"`
}

// Report is one storm campaign's outcome, in storm order.
type Report struct {
	Budget   Budget    `json:"budget"`
	BaseSeed int64     `json:"base_seed"`
	Storms   int       `json:"storms"`
	Failures int       `json:"failures"`
	Verdicts []Verdict `json:"verdicts"`
}

// RunStorms samples and executes `storms` independent storms from the
// budget, fanning them across `workers` (0 = cluster.TrialWorkers). Each
// storm runs its simulation sequentially inside its own shard, so the
// campaign report — verdicts, violations, shrunk reproducers — is
// byte-identical for any worker count. A storm that trips an invariant
// is shrunk in place before its verdict is recorded.
func RunStorms(b Budget, storms int, baseSeed int64, workers int) (*Report, error) {
	b = b.withDefaults()
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if storms < 1 {
		storms = 1
	}
	if workers <= 0 {
		workers = cluster.TrialWorkers()
	}
	type out struct {
		v   Verdict
		err error
	}
	outs := cluster.RunSharded(workers, storms, func(i int) out {
		seed := StormSeed(baseSeed, i)
		spec, err := Schedule(b, seed)
		if err != nil {
			return out{err: err}
		}
		res, err := bind.RunWorkers(spec, 1)
		if err != nil {
			return out{err: fmt.Errorf("chaos: storm %d (seed %d): %w", i, seed, err)}
		}
		v := Verdict{
			Storm:      i,
			Seed:       seed,
			Faults:     len(spec.Faults),
			Violations: res.Violations(),
			OK:         len(res.Violations()) == 0,
		}
		if len(res.ShardRamps) > 0 {
			v.Report = res.ShardRamps[0].Invariants
		}
		if !v.OK {
			shrunk, vs, runs := Shrink(spec, defaultShrinkRuns)
			v.Reproducer = &shrunk
			v.ShrunkFaults = len(shrunk.Faults)
			v.ShrinkRuns = runs
			v.ShrunkViolations = vs
		}
		return out{v: v}
	})
	rep := &Report{Budget: b, BaseSeed: baseSeed, Storms: storms}
	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		rep.Verdicts = append(rep.Verdicts, o.v)
		if !o.v.OK {
			rep.Failures++
		}
	}
	return rep, nil
}

// Replay executes one spec (typically a persisted reproducer) and
// returns its invariant violations.
func Replay(spec scenario.Spec, workers int) ([]scenario.Violation, error) {
	res, err := bind.RunWorkers(spec, workers)
	if err != nil {
		return nil, err
	}
	return res.Violations(), nil
}

// WriteReproducer persists a verdict's shrunk spec under dir as a JSON
// spec file runnable with `dynabench scenario -file` (and
// `dynabench chaos -replay`). It returns the written path.
func WriteReproducer(dir string, v Verdict) (string, error) {
	if v.Reproducer == nil {
		return "", fmt.Errorf("chaos: storm %d has no reproducer", v.Storm)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-repro-%d.json", v.Seed))
	data, err := json.MarshalIndent(v.Reproducer, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}
