package sweep

import (
	"fmt"

	"dynatune/internal/scenario"
)

// Metric directions for the baseline gate: a regression is a mean moving
// the wrong way beyond the threshold.
const (
	BetterLower  = "lower"
	BetterHigher = "higher"
)

// metricDef is one headline metric of a measure: a stable column name, a
// direction, and an extractor pulling that repetition's samples out of an
// executed result. Sample-rich metrics (failover detection/OTS, read
// latencies) contribute every per-trial sample, so the cell summary's
// p50/p99 are over real distributions; scalar metrics contribute one
// sample per repetition.
type metricDef struct {
	name    string
	better  string
	extract func(res *scenario.Result) []float64
}

func scalar(v float64) []float64 { return []float64{v} }

// metricSet returns the measure's metric columns, fixed for the whole
// campaign (every cell shares the base's measure, fault schedule, and
// sharded-or-not shape, so the report's schema is stable). The spec must
// be a realized cell spec, not the raw base: the shards axis may have
// turned a single-group base sharded.
func metricSet(spec scenario.Spec) ([]metricDef, error) {
	switch spec.Measure {
	case scenario.MeasureFailover:
		if spec.TrialFault() == scenario.FaultTransferLeader {
			return []metricDef{
				{"handover_ms", BetterLower, func(r *scenario.Result) []float64 { return r.Failover.HandoverMs }},
				{"failed_trials", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Failover.FailedTrials)) }},
			}, nil
		}
		return []metricDef{
			{"detection_ms", BetterLower, func(r *scenario.Result) []float64 { return r.Failover.DetectionMs }},
			{"ots_ms", BetterLower, func(r *scenario.Result) []float64 { return r.Failover.OTSMs }},
			{"failed_trials", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Failover.FailedTrials)) }},
		}, nil
	case scenario.MeasureSeries:
		return []metricDef{
			{"ots_total_s", BetterLower, func(r *scenario.Result) []float64 { return scalar(r.Series.OTS.Total().Seconds()) }},
			{"elections", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Series.Elections)) }},
			{"timeouts", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Series.Timeouts)) }},
		}, nil
	case scenario.MeasureThroughput:
		if spec.Topology.Groups > 0 {
			defs := []metricDef{
				{"agg_rps", BetterHigher, func(r *scenario.Result) []float64 { return scalar(r.ShardRamps[0].AggThroughput) }},
				{"peak_rps", BetterHigher, func(r *scenario.Result) []float64 { return scalar(r.ShardRamps[0].PeakThroughput) }},
				{"p99_ms", BetterLower, func(r *scenario.Result) []float64 { return scalar(r.ShardRamps[0].P99Ms) }},
				{"lost", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.ShardRamps[0].Lost)) }},
			}
			for _, f := range spec.Faults {
				if f.Kind != scenario.FaultAddGroup && f.Kind != scenario.FaultRemoveGroup {
					continue
				}
				// A rebalancing cell gains the move's headline columns: the
				// keyspace fraction that moved and the mid-move tail. Every
				// cell of such a campaign rebalances (the base spec or the
				// groups-delta axis adds the fault to all of them), so the
				// report schema stays stable.
				defs = append(defs,
					// moves_done distinguishes a cell that completed its whole
					// rebalance schedule from one whose later moves were skipped
					// (overlap) or aborted (deadline) — without it, a +2 cell
					// that managed only one move would be indistinguishable in
					// the report from a genuine +2 run.
					metricDef{"moves_done", BetterHigher, func(r *scenario.Result) []float64 {
						rb := r.ShardRamps[0].Rebalance
						if rb == nil {
							return scalar(0)
						}
						return scalar(float64(rb.MovesDone()))
					}},
					metricDef{"moved_frac", BetterLower, func(r *scenario.Result) []float64 {
						rb := r.ShardRamps[0].Rebalance
						if rb == nil {
							return scalar(0)
						}
						var sum float64
						for _, mv := range rb.Moves {
							sum += mv.MovedFraction
						}
						return scalar(sum)
					}},
					metricDef{"mid_move_p99_ms", BetterLower, func(r *scenario.Result) []float64 {
						rb := r.ShardRamps[0].Rebalance
						if rb == nil {
							return scalar(0)
						}
						return scalar(rb.Mid.P99Ms)
					}},
				)
				break
			}
			return defs, nil
		}
		return []metricDef{
			{"peak_rps", BetterHigher, func(r *scenario.Result) []float64 {
				peak := 0.0
				for _, p := range r.Ramp.Points {
					if p.ThroughputRS > peak {
						peak = p.ThroughputRS
					}
				}
				return scalar(peak)
			}},
			{"mean_latency_ms", BetterLower, func(r *scenario.Result) []float64 {
				sum, n := 0.0, 0
				for _, p := range r.Ramp.Points {
					if p.LatencyMs > 0 {
						sum += p.LatencyMs
						n++
					}
				}
				if n == 0 {
					return scalar(0)
				}
				return scalar(sum / float64(n))
			}},
			{"lost", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Ramp.Lost)) }},
		}, nil
	case scenario.MeasureReads:
		return []metricDef{
			{"read_ms", BetterLower, func(r *scenario.Result) []float64 { return r.Reads.LatencyMs }},
			{"failed", BetterLower, func(r *scenario.Result) []float64 { return scalar(float64(r.Reads.Failed)) }},
		}, nil
	case scenario.MeasureMembership:
		return []metricDef{
			{"catchup_ms", BetterLower, func(r *scenario.Result) []float64 { return scalar(r.Membership.CatchupMs) }},
			{"promote_ms", BetterLower, func(r *scenario.Result) []float64 { return scalar(r.Membership.PromoteMs) }},
			{"post_failover_ots_ms", BetterLower, func(r *scenario.Result) []float64 { return scalar(r.Membership.PostFailoverOTSMs) }},
		}, nil
	}
	return nil, fmt.Errorf("sweep: no metric set for measure %q", spec.Measure)
}
