package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynatune/internal/shard"
)

// Front is the real-hardware counterpart of the shard layer's simulated
// router: a stateless HTTP front that partitions the keyspace across
// Raft groups with a shard.Router, forwards each /kv/{key} request to the
// owning group's current leader, and serves /multiget as the cross-shard
// read path. It learns leader moves from the X-Raft-Leader hint that
// servers attach to 421 responses and otherwise walks the group's
// members, so it needs no configuration beyond the member URLs.
type Front struct {
	router *shard.Router
	groups [][]string // per group: member base URLs, index = node ID-1
	client *http.Client

	mu     sync.Mutex
	leader []int // cached leader index per group
}

const (
	// maxMultiGetKeys bounds one /multiget request; larger batches are
	// rejected with 400 rather than amplified onto the backends.
	maxMultiGetKeys = 1024
	// multiGetParallel bounds concurrent backend reads per /multiget.
	multiGetParallel = 32
	// notReadyBackoff is how long forward() waits before retrying a
	// member that hinted at itself — an elected leader whose term no-op
	// or lease has not committed yet.
	notReadyBackoff = 50 * time.Millisecond
)

// NewFront builds a front over the given groups; groups[g] lists group
// g's member base URLs ("http://host:port") indexed by node ID-1.
func NewFront(groups [][]string) (*Front, error) {
	if len(groups) == 0 {
		return nil, errors.New("server: front needs at least one group")
	}
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("server: front group %d has no members", g)
		}
	}
	return &Front{
		router: shard.NewRouter(len(groups), 0),
		groups: groups,
		client: &http.Client{
			Timeout: 10 * time.Second,
			// The multiget fan-out sends up to multiGetParallel concurrent
			// requests at one leader; keep that many idle conns per host
			// or every burst re-handshakes ~30 TCP connections.
			Transport: &http.Transport{
				MaxIdleConnsPerHost: multiGetParallel,
			},
		},
		leader: make([]int, len(groups)),
	}, nil
}

// Router exposes the key→group mapping (tests and status pages).
func (f *Front) Router() *shard.Router { return f.router }

// ServeHTTP routes /kv/{key} and /multiget.
func (f *Front) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case strings.HasPrefix(r.URL.Path, "/kv/"):
		f.handleKV(w, r)
	case r.URL.Path == "/multiget":
		f.handleMultiGet(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (f *Front) handleKV(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/kv/")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	body, ok := readValue(w, r)
	if !ok {
		return
	}
	g := f.router.Route(key)
	path, leaderOnly := forwardURL(r)
	resp, payload, err := f.forward(r.Context(), g, r.Method, path, body, leaderOnly)
	if err != nil {
		http.Error(w, fmt.Sprintf("group %d: %v", g, err), http.StatusBadGateway)
		return
	}
	// Relay the Content-Type clients branch on; WriteHeader finalizes the
	// set. (X-Raft-Leader never reaches here — forward() consumes every
	// 421 internally.)
	if v := resp.Header.Get("Content-Type"); v != "" {
		w.Header().Set("Content-Type", v)
	}
	w.Header().Set("X-Shard-Group", strconv.Itoa(int(g)))
	w.WriteHeader(resp.StatusCode)
	w.Write(payload) //nolint:errcheck // best-effort response body
}

// forwardURL rebuilds the request's escaped path and query for
// forwarding, defaulting GETs to lease reads: a plain local read would be
// answered by whichever member the front happens to hit — a lagging
// follower serves stale or missing values and never sends the 421 that
// steers the front to the leader. Lease reads hold the documented
// per-group leader-local guarantee; clients can still pass
// consistency=local|linearizable explicitly. The escaped path (not the
// decoded r.URL.Path) must be forwarded so keys containing reserved
// characters ("a?b", "100%") survive the hop intact.
//
// The second return reports whether only a leader answers the request
// without a 421 (everything except explicit local reads) — the condition
// under which forward() may cache the responder as the group's leader.
func forwardURL(r *http.Request) (string, bool) {
	q := r.URL.Query()
	if r.Method == http.MethodGet && q.Get("consistency") == "" {
		q.Set("consistency", "lease")
	}
	leaderOnly := r.Method != http.MethodGet || q.Get("consistency") != "local"
	path := r.URL.EscapedPath()
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	return path, leaderOnly
}

// handleMultiGet fans ?key=a&key=b out across the owning groups and
// returns a JSON object of the found keys, values base64-encoded (JSON
// []byte encoding) so binary data survives. Reads are per-group
// leader-local, not a cross-shard snapshot.
func (f *Front) handleMultiGet(w http.ResponseWriter, r *http.Request) {
	keys := r.URL.Query()["key"]
	if len(keys) == 0 {
		http.Error(w, "missing key parameters", http.StatusBadRequest)
		return
	}
	if len(keys) > maxMultiGetKeys {
		http.Error(w, fmt.Sprintf("at most %d keys per multiget", maxMultiGetKeys), http.StatusBadRequest)
		return
	}
	seen := make(map[string]bool, len(keys))
	uniq := keys[:0]
	for _, k := range keys {
		if k == "" {
			http.Error(w, "empty key parameter", http.StatusBadRequest)
			return
		}
		if seen[k] {
			continue // repeated params would each cost a backend read
		}
		seen[k] = true
		uniq = append(uniq, k)
	}
	keys = uniq
	type result struct {
		key string
		val []byte
		ok  bool
		err error
	}
	// Fan out per key, not per group: hot-key workloads land many keys on
	// one group, and serializing those reads would cost K round trips. The
	// semaphore bounds concurrent backend connections so one request
	// cannot exhaust file descriptors or stampede the leaders.
	results := make(chan result, len(keys))
	sem := make(chan struct{}, multiGetParallel)
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g := f.router.Route(k)
			resp, payload, err := f.forward(r.Context(), g, http.MethodGet, "/kv/"+url.PathEscape(k)+"?consistency=lease", nil, true)
			switch {
			case err != nil:
				results <- result{key: k, err: err}
			case resp.StatusCode == http.StatusOK:
				results <- result{key: k, val: payload, ok: true}
			case resp.StatusCode == http.StatusNotFound:
				results <- result{key: k} // absent
			default:
				// A transient backend failure (e.g. a lease-read
				// timeout's 503) must not masquerade as key-absent.
				results <- result{key: k, err: fmt.Errorf("backend: %s", resp.Status)}
			}
		}(k)
	}
	wg.Wait()
	close(results)
	// Values are []byte so the JSON encoder emits base64: converting to
	// string would replace invalid-UTF-8 bytes with U+FFFD, silently
	// corrupting binary values that the single-key GET path relays
	// verbatim.
	out := make(map[string][]byte, len(keys))
	for res := range results {
		if res.err != nil {
			http.Error(w, fmt.Sprintf("key %q: %v", res.key, res.err), http.StatusBadGateway)
			return
		}
		if res.ok {
			out[res.key] = res.val
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // best-effort response body
}

// probeLeader fans GET /status out to every member of group g in
// parallel and returns the index of the member reporting itself leader.
// It is forward()'s fallback when hint-following loops: the 421 hints can
// all be stale after a leader change, but the new leader knows itself.
func (f *Front) probeLeader(ctx context.Context, g shard.GroupID) (int, bool) {
	members := f.groups[g]
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	type probe struct {
		idx    int
		leader bool
	}
	ch := make(chan probe, len(members))
	for i, base := range members {
		go func(i int, base string) {
			req, err := http.NewRequestWithContext(cctx, http.MethodGet, base+"/status", nil)
			if err != nil {
				ch <- probe{i, false}
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				ch <- probe{i, false}
				return
			}
			var st struct {
				State string `json:"state"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			ch <- probe{i, err == nil && st.State == "leader"}
		}(i, base)
	}
	for range members {
		if p := <-ch; p.leader {
			f.mu.Lock()
			f.leader[g] = p.idx
			f.mu.Unlock()
			return p.idx, true
		}
	}
	return 0, false
}

// retrySafe reports whether a failed attempt may be re-sent to another
// member. Reads always can. Writes can only when the request provably
// never reached a server — a dial failure — because the backend commands
// carry no dedup token: re-sending a write the leader already committed
// (response lost to a timeout or reset) would apply it twice, silently
// resurrecting overwritten values. 421 responses stay retryable for every
// method — the server answered without proposing.
func retrySafe(method string, err error) bool {
	if method == http.MethodGet {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// forward sends the request to group g's believed leader, following
// X-Raft-Leader hints and walking members on connection failure. It
// returns the final response with its body fully read. The walk is bound
// to ctx (the client's request lifetime) so retries and backoffs stop
// when the client is gone instead of pinning goroutines and multiget
// semaphore slots against dead members. leaderOnly marks requests only a
// leader answers without a 421; only those may update the cached leader
// — caching whoever answered an explicit local read would pin a follower
// in front of every subsequent write.
func (f *Front) forward(ctx context.Context, g shard.GroupID, method, pathAndQuery string, body []byte, leaderOnly bool) (*http.Response, []byte, error) {
	members := f.groups[g]
	f.mu.Lock()
	idx := f.leader[g]
	f.mu.Unlock()
	var lastErr error
	// failed remembers members that already failed this call: a stale
	// X-Raft-Leader hint pointing at a just-dead member must not ping-pong
	// the walk back to it until the attempt budget burns out while live
	// members go untried.
	failed := make(map[int]bool, len(members))
	// misdirected remembers members that answered 421 this call: two live
	// members with mutually stale leader views must not bounce the walk
	// between each other while the real leader goes untried.
	misdirected := make(map[int]bool, len(members))
	backedOff := false
	probed := false
	// One pass over the members plus slack for leader-hint hops.
	for attempt := 0; attempt < len(members)+2; attempt++ {
		for n := 0; failed[idx%len(members)] && n < len(members); n++ {
			idx++
		}
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		cur := idx % len(members)
		req, err := http.NewRequestWithContext(ctx, method, members[cur]+pathAndQuery, bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		resp, err := f.client.Do(req)
		if err != nil {
			if !retrySafe(method, err) {
				// A write may have reached the server before the failure
				// (timeout mid-propose, connection reset after send):
				// re-sending could apply it twice — commands carry no
				// client/seq dedup token — so surface the error instead.
				return nil, nil, fmt.Errorf("write outcome unknown: %w", err)
			}
			lastErr = err
			failed[cur] = true
			idx++ // member unreachable: try the next one
			continue
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if !retrySafe(method, err) {
				return nil, nil, fmt.Errorf("write outcome unknown: %w", err)
			}
			lastErr = err
			failed[cur] = true
			idx++
			continue
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			misdirected[cur] = true
			// Not the leader; follow the hint when present and not already
			// known dead or known stale, else walk on.
			hint, hintErr := strconv.Atoi(resp.Header.Get("X-Raft-Leader"))
			if hintErr == nil && (hint < 1 || hint > len(members) || (misdirected[hint-1] && hint-1 != cur)) && !probed {
				// Redirect loop or dead-end hint: the cached leader view is
				// stale on every member we've asked. Re-resolve once per
				// call by probing the whole group's /status in parallel —
				// the member that believes it is leader breaks the loop.
				probed = true
				if li, ok := f.probeLeader(ctx, g); ok {
					delete(misdirected, li) // probe evidence beats stale 421s
					delete(failed, li)
					idx = li
					lastErr = fmt.Errorf("group %d: no leader found", g)
					continue
				}
			}
			if hintErr == nil && hint >= 1 && hint <= len(members) && !failed[hint-1] && (!misdirected[hint-1] || hint-1 == cur) {
				if hint-1 == cur {
					// The member IS the leader but not ready to serve yet
					// (fresh election: term no-op or lease still
					// uncommitted). Immediate identical retries would burn
					// the whole budget inside that milliseconds-wide
					// window; wait one beat — once per call, so a slow
					// group adds bounded latency (this goroutine may hold
					// a multiget semaphore slot).
					if backedOff {
						idx++
						lastErr = fmt.Errorf("group %d: no leader found", g)
						continue
					}
					backedOff = true
					select {
					case <-ctx.Done():
						return nil, nil, ctx.Err()
					case <-time.After(notReadyBackoff):
					}
				}
				idx = hint - 1
			} else {
				idx++
			}
			lastErr = fmt.Errorf("group %d: no leader found", g)
			continue
		}
		// 2xx and 404 got past the handler's leader check (a non-leader
		// would have answered 421); 400s and 5xxs prove nothing.
		if leaderOnly && (resp.StatusCode < 300 || resp.StatusCode == http.StatusNotFound) {
			f.mu.Lock()
			f.leader[g] = cur
			f.mu.Unlock()
		}
		return resp, payload, nil
	}
	return nil, nil, lastErr
}
