package kv

import (
	"bytes"
	"testing"
	"testing/quick"

	"dynatune/internal/raft"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Command{
		{Op: OpPut, Client: 1, Seq: 1, Key: "k", Value: []byte("v")},
		{Op: OpDelete, Client: 7, Seq: 99, Key: "some/longer/key"},
		{Op: OpNoop},
		{Op: OpPut, Key: "", Value: nil},
		{Op: OpPut, Key: "empty-value", Value: []byte{}},
	}
	for _, c := range cases {
		got, err := Decode(Encode(c))
		if err != nil {
			t.Fatalf("decode(%+v): %v", c, err)
		}
		if got.Op != c.Op || got.Client != c.Client || got.Seq != c.Seq || got.Key != c.Key {
			t.Fatalf("round trip %+v → %+v", c, got)
		}
		if !bytes.Equal(got.Value, c.Value) && !(len(got.Value) == 0 && len(c.Value) == 0) {
			t.Fatalf("value mismatch: %q vs %q", got.Value, c.Value)
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{1, 2, 3},
		{99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // bad op
		Encode(Command{Op: OpPut, Key: "k"})[:20],                        // truncated
		append(Encode(Command{Op: OpPut, Key: "k"}), 0xFF),               // trailing junk
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d decoded without error", i)
		}
	}
}

// Property: Encode/Decode is lossless over arbitrary strings and bytes.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(client, seq uint64, key string, value []byte, opRaw uint8) bool {
		c := Command{Op: Op(opRaw%3) + OpPut, Client: client, Seq: seq, Key: key, Value: value}
		got, err := Decode(Encode(c))
		if err != nil {
			return false
		}
		return got.Op == c.Op && got.Client == c.Client && got.Seq == c.Seq &&
			got.Key == c.Key && bytes.Equal(got.Value, c.Value) ||
			(len(got.Value) == 0 && len(c.Value) == 0 && got.Key == c.Key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func entry(index uint64, c Command) raft.Entry {
	return raft.Entry{Term: 1, Index: index, Data: Encode(c)}
}

func TestStoreApply(t *testing.T) {
	s := NewStore()
	s.Apply([]raft.Entry{
		{Term: 1, Index: 1, Data: nil}, // leader noop
		entry(2, Command{Op: OpPut, Client: 1, Seq: 1, Key: "a", Value: []byte("1")}),
		entry(3, Command{Op: OpPut, Client: 1, Seq: 2, Key: "b", Value: []byte("2")}),
		entry(4, Command{Op: OpDelete, Client: 1, Seq: 3, Key: "a"}),
	})
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key present")
	}
	if v, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Fatalf("b = %q, %v", v, ok)
	}
	if s.AppliedIndex() != 4 {
		t.Fatalf("applied = %d", s.AppliedIndex())
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Applies() != 3 {
		t.Fatalf("applies = %d", s.Applies())
	}
}

func TestStoreReplayIgnored(t *testing.T) {
	s := NewStore()
	e := entry(1, Command{Op: OpPut, Client: 1, Seq: 1, Key: "k", Value: []byte("v1")})
	s.Apply([]raft.Entry{e})
	// Replaying the same index with different content must be ignored
	// (restart replay of already-applied prefix).
	s.Apply([]raft.Entry{entry(1, Command{Op: OpPut, Client: 1, Seq: 9, Key: "k", Value: []byte("v2")})})
	if v, _ := s.Get("k"); string(v) != "v1" {
		t.Fatalf("replay overwrote value: %q", v)
	}
}

func TestStoreIdempotence(t *testing.T) {
	s := NewStore()
	s.Apply([]raft.Entry{
		entry(1, Command{Op: OpPut, Client: 5, Seq: 1, Key: "x", Value: []byte("first")}),
		// Client retry of seq 1 lands at a later index (e.g. after a
		// leader change re-proposed it): must be suppressed.
		entry(2, Command{Op: OpPut, Client: 5, Seq: 1, Key: "x", Value: []byte("retry")}),
		entry(3, Command{Op: OpPut, Client: 5, Seq: 2, Key: "x", Value: []byte("second")}),
	})
	if v, _ := s.Get("x"); string(v) != "second" {
		t.Fatalf("x = %q", v)
	}
	if s.Dupes() != 1 {
		t.Fatalf("dupes = %d", s.Dupes())
	}
}

func TestStoreZeroClientNotDeduped(t *testing.T) {
	s := NewStore()
	s.Apply([]raft.Entry{
		entry(1, Command{Op: OpPut, Key: "k", Value: []byte("a")}),
		entry(2, Command{Op: OpPut, Key: "k", Value: []byte("b")}),
	})
	if v, _ := s.Get("k"); string(v) != "b" {
		t.Fatalf("k = %q", v)
	}
}

func TestStoreEqualAndSnapshot(t *testing.T) {
	a, b := NewStore(), NewStore()
	ents := []raft.Entry{
		entry(1, Command{Op: OpPut, Client: 1, Seq: 1, Key: "k1", Value: []byte("v1")}),
		entry(2, Command{Op: OpPut, Client: 1, Seq: 2, Key: "k2", Value: []byte("v2")}),
	}
	a.Apply(ents)
	b.Apply(ents)
	if !a.Equal(b) {
		t.Fatal("identical histories diverged")
	}
	b.Apply([]raft.Entry{entry(3, Command{Op: OpDelete, Client: 1, Seq: 3, Key: "k1"})})
	if a.Equal(b) {
		t.Fatal("different stores reported equal")
	}
	snap := a.Snapshot()
	snap["k1"][0] = 'X' // mutating the snapshot must not affect the store
	if v, _ := a.Get("k1"); string(v) != "v1" {
		t.Fatal("snapshot aliases store data")
	}
}

func TestStoreCorruptEntryPanics(t *testing.T) {
	s := NewStore()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on corrupt replicated entry")
		}
	}()
	s.Apply([]raft.Entry{{Term: 1, Index: 1, Data: []byte{0xFF, 0x01}}})
}

// Property: two stores applying the same entry sequence are always equal
// (determinism), regardless of batching boundaries.
func TestPropertyDeterministicApply(t *testing.T) {
	f := func(ops []uint8, split uint8) bool {
		var ents []raft.Entry
		for i, op := range ops {
			c := Command{
				Op:     Op(op%3) + OpPut,
				Client: uint64(op%4) + 1,
				Seq:    uint64(i + 1),
				Key:    string(rune('a' + op%8)),
				Value:  []byte{op},
			}
			ents = append(ents, entry(uint64(i+1), c))
		}
		a, b := NewStore(), NewStore()
		a.Apply(ents)
		// b applies in two batches split at an arbitrary point.
		cut := int(split) % (len(ents) + 1)
		b.Apply(ents[:cut])
		b.Apply(ents[cut:])
		return a.Equal(b) && a.AppliedIndex() == b.AppliedIndex()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := NewStore()
	a.Apply([]raft.Entry{
		entry(1, Command{Op: OpPut, Client: 1, Seq: 1, Key: "k1", Value: []byte("v1")}),
		entry(2, Command{Op: OpPut, Client: 2, Seq: 7, Key: "k2", Value: []byte("v2")}),
		entry(3, Command{Op: OpDelete, Client: 1, Seq: 2, Key: "k1"}),
	})
	snap := a.MarshalSnapshot()
	b := NewStore()
	if err := b.RestoreSnapshot(snap, 3); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("restored store differs")
	}
	if b.AppliedIndex() != 3 {
		t.Fatalf("applied = %d", b.AppliedIndex())
	}
	// Idempotence table survives: a replayed duplicate must be suppressed.
	b.Apply([]raft.Entry{entry(4, Command{Op: OpPut, Client: 2, Seq: 7, Key: "k2", Value: []byte("stale")})})
	if v, _ := b.Get("k2"); string(v) != "v2" {
		t.Fatalf("idempotence lost across snapshot: k2=%q", v)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	a := NewStore()
	b := NewStore()
	if err := b.RestoreSnapshot(a.MarshalSnapshot(), 0); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("empty snapshot restored non-empty store")
	}
}

func TestSnapshotCorruptRejected(t *testing.T) {
	s := NewStore()
	good := func() []byte {
		a := NewStore()
		a.Apply([]raft.Entry{entry(1, Command{Op: OpPut, Client: 1, Seq: 1, Key: "key", Value: []byte("value")})})
		return a.MarshalSnapshot()
	}()
	bad := [][]byte{
		nil,
		{1, 2, 3},
		good[:len(good)-3],
		good[:14],
	}
	for i, b := range bad {
		if err := s.RestoreSnapshot(b, 1); err == nil {
			t.Errorf("corrupt snapshot %d accepted", i)
		}
	}
}

// Property: snapshot round trip preserves arbitrary store contents.
func TestPropertySnapshotRoundTrip(t *testing.T) {
	f := func(keys []string, vals [][]byte) bool {
		a := NewStore()
		idx := uint64(0)
		for i, k := range keys {
			var v []byte
			if i < len(vals) {
				v = vals[i]
			}
			idx++
			a.Apply([]raft.Entry{entry(idx, Command{Op: OpPut, Client: uint64(i%3) + 1, Seq: idx, Key: k, Value: v})})
		}
		b := NewStore()
		if err := b.RestoreSnapshot(a.MarshalSnapshot(), idx); err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestApplySkipsConfChangeEntries(t *testing.T) {
	// Raft-internal configuration entries travel through the same Apply
	// batches as client commands; the state machine must skip them (their
	// Data is a ConfChange encoding, not a kv command) while still
	// advancing the applied index.
	s := NewStore()
	cmd := Encode(Command{Op: OpPut, Key: "a", Value: []byte("1")})
	s.Apply([]raft.Entry{
		{Term: 1, Index: 1, Data: cmd},
		{Term: 1, Index: 2, Type: raft.EntryConfChange, Data: raft.EncodeConfChange(raft.ConfChange{Op: raft.ConfAddVoter, Node: 9})},
		{Term: 1, Index: 3, Data: Encode(Command{Op: OpPut, Key: "b", Value: []byte("2")})},
	})
	if got := s.AppliedIndex(); got != 3 {
		t.Fatalf("applied index %d, want 3", got)
	}
	if v, ok := s.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("a = %q %v", v, ok)
	}
	if v, ok := s.Get("b"); !ok || string(v) != "2" {
		t.Fatalf("b = %q %v", v, ok)
	}
	if got := s.Applies(); got != 2 {
		t.Fatalf("applies = %d, want 2 (conf entry skipped)", got)
	}
}

func TestSortedKeysIsSortedAndComplete(t *testing.T) {
	s := NewStore()
	var ents []raft.Entry
	for i, k := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		ents = append(ents, raft.Entry{Index: uint64(i + 1), Term: 1, Type: raft.EntryNormal,
			Data: Encode(Command{Op: OpPut, Client: 1, Seq: uint64(i + 1), Key: k, Value: []byte("v")})})
	}
	s.Apply(ents)
	got := s.SortedKeys()
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("SortedKeys returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedKeys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if n := len(NewStore().SortedKeys()); n != 0 {
		t.Fatalf("empty store exported %d keys", n)
	}
}
