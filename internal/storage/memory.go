package storage

import (
	"sync"

	"dynatune/internal/raft"
)

// Memory is an in-process raft.Persister. The simulated testbed gives each
// node one Memory that outlives the node object itself: crashing a node
// discards the raft.Node (and its tuner — Dynatune's measurement state is
// volatile, paper §III-B), while the Memory plays the role of the disk the
// crash-recovery model assumes survives.
//
// It is safe for concurrent use so the real-network server can share it
// between its event loop and tests.
type Memory struct {
	mu  sync.Mutex
	rec recovery
	// counters for tests and the cost model
	stateSaves, appends, truncates, snapSaves uint64
}

// NewMemory returns an empty in-memory persister.
func NewMemory() *Memory { return &Memory{} }

var _ raft.Persister = (*Memory)(nil)

// SaveHardState implements raft.Persister.
func (m *Memory) SaveHardState(hs raft.HardState) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec.setHardState(hs)
	m.stateSaves++
	return nil
}

// AppendEntries implements raft.Persister.
func (m *Memory) AppendEntries(entries []raft.Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.appends++
	return m.rec.appendEntries(cloneEntries(entries))
}

// TruncateFrom implements raft.Persister.
func (m *Memory) TruncateFrom(index uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec.truncateFrom(index)
	m.truncates++
	return nil
}

// SaveSnapshot implements raft.Persister.
func (m *Memory) SaveSnapshot(snap raft.Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap.Data = append([]byte(nil), snap.Data...)
	snap.Voters = append([]raft.ID(nil), snap.Voters...)
	snap.Learners = append([]raft.ID(nil), snap.Learners...)
	m.rec.setSnapshot(snap)
	m.snapSaves++
	return nil
}

// Restored returns the state a restarting node should resume from, or nil
// if nothing was ever saved (fresh boot).
func (m *Memory) Restored() *raft.Restored {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.rec.restored()
	if r == nil {
		return nil
	}
	r.Entries = cloneEntries(r.Entries)
	if r.Snapshot != nil {
		r.Snapshot.Data = append([]byte(nil), r.Snapshot.Data...)
	}
	return r
}

// LastIndex returns the highest persisted entry index (snapshot floor if
// the suffix is empty).
func (m *Memory) LastIndex() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rec.lastIndex()
}

// Counters returns (hard-state saves, entry-append calls, truncations,
// snapshot saves) — instrumentation for tests and the CPU cost model.
func (m *Memory) Counters() (states, appends, truncates, snaps uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stateSaves, m.appends, m.truncates, m.snapSaves
}

func cloneEntries(entries []raft.Entry) []raft.Entry {
	out := make([]raft.Entry, len(entries))
	for i, e := range entries {
		out[i] = e
		if e.Data != nil {
			out[i].Data = append([]byte(nil), e.Data...)
		}
	}
	return out
}
