package cluster

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/raft"
)

// TestCrashRestartCatchesUpViaStreamedSnapshot is the persist-integration
// proof for the snapshot policy: a follower crashes, the leader's policy
// compacts past the follower's entire log while it is down, and the
// restarted process — recovered from its durable snapshot + suffix — can
// only catch up through a chunked streamed InstallSnapshot.
func TestCrashRestartCatchesUpViaStreamedSnapshot(t *testing.T) {
	c := New(Options{
		N: 3, Seed: 10, Persist: true,
		Snapshot:      raft.SnapshotPolicy{EveryEntries: 32, RetainEntries: 8},
		SnapshotChunk: 256,
	})
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(time.Second)
	lead = c.Leader()

	cl := &putter{c: c, cli: 7}
	for i := 0; i < 20; i++ {
		cl.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	c.Run(2 * time.Second)

	var victim raft.ID
	for i := 1; i <= 3; i++ {
		if raft.ID(i) != lead.ID() {
			victim = raft.ID(i)
			break
		}
	}
	appliedBefore := c.Store(victim).AppliedIndex()
	if appliedBefore == 0 {
		t.Fatal("victim never applied anything")
	}
	c.Crash(victim)

	// Commit far past the policy threshold while the victim is down, so
	// the survivors' logs truncate beyond its durable state.
	for i := 0; i < 150; i++ {
		cl.Put(fmt.Sprintf("k%03d", 20+i), []byte(fmt.Sprintf("w%d", i)))
		if i%16 == 15 {
			c.Run(200 * time.Millisecond)
		}
	}
	c.Run(2 * time.Second)
	lead = c.Leader()
	if lead == nil {
		t.Fatal("lost the leader while the victim was down")
	}
	if lead.FirstIndex() <= appliedBefore {
		t.Fatalf("leader first index %d never passed the victim's log (%d) — policy inactive?",
			lead.FirstIndex(), appliedBefore)
	}
	// The policy must also be bounding the live logs themselves.
	if n := lead.LogEntries(); n > 128 {
		t.Fatalf("leader live log %d entries despite policy (every 32, retain 8)", n)
	}

	c.Restart(victim)
	target := c.Store(lead.ID()).AppliedIndex()
	deadline := c.Now() + 30*time.Second
	for c.Now() < deadline && c.Store(victim).AppliedIndex() < target {
		c.Run(100 * time.Millisecond)
	}

	// The restarted node cannot have replayed entry-by-entry — the leader
	// no longer holds entries at its position — so a streamed snapshot
	// carried it: its log floor must sit at or past the leader's.
	if got := c.Node(victim).FirstIndex(); got <= appliedBefore {
		t.Fatalf("victim first index %d; a snapshot install would have rebased it past %d",
			got, appliedBefore)
	}
	if v, ok := c.Store(victim).Get("k169"); !ok || string(v) != "w149" {
		t.Fatalf("victim missing post-crash writes: %q %v", v, ok)
	}
	if err := c.StoresConsistent(); err != nil {
		t.Fatal(err)
	}
}
