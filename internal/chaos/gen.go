package chaos

import (
	"fmt"
	"sort"
	"time"

	"dynatune/internal/scenario"
)

// rng is the generator's own splitmix64 stream. The schedule must be a
// pure function of (budget, seed) alone — independent of math/rand
// global state, of the simulation engines, and of everything else in the
// process — so the package carries its own generator instead of sharing
// one.
type rng struct{ s uint64 }

func newRng(seed int64) *rng { return &rng{s: uint64(seed)} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// float64 returns a uniform draw in [0,1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0,n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// dur returns a uniform draw in [lo,hi].
func (r *rng) dur(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.float64()*float64(hi-lo))
}

// StormSeed derives storm i's seed from the campaign seed with a
// splitmix-style mix, so consecutive storms get decorrelated streams and
// the mapping is stable across worker counts (the storm index, not the
// execution order, is the input).
func StormSeed(base int64, storm int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(storm+1)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63)) // keep seeds positive for readable spec files
}

// Schedule samples one storm: a timed fault schedule drawn from the
// budget, compiled into a runnable scenario.Spec with the invariant
// suite armed. The spec is valid by construction (and verified — a
// generator bug surfaces as an error here, not as a mystery downstream).
func Schedule(b Budget, seed int64) (scenario.Spec, error) {
	b = b.withDefaults()
	if err := b.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	r := newRng(seed)
	rampDur := time.Duration(b.Steps) * b.StepDuration.D()
	window := time.Duration(b.WindowFrac * float64(rampDur))

	var faults []scenario.Fault

	// Rebalance first: its window is what the storm's faults overlap.
	var rbAt, rbSpan time.Duration
	hasRB := r.float64() < b.Rebalance
	if hasRB {
		kind := scenario.FaultAddGroup
		if b.Groups > 1 && r.intn(2) == 1 {
			kind = scenario.FaultRemoveGroup
		}
		// Fire in the first half of the window so the drain has room.
		rbAt = r.dur(0, window/2)
		rbSpan = window - rbAt
		faults = append(faults, scenario.Fault{
			Kind: kind,
			At:   scenario.Duration(rbAt),
		})
	}

	n := b.MinFaults + r.intn(b.MaxFaults-b.MinFaults+1)
	degraded := false
	for i := 0; i < n; i++ {
		kind := b.sampleKind(r, degraded)
		if kind == "" {
			break // every weight zero: an (unusual but legal) empty pool
		}
		at := r.dur(0, window)
		if hasRB && r.intn(2) == 0 {
			// Overlap bias: half the faults land inside the migration window,
			// where the interesting interleavings live.
			at = rbAt + r.dur(0, rbSpan)
		}
		f := scenario.Fault{
			Kind:     kind,
			At:       scenario.Duration(at),
			Duration: scenario.Duration(r.dur(b.MinDur.D(), b.MaxDur.D())),
		}
		switch kind {
		case scenario.FaultPauseNode, scenario.FaultCrashNode, scenario.FaultPartitionNode:
			// Group-addressed: the target is the group's leader at fire time.
			f.Group = 1 + r.intn(b.Groups)
		case scenario.FaultLinkDown:
			f.From = 1 + r.intn(b.NodesPerGroup)
			f.To = 1 + r.intn(b.NodesPerGroup-1)
			if f.To >= f.From {
				f.To++
			}
		case scenario.FaultPartitionGroups:
			// Split the physical mesh: one minority node vs the rest.
			lone := 1 + r.intn(b.NodesPerGroup)
			f.GroupA = []int{lone}
			for id := 1; id <= b.NodesPerGroup; id++ {
				if id != lone {
					f.GroupB = append(f.GroupB, id)
				}
			}
		case scenario.FaultDegradeLinks:
			degraded = true // at most one per storm: pulses must not overlap
			f.RTT = scenario.Duration(r.dur(50*time.Millisecond, 250*time.Millisecond))
			f.Jitter = scenario.Duration(f.RTT.D() / 5)
			f.Loss = 0.3 * r.float64()
			if r.float64() < b.Reorder {
				f.Reorder = scenario.Duration(f.Duration.D() / 8)
				f.ReorderEvery = scenario.Duration(f.Duration.D() / 4)
			}
		}
		faults = append(faults, f)
	}

	// Chronological order: the schedule reads as a timeline, and the
	// shrinker's drop-one passes stay stable.
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].At < faults[j].At })

	inv := scenario.Invariants{}
	if b.Invariants != nil {
		inv = *b.Invariants
	}
	spec := scenario.Spec{
		Name:        fmt.Sprintf("chaos-storm-%d", seed),
		Description: "sampled chaos-storm fault schedule",
		Measure:     scenario.MeasureThroughput,
		Topology: scenario.Topology{
			N:             b.NodesPerGroup,
			Groups:        b.Groups,
			NodesPerGroup: b.NodesPerGroup,
			Persist:       b.Persist,
			SnapshotEvery: b.SnapshotEvery, SnapshotRetain: b.SnapshotRetain,
			SnapshotChunk: b.SnapshotChunk,
		},
		Variant: scenario.VariantSpec{Name: b.Variant},
		Workload: &scenario.Workload{
			StartRPS:     b.RPS,
			StepRPS:      b.StepRPS,
			Steps:        b.Steps,
			StepDuration: b.StepDuration,
			Keys:         b.Keys,
		},
		Seed:       seed,
		Faults:     faults,
		Invariants: &inv,
	}
	if err := spec.Validate(); err != nil {
		return scenario.Spec{}, fmt.Errorf("chaos: generated spec invalid (generator bug): %w", err)
	}
	return spec, nil
}

// sampleKind draws one fault kind by budget weight, in fixed pool order.
// A second degrade-links is never drawn (its weight is redistributed):
// overlapping degrade pulses restore last-writer-wins, which would leave
// the mesh degraded past the heal.
func (b Budget) sampleKind(r *rng, degraded bool) scenario.FaultKind {
	total := 0.0
	for _, p := range kindPool {
		if degraded && p.kind == scenario.FaultDegradeLinks {
			continue
		}
		total += b.weightOf(p.kind)
	}
	if total <= 0 {
		return ""
	}
	x := r.float64() * total
	for _, p := range kindPool {
		if degraded && p.kind == scenario.FaultDegradeLinks {
			continue
		}
		x -= b.weightOf(p.kind)
		if x < 0 {
			return p.kind
		}
	}
	return kindPool[0].kind // float round-off: fall back to the first kind
}
