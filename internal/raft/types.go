// Package raft implements the Raft consensus algorithm (Ongaro &
// Ousterhout, USENIX ATC '14) as used by etcd, including the behaviours
// the Dynatune paper depends on: pre-vote with leader stickiness,
// check-quorum, randomized election timeouts, per-peer heartbeat timers,
// and heartbeat metadata hooks for network measurement.
//
// A Node is a purely reactive state machine: inputs arrive via Step
// (messages), OnTimer (timer expirations) and Propose (client commands);
// outputs leave via the Runtime interface (message sends, timer arming),
// an Apply callback (committed entries) and a Tracer (observability).
// The same Node runs on the discrete-event simulator and on real
// hardware — only the Runtime differs.
package raft

import (
	"fmt"
	"math/rand"
	"time"
)

// ID identifies a node. None (0) means "no node".
type ID uint64

// None is the absent node ID.
const None ID = 0

// State is a node's role.
type State int

const (
	StateFollower State = iota
	StatePreCandidate
	StateCandidate
	StateLeader
)

func (s State) String() string {
	switch s {
	case StateFollower:
		return "follower"
	case StatePreCandidate:
		return "pre-candidate"
	case StateCandidate:
		return "candidate"
	case StateLeader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MsgType enumerates protocol messages.
type MsgType int

const (
	// MsgApp carries log entries (and commit index) from leader to follower.
	MsgApp MsgType = iota
	// MsgAppResp acknowledges or rejects an MsgApp.
	MsgAppResp
	// MsgHeartbeat is the leader's liveness beacon; it carries the commit
	// index and, under Dynatune, measurement metadata (paper Fig. 3).
	MsgHeartbeat
	// MsgHeartbeatResp answers a heartbeat; under Dynatune it echoes the
	// send timestamp and piggybacks the tuned heartbeat interval.
	MsgHeartbeatResp
	// MsgPreVote asks for a non-binding vote at term+1 without
	// incrementing terms (etcd's pre-vote phase, paper §II-A).
	MsgPreVote
	MsgPreVoteResp
	// MsgVote is a RequestVote RPC.
	MsgVote
	MsgVoteResp
	// MsgSnap installs a state-machine snapshot on a follower whose log
	// tail was compacted away on the leader (InstallSnapshot, Raft §7).
	MsgSnap
	// MsgTimeoutNow tells the transfer target to campaign immediately
	// (leadership transfer, as in etcd): it skips pre-vote and overrides
	// voters' leases, moving leadership with near-zero out-of-service time
	// for planned maintenance.
	MsgTimeoutNow
	// MsgSnapResp acknowledges one chunk of a streamed snapshot transfer
	// (Hint carries the receiver's byte position — the resume point).
	// The final chunk is acknowledged by a normal MsgAppResp at the
	// snapshot index instead, exactly like a single-envelope install.
	MsgSnapResp
)

func (m MsgType) String() string {
	switch m {
	case MsgApp:
		return "MsgApp"
	case MsgAppResp:
		return "MsgAppResp"
	case MsgHeartbeat:
		return "MsgHeartbeat"
	case MsgHeartbeatResp:
		return "MsgHeartbeatResp"
	case MsgPreVote:
		return "MsgPreVote"
	case MsgPreVoteResp:
		return "MsgPreVoteResp"
	case MsgVote:
		return "MsgVote"
	case MsgVoteResp:
		return "MsgVoteResp"
	case MsgSnap:
		return "MsgSnap"
	case MsgTimeoutNow:
		return "MsgTimeoutNow"
	case MsgSnapResp:
		return "MsgSnapResp"
	default:
		return fmt.Sprintf("MsgType(%d)", int(m))
	}
}

// EntryType distinguishes client commands from cluster-configuration
// changes (etcd's EntryNormal vs EntryConfChange).
type EntryType uint8

const (
	// EntryNormal carries a client command (or a nil leader no-op).
	EntryNormal EntryType = iota
	// EntryConfChange carries an encoded ConfChange; state machines must
	// skip it — the raft layer applies it to the membership when the entry
	// is applied.
	EntryConfChange
)

func (t EntryType) String() string {
	switch t {
	case EntryNormal:
		return "normal"
	case EntryConfChange:
		return "conf-change"
	default:
		return fmt.Sprintf("entry-type(%d)", uint8(t))
	}
}

// Entry is one log record.
type Entry struct {
	Term  uint64
	Index uint64
	Type  EntryType
	Data  []byte
}

// HeartbeatMeta is the measurement metadata Dynatune adds to heartbeats
// (paper §III-C): a per-pair sequence number for loss detection and the
// leader-local send timestamp plus the previously measured RTT for the
// follower's statistics.
type HeartbeatMeta struct {
	// Seq is the sequential heartbeat ID on this leader→follower pair.
	Seq uint64
	// SendTime is the leader's local clock at transmission, in nanoseconds.
	SendTime int64
	// RTT is the last RTT the leader measured for this pair, in
	// nanoseconds; zero until the first response returns.
	RTT int64
}

// HeartbeatRespMeta rides on heartbeat responses.
type HeartbeatRespMeta struct {
	// EchoTime returns the heartbeat's SendTime so the leader can compute
	// the RTT from its own clock alone (robust to loss and reordering,
	// paper §III-C1).
	EchoTime int64
	// Interval is the follower's requested heartbeat interval h in
	// nanoseconds (paper §III-D2), zero for "no change".
	Interval int64
}

// Message is the unit of communication between nodes.
type Message struct {
	Type MsgType
	From ID
	To   ID
	Term uint64

	// Log coordinates: for MsgApp, Index/LogTerm describe the entry
	// preceding Entries; for votes they describe the candidate's last
	// entry; for MsgAppResp, Index is the follower's resulting last index.
	Index   uint64
	LogTerm uint64
	Commit  uint64
	Entries []Entry

	// Reject marks a refused append or vote; Hint carries the follower's
	// last index to accelerate conflict resolution.
	Reject bool
	Hint   uint64
	// Transfer marks votes raised by a leadership transfer: voters grant
	// them even while holding a leader lease (the old leader asked for
	// this election).
	Transfer bool

	HB     HeartbeatMeta
	HBResp HeartbeatRespMeta

	// ReadCtx threads a linearizable-read context through a heartbeat
	// round (etcd's ReadIndex): the leader stamps outgoing heartbeats with
	// the newest pending read's context, followers echo it, and a quorum of
	// echoes confirms every read registered at or before that context.
	ReadCtx uint64

	// Snap carries an opaque state-machine snapshot for MsgSnap; Index and
	// LogTerm describe its last included entry. SnapVoters/SnapLearners
	// carry the membership at that point — conf changes compacted into the
	// snapshot are invisible in the log, so the receiver adopts these.
	//
	// Large snapshots stream as a chunk sequence: SnapTotal is the full
	// snapshot size and SnapOffset the byte position of this chunk's Snap
	// slice. SnapTotal == 0 marks the legacy single-envelope form (Snap is
	// the whole snapshot).
	Snap         []byte
	SnapVoters   []ID
	SnapLearners []ID
	SnapOffset   uint64
	SnapTotal    uint64
}

// TimerKind distinguishes the node's timers.
type TimerKind int

const (
	// TimerElection is the follower/candidate election timer; the leader
	// also arms it for check-quorum.
	TimerElection TimerKind = iota
	// TimerHeartbeat is the leader's per-peer heartbeat timer. Dynatune
	// requires one per follower because each pair has its own h (paper
	// §IV-E); the baseline simply arms them all with the same interval.
	TimerHeartbeat
)

// Runtime is everything a Node needs from its environment. The simulator
// and the real-time server both implement it.
type Runtime interface {
	// Now returns the node-local monotonic clock.
	Now() time.Duration
	// Send transmits m to m.To (best effort; the transport decides class
	// and reliability).
	Send(m Message)
	// SetTimer (re)arms the timer (kind, peer) to fire OnTimer at absolute
	// time at. peer is None for TimerElection.
	SetTimer(kind TimerKind, peer ID, at time.Duration)
	// CancelTimer disarms the timer if armed.
	CancelTimer(kind TimerKind, peer ID)
	// Rand is the node's randomness source (deterministic under the
	// simulator).
	Rand() *rand.Rand
}

// EventKind enumerates trace events, the stand-in for the etcd log lines
// the paper parses to measure detection and OTS times (§IV-A).
type EventKind int

const (
	// EventTimeout fires when an election timer expires on a node that
	// believed a leader existed — the paper's "failure detected" instant.
	EventTimeout EventKind = iota
	// EventCampaign fires when a node starts a pre-vote or vote round.
	EventCampaign
	// EventLeaderElected fires on the new leader when it wins.
	EventLeaderElected
	// EventStateChange fires on any role transition.
	EventStateChange
	// EventTermChange fires when the current term advances.
	EventTermChange
	// EventRevert fires when a pre-candidate/candidate hears a live leader
	// and steps back to follower (Fig. 6b's aborted false detection).
	EventRevert
	// EventSplitVote fires on a candidate whose election round ended
	// without a winner (timer expired while campaigning).
	EventSplitVote
	// EventTransfer fires on a leader that initiated a leadership
	// transfer.
	EventTransfer
	// EventConfChange fires when a node applies a committed membership
	// change.
	EventConfChange
)

func (k EventKind) String() string {
	switch k {
	case EventTimeout:
		return "timeout"
	case EventCampaign:
		return "campaign"
	case EventLeaderElected:
		return "leader-elected"
	case EventStateChange:
		return "state-change"
	case EventTermChange:
		return "term-change"
	case EventRevert:
		return "revert"
	case EventSplitVote:
		return "split-vote"
	case EventTransfer:
		return "transfer"
	case EventConfChange:
		return "conf-change"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one trace record.
type Event struct {
	Time  time.Duration
	Node  ID
	Kind  EventKind
	Term  uint64
	State State
	Lead  ID
	// RandomizedTimeout is the node's randomized election timeout at the
	// moment of the event (what Fig. 6 plots).
	RandomizedTimeout time.Duration
}

// Tracer receives trace events. Implementations must not call back into
// the node.
type Tracer interface {
	Trace(Event)
}

// NopTracer discards events.
type NopTracer struct{}

// Trace implements Tracer.
func (NopTracer) Trace(Event) {}
