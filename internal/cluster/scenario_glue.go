package cluster

import (
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/workload"
)

// This file binds the declarative scenario engine to this package's
// testbed. The engine (internal/scenario) owns all experiment
// orchestration — trial loops, fault injection, probes, sharded
// parallelism — and drives *Cluster through the scenario.Cluster
// interface; this env supplies the constructors, keeping per-shard seed
// derivation in the engine and cluster construction here.

// ScenarioEnv returns the execution environment for specs bound to these
// options: every cluster the engine asks for is built from opts with the
// engine-derived seed, and trial shards run on the parallel runner
// (RunSharded), so results are byte-identical for any worker count.
func (o Options) ScenarioEnv() scenario.Env {
	return scenario.Env{
		Variant: o.Variant.Name,
		NewCluster: func(seed int64) scenario.Cluster {
			co := o
			co.Seed = seed
			return New(co)
		},
		NewLoadGen: func(c scenario.Cluster, ramp workload.Ramp, clientRTT time.Duration) scenario.LoadGen {
			return NewLoadGen(c.(*Cluster), ramp, clientRTT)
		},
		Workers:   TrialWorkers(),
		RunShards: RunShardsOn,
	}
}

// RunShardsOn adapts RunSharded to the scenario engine's side-effect
// contract: run(i) fills the engine's own result slot for shard i, so the
// merge order is the engine's and the determinism guarantee is
// RunSharded's.
func RunShardsOn(workers, shards int, run func(shard int)) {
	RunSharded(workers, shards, func(i int) struct{} {
		run(i)
		return struct{}{}
	})
}

// specFor seeds a Spec with the descriptive half of these options; the
// caller fills the measurement half. The spec's topology/network sections
// document what the env will build — execution flows through ScenarioEnv,
// which uses opts verbatim (including pieces a JSON spec cannot carry,
// like custom tuner closures and cost models).
func specFor(o Options) scenario.Spec {
	d := o.withDefaults()
	return scenario.Spec{
		Topology: scenario.Topology{
			N: d.N, Persist: d.Persist, InitialMembers: d.InitialMembers,
			GeoJitterFrac: d.GeoJitterFrac, GeoLoss: d.GeoLoss,
			Regions: regionNames(d),
		},
		Network: scenario.NetFrom(d.Profile),
		Variant: scenario.VariantSpec{Name: d.Variant.Name},
		Seed:    o.Seed,
	}
}

func regionNames(o Options) []string {
	if len(o.Regions) == 0 {
		return nil
	}
	out := make([]string, len(o.Regions))
	for i, r := range o.Regions {
		out[i] = r.String()
	}
	return out
}

// mustRun executes a spec the wrappers constructed; their specs are valid
// by construction, so an error is a programming bug.
func mustRun(spec scenario.Spec, env scenario.Env) *scenario.Result {
	res, err := scenario.Run(spec, env)
	if err != nil {
		panic(err)
	}
	return res
}
