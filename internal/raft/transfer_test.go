package raft

import (
	"fmt"
	"testing"
	"time"
)

func TestLeadershipTransferBasic(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	var target *Node
	for _, n := range c.nodes {
		if n != lead {
			target = n
			break
		}
	}
	if err := lead.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if target.State() != StateLeader {
		t.Fatalf("target state = %v, want leader", target.State())
	}
	if lead.State() == StateLeader {
		t.Fatal("old leader kept leading")
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestTransferNearZeroOTS(t *testing.T) {
	// The point of planned handover: OTS is bounded by one RTT, not by a
	// detection timeout.
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	var target *Node
	for _, n := range c.nodes {
		if n != lead {
			target = n
			break
		}
	}
	start := c.eng.Now()
	if err := lead.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	var electedAt time.Duration
	for _, ev := range c.events {
		if ev.Kind == EventLeaderElected && ev.Time > start {
			electedAt = ev.Time
			break
		}
	}
	if electedAt == 0 {
		t.Fatal("no election after transfer")
	}
	handover := electedAt - start
	// RTT 10ms: timeout-now (half RTT) + vote round (one RTT) ≈ 15-30ms;
	// crash failover with Et=1000ms would take >1000ms.
	if handover > 100*time.Millisecond {
		t.Fatalf("handover took %v, want ≈1.5 RTT", handover)
	}
}

func TestTransferToLaggingFollowerCatchesUpFirst(t *testing.T) {
	opts := defaultOpts()
	opts.n = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	var target *Node
	for _, n := range c.nodes {
		if n != lead {
			target = n
			break
		}
	}
	// Lag the target: cut its inbound link while proposing.
	c.net.SetDown(int(lead.ID()-1), int(target.ID()-1), true)
	for i := 0; i < 30; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(500 * time.Millisecond)
	if err := lead.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	// Transfer must stall while the target is unreachable…
	c.run(200 * time.Millisecond)
	if target.State() == StateLeader {
		t.Fatal("lagging target became leader without the log")
	}
	// …and complete once it can catch up.
	c.net.SetDown(int(lead.ID()-1), int(target.ID()-1), false)
	c.run(5 * time.Second)
	cur := c.leader()
	if cur == nil {
		t.Fatal("no leader after heal")
	}
	// Either the transfer completed (target leads) or it timed out and the
	// old leader kept the seat — both are safe; the log must be intact.
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
	if cur == target && target.Log().LastIndex() < 30 {
		t.Fatal("target led without catching up")
	}
}

func TestProposalsBlockedDuringTransfer(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	// Make peer 2 lag so the transfer stays pending.
	if _, err := n.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := n.TransferLeadership(2); err != nil {
		t.Fatal(err)
	}
	if !n.Transferring() {
		t.Fatal("transfer not pending")
	}
	if _, err := n.Propose([]byte("y")); err != ErrTransferring {
		t.Fatalf("Propose during transfer: %v, want ErrTransferring", err)
	}
	if _, _, err := n.ProposeBatch([][]byte{{1}}); err != ErrTransferring {
		t.Fatalf("ProposeBatch during transfer: %v", err)
	}
}

func TestTransferTimesOutAndAborts(t *testing.T) {
	opts := defaultOpts()
	opts.n = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	var target *Node
	for _, n := range c.nodes {
		if n != lead {
			target = n
			break
		}
	}
	// Kill the target, then try to transfer to it.
	c.crash(target.ID())
	c.run(100 * time.Millisecond)
	if err := lead.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	// After the check-quorum sweep (≈Et), the transfer must have aborted
	// and proposals must flow again.
	c.run(3 * time.Second)
	if lead.Transferring() {
		t.Fatal("transfer still pending after timeout")
	}
	if _, err := lead.Propose([]byte("alive")); err != nil {
		t.Fatalf("Propose after aborted transfer: %v", err)
	}
}

func TestTransferValidation(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	// Not leader.
	if err := n.TransferLeadership(2); err != ErrNotLeader {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
	electIsolated(t, n, rt)
	// Unknown peer.
	if err := n.TransferLeadership(42); err != ErrUnknownPeer {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
	// Self-transfer is a no-op.
	if err := n.TransferLeadership(1); err != nil {
		t.Fatalf("self transfer: %v", err)
	}
	if n.Transferring() {
		t.Fatal("self transfer left pending state")
	}
}

func TestTransferVoteOverridesLease(t *testing.T) {
	// A voter inside its leader lease must still grant a Transfer vote.
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: 1})
	rt.take()
	rt.now += 50 * time.Millisecond // well inside the 1s lease
	n.Step(Message{Type: MsgVote, From: 3, To: 1, Term: 2, Transfer: true})
	resp, ok := rt.lastOfType(MsgVoteResp)
	if !ok {
		t.Fatal("no response to transfer vote")
	}
	if resp.Reject {
		t.Fatal("transfer vote rejected by lease holder")
	}
}

func TestTransferWithTunedTimeouts(t *testing.T) {
	// Transfer under aggressive (Dynatune-like) tuned timeouts: the
	// handover must not trigger false detections afterwards.
	opts := defaultOpts()
	opts.n = 5
	opts.tuners = func(int) Tuner { return NewStaticTuner(120*time.Millisecond, 40*time.Millisecond) }
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	c.run(4 * time.Second) // tuning engaged
	var target *Node
	for _, n := range c.nodes {
		if n != lead {
			target = n
			break
		}
	}
	if err := lead.TransferLeadership(target.ID()); err != nil {
		t.Fatal(err)
	}
	c.run(5 * time.Second)
	if c.leader() != target {
		t.Fatalf("leadership not at target (leader=%v)", c.leader())
	}
	// The cluster re-tunes under the new leader: its followers' timers
	// must drop below the fallback again.
	if got := target.RandomizedTimeout(); got <= 0 {
		t.Fatal("no randomized timeout")
	}
	settled := c.eng.Now()
	c.run(30 * time.Second)
	for _, ev := range c.events {
		if ev.Kind == EventTimeout && ev.Time > settled+5*time.Second {
			t.Fatalf("spurious timeout after transfer at %v", ev.Time)
		}
	}
}
