package storage

import (
	"fmt"
	"testing"

	"dynatune/internal/raft"
)

func benchEntries(n int, size int) [][]raft.Entry {
	payload := make([]byte, size)
	out := make([][]raft.Entry, n)
	for i := range out {
		out[i] = []raft.Entry{{Term: 1, Index: uint64(i + 1), Data: payload}}
	}
	return out
}

// BenchmarkWALAppendNoSync measures the WAL's framing/bookkeeping cost
// alone (no fsync) — the per-entry floor for the simulated persistence
// cost model.
func BenchmarkWALAppendNoSync(b *testing.B) {
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			w, _, err := Open(b.TempDir(), WALOptions{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			batches := benchEntries(b.N, size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.AppendEntries(batches[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendSync includes the fsync after every record — what a
// real deployment pays per committed batch (persist-before-send).
func BenchmarkWALAppendSync(b *testing.B) {
	w, _, err := Open(b.TempDir(), WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	batches := benchEntries(b.N, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AppendEntries(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALRecovery measures cold-start replay of a 10k-entry chain —
// the restart cost the crash-recovery experiment's downtime includes.
func BenchmarkWALRecovery(b *testing.B) {
	dir := b.TempDir()
	w, _, err := Open(dir, WALOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range benchEntries(10000, 64) {
		if err := w.AppendEntries(batch); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w2, restored, err := Open(dir, WALOptions{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(restored.Entries) != 10000 {
			b.Fatalf("replayed %d entries", len(restored.Entries))
		}
		w2.Close()
	}
}

// BenchmarkMemoryPersister measures the simulator-side persister, which
// sits on every simulated proposal when Options.Persist is set.
func BenchmarkMemoryPersister(b *testing.B) {
	m := NewMemory()
	batches := benchEntries(b.N, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.AppendEntries(batches[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotCompaction measures the rewrite compaction triggered
// by SaveSnapshot over a 1000-entry suffix.
func BenchmarkSnapshotCompaction(b *testing.B) {
	w, _, err := Open(b.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	idx := uint64(0)
	for i := 0; i < 2000; i++ {
		idx++
		if err := w.AppendEntries([]raft.Entry{{Term: 1, Index: idx, Data: make([]byte, 64)}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snapAt := idx - 1000
		if err := w.SaveSnapshot(raft.Snapshot{Index: snapAt, Term: 1, Data: []byte("s")}); err != nil {
			b.Fatal(err)
		}
		idx++
		if err := w.AppendEntries([]raft.Entry{{Term: 1, Index: idx, Data: make([]byte, 64)}}); err != nil {
			b.Fatal(err)
		}
	}
}
