package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/metrics"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
	"dynatune/internal/storage"
	"dynatune/internal/trace"
	"dynatune/internal/workload"
)

// Cluster is the slice of the single-group testbed the engine drives.
// *cluster.Cluster satisfies it as-is; the interface exists so this
// package can orchestrate experiments without importing the testbed
// (cluster imports scenario to expose its Run* API as thin spec
// constructors, so the dependency must point this way).
type Cluster interface {
	Start()
	Engine() *sim.Engine
	Recorder() *trace.Recorder
	Network() *netsim.Network[raft.Message]
	Run(d time.Duration)
	Now() time.Duration
	N() int
	Node(id raft.ID) *raft.Node
	Leader() *raft.Node
	WaitLeader(timeout time.Duration) *raft.Node
	Pause(id raft.ID)
	Resume(id raft.ID)
	Paused(id raft.ID) bool
	SetClockSkew(id raft.ID, offset time.Duration, drift float64)
	Crash(id raft.ID)
	Restart(id raft.ID)
	PauseLeader() (raft.ID, time.Duration)
	CrashLeader() (raft.ID, time.Duration)
	FollowerRandomizedTimeouts() []time.Duration
	KthSmallestRandomizedTimeout(k int) time.Duration
	LinkRTT(a, b raft.ID) time.Duration
	LeaderMeanHeartbeatInterval() time.Duration
	CPUPercent(id raft.ID, window time.Duration) float64
	DynatuneTuner(id raft.ID) *dynatune.Tuner
	Persister(id raft.ID) *storage.Memory
	CompactAll(keepLast uint64)
}

// LoadGen is the single-group open-loop generator (cluster.LoadGen).
type LoadGen interface {
	Start()
	Results() []Step
	ProposeErrors() uint64
	Lost() uint64
	Pending() int
}

// MultiCluster is the sharded multi-Raft testbed (shard.Cluster). The
// rebalance methods drive the dynamic group lifecycle: AddGroupLive and
// RemoveGroupLive start an asynchronous drain → cutover → serve migration
// on the shared engine (the rebalance fault kinds fire them mid-run), and
// Rebalances reports the completed moves.
type MultiCluster interface {
	Start()
	Run(d time.Duration)
	WaitLeaders(timeout time.Duration) bool
	Groups() int
	Engine() *sim.Engine
	AddGroupLive(deadline time.Duration) error
	RemoveGroupLive(deadline time.Duration) error
	Rebalancing() bool
	Rebalances() []RebalanceStats
	// PhysLinks returns the consolidated deployment's shared physical
	// mesh — the fault surface for link-level kinds in sharded runs: one
	// cut affects every group riding the link. Nil when the deployment
	// runs per-group meshes (link faults are then unsupported).
	PhysLinks() *netsim.Network[netsim.Envelope[raft.Message]]

	// Group-addressed fault surface: the *-node kinds carrying a Group
	// target resolve and act on one serving group's current leader.
	// Group indices are 0-based serving slots (g < Groups()).
	GroupLeader(g int) raft.ID
	PauseGroupNode(g int, id raft.ID)
	ResumeGroupNode(g int, id raft.ID)
	GroupNodePaused(g int, id raft.ID) bool
	CrashGroupNode(g int, id raft.ID)
	RestartGroupNode(g int, id raft.ID)

	// Invariant-checker probe surface (see invariant.go): per-group live
	// replica stores for convergence and double-apply checks, and a read
	// through the router's MultiGet path with a servability verdict.
	GroupStores(g int) []StoreProbe
	ProbeRead(key string) (v []byte, found, servable bool)

	// MaxLogStats samples the worst per-node live Raft log across serving
	// groups — entries and bytes — the footprint the snapshot policy is
	// meant to bound. The ramp samples it once a second.
	MaxLogStats() (entries int, bytes uint64)
}

// StoreProbe is the read-only slice of a replica state machine the
// invariant checker consumes; *kv.Store satisfies it. Keeping it an
// interface here lets the checker's detectors be negative-tested against
// deliberately-broken store wrappers without a simulation in the loop.
type StoreProbe interface {
	Get(key string) ([]byte, bool)
	SortedKeys() []string
	Dupes() uint64
}

// MultiLoadGen is the keyed sharded generator (shard.LoadGen).
type MultiLoadGen interface {
	Start()
	Results() []Step
	P99Ms() float64
	TotalCompleted() int
	ProposeErrors() uint64
	Lost() uint64
	Pending() int
	// PhaseLatencies buckets the run's per-request latencies by rebalance
	// phase (before the first move / during any move / after the last).
	PhaseLatencies() (pre, mid, post PhaseLatency)
	// SetOnComplete registers an observer of every completed (acked)
	// write — its key and the client sequence its value encodes. The
	// invariant checker's ack feed; nil-safe to leave unset.
	SetOnComplete(func(key string, seq uint64))
}

// PhaseLatency summarizes the completed requests of one rebalance phase.
type PhaseLatency struct {
	Completed int
	P50Ms     float64
	P99Ms     float64
}

// RebalanceStats records one completed (or aborted) group move — the
// rebalance measurement hook's per-move output. Times are absolute
// virtual-time marks in milliseconds (the engine clock, which starts 0 at
// testbed construction — before settle and ramp start); durations like
// CutoverMs−StartMs are what to compare across runs.
type RebalanceStats struct {
	// Kind is the fault kind that drove the move ("add-group" /
	// "remove-group").
	Kind string
	// Group is the group that was added or removed.
	Group int
	// Epoch is the router epoch the move installed.
	Epoch int
	// StartMs/CutoverMs/DoneMs mark migration start, the routing flip
	// (fence lift), and source-cleanup completion.
	StartMs   float64
	CutoverMs float64
	DoneMs    float64
	// MovedKeys / TotalKeys: keys streamed to their new owner vs the whole
	// keyspace resident at drain time. MovedFraction is their ratio — the
	// consistent-hash bound says ≈1/(G+1) for an add.
	MovedKeys     int
	TotalKeys     int
	MovedFraction float64
	// DrainRounds counts convergence passes of the drain scan (>1 means
	// pre-fence writes were still landing during the first copy).
	DrainRounds int
	// BulkChunks counts span chunks replicated by the snapshot-shipped
	// bulk phase (0 under key-stream migration, where every key is its
	// own command).
	BulkChunks int
	// ProposeOps counts replicated commands the migration proposed in
	// total — span installs, per-key copies, cleanup deletes and barriers.
	// The snapshot-ship vs key-stream comparison is this number: the bulk
	// phase turns O(moved keys) proposes into O(chunks).
	ProposeOps int
	// ProposeErrors counts migration proposes that failed (no leader, or
	// an error reported by the propose callback). Failed batches are not
	// retried in place — the next convergence scan re-copies what is
	// actually missing — but the count must surface: a silent nonzero here
	// once hid every such retry.
	ProposeErrors int
	// Aborted is set when the new group missed the cutover deadline before
	// electing a leader and the move was rolled back.
	Aborted bool
	// Skipped is set when the move never started because an earlier
	// migration was still draining when it fired; Group is the id the move
	// would have added or removed.
	Skipped bool
}

// RebalanceReport is the rebalance measurement hook: per-move stats plus
// the run's latency distribution split into pre/mid/post-move phases, so
// a scenario exposes exactly what the move cost the tail.
type RebalanceReport struct {
	Moves []RebalanceStats
	Pre   PhaseLatency
	Mid   PhaseLatency
	Post  PhaseLatency
	// Unfinished is set when a migration was still in flight at the end
	// of the run's grace window: Moves then misses that move, and the
	// final topology is not what the fault schedule promised.
	Unfinished bool
}

// MovesDone counts the moves that actually completed (neither skipped by
// an overlapping migration nor aborted at the cutover deadline).
func (r RebalanceReport) MovesDone() int {
	n := 0
	for _, mv := range r.Moves {
		if !mv.Skipped && !mv.Aborted {
			n++
		}
	}
	return n
}

// Env supplies the concrete testbed constructors for one run. The legacy
// cluster/shard wrappers bind it to their already-realized Options; the
// bind package realizes it from the Spec itself.
type Env struct {
	// Variant is the display name stamped on results (falls back to the
	// spec's variant name).
	Variant string
	// NewCluster builds one single-group testbed on its own engine with
	// the given seed.
	NewCluster func(seed int64) Cluster
	// NewLoadGen attaches an open-loop generator to a not-yet-started
	// cluster built by NewCluster.
	NewLoadGen func(c Cluster, ramp workload.Ramp, clientRTT time.Duration) LoadGen
	// NewMulti builds one sharded testbed plus its keyed generator.
	NewMulti func(seed int64, ramp workload.Ramp) (MultiCluster, MultiLoadGen)
	// Workers is the parallel trial runner's worker count
	// (cluster.TrialWorkers()).
	Workers int
	// RunShards executes run(0..shards-1) deterministically: results must
	// depend only on the shard index, not on which worker ran it. The
	// cluster layer backs this with cluster.RunSharded.
	RunShards func(workers, shards int, run func(shard int))
}

func (e Env) variantName(spec Spec) string {
	if e.Variant != "" {
		return e.Variant
	}
	return spec.Variant.Name
}

// runShards falls back to a sequential loop when the env left RunShards
// unset; output is identical either way, by the RunShards contract.
func (e Env) runShards(shards int, run func(int)) {
	if e.RunShards != nil {
		w := e.Workers
		if w < 1 {
			w = 1
		}
		e.RunShards(w, shards, run)
		return
	}
	for i := 0; i < shards; i++ {
		run(i)
	}
}

// TrialShardSize is how many trials one shard (one cluster, one engine,
// one seed) runs sequentially — kept equal to the historical parallel
// runner's shard size so ≤50-trial experiments reproduce the golden
// pre-refactor samples exactly.
const TrialShardSize = 50

// ShardSeed derives shard s's engine seed. Shard 0 keeps the experiment
// seed unchanged so single-shard runs reproduce the historical sequential
// results; later shards stride by a large odd constant (the scheme the
// ramp repetitions have always used).
func ShardSeed(seed int64, s int) int64 {
	return seed + int64(s)*1000003
}

// ShardCounts splits trials into shard-sized blocks.
func ShardCounts(trials, size int) []int {
	if trials <= 0 {
		return nil
	}
	n := (trials + size - 1) / size
	out := make([]int, n)
	for i := range out {
		out[i] = size
	}
	if rem := trials % size; rem != 0 {
		out[n-1] = rem
	}
	return out
}

// Step is one ramp step's aggregate, shared by the single-group and
// sharded generators (P99Ms stays zero where the generator does not track
// tails).
type Step struct {
	OfferedRPS   int
	ThroughputRS float64 // completed requests per second
	LatencyMs    float64 // mean latency
	P99Ms        float64 // tail latency
	Completed    int
}

// FailoverResult is the unified outcome of repeated fault trials: crash
// failovers fill Detection/OTS (+Retune/Replay when the process is
// crash-restarted), planned handovers fill HandoverMs. Legacy names
// (cluster.ElectionResult, …) alias this type.
type FailoverResult struct {
	Variant string
	Trials  int
	// Per-trial samples in milliseconds.
	DetectionMs []float64
	OTSMs       []float64
	// HandoverMs: transfer initiation → new leader elected (transfer
	// trials only).
	HandoverMs []float64
	// RetuneMs: restarted node's tuner re-warm times (crash trials on
	// Dynatune variants only).
	RetuneMs []float64
	// ReplayEntries is the mean number of log entries restarted nodes
	// replayed from their durable stores.
	ReplayEntries float64
	// MeanRandTimeoutMs is the mean randomized timeout across live
	// followers sampled at each failure instant.
	MeanRandTimeoutMs float64
	// SplitVoteRounds counts candidate re-timeouts during the measured
	// elections.
	SplitVoteRounds int
	// FailedTrials counts trials with no election inside the per-trial
	// timeout (excluded from the samples).
	FailedTrials int
}

// Summary bundles detection/OTS summaries.
func (r FailoverResult) Summary() (det, ots metrics.Summary) {
	return metrics.Summarize(r.DetectionMs), metrics.Summarize(r.OTSMs)
}

// SeriesResult holds the time-series probes of a fluctuation run
// (Figs. 6 and 7). cluster.SeriesResult aliases this type.
type SeriesResult struct {
	Variant string
	Horizon time.Duration
	// RandTimeout3rdMs is the third-smallest randomized timeout across
	// live nodes, sampled once per second (Fig. 6).
	RandTimeout3rdMs *metrics.TimeSeries
	// LinkRTTMs is the nominal RTT of the 1↔2 link.
	LinkRTTMs *metrics.TimeSeries
	// LeaderHMs is the mean tuned heartbeat interval on the leader.
	LeaderHMs *metrics.TimeSeries
	// LeaderCPU / FollowerCPU are docker-stats-style percentages.
	LeaderCPU   *metrics.TimeSeries
	FollowerCPU *metrics.TimeSeries
	// MeasuredLossPct is a live follower tuner's loss estimate (×100).
	MeasuredLossPct *metrics.TimeSeries
	// OTS spans observed after the first election.
	OTS *metrics.Intervals
	// Timeouts / Elections / Reverts count protocol events in the window.
	Timeouts  int
	Elections int
	Reverts   int
}

// RampPoint is one (offered RPS → achieved throughput, latency)
// measurement averaged over repetitions. cluster.ThroughputPoint aliases
// this type.
type RampPoint struct {
	OfferedRPS    int
	ThroughputRS  float64
	ThroughputStd float64
	LatencyMs     float64
}

// RampResult is the single-group throughput outcome plus the client-side
// loss accounting summed over repetitions.
type RampResult struct {
	Variant       string
	Points        []RampPoint
	ProposeErrors uint64
	Lost          uint64
	Pending       int
}

// ShardRampResult aggregates one sharded ramp run. shard.RampResult
// aliases this type.
type ShardRampResult struct {
	Groups int
	Points []Step
	// AggThroughput is the mean aggregate committed-ops rate over the
	// whole ramp.
	AggThroughput float64
	// PeakThroughput is the best single step.
	PeakThroughput float64
	// P99Ms is the tail latency over the whole ramp.
	P99Ms         float64
	Completed     int
	ProposeErrors uint64
	// Lost counts proposals overwritten by a newer leader before
	// committing; Pending counts arrivals never proposed.
	Lost    uint64
	Pending int
	// MaxLogEntries / MaxLogBytes are the peak worst-replica live Raft log
	// observed over the run (sampled once a second) — with a snapshot
	// policy armed, MaxLogEntries stays bounded by the policy's threshold
	// regardless of run length.
	MaxLogEntries int
	MaxLogBytes   uint64
	// Rebalance carries the group-move measurement when the run's fault
	// schedule included rebalance kinds (nil otherwise).
	Rebalance *RebalanceReport
	// Invariants carries the standing invariant suite's verdict when the
	// spec armed it (nil otherwise).
	Invariants *InvariantReport
}

// ReadMode selects the linearizable-read path under test.
// cluster.ReadMode aliases this type.
type ReadMode int

const (
	// ReadModeIndex always uses ReadIndex (one heartbeat round per read).
	ReadModeIndex ReadMode = iota
	// ReadModeLease serves from the check-quorum lease when it holds and
	// falls back to ReadIndex when it lapsed.
	ReadModeLease
)

func (m ReadMode) String() string {
	if m == ReadModeLease {
		return "lease"
	}
	return "read-index"
}

// ReadsResult aggregates a linearizable-read run. cluster's
// ReadLatencyResult aliases this type.
type ReadsResult struct {
	Variant string
	Mode    ReadMode
	Issued  int
	// LatencyMs is the registration→confirmation delay of each successful
	// read (0 for lease hits: they confirm synchronously).
	LatencyMs []float64
	// LeaseHits counts reads served from the lease without a quorum round.
	LeaseHits int
	// Fallbacks counts lease-mode reads that fell back to ReadIndex.
	Fallbacks int
	// Failed counts reads aborted by leadership churn or not-ready leaders.
	Failed int
}

// LatencySummary summarizes the successful read latencies.
func (r ReadsResult) LatencySummary() metrics.Summary {
	return metrics.Summarize(r.LatencyMs)
}

// MembershipResult records one add-learner → catch-up → promote cycle.
// cluster.MembershipResult aliases this type.
type MembershipResult struct {
	Variant string
	// CatchupMs: add-learner commit → learner's applied index reaches the
	// leader's at proposal time.
	CatchupMs float64
	// JoinerTunedMs: learner added → the joiner's Dynatune engages.
	JoinerTunedMs float64
	// PromoteMs: promotion proposal → applied on the leader.
	PromoteMs float64
	// PostFailoverOTSMs: OTS of a leader crash right after the promotion.
	PostFailoverOTSMs float64
	// JoinerBecameLeader reports whether the failover elected the joiner.
	JoinerBecameLeader bool
}

// Result is one executed Spec; exactly one payload is set, matching the
// spec's Measure.
type Result struct {
	Spec       Spec
	Failover   *FailoverResult
	Series     *SeriesResult
	Ramp       *RampResult
	ShardRamps []ShardRampResult
	Reads      *ReadsResult
	Membership *MembershipResult
}

// Violations collects every invariant violation across the result's
// repetitions (empty when the spec armed no invariant suite, or every
// invariant held). The CLI and the chaos-storm search both treat a
// non-empty return as a failed run.
func (r *Result) Violations() []Violation {
	var out []Violation
	for i := range r.ShardRamps {
		if inv := r.ShardRamps[i].Invariants; inv != nil {
			out = append(out, inv.Violations...)
		}
	}
	return out
}

// Run executes one spec against the environment's testbed.
func Run(spec Spec, env Env) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Spec: spec}
	switch spec.Measure {
	case MeasureFailover:
		res.Failover = runFailover(spec, env)
	case MeasureSeries:
		res.Series = runSeries(spec, env)
	case MeasureThroughput:
		if spec.Topology.Groups > 0 {
			if env.NewMulti == nil {
				return nil, fmt.Errorf("scenario %q: env has no sharded testbed", spec.Name)
			}
			res.ShardRamps = runShardRampReps(spec, env)
		} else {
			res.Ramp = runRamp(spec, env)
		}
	case MeasureReads:
		res.Reads = runReads(spec, env)
	case MeasureMembership:
		res.Membership = runMembership(spec, env)
	}
	return res, nil
}
