package raft

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/netsim"
)

// chaosRun drives a cluster through a random schedule of crashes,
// restarts, partitions and proposals under a lossy, jittery network, then
// verifies the Raft safety invariants. This is the package's main
// property-based correctness test; the Dynatune experiments inherit its
// guarantees.
func chaosRun(t testing.TB, seed int64, n int, hbClass netsim.Class, tuners func(int) Tuner) {
	t.Helper()
	opts := defaultOpts()
	opts.n = n
	opts.seed = seed
	opts.params = netsim.Params{
		RTT:    30 * time.Millisecond,
		Jitter: 5 * time.Millisecond,
		Loss:   0.05,
		Dup:    0.01,
	}
	opts.hbClass = hbClass
	if tuners != nil {
		opts.tuners = tuners
	}
	c := newTestCluster(opts)
	rng := c.eng.Rand()

	proposed := 0
	for round := 0; round < 60; round++ {
		c.run(time.Duration(200+rng.Intn(800)) * time.Millisecond)
		switch rng.Intn(10) {
		case 0, 1: // crash a random live node (but keep quorum possible)
			down := 0
			for _, rt := range c.rts {
				if rt.down {
					down++
				}
			}
			if down < (n-1)/2 {
				id := ID(rng.Intn(n) + 1)
				if !c.rts[id-1].down {
					c.crash(id)
				}
			}
		case 2, 3: // restart a crashed node
			for id := ID(1); id <= ID(n); id++ {
				if c.rts[id-1].down {
					c.restart(id)
					break
				}
			}
		case 4: // transient partition
			id := rng.Intn(n)
			c.net.PartitionNode(id, true)
			idc := id
			c.eng.Schedule(c.eng.Now()+time.Duration(1+rng.Intn(3))*time.Second, func() {
				c.net.PartitionNode(idc, false)
			})
		default: // propose on the current leader if any
			if l := c.leader(); l != nil {
				if _, err := l.Propose([]byte(fmt.Sprintf("p%d", proposed))); err == nil {
					proposed++
				}
			}
		}
	}
	// Heal everything and let the cluster converge.
	for id := ID(1); id <= ID(n); id++ {
		if c.rts[id-1].down {
			c.restart(id)
		}
		c.net.PartitionNode(int(id-1), false)
	}
	c.run(20 * time.Second)

	if err := c.checkElectionSafety(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if c.leader() == nil {
		t.Fatalf("seed %d: cluster did not converge to a leader after healing", seed)
	}
	// Liveness sanity: some proposals must have committed.
	if proposed > 10 {
		var maxCommit uint64
		for _, node := range c.nodes {
			if cm := node.Log().Committed(); cm > maxCommit {
				maxCommit = cm
			}
		}
		if maxCommit == 0 {
			t.Fatalf("seed %d: nothing ever committed", seed)
		}
	}
}

func TestChaosSafety3Nodes(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		chaosRun(t, seed, 3, netsim.TCP, nil)
	}
}

func TestChaosSafety5Nodes(t *testing.T) {
	for seed := int64(10); seed <= 15; seed++ {
		chaosRun(t, seed, 5, netsim.TCP, nil)
	}
}

func TestChaosSafetyUDPHeartbeats(t *testing.T) {
	// Dynatune's hybrid transport: heartbeats best-effort, consensus
	// reliable. Safety must be unaffected by heartbeat loss.
	for seed := int64(20); seed <= 24; seed++ {
		chaosRun(t, seed, 5, netsim.UDP, nil)
	}
}

func TestChaosSafetyAggressiveTimeouts(t *testing.T) {
	// Raft-Low-style parameters under chaos: liveness may suffer; safety
	// must not.
	tuners := func(int) Tuner { return NewStaticTuner(100*time.Millisecond, 10*time.Millisecond) }
	for seed := int64(30); seed <= 33; seed++ {
		chaosRun(t, seed, 5, netsim.TCP, tuners)
	}
}

func TestChaosSafetyNoPreVote(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	opts.seed = 77
	opts.noPreVote = true
	opts.params = netsim.Params{RTT: 20 * time.Millisecond, Jitter: 3 * time.Millisecond, Loss: 0.02}
	c := newTestCluster(opts)
	rng := c.eng.Rand()
	for round := 0; round < 30; round++ {
		c.run(time.Duration(500+rng.Intn(1000)) * time.Millisecond)
		if l := c.leader(); l != nil {
			if rng.Intn(3) == 0 {
				c.crash(l.ID())
			} else {
				l.Propose([]byte("x")) //nolint:errcheck // chaos: leadership may race
			}
		} else {
			for id := ID(1); id <= 5; id++ {
				if c.rts[id-1].down {
					c.restart(id)
				}
			}
		}
	}
	for id := ID(1); id <= 5; id++ {
		if c.rts[id-1].down {
			c.restart(id)
		}
	}
	c.run(15 * time.Second)
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
}

func TestTermsMonotonicPerNode(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	opts.params.Loss = 0.1
	c := newTestCluster(opts)
	lead := c.waitLeader(10 * time.Second)
	if lead != nil {
		c.crash(lead.ID())
	}
	c.run(30 * time.Second)
	lastTerm := map[ID]uint64{}
	for _, ev := range c.events {
		if ev.Term < lastTerm[ev.Node] {
			t.Fatalf("node %d term went backwards: %d after %d", ev.Node, ev.Term, lastTerm[ev.Node])
		}
		lastTerm[ev.Node] = ev.Term
	}
}
