package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"dynatune/internal/raft"
)

func sampleMessages() []raft.Message {
	return []raft.Message{
		{Type: raft.MsgHeartbeat, From: 1, To: 2, Term: 7, Commit: 42,
			HB: raft.HeartbeatMeta{Seq: 9, SendTime: 123456789, RTT: 1000000}},
		{Type: raft.MsgHeartbeatResp, From: 2, To: 1, Term: 7,
			HBResp: raft.HeartbeatRespMeta{EchoTime: 123456789, Interval: 55000000}},
		{Type: raft.MsgApp, From: 1, To: 3, Term: 7, Index: 10, LogTerm: 6, Commit: 9,
			Entries: []raft.Entry{
				{Term: 7, Index: 11, Data: []byte("hello")},
				{Term: 7, Index: 12, Data: nil},
				{Term: 7, Index: 13, Data: []byte{}},
			}},
		{Type: raft.MsgAppResp, From: 3, To: 1, Term: 7, Index: 13, Reject: true, Hint: 10},
		{Type: raft.MsgPreVote, From: 4, To: 5, Term: 8, Index: 13, LogTerm: 7},
		{Type: raft.MsgSnap, From: 1, To: 3, Term: 8, Index: 100, LogTerm: 7,
			Snap:       []byte("opaque-state-machine-snapshot"),
			SnapVoters: []raft.ID{1, 2, 3, 4}, SnapLearners: []raft.ID{9}},
		{Type: raft.MsgVoteResp, From: 5, To: 4, Term: 8, Reject: false},
		{Type: raft.MsgHeartbeat, From: 1, To: 2, Term: 7, Commit: 42, ReadCtx: 17},
		{Type: raft.MsgHeartbeatResp, From: 2, To: 1, Term: 7, ReadCtx: 17},
		{Type: raft.MsgApp, From: 1, To: 2, Term: 9, Index: 20, LogTerm: 9,
			Entries: []raft.Entry{
				{Term: 9, Index: 21, Type: raft.EntryConfChange,
					Data: raft.EncodeConfChange(raft.ConfChange{Op: raft.ConfAddLearner, Node: 6})},
			}},
	}
}

func msgEqual(a, b raft.Message) bool {
	normalize := func(m *raft.Message) {
		for i := range m.Entries {
			if len(m.Entries[i].Data) == 0 {
				m.Entries[i].Data = nil
			}
		}
		if len(m.Entries) == 0 {
			m.Entries = nil
		}
		if len(m.Snap) == 0 {
			m.Snap = nil
		}
		if len(m.SnapVoters) == 0 {
			m.SnapVoters = nil
		}
		if len(m.SnapLearners) == 0 {
			m.SnapLearners = nil
		}
	}
	normalize(&a)
	normalize(&b)
	return reflect.DeepEqual(a, b)
}

func TestRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		got, err := Decode(Encode(m))
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if !msgEqual(got, m) {
			t.Fatalf("msg %d round trip:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := Encode(sampleMessages()[2])
	bad := [][]byte{
		nil,
		valid[:10],           // short header
		append(valid, 0xAB),  // trailing garbage
		valid[:len(valid)-3], // truncated entry data
		func() []byte { b := append([]byte(nil), valid...); b[0] = 200; return b }(), // bad type
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !msgEqual(got, want) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	buf := bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0})
	if _, err := ReadFrame(buf); err == nil {
		t.Fatal("accepted oversized frame")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, sampleMessages()[0]); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated frame")
	}
}

// Property: round trip preserves arbitrary messages.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(typRaw uint8, from, to, term, index, logterm, commit, hint uint64,
		reject bool, seq uint64, sendTime, rtt, echo, interval int64, datas [][]byte,
		readCtx uint64, voters, learners []uint64, confEntry bool) bool {
		m := raft.Message{
			Type: raft.MsgType(typRaw % 8), From: raft.ID(from), To: raft.ID(to),
			Term: term, Index: index, LogTerm: logterm, Commit: commit,
			Reject: reject, Hint: hint,
			HB:      raft.HeartbeatMeta{Seq: seq, SendTime: sendTime, RTT: rtt},
			HBResp:  raft.HeartbeatRespMeta{EchoTime: echo, Interval: interval},
			ReadCtx: readCtx,
		}
		for _, v := range voters {
			m.SnapVoters = append(m.SnapVoters, raft.ID(v))
		}
		for _, l := range learners {
			m.SnapLearners = append(m.SnapLearners, raft.ID(l))
		}
		for i, d := range datas {
			typ := raft.EntryNormal
			if confEntry && i == 0 {
				typ = raft.EntryConfChange
			}
			m.Entries = append(m.Entries, raft.Entry{Term: term, Index: index + uint64(i), Type: typ, Data: d})
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return msgEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode never panics and never succeeds on random garbage that
// fails re-encoding equality — i.e. arbitrary network bytes are safe.
func TestPropertyDecodeRobustOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		m, err := Decode(raw)
		if err != nil {
			return true // rejected cleanly
		}
		// Anything accepted must round-trip back to identical bytes'
		// semantic content.
		again, err := Decode(Encode(m))
		return err == nil && msgEqual(m, again)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid encoding either fails to
// decode or decodes to a (possibly different) message without panicking.
func TestPropertyDecodeBitflipSafe(t *testing.T) {
	base := Encode(sampleMessages()[2])
	for i := range base {
		mut := append([]byte(nil), base...)
		mut[i] ^= 0xFF
		_, _ = Decode(mut) // must not panic
	}
}
