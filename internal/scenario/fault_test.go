package scenario

import (
	"testing"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// TestLinkCutsRefcountOverlap pins the composition rule of a fault
// schedule: when two faults cut the same link with overlapping windows,
// the earlier heal must NOT restore a path the later fault still needs
// severed — the link reopens only after the last cut releases it.
func TestLinkCutsRefcountOverlap(t *testing.T) {
	eng := sim.NewEngine(1)
	delivered := 0
	nw := netsim.New(eng, 4, netsim.Constant(netsim.Params{RTT: time.Millisecond}),
		func(to int, m raft.Message) { delivered++ })
	lc := &linkCuts{n: 4, nw: nw, refs: map[int]int{}}

	probe := func() bool {
		before := delivered
		nw.Send(3, 2, netsim.UDP, raft.Message{})
		eng.Run(eng.Now() + 5*time.Millisecond)
		return delivered > before
	}

	lc.cutNode(2) // fault A: node 3 (0-based 2) fully partitioned
	lc.cut(3, 2)  // fault B: link 4→3 cut too
	lc.cut(2, 3)  // ... and 3→4
	lc.heal(3, 2) // fault B heals first
	lc.heal(2, 3)
	if probe() {
		t.Fatal("link-down heal reopened a link the node partition still holds cut")
	}
	lc.healNode(2) // fault A heals: now the link really reopens
	if !probe() {
		t.Fatal("link stayed cut after every fault healed")
	}
}

// TestFaultValidateNewKinds covers the clock-skew and partition-groups
// validation rules.
func TestFaultValidateNewKinds(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"skew drift", Fault{Kind: FaultClockSkew, Node: 2, Drift: -0.5}, true},
		{"skew offset", Fault{Kind: FaultClockSkew, Node: 2, Offset: Duration(time.Second)}, true},
		{"skew no node", Fault{Kind: FaultClockSkew, Drift: 0.5}, false},
		{"skew no effect", Fault{Kind: FaultClockSkew, Node: 2}, false},
		{"skew clock backwards", Fault{Kind: FaultClockSkew, Node: 2, Drift: -1}, false},
		{"groups ok", Fault{Kind: FaultPartitionGroups, GroupA: []int{1, 2}, GroupB: []int{3, 4, 5}}, true},
		{"groups empty side", Fault{Kind: FaultPartitionGroups, GroupA: []int{1}}, false},
		{"groups zero-based", Fault{Kind: FaultPartitionGroups, GroupA: []int{0}, GroupB: []int{1}}, false},
		{"groups overlap", Fault{Kind: FaultPartitionGroups, GroupA: []int{1, 2}, GroupB: []int{2, 3}}, false},
	} {
		if err := tc.f.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Topology bounds: a group member beyond N is a spec-level error.
	s := Spec{
		Name: "oob", Measure: MeasureSeries, Topology: Topology{N: 3},
		Network: Stable(time.Millisecond), Variant: VariantSpec{Name: "raft"},
		Horizon: Duration(time.Second),
		Faults:  []Fault{{Kind: FaultPartitionGroups, GroupA: []int{1}, GroupB: []int{4}}},
	}
	if err := s.Validate(); err == nil {
		t.Error("partition-groups member beyond N accepted")
	}
}

// TestLinkCutsAsymmetric pins that inbound cuts leave outbound links
// refcounted independently.
func TestLinkCutsAsymmetric(t *testing.T) {
	eng := sim.NewEngine(1)
	got := map[int]int{}
	nw := netsim.New(eng, 3, netsim.Constant(netsim.Params{RTT: time.Millisecond}),
		func(to int, m raft.Message) { got[to]++ })
	lc := &linkCuts{n: 3, nw: nw, refs: map[int]int{}}

	lc.cutInbound(0)
	nw.Send(1, 0, netsim.UDP, raft.Message{}) // into the deaf node: dropped
	nw.Send(0, 1, netsim.UDP, raft.Message{}) // out of it: delivered
	eng.Run(eng.Now() + 5*time.Millisecond)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("asym cut wrong: deaf received %d, peer received %d", got[0], got[1])
	}
	lc.healInbound(0)
	nw.Send(1, 0, netsim.UDP, raft.Message{})
	eng.Run(eng.Now() + 5*time.Millisecond)
	if got[0] != 1 {
		t.Fatalf("inbound heal did not reopen: %d", got[0])
	}
}

func TestFaultValidateRebalanceAndPareto(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"add-group", Fault{Kind: FaultAddGroup}, true},
		{"add-group deadline", Fault{Kind: FaultAddGroup, Deadline: Duration(10 * time.Second)}, true},
		{"remove-group", Fault{Kind: FaultRemoveGroup}, true},
		{"negative deadline", Fault{Kind: FaultAddGroup, Deadline: Duration(-time.Second)}, false},
		{"pareto ok", Fault{Kind: FaultDegradeLinks, RTT: Duration(100 * time.Millisecond),
			Jitter: Duration(10 * time.Millisecond), Duration: Duration(5 * time.Second),
			Dist: "pareto", Alpha: 1.5}, true},
		{"pareto alpha too small", Fault{Kind: FaultDegradeLinks, RTT: Duration(100 * time.Millisecond),
			Jitter: Duration(10 * time.Millisecond), Duration: Duration(5 * time.Second),
			Dist: "pareto", Alpha: 1}, false},
		{"pareto no jitter scale", Fault{Kind: FaultDegradeLinks, RTT: Duration(100 * time.Millisecond),
			Duration: Duration(5 * time.Second), Dist: "pareto", Alpha: 1.5}, false},
		{"unknown dist", Fault{Kind: FaultDegradeLinks, RTT: Duration(100 * time.Millisecond),
			Duration: Duration(5 * time.Second), Dist: "cauchy"}, false},
		{"alpha without pareto", Fault{Kind: FaultDegradeLinks, RTT: Duration(100 * time.Millisecond),
			Duration: Duration(5 * time.Second), Alpha: 1.5}, false},
	} {
		if err := tc.f.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}

	sharded := func(faults ...Fault) Spec {
		return Spec{
			Name: "reb", Measure: MeasureThroughput,
			Topology: Topology{N: 3, Groups: 2, NodesPerGroup: 3},
			Network:  Stable(time.Millisecond), Variant: VariantSpec{Name: "raft"},
			Workload: &Workload{StartRPS: 100, StepDuration: Duration(time.Second), Steps: 1},
			Faults:   faults,
		}
	}
	if err := sharded(Fault{Kind: FaultAddGroup, At: Duration(500 * time.Millisecond)}).Validate(); err != nil {
		t.Errorf("sharded add-group rejected: %v", err)
	}
	// A move scheduled at or past the ramp's end never fires.
	if err := sharded(Fault{Kind: FaultAddGroup, At: Duration(time.Second)}).Validate(); err == nil {
		t.Error("add-group firing after the ramp accepted")
	}
	// Non-rebalance faults still have no sharded injector.
	if err := sharded(Fault{Kind: FaultPauseLeader}).Validate(); err == nil {
		t.Error("sharded pause-leader accepted")
	}
	// Shrinking below one group is a spec bug.
	if err := sharded(Fault{Kind: FaultRemoveGroup, Count: 2, Every: Duration(time.Second)}).Validate(); err == nil {
		t.Error("remove-group below one group accepted")
	}
	// Rebalance kinds need a sharded topology.
	single := Spec{
		Name: "reb-single", Measure: MeasureThroughput, Topology: Topology{N: 3},
		Network: Stable(time.Millisecond), Variant: VariantSpec{Name: "raft"},
		Workload: &Workload{StartRPS: 100, StepDuration: Duration(time.Second), Steps: 1},
		Faults:   []Fault{{Kind: FaultAddGroup}},
	}
	if err := single.Validate(); err == nil {
		t.Error("add-group on a single-group topology accepted")
	}
	// Pareto segments in the network schedule validate at spec level too.
	bad := sharded()
	bad.Network.Segments[0].Dist = "pareto"
	if err := bad.Validate(); err == nil {
		t.Error("pareto segment with alpha<=1 accepted")
	}
	good := sharded()
	good.Network.Segments[0].Dist = "pareto"
	good.Network.Segments[0].Alpha = 2
	if err := good.Validate(); err != nil {
		t.Errorf("valid pareto segment rejected: %v", err)
	}
	// A pareto segment with no jitter has no Pareto scale: every packet
	// would silently see zero extra delay.
	noScale := sharded()
	noScale.Network.Segments[0].Dist = "pareto"
	noScale.Network.Segments[0].Alpha = 2
	noScale.Network.Segments[0].Jitter = 0
	if err := noScale.Validate(); err == nil {
		t.Error("pareto segment without a jitter scale accepted")
	}
}

// TestFaultValidateGroupAddressing covers the group-targeted form of the
// *-node kinds: exactly one of node/group, sharded topologies only,
// in-range group numbers.
func TestFaultValidateGroupAddressing(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"pause by group", Fault{Kind: FaultPauseNode, Group: 1, Duration: Duration(time.Second)}, true},
		{"crash by group", Fault{Kind: FaultCrashNode, Group: 2, Duration: Duration(time.Second)}, true},
		{"partition by group", Fault{Kind: FaultPartitionNode, Group: 1, Duration: Duration(time.Second)}, true},
		{"no target at all", Fault{Kind: FaultPauseNode}, false},
		{"both node and group", Fault{Kind: FaultPauseNode, Node: 1, Group: 1}, false},
		{"group on a non-node kind", Fault{Kind: FaultLinkDown, From: 1, To: 2, Group: 1}, false},
		{"group on degrade-links", Fault{Kind: FaultDegradeLinks, RTT: Duration(time.Millisecond),
			Duration: Duration(time.Second), Group: 1}, false},
	} {
		if err := tc.f.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}

	sharded := func(faults ...Fault) Spec {
		return Spec{
			Name: "ga", Measure: MeasureThroughput,
			Topology: Topology{N: 3, Groups: 2, NodesPerGroup: 3, Persist: true},
			Network:  Stable(time.Millisecond), Variant: VariantSpec{Name: "raft"},
			Workload: &Workload{StartRPS: 100, StepDuration: Duration(time.Second), Steps: 2},
			Faults:   faults,
		}
	}
	if err := sharded(Fault{Kind: FaultPauseNode, Group: 2, At: Duration(time.Second), Duration: Duration(500 * time.Millisecond)}).Validate(); err != nil {
		t.Errorf("sharded group-addressed pause rejected: %v", err)
	}
	if err := sharded(Fault{Kind: FaultCrashNode, Group: 1, At: Duration(time.Second), Duration: Duration(500 * time.Millisecond)}).Validate(); err != nil {
		t.Errorf("sharded group-addressed crash rejected: %v", err)
	}
	// A group beyond the initial table is a schedule bug, not a no-op.
	if err := sharded(Fault{Kind: FaultPauseNode, Group: 3, At: Duration(time.Second)}).Validate(); err == nil {
		t.Error("group target beyond the topology accepted")
	}
	// Crash restarts need persisted stores on the sharded testbed too.
	noPersist := sharded(Fault{Kind: FaultCrashNode, Group: 1, At: Duration(time.Second)})
	noPersist.Topology.Persist = false
	if err := noPersist.Validate(); err == nil {
		t.Error("sharded group-addressed crash without persist accepted")
	}
	// Group addressing is a sharded concept; single-group specs keep the
	// fixed-node form.
	single := Spec{
		Name: "ga-single", Measure: MeasureSeries, Topology: Topology{N: 3},
		Network: Stable(time.Millisecond), Variant: VariantSpec{Name: "raft"},
		Horizon: Duration(time.Second),
		Faults:  []Fault{{Kind: FaultPauseNode, Group: 1}},
	}
	if err := single.Validate(); err == nil {
		t.Error("group-addressed fault on a single-group topology accepted")
	}
}

// TestFaultValidateReorder covers the degrade-links reorder-burst fields.
func TestFaultValidateReorder(t *testing.T) {
	base := Fault{Kind: FaultDegradeLinks, RTT: Duration(50 * time.Millisecond), Duration: Duration(4 * time.Second)}
	with := func(reorder, every time.Duration) Fault {
		f := base
		f.Reorder, f.ReorderEvery = Duration(reorder), Duration(every)
		return f
	}
	for _, tc := range []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"no reorder", base, true},
		{"reorder ok", with(200*time.Millisecond, time.Second), true},
		{"window without interval", with(200*time.Millisecond, 0), false},
		{"interval without window", with(0, time.Second), false},
		{"negative window", with(-time.Millisecond, time.Second), false},
		{"window swallows the fault", with(4*time.Second, time.Second), false},
	} {
		if err := tc.f.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	// Reorder fields are degrade-links-only.
	stray := Fault{Kind: FaultPauseLeader, Reorder: Duration(time.Millisecond), ReorderEvery: Duration(time.Second)}
	if err := stray.validate(); err == nil {
		t.Error("reorder fields on pause-leader accepted")
	}
}
