// A parameter-grid campaign in ~20 lines: sweep the paper's election
// experiment across cluster sizes and loss rates, two repetitions per
// cell, and print the CSV report. The engine expands the cross-product,
// derives every unit's seed from the campaign seed and grid coordinates
// (so any worker count emits these exact bytes), runs the cells on the
// parallel trial runner, and aggregates mean/p50/p99 + a 95% CI per
// cell. The CLI twin is:
//
//	dynabench sweep -scenario paper-elections \
//	    -axis n=3,5 -axis loss=0,0.05 -reps 2 -scale 0.01
//
// Store the JSON form of a run (-format json) and a later run with
// -baseline gates against it, failing on any per-cell regression.
package main

import (
	"os"

	"dynatune/internal/scenario"
	"dynatune/internal/sweep"
)

func main() {
	base, ok := scenario.Lookup("paper-elections")
	if !ok {
		panic("paper-elections missing from the registry")
	}
	report, err := sweep.Run(sweep.Campaign{
		Base: scenario.Scale(base, 0.01), // 10 trials per cell: demo-sized
		Axes: []sweep.Axis{
			{Name: "n", Values: []string{"3", "5"}},
			{Name: "loss", Values: []string{"0", "0.05"}},
		},
		Reps: 2,
		Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	if err := report.WriteCSV(os.Stdout); err != nil {
		panic(err)
	}
}
