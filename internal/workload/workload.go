// Package workload generates client load for the throughput experiment
// (paper §IV-B2): open-loop request arrivals whose rate ramps up in fixed
// increments — "we gradually increased the number of requests per second
// (RPS) in increments of 1000, with each RPS level sustained for 10 s".
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Ramp describes a stepped open-loop arrival schedule.
type Ramp struct {
	// StartRPS is the first step's request rate.
	StartRPS int
	// StepRPS is the increment between steps.
	StepRPS int
	// StepDuration is how long each rate is sustained.
	StepDuration time.Duration
	// Steps is the number of rate levels.
	Steps int
	// Poisson selects exponential inter-arrivals (open loop with Poisson
	// arrivals) instead of uniform spacing.
	Poisson bool
}

// Validate checks the ramp parameters.
func (r Ramp) Validate() error {
	if r.StartRPS <= 0 || r.Steps <= 0 || r.StepDuration <= 0 {
		return fmt.Errorf("workload: invalid ramp %+v", r)
	}
	if r.StepRPS < 0 {
		return fmt.Errorf("workload: negative step %d", r.StepRPS)
	}
	return nil
}

// RPSAt returns the target rate at time t, and false when t is past the
// end of the schedule.
func (r Ramp) RPSAt(t time.Duration) (int, bool) {
	step := int(t / r.StepDuration)
	if step >= r.Steps {
		return 0, false
	}
	return r.StartRPS + step*r.StepRPS, true
}

// Duration returns the schedule's total length.
func (r Ramp) Duration() time.Duration {
	return time.Duration(r.Steps) * r.StepDuration
}

// Generator produces arrival instants for a Ramp. It is deterministic
// given its rng.
type Generator struct {
	ramp Ramp
	rng  *rand.Rand
	next time.Duration
	done bool
}

// NewGenerator returns a generator starting at t=0. rng may be nil for
// uniformly spaced arrivals.
func NewGenerator(ramp Ramp, rng *rand.Rand) (*Generator, error) {
	if err := ramp.Validate(); err != nil {
		return nil, err
	}
	if ramp.Poisson && rng == nil {
		return nil, fmt.Errorf("workload: Poisson arrivals need an rng")
	}
	return &Generator{ramp: ramp, rng: rng}, nil
}

// Next returns the next arrival time, and false when the schedule is
// exhausted. Arrival times are strictly increasing.
func (g *Generator) Next() (time.Duration, bool) {
	if g.done {
		return 0, false
	}
	for {
		rps, ok := g.ramp.RPSAt(g.next)
		if !ok {
			g.done = true
			return 0, false
		}
		gap := time.Duration(float64(time.Second) / float64(rps))
		if g.ramp.Poisson {
			gap = time.Duration(g.rng.ExpFloat64() * float64(time.Second) / float64(rps))
			if gap <= 0 {
				gap = time.Nanosecond
			}
		}
		at := g.next
		g.next += gap
		if at >= g.ramp.Duration() {
			g.done = true
			return 0, false
		}
		return at, true
	}
}

// StepOf returns which ramp step the instant t belongs to.
func (r Ramp) StepOf(t time.Duration) int {
	return int(t / r.StepDuration)
}

// PaperRamp reproduces §IV-B2: +1000 RPS every 10 s. Levels up to maxRPS.
func PaperRamp(maxRPS int) Ramp {
	return Ramp{
		StartRPS:     1000,
		StepRPS:      1000,
		StepDuration: 10 * time.Second,
		Steps:        maxRPS / 1000,
	}
}
