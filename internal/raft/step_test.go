package raft

import (
	"math/rand"
	"testing"
	"time"
)

// fakeRuntime gives tests direct control over a single node: it records
// sent messages and armed timers and exposes a settable clock.
type fakeRuntime struct {
	now    time.Duration
	sent   []Message
	timers map[timerKey]time.Duration
	rng    *rand.Rand
}

func newFakeRuntime() *fakeRuntime {
	return &fakeRuntime{
		timers: map[timerKey]time.Duration{},
		rng:    rand.New(rand.NewSource(1)),
	}
}

func (f *fakeRuntime) Now() time.Duration { return f.now }
func (f *fakeRuntime) Rand() *rand.Rand   { return f.rng }
func (f *fakeRuntime) Send(m Message)     { f.sent = append(f.sent, m) }

func (f *fakeRuntime) SetTimer(kind TimerKind, peer ID, at time.Duration) {
	f.timers[timerKey{kind, peer}] = at
}

func (f *fakeRuntime) CancelTimer(kind TimerKind, peer ID) {
	delete(f.timers, timerKey{kind, peer})
}

func (f *fakeRuntime) take() []Message {
	out := f.sent
	f.sent = nil
	return out
}

func (f *fakeRuntime) lastOfType(t MsgType) (Message, bool) {
	for i := len(f.sent) - 1; i >= 0; i-- {
		if f.sent[i].Type == t {
			return f.sent[i], true
		}
	}
	return Message{}, false
}

func newIsolatedNode(t *testing.T, id ID, peers []ID) (*Node, *fakeRuntime) {
	t.Helper()
	rt := newFakeRuntime()
	n, err := NewNode(Config{
		ID:      id,
		Peers:   peers,
		Runtime: rt,
		Tuner:   NewStaticTuner(time.Second, 100*time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	rt.take()
	return n, rt
}

// electIsolated drives node 1 of a 3-node cluster to leadership by
// answering its pre-vote and vote by hand.
func electIsolated(t *testing.T, n *Node, rt *fakeRuntime) {
	t.Helper()
	rt.now += 3 * time.Second
	n.OnTimer(TimerElection, None)
	if n.State() != StatePreCandidate {
		t.Fatalf("state = %v, want pre-candidate", n.State())
	}
	n.Step(Message{Type: MsgPreVoteResp, From: 2, To: 1, Term: n.Term() + 1})
	if n.State() != StateCandidate {
		t.Fatalf("state = %v after prevote quorum, want candidate", n.State())
	}
	n.Step(Message{Type: MsgVoteResp, From: 2, To: 1, Term: n.Term()})
	if n.State() != StateLeader {
		t.Fatalf("state = %v after vote quorum, want leader", n.State())
	}
	rt.take()
}

func TestIsolatedElectionFlow(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	rt.now = 3 * time.Second
	n.OnTimer(TimerElection, None)
	msgs := rt.take()
	// Pre-vote probes to both peers at term+1 without changing the term.
	pv := 0
	for _, m := range msgs {
		if m.Type == MsgPreVote {
			pv++
			if m.Term != n.Term()+1 {
				t.Fatalf("pre-vote term %d, node term %d", m.Term, n.Term())
			}
		}
	}
	if pv != 2 {
		t.Fatalf("pre-votes = %d, want 2", pv)
	}
	if n.Term() != 0 {
		t.Fatalf("term advanced to %d during pre-vote", n.Term())
	}
}

func TestPreVoteRejectionQuorumReverts(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3, 4, 5})
	rt.now = 3 * time.Second
	n.OnTimer(TimerElection, None)
	// Rejections carry the rejecters' term (equal to ours here).
	for _, from := range []ID{2, 3, 4} {
		n.Step(Message{Type: MsgPreVoteResp, From: from, To: 1, Term: n.Term(), Reject: true})
	}
	if n.State() != StateFollower {
		t.Fatalf("state = %v after rejection quorum, want follower", n.State())
	}
	if n.Term() != 0 {
		t.Fatalf("term = %d, want 0", n.Term())
	}
}

func TestVoteRejectedWhenLogStale(t *testing.T) {
	n, _ := newIsolatedNode(t, 1, []ID{1, 2, 3})
	// Local log has an entry at term 2.
	n.log.Append(2, []byte("x"))
	n.term = 2
	// Candidate with an older log asks for a vote at a higher term.
	rt := n.cfg.Runtime.(*fakeRuntime)
	n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 3, Index: 0, LogTerm: 0})
	resp, ok := rt.lastOfType(MsgVoteResp)
	if !ok {
		t.Fatal("no vote response")
	}
	if !resp.Reject {
		t.Fatal("stale-log candidate granted a vote")
	}
	// Term still advances (we learned about term 3).
	if n.Term() != 3 {
		t.Fatalf("term = %d, want 3", n.Term())
	}
}

func TestVoteGrantedOncePerTerm(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 1})
	if resp, _ := rt.lastOfType(MsgVoteResp); resp.Reject {
		t.Fatal("first vote rejected")
	}
	rt.take()
	// A different candidate at the same term is refused…
	n.Step(Message{Type: MsgVote, From: 3, To: 1, Term: 1})
	if resp, _ := rt.lastOfType(MsgVoteResp); !resp.Reject {
		t.Fatal("second candidate granted in same term")
	}
	rt.take()
	// …but the same candidate is re-granted (vote retransmission).
	n.Step(Message{Type: MsgVote, From: 2, To: 1, Term: 1})
	if resp, _ := rt.lastOfType(MsgVoteResp); resp.Reject {
		t.Fatal("vote retransmission rejected")
	}
}

func TestLeaseBlocksVotesNearLiveLeader(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	// Install leader 2 via a heartbeat.
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: 1})
	rt.take()
	// 100ms later (well inside Et=1s), candidate 3 campaigns: both the
	// pre-vote and the vote must be ignored entirely.
	rt.now += 100 * time.Millisecond
	n.Step(Message{Type: MsgPreVote, From: 3, To: 1, Term: 2, Index: 9, LogTerm: 9})
	n.Step(Message{Type: MsgVote, From: 3, To: 1, Term: 2, Index: 9, LogTerm: 9})
	if msgs := rt.take(); len(msgs) != 0 {
		t.Fatalf("lease holder responded to campaigners: %+v", msgs)
	}
	if n.Term() != 1 {
		t.Fatalf("term inflated to %d by ignored vote", n.Term())
	}
}

func TestStaleLeaderToldAboutNewTerm(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.term = 5
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: 3})
	resp, ok := rt.lastOfType(MsgAppResp)
	if !ok {
		t.Fatal("no response to stale leader")
	}
	if !resp.Reject || resp.Term != 5 {
		t.Fatalf("stale-leader response = %+v", resp)
	}
}

func TestHeartbeatAdoptsLeaderAndCommit(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.log.Append(1, []byte("a"), []byte("b"))
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: 1, Commit: 1})
	if n.Lead() != 2 {
		t.Fatalf("lead = %d, want 2", n.Lead())
	}
	if n.Log().Committed() != 1 {
		t.Fatalf("committed = %d, want 1", n.Log().Committed())
	}
	if _, ok := rt.lastOfType(MsgHeartbeatResp); !ok {
		t.Fatal("no heartbeat response")
	}
}

func TestLeaderHeartbeatCommitClampedToMatch(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	// Leader has committed its no-op via the vote from 2... bring log up:
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Index: n.log.LastIndex()})
	if n.log.Committed() == 0 {
		t.Fatal("noop not committed")
	}
	rt.take()
	// Peer 3 has matched nothing: its heartbeat must carry commit 0.
	n.sendHeartbeat(3)
	hb, _ := rt.lastOfType(MsgHeartbeat)
	if hb.Commit != 0 {
		t.Fatalf("heartbeat to unmatched peer carries commit %d", hb.Commit)
	}
	// Peer 2 matched everything: full commit index.
	n.sendHeartbeat(2)
	hb, _ = rt.lastOfType(MsgHeartbeat)
	if hb.Commit != n.log.Committed() {
		t.Fatalf("heartbeat to matched peer carries commit %d, want %d", hb.Commit, n.log.Committed())
	}
}

func TestRejectHintRewindsNext(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	for i := 0; i < 10; i++ {
		if _, err := n.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rt.take()
	// Follower 2 rejects at prevIndex 10 hinting its log ends at 3.
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Reject: true, Index: 10, Hint: 3})
	resend, ok := rt.lastOfType(MsgApp)
	if !ok {
		t.Fatal("no resend after reject")
	}
	if resend.Index != 3 {
		t.Fatalf("resend prevIndex = %d, want 3 (hint)", resend.Index)
	}
}

func TestStaleAckDoesNotRewindOptimisticNext(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	for i := 0; i < 5; i++ {
		if _, err := n.Propose([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	last := n.log.LastIndex()
	// Ack for an early batch arrives late.
	n.Step(Message{Type: MsgAppResp, From: 2, To: 1, Term: n.Term(), Index: 2})
	pr := n.prs[2]
	if pr.next != last+1 {
		t.Fatalf("next rewound to %d, want %d", pr.next, last+1)
	}
	if pr.match != 2 {
		t.Fatalf("match = %d, want 2", pr.match)
	}
}

func TestCandidateRevertsOnLeaderAtSameTerm(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	rt.now = 3 * time.Second
	n.OnTimer(TimerElection, None)
	n.Step(Message{Type: MsgPreVoteResp, From: 2, To: 1, Term: n.Term() + 1})
	if n.State() != StateCandidate {
		t.Fatal("not candidate")
	}
	term := n.Term()
	// A leader exists at this very term (we lost the race): revert.
	n.Step(Message{Type: MsgHeartbeat, From: 3, To: 1, Term: term})
	if n.State() != StateFollower || n.Lead() != 3 {
		t.Fatalf("state=%v lead=%d, want follower of 3", n.State(), n.Lead())
	}
}

func TestTunedIntervalUsedForNextBeat(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	st := n.cfg.Tuner.(*StaticTuner)
	st.H = 25 * time.Millisecond
	rt.now += time.Millisecond
	n.OnTimer(TimerHeartbeat, 2)
	at, ok := rt.timers[timerKey{TimerHeartbeat, 2}]
	if !ok {
		t.Fatal("heartbeat timer not re-armed")
	}
	if got := at - rt.now; got != 25*time.Millisecond {
		t.Fatalf("re-arm interval = %v, want 25ms", got)
	}
}

func TestHeartbeatTimerIgnoredAfterStepDown(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	// Step down via higher-term heartbeat, then a stale heartbeat timer
	// fires: no heartbeat may be sent.
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: n.Term() + 1})
	rt.take()
	n.OnTimer(TimerHeartbeat, 2)
	if msgs := rt.take(); len(msgs) != 0 {
		t.Fatalf("follower sent %d messages on stale heartbeat timer", len(msgs))
	}
}

func TestMisroutedMessageIgnored(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.Step(Message{Type: MsgVote, From: 2, To: 9, Term: 5})
	if len(rt.take()) != 0 {
		t.Fatal("responded to misrouted message")
	}
	if n.Term() != 0 {
		t.Fatal("term moved on misrouted message")
	}
}

func TestProposeBatchAssignsContiguousIndexes(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	electIsolated(t, n, rt)
	base := n.log.LastIndex()
	first, last, err := n.ProposeBatch([][]byte{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if first != base+1 || last != base+3 {
		t.Fatalf("batch range [%d,%d], want [%d,%d]", first, last, base+1, base+3)
	}
	if _, _, err := n.ProposeBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestTimeSinceLeaderContact(t *testing.T) {
	n, rt := newIsolatedNode(t, 1, []ID{1, 2, 3})
	n.Step(Message{Type: MsgHeartbeat, From: 2, To: 1, Term: 1})
	rt.now += 250 * time.Millisecond
	if got := n.TimeSinceLeaderContact(); got != 250*time.Millisecond {
		t.Fatalf("TimeSinceLeaderContact = %v", got)
	}
}
