// Package dynatune implements the paper's contribution: dynamic tuning of
// Raft's election parameters from network metrics measured over heartbeats
// (Shiozaki & Nakamura, IPPS 2025).
//
// Each follower measures, per leader→follower path:
//
//   - RTT, from the leader-local send timestamp echoed in heartbeat
//     responses (the leader computes the RTT and ships it back in the next
//     heartbeat, so only the leader's clock is involved — §III-C1);
//   - packet-loss rate p, from gaps in the heartbeat sequence numbers
//     (§III-C2).
//
// and derives (§III-D):
//
//	Et = µ_RTT + s·σ_RTT          (election timeout)
//	K  = ⌈log_p(1 − x)⌉           (heartbeats per timeout window)
//	h  = Et / K                   (heartbeat interval, piggybacked back)
//
// On any local election timeout or leader change the measurement state is
// discarded and parameters fall back to conservative defaults, preserving
// availability if tuning went stale (§III-B).
package dynatune

import (
	"fmt"
	"time"
)

// Defaults mirror the paper's experimental configuration (§IV-A).
const (
	DefaultSafetyFactor       = 2.0
	DefaultArrivalProbability = 0.999
	DefaultMinListSize        = 10
	DefaultMaxListSize        = 1000
	DefaultEt                 = 1000 * time.Millisecond // etcd default election timeout
	DefaultH                  = 100 * time.Millisecond  // etcd default heartbeat interval
	DefaultMinEt              = 10 * time.Millisecond
	DefaultMinH               = time.Millisecond
)

// Options configure a Tuner. The zero value is completed by
// (*Options).withDefaults; NewTuner validates ranges.
type Options struct {
	// SafetyFactor is s in Et = µ + s·σ (§III-D1): how many standard
	// deviations of RTT spread the timeout tolerates before false
	// detection.
	SafetyFactor float64
	// ArrivalProbability is x in 1−p^K ≥ x (§III-D2): the target
	// probability that at least one heartbeat arrives within Et.
	ArrivalProbability float64
	// MinListSize is the number of samples required before tuning engages
	// (below it, Dynatune stays in Step 0 with default parameters).
	MinListSize int
	// MaxListSize bounds the measurement windows; the oldest samples are
	// discarded beyond it.
	MaxListSize int

	// FallbackEt and FallbackH are the conservative defaults used before
	// tuning engages and after every reset.
	FallbackEt time.Duration
	FallbackH  time.Duration

	// MinEt floors the tuned election timeout (guards against degenerate
	// sub-millisecond timeouts on near-zero-RTT links).
	MinEt time.Duration
	// MinH floors the tuned heartbeat interval (guards against heartbeat
	// storms when measured loss transiently approaches 1).
	MinH time.Duration

	// FixK, when positive, disables loss-adaptive K and fixes K = Et/h to
	// this value — the paper's Fix-K baseline (§IV-C2), which mirrors the
	// etcd default ratio of 10.
	FixK int

	// Estimator selects how Et is derived from the RTT samples — an
	// ablation of the paper's §III-D1 design choice (the paper uses the
	// sliding-window mean + s·σ; the alternatives trade adaptation speed
	// against spike robustness). All estimators honour MinListSize before
	// engaging and are discarded on Reset.
	Estimator Estimator
}

// Estimator enumerates Et derivation rules (see Options.Estimator).
type Estimator int

const (
	// EstimatorWindow is the paper's rule: Et = µ + s·σ over the sliding
	// window of the last MaxListSize RTTs. Equal weight to old and new
	// samples within the window; step changes take ~window/2 to absorb.
	EstimatorWindow Estimator = iota
	// EstimatorEWMA is the TCP retransmission-timer rule (Jacobson/Karels,
	// RFC 6298): SRTT ← 7/8·SRTT + 1/8·r, RTTVAR ← 3/4·RTTVAR + 1/4·|SRTT−r|,
	// Et = SRTT + 2s·RTTVAR (s=2 reproduces the classic 4·RTTVAR). Recent
	// samples dominate, so RTT steps are tracked faster, at the cost of
	// forgetting past spikes sooner.
	EstimatorEWMA
	// EstimatorMax is the practitioner's rule of thumb: Et = windowMax ·
	// (1 + s/20). Immune to distribution-shape assumptions but ratchets up
	// on a single outlier and only decays when the outlier leaves the
	// window.
	EstimatorMax
)

func (e Estimator) String() string {
	switch e {
	case EstimatorWindow:
		return "window"
	case EstimatorEWMA:
		return "ewma"
	case EstimatorMax:
		return "max"
	default:
		return fmt.Sprintf("estimator(%d)", int(e))
	}
}

func (o Options) withDefaults() Options {
	if o.SafetyFactor == 0 {
		o.SafetyFactor = DefaultSafetyFactor
	}
	if o.ArrivalProbability == 0 {
		o.ArrivalProbability = DefaultArrivalProbability
	}
	if o.MinListSize == 0 {
		o.MinListSize = DefaultMinListSize
	}
	if o.MaxListSize == 0 {
		o.MaxListSize = DefaultMaxListSize
	}
	if o.FallbackEt == 0 {
		o.FallbackEt = DefaultEt
	}
	if o.FallbackH == 0 {
		o.FallbackH = DefaultH
	}
	if o.MinEt == 0 {
		o.MinEt = DefaultMinEt
	}
	if o.MinH == 0 {
		o.MinH = DefaultMinH
	}
	return o
}

func (o Options) validate() error {
	if o.SafetyFactor < 0 {
		return fmt.Errorf("dynatune: negative safety factor %v", o.SafetyFactor)
	}
	if o.ArrivalProbability <= 0 || o.ArrivalProbability >= 1 {
		return fmt.Errorf("dynatune: arrival probability %v outside (0,1)", o.ArrivalProbability)
	}
	if o.MinListSize < 1 {
		return fmt.Errorf("dynatune: minListSize %d < 1", o.MinListSize)
	}
	if o.MaxListSize < o.MinListSize {
		return fmt.Errorf("dynatune: maxListSize %d < minListSize %d", o.MaxListSize, o.MinListSize)
	}
	if o.FallbackEt <= 0 || o.FallbackH <= 0 {
		return fmt.Errorf("dynatune: non-positive fallback parameters")
	}
	if o.FixK < 0 {
		return fmt.Errorf("dynatune: negative FixK %d", o.FixK)
	}
	if o.Estimator < EstimatorWindow || o.Estimator > EstimatorMax {
		return fmt.Errorf("dynatune: unknown estimator %d", int(o.Estimator))
	}
	return nil
}
