package main

import (
	"testing"

	"dynatune/internal/raft"
)

func TestParseCluster(t *testing.T) {
	peers, err := parseCluster("1=10.0.0.1:7001,2=10.0.0.2:7001, 3=10.0.0.3:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 3 {
		t.Fatalf("peers = %d", len(peers))
	}
	pa := peers[raft.ID(2)]
	if pa.TCP != "10.0.0.2:7001" || pa.UDP != "10.0.0.2:7001" {
		t.Fatalf("peer 2 = %+v", pa)
	}
}

func TestParseClusterErrors(t *testing.T) {
	bad := []string{
		"",
		"1-10.0.0.1:7001",
		"x=10.0.0.1:7001",
		"0=10.0.0.1:7001",
		"1=a,1=b",
	}
	for _, spec := range bad {
		if _, err := parseCluster(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}
