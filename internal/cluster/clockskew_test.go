package cluster

import (
	"testing"
	"time"

	"dynatune/internal/raft"
)

// TestClockSkewFastFollowerAbsorbed pins the clock-skew fault's §IV-D
// story: a follower whose election timer runs 20× fast (drift −0.95
// drops its ~1–2 s randomized timeout below the 100 ms heartbeat
// interval) times out over and over, but pre-vote plus leader stickiness
// must absorb every premature campaign — no election, no term movement,
// same leader — and restoring the true clock silences it again.
func TestClockSkewFastFollowerAbsorbed(t *testing.T) {
	c := New(Options{N: 5, Seed: 71, Variant: VariantRaft(), Profile: stableNet(100)})
	c.Start()
	if c.WaitLeader(10*time.Second) == nil {
		t.Fatal("no leader")
	}
	c.Run(2 * time.Second)
	lead := c.Leader()
	reignTerm := lead.Term()
	var skewed raft.ID
	for i := 1; i <= 5; i++ {
		if raft.ID(i) != lead.ID() {
			skewed = raft.ID(i)
			break
		}
	}
	rec := c.Recorder()

	start := c.Now()
	c.SetClockSkew(skewed, 0, -0.95)
	c.Run(10 * time.Second)
	if n := rec.CountKind(raft.EventTimeout, start, c.Now()); n == 0 {
		t.Fatal("fast clock never fired a premature timeout — skew had no effect")
	}
	if n := rec.CountKind(raft.EventLeaderElected, start, c.Now()); n != 0 {
		t.Fatalf("skewed follower forced %d elections", n)
	}
	if l := c.Leader(); l == nil || l.ID() != lead.ID() || l.Term() != reignTerm {
		t.Fatalf("leadership moved under clock skew: %v", l)
	}

	// Heal. The timer armed under skew may fire once more; after the next
	// leader contact re-arms it on the true clock, the quiet must return.
	c.SetClockSkew(skewed, 0, 0)
	c.Run(2 * time.Second)
	quiet := c.Now()
	c.Run(5 * time.Second)
	if n := rec.CountKind(raft.EventTimeout, quiet, c.Now()); n != 0 {
		t.Fatalf("%d timeouts after the skew healed", n)
	}
	if l := c.Leader(); l == nil || l.Term() != reignTerm {
		t.Fatal("cluster did not return to the original reign")
	}
}

// TestClockSkewOffsetDelaysDetection pins the offset half: a follower
// whose election deadline is shifted +2 s cannot be the one that detects
// a leader failure first, so with every follower skewed, detection of a
// pause moves out by about the offset.
func TestClockSkewOffsetDelaysDetection(t *testing.T) {
	run := func(offset time.Duration) float64 {
		c := New(Options{N: 3, Seed: 73, Variant: VariantRaft(), Profile: stableNet(100)})
		c.Start()
		if c.WaitLeader(10*time.Second) == nil {
			t.Fatal("no leader")
		}
		c.Run(2 * time.Second)
		lead := c.Leader()
		for i := 1; i <= 3; i++ {
			if raft.ID(i) != lead.ID() {
				c.SetClockSkew(raft.ID(i), offset, 0)
			}
		}
		c.Run(500 * time.Millisecond) // let the next timer arming pick up the skew
		_, failAt := c.PauseLeader()
		deadline := c.Now() + 30*time.Second
		for c.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if det, ok := c.Recorder().FirstDetectionAfter(failAt); ok {
				return float64(det) / float64(time.Millisecond)
			}
		}
		t.Fatal("no detection")
		return 0
	}
	base := run(0)
	slow := run(2 * time.Second)
	if slow < base+1500 {
		t.Fatalf("offset skew moved detection %0.f -> %.0f ms; want ≥ +1500", base, slow)
	}
}
