package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
)

func TestGetLinearizableOnRealNetwork(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	if err := lead.Propose(kv.Command{Op: kv.OpPut, Key: "lin", Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	// ReadIndex path.
	v, ok, err := lead.GetLinearizable("lin", false)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("ReadIndex get: %q %v %v", v, ok, err)
	}
	// Lease path (falls back internally if the lease lapsed).
	v, ok, err = lead.GetLinearizable("lin", true)
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("lease get: %q %v %v", v, ok, err)
	}
	// Missing key: confirmed read, not found.
	_, ok, err = lead.GetLinearizable("absent", false)
	if err != nil || ok {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
}

func TestGetLinearizableOnFollowerFails(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	for _, s := range srvs {
		if s == lead {
			continue
		}
		if _, _, err := s.GetLinearizable("x", false); !errors.Is(err, raft.ErrNotLeader) {
			t.Fatalf("follower linearizable get: err=%v, want ErrNotLeader", err)
		}
	}
}

func TestHTTPConsistencyParam(t *testing.T) {
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	if err := lead.Propose(kv.Command{Op: kv.OpPut, Key: "c", Value: []byte("42")}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + lead.HTTPAddr()
	for _, q := range []string{"", "?consistency=local", "?consistency=linearizable", "?consistency=lease"} {
		resp, err := http.Get(base + "/kv/c" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "42" {
			t.Fatalf("GET %q: %d %q", q, resp.StatusCode, body)
		}
	}
	// Bad value rejected.
	resp, err := http.Get(base + "/kv/c?consistency=wat")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad consistency: %d, want 400", resp.StatusCode)
	}
	// Linearizable GET against a follower is misdirected with a hint.
	var follower *Server
	for _, s := range srvs {
		if s != lead {
			follower = s
			break
		}
	}
	resp, err = http.Get("http://" + follower.HTTPAddr() + "/kv/c?consistency=linearizable")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("follower linearizable GET: %d, want 421", resp.StatusCode)
	}
	if resp.Header.Get("X-Raft-Leader") == "" {
		t.Fatal("misdirected response lacks the leader hint")
	}
}

func TestLinearizableReadAfterWriteRealTime(t *testing.T) {
	// Write-then-linearizable-read must always observe the write, repeated
	// across several rounds on a real (loopback) network.
	srvs := startClusterStatic(t, 3, fastTuner)
	lead := waitLeader(t, srvs, 10*time.Second)
	for i := 0; i < 10; i++ {
		want := fmt.Sprintf("gen-%d", i)
		if err := lead.Propose(kv.Command{Op: kv.OpPut, Client: 3, Seq: uint64(i + 1), Key: "rw", Value: []byte(want)}); err != nil {
			t.Fatal(err)
		}
		v, ok, err := lead.GetLinearizable("rw", i%2 == 0)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("round %d: %q %v %v, want %q", i, v, ok, err, want)
		}
	}
}
