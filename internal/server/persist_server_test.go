package server

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/storage"
	"dynatune/internal/transport"
)

// startPersistedCluster boots n servers each backed by a WAL in its own
// temp directory, returning the servers, their address map and WAL dirs so
// individual nodes can be stopped and restarted.
func startPersistedCluster(t *testing.T, n int) ([]*Server, map[raft.ID]transport.PeerAddr, []string) {
	t.Helper()
	addrs := make(map[raft.ID]transport.PeerAddr, n)
	for i := 0; i < n; i++ {
		addrs[raft.ID(i+1)] = transport.PeerAddr{TCP: reservePort(t, "tcp"), UDP: reservePort(t, "udp")}
	}
	dirs := make([]string, n)
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		dirs[i] = t.TempDir()
		srvs[i] = startPersistedNode(t, raft.ID(i+1), addrs, dirs[i])
	}
	return srvs, addrs, dirs
}

// startPersistedNode opens (or reopens) the WAL in dir and starts a node
// recovering from whatever the WAL holds.
func startPersistedNode(t *testing.T, id raft.ID, addrs map[raft.ID]transport.PeerAddr, dir string) *Server {
	t.Helper()
	wal, restored, err := storage.Open(dir, storage.WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Start(Config{
		ID:        id,
		Listen:    addrs[id],
		Peers:     addrs,
		Tuner:     fastTuner(),
		Persister: wal,
		Restored:  restored,
	})
	if err != nil {
		wal.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Stop()
		wal.Close()
	})
	return s
}

func TestRealClusterRestartFromWAL(t *testing.T) {
	srvs, addrs, dirs := startPersistedCluster(t, 3)
	lead := waitLeader(t, srvs, 10*time.Second)
	for i := 0; i < 5; i++ {
		if err := lead.Propose(kv.Command{
			Op: kv.OpPut, Client: 1, Seq: uint64(i + 1),
			Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Pick a follower, wait until it applied, then kill its process.
	var victim *Server
	var victimIdx int
	for i, s := range srvs {
		if s != lead {
			victim, victimIdx = s, i
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v, ok := victim.Get("k4"); ok && string(v) == "v4" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never applied the preload")
		}
		time.Sleep(10 * time.Millisecond)
	}
	victimID := victim.cfg.ID
	victim.Stop() // process death; WAL files survive in dirs[victimIdx]

	// Commit more while it is down.
	lead = waitLeader(t, srvs, 10*time.Second)
	if err := lead.Propose(kv.Command{Op: kv.OpPut, Client: 1, Seq: 6, Key: "during", Value: []byte("down")}); err != nil {
		t.Fatal(err)
	}

	// Restart from the same WAL directory and require full convergence.
	s2 := startPersistedNode(t, victimID, addrs, dirs[victimIdx])
	deadline = time.Now().Add(10 * time.Second)
	for {
		v1, ok1 := s2.Get("k0")
		v2, ok2 := s2.Get("during")
		if ok1 && string(v1) == "v0" && ok2 && string(v2) == "down" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted node did not converge: k0=%q(%v) during=%q(%v)", v1, ok1, v2, ok2)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Its recovered term must be at least the one it saw before stopping.
	if got := s2.Status().Term; got == 0 {
		t.Fatal("restarted node reports term 0 — WAL recovery did not engage")
	}
}
