package storage

import (
	"os"
	"path/filepath"
	"testing"

	"dynatune/internal/raft"
)

func TestWALAppendEmptyBatchIsNoop(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries(nil); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, restored := reopen(t, dir)
	if restored != nil {
		t.Fatalf("empty append left durable state: %+v", restored)
	}
}

func TestWALSyncWorksUnderNoSync(t *testing.T) {
	w, _ := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestWALSnapshotMembershipRoundtrip(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "x")}); err != nil {
		t.Fatal(err)
	}
	snap := raft.Snapshot{
		Index: 1, Term: 1, Data: []byte("state"),
		Voters: []raft.ID{1, 2, 3}, Learners: []raft.ID{4, 5},
	}
	if err := w.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, restored := reopen(t, dir)
	got := restored.Snapshot
	if got == nil || len(got.Voters) != 3 || len(got.Learners) != 2 {
		t.Fatalf("membership lost across restart: %+v", got)
	}
	if got.Voters[2] != 3 || got.Learners[1] != 5 {
		t.Fatalf("membership IDs corrupted: %+v", got)
	}
	if string(got.Data) != "state" {
		t.Fatalf("data corrupted: %q", got.Data)
	}
}

func TestWALSnapshotFileTruncatedMembership(t *testing.T) {
	// Chop the snapshot file so its membership header is incomplete:
	// recovery must fail loudly, not fabricate an empty membership.
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 1, Term: 1, Voters: []raft.ID{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	if err := os.Truncate(snaps[0], 6); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, WALOptions{NoSync: true}); err == nil {
		t.Fatal("truncated snapshot membership must fail recovery")
	}
}

func TestWALSnapshotFileMissingIsCorruption(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 1, Term: 1, Data: []byte("s")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	for _, s := range snaps {
		if err := os.Remove(s); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Open(dir, WALOptions{NoSync: true}); err == nil {
		t.Fatal("recovery with a dangling snapshot pointer must fail")
	}
}

func TestWALOpenOnUnwritableDirFails(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755) //nolint:errcheck // restore for cleanup
	if _, _, err := Open(dir, WALOptions{NoSync: true}); err == nil {
		t.Fatal("Open on an unwritable directory should fail")
	}
}

func TestWALStaleSnapshotIgnoredOnDisk(t *testing.T) {
	// A snapshot older than the current floor must not regress it, even
	// across a restart (the WAL record replays in order; the guard in
	// recovery.setSnapshot drops it).
	w, dir := openFresh(t, WALOptions{NoSync: true})
	for i := uint64(1); i <= 10; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, "x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 8, Term: 1, Data: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 3, Term: 1, Data: []byte("stale")}); err != nil {
		t.Fatal(err)
	}
	if got := w.Restored().Snapshot.Index; got != 8 {
		t.Fatalf("live floor regressed to %d", got)
	}
	w.Close()
	_, restored := reopen(t, dir)
	if got := restored.Snapshot.Index; got != 8 {
		t.Fatalf("recovered floor regressed to %d", got)
	}
	if len(restored.Entries) != 2 || restored.Entries[0].Index != 9 {
		t.Fatalf("suffix after stale snapshot: %+v", restored.Entries)
	}
}
