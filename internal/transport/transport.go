// Package transport carries raft messages over real networks using the
// paper's hybrid scheme (§III-E): heartbeats and their responses travel
// as UDP datagrams (loss-tolerant, measurement-friendly, no head-of-line
// blocking), while all consensus traffic (appends, votes) uses
// length-prefixed frames on per-peer TCP streams.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"dynatune/internal/raft"
	"dynatune/internal/wire"
)

// PeerAddr is one node's pair of listen addresses.
type PeerAddr struct {
	TCP string
	UDP string
}

// Config configures a Transport.
type Config struct {
	// ID is the local node.
	ID raft.ID
	// Listen holds the local listen addresses (host:port; port 0 picks
	// ephemeral ports, exposed via Addrs after Start).
	Listen PeerAddr
	// Peers maps every other node to its addresses. It may be extended
	// with SetPeer after Start (e.g. once ephemeral ports are known).
	Peers map[raft.ID]PeerAddr
	// Handler receives every inbound message. It is called from multiple
	// goroutines; callers serialize into their event loop.
	Handler func(raft.Message)
	// Logger, if nil, defaults to the standard logger with a node prefix.
	Logger *log.Logger
	// DialTimeout bounds outbound TCP connection attempts (default 2s).
	DialTimeout time.Duration
}

// Transport is a live hybrid UDP/TCP endpoint. Safe for concurrent use.
type Transport struct {
	cfg       Config
	lg        *log.Logger
	tcp       net.Listener
	udp       net.PacketConn
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	peers    map[raft.ID]PeerAddr
	conns    map[raft.ID]*outConn
	uaddr    map[raft.ID]*net.UDPAddr
	accepted map[net.Conn]struct{}

	// drops counts messages dropped because a peer was unreachable.
	drops uint64
}

const (
	// outQueueMax bounds messages buffered per peer while its connection
	// is being re-established; overflow drops the oldest first (raft
	// prefers fresh state over stale retransmits).
	outQueueMax = 256
	// Redial pacing: capped exponential with jitter. The first retry is
	// nearly immediate so transient breaks heal within a heartbeat; a
	// peer that stays down costs one dial per dialBackoffMax, not a
	// storm.
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

type outConn struct {
	to raft.ID

	mu      sync.Mutex
	c       net.Conn
	w       *bufio.Writer
	queue   []raft.Message // pending while disconnected
	dialing bool           // a background redialer is running
	closed  bool
}

// Start opens the listeners and begins serving. The returned transport
// must be Closed.
func Start(cfg Config) (*Transport, error) {
	if cfg.ID == raft.None {
		return nil, errors.New("transport: need an ID")
	}
	if cfg.Handler == nil {
		return nil, errors.New("transport: need a Handler")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.New(log.Writer(), fmt.Sprintf("transport[%d] ", cfg.ID), log.LstdFlags|log.Lmicroseconds)
	}
	tcpLn, err := net.Listen("tcp", cfg.Listen.TCP)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen: %w", err)
	}
	udpConn, err := net.ListenPacket("udp", cfg.Listen.UDP)
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("transport: udp listen: %w", err)
	}
	t := &Transport{
		cfg:      cfg,
		lg:       lg,
		tcp:      tcpLn,
		udp:      udpConn,
		done:     make(chan struct{}),
		peers:    map[raft.ID]PeerAddr{},
		conns:    map[raft.ID]*outConn{},
		uaddr:    map[raft.ID]*net.UDPAddr{},
		accepted: map[net.Conn]struct{}{},
	}
	for id, pa := range cfg.Peers {
		t.SetPeer(id, pa)
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.udpLoop()
	return t, nil
}

// Addrs returns the bound listen addresses (useful with ephemeral ports).
func (t *Transport) Addrs() PeerAddr {
	return PeerAddr{TCP: t.tcp.Addr().String(), UDP: t.udp.LocalAddr().String()}
}

// SetPeer registers or updates a peer's addresses.
func (t *Transport) SetPeer(id raft.ID, pa PeerAddr) {
	t.mu.Lock()
	t.peers[id] = pa
	delete(t.uaddr, id) // re-resolve lazily
	oc := t.conns[id]
	delete(t.conns, id)
	t.mu.Unlock()
	// Close outside t.mu: oc.send acquires oc.mu then t.mu, so closing
	// under t.mu would invert the lock order and deadlock.
	if oc != nil {
		oc.close()
	}
}

// Drops returns how many messages were dropped for unreachable peers.
func (t *Transport) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Send transmits m to m.To, choosing UDP for heartbeat traffic and TCP
// otherwise. Failures are dropped silently after logging — raft is built
// for lossy links.
func (t *Transport) Send(m raft.Message) {
	if m.Type == raft.MsgHeartbeat || m.Type == raft.MsgHeartbeatResp {
		t.sendUDP(m)
		return
	}
	t.sendTCP(m)
}

func (t *Transport) sendUDP(m raft.Message) {
	addr := t.udpAddr(m.To)
	if addr == nil {
		t.drop(m, "no udp address")
		return
	}
	if _, err := t.udp.WriteTo(wire.Encode(m), addr); err != nil {
		t.drop(m, err.Error())
	}
}

func (t *Transport) udpAddr(id raft.ID) *net.UDPAddr {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.uaddr[id]; ok {
		return a
	}
	pa, ok := t.peers[id]
	if !ok {
		return nil
	}
	a, err := net.ResolveUDPAddr("udp", pa.UDP)
	if err != nil {
		return nil
	}
	t.uaddr[id] = a
	return a
}

func (t *Transport) sendTCP(m raft.Message) {
	oc := t.conn(m.To)
	if oc == nil {
		t.drop(m, "no tcp address")
		return
	}
	oc.send(t, m)
}

func (t *Transport) conn(id raft.ID) *outConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.peers[id]; !ok {
		return nil
	}
	oc, ok := t.conns[id]
	if !ok {
		oc = &outConn{to: id}
		t.conns[id] = oc
	}
	return oc
}

// send writes m to the peer, dialing on first use. A write failure or a
// failed dial no longer drops the message on the floor: it is queued
// (bounded) and a background redialer re-establishes the connection with
// capped exponential backoff, flushing the queue on success.
func (oc *outConn) send(t *Transport, m raft.Message) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.closed {
		t.drop(m, "conn closed")
		return
	}
	if oc.c == nil {
		if oc.dialing {
			oc.enqueueLocked(t, m)
			return
		}
		// Fast path: dial synchronously so a healthy peer costs no
		// goroutine handoff. On failure, hand off to the redialer.
		if err := oc.dialLocked(t); err != nil {
			oc.enqueueLocked(t, m)
			oc.spawnRedialLocked(t)
			return
		}
	}
	if err := oc.writeLocked(m); err != nil {
		oc.resetLocked()
		oc.enqueueLocked(t, m)
		if !oc.dialing {
			oc.spawnRedialLocked(t)
		}
	}
}

// spawnRedialLocked starts the background redialer unless the transport
// is already shutting down (a wg.Add racing wg.Wait would panic);
// oc.mu held.
func (oc *outConn) spawnRedialLocked(t *Transport) {
	select {
	case <-t.done:
		oc.queue = nil
		return
	default:
	}
	oc.dialing = true
	t.wg.Add(1)
	go oc.redial(t)
}

func (oc *outConn) writeLocked(m raft.Message) error {
	if err := wire.WriteFrame(oc.w, m); err != nil {
		return err
	}
	return oc.w.Flush()
}

// dialLocked connects to the peer; oc.mu held.
func (oc *outConn) dialLocked(t *Transport) error {
	t.mu.Lock()
	pa := t.peers[oc.to]
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", pa.TCP, t.cfg.DialTimeout)
	if err != nil {
		return err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	oc.c = c
	oc.w = bufio.NewWriter(c)
	return nil
}

// enqueueLocked buffers m for delivery after reconnect, evicting the
// oldest message when the queue is full; oc.mu held.
func (oc *outConn) enqueueLocked(t *Transport, m raft.Message) {
	if len(oc.queue) >= outQueueMax {
		dropped := oc.queue[0]
		oc.queue = append(oc.queue[:0], oc.queue[1:]...)
		t.drop(dropped, "reconnect queue full")
	}
	oc.queue = append(oc.queue, m)
}

// redial re-establishes the connection with capped exponential backoff
// plus jitter, then flushes the queued messages in order. It exits when
// the connection is up, the outConn is closed, or the transport shuts
// down (queued messages are then dropped — raft retransmits).
func (oc *outConn) redial(t *Transport) {
	defer t.wg.Done()
	for fails := 1; ; fails++ {
		d := dialBackoffBase << (fails - 1)
		if fails > 16 || d > dialBackoffMax || d <= 0 {
			d = dialBackoffMax
		}
		// Jitter over [d/2, d): desynchronizes peers redialing a node
		// that just restarted.
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-time.After(d):
		case <-t.done:
			oc.dropQueue(t, "transport closed")
			return
		}
		oc.mu.Lock()
		if oc.closed {
			oc.mu.Unlock()
			return
		}
		if oc.c == nil {
			if err := oc.dialLocked(t); err != nil {
				oc.mu.Unlock()
				continue
			}
		}
		// Connected: flush the queue. A mid-flush write error resets the
		// connection and the loop resumes dialing with the remainder.
		for len(oc.queue) > 0 {
			m := oc.queue[0]
			if err := oc.writeLocked(m); err != nil {
				oc.resetLocked()
				break
			}
			oc.queue = append(oc.queue[:0], oc.queue[1:]...)
		}
		if oc.c != nil {
			oc.dialing = false
			if len(oc.queue) == 0 {
				oc.queue = nil
			}
			oc.mu.Unlock()
			return
		}
		oc.mu.Unlock()
	}
}

func (oc *outConn) dropQueue(t *Transport, why string) {
	oc.mu.Lock()
	q := oc.queue
	oc.queue = nil
	oc.dialing = false
	oc.mu.Unlock()
	for _, m := range q {
		t.drop(m, why)
	}
}

func (oc *outConn) close() {
	oc.mu.Lock()
	oc.closed = true
	q := oc.queue
	oc.queue = nil
	oc.resetLocked()
	oc.mu.Unlock()
	_ = q // queued messages die with the conn; raft retransmits
}

func (oc *outConn) resetLocked() {
	if oc.c != nil {
		oc.c.Close()
		oc.c = nil
		oc.w = nil
	}
}

func (t *Transport) drop(m raft.Message, why string) {
	t.mu.Lock()
	t.drops++
	n := t.drops
	t.mu.Unlock()
	if n <= 8 || n%256 == 0 {
		t.lg.Printf("drop %v→%d %v: %s", m.Type, m.To, m.Term, why)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.tcp.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				t.lg.Printf("accept: %v", err)
				return
			}
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *Transport) serveConn(c net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	t.accepted[c] = struct{}{}
	t.mu.Unlock()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		m, err := wire.ReadFrame(r)
		if err != nil {
			return
		}
		if m.To != t.cfg.ID {
			continue // misaddressed frame
		}
		t.cfg.Handler(m)
	}
}

func (t *Transport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.udp.ReadFrom(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				t.lg.Printf("udp read: %v", err)
				return
			}
		}
		m, err := wire.Decode(buf[:n])
		if err != nil || m.To != t.cfg.ID {
			continue
		}
		t.cfg.Handler(m)
	}
}

// Close shuts the transport down and waits for its goroutines. It is
// idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() { close(t.done) })
	t.tcp.Close()
	t.udp.Close()
	t.mu.Lock()
	conns := make([]*outConn, 0, len(t.conns))
	for _, oc := range t.conns {
		conns = append(conns, oc)
	}
	acc := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		acc = append(acc, c)
	}
	t.mu.Unlock()
	// Close outside t.mu to respect the oc.mu → t.mu lock order used by
	// oc.send.
	for _, oc := range conns {
		oc.close()
	}
	for _, c := range acc {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
