// Package scenario is the declarative experiment layer: every evaluation
// run in the repo — the paper's figures (§IV) and the extensions beyond
// them — is described by a Spec composing a topology (size, geo
// placement, shard count), a network-profile schedule, a fault schedule
// (leader pause/resume, crash+restart with persistence, symmetric and
// asymmetric partitions, flapping and degrading links, rolling restarts —
// each a timed, seedable injector driven off the sim engine), a workload
// (key sampler + arrival ramp), a tuner variant, and a measurement
// (failover trials, time-series probes, throughput, linearizable reads,
// membership change).
//
// Specs are plain data: they marshal to JSON, so experiments can live in
// files (`dynabench scenario -file spec.json`) and in the named registry
// (registry.go) instead of bespoke 100-line trial loops. Execution is
// split from description: the engine (engine.go and the per-measure
// runners) drives any testbed satisfying the small Cluster/MultiCluster
// interfaces, and an Env supplies the constructors — either bound to
// concrete cluster/shard Options by the legacy Run* wrappers, or realized
// from the Spec itself by scenario/bind. All repeated-trial measures run
// on one generic sharded trial runner routed through cluster.RunSharded
// (via Env.RunShards), so results are byte-identical for any worker
// count.
package scenario

import (
	"encoding/json"
	"fmt"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/workload"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("150ms", "4s") and unmarshals from either a string or a nanosecond
// number, so JSON specs stay legible.
type Duration time.Duration

// D converts back to the standard type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "250ms"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Measure selects which probe set the engine runs over the composed
// topology/network/faults/workload.
type Measure string

const (
	// MeasureFailover runs repeated fault trials measuring detection and
	// out-of-service (OTS) times — the Fig. 4 / Fig. 8 shape. The first
	// fault in Spec.Faults selects the per-trial injector.
	MeasureFailover Measure = "failover"
	// MeasureSeries runs one long simulation probing once per second
	// (randomized timeouts, link RTT, tuned h, CPU, measured loss) — the
	// Fig. 6 / Fig. 7 shape — with the fault schedule injected on absolute
	// times.
	MeasureSeries Measure = "series"
	// MeasureThroughput drives the open-loop arrival ramp (Fig. 5); with
	// Topology.Groups > 0 it runs the sharded multi-Raft ramp instead.
	MeasureThroughput Measure = "throughput"
	// MeasureReads issues linearizable reads (ReadIndex / lease paths).
	MeasureReads Measure = "reads"
	// MeasureMembership runs the add-learner → promote → failover cycle.
	MeasureMembership Measure = "membership"
)

// Topology places the nodes.
type Topology struct {
	// N is the (per-group) cluster size.
	N int `json:"n"`
	// Groups > 0 selects the sharded multi-Raft testbed with this many
	// independent Raft groups of NodesPerGroup nodes each.
	Groups        int `json:"groups,omitempty"`
	NodesPerGroup int `json:"nodes_per_group,omitempty"`
	// Regions, when set, overrides the uniform profile with the geo RTT
	// matrix; names follow internal/geo ("tokyo", "london", "california",
	// "sydney", "sao-paulo"), one per node.
	Regions       []string `json:"regions,omitempty"`
	GeoJitterFrac float64  `json:"geo_jitter_frac,omitempty"`
	GeoLoss       float64  `json:"geo_loss,omitempty"`
	// InitialMembers, when non-zero, starts only nodes 1..InitialMembers
	// as voters (the membership experiment grows the rest in).
	InitialMembers int `json:"initial_members,omitempty"`
	// Persist gives every node a durable store; required by crash faults.
	Persist bool `json:"persist,omitempty"`
	// SnapshotEvery / SnapshotBytes arm the automatic snapshot policy:
	// every node snapshots its state machine and truncates its Raft log
	// once the live tail exceeds this many entries (or bytes of entry
	// payload). Zero leaves logs to explicit compaction only.
	SnapshotEvery uint64 `json:"snapshot_every_entries,omitempty"`
	SnapshotBytes uint64 `json:"snapshot_bytes,omitempty"`
	// SnapshotRetain is the number of recent entries kept through an
	// automatic truncation (slow followers within this window catch up by
	// log, not snapshot).
	SnapshotRetain uint64 `json:"snapshot_retain,omitempty"`
	// SnapshotChunk bounds one streamed InstallSnapshot message's payload
	// in bytes; 0 ships snapshots as a single envelope.
	SnapshotChunk int `json:"snapshot_chunk,omitempty"`
}

// Segment is one piece of the piecewise-constant link schedule — the JSON
// mirror of netsim.Segment. Dist/Alpha select the delay-noise
// distribution ("" / "normal" = Gaussian jitter, "pareto" = heavy-tailed
// excess with shape Alpha, scale Jitter).
type Segment struct {
	Start  Duration `json:"start"`
	RTT    Duration `json:"rtt"`
	Jitter Duration `json:"jitter,omitempty"`
	Loss   float64  `json:"loss,omitempty"`
	Dup    float64  `json:"dup,omitempty"`
	Dist   string   `json:"dist,omitempty"`
	Alpha  float64  `json:"alpha,omitempty"`
}

// Net is the JSON mirror of netsim.Profile: the uniform all-links
// schedule (ignored when Topology.Regions is set).
type Net struct {
	Segments      []Segment `json:"segments"`
	FlushOnChange bool      `json:"flush_on_change,omitempty"`
}

// parseDist maps a spec's delay-distribution name to the simulator's
// enum. Validation (Fault.validate, Spec.Validate) whitelists the names
// first, so by realization time anything not "pareto" is the normal
// default — every Dist string in the package funnels through here.
func parseDist(name string) netsim.DelayDist {
	if name == "pareto" {
		return netsim.DistPareto
	}
	return netsim.DistNormal
}

// Profile converts to the simulator's schedule.
func (n Net) Profile() netsim.Profile {
	segs := make([]netsim.Segment, len(n.Segments))
	for i, s := range n.Segments {
		segs[i] = netsim.Segment{Start: s.Start.D(), Params: netsim.Params{
			RTT: s.RTT.D(), Jitter: s.Jitter.D(), Loss: s.Loss, Dup: s.Dup,
			Dist: parseDist(s.Dist), Alpha: s.Alpha,
		}}
	}
	return netsim.Profile{Segments: segs, FlushOnChange: n.FlushOnChange}
}

// NetFrom captures a simulator schedule as its JSON mirror, so registry
// entries can reuse the netsim profile constructors.
func NetFrom(p netsim.Profile) Net {
	n := Net{FlushOnChange: p.FlushOnChange, Segments: make([]Segment, len(p.Segments))}
	for i, s := range p.Segments {
		n.Segments[i] = Segment{
			Start: Duration(s.Start), RTT: Duration(s.Params.RTT),
			Jitter: Duration(s.Params.Jitter), Loss: s.Params.Loss, Dup: s.Params.Dup,
			Alpha: s.Params.Alpha,
		}
		if s.Params.Dist == netsim.DistPareto {
			n.Segments[i].Dist = "pareto"
		}
	}
	return n
}

// Stable returns the evaluation's default healthy network: the given RTT
// with 2 ms jitter (the paper's §IV-A baseline uses 100 ms).
func Stable(rtt time.Duration) Net {
	return NetFrom(netsim.Constant(netsim.Params{RTT: rtt, Jitter: 2 * time.Millisecond}))
}

// WithLoss returns a copy of the schedule with every segment's loss rate
// replaced — the sweep engine's loss axis, applied uniformly so a grid
// cell keeps the base scenario's RTT shape.
func (n Net) WithLoss(loss float64) Net {
	out := n
	out.Segments = append([]Segment(nil), n.Segments...)
	for i := range out.Segments {
		out.Segments[i].Loss = loss
	}
	return out
}

// WithRTT returns a copy of the schedule with every segment's RTT
// replaced — the sweep engine's rtt axis. Fluctuation scenarios whose
// meaning is the RTT shape itself should not be swept on this axis.
func (n Net) WithRTT(rtt Duration) Net {
	out := n
	out.Segments = append([]Segment(nil), n.Segments...)
	for i := range out.Segments {
		out.Segments[i].RTT = rtt
	}
	return out
}

// WithJitter returns a copy of the schedule with every segment's jitter
// replaced — the sweep engine's jitter axis (the Gaussian sigma, or the
// Pareto scale for dist=pareto segments).
func (n Net) WithJitter(jitter Duration) Net {
	out := n
	out.Segments = append([]Segment(nil), n.Segments...)
	for i := range out.Segments {
		out.Segments[i].Jitter = jitter
	}
	return out
}

// VariantSpec names the system under test. The bind layer realizes it
// into a concrete tuner factory; the legacy wrappers carry their already-
// constructed cluster.Variant through the Env and use only Name.
type VariantSpec struct {
	// Name: "raft" | "raft-low" | "dynatune" | "dynatune-ext" | "fix-k"
	// (bind keys; the legacy wrappers put the display name here).
	Name string `json:"name"`
	// FixK sets the fixed heartbeat divisor for "fix-k".
	FixK int `json:"fix_k,omitempty"`
	// Dynatune option overrides for file-driven ablations.
	SafetyFactor       float64 `json:"safety_factor,omitempty"`
	ArrivalProbability float64 `json:"arrival_probability,omitempty"`
	MinListSize        int     `json:"min_list_size,omitempty"`
	Estimator          string  `json:"estimator,omitempty"`
}

// Workload describes the open-loop arrival ramp and its keyed traffic.
type Workload struct {
	StartRPS     int      `json:"start_rps"`
	StepRPS      int      `json:"step_rps"`
	StepDuration Duration `json:"step_duration"`
	Steps        int      `json:"steps"`
	Poisson      bool     `json:"poisson,omitempty"`
	// Keys / Zipf parameterize the sharded key sampler (Zipf exponent
	// must exceed 1 when set).
	Keys int     `json:"keys,omitempty"`
	Zipf float64 `json:"zipf,omitempty"`
	// ClientRTT is the client↔leader round trip added to every latency
	// (default 100 ms, the evaluation's setting).
	ClientRTT Duration `json:"client_rtt,omitempty"`
}

// ReadProbe parameterizes MeasureReads.
type ReadProbe struct {
	Reads int      `json:"reads"`
	Every Duration `json:"every"`
	// Mode: "read-index" | "lease".
	Mode string `json:"mode"`
}

// MembershipProbe parameterizes MeasureMembership.
type MembershipProbe struct {
	// Preload is how many log entries are committed before the join.
	Preload int `json:"preload"`
}

// Invariants arms the standing invariant suite on sharded throughput
// runs (the chaos-storm verdict layer). The knobs are part of the spec so
// a persisted reproducer replays with exactly the invariant strength that
// tripped — including a deliberately-weakened one in negative tests.
// Arming it also switches the load generator to sequence-encoded values
// (each write's payload reveals which acked write a later read observes).
type Invariants struct {
	// Every is the stale-read probe period (default 250ms): each probe
	// samples acked keys and reads them through the router's MultiGet
	// path, mid-migration dual-read window included.
	Every Duration `json:"every,omitempty"`
	// ProbeKeys is how many acked keys each probe samples (default 8).
	ProbeKeys int `json:"probe_keys,omitempty"`
	// MaxUnavail bounds any serving group's longest continuous leaderless
	// span (default 15s — generous against detection + election under the
	// storm budgets' fault windows).
	MaxUnavail Duration `json:"max_unavail,omitempty"`
	// Settle is the extra post-heal quiet period before the final
	// durability / convergence sweep (default 3s).
	Settle Duration `json:"settle,omitempty"`
}

// withDefaults fills the unset knobs.
func (inv Invariants) withDefaults() Invariants {
	if inv.Every <= 0 {
		inv.Every = Duration(250 * time.Millisecond)
	}
	if inv.ProbeKeys <= 0 {
		inv.ProbeKeys = 8
	}
	if inv.MaxUnavail <= 0 {
		inv.MaxUnavail = Duration(15 * time.Second)
	}
	if inv.Settle <= 0 {
		inv.Settle = Duration(3 * time.Second)
	}
	return inv
}

// Spec is one declarative experiment.
type Spec struct {
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`

	Measure  Measure     `json:"measure"`
	Topology Topology    `json:"topology"`
	Network  Net         `json:"network"`
	Variant  VariantSpec `json:"variant"`
	Faults   []Fault     `json:"faults,omitempty"`
	Workload *Workload   `json:"workload,omitempty"`

	// Trials counts failover trials; Reps counts ramp repetitions.
	Trials int   `json:"trials,omitempty"`
	Reps   int   `json:"reps,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
	// Settle is the per-trial warm-up before the fault (should exceed the
	// tuner's engagement time).
	Settle Duration `json:"settle,omitempty"`
	// Horizon bounds a series run; CPUEvery is its CPU sampling window.
	Horizon  Duration `json:"horizon,omitempty"`
	CPUEvery Duration `json:"cpu_every,omitempty"`
	// Downtime is the crash→restart delay of crash-leader trials.
	Downtime Duration `json:"downtime,omitempty"`

	Reads      *ReadProbe       `json:"reads,omitempty"`
	Membership *MembershipProbe `json:"membership,omitempty"`

	// Invariants arms the standing invariant suite (sharded throughput
	// runs only); nil runs without checking.
	Invariants *Invariants `json:"invariants,omitempty"`
}

// Ramp converts the workload section to the generator's schedule.
func (w *Workload) Ramp() workload.Ramp {
	return workload.Ramp{
		StartRPS: w.StartRPS, StepRPS: w.StepRPS,
		StepDuration: w.StepDuration.D(), Steps: w.Steps, Poisson: w.Poisson,
	}
}

// WorkloadFrom captures a generator schedule as its JSON mirror.
func WorkloadFrom(r workload.Ramp, clientRTT time.Duration) *Workload {
	return &Workload{
		StartRPS: r.StartRPS, StepRPS: r.StepRPS,
		StepDuration: Duration(r.StepDuration), Steps: r.Steps, Poisson: r.Poisson,
		ClientRTT: Duration(clientRTT),
	}
}

// Validate rejects specs the engine cannot run — including fault
// schedules a measure would silently ignore, so a file-driven spec can
// never report fault-free results while claiming to have injected
// faults.
func (s Spec) Validate() error {
	switch s.Measure {
	case MeasureFailover:
		if s.Trials <= 0 {
			return fmt.Errorf("scenario %q: failover needs trials > 0", s.Name)
		}
		if k := s.TrialFault(); !k.trialInjector() {
			return fmt.Errorf("scenario %q: fault %q cannot drive failover trials", s.Name, k)
		}
		if len(s.Faults) > 1 {
			return fmt.Errorf("scenario %q: failover trials inject exactly one fault per trial; %d scheduled (use a series measure for composite schedules)", s.Name, len(s.Faults))
		}
		if len(s.Faults) == 1 {
			// The trial runner fires the injector once per trial after
			// settle; schedule timing would be silently ignored.
			if f := s.Faults[0]; f.At != 0 || f.Every != 0 || f.Count != 0 || f.Duration != 0 {
				return fmt.Errorf("scenario %q: failover trial faults take no at/every/count/duration — trials use settle (and downtime for crash-leader); use a series measure for timed schedules", s.Name)
			}
		}
	case MeasureSeries:
		if s.Horizon <= 0 {
			return fmt.Errorf("scenario %q: series needs horizon > 0", s.Name)
		}
	case MeasureThroughput:
		if s.Workload == nil {
			return fmt.Errorf("scenario %q: throughput needs a workload", s.Name)
		}
		if err := s.Workload.Ramp().Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if s.Topology.Groups > 0 {
			// The sharded runner injects group-lifecycle faults, link-level
			// faults (every group rides the consolidated deployment's shared
			// physical mesh, so node indices address physical nodes
			// 1..NodesPerGroup and one cut affects every co-located group),
			// and group-addressed process faults (the *-node kinds carrying
			// a Group target, resolved to that group's leader at fire time).
			groups := s.Topology.Groups
			for i, f := range s.Faults {
				switch {
				case f.Group > 0 && f.Kind.groupAddressed():
					// Group addressing targets the initial group table; a
					// group booted mid-run has no stable 1-based name a spec
					// could mean.
					if f.Group > s.Topology.Groups {
						return fmt.Errorf("scenario %q: fault %d targets group %d of %d", s.Name, i, f.Group, s.Topology.Groups)
					}
					continue
				case f.Kind.shardLink():
					continue
				case !f.Kind.rebalance():
					return fmt.Errorf("scenario %q: fault %d: the sharded throughput runner injects rebalance faults (%s/%s), physical-link faults, and group-addressed process faults, not %q",
						s.Name, i, FaultAddGroup, FaultRemoveGroup, f.Kind)
				}
				occ := f.Count
				if occ < 1 {
					occ = 1
				}
				if f.Kind == FaultAddGroup {
					groups += occ
				} else {
					groups -= occ
				}
				if groups < 1 {
					return fmt.Errorf("scenario %q: fault %d would shrink the deployment below one group", s.Name, i)
				}
				// A move scheduled past the ramp never fires (the run ends
				// with the drain tail), yet hasRebalance would still stamp
				// an all-zero rebalance report on the result — e.g. a scale
				// axis shrinking the ramp after groups-delta pinned its At.
				for _, at := range f.occurrences() {
					if at >= s.Workload.Ramp().Duration() {
						return fmt.Errorf("scenario %q: fault %d (%s) fires at %v, at or after the ramp ends (%v) — it would never run",
							s.Name, i, f.Kind, at, s.Workload.Ramp().Duration())
					}
				}
			}
		}
	case MeasureReads:
		if s.Reads == nil || s.Reads.Reads <= 0 || s.Reads.Every <= 0 {
			return fmt.Errorf("scenario %q: reads needs a read probe", s.Name)
		}
		if m := s.Reads.Mode; m != "" && m != "read-index" && m != "lease" {
			return fmt.Errorf("scenario %q: unknown read mode %q", s.Name, m)
		}
		if len(s.Faults) > 0 {
			return fmt.Errorf("scenario %q: the reads runner does not inject faults", s.Name)
		}
	case MeasureMembership:
		if s.Topology.N < 3 {
			return fmt.Errorf("scenario %q: membership change needs N >= 3", s.Name)
		}
		if len(s.Faults) > 0 {
			return fmt.Errorf("scenario %q: the membership runner injects its own failover; a fault schedule is not supported", s.Name)
		}
	default:
		return fmt.Errorf("scenario %q: unknown measure %q", s.Name, s.Measure)
	}
	for i, f := range s.Faults {
		if err := f.validate(); err != nil {
			return fmt.Errorf("scenario %q: fault %d: %w", s.Name, i, err)
		}
		if f.Kind.rebalance() && s.Topology.Groups == 0 {
			return fmt.Errorf("scenario %q: fault %d: %q needs a sharded topology (groups > 0)", s.Name, i, f.Kind)
		}
		if f.Group != 0 && s.Topology.Groups == 0 {
			return fmt.Errorf("scenario %q: fault %d: group addressing needs a sharded topology (groups > 0)", s.Name, i)
		}
		// Bounds-check fixed targets against the topology: an out-of-range
		// node would otherwise surface as an index panic at fire time.
		if n := s.Topology.N; n > 0 {
			if f.Node > n {
				return fmt.Errorf("scenario %q: fault %d targets node %d of %d", s.Name, i, f.Node, n)
			}
			if f.From > n || f.To > n {
				return fmt.Errorf("scenario %q: fault %d targets link %d→%d of %d nodes", s.Name, i, f.From, f.To, n)
			}
			for _, id := range append(append([]int(nil), f.GroupA...), f.GroupB...) {
				if id > n {
					return fmt.Errorf("scenario %q: fault %d partitions node %d of %d", s.Name, i, id, n)
				}
			}
		}
		if f.Kind.needsPersist() && !s.Topology.Persist {
			return fmt.Errorf("scenario %q: fault %q needs topology.persist", s.Name, f.Kind)
		}
		// In a timed schedule a crash with no Duration never restarts and
		// the cluster bleeds quorum permanently; a failover crash trial
		// takes its downtime from Spec.Downtime instead (checked above).
		if s.Measure != MeasureFailover && f.Kind.needsPersist() && f.Duration <= 0 {
			return fmt.Errorf("scenario %q: fault %q needs a duration (crash → restart delay); for a permanent outage use %q", s.Name, f.Kind, FaultPauseNode)
		}
	}
	if n := len(s.Topology.Regions); n > 0 && s.Topology.N > 0 && n != s.Topology.N {
		// One region per node; a mismatch would only surface as a panic
		// when the testbed is built inside a trial worker.
		return fmt.Errorf("scenario %q: %d regions for %d nodes", s.Name, n, s.Topology.N)
	}
	// The distribution name is a string only this layer knows (Profile()
	// would silently map an unknown one to normal); everything else —
	// alpha/jitter coupling, loss and dup ranges, segment ordering — is
	// netsim's validation, run here so a bad file-driven spec fails at
	// Validate instead of panicking inside a trial worker.
	for i, seg := range s.Network.Segments {
		switch seg.Dist {
		case "", "normal":
			if seg.Alpha != 0 {
				return fmt.Errorf("scenario %q: network segment %d: alpha only applies to dist=pareto", s.Name, i)
			}
		case "pareto":
		default:
			return fmt.Errorf("scenario %q: network segment %d: unknown dist %q (want normal or pareto)", s.Name, i, seg.Dist)
		}
	}
	if len(s.Network.Segments) > 0 {
		if err := s.Network.Profile().Validate(); err != nil {
			return fmt.Errorf("scenario %q: network: %w", s.Name, err)
		}
	}
	if s.Topology.Groups > 0 {
		// The sharded testbed runs uniform co-deployed groups; sections it
		// would silently drop are rejected instead.
		switch {
		case s.Measure != MeasureThroughput:
			return fmt.Errorf("scenario %q: sharded topologies only run the throughput measure, not %q", s.Name, s.Measure)
		case len(s.Topology.Regions) > 0:
			return fmt.Errorf("scenario %q: geo regions are not supported for sharded topologies", s.Name)
		case s.Topology.InitialMembers != 0:
			return fmt.Errorf("scenario %q: initial_members is not supported for sharded topologies", s.Name)
		}
	}
	if s.Invariants != nil && s.Topology.Groups == 0 {
		return fmt.Errorf("scenario %q: the invariant suite runs on sharded throughput runs only", s.Name)
	}
	return nil
}

// TrialFault returns the per-trial injector of a failover spec: the first
// fault's kind, defaulting to the paper's leader pause.
func (s Spec) TrialFault() FaultKind {
	if len(s.Faults) == 0 {
		return FaultPauseLeader
	}
	return s.Faults[0].Kind
}

// Scale shrinks a spec's cost by frac (0 < frac ≤ 1) for smoke runs:
// trial counts, repetitions, horizon, reads and workload steps scale
// down; everything structural (topology, faults, variant) is preserved.
// Fault times are NOT scaled — they are part of the scenario's meaning —
// so callers shrinking a series below its fault schedule get exactly what
// they asked for.
func Scale(s Spec, frac float64) Spec {
	if frac >= 1 || frac <= 0 {
		return s
	}
	scaleInt := func(v int) int {
		if v <= 0 {
			return v
		}
		n := int(float64(v) * frac)
		if n < 1 {
			n = 1
		}
		return n
	}
	s.Trials = scaleInt(s.Trials)
	s.Reps = scaleInt(s.Reps)
	s.Horizon = Duration(float64(s.Horizon) * frac)
	if s.Reads != nil {
		r := *s.Reads
		r.Reads = scaleInt(r.Reads)
		s.Reads = &r
	}
	if s.Workload != nil {
		w := *s.Workload
		w.Steps = scaleInt(w.Steps)
		s.Workload = &w
	}
	if s.Membership != nil {
		m := *s.Membership
		m.Preload = scaleInt(m.Preload)
		s.Membership = &m
	}
	return s
}
