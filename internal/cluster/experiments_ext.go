package cluster

import (
	"time"

	"dynatune/internal/scenario"
)

// This file hosts the experiments that go beyond the paper's figures:
// crash-recovery failovers (the paper's §III-A fault model includes
// crash-recovery but its evaluation only pauses containers), linearizable
// read latency (etcd's ReadIndex/lease-read paths interact with the tuned
// election timeout), and online membership changes (a joining node starts
// with cold measurement state). Like the figure experiments they are thin
// spec constructors over the scenario engine.

// CrashRecoveryResult aggregates crash-restart failover trials: the
// engine's unified failover result with RetuneMs (restarted node's tuner
// re-warm) and ReplayEntries (mean durable-log replay length) filled.
type CrashRecoveryResult = scenario.FailoverResult

// RunCrashRecoveryTrials crash-restarts the leader repeatedly: the leader
// process dies (volatile state lost), stays down for downtime, then
// recovers from its durable store and rejoins. Detection/OTS are measured
// as in Fig. 4; additionally the restarted node's tuner warm-up is timed.
func RunCrashRecoveryTrials(opts Options, trials int, settle, downtime time.Duration) CrashRecoveryResult {
	opts.Persist = true
	if trials <= 0 {
		return CrashRecoveryResult{Variant: opts.Variant.Name}
	}
	spec := specFor(opts)
	spec.Name = "crash-recovery"
	spec.Measure = scenario.MeasureFailover
	spec.Faults = []scenario.Fault{{Kind: scenario.FaultCrashLeader}}
	spec.Trials = trials
	spec.Settle = scenario.Duration(settle)
	spec.Downtime = scenario.Duration(downtime)
	return *mustRun(spec, opts.ScenarioEnv()).Failover
}

// ReadMode selects the linearizable-read path under test.
type ReadMode = scenario.ReadMode

const (
	// ReadModeIndex always uses ReadIndex (one heartbeat round per read).
	ReadModeIndex = scenario.ReadModeIndex
	// ReadModeLease serves from the check-quorum lease when it holds and
	// falls back to ReadIndex when it lapsed (etcd's default read path).
	ReadModeLease = scenario.ReadModeLease
)

// ReadLatencyResult aggregates a linearizable-read run.
type ReadLatencyResult = scenario.ReadsResult

// RunReadLatency issues `reads` linearizable reads against the leader at
// the given interval and measures confirmation latency on the virtual
// clock. The interesting comparison is Raft vs Dynatune under
// ReadModeLease: the lease window equals the election timeout, so
// Dynatune's tuned-down Et shrinks the lease while its tuned h=Et/K
// stretches the gap between lease refreshes — lease hits become rare and
// reads pay the ReadIndex round instead. Fast failover is traded against
// cheap reads.
func RunReadLatency(opts Options, reads int, every time.Duration, mode ReadMode) ReadLatencyResult {
	spec := specFor(opts)
	spec.Name = "read-latency"
	spec.Measure = scenario.MeasureReads
	spec.Reads = &scenario.ReadProbe{
		Reads: reads, Every: scenario.Duration(every), Mode: mode.String(),
	}
	return *mustRun(spec, opts.ScenarioEnv()).Reads
}

// MembershipResult records one add-learner → catch-up → promote cycle.
type MembershipResult = scenario.MembershipResult

// RunMembershipChange grows an (N−1)-voter cluster by one node: add it as
// a learner, wait for catch-up, promote it to voter, then crash the leader
// to measure failover with the fresh member in place. Under Dynatune the
// joiner starts with cold measurement state — its election timeout sits at
// the conservative fallback until minListSize heartbeats arrive, so a
// failover immediately after the join is detected by the *old* members'
// tuned timers, not the joiner's.
func RunMembershipChange(opts Options, preload int) MembershipResult {
	opts = opts.withDefaults()
	if opts.N < 3 {
		panic("membership change needs N >= 3")
	}
	opts.InitialMembers = opts.N - 1
	spec := specFor(opts)
	spec.Name = "membership"
	spec.Measure = scenario.MeasureMembership
	spec.Membership = &scenario.MembershipProbe{Preload: preload}
	return *mustRun(spec, opts.ScenarioEnv()).Membership
}
