package trace

import (
	"testing"
	"time"

	"dynatune/internal/raft"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func elected(t time.Duration, node raft.ID, term uint64) raft.Event {
	return raft.Event{Time: t, Node: node, Term: term, Kind: raft.EventLeaderElected, State: raft.StateLeader}
}

func stateChange(t time.Duration, node raft.ID, st raft.State) raft.Event {
	return raft.Event{Time: t, Node: node, Kind: raft.EventStateChange, State: st}
}

func timeout(t time.Duration, node raft.ID) raft.Event {
	return raft.Event{Time: t, Node: node, Kind: raft.EventTimeout}
}

func TestFirstDetectionAfter(t *testing.T) {
	r := NewRecorder()
	r.Trace(timeout(sec(1), 2))
	r.Trace(timeout(sec(5), 3))
	d, ok := r.FirstDetectionAfter(sec(2))
	if !ok || d != sec(3) {
		t.Fatalf("detection = %v, %v", d, ok)
	}
	if _, ok := r.FirstDetectionAfter(sec(10)); ok {
		t.Fatal("detection found past last event")
	}
	// Events exactly at t do not count (failure happens at t).
	d, ok = r.FirstDetectionAfter(sec(1))
	if !ok || d != sec(4) {
		t.Fatalf("detection at boundary = %v, %v", d, ok)
	}
}

func TestFirstElectionAfter(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(2), 4, 7))
	d, who, ok := r.FirstElectionAfter(sec(1))
	if !ok || d != sec(1) || who != 4 {
		t.Fatalf("election = %v by %d, %v", d, who, ok)
	}
}

func TestReignsBasic(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.Trace(stateChange(sec(5), 1, raft.StateFollower))
	r.Trace(elected(sec(7), 2, 2))
	reigns := r.Reigns(sec(10))
	if len(reigns) != 2 {
		t.Fatalf("reigns = %+v", reigns)
	}
	if reigns[0].Start != sec(1) || reigns[0].End != sec(5) || reigns[0].Leader != 1 {
		t.Fatalf("reign 0 = %+v", reigns[0])
	}
	if reigns[1].Start != sec(7) || reigns[1].End != sec(10) {
		t.Fatalf("reign 1 = %+v (should extend to horizon)", reigns[1])
	}
}

func TestReignEndedByDownMark(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.MarkNodeDown(sec(3), 1)
	r.Trace(elected(sec(6), 2, 2))
	reigns := r.Reigns(sec(10))
	if reigns[0].End != sec(3) {
		t.Fatalf("reign not ended by down mark: %+v", reigns[0])
	}
}

func TestDownMarkForNonLeaderIgnored(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.MarkNodeDown(sec(2), 5) // a follower
	reigns := r.Reigns(sec(10))
	if len(reigns) != 1 || reigns[0].End != sec(10) {
		t.Fatalf("follower down-mark disturbed reigns: %+v", reigns)
	}
}

func TestOTSIntervals(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.Trace(stateChange(sec(4), 1, raft.StateFollower))
	r.Trace(elected(sec(6), 2, 2))
	ots := r.OTSIntervals(0, sec(10))
	// Gaps: [0,1) and [4,6).
	if ots.Count() != 2 {
		t.Fatalf("OTS count = %d: %+v", ots.Count(), ots)
	}
	if ots.Total() != sec(3) {
		t.Fatalf("OTS total = %v, want 3s", ots.Total())
	}
	if !ots.Contains(sec(5)) || ots.Contains(sec(2)) {
		t.Fatal("OTS membership wrong")
	}
}

func TestOTSWithOverlappingReigns(t *testing.T) {
	// A stale leader overlaps the new one; no phantom OTS in between.
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.Trace(elected(sec(3), 2, 2))                      // new leader while 1 is stale
	r.Trace(stateChange(sec(4), 1, raft.StateFollower)) // stale one finally yields
	ots := r.OTSIntervals(0, sec(8))
	if ots.Total() != sec(1) { // only [0,1)
		t.Fatalf("OTS = %v, want 1s: %+v", ots.Total(), ots)
	}
}

func TestOTSFullWindowWhenNoLeader(t *testing.T) {
	r := NewRecorder()
	ots := r.OTSIntervals(sec(2), sec(5))
	if ots.Total() != sec(3) || ots.Count() != 1 {
		t.Fatalf("empty-trace OTS = %+v", ots)
	}
}

func TestReelectionBySameNode(t *testing.T) {
	r := NewRecorder()
	r.Trace(elected(sec(1), 1, 1))
	r.Trace(elected(sec(5), 1, 3)) // same node wins again at higher term
	reigns := r.Reigns(sec(10))
	if len(reigns) != 2 {
		t.Fatalf("reigns = %+v", reigns)
	}
	if reigns[0].End != sec(5) {
		t.Fatalf("first reign end = %v", reigns[0].End)
	}
}

func TestCountKindAndReset(t *testing.T) {
	r := NewRecorder()
	r.Trace(timeout(sec(1), 1))
	r.Trace(timeout(sec(2), 2))
	r.Trace(elected(sec(3), 1, 1))
	if got := r.CountKind(raft.EventTimeout, 0, sec(10)); got != 2 {
		t.Fatalf("CountKind = %d", got)
	}
	if got := r.CountKind(raft.EventTimeout, sec(1.5), sec(10)); got != 1 {
		t.Fatalf("CountKind windowed = %d", got)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset failed")
	}
}
