package workload

import (
	"fmt"
	"math/rand"
)

// KeySampler draws keys from a fixed keyspace, giving the load generators
// keyed traffic to fan out across shards. Popularity is either uniform or
// Zipfian (hot keys concentrate on few shards, the adversarial case for a
// hash router). Deterministic given its rng.
type KeySampler struct {
	keys []string
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewKeySampler returns a uniform sampler over n keys.
func NewKeySampler(n int, rng *rand.Rand) (*KeySampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: keyspace size %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: key sampler needs an rng")
	}
	return &KeySampler{keys: makeKeys(n), rng: rng}, nil
}

// NewZipfKeySampler returns a Zipf(s)-distributed sampler over n keys;
// s must be > 1 (the standard library's parameterization).
func NewZipfKeySampler(n int, s float64, rng *rand.Rand) (*KeySampler, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: keyspace size %d", n)
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: key sampler needs an rng")
	}
	if s <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent %v must exceed 1", s)
	}
	z := rand.NewZipf(rng, s, 1, uint64(n-1))
	return &KeySampler{keys: makeKeys(n), rng: rng, zipf: z}, nil
}

func makeKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	return keys
}

// N returns the keyspace size.
func (ks *KeySampler) N() int { return len(ks.keys) }

// Key returns the i-th key of the keyspace (stable naming, useful for
// direct reads in tests and MultiGet demos).
func (ks *KeySampler) Key(i int) string { return ks.keys[i] }

// Next draws the next key.
func (ks *KeySampler) Next() string {
	if ks.zipf != nil {
		return ks.keys[ks.zipf.Uint64()]
	}
	return ks.keys[ks.rng.Intn(len(ks.keys))]
}
