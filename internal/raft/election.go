package raft

// campaign starts a pre-vote round (or a real election when pre-vote is
// disabled). Called on election timeout. Only voters campaign; vote
// requests go to voters only — learners hold no vote to ask for.
func (n *Node) campaign() {
	if n.removed || !n.isVoter() {
		return
	}
	if n.quorum == 1 {
		// We are the only voter: win immediately.
		n.becomeCandidate()
		n.becomeLeader()
		return
	}
	if n.cfg.DisablePreVote {
		n.startElection()
		return
	}
	n.becomePreCandidate()
	n.trace(EventCampaign)
	last, lastTerm := n.log.LastIndex(), n.log.LastTerm()
	for _, p := range n.peers {
		if !n.voters[p] {
			continue
		}
		n.send(Message{
			Type:    MsgPreVote,
			To:      p,
			Term:    n.term + 1, // pre-vote probes the next term without claiming it
			Index:   last,
			LogTerm: lastTerm,
		})
	}
}

// startElection begins a real election (term increment + RequestVote).
func (n *Node) startElection() {
	n.becomeCandidate()
	n.trace(EventCampaign)
	if n.quorum == 1 {
		n.becomeLeader()
		return
	}
	last, lastTerm := n.log.LastIndex(), n.log.LastTerm()
	for _, p := range n.peers {
		if !n.voters[p] {
			continue
		}
		n.send(Message{
			Type:    MsgVote,
			To:      p,
			Term:    n.term,
			Index:   last,
			LogTerm: lastTerm,
		})
	}
}

// inLease reports whether this node has heard from a live leader recently
// enough that it should ignore vote requests (etcd's leader-stickiness /
// CheckQuorum lease). A current leader is always in lease for itself.
func (n *Node) inLease() bool {
	if n.cfg.DisableCheckQuorum {
		return false
	}
	if n.state == StateLeader {
		return true
	}
	if n.lead == None {
		return false
	}
	return n.cfg.Runtime.Now()-n.lastLeaderContact < n.cfg.Tuner.ElectionTimeout()
}

// Step processes one incoming message. It is the node's main entry point.
func (n *Node) Step(m Message) {
	if m.To != n.id && m.To != None {
		return // misrouted
	}
	if (m.Type == MsgVote || m.Type == MsgPreVote) && !m.Transfer && n.inLease() {
		// Leader stickiness (etcd CheckQuorum lease): while we can still
		// hear a leader, ignore campaigners entirely — before any term
		// bump, so a disruptive candidate cannot force the cluster's term
		// up. This is the behaviour that lets a healthy leader survive
		// Fig. 6b's false detections.
		return
	}
	switch {
	case m.Term > n.term:
		switch {
		case m.Type == MsgPreVote:
			// Pre-votes probe term+1 without claiming it; never move our
			// term in response.
		case m.Type == MsgPreVoteResp && !m.Reject:
			// Grants echo the probed future term; no term change either.
		default:
			var lead ID
			if m.Type == MsgApp || m.Type == MsgHeartbeat || m.Type == MsgSnap {
				lead = m.From
			}
			n.becomeFollower(m.Term, lead)
		}
	case m.Term < n.term:
		switch m.Type {
		case MsgApp, MsgHeartbeat, MsgSnap:
			// A stale leader: tell it about the newer term so it steps
			// down (etcd replies MsgAppResp carrying the higher term).
			n.send(Message{Type: MsgAppResp, To: m.From, Term: n.term, Reject: true, Hint: n.log.LastIndex()})
		case MsgPreVote, MsgVote:
			n.send(Message{Type: voteRespType(m.Type), To: m.From, Term: n.term, Reject: true})
		}
		return
	}

	switch m.Type {
	case MsgPreVote:
		n.handlePreVote(m)
	case MsgVote:
		n.handleVote(m)
	case MsgPreVoteResp:
		n.handlePreVoteResp(m)
	case MsgVoteResp:
		n.handleVoteResp(m)
	case MsgApp:
		n.handleAppend(m)
	case MsgAppResp:
		n.handleAppendResp(m)
	case MsgHeartbeat:
		n.handleHeartbeat(m)
	case MsgHeartbeatResp:
		n.handleHeartbeatResp(m)
	case MsgSnap:
		n.handleSnapshot(m)
	case MsgSnapResp:
		n.handleSnapResp(m)
	case MsgTimeoutNow:
		n.handleTimeoutNow(m)
	}
}

func voteRespType(t MsgType) MsgType {
	if t == MsgPreVote {
		return MsgPreVoteResp
	}
	return MsgVoteResp
}

func (n *Node) handlePreVote(m Message) {
	// The lease check happened in Step; grant without changing local
	// state. A grant echoes the probed future term; a rejection carries
	// our own term (etcd behaviour) so it cannot inflate the candidate's
	// term unless we genuinely are ahead. Non-voters have no vote to
	// promise.
	if n.isVoter() && m.Term > n.term && n.log.IsUpToDate(m.Index, m.LogTerm) {
		n.send(Message{Type: MsgPreVoteResp, To: m.From, Term: m.Term})
		return
	}
	n.send(Message{Type: MsgPreVoteResp, To: m.From, Term: n.term, Reject: true})
}

func (n *Node) handleVote(m Message) {
	// Term handling in Step already bumped us to m.Term if it was ahead.
	canVote := n.isVoter() &&
		(n.vote == None || n.vote == m.From) &&
		n.log.IsUpToDate(m.Index, m.LogTerm) &&
		n.state == StateFollower
	if canVote {
		n.vote = m.From
		n.persistHardState()
		n.redrawRandom()
		n.resetElectionTimer()
	}
	n.send(Message{Type: MsgVoteResp, To: m.From, Term: n.term, Reject: !canVote})
}

func (n *Node) handlePreVoteResp(m Message) {
	if n.state != StatePreCandidate {
		return
	}
	// Grants echo the probed term (ours+1); rejections carry the
	// rejecter's term, which is ours when we are merely outvoted (higher
	// terms were handled in Step by reverting to follower).
	if (!m.Reject && m.Term != n.term+1) || (m.Reject && m.Term != n.term) {
		return
	}
	n.tally(m.From, !m.Reject)
	switch {
	case n.count(n.granted) >= n.quorum:
		n.startElection()
	case n.count(n.refused) >= n.quorum:
		n.becomeFollower(n.term, None)
	}
}

func (n *Node) handleVoteResp(m Message) {
	if n.state != StateCandidate || m.Term != n.term {
		return
	}
	n.tally(m.From, !m.Reject)
	switch {
	case n.count(n.granted) >= n.quorum:
		n.becomeLeader()
	case n.count(n.refused) >= n.quorum:
		n.becomeFollower(n.term, None)
	}
}

func (n *Node) tally(from ID, granted bool) {
	if !n.voters[from] {
		return // a non-voter's opinion carries no weight
	}
	if granted {
		n.granted[from] = true
	} else {
		n.refused[from] = true
	}
}

func (n *Node) count(set map[ID]bool) int { return len(set) }
