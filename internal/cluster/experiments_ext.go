package cluster

import (
	"fmt"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/metrics"
	"dynatune/internal/raft"
)

// proposePut proposes one kv put through the leader (the state machine
// decodes every normal entry, so experiments must write real commands).
func proposePut(lead *raft.Node, client, seq uint64, key string, val []byte) error {
	_, err := lead.Propose(kv.Encode(kv.Command{Op: kv.OpPut, Client: client, Seq: seq, Key: key, Value: val}))
	return err
}

// This file hosts the experiments that go beyond the paper's figures:
// crash-recovery failovers (the paper's §III-A fault model includes
// crash-recovery but its evaluation only pauses containers), linearizable
// read latency (etcd's ReadIndex/lease-read paths interact with the tuned
// election timeout), and online membership changes (a joining node starts
// with cold measurement state).

// CrashRecoveryResult aggregates crash-restart failover trials.
type CrashRecoveryResult struct {
	Variant string
	Trials  int
	// DetectionMs / OTSMs as in ElectionResult, for the crash failover.
	DetectionMs []float64
	OTSMs       []float64
	// RetuneMs measures, per trial, how long the restarted node takes to
	// re-apply tuned parameters after rejoining (warm-up: minListSize
	// heartbeats on fallback defaults). Empty for static variants.
	RetuneMs []float64
	// ReplayEntries is the mean number of log entries the restarted node
	// replayed from its durable store.
	ReplayEntries float64
	FailedTrials  int
}

// RunCrashRecoveryTrials crash-restarts the leader repeatedly: the leader
// process dies (volatile state lost), stays down for downtime, then
// recovers from its durable store and rejoins. Detection/OTS are measured
// as in Fig. 4; additionally the restarted node's tuner warm-up is timed.
func RunCrashRecoveryTrials(opts Options, trials int, settle, downtime time.Duration) CrashRecoveryResult {
	opts.Persist = true
	c := New(opts)
	c.Start()
	res := CrashRecoveryResult{Variant: opts.Variant.Name, Trials: trials}
	var replaySum float64
	replayN := 0

	const trialTimeout = 60 * time.Second
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		if c.Leader() == nil {
			res.FailedTrials++
			continue
		}
		// Keep some replicated state flowing so recovery has work to do.
		if err := proposePut(c.Leader(), 1, uint64(t+1), "trial", []byte(fmt.Sprintf("%d", t))); err == nil {
			c.Run(100 * time.Millisecond)
		}

		old, failAt := c.CrashLeader()
		deadline := c.eng.Now() + trialTimeout
		elected := false
		var otsD time.Duration
		for c.eng.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if d, _, ok := c.rec.FirstElectionAfter(failAt); ok {
				otsD, elected = d, true
				break
			}
		}
		if !elected {
			res.FailedTrials++
			c.Restart(old)
			c.Run(2 * time.Second)
			c.rec.Reset()
			continue
		}
		if det, ok := c.rec.FirstDetectionAfter(failAt); ok {
			res.DetectionMs = append(res.DetectionMs, float64(det)/float64(time.Millisecond))
		}
		res.OTSMs = append(res.OTSMs, float64(otsD)/float64(time.Millisecond))

		c.Run(downtime)
		restored := c.Persister(old).Restored()
		if restored != nil {
			replaySum += float64(len(restored.Entries))
			replayN++
		}
		restartAt := c.eng.Now()
		c.Restart(old)

		// Time the rejoined node's tuner warm-up (Dynatune only).
		if tn := c.DynatuneTuner(old); tn != nil {
			warmDeadline := c.eng.Now() + 30*time.Second
			for c.eng.Now() < warmDeadline {
				c.Run(20 * time.Millisecond)
				if tn.Tuned() {
					res.RetuneMs = append(res.RetuneMs,
						float64(c.eng.Now()-restartAt)/float64(time.Millisecond))
					break
				}
			}
		} else {
			c.Run(2 * time.Second)
		}
		c.rec.Reset()
		c.CompactAll(64)
	}
	if replayN > 0 {
		res.ReplayEntries = replaySum / float64(replayN)
	}
	return res
}

// Summary bundles detection/OTS summaries.
func (r CrashRecoveryResult) Summary() (det, ots metrics.Summary) {
	return metrics.Summarize(r.DetectionMs), metrics.Summarize(r.OTSMs)
}

// ReadMode selects the linearizable-read path under test.
type ReadMode int

const (
	// ReadModeIndex always uses ReadIndex (one heartbeat round per read).
	ReadModeIndex ReadMode = iota
	// ReadModeLease serves from the check-quorum lease when it holds and
	// falls back to ReadIndex when it lapsed (etcd's default read path).
	ReadModeLease
)

func (m ReadMode) String() string {
	if m == ReadModeLease {
		return "lease"
	}
	return "read-index"
}

// ReadLatencyResult aggregates a linearizable-read run.
type ReadLatencyResult struct {
	Variant string
	Mode    ReadMode
	Issued  int
	// LatencyMs is the registration→confirmation delay of each successful
	// read (0 for lease hits: they confirm synchronously).
	LatencyMs []float64
	// LeaseHits counts reads served from the lease without a quorum round.
	LeaseHits int
	// Fallbacks counts lease-mode reads that fell back to ReadIndex.
	Fallbacks int
	// Failed counts reads aborted by leadership churn or not-ready leaders.
	Failed int
}

// RunReadLatency issues `reads` linearizable reads against the leader at
// the given interval and measures confirmation latency on the virtual
// clock. The interesting comparison is Raft vs Dynatune under
// ReadModeLease: the lease window equals the election timeout, so
// Dynatune's tuned-down Et shrinks the lease while its tuned h=Et/K
// stretches the gap between lease refreshes — lease hits become rare and
// reads pay the ReadIndex round instead. Fast failover is traded against
// cheap reads.
func RunReadLatency(opts Options, reads int, every time.Duration, mode ReadMode) ReadLatencyResult {
	c := New(opts)
	c.Start()
	if c.WaitLeader(30*time.Second) == nil {
		panic(fmt.Sprintf("read latency(%s): no leader", opts.Variant.Name))
	}
	c.Run(3 * time.Second) // settle + tuner warm-up
	res := ReadLatencyResult{Variant: opts.Variant.Name, Mode: mode}

	issue := func() {
		lead := c.Leader()
		if lead == nil {
			res.Failed++
			return
		}
		res.Issued++
		start := c.eng.Now()
		cb := func(_ uint64, ok bool) {
			if !ok {
				res.Failed++
				return
			}
			res.LatencyMs = append(res.LatencyMs, float64(c.eng.Now()-start)/float64(time.Millisecond))
		}
		var err error
		switch mode {
		case ReadModeIndex:
			err = lead.ReadIndex(cb)
		case ReadModeLease:
			err = lead.LeaseRead(cb)
			if err == nil {
				res.LeaseHits++
			} else if err == raft.ErrLeaseExpired {
				res.Fallbacks++
				err = lead.ReadIndex(cb)
			}
		}
		if err != nil {
			res.Failed++
		}
	}
	for i := 0; i < reads; i++ {
		issue()
		c.Run(every)
	}
	c.Run(2 * time.Second) // drain confirmations
	return res
}

// LatencySummary summarizes the successful read latencies.
func (r ReadLatencyResult) LatencySummary() metrics.Summary {
	return metrics.Summarize(r.LatencyMs)
}

// MembershipResult records one add-learner → catch-up → promote cycle.
type MembershipResult struct {
	Variant string
	// CatchupMs: add-learner commit → learner's applied index reaches the
	// leader's at proposal time.
	CatchupMs float64
	// JoinerTunedMs: learner added → the joiner's Dynatune engages (0 for
	// static variants).
	JoinerTunedMs float64
	// PromoteMs: promotion proposal → applied on the leader.
	PromoteMs float64
	// PostFailoverOTSMs: OTS of a leader crash performed right after the
	// promotion, while the joiner's parameters may still be cold.
	PostFailoverOTSMs float64
	// JoinerBecameLeader reports whether the failover elected the joiner.
	JoinerBecameLeader bool
}

// RunMembershipChange grows an (N−1)-voter cluster by one node: add it as
// a learner, wait for catch-up, promote it to voter, then crash the leader
// to measure failover with the fresh member in place. Under Dynatune the
// joiner starts with cold measurement state — its election timeout sits at
// the conservative fallback until minListSize heartbeats arrive, so a
// failover immediately after the join is detected by the *old* members'
// tuned timers, not the joiner's.
func RunMembershipChange(opts Options, preload int) MembershipResult {
	opts = opts.withDefaults()
	if opts.N < 3 {
		panic("membership change needs N >= 3")
	}
	opts.InitialMembers = opts.N - 1
	c := New(opts)
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		panic(fmt.Sprintf("membership(%s): no leader", opts.Variant.Name))
	}
	c.Run(3 * time.Second)
	lead = c.Leader()
	for i := 0; i < preload; i++ {
		if err := proposePut(lead, 1, uint64(i+1), fmt.Sprintf("preload-%d", i), []byte("x")); err != nil {
			panic(err)
		}
		if i%64 == 63 {
			c.Run(50 * time.Millisecond)
		}
	}
	c.Run(2 * time.Second)

	res := MembershipResult{Variant: opts.Variant.Name}
	joiner := raft.ID(opts.N)
	target := lead.Log().LastIndex()

	addAt := c.eng.Now()
	if _, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddLearner, Node: joiner}); err != nil {
		panic(err)
	}
	deadline := c.eng.Now() + 60*time.Second
	for c.eng.Now() < deadline {
		c.Run(20 * time.Millisecond)
		if c.Node(joiner).Log().Applied() >= target {
			break
		}
	}
	res.CatchupMs = float64(c.eng.Now()-addAt) / float64(time.Millisecond)

	if tn := c.DynatuneTuner(joiner); tn != nil {
		for c.eng.Now() < deadline {
			if tn.Tuned() {
				res.JoinerTunedMs = float64(c.eng.Now()-addAt) / float64(time.Millisecond)
				break
			}
			c.Run(20 * time.Millisecond)
		}
	}

	lead = c.Leader()
	promoteAt := c.eng.Now()
	idx, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddVoter, Node: joiner})
	if err != nil {
		panic(err)
	}
	for c.eng.Now() < deadline {
		c.Run(10 * time.Millisecond)
		if lead.Log().Applied() >= idx {
			break
		}
	}
	res.PromoteMs = float64(c.eng.Now()-promoteAt) / float64(time.Millisecond)
	c.Run(500 * time.Millisecond)

	// Failover with the fresh voter in place.
	old, failAt := c.PauseLeader()
	fDeadline := c.eng.Now() + 60*time.Second
	for c.eng.Now() < fDeadline {
		c.Run(20 * time.Millisecond)
		if d, who, ok := c.rec.FirstElectionAfter(failAt); ok {
			res.PostFailoverOTSMs = float64(d) / float64(time.Millisecond)
			res.JoinerBecameLeader = who == joiner
			break
		}
	}
	c.Resume(old)
	return res
}
