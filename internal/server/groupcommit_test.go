package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/transport"
)

// reserveAddr is reservePort for benchmarks too.
func reserveAddr(tb testing.TB, network string) string {
	tb.Helper()
	if network == "tcp" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	return addr
}

// startBatchCluster boots n servers with group commit enabled.
func startBatchCluster(tb testing.TB, n int, window time.Duration) []*Server {
	tb.Helper()
	addrs := make(map[raft.ID]transport.PeerAddr, n)
	for i := 0; i < n; i++ {
		addrs[raft.ID(i+1)] = transport.PeerAddr{
			TCP: reserveAddr(tb, "tcp"),
			UDP: reserveAddr(tb, "udp"),
		}
	}
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		s, err := Start(Config{
			ID:          raft.ID(i + 1),
			Listen:      addrs[raft.ID(i+1)],
			HTTPListen:  "127.0.0.1:0",
			Peers:       addrs,
			Tuner:       fastTuner(),
			BatchWindow: window,
		})
		if err != nil {
			tb.Fatal(err)
		}
		srvs[i] = s
		tb.Cleanup(s.Stop)
	}
	return srvs
}

// TestGroupCommitCoalesces drives many concurrent writers at a batching
// leader and checks the tentpole invariant: raft entries proposed stays
// well below client commands accepted, with nothing lost or reordered
// past the idempotence table.
func TestGroupCommitCoalesces(t *testing.T) {
	srvs := startBatchCluster(t, 3, time.Millisecond)
	lead := waitLeader(t, srvs, 10*time.Second)

	const writers, per = 16, 25
	errs := make(chan error, writers*per)
	var wg sync.WaitGroup
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				errs <- lead.Propose(kv.Command{
					Op: kv.OpPut, Client: uint64(c + 1), Seq: uint64(i + 1),
					Key:   fmt.Sprintf("w%d-k%d", c, i),
					Value: []byte(fmt.Sprintf("v%d", i)),
				})
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := lead.BatchStats()
	if st.ClientOps != writers*per {
		t.Fatalf("client ops = %d, want %d", st.ClientOps, writers*per)
	}
	if st.Entries >= st.ClientOps {
		t.Fatalf("no coalescing: %d entries for %d client ops", st.Entries, st.ClientOps)
	}
	t.Logf("group commit: %d ops in %d entries (amp %.3f, mean depth %.1f, max %d)",
		st.ClientOps, st.Entries, st.ProposeAmp(), st.MeanDepth(), st.MaxDepth)

	for c := 0; c < writers; c++ {
		key := fmt.Sprintf("w%d-k%d", c, per-1)
		if v, ok := lead.Get(key); !ok || string(v) != fmt.Sprintf("v%d", per-1) {
			t.Fatalf("%s = %q, %v", key, v, ok)
		}
		if got := lead.Store().LastSeq(uint64(c + 1)); got != per {
			t.Fatalf("client %d lastSeq = %d, want %d", c+1, got, per)
		}
	}
}

// TestBatchAbortOnLeaderChange blackholes a batching leader's outbound
// replication so its in-flight batch can never commit, and requires that
// the leadership change fails every waiter promptly — no request rides
// out the full ProposeTimeout — and that client retries through the new
// leader converge without double-applying.
func TestBatchAbortOnLeaderChange(t *testing.T) {
	srvs := startBatchCluster(t, 3, time.Millisecond)
	lead := waitLeader(t, srvs, 10*time.Second)

	// Blackhole leader → followers: its appends vanish, while follower →
	// leader traffic (the higher-term campaign) still lands.
	dead := transport.PeerAddr{TCP: "127.0.0.1:1", UDP: "127.0.0.1:1"}
	for _, s := range srvs {
		if s != lead {
			lead.SetPeer(s.cfg.ID, dead)
		}
	}

	const n = 8
	type putRes struct {
		i   int
		err error
	}
	start := time.Now()
	results := make(chan putRes, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			err := lead.Propose(kv.Command{
				Op: kv.OpPut, Client: 99, Seq: uint64(i + 1),
				Key: fmt.Sprintf("abort-k%d", i), Value: []byte(fmt.Sprintf("v%d", i)),
			})
			results <- putRes{i, err}
		}(i)
	}
	for i := 0; i < n; i++ {
		r := <-results
		if r.err == nil {
			t.Fatalf("put %d committed through a blackholed leader", r.i)
		}
		if !errors.Is(r.err, raft.ErrNotLeader) {
			t.Fatalf("put %d failed with %v, want ErrNotLeader so clients re-route", r.i, r.err)
		}
	}
	// Default ProposeTimeout is 5s; the abort must beat it by a wide
	// margin (step-down needs roughly one 150ms election timeout).
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("batch abort took %v — waiters rode out the timeout", el)
	}

	// Heal, then retry the SAME (client, seq) commands through the new
	// leader: they must all land exactly once.
	for _, s := range srvs {
		if s != lead {
			lead.SetPeer(s.cfg.ID, s.Addrs())
		}
	}
	var newLead *Server
	deadline := time.Now().Add(10 * time.Second)
	for newLead == nil {
		if time.Now().After(deadline) {
			t.Fatal("no new leader after healing")
		}
		for _, s := range srvs {
			if s != lead && s.Status().State == "leader" {
				newLead = s
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	for i := 0; i < n; i++ {
		err := newLead.Propose(kv.Command{
			Op: kv.OpPut, Client: 99, Seq: uint64(i + 1),
			Key: fmt.Sprintf("abort-k%d", i), Value: []byte(fmt.Sprintf("v%d", i)),
		})
		if err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("abort-k%d", i)
		if v, ok := newLead.Get(key); !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("%s = %q, %v after retry", key, v, ok)
		}
	}
	if got := newLead.Store().LastSeq(99); got != n {
		t.Fatalf("lastSeq = %d, want %d", got, n)
	}
}

// BenchmarkProposeAllocs measures per-propose allocations on a
// single-node cluster (commit is local, so this isolates the waiter +
// shared-deadline-heap path that replaced one time.After per call).
func BenchmarkProposeAllocs(b *testing.B) {
	addr := transport.PeerAddr{TCP: reserveAddr(b, "tcp"), UDP: reserveAddr(b, "udp")}
	s, err := Start(Config{
		ID:     1,
		Listen: addr,
		Peers:  map[raft.ID]transport.PeerAddr{1: addr},
		Tuner:  fastTuner(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for s.Status().State != "leader" {
		if time.Now().After(deadline) {
			b.Fatal("single node never became leader")
		}
		time.Sleep(10 * time.Millisecond)
	}
	val := []byte("value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Propose(kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i + 1), Key: "bench", Value: val}); err != nil {
			b.Fatal(err)
		}
	}
}
