package raft

import (
	"fmt"
	"testing"
	"time"
)

// fakePersister is an in-test Persister mirroring the semantics of
// internal/storage (which cannot be imported here without a cycle): it
// tracks hard state, a contiguous entry suffix above a snapshot floor, and
// call counters, and can produce a Restored for restart tests.
type fakePersister struct {
	hs       HardState
	haveHS   bool
	snap     *Snapshot
	entries  []Entry
	appends  int
	hsSaves  int
	truncs   int
	snapshot int
	fail     bool
}

func (f *fakePersister) floor() uint64 {
	if f.snap != nil {
		return f.snap.Index
	}
	return 0
}

func (f *fakePersister) lastIndex() uint64 {
	if n := len(f.entries); n > 0 {
		return f.entries[n-1].Index
	}
	return f.floor()
}

func (f *fakePersister) SaveHardState(hs HardState) error {
	if f.fail {
		return fmt.Errorf("fake persister: injected failure")
	}
	f.hs, f.haveHS = hs, true
	f.hsSaves++
	return nil
}

func (f *fakePersister) AppendEntries(entries []Entry) error {
	if f.fail {
		return fmt.Errorf("fake persister: injected failure")
	}
	f.appends++
	for _, e := range entries {
		switch {
		case e.Index <= f.floor():
		case e.Index == f.lastIndex()+1:
			f.entries = append(f.entries, e)
		case e.Index <= f.lastIndex():
			f.entries = append(f.entries[:e.Index-f.floor()-1], e)
		default:
			return fmt.Errorf("fake persister: gap at %d after %d", e.Index, f.lastIndex())
		}
	}
	return nil
}

func (f *fakePersister) TruncateFrom(index uint64) error {
	f.truncs++
	if index <= f.floor() {
		f.entries = f.entries[:0]
		return nil
	}
	if index <= f.lastIndex() {
		f.entries = f.entries[:index-f.floor()-1]
	}
	return nil
}

func (f *fakePersister) SaveSnapshot(snap Snapshot) error {
	f.snapshot++
	if f.snap != nil && snap.Index < f.snap.Index {
		return nil
	}
	if snap.Index > f.floor() {
		if snap.Index >= f.lastIndex() {
			f.entries = f.entries[:0]
		} else {
			f.entries = append([]Entry(nil), f.entries[snap.Index-f.floor():]...)
		}
	}
	s := snap
	f.snap = &s
	return nil
}

func (f *fakePersister) restored() *Restored {
	r := &Restored{HardState: f.hs, Entries: append([]Entry(nil), f.entries...)}
	if f.snap != nil {
		s := *f.snap
		r.Snapshot = &s
	}
	return r
}

func (f *fakePersister) has(index uint64, data string) bool {
	for _, e := range f.entries {
		if e.Index == index {
			return string(e.Data) == data
		}
	}
	return false
}

func persistedCluster(n int, seed int64) (*testCluster, []*fakePersister) {
	ps := make([]*fakePersister, n)
	for i := range ps {
		ps[i] = &fakePersister{}
	}
	opts := defaultOpts()
	opts.n = n
	opts.seed = seed
	opts.persisters = func(i int) Persister { return ps[i] }
	return newTestCluster(opts), ps
}

func TestPersistElectionSavesTermAndVote(t *testing.T) {
	c, ps := persistedCluster(3, 1)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for i, n := range c.nodes {
		if !ps[i].haveHS {
			t.Fatalf("node %d never persisted hard state", i+1)
		}
		if ps[i].hs.Term != n.Term() {
			t.Fatalf("node %d persisted term %d, live term %d", i+1, ps[i].hs.Term, n.Term())
		}
	}
	// The leader voted for itself in the winning term; that vote is durable.
	lp := ps[lead.ID()-1]
	if lp.hs.Vote != lead.ID() {
		t.Fatalf("leader's persisted vote = %d, want self (%d)", lp.hs.Vote, lead.ID())
	}
	// At least one follower granted a durable vote to the winner.
	granted := 0
	for i, n := range c.nodes {
		if n == lead {
			continue
		}
		if ps[i].hs.Vote == lead.ID() && ps[i].hs.Term == lead.Term() {
			granted++
		}
	}
	if granted == 0 {
		t.Fatal("no follower persisted its vote for the winner")
	}
}

func TestPersistProposalsReachAllDisks(t *testing.T) {
	c, ps := persistedCluster(3, 2)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	idx, err := lead.Propose([]byte("durable-1"))
	if err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	for i := range c.nodes {
		if !ps[i].has(idx, "durable-1") {
			t.Fatalf("node %d disk lacks entry %d", i+1, idx)
		}
	}
}

func TestPersistBeforeSend(t *testing.T) {
	// When an MsgApp carrying entries arrives anywhere, the sender's disk
	// must already hold those entries (persist-before-send).
	ps := make([]*fakePersister, 3)
	for i := range ps {
		ps[i] = &fakePersister{}
	}
	opts := defaultOpts()
	opts.persisters = func(i int) Persister { return ps[i] }
	var violation error
	opts.interceptf = func(to int, m Message) bool {
		if m.Type == MsgApp && len(m.Entries) > 0 && violation == nil {
			sender := ps[m.From-1]
			for _, e := range m.Entries {
				if e.Data == nil {
					continue
				}
				if !sender.has(e.Index, string(e.Data)) {
					violation = fmt.Errorf("node %d sent entry %d before persisting it", m.From, e.Index)
				}
			}
		}
		return true
	}
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for k := 0; k < 10; k++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("cmd-%d", k))); err != nil {
			t.Fatal(err)
		}
		c.run(50 * time.Millisecond)
	}
	c.run(time.Second)
	if violation != nil {
		t.Fatal(violation)
	}
}

func TestPersistRestartRecoversState(t *testing.T) {
	c, ps := persistedCluster(3, 3)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for k := 0; k < 5; k++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(time.Second)

	// Pick a follower, note its durable state, and rebuild a node from it.
	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	old := c.nodes[victim-1]
	restored := ps[victim-1].restored()

	rt := c.rts[victim-1]
	node2, err := NewNode(Config{
		ID:        victim,
		Peers:     []ID{1, 2, 3},
		Runtime:   rt,
		Tuner:     NewStaticTuner(time.Second, 100*time.Millisecond),
		Persister: ps[victim-1],
		Restored:  restored,
	})
	if err != nil {
		t.Fatal(err)
	}
	if node2.Term() != old.Term() {
		t.Fatalf("restored term %d, want %d", node2.Term(), old.Term())
	}
	if node2.Log().LastIndex() != old.Log().LastIndex() {
		t.Fatalf("restored last index %d, want %d", node2.Log().LastIndex(), old.Log().LastIndex())
	}
	for i := uint64(1); i <= old.Log().LastIndex(); i++ {
		eo, _ := old.Log().Entry(i)
		er, ok := node2.Log().Entry(i)
		if !ok || string(eo.Data) != string(er.Data) || eo.Term != er.Term {
			t.Fatalf("entry %d mismatch after restore: %+v vs %+v", i, eo, er)
		}
	}
	// Commit index is volatile: it restarts at the snapshot floor.
	if got := node2.Log().Committed(); got != 0 {
		t.Fatalf("restored commit index %d, want 0 (volatile)", got)
	}
}

func TestPersistRestartDoesNotReappendSuffix(t *testing.T) {
	c, ps := persistedCluster(3, 4)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	if _, err := lead.Propose([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	p := ps[0]
	appendsBefore := p.appends
	if _, err := NewNode(Config{
		ID:        1,
		Peers:     []ID{1, 2, 3},
		Runtime:   c.rts[0],
		Tuner:     NewStaticTuner(time.Second, 100*time.Millisecond),
		Persister: p,
		Restored:  p.restored(),
	}); err != nil {
		t.Fatal(err)
	}
	if p.appends != appendsBefore {
		t.Fatalf("restore re-persisted the recovered suffix (%d new appends)", p.appends-appendsBefore)
	}
}

func TestPersistRestartedFollowerRejoinsAndCatchesUp(t *testing.T) {
	c, ps := persistedCluster(3, 5)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	if _, err := lead.Propose([]byte("before-crash")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)

	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	c.crash(victim)
	idx, err := lead.Propose([]byte("while-down"))
	if err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)

	// Crash-recovery restart: a fresh Node from the durable state replaces
	// the old object (volatile state lost).
	rt := c.rts[victim-1]
	node2, err := NewNode(Config{
		ID:        victim,
		Peers:     []ID{1, 2, 3},
		Runtime:   rt,
		Tuner:     NewStaticTuner(time.Second, 100*time.Millisecond),
		Tracer:    recordTracer{c},
		Persister: ps[victim-1],
		Restored:  ps[victim-1].restored(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.nodes[victim-1] = node2
	rt.node = node2
	rt.down = false
	node2.Start()

	c.run(2 * time.Second)
	if node2.Log().Committed() < idx {
		t.Fatalf("restarted follower commit %d, want >= %d", node2.Log().Committed(), idx)
	}
	e, ok := node2.Log().Entry(idx)
	if !ok || string(e.Data) != "while-down" {
		t.Fatalf("restarted follower entry %d = %+v", idx, e)
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistVoteSurvivesRestartNoDoubleVote(t *testing.T) {
	// The reason HardState exists: a node that granted a vote, crashed and
	// recovered must not vote again in the same term. Restore a voter and
	// throw a competing vote request at it for the term it already voted in.
	c, ps := persistedCluster(3, 6)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	var voter ID
	for i, n := range c.nodes {
		if n != lead && ps[i].hs.Vote == lead.ID() && ps[i].hs.Term == lead.Term() {
			voter = n.ID()
			break
		}
	}
	if voter == None {
		t.Skip("no follower recorded a vote for the winner at this seed")
	}
	rt := c.rts[voter-1]
	node2, err := NewNode(Config{
		ID:        voter,
		Peers:     []ID{1, 2, 3},
		Runtime:   rt,
		Tuner:     NewStaticTuner(time.Second, 100*time.Millisecond),
		Persister: ps[voter-1],
		Restored:  ps[voter-1].restored(),
		// Disable stickiness so the vote rule itself is what rejects.
		DisableCheckQuorum: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var other ID
	for _, p := range []ID{1, 2, 3} {
		if p != voter && p != lead.ID() {
			other = p
		}
	}
	node2.Start()
	node2.Step(Message{
		Type: MsgVote, From: other, To: voter, Term: node2.Term(),
		Index: 100, LogTerm: node2.Term(), // log more than up to date
	})
	// Inspect the node directly: its durable vote must be unchanged.
	if node2.vote != lead.ID() {
		t.Fatalf("restored node revoted: vote=%d, want %d", node2.vote, lead.ID())
	}
}

func TestPersistFailurePanics(t *testing.T) {
	p := &fakePersister{}
	opts := defaultOpts()
	opts.n = 1
	opts.persisters = func(int) Persister { return p }
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	p.fail = true
	defer func() {
		if recover() == nil {
			t.Fatal("a failing persister must panic the node")
		}
	}()
	_, _ = lead.Propose([]byte("doomed"))
}

func TestPersistFollowerTruncationRecorded(t *testing.T) {
	// Force a conflicting suffix: leader 1 writes an entry that only
	// reaches node 2, dies; node 3 wins and overwrites. Node 2's disk must
	// reflect the truncation.
	opts := defaultOpts()
	ps := []*fakePersister{{}, {}, {}}
	opts.persisters = func(i int) Persister { return ps[i] }
	opts.seed = 11
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	// Partition so a proposal reaches at most a minority, then crash the
	// leader before it commits.
	var follower, isolated ID
	for _, n := range c.nodes {
		if n != lead {
			if follower == None {
				follower = n.ID()
			} else {
				isolated = n.ID()
			}
		}
	}
	c.crash(isolated)
	c.crash(follower)
	_, err := lead.Propose([]byte("uncommitted"))
	if err != nil {
		t.Fatal(err)
	}
	c.run(200 * time.Millisecond) // the append leaves, lands nowhere live
	c.crash(lead.ID())
	c.restart(follower)
	c.restart(isolated)
	c.run(5 * time.Second)
	newLead := c.leader()
	if newLead == nil {
		t.Fatal("no new leader after failover")
	}
	if _, err := newLead.Propose([]byte("overwrite")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	c.restart(lead.ID())
	c.run(2 * time.Second)

	// The old leader's disk must no longer hold "uncommitted" anywhere.
	oldP := ps[lead.ID()-1]
	for _, e := range oldP.entries {
		if string(e.Data) == "uncommitted" {
			t.Fatalf("stale uncommitted entry survived on disk at index %d", e.Index)
		}
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
}
