// Quickstart: build a simulated 5-node cluster, kill the leader, and
// watch Dynatune detect the failure an order of magnitude faster than
// stock Raft — the paper's headline result in under a minute of reading.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/netsim"
)

func main() {
	// A WAN-ish network: 100 ms RTT, a little jitter, no loss.
	network := netsim.Constant(netsim.Params{
		RTT:    100 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
	})

	for _, variant := range []cluster.Variant{
		cluster.VariantRaft(),                       // etcd defaults: Et 1000 ms, h 100 ms
		cluster.VariantDynatune(dynatune.Options{}), // paper defaults: s=2, x=0.999
	} {
		c := cluster.New(cluster.Options{N: 5, Seed: 1, Variant: variant, Profile: network})
		c.Start()

		lead := c.WaitLeader(10 * time.Second)
		if lead == nil {
			panic("no leader elected")
		}
		// Let Dynatune collect its minListSize=10 RTT samples and engage.
		c.Run(4 * time.Second)

		fmt.Printf("%s:\n", variant.Name)
		fmt.Printf("  leader: node %d (term %d)\n", lead.ID(), lead.Term())
		if tn := c.DynatuneTuner(2); tn != nil && tn.Tuned() {
			mu, sigma := tn.MeasuredRTT()
			fmt.Printf("  follower 2 measured RTT µ=%.1fms σ=%.1fms → tuned Et=%v, h=%v\n",
				mu*1000, sigma*1000, tn.TunedEt().Round(time.Millisecond), tn.TunedH().Round(time.Millisecond))
		} else {
			fmt.Printf("  static parameters: Et=%v\n", c.Node(2).ElectionTimeoutBase())
		}

		// The paper's §IV-B1 experiment, once: freeze the leader.
		_, failAt := c.PauseLeader()
		c.Run(10 * time.Second)

		detect, _ := c.Recorder().FirstDetectionAfter(failAt)
		ots, winner, _ := c.Recorder().FirstElectionAfter(failAt)
		fmt.Printf("  leader frozen → detected after %v, node %d elected after %v\n\n",
			detect.Round(time.Millisecond), winner, ots.Round(time.Millisecond))
	}
	fmt.Println("(paper Fig. 4: Raft ≈1205/1449 ms, Dynatune ≈237/797 ms)")
}
