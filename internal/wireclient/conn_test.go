package wireclient

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer answers the binary protocol with a handler, optionally
// delaying or reordering; it counts inbound TCP reads so coalescing is
// observable.
type stubServer struct {
	ln     net.Listener
	handle func(Request) Response
	reads  atomic.Int64 // syscall-level reads that returned data
	wg     sync.WaitGroup
}

func startStub(t *testing.T, handle func(Request) Response) *stubServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stubServer{ln: ln, handle: handle}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go s.serve(nc)
		}
	}()
	t.Cleanup(func() { ln.Close(); s.wg.Wait() })
	return s
}

func (s *stubServer) serve(nc net.Conn) {
	defer s.wg.Done()
	defer nc.Close()
	var mu sync.Mutex // serializes response writes
	br := bufio.NewReader(&countingReader{r: nc, n: &s.reads})
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		req, err := DecodeRequest(buf)
		if err != nil {
			return
		}
		go func(req Request) {
			resp := s.handle(req)
			resp.ID = req.ID
			resp.Op = req.Op
			out := AppendResponse(nil, &resp)
			mu.Lock()
			nc.Write(out) //nolint:errcheck // test stub
			mu.Unlock()
		}(req)
	}
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.n.Add(1)
	}
	return n, err
}

func echoHandler(req Request) Response {
	switch req.Op {
	case OpGet:
		return Response{Status: StatusOK, Value: []byte("val-" + req.Key)}
	case OpPut, OpPing:
		return Response{Status: StatusOK}
	default:
		return Response{Status: StatusErr, Err: "unsupported"}
	}
}

func TestConnCall(t *testing.T) {
	s := startStub(t, echoHandler)
	c, err := Dial(s.ln.Addr().String(), time.Second, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&Request{Op: OpGet, Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Value) != "val-k1" {
		t.Fatalf("got %+v", resp)
	}
}

// Many concurrent requests on ONE connection must all complete and demux
// to their own callbacks, even when the server answers out of order.
func TestConnPipelinesConcurrentRequests(t *testing.T) {
	s := startStub(t, func(req Request) Response {
		if req.Key == "slow" {
			time.Sleep(50 * time.Millisecond)
		}
		return echoHandler(req)
	})
	c, err := Dial(s.ln.Addr().String(), time.Second, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A slow request launched first must not block the fast ones: that is
	// the pipelining contract.
	slowDone := make(chan Response, 1)
	c.Do(&Request{Op: OpGet, Key: "slow"}, func(r Response, err error) {
		if err != nil {
			t.Errorf("slow: %v", err)
		}
		slowDone <- r
	})
	const N = 64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%02d", i)
			resp, err := c.Call(&Request{Op: OpGet, Key: key})
			if err != nil {
				t.Errorf("call %s: %v", key, err)
				return
			}
			if string(resp.Value) != "val-"+key {
				t.Errorf("demux mixed up: key %s got %q", key, resp.Value)
			}
		}(i)
	}
	wg.Wait()
	if fastTime := time.Since(start); fastTime > 40*time.Millisecond {
		t.Errorf("fast requests waited on the slow one: %v", fastTime)
	}
	select {
	case r := <-slowDone:
		if string(r.Value) != "val-slow" {
			t.Fatalf("slow got %q", r.Value)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("slow request never completed")
	}
}

// Requests issued within the coalesce window should leave as few batched
// writes, not one TCP segment each.
func TestConnWriteCoalescing(t *testing.T) {
	s := startStub(t, echoHandler)
	c, err := Dial(s.ln.Addr().String(), time.Second, ConnConfig{CoalesceWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Prime the connection so dial/first-write effects are excluded.
	if _, err := c.Call(&Request{Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	base := s.reads.Load()
	const N = 50
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		c.Do(&Request{Op: OpGet, Key: fmt.Sprintf("c%02d", i)}, func(Response, error) { wg.Done() })
	}
	wg.Wait()
	got := s.reads.Load() - base
	// 50 un-coalesced requests would be ~50 reads; batched they should
	// arrive in a small handful. Allow slack for scheduling skew.
	if got > N/2 {
		t.Fatalf("server saw %d reads for %d coalesced requests", got, N)
	}
}

// A dead connection must fail every pending request, not hang them.
func TestConnFailurePropagates(t *testing.T) {
	block := make(chan struct{})
	s := startStub(t, func(req Request) Response {
		<-block
		return echoHandler(req)
	})
	c, err := Dial(s.ln.Addr().String(), time.Second, ConnConfig{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	c.Do(&Request{Op: OpGet, Key: "k"}, func(_ Response, err error) { errc <- err })
	time.Sleep(10 * time.Millisecond) // let it reach the server
	s.ln.Close()
	c.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending request succeeded after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request hung after close")
	}
	close(block)
	if _, err := c.Call(&Request{Op: OpPing}); !errors.Is(err, ErrClosed) && err == nil {
		t.Fatal("closed conn accepted a call")
	}
}

// The pool fails fast during a backoff window instead of dialing a dead
// address on every request, and recovers once the server is back.
func TestPoolDialBackoffAndRecovery(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listening now

	p := NewPool(addr, PoolConfig{Size: 1, DialTimeout: 200 * time.Millisecond,
		BackoffBase: 50 * time.Millisecond, BackoffMax: 200 * time.Millisecond})
	defer p.Close()
	if _, err := p.Get(); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	// Immediately after a failed dial we must be in backoff: the error
	// should be instant (no dial attempt), mentioning the backoff.
	t0 := time.Now()
	_, err = p.Get()
	if err == nil {
		t.Fatal("backoff window handed out a connection")
	}
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Fatalf("backoff Get dialed anyway (took %v)", d)
	}

	// Server comes back; after the backoff expires the pool reconnects.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	s := &stubServer{ln: ln2, handle: echoHandler}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			nc, err := ln2.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go s.serve(nc)
		}
	}()
	// Defers run LIFO: the pool's connection must close before s.wg.Wait,
	// or the stub's serve goroutine blocks forever on a live conn.
	defer func() { p.Close(); ln2.Close(); s.wg.Wait() }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := p.Call(&Request{Op: OpPing}); err == nil && resp.Status == StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after server restart")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
