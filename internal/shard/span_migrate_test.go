package shard

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/scenario"
)

// seedBulk loads n keys directly into every replica of group 0 via a
// snapshot restore — the fixture stands in for a long-lived deployment
// whose resident set is far too large to replay through the client path.
func seedBulk(t *testing.T, s *Cluster, n int) {
	t.Helper()
	fix := kv.NewStore()
	ents := make([]raft.Entry, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("bulk-%06d", i)
		ents = append(ents, raft.Entry{Index: uint64(i + 1), Type: raft.EntryNormal,
			Data: kv.Encode(kv.Command{Op: kv.OpPut, Client: 9, Seq: uint64(i + 1), Key: k, Value: []byte("v-" + k)})})
	}
	fix.Apply(ents)
	snap := fix.MarshalSnapshot()
	for i := 1; i <= s.opts.NodesPerGroup; i++ {
		if err := s.Group(0).Store(raft.ID(i)).RestoreSnapshot(snap, 0); err != nil {
			t.Fatal(err)
		}
	}
}

// runScaleOut seeds `total` keys into a single group, scales out to two,
// and returns the finished migration's stats.
func runScaleOut(t *testing.T, keyStream bool, total int) scenario.RebalanceStats {
	t.Helper()
	s := New(Options{Groups: 1, NodesPerGroup: 1, Seed: 97,
		Profile: fastProfile(), MigrateKeyStream: keyStream})
	seedBulk(t, s, total)
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		t.Fatal("no leader")
	}
	if err := s.AddGroupLive(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	deadline := s.Now() + 20*time.Minute
	for s.Rebalancing() {
		if s.Now() >= deadline {
			t.Fatalf("migration (keyStream=%v) did not finish; phase %d, queue %d",
				keyStream, s.migr.phase, len(s.migr.queue))
		}
		s.Run(100 * time.Millisecond)
	}
	rb := s.Rebalances()
	if len(rb) != 1 {
		t.Fatalf("want 1 rebalance, got %d", len(rb))
	}
	st := rb[0]
	if st.Aborted {
		t.Fatalf("migration (keyStream=%v) aborted", keyStream)
	}
	if st.ProposeErrors != 0 {
		t.Fatalf("migration (keyStream=%v) had %d propose errors", keyStream, st.ProposeErrors)
	}
	// Both modes must end fully converged and clean: destination owns its
	// share, sources dropped their stale copies.
	for g := 0; g < s.Groups(); g++ {
		store, ok := s.leaderStore(GroupID(g))
		if !ok {
			t.Fatalf("group %d lost its leader post-migration", g)
		}
		for _, k := range store.SortedKeys() {
			if s.Router().Route(k) != GroupID(g) {
				t.Fatalf("group %d still holds %q owned by %d", g, k, s.Router().Route(k))
			}
		}
	}
	return st
}

// TestSnapshotShipBeatsKeyStreamFiveX is the issue's headline efficiency
// bound: bulk-moving a >=100k-key span by snapshot-shipped span chunks
// must cost at least 5x fewer replicated commands than streaming the
// span key by key.
func TestSnapshotShipBeatsKeyStreamFiveX(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk fixture is large")
	}
	const total = 240_000

	ship := runScaleOut(t, false, total)
	stream := runScaleOut(t, true, total)

	if ship.MovedKeys < 100_000 {
		t.Fatalf("moved span too small for the bound: %d keys", ship.MovedKeys)
	}
	if stream.MovedKeys != ship.MovedKeys {
		t.Fatalf("modes moved different spans: ship %d, stream %d", ship.MovedKeys, stream.MovedKeys)
	}
	if ship.BulkChunks == 0 {
		t.Fatal("snapshot-ship mode replicated no span chunks")
	}
	if stream.BulkChunks != 0 {
		t.Fatalf("key-stream mode replicated %d span chunks", stream.BulkChunks)
	}
	if ship.ProposeOps == 0 || stream.ProposeOps == 0 {
		t.Fatalf("missing propose counts: ship %d, stream %d", ship.ProposeOps, stream.ProposeOps)
	}
	if ratio := float64(stream.ProposeOps) / float64(ship.ProposeOps); ratio < 5 {
		t.Fatalf("snapshot-ship only %.1fx cheaper (%d vs %d replicated commands), want >=5x",
			ratio, ship.ProposeOps, stream.ProposeOps)
	}
	t.Logf("moved %d keys: ship %d ops (%d chunks), stream %d ops, %.0fx",
		ship.MovedKeys, ship.ProposeOps, ship.BulkChunks, stream.ProposeOps,
		float64(stream.ProposeOps)/float64(ship.ProposeOps))
}
