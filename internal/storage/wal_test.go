package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dynatune/internal/raft"
)

func openFresh(t *testing.T, opts WALOptions) (*WAL, string) {
	t.Helper()
	dir := t.TempDir()
	w, restored, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if restored != nil {
		t.Fatalf("fresh WAL restored %+v", restored)
	}
	t.Cleanup(func() { w.Close() })
	return w, dir
}

func reopen(t *testing.T, dir string) (*WAL, *raft.Restored) {
	t.Helper()
	w, restored, err := Open(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, restored
}

func TestWALRoundtrip(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.SaveHardState(raft.HardState{Term: 3, Vote: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntries([]raft.Entry{entry(3, 1, "a"), entry(3, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, restored := reopen(t, dir)
	if restored == nil {
		t.Fatal("nothing restored")
	}
	if restored.HardState != (raft.HardState{Term: 3, Vote: 2}) {
		t.Fatalf("hard state %+v", restored.HardState)
	}
	if len(restored.Entries) != 2 || string(restored.Entries[1].Data) != "b" {
		t.Fatalf("entries %+v", restored.Entries)
	}
}

func TestWALTruncateSurvivesRestart(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "a"), entry(1, 2, "b"), entry(1, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateFrom(2); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntries([]raft.Entry{entry(2, 2, "B")}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	_, restored := reopen(t, dir)
	if len(restored.Entries) != 2 {
		t.Fatalf("restored %d entries, want 2", len(restored.Entries))
	}
	if restored.Entries[1].Term != 2 || string(restored.Entries[1].Data) != "B" {
		t.Fatalf("entry 2 = %+v", restored.Entries[1])
	}
}

func TestWALSnapshotCompactsSegments(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true, SegmentBytes: 256})
	for i := uint64(1); i <= 50; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, fmt.Sprintf("value-%03d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	manyBefore, err := w.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(manyBefore) < 2 {
		t.Fatalf("expected multiple segments before snapshot, got %d", len(manyBefore))
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 40, Term: 1, Data: []byte("state@40")}); err != nil {
		t.Fatal(err)
	}
	after, err := w.segments()
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite may spill into a second segment when it exceeds
	// SegmentBytes; what matters is that the old chain was purged.
	if len(after) >= len(manyBefore) {
		t.Fatalf("segments not compacted: %d before, %d after", len(manyBefore), len(after))
	}
	for _, seq := range after {
		for _, old := range manyBefore {
			if seq == old {
				t.Fatalf("old segment %d survived compaction", seq)
			}
		}
	}
	w.Close()

	_, restored := reopen(t, dir)
	if restored.Snapshot == nil || restored.Snapshot.Index != 40 || string(restored.Snapshot.Data) != "state@40" {
		t.Fatalf("snapshot %+v", restored.Snapshot)
	}
	if len(restored.Entries) != 10 || restored.Entries[0].Index != 41 {
		t.Fatalf("suffix %d entries starting at %d", len(restored.Entries), restored.Entries[0].Index)
	}
}

func TestWALPurgesOldSnapshots(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	for i := uint64(1); i <= 20; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, "x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 5, Term: 1, Data: []byte("old")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 15, Term: 1, Data: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("snapshot files %v, want exactly the newest", matches)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "good")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveHardState(raft.HardState{Term: 9}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Simulate a torn final write: chop bytes off the segment tail.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, st.Size()-5); err != nil {
		t.Fatal(err)
	}

	_, restored := reopen(t, dir)
	if restored == nil || len(restored.Entries) != 1 || string(restored.Entries[0].Data) != "good" {
		t.Fatalf("restored %+v, want the intact first record", restored)
	}
	if restored.HardState.Term == 9 {
		t.Fatal("torn hard-state record should have been dropped")
	}
}

func TestWALCorruptTailBitFlip(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "keep")}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendEntries([]raft.Entry{entry(1, 2, "flip")}); err != nil {
		t.Fatal(err)
	}
	w.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF // damage the last record's payload
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, restored := reopen(t, dir)
	if restored == nil || len(restored.Entries) != 1 || string(restored.Entries[0].Data) != "keep" {
		t.Fatalf("restored %+v, want only the intact record", restored)
	}
}

func TestWALAppendAfterTornRecovery(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	seg := segs[len(segs)-1]
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 42, 1, 2}); err != nil { // partial frame
		t.Fatal(err)
	}
	f.Close()

	w2, restored := reopen(t, dir)
	if len(restored.Entries) != 1 {
		t.Fatalf("restored %+v", restored)
	}
	// The recovered WAL must be appendable and produce a clean chain.
	if err := w2.AppendEntries([]raft.Entry{entry(1, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, restored2 := reopen(t, dir)
	if len(restored2.Entries) != 2 || string(restored2.Entries[1].Data) != "b" {
		t.Fatalf("after recovery+append: %+v", restored2.Entries)
	}
}

func TestWALMidChainCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	w, _, err := Open(dir, WALOptions{NoSync: true, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, "padding-padding-padding")}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, WALOptions{NoSync: true}); err == nil {
		t.Fatal("mid-chain corruption must not be silently skipped")
	}
}

func TestWALSegmentRotation(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true, SegmentBytes: 200})
	for i := uint64(1); i <= 30; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, "0123456789abcdef")}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := w.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected ≥3 segments, got %d", len(segs))
	}
	w.Close()
	_, restored := reopen(t, dir)
	if len(restored.Entries) != 30 {
		t.Fatalf("restored %d entries across segments, want 30", len(restored.Entries))
	}
}

func TestWALReopenAppendReopen(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, restored := reopen(t, dir)
	if len(restored.Entries) != 1 {
		t.Fatalf("first reopen: %+v", restored)
	}
	if err := w2.AppendEntries([]raft.Entry{entry(1, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	if err := w2.SaveHardState(raft.HardState{Term: 2, Vote: 1}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, restored2 := reopen(t, dir)
	if len(restored2.Entries) != 2 || restored2.HardState.Term != 2 {
		t.Fatalf("second reopen: %+v", restored2)
	}
}

func TestWALClosedAppendFails(t *testing.T) {
	w, _ := openFresh(t, WALOptions{NoSync: true})
	w.Close()
	if err := w.SaveHardState(raft.HardState{Term: 1}); err == nil {
		t.Fatal("append on closed WAL should fail")
	}
}

// TestWALReplayMatchesLiveState is a quick property: any operation
// sequence applied to a WAL recovers, after close+reopen, to exactly the
// state the live WAL reported.
func TestWALReplayMatchesLiveState(t *testing.T) {
	type op struct {
		Kind  uint8
		Term  uint64
		Count uint8
		Data  []byte
	}
	check := func(ops []op, segBytes uint16) bool {
		dir := t.TempDir()
		w, _, err := Open(dir, WALOptions{NoSync: true, SegmentBytes: int64(segBytes%2000) + 64})
		if err != nil {
			t.Log(err)
			return false
		}
		idx := uint64(0)
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				err = w.SaveHardState(raft.HardState{Term: o.Term, Vote: raft.ID(o.Count % 5)})
			case 1:
				var batch []raft.Entry
				for j := uint8(0); j < o.Count%4+1; j++ {
					idx++
					batch = append(batch, raft.Entry{Term: o.Term, Index: idx, Data: o.Data})
				}
				err = w.AppendEntries(batch)
			case 2:
				if idx > 1 {
					cut := idx/2 + 1
					err = w.TruncateFrom(cut)
					idx = cut - 1
				}
			case 3:
				if idx > 0 {
					err = w.SaveSnapshot(raft.Snapshot{Index: idx/2 + 1, Term: o.Term, Data: o.Data})
					if idx < idx/2+1 {
						idx = idx/2 + 1
					}
				}
			}
			if err != nil {
				t.Log(err)
				return false
			}
		}
		live := w.Restored()
		if err := w.Close(); err != nil {
			t.Log(err)
			return false
		}
		w2, recovered, err := Open(dir, WALOptions{NoSync: true})
		if err != nil {
			t.Log(err)
			return false
		}
		defer w2.Close()
		if err := restoredEqual(live, recovered); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWALSnapshotAtFloorAfterRestart(t *testing.T) {
	// Snapshot, restart, then continue appending above the floor: indexes
	// must chain off the snapshot.
	w, dir := openFresh(t, WALOptions{NoSync: true})
	for i := uint64(1); i <= 5; i++ {
		if err := w.AppendEntries([]raft.Entry{entry(1, i, "x")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 5, Term: 1, Data: []byte("full")}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, restored := reopen(t, dir)
	if restored.Snapshot == nil || restored.Snapshot.Index != 5 || len(restored.Entries) != 0 {
		t.Fatalf("restored %+v", restored)
	}
	if err := w2.AppendEntries([]raft.Entry{entry(2, 6, "y")}); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, restored2 := reopen(t, dir)
	if len(restored2.Entries) != 1 || restored2.Entries[0].Index != 6 {
		t.Fatalf("suffix %+v", restored2.Entries)
	}
}

func TestWALLargeSnapshotData(t *testing.T) {
	w, dir := openFresh(t, WALOptions{NoSync: true})
	big := bytes.Repeat([]byte("snapshot-block"), 10000)
	if err := w.AppendEntries([]raft.Entry{entry(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := w.SaveSnapshot(raft.Snapshot{Index: 1, Term: 1, Data: big}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, restored := reopen(t, dir)
	if !bytes.Equal(restored.Snapshot.Data, big) {
		t.Fatal("large snapshot data did not roundtrip")
	}
}
