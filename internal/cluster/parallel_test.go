package cluster

import (
	"testing"
	"time"
)

func TestShardTrialCounts(t *testing.T) {
	cases := []struct {
		trials int
		want   []int
	}{
		{0, nil},
		{1, []int{1}},
		{trialShardSize, []int{trialShardSize}},
		{trialShardSize + 1, []int{trialShardSize, 1}},
		{3 * trialShardSize, []int{trialShardSize, trialShardSize, trialShardSize}},
	}
	for _, c := range cases {
		got := shardTrialCounts(c.trials, trialShardSize)
		if len(got) != len(c.want) {
			t.Fatalf("shardTrialCounts(%d): %v, want %v", c.trials, got, c.want)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Fatalf("shardTrialCounts(%d): %v, want %v", c.trials, got, c.want)
			}
		}
		if sum != c.trials {
			t.Fatalf("shardTrialCounts(%d) sums to %d", c.trials, sum)
		}
	}
}

func TestShardSeedKeepsShardZero(t *testing.T) {
	if shardSeed(42, 0) != 42 {
		t.Fatal("shard 0 must keep the experiment seed for historical reproducibility")
	}
	if shardSeed(42, 1) == shardSeed(42, 2) {
		t.Fatal("distinct shards share a seed")
	}
}

func TestRunShardedOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out := RunSharded(workers, 37, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", workers, i, v)
			}
		}
	}
	if got := RunSharded(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("zero shards returned %v", got)
	}
}

func TestRunShardedPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	RunSharded(4, 8, func(i int) int {
		if i == 5 {
			panic("boom")
		}
		return i
	})
}

// TestElectionTrialsIdenticalAcrossWorkerCounts is the parallel-runner
// acceptance check: a multi-shard experiment must produce byte-identical
// summaries no matter how many workers execute it.
func TestElectionTrialsIdenticalAcrossWorkerCounts(t *testing.T) {
	const trials = 2*trialShardSize + 10 // 3 shards
	opts := Options{N: 5, Seed: 63, Variant: VariantRaft(), Profile: stableNet(100)}
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "1")
	seq := electionFingerprint(RunElectionTrials(opts, trials, 3*time.Second))
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "7")
	par := electionFingerprint(RunElectionTrials(opts, trials, 3*time.Second))
	if seq != par {
		t.Fatalf("parallel election trials diverged from sequential:\n seq %q\n par %q", seq, par)
	}
}

func TestTransferTrialsIdenticalAcrossWorkerCounts(t *testing.T) {
	const trials = trialShardSize + 5 // 2 shards
	opts := Options{N: 5, Seed: 65, Variant: VariantRaft(), Profile: stableNet(100)}
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "1")
	a := RunTransferTrials(opts, trials, time.Second)
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "5")
	b := RunTransferTrials(opts, trials, time.Second)
	if len(a.HandoverMs) != len(b.HandoverMs) || a.FailedTrials != b.FailedTrials {
		t.Fatalf("shape diverged: %d/%d vs %d/%d", len(a.HandoverMs), a.FailedTrials, len(b.HandoverMs), b.FailedTrials)
	}
	for i := range a.HandoverMs {
		if a.HandoverMs[i] != b.HandoverMs[i] {
			t.Fatalf("sample %d diverged: %v vs %v", i, a.HandoverMs[i], b.HandoverMs[i])
		}
	}
}

func TestTrialWorkersEnvOverride(t *testing.T) {
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "3")
	if got := TrialWorkers(); got != 3 {
		t.Fatalf("TrialWorkers() = %d with env 3", got)
	}
	t.Setenv("DYNATUNE_TRIAL_WORKERS", "bogus")
	if got := TrialWorkers(); got < 1 {
		t.Fatalf("TrialWorkers() = %d with bogus env", got)
	}
}
