// Package wireclient is the binary client protocol for the real serving
// path: a length-prefixed (uvarint) framing with request-id demultiplexing
// so one TCP connection carries many concurrent pipelined requests, a
// pooled connection layer with write coalescing (requests queued within a
// small window leave as one batched write), and a sharded client that
// follows in-protocol leader hints. It replaces HTTP on the hot path: no
// header parsing, no per-request connection state, and responses may
// complete out of order.
//
// Frame layout (both directions):
//
//	uvarint frameLen | payload
//
// Request payload:
//
//	uvarint reqID | op(1) | flags(1) | body
//	  OpPut:      uvarint klen | key | uvarint vlen | value
//	  OpGet:      uvarint klen | key
//	  OpMultiGet: uvarint n | n × (uvarint klen | key)
//	  OpPing:     empty
//
// Response payload:
//
//	uvarint reqID | op(1) | status(1) | body
//	  StatusOK   + OpGet:      uvarint vlen | value
//	  StatusOK   + OpMultiGet: uvarint n | n × (found(1) | uvarint vlen | value)
//	  StatusNotLeader:         uvarint leaderHint (node ID, 0 = unknown)
//	  StatusErr:               uvarint mlen | message
//
// Buffers cycle through the size-classed pool shared with internal/wire
// (wire.GetBuf/PutBuf), keeping the encode path allocation-free in steady
// state.
package wireclient

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dynatune/internal/wire"
)

// Op enumerates client operations.
type Op uint8

const (
	// OpPut replicates a key=value write through the owning group's leader.
	OpPut Op = iota + 1
	// OpGet reads a key (leader lease read by default, FlagLocal for a
	// local read on whichever node answers).
	OpGet
	// OpMultiGet reads several keys in one request; results are positional.
	OpMultiGet
	// OpPing measures a protocol round trip without touching the store.
	OpPing
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpMultiGet:
		return "multiget"
	case OpPing:
		return "ping"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Status enumerates response outcomes.
type Status uint8

const (
	// StatusOK is a successful operation.
	StatusOK Status = iota
	// StatusNotFound reports an absent key (OpGet only).
	StatusNotFound
	// StatusNotLeader redirects: the addressed node is not the group's
	// leader; the payload carries its best leader hint. This is the
	// in-protocol counterpart of the HTTP 421 + X-Raft-Leader contract.
	StatusNotLeader
	// StatusErr is any other failure, with a message.
	StatusErr
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusNotLeader:
		return "not-leader"
	case StatusErr:
		return "err"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// FlagLocal requests a local (possibly stale) read instead of the default
// leader lease read.
const FlagLocal = 1 << 0

// MaxFrame bounds one protocol frame; it matches the raft wire codec's cap
// so both serving paths share buffer classes.
const MaxFrame = wire.MaxFrame

// ErrCorrupt reports an undecodable frame.
var ErrCorrupt = errors.New("wireclient: corrupt frame")

// Request is one decoded client request.
type Request struct {
	ID    uint64
	Op    Op
	Flags uint8
	Key   string
	Value []byte
	Keys  []string // OpMultiGet
}

// Response is one decoded reply.
type Response struct {
	ID     uint64
	Op     Op
	Status Status
	Value  []byte
	// Multi holds OpMultiGet results positionally; Found marks which keys
	// existed.
	Multi [][]byte
	Found []bool
	// Leader is the hint carried by StatusNotLeader (0 = unknown).
	Leader uint64
	// Err is the StatusErr message.
	Err string
}

// AppendRequest serializes r (framed) onto buf.
func AppendRequest(buf []byte, r *Request) []byte {
	body := wire.GetBuf(2 + 2*binary.MaxVarintLen64 + len(r.Key) + len(r.Value))
	body = binary.AppendUvarint(body, r.ID)
	body = append(body, byte(r.Op), r.Flags)
	switch r.Op {
	case OpPut:
		body = appendBytes(body, []byte(r.Key))
		body = appendBytes(body, r.Value)
	case OpGet:
		body = appendBytes(body, []byte(r.Key))
	case OpMultiGet:
		body = binary.AppendUvarint(body, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			body = appendBytes(body, []byte(k))
		}
	case OpPing:
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	wire.PutBuf(body)
	return buf
}

// AppendResponse serializes r (framed) onto buf.
func AppendResponse(buf []byte, r *Response) []byte {
	body := wire.GetBuf(2 + 2*binary.MaxVarintLen64 + len(r.Value))
	body = binary.AppendUvarint(body, r.ID)
	body = append(body, byte(r.Op), byte(r.Status))
	switch r.Status {
	case StatusOK:
		switch r.Op {
		case OpGet:
			body = appendBytes(body, r.Value)
		case OpMultiGet:
			body = binary.AppendUvarint(body, uint64(len(r.Multi)))
			for i, v := range r.Multi {
				found := byte(0)
				if i < len(r.Found) && r.Found[i] {
					found = 1
				}
				body = append(body, found)
				body = appendBytes(body, v)
			}
		}
	case StatusNotLeader:
		body = binary.AppendUvarint(body, r.Leader)
	case StatusErr:
		body = appendBytes(body, []byte(r.Err))
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	buf = append(buf, body...)
	wire.PutBuf(body)
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// DecodeRequest parses one request payload (the frame length prefix
// already consumed). The returned request's byte fields are copies — the
// caller may recycle b.
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	id, n := binary.Uvarint(b)
	if n <= 0 || len(b) < n+2 {
		return r, fmt.Errorf("%w: short request header", ErrCorrupt)
	}
	r.ID = id
	r.Op = Op(b[n])
	r.Flags = b[n+1]
	rest := b[n+2:]
	var err error
	switch r.Op {
	case OpPut:
		var k, v []byte
		if k, rest, err = takeBytes(rest); err != nil {
			return r, fmt.Errorf("%w: put key: %v", ErrCorrupt, err)
		}
		if v, rest, err = takeBytes(rest); err != nil {
			return r, fmt.Errorf("%w: put value: %v", ErrCorrupt, err)
		}
		r.Key = string(k)
		r.Value = append([]byte(nil), v...)
	case OpGet:
		var k []byte
		if k, rest, err = takeBytes(rest); err != nil {
			return r, fmt.Errorf("%w: get key: %v", ErrCorrupt, err)
		}
		r.Key = string(k)
	case OpMultiGet:
		cnt, n := binary.Uvarint(rest)
		if n <= 0 {
			return r, fmt.Errorf("%w: multiget count", ErrCorrupt)
		}
		rest = rest[n:]
		if cnt > uint64(len(rest)) { // each key costs ≥1 byte on the wire
			return r, fmt.Errorf("%w: multiget count %d exceeds payload", ErrCorrupt, cnt)
		}
		r.Keys = make([]string, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			var k []byte
			if k, rest, err = takeBytes(rest); err != nil {
				return r, fmt.Errorf("%w: multiget key %d: %v", ErrCorrupt, i, err)
			}
			r.Keys = append(r.Keys, string(k))
		}
	case OpPing:
	default:
		return r, fmt.Errorf("%w: bad op %d", ErrCorrupt, b[n])
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return r, nil
}

// DecodeResponse parses one response payload. Byte fields are copies.
func DecodeResponse(b []byte) (Response, error) {
	var r Response
	id, n := binary.Uvarint(b)
	if n <= 0 || len(b) < n+2 {
		return r, fmt.Errorf("%w: short response header", ErrCorrupt)
	}
	r.ID = id
	r.Op = Op(b[n])
	r.Status = Status(b[n+1])
	if r.Op < OpPut || r.Op > OpPing {
		return r, fmt.Errorf("%w: bad op %d", ErrCorrupt, b[n])
	}
	rest := b[n+2:]
	var err error
	switch r.Status {
	case StatusOK:
		switch r.Op {
		case OpGet:
			var v []byte
			if v, rest, err = takeBytes(rest); err != nil {
				return r, fmt.Errorf("%w: get value: %v", ErrCorrupt, err)
			}
			r.Value = append([]byte(nil), v...)
		case OpMultiGet:
			cnt, n := binary.Uvarint(rest)
			if n <= 0 {
				return r, fmt.Errorf("%w: multiget count", ErrCorrupt)
			}
			rest = rest[n:]
			if cnt > uint64(len(rest))+1 { // found byte costs ≥1 byte each
				return r, fmt.Errorf("%w: multiget count %d exceeds payload", ErrCorrupt, cnt)
			}
			r.Multi = make([][]byte, 0, cnt)
			r.Found = make([]bool, 0, cnt)
			for i := uint64(0); i < cnt; i++ {
				if len(rest) < 1 {
					return r, fmt.Errorf("%w: multiget found byte %d", ErrCorrupt, i)
				}
				found := rest[0] != 0
				rest = rest[1:]
				var v []byte
				if v, rest, err = takeBytes(rest); err != nil {
					return r, fmt.Errorf("%w: multiget value %d: %v", ErrCorrupt, i, err)
				}
				r.Found = append(r.Found, found)
				r.Multi = append(r.Multi, append([]byte(nil), v...))
			}
		}
	case StatusNotFound:
	case StatusNotLeader:
		hint, n := binary.Uvarint(rest)
		if n <= 0 {
			return r, fmt.Errorf("%w: leader hint", ErrCorrupt)
		}
		rest = rest[n:]
		r.Leader = hint
	case StatusErr:
		var m []byte
		if m, rest, err = takeBytes(rest); err != nil {
			return r, fmt.Errorf("%w: error message: %v", ErrCorrupt, err)
		}
		r.Err = string(m)
	default:
		return r, fmt.Errorf("%w: bad status %d", ErrCorrupt, b[n+1])
	}
	if len(rest) != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return r, nil
}

func takeBytes(b []byte) (val, rest []byte, err error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, b, errors.New("missing length")
	}
	b = b[n:]
	if l > uint64(len(b)) {
		return nil, b, fmt.Errorf("truncated %d-byte field (%d left)", l, len(b))
	}
	return b[:l], b[l:], nil
}
