package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/workload"
)

// TestRunRampRepsDeterministicAcrossWorkers pins that the sharded-ramp
// repetitions — routed through the parallel trial runner — produce
// identical per-rep results for any worker count.
func TestRunRampRepsDeterministicAcrossWorkers(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 1000, StepRPS: 0, StepDuration: time.Second, Steps: 2}
	opts := Options{Groups: 2, NodesPerGroup: 3, Seed: 71, Variant: cluster.VariantRaft(), Profile: fastProfile()}
	run := func(workers string) []RampResult {
		t.Setenv("DYNATUNE_TRIAL_WORKERS", workers)
		return RunRampReps(opts, ramp, LoadOptions{Keys: 256}, 3)
	}
	seq := run("1")
	if len(seq) != 3 {
		t.Fatalf("rep count: %d", len(seq))
	}
	for i := range seq {
		if seq[i].Completed == 0 {
			t.Fatalf("rep %d completed nothing", i)
		}
	}
	// Byte-identical, not merely field-equal: marshal the full result
	// structs so any new field that diverges across worker counts fails
	// here without a test edit.
	golden, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"4", "8"} {
		par := run(workers)
		got, err := json.Marshal(par)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(golden, got) {
			t.Fatalf("workers=%s diverged from workers=1:\n  1: %s\n  %s: %s",
				workers, golden, workers, got)
		}
	}
	// Reps use distinct seeds, so at least one pair must differ.
	if seq[0].Completed == seq[1].Completed && seq[0].P99Ms == seq[1].P99Ms {
		t.Log("warning: reps 0 and 1 identical — seed derivation may be inert")
	}
	if m := MeanAggThroughput(seq); m <= 0 {
		t.Fatalf("mean aggregate throughput %v", m)
	}
	if MeanAggThroughput(nil) != 0 {
		t.Fatal("MeanAggThroughput(nil) != 0")
	}
}

// TestSingleGroupRampGolden pins the G=1 sharded figure summary to exact
// values. The consolidated fabric must not perturb single-group behavior:
// any drift in this golden means the G=1 goldens over in internal/cluster
// deserve a hard look before updating the strings here.
func TestSingleGroupRampGolden(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 800, StepRPS: 0, StepDuration: time.Second, Steps: 2}
	opts := Options{Groups: 1, NodesPerGroup: 3, Seed: 29, Variant: cluster.VariantRaft(), Profile: fastProfile()}
	reps := RunRampReps(opts, ramp, LoadOptions{Keys: 256}, 2)
	if len(reps) != 2 {
		t.Fatalf("rep count %d", len(reps))
	}
	want := []string{
		"groups=1 completed=1591 agg=795.500 peak=802.000 p99=115.858 lost=0 pending=0",
		"groups=1 completed=1589 agg=794.500 peak=798.000 p99=116.235 lost=0 pending=0",
	}
	for i, r := range reps {
		got := fmt.Sprintf("groups=%d completed=%d agg=%.3f peak=%.3f p99=%.3f lost=%d pending=%d",
			r.Groups, r.Completed, r.AggThroughput, r.PeakThroughput, r.P99Ms, r.Lost, r.Pending)
		if got != want[i] {
			t.Errorf("rep %d summary drifted:\n got  %s\n want %s", i, got, want[i])
		}
	}
}
