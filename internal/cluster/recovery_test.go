package cluster

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
)

// putter proposes kv puts through the current leader with idempotence IDs.
type putter struct {
	c   *Cluster
	cli uint64
	seq uint64
}

func (p *putter) Put(key string, val []byte) {
	p.seq++
	cmd := kv.Encode(kv.Command{Op: kv.OpPut, Client: p.cli, Seq: p.seq, Key: key, Value: val})
	if l := p.c.Leader(); l != nil {
		_, _ = l.Propose(cmd)
	}
}

func TestCrashRequiresPersist(t *testing.T) {
	c := New(Options{N: 3, Seed: 1})
	c.Start()
	defer func() {
		if recover() == nil {
			t.Fatal("Crash without Persist should panic")
		}
	}()
	c.Crash(1)
}

func TestCrashRestartFollowerRecoversLog(t *testing.T) {
	c := New(Options{N: 3, Seed: 2, Persist: true})
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(time.Second)
	lead = c.Leader()

	cl := &putter{c: c, cli: 7}
	for i := 0; i < 10; i++ {
		cl.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	c.Run(2 * time.Second)

	var victim raft.ID
	for i := 1; i <= 3; i++ {
		if raft.ID(i) != lead.ID() {
			victim = raft.ID(i)
			break
		}
	}
	appliedBefore := c.Store(victim).AppliedIndex()
	if appliedBefore == 0 {
		t.Fatal("victim never applied anything")
	}
	c.Crash(victim)
	cl.Put("during", []byte("down"))
	c.Run(2 * time.Second)
	c.Restart(victim)
	c.Run(3 * time.Second)

	// The restarted node replayed its durable log and caught up past it.
	if got := c.Store(victim).AppliedIndex(); got <= appliedBefore {
		t.Fatalf("restarted node applied %d, want > %d", got, appliedBefore)
	}
	if v, ok := c.Store(victim).Get("during"); !ok || string(v) != "down" {
		t.Fatalf("missed entry committed while down: %q %v", v, ok)
	}
	if err := c.StoresConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRestartLeaderClusterRecovers(t *testing.T) {
	c := New(Options{N: 5, Seed: 3, Persist: true})
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(time.Second)
	old, failAt := c.CrashLeader()
	deadline := c.Now() + 30*time.Second
	for c.Now() < deadline {
		c.Run(20 * time.Millisecond)
		if _, _, ok := c.Recorder().FirstElectionAfter(failAt); ok {
			break
		}
	}
	if c.Leader() == nil {
		t.Fatal("no successor elected")
	}
	c.Restart(old)
	c.Run(3 * time.Second)
	// The old leader rejoined as follower at a newer term.
	n := c.Node(old)
	if n.State() == raft.StateLeader && n.Term() <= c.Leader().Term() {
		t.Fatal("crashed ex-leader did not submit to the successor")
	}
	if err := c.StoresConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashLosesDynatuneState(t *testing.T) {
	// The measurement lists are volatile: a crash-restarted Dynatune node
	// must come back on fallback parameters and re-warm.
	c := New(Options{N: 3, Seed: 4, Persist: true, Variant: VariantDynatune(dynatune.Options{})})
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(5 * time.Second) // enough heartbeats to tune
	var follower raft.ID
	for i := 1; i <= 3; i++ {
		if raft.ID(i) != c.Leader().ID() {
			follower = raft.ID(i)
			break
		}
	}
	tn := c.DynatuneTuner(follower)
	if tn == nil || !tn.Tuned() {
		t.Fatal("follower tuner never engaged")
	}
	c.Crash(follower)
	c.Run(time.Second)
	c.Restart(follower)
	tn2 := c.DynatuneTuner(follower)
	if tn2 == tn {
		t.Fatal("restart kept the old tuner object")
	}
	if tn2.Tuned() {
		t.Fatal("restarted tuner must start cold (fallback parameters)")
	}
	if got := tn2.ElectionTimeout(); got != BaselineEt {
		t.Fatalf("restarted Et = %v, want fallback %v", got, BaselineEt)
	}
	// And it re-warms from fresh heartbeats.
	deadline := c.Now() + 30*time.Second
	for c.Now() < deadline && !tn2.Tuned() {
		c.Run(100 * time.Millisecond)
	}
	if !tn2.Tuned() {
		t.Fatal("restarted tuner never re-engaged")
	}
}

func TestRunCrashRecoveryTrialsShapes(t *testing.T) {
	base := Options{N: 5, Seed: 5}
	raftRes := RunCrashRecoveryTrials(withVariant(base, VariantRaft()), 8, 2*time.Second, 500*time.Millisecond)
	dynaRes := RunCrashRecoveryTrials(withVariant(base, VariantDynatune(dynatune.Options{})), 8, 4*time.Second, 500*time.Millisecond)

	rd, _ := raftRes.Summary()
	dd, _ := dynaRes.Summary()
	if len(raftRes.DetectionMs) == 0 || len(dynaRes.DetectionMs) == 0 {
		t.Fatalf("missing samples: raft=%d dyna=%d (failed %d/%d)",
			len(raftRes.DetectionMs), len(dynaRes.DetectionMs), raftRes.FailedTrials, dynaRes.FailedTrials)
	}
	// The paper's headline shape must hold for crashes too: Dynatune
	// detects the dead leader much faster.
	if dd.Mean >= rd.Mean/2 {
		t.Fatalf("crash detection: Dynatune %.0f ms vs Raft %.0f ms — expected <50%%", dd.Mean, rd.Mean)
	}
	if len(dynaRes.RetuneMs) == 0 {
		t.Fatal("no retune (warm-up) samples for Dynatune")
	}
	if raftRes.ReplayEntries == 0 {
		t.Fatal("restarted nodes replayed nothing — persistence inactive?")
	}
}

func withVariant(o Options, v Variant) Options {
	o.Variant = v
	return o
}

func TestRunReadLatencyModes(t *testing.T) {
	base := Options{N: 5, Seed: 6}
	// Raft, lease mode: Et=1000ms lease refreshed every h=100ms — nearly
	// all reads are lease hits with ~0 latency.
	raftLease := RunReadLatency(withVariant(base, VariantRaft()), 100, 50*time.Millisecond, ReadModeLease)
	if raftLease.LeaseHits < raftLease.Issued*8/10 {
		t.Fatalf("Raft lease hits %d/%d, expected dominant", raftLease.LeaseHits, raftLease.Issued)
	}
	// Raft, read-index mode: every read pays about one RTT (100 ms here).
	raftRI := RunReadLatency(withVariant(base, VariantRaft()), 100, 50*time.Millisecond, ReadModeIndex)
	if s := raftRI.LatencySummary(); s.Mean < 50 {
		t.Fatalf("ReadIndex mean latency %.1f ms, expected ≈ RTT (100 ms)", s.Mean)
	}
	// Dynatune, lease mode: although the tuned Et shrinks the lease window
	// to ≈RTT, the h = Et/K rule guarantees (with probability x) that a
	// heartbeat response lands inside every Et window per follower — the
	// same property that prevents false elections also keeps the lease
	// refreshed, so lease hits must stay dominant.
	dynaLease := RunReadLatency(withVariant(base, VariantDynatune(dynatune.Options{})), 100, 50*time.Millisecond, ReadModeLease)
	if dynaLease.LeaseHits < dynaLease.Issued*6/10 {
		t.Fatalf("Dynatune lease hits %d/%d (+%d fallbacks): the h=Et/K rule should keep the lease alive",
			dynaLease.LeaseHits, dynaLease.Issued, dynaLease.Fallbacks)
	}
}

func TestReadLeaseSurvivesPacketLoss(t *testing.T) {
	// Under heavy loss Dynatune shrinks h to keep heartbeats arriving
	// within Et; the read lease inherits that guarantee. This is the
	// property a static Et/h pair cannot give without overprovisioning.
	lossy := Options{
		N:    5,
		Seed: 9,
		Profile: netsim.Constant(netsim.Params{
			RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.25,
		}),
		Variant: VariantDynatune(dynatune.Options{}),
	}
	res := RunReadLatency(lossy, 150, 50*time.Millisecond, ReadModeLease)
	if res.LeaseHits < res.Issued/2 {
		t.Fatalf("lease hits %d/%d under 25%% loss — adaptive h failed to protect the lease",
			res.LeaseHits, res.Issued)
	}
}

func TestRunMembershipChange(t *testing.T) {
	res := RunMembershipChange(withVariant(Options{N: 5, Seed: 7}, VariantDynatune(dynatune.Options{})), 100)
	if res.CatchupMs <= 0 {
		t.Fatalf("catch-up not measured: %+v", res)
	}
	if res.PromoteMs <= 0 {
		t.Fatalf("promotion not measured: %+v", res)
	}
	if res.JoinerTunedMs <= res.CatchupMs {
		t.Fatalf("joiner tuned (%.0f ms) before it caught up (%.0f ms)?", res.JoinerTunedMs, res.CatchupMs)
	}
	if res.PostFailoverOTSMs <= 0 {
		t.Fatalf("post-change failover not measured: %+v", res)
	}
}

func TestMembershipGrownClusterSurvivesTwoFailures(t *testing.T) {
	// After growing 4 -> 5 voters the cluster must tolerate two failures.
	opts := withVariant(Options{N: 5, Seed: 8, InitialMembers: 4}, VariantRaft())
	c := New(opts)
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.Run(time.Second)
	lead = c.Leader()
	if _, err := lead.ProposeConfChange(raft.ConfChange{Op: raft.ConfAddVoter, Node: 5}); err != nil {
		t.Fatal(err)
	}
	c.Run(2 * time.Second)
	if got := len(c.Leader().Voters()); got != 5 {
		t.Fatalf("voters = %d, want 5", got)
	}
	// Two failures leave 3 of 5 — still a quorum.
	c.Pause(c.Leader().ID())
	c.Run(5 * time.Second)
	if c.Leader() == nil {
		t.Fatal("no leader after first failure")
	}
	c.Pause(c.Leader().ID())
	c.Run(10 * time.Second)
	if c.Leader() == nil {
		t.Fatal("no leader after second failure — grown quorum not in effect")
	}
}
