package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Scenario: "paper-elections",
		Measure:  "failover",
		Variant:  "dynatune",
		Axes: []Axis{
			{Name: "n", Values: []string{"3", "5"}},
			{Name: "loss", Values: []string{"0"}},
		},
		Reps: 2,
		Seed: 42,
		Rows: []Row{
			{Cell: []string{"3", "0"}, Metrics: []MetricSummary{
				{Name: "detection_ms", Better: BetterLower, Samples: 4, Mean: 240.5, Std: 10.25,
					Min: 228, Max: 251, P50: 241.5, P90: 250, P99: 250.75, CI95: 3.5},
				{Name: "failed_trials", Better: BetterLower, Samples: 2},
			}},
			{Cell: []string{"5", "0"}, Metrics: []MetricSummary{
				{Name: "detection_ms", Better: BetterLower, Samples: 4, Mean: 238, Std: 9,
					Min: 230, Max: 250, P50: 236, P90: 247, P99: 249.5, CI95: 2},
				{Name: "failed_trials", Better: BetterLower, Samples: 2},
			}},
		},
	}
}

// TestWriteCSVGolden pins the emitter's exact bytes: the column schema
// is an interface (README documents it) and determinism checks diff the
// files, so any change here must be deliberate.
func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"scenario,n,loss,metric,better,samples,mean,std,min,max,p50,p90,p99,ci95",
		"paper-elections,3,0,detection_ms,lower,4,240.5,10.25,228,251,241.5,250,250.75,3.5",
		"paper-elections,3,0,failed_trials,lower,2,0,0,0,0,0,0,0,0",
		"paper-elections,5,0,detection_ms,lower,4,238,9,230,250,236,247,249.5,2",
		"paper-elections,5,0,failed_trials,lower,2,0,0,0,0,0,0,0,0",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("CSV diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONRoundTrip: a written report must load back identical — that is
// the baseline gate's storage format.
func TestJSONRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != rep.Scenario || got.Seed != rep.Seed || len(got.Rows) != len(rep.Rows) {
		t.Fatalf("header diverged: %+v", got)
	}
	if got.Rows[0].Metrics[0] != rep.Rows[0].Metrics[0] {
		t.Fatalf("metric diverged: %+v vs %+v", got.Rows[0].Metrics[0], rep.Rows[0].Metrics[0])
	}
	if got.Axes[0].Name != "n" || got.Rows[1].Cell[0] != "5" {
		t.Fatalf("cells diverged: %+v", got.Rows[1])
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()

	// Unchanged: no regressions.
	regs, err := Compare(cur, base, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("clean compare: %v, %v", regs, err)
	}

	// detection_ms (lower is better) worsens 20% in cell n=5: flagged.
	cur.Rows[1].Metrics[0].Mean = base.Rows[1].Metrics[0].Mean * 1.2
	regs, err = Compare(cur, base, 0.10)
	if err != nil || len(regs) != 1 {
		t.Fatalf("regression compare: %v, %v", regs, err)
	}
	if regs[0].Cell != "n=5 loss=0" || regs[0].Metric != "detection_ms" {
		t.Fatalf("wrong flag: %+v", regs[0])
	}
	if math.Abs(regs[0].Delta-0.2) > 1e-9 {
		t.Fatalf("delta %v, want 0.2", regs[0].Delta)
	}

	// A 20% improvement must not be flagged.
	cur.Rows[1].Metrics[0].Mean = base.Rows[1].Metrics[0].Mean * 0.8
	if regs, _ = Compare(cur, base, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}

	// failed_trials appearing from zero is a regression even without a
	// relative scale.
	cur = sampleReport()
	cur.Rows[0].Metrics[1].Mean = 3
	if regs, _ = Compare(cur, base, 0.10); len(regs) != 1 || !math.IsInf(regs[0].Delta, 1) {
		t.Fatalf("zero-base regression missed: %v", regs)
	}
}

func TestCompareDirectionHigher(t *testing.T) {
	base := sampleReport()
	base.Rows[0].Metrics[0] = MetricSummary{Name: "peak_rps", Better: BetterHigher, Mean: 1000}
	cur := sampleReport()
	cur.Rows[0].Metrics[0] = MetricSummary{Name: "peak_rps", Better: BetterHigher, Mean: 800}
	regs, err := Compare(cur, base, 0.10)
	if err != nil || len(regs) != 1 {
		t.Fatalf("throughput drop not flagged: %v, %v", regs, err)
	}
	if math.Abs(regs[0].Delta-0.2) > 1e-9 {
		t.Fatalf("delta %v, want 0.2", regs[0].Delta)
	}
}

func TestCompareMismatchedAxes(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Axes = cur.Axes[:1]
	if _, err := Compare(cur, base, 0.10); err == nil {
		t.Fatal("mismatched axis sets accepted")
	}
	if _, err := Compare(sampleReport(), base, 0); err == nil {
		t.Fatal("zero threshold accepted")
	}
}

// TestCompareSkipsUnmatchedCells: a grown grid gates only the shared
// cells — but a gate where NOTHING matches must fail, not pass
// vacuously (respelled axis values would otherwise compare nothing and
// report success).
func TestCompareSkipsUnmatchedCells(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Rows[1].Cell = []string{"9", "0"} // not in the baseline
	cur.Rows[1].Metrics[0].Mean = 1e9
	regs, err := Compare(cur, base, 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("unmatched cell gated: %v, %v", regs, err)
	}
	cur.Rows[0].Cell = []string{"3", "0.000"} // now zero cells match
	if _, err := Compare(cur, base, 0.10); err == nil {
		t.Fatal("vacuous comparison (no matching cells) passed")
	}
	// Same vacuity rule one level down: cells that match but share no
	// metric names compared nothing.
	cur = sampleReport()
	cur.Measure = base.Measure
	for i := range cur.Rows {
		for j := range cur.Rows[i].Metrics {
			cur.Rows[i].Metrics[j].Name = "renamed_" + cur.Rows[i].Metrics[j].Name
		}
	}
	if _, err := Compare(cur, base, 0.10); err == nil {
		t.Fatal("vacuous comparison (no shared metrics) passed")
	}
	// And reports of different measures are not comparable at all.
	cur = sampleReport()
	cur.Measure = "reads"
	if _, err := Compare(cur, base, 0.10); err == nil {
		t.Fatal("cross-measure comparison accepted")
	}
}
