package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures raw event throughput — the budget every
// simulated experiment spends.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+time.Microsecond, func() {})
		e.Step()
	}
}

// BenchmarkTimerChurn measures the set/cancel pattern raft timers follow.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	b.ResetTimer()
	var h Handle
	for i := 0; i < b.N; i++ {
		e.Cancel(h)
		h = e.Schedule(e.Now()+time.Millisecond, func() {})
		if i%64 == 0 {
			e.Step()
		}
	}
}

// BenchmarkDeepQueue measures schedule+fire against a steady 4k-event
// backlog — the regime a large cluster simulation actually runs in, where
// heap depth (and the 4-ary layout's shallower tree) dominates.
func BenchmarkDeepQueue(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.Schedule(e.Now()+time.Duration(i)*time.Microsecond, fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+4096*time.Microsecond, fn)
		e.Step()
	}
}

// BenchmarkCancelHeavy measures the compaction regime: most scheduled
// events are cancelled before firing, so eager compaction (not root
// drainage) is what keeps the queue bounded.
func BenchmarkCancelHeavy(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.Schedule(e.Now()+time.Hour, fn)
		e.Cancel(h)
		if i%16 == 0 {
			e.Schedule(e.Now()+time.Microsecond, fn)
			e.Step()
		}
	}
}
