// Fluctuating WAN (paper §IV-C1): the RTT between all nodes climbs from
// 50 ms to 200 ms and back while three systems watch their election
// timers. Dynatune's randomizedTimeout glides along with the RTT;
// Raft's stays parked at ~1.5 s; Raft-Low melts down when the RTT crosses
// its static 100 ms timeout.
//
//	go run ./examples/fluctuating-wan
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/metrics"
	"dynatune/internal/netsim"
)

func main() {
	// Compressed version of Fig. 6a: 50→200→50 ms in 25 ms steps held 20 s
	// each (full-scale schedule: cmd/dynabench fig6a).
	profile := netsim.GradualRTTRamp(
		netsim.Params{Jitter: 2 * time.Millisecond},
		50*time.Millisecond, 200*time.Millisecond, 25*time.Millisecond, 20*time.Second)
	horizon := 4 * time.Minute

	for _, variant := range []cluster.Variant{
		cluster.VariantDynatune(dynatune.Options{}),
		cluster.VariantRaft(),
		cluster.VariantRaftLow(),
	} {
		res := cluster.RunFluctuation(cluster.Options{
			N: 5, Seed: 7, Variant: variant, Profile: profile,
		}, horizon, 5*time.Second)

		fmt.Printf("=== %s ===\n", res.Variant)
		fmt.Printf("out-of-service: %v across %d episodes | false timeouts %d, elections %d\n",
			res.OTS.Total().Round(time.Second), res.OTS.Count(), res.Timeouts, res.Elections)
		fmt.Println("time series (3rd-smallest randomizedTimeout vs injected RTT):")
		fmt.Println(metrics.RenderSeries(9, res.RandTimeout3rdMs, res.LinkRTTMs))
	}
	fmt.Println("(paper Fig. 6a: Dynatune adapts with no OTS; Raft-Low accumulates minutes of OTS)")
}
