package raft

// HardState is the durable per-node state that must survive a crash for
// Raft's safety arguments to hold: the current term and the vote cast in
// it (Raft §5.1). Losing either could let a node vote twice in one term.
type HardState struct {
	Term uint64
	Vote ID
}

// Snapshot is a durable state-machine snapshot: the opaque application
// state at log position (Index, Term), plus the cluster membership as of
// that index — configuration changes below the snapshot floor are gone
// from the log, so the snapshot must carry their net effect (as etcd
// snapshots embed the ConfState).
type Snapshot struct {
	Index    uint64
	Term     uint64
	Data     []byte
	Voters   []ID
	Learners []ID
}

// Persister receives the node's durable state transitions. Implementations
// must make the data durable before returning: the node follows the
// persist-before-send discipline, so once a message leaves the node the
// state it implies has already been saved. A nil Config.Persister disables
// persistence entirely (a pure in-memory node, which is what the paper's
// pause-failure experiments model — a paused container loses nothing).
//
// Persist errors are fatal: a node that cannot make its vote durable must
// not keep participating, so the node panics (as etcd does) rather than
// limping on with silently weakened safety.
type Persister interface {
	// SaveHardState records a term or vote change.
	SaveHardState(hs HardState) error
	// AppendEntries records newly appended log entries (contiguous,
	// ascending, starting at most one past the previously persisted tail —
	// a preceding TruncateFrom handles conflicts).
	AppendEntries(entries []Entry) error
	// TruncateFrom discards persisted entries with Index >= index.
	TruncateFrom(index uint64) error
	// SaveSnapshot records a state-machine snapshot; entries at or below
	// snap.Index may be discarded afterwards.
	SaveSnapshot(snap Snapshot) error
}

// Restored is the state a Persister recovered after a crash; pass it as
// Config.Restored to resume a node where it left off. Commit and apply
// indexes are volatile by design (Raft recomputes them): they restart at
// the snapshot index and catch up from the leader.
type Restored struct {
	HardState HardState
	// Snapshot is the newest durable snapshot, nil if none was taken.
	Snapshot *Snapshot
	// Entries is the contiguous log suffix after the snapshot (or from
	// index 1 when Snapshot is nil).
	Entries []Entry
}

// logPersister adapts Log mutation notifications to the Persister. The
// notifications fire synchronously inside log mutations, which all happen
// before the node sends any message that depends on them — this is what
// makes persist-before-send hold without explicit flush points.
type logPersister struct {
	p Persister
}

func (lp logPersister) Appended(entries []Entry) {
	if err := lp.p.AppendEntries(entries); err != nil {
		panic("raft: persist append: " + err.Error())
	}
}

func (lp logPersister) TruncatedFrom(index uint64) {
	if err := lp.p.TruncateFrom(index); err != nil {
		panic("raft: persist truncate: " + err.Error())
	}
}

// persistHardState saves (term, vote) when either moved since the last
// save. Called after every mutation point; cheap when nothing changed.
func (n *Node) persistHardState() {
	if n.cfg.Persister == nil {
		return
	}
	hs := HardState{Term: n.term, Vote: n.vote}
	if hs == n.lastPersisted {
		return
	}
	if err := n.cfg.Persister.SaveHardState(hs); err != nil {
		panic("raft: persist hard state: " + err.Error())
	}
	n.lastPersisted = hs
}

// persistSnapshot saves an installed or locally taken snapshot.
func (n *Node) persistSnapshot(snap Snapshot) {
	if n.cfg.Persister == nil {
		return
	}
	if err := n.cfg.Persister.SaveSnapshot(snap); err != nil {
		panic("raft: persist snapshot: " + err.Error())
	}
}
