package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// scenarioCmd is the registry front end: list the named scenarios, run
// one (optionally scaled), or run a JSON spec file. `-show` prints the
// resolved spec as JSON instead of running it — the quickest way to
// bootstrap a spec file from a named scenario.
func scenarioCmd(args []string) {
	fs := flag.NewFlagSet("scenario", flag.ExitOnError)
	list := fs.Bool("list", false, "list the named scenarios and exit")
	file := fs.String("file", "", "run a JSON spec from this file instead of a named scenario")
	scale := fs.Float64("scale", 1, "shrink trial counts/horizons by this factor (0 < f <= 1)")
	seed := fs.Int64("seed", 0, "override the spec's seed (0 keeps it)")
	trials := fs.Int("trials", 0, "override the spec's trial count (0 keeps it)")
	show := fs.Bool("show", false, "print the resolved spec as JSON and exit without running")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: dynabench scenario -list | <name> [flags] | -file spec.json [flags]")
		fs.PrintDefaults()
	}
	// Accept `dynabench scenario <name> -scale 0.1`: flag.Parse stops at
	// the first non-flag argument, so pull the name off the front first.
	name := ""
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		name, args = args[0], args[1:]
	}
	fs.Parse(args) //nolint:errcheck // ExitOnError

	if *list {
		for _, n := range scenario.Names() {
			spec, _ := scenario.Lookup(n)
			fmt.Printf("%-28s %s\n", n, spec.Description)
		}
		return
	}

	var spec scenario.Spec
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			fmt.Fprintf(os.Stderr, "dynabench: %s: %v\n", *file, err)
			os.Exit(1)
		}
	case name != "":
		var ok bool
		spec, ok = scenario.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dynabench: unknown scenario %q; `dynabench scenario -list` shows the registry\n", name)
			os.Exit(1)
		}
	default:
		fs.Usage()
		os.Exit(2)
	}

	if *seed != 0 {
		spec.Seed = *seed
	}
	if *trials != 0 {
		if spec.Measure != scenario.MeasureFailover {
			fmt.Fprintf(os.Stderr, "dynabench: -trials only applies to failover scenarios; %q measures %q (use -scale to shrink it)\n",
				spec.Name, spec.Measure)
			os.Exit(2)
		}
		spec.Trials = *trials
	}
	spec = scenario.Scale(spec, *scale)
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	if *show {
		data, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynabench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", data)
		return
	}

	start := time.Now()
	res, err := bind.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynabench:", err)
		os.Exit(1)
	}
	fmt.Print(bind.Summarize(res))
	fmt.Printf("  wall time %.0f ms\n", float64(time.Since(start))/float64(time.Millisecond))
	if vs := res.Violations(); len(vs) > 0 {
		fmt.Fprintf(os.Stderr, "dynabench: %d invariant violation(s)\n", len(vs))
		os.Exit(1)
	}
}
