package raft

import "time"

// ResetReason explains why tuning state is being discarded (paper §III-B
// Step 0: measurements restart whenever the leader relationship changes or
// a local timeout fired).
type ResetReason int

const (
	// ResetTimeout: the local election timer expired — the node suspects
	// the leader and must fall back to conservative defaults.
	ResetTimeout ResetReason = iota
	// ResetLeaderChange: the node observed a new leader (or itself became
	// leader); per-pair statistics are stale.
	ResetLeaderChange
	// ResetBecameLeader: the node won an election and now runs the
	// leader-side half of the tuner.
	ResetBecameLeader
)

func (r ResetReason) String() string {
	switch r {
	case ResetTimeout:
		return "timeout"
	case ResetLeaderChange:
		return "leader-change"
	case ResetBecameLeader:
		return "became-leader"
	default:
		return "reset"
	}
}

// Tuner supplies the node's election parameters and observes heartbeat
// traffic. It is the exact extension point the paper adds to etcd:
// the baseline uses StaticTuner; package dynatune implements the adaptive
// version. Tuners are per-node and are called from the node's event loop
// (no internal locking needed).
type Tuner interface {
	// ElectionTimeout returns the current base election timeout Et. The
	// node derives randomizedTimeout = Et·(1+u) from it.
	ElectionTimeout() time.Duration

	// HeartbeatInterval returns the send interval h for heartbeats to
	// peer. Dynatune tunes this per pair; static tuners return a constant.
	HeartbeatInterval(peer ID) time.Duration

	// PrepareHeartbeat is called by a leader immediately before sending a
	// heartbeat to peer; the returned metadata is embedded in the message.
	PrepareHeartbeat(peer ID, now time.Duration) HeartbeatMeta

	// ObserveHeartbeatResp is called by a leader when a heartbeat response
	// arrives from peer (RTT computation and tuned-h application).
	ObserveHeartbeatResp(peer ID, meta HeartbeatRespMeta, now time.Duration)

	// ObserveHeartbeat is called by a follower when a heartbeat arrives
	// from its leader; the returned metadata is embedded in the response.
	ObserveHeartbeat(from ID, meta HeartbeatMeta, now time.Duration) HeartbeatRespMeta

	// Reset discards measurement state and reverts parameters to defaults.
	Reset(reason ResetReason)
}

// StaticTuner implements the baseline: fixed parameters, no measurement —
// stock Raft/etcd behaviour. The paper's "Raft" baseline uses the etcd
// defaults (Et 1000 ms, h 100 ms); "Raft-Low" uses one tenth of those.
type StaticTuner struct {
	Et time.Duration
	H  time.Duration
}

// NewStaticTuner returns a tuner with fixed election timeout et and
// heartbeat interval h.
func NewStaticTuner(et, h time.Duration) *StaticTuner {
	return &StaticTuner{Et: et, H: h}
}

// ElectionTimeout implements Tuner.
func (s *StaticTuner) ElectionTimeout() time.Duration { return s.Et }

// HeartbeatInterval implements Tuner.
func (s *StaticTuner) HeartbeatInterval(ID) time.Duration { return s.H }

// PrepareHeartbeat implements Tuner; the baseline sends no metadata.
func (s *StaticTuner) PrepareHeartbeat(ID, time.Duration) HeartbeatMeta { return HeartbeatMeta{} }

// ObserveHeartbeatResp implements Tuner.
func (s *StaticTuner) ObserveHeartbeatResp(ID, HeartbeatRespMeta, time.Duration) {}

// ObserveHeartbeat implements Tuner.
func (s *StaticTuner) ObserveHeartbeat(ID, HeartbeatMeta, time.Duration) HeartbeatRespMeta {
	return HeartbeatRespMeta{}
}

// Reset implements Tuner.
func (s *StaticTuner) Reset(ResetReason) {}

var _ Tuner = (*StaticTuner)(nil)
