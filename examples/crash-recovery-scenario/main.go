// Crash-recovery, declaratively: the same experiment as
// examples/crash-recovery (kept alongside as the raw-API variant), but
// expressed as a scenario spec — durable 5-node Dynatune cluster, the
// leader crashes, the cluster fails over, the node restarts from its
// persisted state and re-warms its tuner. The spec is ~10 lines of data;
// the engine supplies the trial loop, fault injection and probes.
//
//	go run ./examples/crash-recovery-scenario
package main

import (
	"fmt"
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

func main() {
	spec := scenario.Spec{
		Name:     "crash-recovery-demo",
		Measure:  scenario.MeasureFailover,
		Topology: scenario.Topology{N: 5, Persist: true},
		Network:  scenario.Stable(100 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "dynatune"},
		Faults:   []scenario.Fault{{Kind: scenario.FaultCrashLeader}},
		Trials:   5, Seed: 1,
		Settle:   scenario.Duration(4 * time.Second),
		Downtime: scenario.Duration(500 * time.Millisecond),
	}
	res, err := bind.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Print(bind.Summarize(res))
}
