// Command dynactl is the client for dynatuned nodes: get/put/delete keys
// and inspect node status over the HTTP API, following leader hints on
// misdirected writes. With -bin it speaks the pipelined binary protocol
// (internal/wireclient) instead — get/put/ping against node or Front
// binary endpoints, following in-protocol not-leader hints.
//
//	dynactl -endpoints 127.0.0.1:8101,127.0.0.1:8102 put color blue
//	dynactl -endpoints 127.0.0.1:8101 get color
//	dynactl -endpoints 127.0.0.1:8101,127.0.0.1:8102,127.0.0.1:8103 status
//	dynactl -endpoints 127.0.0.1:8101 bench -n 1000
//	dynactl -bin -endpoints 127.0.0.1:9101,127.0.0.1:9102,127.0.0.1:9103 put color blue
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/wireclient"
)

func main() {
	endpoints := flag.String("endpoints", "127.0.0.1:8101", "comma-separated HTTP endpoints")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	consistency := flag.String("consistency", "local", "get consistency: local | linearizable | lease")
	bin := flag.Bool("bin", false, "speak the binary protocol (endpoints are binary API addresses)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	eps := strings.Split(*endpoints, ",")
	if *bin {
		if err := binMain(eps, args, *consistency); err != nil {
			fmt.Fprintln(os.Stderr, "dynactl:", err)
			os.Exit(1)
		}
		return
	}
	client := &client{hc: &http.Client{Timeout: *timeout}, endpoints: eps}

	var err error
	switch args[0] {
	case "get":
		err = requireArgs(args, 2, func() error { return client.get(args[1], *consistency) })
	case "put":
		err = requireArgs(args, 3, func() error { return client.put(args[1], args[2]) })
	case "del":
		err = requireArgs(args, 2, func() error { return client.del(args[1]) })
	case "status":
		err = client.status()
	case "bench":
		fs := flag.NewFlagSet("bench", flag.ExitOnError)
		n := fs.Int("n", 100, "number of sequential puts")
		fs.Parse(args[1:]) //nolint:errcheck // ExitOnError
		err = client.bench(*n)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynactl:", err)
		os.Exit(1)
	}
}

// binMain serves the -bin subcommands over a leader-following group
// client: endpoints are treated as one group's member (or Front) binary
// addresses.
func binMain(eps, args []string, consistency string) error {
	gc := wireclient.NewGroupClient(eps, wireclient.PoolConfig{Size: 1})
	defer gc.Close()
	switch args[0] {
	case "get":
		if len(args) != 2 {
			usage()
			os.Exit(2)
		}
		req := wireclient.Request{Op: wireclient.OpGet, Key: args[1]}
		if consistency == "local" {
			req.Flags |= wireclient.FlagLocal
		}
		resp, err := gc.Call(&req)
		if err != nil {
			return err
		}
		switch resp.Status {
		case wireclient.StatusOK:
			fmt.Println(string(resp.Value))
			return nil
		case wireclient.StatusNotFound:
			return fmt.Errorf("key not found")
		default:
			return fmt.Errorf("%s: %s", resp.Status, resp.Err)
		}
	case "put":
		if len(args) != 3 {
			usage()
			os.Exit(2)
		}
		resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpPut, Key: args[1], Value: []byte(args[2])})
		if err != nil {
			return err
		}
		if resp.Status != wireclient.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, resp.Err)
		}
		fmt.Println("OK")
		return nil
	case "ping":
		t0 := time.Now()
		resp, err := gc.Call(&wireclient.Request{Op: wireclient.OpPing})
		if err != nil {
			return err
		}
		if resp.Status != wireclient.StatusOK {
			return fmt.Errorf("%s: %s", resp.Status, resp.Err)
		}
		fmt.Printf("OK %.3fms\n", float64(time.Since(t0).Microseconds())/1000)
		return nil
	default:
		usage()
		os.Exit(2)
		return nil
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dynactl [-endpoints host:port,...] [-consistency local|linearizable|lease] {get <key> | put <key> <value> | del <key> | status | bench [-n N]}
       dynactl -bin [-endpoints host:port,...] {get <key> | put <key> <value> | ping}`)
}

func requireArgs(args []string, n int, fn func() error) error {
	if len(args) != n {
		usage()
		os.Exit(2)
	}
	return fn()
}

type client struct {
	hc        *http.Client
	endpoints []string
}

// do tries each endpoint, following X-Raft-Leader hints on 421s.
func (c *client) do(method, path string, body string) (string, error) {
	var lastErr error
	tried := map[string]bool{}
	queue := append([]string(nil), c.endpoints...)
	for len(queue) > 0 {
		ep := queue[0]
		queue = queue[1:]
		if tried[ep] {
			continue
		}
		tried[ep] = true
		req, err := http.NewRequest(method, "http://"+ep+path, strings.NewReader(body))
		if err != nil {
			return "", err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			return string(data), nil
		case http.StatusNotFound:
			return "", fmt.Errorf("key not found")
		case http.StatusMisdirectedRequest:
			// Follow the leader hint: same port layout assumed, so map
			// the leader's node id onto the endpoint list order when
			// possible; otherwise just try the remaining endpoints.
			lastErr = fmt.Errorf("%s is not the leader", ep)
			continue
		default:
			lastErr = fmt.Errorf("%s: %s (%s)", ep, resp.Status, strings.TrimSpace(string(data)))
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no endpoints reachable")
	}
	return "", lastErr
}

func (c *client) get(key, consistency string) error {
	path := "/kv/" + key
	if consistency != "" && consistency != "local" {
		path += "?consistency=" + consistency
	}
	v, err := c.do(http.MethodGet, path, "")
	if err != nil {
		return err
	}
	fmt.Println(v)
	return nil
}

func (c *client) put(key, value string) error {
	_, err := c.do(http.MethodPut, "/kv/"+key, value)
	if err == nil {
		fmt.Println("OK")
	}
	return err
}

func (c *client) del(key string) error {
	_, err := c.do(http.MethodDelete, "/kv/"+key, "")
	if err == nil {
		fmt.Println("OK")
	}
	return err
}

func (c *client) status() error {
	ok := 0
	for _, ep := range c.endpoints {
		resp, err := c.hc.Get("http://" + ep + "/status")
		if err != nil {
			fmt.Printf("%-22s unreachable: %v\n", ep, err)
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Printf("%-22s %s\n", ep, strings.TrimSpace(string(data)))
		ok++
	}
	if ok == 0 {
		return fmt.Errorf("no endpoints reachable")
	}
	return nil
}

// bench measures sequential put latency — a tiny real-network cousin of
// the Fig. 5 harness.
func (c *client) bench(n int) error {
	lats := make([]float64, 0, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if _, err := c.do(http.MethodPut, fmt.Sprintf("/kv/bench-%d", i), "v"); err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
		lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
	}
	elapsed := time.Since(start)
	sort.Float64s(lats)
	s := metrics.Summarize(lats)
	fmt.Printf("%d puts in %v (%.0f req/s)\n", n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds())
	fmt.Printf("latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n", s.Mean, s.P50, s.P90, s.P99, s.Max)
	return nil
}
