package wire

import (
	"testing"

	"dynatune/internal/raft"
)

// BenchmarkEncodeHeartbeat measures the wire cost of the most frequent
// message.
func BenchmarkEncodeHeartbeat(b *testing.B) {
	m := raft.Message{Type: raft.MsgHeartbeat, From: 1, To: 2, Term: 7,
		HB: raft.HeartbeatMeta{Seq: 99, SendTime: 1234, RTT: 5678}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(m)
	}
}

// BenchmarkDecodeAppend measures decoding a 64-entry replication frame.
func BenchmarkDecodeAppend(b *testing.B) {
	m := raft.Message{Type: raft.MsgApp, From: 1, To: 2, Term: 7, Index: 10, LogTerm: 6}
	for i := 0; i < 64; i++ {
		m.Entries = append(m.Entries, raft.Entry{Term: 7, Index: uint64(11 + i), Data: []byte("payload-data")})
	}
	buf := Encode(m)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
