package chaos

import (
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/scenario/bind"
)

// defaultShrinkRuns caps the replays one shrink may spend. Each replay
// is a full simulated run; forty is enough for drop-to-fixpoint plus the
// per-fault reductions on any schedule the default budget samples.
const defaultShrinkRuns = 40

// Shrink delta-debugs a failing storm down to a minimal schedule that
// still trips an invariant, re-running candidates deterministically from
// the spec's recorded seed. Three reduction passes, each to fixpoint
// while the replay budget lasts:
//
//  1. drop whole faults (the classic ddmin step, one at a time — fault
//     interactions in a schedule this short don't warrant the subset
//     ladder);
//  2. shorten surviving faults (halve durations, collapse repeats to a
//     single occurrence);
//  3. shrink partition-groups node sets toward the minimal cut.
//
// Every candidate is validated before running; an invalid mutation (a
// reorder window outgrowing its halved duration, say) is skipped, not
// fixed up. Returns the minimal failing spec, the violations it still
// trips, and the replays spent. The input spec must itself fail — the
// caller established that — so the result always fails too: a candidate
// replacement is kept only when it still trips.
func Shrink(spec scenario.Spec, maxRuns int) (scenario.Spec, []scenario.Violation, int) {
	if maxRuns <= 0 {
		maxRuns = defaultShrinkRuns
	}
	runs := 0
	var lastVs []scenario.Violation
	fails := func(s scenario.Spec) bool {
		if err := s.Validate(); err != nil {
			return false
		}
		if runs >= maxRuns {
			return false
		}
		runs++
		res, err := bind.RunWorkers(s, 1)
		if err != nil {
			return false
		}
		if vs := res.Violations(); len(vs) > 0 {
			lastVs = vs
			return true
		}
		return false
	}

	// Pass 1: drop faults to fixpoint.
	for changed := true; changed && runs < maxRuns; {
		changed = false
		for i := 0; i < len(spec.Faults) && runs < maxRuns; i++ {
			cand := withFaults(spec, dropAt(spec.Faults, i))
			if fails(cand) {
				spec = cand
				changed = true
				i-- // the slot now holds the next fault; retry it
			}
		}
	}

	// Pass 2: shorten what survived.
	for changed := true; changed && runs < maxRuns; {
		changed = false
		for i := 0; i < len(spec.Faults) && runs < maxRuns; i++ {
			for _, mut := range shortenings(spec.Faults[i]) {
				fs := append([]scenario.Fault(nil), spec.Faults...)
				fs[i] = mut
				if cand := withFaults(spec, fs); fails(cand) {
					spec = cand
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: minimal partition cuts.
	for changed := true; changed && runs < maxRuns; {
		changed = false
		for i := 0; i < len(spec.Faults) && runs < maxRuns; i++ {
			f := spec.Faults[i]
			if f.Kind != scenario.FaultPartitionGroups || len(f.GroupA)+len(f.GroupB) <= 2 {
				continue
			}
			for _, mut := range shrinkCut(f) {
				fs := append([]scenario.Fault(nil), spec.Faults...)
				fs[i] = mut
				if cand := withFaults(spec, fs); fails(cand) {
					spec = cand
					changed = true
					break
				}
			}
		}
	}

	if lastVs == nil {
		// Budget exhausted before any candidate ran (or the caller handed
		// us a passing spec): replay the original once for its violations.
		if res, err := bind.RunWorkers(spec, 1); err == nil {
			lastVs = res.Violations()
		}
	}
	return spec, lastVs, runs
}

func withFaults(spec scenario.Spec, fs []scenario.Fault) scenario.Spec {
	spec.Faults = fs
	return spec
}

func dropAt(fs []scenario.Fault, i int) []scenario.Fault {
	out := make([]scenario.Fault, 0, len(fs)-1)
	out = append(out, fs[:i]...)
	return append(out, fs[i+1:]...)
}

// shortenings proposes smaller variants of one fault, most aggressive
// first. Reorder fields scale with the duration they are bounded by.
func shortenings(f scenario.Fault) []scenario.Fault {
	var out []scenario.Fault
	if f.Count > 1 {
		g := f
		g.Count, g.Every = 0, 0
		out = append(out, g)
	}
	if f.Duration.D() >= 200*time.Millisecond {
		g := f
		g.Duration = f.Duration / 2
		if g.Reorder > 0 {
			g.Reorder, g.ReorderEvery = f.Reorder/2, f.ReorderEvery/2
		}
		out = append(out, g)
	}
	if f.Reorder > 0 {
		g := f
		g.Reorder, g.ReorderEvery = 0, 0
		out = append(out, g)
	}
	return out
}

// shrinkCut proposes partition-groups variants with one node removed
// from whichever side can spare it.
func shrinkCut(f scenario.Fault) []scenario.Fault {
	var out []scenario.Fault
	if len(f.GroupB) > 1 {
		g := f
		g.GroupB = append([]int(nil), f.GroupB[:len(f.GroupB)-1]...)
		out = append(out, g)
	}
	if len(f.GroupA) > 1 {
		g := f
		g.GroupA = append([]int(nil), f.GroupA[:len(f.GroupA)-1]...)
		out = append(out, g)
	}
	return out
}
