package cluster

import (
	"time"

	"dynatune/internal/scenario"
	"dynatune/internal/workload"
)

// The experiment entry points below are thin spec constructors: each one
// describes its measurement as a scenario.Spec and hands execution to the
// declarative engine in internal/scenario, bound to these options via
// ScenarioEnv. The engine's trial bodies are verbatim ports of the
// historical loops and its shard/seed derivation is unchanged, so for a
// fixed seed the results — pinned by golden_test.go to the microsecond —
// are byte-identical to the pre-scenario code.

// ElectionResult aggregates the paper's §IV-B1 measurement: detection and
// OTS times over repeated leader failures. It is the engine's unified
// failover result; election trials leave the transfer/crash fields empty.
type ElectionResult = scenario.FailoverResult

// SeriesResult holds the time-series probes of a fluctuation run
// (Figs. 6 and 7).
type SeriesResult = scenario.SeriesResult

// ThroughputPoint is one (offered RPS → achieved throughput, latency)
// measurement averaged over repetitions (Fig. 5).
type ThroughputPoint = scenario.RampPoint

// TransferResult aggregates planned leadership handovers (HandoverMs:
// transfer initiation → new leader elected).
type TransferResult = scenario.FailoverResult

// FailureMode selects how the leader is killed in election trials.
type FailureMode int

const (
	// FailPause freezes the leader's process (the paper's `docker pause`).
	FailPause FailureMode = iota
	// FailPartition cuts the leader's links instead: the process keeps
	// running and must abdicate via check-quorum, exercising the
	// stale-leader path (an extra scenario beyond the paper's).
	FailPartition
	// FailAsymPartition cuts only the links INTO the leader: heartbeats
	// still reach the followers, so the outage window is governed entirely
	// by the deaf leader's check-quorum abdication.
	FailAsymPartition
)

// faultKind maps the mode to the engine's injector.
func (m FailureMode) faultKind() scenario.FaultKind {
	switch m {
	case FailPartition:
		return scenario.FaultPartitionLeader
	case FailAsymPartition:
		return scenario.FaultAsymPartitionLeader
	default:
		return scenario.FaultPauseLeader
	}
}

// RunElectionTrials reproduces Fig. 4 / Fig. 8: repeatedly freeze the
// leader, measure detection (first follower timeout) and OTS (new leader
// elected), then thaw and settle. settle should exceed the time the tuner
// needs to engage (minListSize heartbeats).
func RunElectionTrials(opts Options, trials int, settle time.Duration) ElectionResult {
	return RunElectionTrialsWithFailure(opts, trials, settle, FailPause)
}

// RunElectionTrialsWithFailure is RunElectionTrials with a selectable
// failure mode. Trials run in engine-sized shards — each an independent
// cluster on its own engine — spread across TrialWorkers() workers and
// merged in shard order, so the result is deterministic for a given seed
// regardless of parallelism.
func RunElectionTrialsWithFailure(opts Options, trials int, settle time.Duration, mode FailureMode) ElectionResult {
	if trials <= 0 {
		return ElectionResult{Variant: opts.Variant.Name}
	}
	spec := specFor(opts)
	spec.Name = "elections"
	spec.Measure = scenario.MeasureFailover
	spec.Faults = []scenario.Fault{{Kind: mode.faultKind()}}
	spec.Trials = trials
	spec.Settle = scenario.Duration(settle)
	return *mustRun(spec, opts.ScenarioEnv()).Failover
}

// RunFluctuation reproduces the §IV-C scenario shape: start a cluster
// under opts.Profile, wait for a leader, then probe once per second for
// horizon. cpuEvery controls the CPU sampling window (the paper uses 5 s).
func RunFluctuation(opts Options, horizon time.Duration, cpuEvery time.Duration) SeriesResult {
	spec := specFor(opts)
	spec.Name = "fluctuation"
	spec.Measure = scenario.MeasureSeries
	spec.Horizon = scenario.Duration(horizon)
	spec.CPUEvery = scenario.Duration(cpuEvery)
	return *mustRun(spec, opts.ScenarioEnv()).Series
}

// RunThroughputRamp reproduces §IV-B2: an open-loop RPS ramp against a
// healthy cluster, repeated reps times with distinct seeds; per-step
// throughput is averaged and its standard deviation reported. Repetitions
// run in parallel (each on its own engine) and accumulate in rep order,
// producing byte-identical output to a sequential run.
func RunThroughputRamp(opts Options, ramp workload.Ramp, reps int) []ThroughputPoint {
	spec := specFor(opts)
	spec.Name = "throughput-ramp"
	spec.Measure = scenario.MeasureThroughput
	spec.Workload = scenario.WorkloadFrom(ramp, 100*time.Millisecond)
	spec.Reps = reps
	return mustRun(spec, opts.ScenarioEnv()).Ramp.Points
}

// PeakThroughput returns the highest achieved throughput on the curve.
func PeakThroughput(points []ThroughputPoint) float64 {
	var peak float64
	for _, p := range points {
		if p.ThroughputRS > peak {
			peak = p.ThroughputRS
		}
	}
	return peak
}

// RunTransferTrials measures planned-maintenance handover (leadership
// transfer) latency — the complement of the crash failovers in Fig. 4:
// instead of freezing the leader, it hands leadership to a follower and
// measures the out-of-service window, which is bounded by one RTT rather
// than a detection timeout. Like the election trials it shards across the
// parallel runner with deterministic merge order.
func RunTransferTrials(opts Options, trials int, settle time.Duration) TransferResult {
	if trials <= 0 {
		return TransferResult{Variant: opts.Variant.Name}
	}
	spec := specFor(opts)
	spec.Name = "transfers"
	spec.Measure = scenario.MeasureFailover
	spec.Faults = []scenario.Fault{{Kind: scenario.FaultTransferLeader}}
	spec.Trials = trials
	spec.Settle = scenario.Duration(settle)
	return *mustRun(spec, opts.ScenarioEnv()).Failover
}
