// Package netsim models the paper's network testbed: per-link delay,
// jitter and loss injected with `tc netem` between Docker containers, with
// time-varying schedules for the fluctuation experiments (§IV-C).
//
// Two delivery classes are modeled because the paper's artifact depends on
// the difference (§III-E): etcd carries everything over TCP, while Dynatune
// moves heartbeats to UDP.
//
//   - UDP: each packet independently delayed (RTT/2 + jitter), dropped with
//     the link's loss probability, optionally duplicated; no ordering.
//   - TCP: reliable and in-order per link. A "lost" segment costs a
//     retransmission delay, and — the operationally important part — later
//     segments are held behind it (head-of-line blocking), so one drop
//     opens an application-visible gap that scales with RTT. This is what
//     defeats aggressive static timeouts (Raft-Low) at high RTT in Fig. 6
//     and what makes the paper's UDP-heartbeat choice matter.
//
// Profile changes model `tc qdisc replace`: packets sitting in netem's
// delay queue at the moment of reconfiguration are flushed. The experiment
// scripts reconfigure every container together, so the resulting gap is
// correlated across links — the trigger for Raft-Low's election cascades.
package netsim

import (
	"fmt"
	"sort"
	"time"
)

// DelayDist selects the per-packet delay-noise distribution of a link.
type DelayDist uint8

const (
	// DistNormal is the default: symmetric Gaussian noise with standard
	// deviation Jitter (netem's jitter model).
	DistNormal DelayDist = iota
	// DistPareto adds one-sided heavy-tailed extra delay: each packet is
	// held for Jitter·(U^(-1/Alpha) − 1) — a Pareto excess with scale
	// Jitter and shape Alpha — modelling a misbehaving middlebox whose
	// queue occasionally strands packets for orders of magnitude longer
	// than the median, rather than clean symmetric noise. Most packets see
	// almost no extra delay; the tail produces multi-hundred-ms stragglers
	// that defeat RTT estimators tuned on Gaussian jitter.
	DistPareto
)

// Params are the instantaneous conditions of one directed link.
type Params struct {
	// RTT is the round-trip time of the link; the one-way delay is RTT/2.
	RTT time.Duration
	// Jitter is the standard deviation of symmetric per-packet delay noise
	// (DistNormal), or the Pareto scale of the excess delay (DistPareto).
	Jitter time.Duration
	// Loss is the per-packet loss probability in [0, 1].
	Loss float64
	// Dup is the per-packet duplication probability in [0, 1] (UDP only).
	Dup float64
	// Dist selects the delay-noise distribution (default DistNormal).
	Dist DelayDist
	// Alpha is the Pareto shape for DistPareto; must exceed 1 so the mean
	// extra delay Jitter/(Alpha−1) is finite. Smaller alpha → heavier tail.
	Alpha float64
}

// Segment is one piece of a piecewise-constant link schedule.
type Segment struct {
	Start  time.Duration
	Params Params
}

// Profile is a piecewise-constant schedule of link conditions, mirroring
// the experiment scripts that re-run `tc` at fixed intervals.
type Profile struct {
	// Segments must be sorted by Start; the first segment should start at 0.
	Segments []Segment
	// FlushOnChange drops packets in flight across a segment boundary,
	// modeling `tc qdisc replace` flushing netem's delay queue.
	FlushOnChange bool
}

// Constant returns a single-segment profile.
func Constant(p Params) Profile {
	return Profile{Segments: []Segment{{Start: 0, Params: p}}}
}

// Validate checks ordering and parameter ranges.
func (p Profile) Validate() error {
	if len(p.Segments) == 0 {
		return fmt.Errorf("netsim: profile has no segments")
	}
	for i, s := range p.Segments {
		if i > 0 && s.Start <= p.Segments[i-1].Start {
			return fmt.Errorf("netsim: segment %d start %v not after previous %v", i, s.Start, p.Segments[i-1].Start)
		}
		if s.Params.RTT < 0 || s.Params.Jitter < 0 {
			return fmt.Errorf("netsim: segment %d has negative delay", i)
		}
		if s.Params.Loss < 0 || s.Params.Loss > 1 {
			return fmt.Errorf("netsim: segment %d loss %v out of range", i, s.Params.Loss)
		}
		if s.Params.Dup < 0 || s.Params.Dup > 1 {
			return fmt.Errorf("netsim: segment %d dup %v out of range", i, s.Params.Dup)
		}
		switch s.Params.Dist {
		case DistNormal:
		case DistPareto:
			if s.Params.Alpha <= 1 {
				return fmt.Errorf("netsim: segment %d pareto alpha %v must exceed 1 (finite mean)", i, s.Params.Alpha)
			}
			if s.Params.Jitter <= 0 {
				return fmt.Errorf("netsim: segment %d pareto needs a positive jitter (the Pareto scale)", i)
			}
		default:
			return fmt.Errorf("netsim: segment %d has unknown delay distribution %d", i, s.Params.Dist)
		}
	}
	return nil
}

// At returns the parameters in force at time t. Before the first segment it
// returns the first segment's parameters.
func (p Profile) At(t time.Duration) Params {
	i := sort.Search(len(p.Segments), func(i int) bool { return p.Segments[i].Start > t })
	if i == 0 {
		return p.Segments[0].Params
	}
	return p.Segments[i-1].Params
}

// BoundaryBetween reports whether any segment boundary falls in (from, to].
func (p Profile) BoundaryBetween(from, to time.Duration) bool {
	for _, s := range p.Segments[1:] {
		if s.Start > from && s.Start <= to {
			return true
		}
	}
	return false
}

// End returns the start of the last segment (useful to size experiment
// horizons).
func (p Profile) End() time.Duration {
	return p.Segments[len(p.Segments)-1].Start
}

// RTTSteps builds a profile that walks through the given RTT values,
// holding each for hold, starting from base parameters (jitter/loss/dup
// copied from base). It reproduces the paper's gradual and radical RTT
// fluctuation schedules (§IV-C1).
func RTTSteps(base Params, hold time.Duration, rtts ...time.Duration) Profile {
	segs := make([]Segment, len(rtts))
	for i, r := range rtts {
		p := base
		p.RTT = r
		segs[i] = Segment{Start: time.Duration(i) * hold, Params: p}
	}
	return Profile{Segments: segs, FlushOnChange: true}
}

// LossSteps builds a profile that walks through the given loss rates with
// constant RTT, reproducing the packet-loss sweep of §IV-C2.
func LossSteps(base Params, hold time.Duration, losses ...float64) Profile {
	segs := make([]Segment, len(losses))
	for i, l := range losses {
		p := base
		p.Loss = l
		segs[i] = Segment{Start: time.Duration(i) * hold, Params: p}
	}
	return Profile{Segments: segs, FlushOnChange: true}
}

// GradualRTTRamp reproduces the paper's gradual pattern: RTT from lo to hi
// and back in `step` increments, each value held for `hold`.
func GradualRTTRamp(base Params, lo, hi, step, hold time.Duration) Profile {
	var rtts []time.Duration
	for r := lo; r <= hi; r += step {
		rtts = append(rtts, r)
	}
	for r := hi - step; r >= lo; r -= step {
		rtts = append(rtts, r)
	}
	return RTTSteps(base, hold, rtts...)
}

// RadicalRTTSpike reproduces the paper's radical pattern: lo for hold, then
// an abrupt jump to hi for hold, then back to lo.
func RadicalRTTSpike(base Params, lo, hi, hold time.Duration) Profile {
	return RTTSteps(base, hold, lo, hi, lo)
}

// LossSweep reproduces the paper's §IV-C2 sweep: 0→5→10→15→20→25→30→25→…→0 %
// with each rate held for `hold`.
func LossSweep(base Params, hold time.Duration) Profile {
	rates := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.25, 0.20, 0.15, 0.10, 0.05, 0}
	return LossSteps(base, hold, rates...)
}
