// Package storage makes Raft's durable state survive crashes: the current
// term and vote, the log, and state-machine snapshots. It provides two
// raft.Persister implementations with identical semantics:
//
//   - Memory, an in-process store the simulated testbed uses to model
//     crash-recovery failures (the "disk" survives while the node's
//     volatile state — including Dynatune's measurement lists — is lost,
//     exactly the paper's §III-A crash-recovery fault model);
//   - WAL, a CRC-framed append-only log plus atomically written snapshot
//     files, used by the real-network daemon (cmd/dynatuned).
//
// Both recover to a raft.Restored that Config.Restored resumes from.
package storage

import (
	"fmt"

	"dynatune/internal/raft"
)

// applyRecord folds one logical WAL record into an accumulating recovery
// state; Memory and WAL replay share it so their semantics cannot drift.
type recovery struct {
	hs        raft.HardState
	snap      *raft.Snapshot
	entries   []raft.Entry // contiguous, entries[0].Index == floor+1
	haveState bool
}

func (r *recovery) floor() uint64 {
	if r.snap != nil {
		return r.snap.Index
	}
	return 0
}

func (r *recovery) lastIndex() uint64 {
	if n := len(r.entries); n > 0 {
		return r.entries[n-1].Index
	}
	return r.floor()
}

func (r *recovery) setHardState(hs raft.HardState) {
	r.hs = hs
	r.haveState = true
}

// appendEntries applies the overwrite semantics replay needs: an entry at
// an index we already hold replaces it and truncates everything above
// (the conflicting-suffix rule), so replaying a history that contains
// superseded appends converges to the final log.
func (r *recovery) appendEntries(entries []raft.Entry) error {
	for _, e := range entries {
		switch {
		case e.Index <= r.floor():
			// Below the snapshot floor: already covered, skip.
			continue
		case e.Index == r.lastIndex()+1:
			r.entries = append(r.entries, e)
		case e.Index <= r.lastIndex():
			r.entries = r.entries[:e.Index-r.floor()-1]
			r.entries = append(r.entries, e)
		default:
			return fmt.Errorf("storage: entry gap: got index %d after %d", e.Index, r.lastIndex())
		}
	}
	return nil
}

func (r *recovery) truncateFrom(index uint64) {
	if index <= r.floor() {
		r.entries = r.entries[:0]
		return
	}
	if index <= r.lastIndex() {
		r.entries = r.entries[:index-r.floor()-1]
	}
}

func (r *recovery) setSnapshot(snap raft.Snapshot) {
	if snap.Index < r.floor() {
		// A stale snapshot must not regress the floor: entries below the
		// current floor are already gone, so adopting an older snapshot
		// would leave a gap between it and the retained suffix.
		return
	}
	// Drop entries the snapshot covers; keep any suffix above it.
	if snap.Index > r.floor() {
		if snap.Index >= r.lastIndex() {
			r.entries = r.entries[:0]
		} else {
			r.entries = append([]raft.Entry(nil), r.entries[snap.Index-r.floor():]...)
		}
	}
	s := snap
	r.snap = &s
}

func (r *recovery) restored() *raft.Restored {
	if !r.haveState && r.snap == nil && len(r.entries) == 0 {
		return nil // fresh store
	}
	out := &raft.Restored{HardState: r.hs}
	if r.snap != nil {
		s := *r.snap
		out.Snapshot = &s
	}
	if len(r.entries) > 0 {
		out.Entries = append([]raft.Entry(nil), r.entries...)
	}
	return out
}
