//go:build !unix

package loadharness

// RaiseFDLimit is a no-op where rlimits don't exist; the run proceeds on
// whatever the platform allows.
func RaiseFDLimit(want uint64) (uint64, error) { return want, nil }
