// Package shard implements the sharded multi-Raft layer: a consistent-hash
// router that maps keys onto N independent Raft groups, a simulated
// multi-group cluster running every group on one virtual clock (each group
// with its own kv state machine, log and tuner instance), a keyed open-loop
// load generator that fans traffic out across the groups, and the ramp
// experiment comparing aggregate committed-ops throughput at different
// shard counts.
//
// A single Raft group serializes every write through one leader, so no
// matter how well the paper's tuner adapts timeouts the service capacity is
// one leader's CPU. Sharding multiplies that ceiling: disjoint key ranges
// commit through disjoint leaders, while each group keeps its own dynatune
// instance adapting to the shared WAN conditions.
package shard

import (
	"fmt"
	"sort"
)

// GroupID identifies one Raft group (0-based).
type GroupID int

// DefaultReplicas is the default number of virtual nodes each group
// places on the ring. More replicas smooth the key distribution; 256
// keeps per-group load within ≈10% of uniform up to 16 groups.
const DefaultReplicas = 256

// Router maps keys onto groups with a consistent-hash ring (each group
// contributes `replicas` virtual points; a key belongs to the first point
// clockwise of its hash). The mapping is a pure function of (groups,
// replicas): re-instantiating with the same shape yields the same routing.
//
// The ring is epoch-versioned: AddGroup and RemoveGroup install a new
// ring and bump the epoch, keeping the displaced ring as the previous
// epoch's view (RoutePrev). Because a group's virtual points depend only
// on its id, growing the group count moves only ≈1/(G+1) of the keyspace
// — all of it onto the new group — and shrinking moves exactly the
// removed group's share onto the survivors; every other key routes
// identically across the epoch boundary. The live-migration layer
// (migrate.go) relies on both properties: the moved set is the fence, and
// the previous ring is the dual-read fallback.
type Router struct {
	groups   int
	replicas int
	ring     []ringPoint // sorted by hash
	epoch    int
	// prev is the ring displaced by the last epoch bump (nil at epoch 0);
	// prevGroups is its group count.
	prev       []ringPoint
	prevGroups int
}

type ringPoint struct {
	hash  uint64
	group GroupID
}

// NewRouter builds a ring over the given number of groups. replicas <= 0
// takes DefaultReplicas. It panics on a non-positive group count (a router
// with nothing to route to is a programming error).
func NewRouter(groups, replicas int) *Router {
	if groups <= 0 {
		panic(fmt.Sprintf("shard: NewRouter with %d groups", groups))
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Router{groups: groups, replicas: replicas, ring: buildRing(groups, replicas)}
}

func buildRing(groups, replicas int) []ringPoint {
	ring := make([]ringPoint, 0, groups*replicas)
	for g := 0; g < groups; g++ {
		for v := 0; v < replicas; v++ {
			h := fnv1a(fmt.Sprintf("group-%d#%d", g, v))
			ring = append(ring, ringPoint{hash: h, group: GroupID(g)})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	return ring
}

// Epoch returns the ring version: 0 at construction, +1 per Add/RemoveGroup.
func (r *Router) Epoch() int { return r.epoch }

// AddGroup installs a new ring with one more group and returns the new
// group's id (always the next index). The displaced ring stays readable
// via RoutePrev until the next epoch bump.
func (r *Router) AddGroup() GroupID {
	r.prev, r.prevGroups = r.ring, r.groups
	r.groups++
	r.ring = buildRing(r.groups, r.replicas)
	r.epoch++
	return GroupID(r.groups - 1)
}

// RemoveGroup installs a new ring without the given group. Only the
// highest group id may be removed — group ids index the cluster's group
// table, and removing from the middle would renumber live groups.
func (r *Router) RemoveGroup(g GroupID) {
	if int(g) != r.groups-1 {
		panic(fmt.Sprintf("shard: RemoveGroup(%d) with %d groups — only the last group can be removed", g, r.groups))
	}
	if r.groups == 1 {
		panic("shard: RemoveGroup would leave nothing to route to")
	}
	r.prev, r.prevGroups = r.ring, r.groups
	r.groups--
	r.ring = buildRing(r.groups, r.replicas)
	r.epoch++
}

// fnv1a is the 64-bit FNV-1a hash with a splitmix64 finalizer, computed
// inline so routing a key does not allocate. Raw FNV-1a scatters short,
// similar keys ("key-0001", "key-0002", …) poorly across the high bits
// the ring search orders by; the finalizer restores avalanche.
func fnv1a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Route returns the group owning key under the current epoch's ring.
func (r *Router) Route(key string) GroupID {
	return routeOn(r.ring, key)
}

// RoutePrev returns the key's owner under the previous epoch's ring; ok
// is false at epoch 0, when no ring has been displaced yet. The dual-read
// fallback uses it: a read that misses at the current owner during a
// migration retries the owner the key is moving away from.
func (r *Router) RoutePrev(key string) (GroupID, bool) {
	if r.prev == nil {
		return 0, false
	}
	return routeOn(r.prev, key), true
}

func routeOn(ring []ringPoint, key string) GroupID {
	h := fnv1a(key)
	i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
	if i == len(ring) {
		i = 0 // wrap: past the last point belongs to the first
	}
	return ring[i].group
}

// Groups returns the number of groups on the ring.
func (r *Router) Groups() int { return r.groups }

// Partition splits keys by owning group, preserving the input order
// within each group.
func (r *Router) Partition(keys []string) map[GroupID][]string {
	out := make(map[GroupID][]string)
	for _, k := range keys {
		g := r.Route(k)
		out[g] = append(out[g], k)
	}
	return out
}
