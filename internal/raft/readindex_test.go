package raft

import (
	"fmt"
	"testing"
	"time"
)

func TestReadIndexOnFollowerFails(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for _, n := range c.nodes {
		if n == lead {
			continue
		}
		if err := n.ReadIndex(func(uint64, bool) {}); err != ErrNotLeader {
			t.Fatalf("follower ReadIndex err = %v, want ErrNotLeader", err)
		}
	}
}

func TestReadIndexConfirmsAtCommitIndex(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	idx, err := lead.Propose([]byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)

	var gotIndex uint64
	var gotOK, fired bool
	if err := lead.ReadIndex(func(i uint64, ok bool) { gotIndex, gotOK, fired = i, ok, true }); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("read confirmed without a heartbeat round")
	}
	c.run(time.Second)
	if !fired {
		t.Fatal("read never confirmed")
	}
	if !gotOK {
		t.Fatal("read failed despite stable leadership")
	}
	if gotIndex < idx {
		t.Fatalf("read index %d below the committed proposal %d", gotIndex, idx)
	}
}

func TestReadIndexWaitsForApply(t *testing.T) {
	// The callback must not fire before the state machine applied the read
	// index — even if the quorum round finishes first. With apply driven
	// synchronously from commit in this implementation, the check is that
	// the observed index is always <= applied at callback time.
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second) // let the term no-op commit
	violated := false
	for k := 0; k < 5; k++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("v%d", k))); err != nil {
			t.Fatal(err)
		}
		if err := lead.ReadIndex(func(i uint64, ok bool) {
			if ok && lead.Log().Applied() < i {
				violated = true
			}
		}); err != nil {
			t.Fatal(err)
		}
		c.run(300 * time.Millisecond)
	}
	c.run(time.Second)
	if violated {
		t.Fatal("a read fired before its index was applied")
	}
	if lead.PendingReads() != 0 {
		t.Fatalf("%d reads still pending", lead.PendingReads())
	}
}

func TestReadIndexNotReadyBeforeTermCommit(t *testing.T) {
	// A fresh leader must refuse reads until its own-term no-op commits
	// (Raft §8). Drop MsgAppResp so the no-op can never commit.
	opts := defaultOpts()
	opts.interceptf = func(to int, m Message) bool {
		return m.Type != MsgAppResp
	}
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	if err := lead.ReadIndex(func(uint64, bool) {}); err != ErrNotReady {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
}

func TestReadIndexFailsOnLeadershipLoss(t *testing.T) {
	// Register a read whose confirmations never arrive, then depose the
	// leader: the callback must report failure.
	opts := defaultOpts()
	block := false
	opts.interceptf = func(to int, m Message) bool {
		return !(block && m.Type == MsgHeartbeatResp)
	}
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second) // commit the no-op
	block = true
	var fired, gotOK bool
	if err := lead.ReadIndex(func(_ uint64, ok bool) { fired, gotOK = true, ok }); err != nil {
		t.Fatal(err)
	}
	// Depose via a higher-term append from a peer.
	var other ID
	for _, n := range c.nodes {
		if n != lead {
			other = n.ID()
			break
		}
	}
	lead.Step(Message{Type: MsgApp, From: other, To: lead.ID(), Term: lead.Term() + 10})
	if !fired {
		t.Fatal("pending read not resolved on stepdown")
	}
	if gotOK {
		t.Fatal("read reported success despite leadership loss")
	}
}

func TestReadIndexOrderingAcrossBatch(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second)
	var order []uint64
	for k := 0; k < 4; k++ {
		if err := lead.ReadIndex(func(i uint64, ok bool) {
			if ok {
				order = append(order, i)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if k == 1 {
			if _, err := lead.Propose([]byte("mid")); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.run(time.Second)
	if len(order) != 4 {
		t.Fatalf("confirmed %d of 4 reads", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("read indexes regressed: %v", order)
		}
	}
}

func TestReadIndexSingleNode(t *testing.T) {
	opts := defaultOpts()
	opts.n = 1
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(100 * time.Millisecond)
	fired := false
	if err := lead.ReadIndex(func(i uint64, ok bool) { fired = ok }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("single-voter read should confirm synchronously")
	}
}

func TestLeaseReadImmediateUnderQuorumContact(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second) // heartbeat rounds populate lastActive
	fired := false
	if err := lead.LeaseRead(func(i uint64, ok bool) { fired = ok }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("lease read should serve synchronously while the lease holds")
	}
	if lead.LeaseRemaining() <= 0 {
		t.Fatal("lease should have time remaining")
	}
}

func TestLeaseReadExpiresWithoutQuorum(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second)
	for _, n := range c.nodes {
		if n != lead {
			c.crash(n.ID())
		}
	}
	// Outrun the lease (Et = 1 s) but stay under the check-quorum sweep's
	// stepdown consequences by checking state first.
	c.run(1500 * time.Millisecond)
	if lead.State() == StateLeader {
		if err := lead.LeaseRead(func(uint64, bool) {}); err != ErrLeaseExpired {
			t.Fatalf("err = %v, want ErrLeaseExpired", err)
		}
	}
	if got := lead.LeaseRemaining(); got != 0 {
		t.Fatalf("LeaseRemaining = %v after quorum loss", got)
	}
}

func TestLeaseReadRequiresCheckQuorum(t *testing.T) {
	opts := defaultOpts()
	opts.noCheckQ = true
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second)
	if err := lead.LeaseRead(func(uint64, bool) {}); err != ErrLeaseExpired {
		t.Fatalf("err = %v, want ErrLeaseExpired (no lease without check-quorum)", err)
	}
}

func TestReadIndexLinearizableAgainstWrites(t *testing.T) {
	// A read registered after a committed write must observe an index at
	// or beyond that write, across repeated rounds with failovers absent.
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for k := 0; k < 10; k++ {
		idx, err := lead.Propose([]byte(fmt.Sprintf("w%d", k)))
		if err != nil {
			t.Fatal(err)
		}
		c.run(500 * time.Millisecond) // commit
		var got uint64
		ok := false
		if err := lead.ReadIndex(func(i uint64, o bool) { got, ok = i, o }); err != nil {
			t.Fatal(err)
		}
		c.run(500 * time.Millisecond)
		if !ok {
			t.Fatalf("round %d: read failed", k)
		}
		if got < idx {
			t.Fatalf("round %d: read index %d precedes committed write %d", k, got, idx)
		}
	}
}

func TestLeaseShrinksWithTunedEt(t *testing.T) {
	// The lease window equals the election timeout, so a tuner that
	// shrinks Et also shrinks the lease — the Dynatune interaction the
	// read-latency experiment measures. Model it with two static tuners.
	mk := func(et time.Duration) *testCluster {
		opts := defaultOpts()
		opts.tuners = func(int) Tuner { return NewStaticTuner(et, et/10) }
		return newTestCluster(opts)
	}
	big := mk(1000 * time.Millisecond)
	small := mk(300 * time.Millisecond)
	lb := big.waitLeader(5 * time.Second)
	ls := small.waitLeader(5 * time.Second)
	if lb == nil || ls == nil {
		t.Fatal("no leaders")
	}
	big.run(time.Second)
	small.run(time.Second)
	if rb, rs := lb.LeaseRemaining(), ls.LeaseRemaining(); rb <= rs {
		t.Fatalf("lease with Et=1000ms (%v) should exceed lease with Et=300ms (%v)", rb, rs)
	}
}
