package raft

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/sim"
)

// newExtCluster builds a cluster with the §IV-E extension flags.
func newExtCluster(opts clusterOpts, suppress, consolidated bool) *testCluster {
	c := &testCluster{eng: sim.NewEngine(opts.seed)}
	c.net = netsim.New[Message](c.eng, opts.n, netsim.Constant(opts.params), func(to int, m Message) {
		rt := c.rts[to]
		if rt.down {
			return
		}
		rt.node.Step(m)
	})
	peers := make([]ID, opts.n)
	for i := range peers {
		peers[i] = ID(i + 1)
	}
	for i := 0; i < opts.n; i++ {
		rt := &testRuntime{
			eng:     c.eng,
			net:     c.net,
			id:      ID(i + 1),
			timers:  map[timerKey]sim.Handle{},
			hbClass: opts.hbClass,
		}
		node, err := NewNode(Config{
			ID:                                ID(i + 1),
			Peers:                             peers,
			Runtime:                           rt,
			Tuner:                             opts.tuners(i),
			Tracer:                            recordTracer{c},
			SuppressHeartbeatWhileReplicating: suppress,
			ConsolidatedHeartbeats:            consolidated,
		})
		if err != nil {
			panic(err)
		}
		rt.node = node
		c.rts = append(c.rts, rt)
		c.nodes = append(c.nodes, node)
	}
	for _, n := range c.nodes {
		n.Start()
	}
	return c
}

func countHeartbeats(c *testCluster, from ID) uint64 {
	var total uint64
	for to := 0; to < len(c.nodes); to++ {
		if ID(to+1) == from {
			continue
		}
		st := c.net.StatsFor(int(from-1), to)
		total += st.Sent[netsim.TCP] // heartbeats travel TCP in this harness
	}
	return total
}

func TestConsolidatedHeartbeatsKeepClusterStable(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newExtCluster(opts, false, true)
	lead := c.waitLeader(10 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	settled := c.eng.Now()
	c.run(30 * time.Second)
	for _, ev := range c.events {
		if ev.Kind == EventTimeout && ev.Time > settled+2*time.Second {
			t.Fatalf("spurious timeout under consolidated heartbeats at %v", ev.Time)
		}
	}
	if c.leader() != lead {
		t.Fatal("leadership moved under consolidated heartbeats")
	}
}

func TestConsolidatedFailoverStillWorks(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newExtCluster(opts, true, true)
	lead := c.waitLeader(10 * time.Second)
	c.crash(lead.ID())
	c.run(10 * time.Second)
	nl := c.leader()
	if nl == nil || nl.ID() == lead.ID() {
		t.Fatal("no failover with extensions enabled")
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestSuppressionReducesHeartbeatsUnderLoad(t *testing.T) {
	run := func(suppress bool) uint64 {
		opts := defaultOpts()
		opts.n = 3
		opts.seed = 5
		c := newExtCluster(opts, suppress, false)
		lead := c.waitLeader(10 * time.Second)
		c.run(time.Second)
		start := countHeartbeats(c, lead.ID())
		// Propose continuously for 10s: every 20ms, well under h=100ms.
		var pump func()
		i := 0
		pump = func() {
			if c.eng.Now() > 12*time.Second {
				return
			}
			i++
			lead.Propose([]byte(fmt.Sprintf("v%d", i))) //nolint:errcheck // load pump
			c.eng.After(20*time.Millisecond, pump)
		}
		c.eng.After(0, pump)
		c.run(10 * time.Second)
		return countHeartbeats(c, lead.ID()) - start
	}
	with := run(true)
	without := run(false)
	// Without suppression the leader still beats every h; with it, MsgApp
	// traffic replaces nearly all heartbeats. The counter includes MsgApp
	// (same TCP class), so compare a lower bound: suppression must remove
	// roughly the 2 peers × 10s / 100ms = 200 beats.
	if with+100 > without {
		t.Fatalf("suppression ineffective: %d vs %d messages", with, without)
	}
}

func TestSuppressionDoesNotStarveIdlePeers(t *testing.T) {
	// With suppression on but NO load, heartbeats must still flow and no
	// follower may time out.
	opts := defaultOpts()
	opts.n = 5
	c := newExtCluster(opts, true, false)
	c.waitLeader(10 * time.Second)
	settled := c.eng.Now()
	c.run(20 * time.Second)
	for _, ev := range c.events {
		if ev.Kind == EventTimeout && ev.Time > settled+2*time.Second {
			t.Fatalf("timeout with suppression and no load at %v", ev.Time)
		}
	}
}

func TestConsolidatedUsesMinInterval(t *testing.T) {
	// Give the leader a tuner with wildly different per-peer intervals;
	// the sweep must run at the minimum.
	opts := defaultOpts()
	opts.n = 3
	opts.tuners = func(i int) Tuner {
		return &unevenTuner{StaticTuner: StaticTuner{Et: time.Second, H: 100 * time.Millisecond}}
	}
	c := newExtCluster(opts, false, true)
	lead := c.waitLeader(10 * time.Second)
	c.run(time.Second)
	before := countHeartbeats(c, lead.ID())
	c.run(10 * time.Second)
	sent := countHeartbeats(c, lead.ID()) - before
	// Min interval is 50ms (peer 1's), so ~200 sweeps × 2 peers ≈ 400
	// heartbeats (plus responses don't count: Sent from leader only).
	if sent < 300 {
		t.Fatalf("sent %d heartbeats in 10s, want ≥300 (min-interval sweeps)", sent)
	}
}

// unevenTuner returns different heartbeat intervals per peer: 50ms for
// odd IDs, 200ms for even ones, so every possible leader sees a 50ms
// minimum in a 3-node cluster.
type unevenTuner struct{ StaticTuner }

func (u *unevenTuner) HeartbeatInterval(peer ID) time.Duration {
	if peer%2 == 1 {
		return 50 * time.Millisecond
	}
	return 200 * time.Millisecond
}

func TestExtensionsChaosSafety(t *testing.T) {
	// The §IV-E extensions must not weaken safety under chaos. Reuse the
	// chaos machinery with extension-enabled nodes via a dedicated run.
	opts := defaultOpts()
	opts.n = 5
	opts.seed = 99
	opts.params = netsim.Params{RTT: 30 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.05}
	c := newExtCluster(opts, true, true)
	rng := c.eng.Rand()
	for round := 0; round < 40; round++ {
		c.run(time.Duration(200+rng.Intn(800)) * time.Millisecond)
		switch rng.Intn(6) {
		case 0:
			if l := c.leader(); l != nil {
				c.crash(l.ID())
			}
		case 1:
			for id := ID(1); id <= 5; id++ {
				if c.rts[id-1].down {
					c.restart(id)
					break
				}
			}
		default:
			if l := c.leader(); l != nil {
				l.Propose([]byte("x")) //nolint:errcheck // chaos
			}
		}
	}
	for id := ID(1); id <= 5; id++ {
		if c.rts[id-1].down {
			c.restart(id)
		}
	}
	c.run(20 * time.Second)
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
	if c.leader() == nil {
		t.Fatal("no convergence after chaos with extensions")
	}
}
