package raft

import (
	"fmt"
	"testing"
	"testing/quick"
)

func entries(pairs ...uint64) []Entry {
	// pairs are (index, term) couples.
	var out []Entry
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Entry{Index: pairs[i], Term: pairs[i+1], Data: []byte(fmt.Sprintf("e%d", pairs[i]))})
	}
	return out
}

func TestLogInitialState(t *testing.T) {
	l := NewLog()
	if l.LastIndex() != 0 || l.LastTerm() != 0 || l.Committed() != 0 || l.Applied() != 0 {
		t.Fatal("fresh log not at sentinel state")
	}
	if l.Len() != 0 {
		t.Fatalf("Len = %d", l.Len())
	}
	if term, ok := l.Term(0); !ok || term != 0 {
		t.Fatal("sentinel term missing")
	}
}

func TestLogAppendAssignsIndexes(t *testing.T) {
	l := NewLog()
	last := l.Append(3, []byte("a"), []byte("b"))
	if last != 2 {
		t.Fatalf("last = %d", last)
	}
	e, ok := l.Entry(2)
	if !ok || e.Term != 3 || string(e.Data) != "b" {
		t.Fatalf("entry 2 = %+v", e)
	}
	if l.LastTerm() != 3 {
		t.Fatalf("LastTerm = %d", l.LastTerm())
	}
}

func TestMaybeAppendConsistencyCheck(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a")) // index 1 term 1
	if _, ok := l.MaybeAppend(5, 1, nil); ok {
		t.Fatal("append with missing prev accepted")
	}
	if _, ok := l.MaybeAppend(1, 9, nil); ok {
		t.Fatal("append with wrong prev term accepted")
	}
	last, ok := l.MaybeAppend(1, 1, entries(2, 1))
	if !ok || last != 2 {
		t.Fatalf("valid append rejected (%v, %d)", ok, last)
	}
}

func TestMaybeAppendTruncatesConflicts(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"), []byte("c")) // 1..3 term 1
	// New leader at term 2 overwrites index 2 onward.
	last, ok := l.MaybeAppend(1, 1, entries(2, 2, 3, 2))
	if !ok || last != 3 {
		t.Fatalf("conflicting append failed (%v, %d)", ok, last)
	}
	if term, _ := l.Term(2); term != 2 {
		t.Fatalf("index 2 term = %d, want 2", term)
	}
	if l.LastIndex() != 3 {
		t.Fatalf("LastIndex = %d", l.LastIndex())
	}
}

func TestMaybeAppendIdempotent(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"))
	// Re-sending the same entries must not truncate or duplicate.
	last, ok := l.MaybeAppend(0, 0, entries(1, 1, 2, 1))
	if !ok || last != 2 {
		t.Fatalf("idempotent append failed (%v, %d)", ok, last)
	}
	if l.LastIndex() != 2 {
		t.Fatalf("LastIndex = %d after duplicate append", l.LastIndex())
	}
}

func TestMaybeAppendPrefixSubset(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"), []byte("c"))
	// An old MsgApp covering only a prefix must not truncate the suffix.
	last, ok := l.MaybeAppend(0, 0, entries(1, 1))
	if !ok || last != 1 {
		t.Fatalf("prefix append failed (%v, %d)", ok, last)
	}
	if l.LastIndex() != 3 {
		t.Fatalf("suffix truncated by stale prefix append: LastIndex=%d", l.LastIndex())
	}
}

func TestCommitToClampsAtLastIndex(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"))
	l.CommitTo(99)
	if l.Committed() != 1 {
		t.Fatalf("Committed = %d, want clamp at 1", l.Committed())
	}
	l.CommitTo(0) // never backwards
	if l.Committed() != 1 {
		t.Fatal("commit moved backwards")
	}
}

func TestNextToApply(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"), []byte("c"))
	l.CommitTo(2)
	ents := l.NextToApply()
	if len(ents) != 2 || ents[0].Index != 1 || ents[1].Index != 2 {
		t.Fatalf("apply batch = %+v", ents)
	}
	if l.NextToApply() != nil {
		t.Fatal("second apply not empty")
	}
	l.CommitTo(3)
	ents = l.NextToApply()
	if len(ents) != 1 || ents[0].Index != 3 {
		t.Fatalf("second batch = %+v", ents)
	}
}

func TestIsUpToDate(t *testing.T) {
	l := NewLog()
	l.Append(2, []byte("a")) // last (1, 2)
	cases := []struct {
		index, term uint64
		want        bool
	}{
		{1, 2, true},  // identical
		{2, 2, true},  // longer same term
		{0, 3, true},  // higher term wins regardless of length
		{0, 2, false}, // shorter same term
		{5, 1, false}, // longer but lower term
	}
	for _, tc := range cases {
		if got := l.IsUpToDate(tc.index, tc.term); got != tc.want {
			t.Errorf("IsUpToDate(%d,%d) = %v, want %v", tc.index, tc.term, got, tc.want)
		}
	}
}

func TestSlice(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"), []byte("c"), []byte("d"))
	ents, ok := l.Slice(2, 3, 0)
	if !ok || len(ents) != 2 || ents[0].Index != 2 {
		t.Fatalf("Slice(2,3) = %+v, %v", ents, ok)
	}
	ents, ok = l.Slice(2, 100, 0)
	if !ok || len(ents) != 3 {
		t.Fatalf("Slice hi clamp failed: %d", len(ents))
	}
	ents, ok = l.Slice(2, 4, 2)
	if !ok || len(ents) != 2 {
		t.Fatalf("maxEntries cap failed: %d", len(ents))
	}
	if ents, ok := l.Slice(4, 2, 0); !ok || ents != nil {
		t.Fatal("inverted range should be empty but ok")
	}
	if _, ok := l.Slice(9, 9, 0); ok {
		t.Fatal("out-of-range lo accepted")
	}
}

func TestCompact(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"), []byte("c"), []byte("d"))
	l.CommitTo(3)
	l.NextToApply()
	l.CompactTo(2)
	if l.FirstIndex() != 2 {
		t.Fatalf("FirstIndex = %d", l.FirstIndex())
	}
	if _, ok := l.Entry(1); ok {
		t.Fatal("compacted entry still visible")
	}
	// The new sentinel keeps its term for consistency checks.
	if term, ok := l.Term(2); !ok || term != 1 {
		t.Fatalf("sentinel term = %d, %v", term, ok)
	}
	if !l.MatchesPrev(2, 1) {
		t.Fatal("MatchesPrev at sentinel failed")
	}
	// Remaining entries still reachable.
	if e, ok := l.Entry(3); !ok || string(e.Data) != "c" {
		t.Fatalf("entry 3 = %+v, %v", e, ok)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
}

func TestCompactBeyondAppliedPanics(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic compacting beyond applied")
		}
	}()
	l.CompactTo(1)
}

func TestCompactNoopBelowOffset(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"), []byte("b"))
	l.CommitTo(2)
	l.NextToApply()
	l.CompactTo(2)
	l.CompactTo(1) // below offset: no-op
	if l.FirstIndex() != 2 {
		t.Fatalf("FirstIndex = %d", l.FirstIndex())
	}
}

func TestConflictBelowCommitPanics(t *testing.T) {
	l := NewLog()
	l.Append(1, []byte("a"))
	l.CommitTo(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on conflict below commit")
		}
	}()
	l.MaybeAppend(0, 0, entries(1, 9))
}

// Property: after any sequence of valid appends and commits, invariants
// hold: terms never decrease along the log, committed ≤ last, applied ≤
// committed.
func TestPropertyLogInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		l := NewLog()
		term := uint64(1)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				l.Append(term, []byte{op})
			case 1:
				term++ // new leader's term
			case 2:
				l.CommitTo(uint64(op))
			case 3:
				l.NextToApply()
			}
		}
		prevTerm := uint64(0)
		for i := l.FirstIndex(); i <= l.LastIndex(); i++ {
			tm, ok := l.Term(i)
			if !ok || tm < prevTerm {
				return false
			}
			prevTerm = tm
		}
		return l.Committed() <= l.LastIndex() && l.Applied() <= l.Committed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
