// Command dynatuned runs one Dynatune (or baseline Raft) key-value node
// on a real network: UDP heartbeats + TCP consensus, with an HTTP client
// API — a laptop-scale stand-in for the paper's etcd fork.
//
// A three-node local cluster:
//
//	dynatuned -id 1 -cluster 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 -http 127.0.0.1:8101
//	dynatuned -id 2 -cluster 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 -http 127.0.0.1:8102
//	dynatuned -id 3 -cluster 1=127.0.0.1:7101,2=127.0.0.1:7102,3=127.0.0.1:7103 -http 127.0.0.1:8103
//
// Each node listens for TCP and UDP on its own cluster address (the same
// port number on both protocols). -mode selects dynatune (default), raft,
// raft-low, or fixk.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/raft"
	"dynatune/internal/server"
	"dynatune/internal/storage"
	"dynatune/internal/transport"
)

func main() {
	var (
		id      = flag.Uint64("id", 0, "node ID (must appear in -cluster)")
		cluster = flag.String("cluster", "", "comma-separated id=host:port pairs for every node")
		httpA   = flag.String("http", "", "client API listen address (host:port)")
		binA    = flag.String("bin", "", "binary client API listen address (host:port; the pipelined hot path)")
		mode    = flag.String("mode", "dynatune", "dynatune | raft | raft-low | fixk")
		et      = flag.Duration("et", dynatune.DefaultEt, "fallback/static election timeout")
		hb      = flag.Duration("h", dynatune.DefaultH, "fallback/static heartbeat interval")
		sfactor = flag.Float64("s", dynatune.DefaultSafetyFactor, "dynatune safety factor s")
		x       = flag.Float64("x", dynatune.DefaultArrivalProbability, "dynatune arrival probability x")
		minList = flag.Int("min-list", dynatune.DefaultMinListSize, "dynatune minListSize")
		maxList = flag.Int("max-list", dynatune.DefaultMaxListSize, "dynatune maxListSize")
		fixK    = flag.Int("k", 10, "K for -mode fixk")
		dataDir = flag.String("data-dir", "", "WAL directory; empty runs the node without persistence")
	)
	flag.Parse()

	peers, err := parseCluster(*cluster)
	if err != nil {
		log.Fatalf("dynatuned: %v", err)
	}
	if _, ok := peers[raft.ID(*id)]; !ok || *id == 0 {
		log.Fatalf("dynatuned: -id %d not present in -cluster", *id)
	}

	opts := dynatune.Options{
		SafetyFactor:       *sfactor,
		ArrivalProbability: *x,
		MinListSize:        *minList,
		MaxListSize:        *maxList,
		FallbackEt:         *et,
		FallbackH:          *hb,
	}
	var tuner raft.Tuner
	switch *mode {
	case "dynatune":
		tuner, err = dynatune.NewTuner(opts)
	case "fixk":
		opts.FixK = *fixK
		tuner, err = dynatune.NewTuner(opts)
	case "raft":
		tuner = raft.NewStaticTuner(*et, *hb)
	case "raft-low":
		tuner = raft.NewStaticTuner(*et/10, *hb/10)
	default:
		log.Fatalf("dynatuned: unknown -mode %q", *mode)
	}
	if err != nil {
		log.Fatalf("dynatuned: %v", err)
	}

	var persister raft.Persister
	var restored *raft.Restored
	if *dataDir != "" {
		wal, rec, err := storage.Open(*dataDir, storage.WALOptions{})
		if err != nil {
			log.Fatalf("dynatuned: open WAL in %s: %v", *dataDir, err)
		}
		defer wal.Close()
		persister, restored = wal, rec
		if rec != nil {
			log.Printf("dynatuned: recovered term=%d vote=%d entries=%d snapshot=%v from %s",
				rec.HardState.Term, rec.HardState.Vote, len(rec.Entries), rec.Snapshot != nil, *dataDir)
		}
	}

	s, err := server.Start(server.Config{
		ID:         raft.ID(*id),
		Peers:      peers,
		Listen:     peers[raft.ID(*id)],
		HTTPListen: *httpA,
		BinListen:  *binA,
		Tuner:      tuner,
		Persister:  persister,
		Restored:   restored,
	})
	if err != nil {
		log.Fatalf("dynatuned: %v", err)
	}
	log.Printf("dynatuned: node %d up; raft %s (tcp) / %s (udp); http %s; bin %s; mode %s",
		*id, s.Addrs().TCP, s.Addrs().UDP, s.HTTPAddr(), s.BinAddr(), *mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		t := time.NewTicker(5 * time.Second)
		defer t.Stop()
		for range t.C {
			st := s.Status()
			log.Printf("status: state=%s term=%d leader=%d committed=%d Et=%.0fms",
				st.State, st.Term, st.Leader, st.Committed, st.EtMs)
		}
	}()
	<-sig
	log.Print("dynatuned: shutting down")
	s.Stop()
}

// parseCluster parses "1=host:port,2=host:port,...". The same port number
// serves both TCP (consensus) and UDP (heartbeats).
func parseCluster(spec string) (map[raft.ID]transport.PeerAddr, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing -cluster")
	}
	out := map[raft.ID]transport.PeerAddr{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad cluster element %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 64)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("bad node id %q", kv[0])
		}
		if _, dup := out[raft.ID(id)]; dup {
			return nil, fmt.Errorf("duplicate node id %d", id)
		}
		out[raft.ID(id)] = transport.PeerAddr{TCP: kv[1], UDP: kv[1]}
	}
	return out, nil
}
