package cluster

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/raft"
)

// TestReadsLinearizableAcrossFailovers is the end-to-end linearizability
// check: a client alternates committed writes and linearizable reads while
// leaders are repeatedly killed. Every confirmed read must observe the
// newest value whose write completed before the read was issued — across
// Raft and Dynatune, ReadIndex and lease mode.
func TestReadsLinearizableAcrossFailovers(t *testing.T) {
	for _, variant := range []Variant{VariantRaft(), VariantDynatune(dynatune.Options{})} {
		for _, lease := range []bool{false, true} {
			name := fmt.Sprintf("%s/lease=%v", variant.Name, lease)
			t.Run(name, func(t *testing.T) {
				runLinearizabilityChurn(t, variant, lease)
			})
		}
	}
}

func runLinearizabilityChurn(t *testing.T, variant Variant, lease bool) {
	c := New(Options{N: 5, Seed: 11, Variant: variant})
	c.Start()
	if c.WaitLeader(30*time.Second) == nil {
		t.Fatal("no leader")
	}
	c.Run(4 * time.Second)

	var lastCommitted int // newest generation whose write committed
	gen := 0
	reads, stale := 0, 0

	write := func() bool {
		lead := c.Leader()
		if lead == nil {
			return false
		}
		gen++
		cmd := kv.Encode(kv.Command{Op: kv.OpPut, Client: 2, Seq: uint64(gen),
			Key: "x", Value: []byte(fmt.Sprintf("%d", gen))})
		idx, err := lead.Propose(cmd)
		if err != nil {
			gen--
			return false
		}
		// Wait for commit on the proposing leader (or give up on churn).
		deadline := c.Now() + 10*time.Second
		for c.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if lead.Log().Committed() >= idx && lead.State() == raft.StateLeader {
				lastCommitted = gen
				return true
			}
			if lead.State() != raft.StateLeader {
				return false // unknown outcome; do not count the write
			}
		}
		return false
	}

	read := func() {
		lead := c.Leader()
		if lead == nil {
			return
		}
		// The linearizability bound: anything committed before issuing.
		bound := lastCommitted
		id := lead.ID()
		fired := false
		cb := func(_ uint64, ok bool) {
			if !ok {
				return
			}
			fired = true
			v, _ := c.Store(id).Get("x")
			var got int
			fmt.Sscanf(string(v), "%d", &got) //nolint:errcheck // empty value parses as 0
			reads++
			if got < bound {
				stale++
				t.Errorf("stale read: got generation %d, %d had committed before the read", got, bound)
			}
		}
		var err error
		if lease {
			if err = lead.LeaseRead(cb); err == raft.ErrLeaseExpired {
				err = lead.ReadIndex(cb)
			}
		} else {
			err = lead.ReadIndex(cb)
		}
		if err != nil {
			return
		}
		deadline := c.Now() + 5*time.Second
		for !fired && c.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if c.Leader() == nil || c.Leader().ID() != id {
				break // read aborted by churn
			}
		}
	}

	for round := 0; round < 8; round++ {
		write()
		read()
		// Kill the leader and let a successor rise.
		if l := c.Leader(); l != nil {
			old := l.ID()
			c.Pause(old)
			if c.WaitLeader(60*time.Second) == nil {
				t.Fatal("no successor during churn")
			}
			c.Run(3 * time.Second)
			c.Resume(old)
			c.Run(time.Second)
		}
		read()
	}
	if reads < 8 {
		t.Fatalf("only %d confirmed reads across the churn — checker starved", reads)
	}
	if stale > 0 {
		t.Fatalf("%d stale reads of %d", stale, reads)
	}
}
