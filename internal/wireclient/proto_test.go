package wireclient

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

func reqRoundTrip(t *testing.T, r Request) Request {
	t.Helper()
	buf := AppendRequest(nil, &r)
	n, used := binary.Uvarint(buf)
	if used <= 0 || int(n) != len(buf)-used {
		t.Fatalf("frame length %d vs payload %d", n, len(buf)-used)
	}
	got, err := DecodeRequest(buf[used:])
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: OpPut, Key: "k", Value: []byte("v")},
		{ID: 2, Op: OpPut, Key: "empty-value", Value: []byte{}},
		{ID: 1 << 40, Op: OpGet, Key: "big-id"},
		{ID: 3, Op: OpGet, Flags: FlagLocal, Key: "local"},
		{ID: 4, Op: OpMultiGet, Keys: []string{"a", "b", "c"}},
		{ID: 5, Op: OpMultiGet, Keys: []string{}},
		{ID: 6, Op: OpPing},
		{ID: 7, Op: OpPut, Key: "binary", Value: []byte{0, 1, 2, 0xff}},
	}
	for i, r := range cases {
		got := reqRoundTrip(t, r)
		if got.ID != r.ID || got.Op != r.Op || got.Flags != r.Flags || got.Key != r.Key {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, got, r)
		}
		if !bytes.Equal(got.Value, r.Value) {
			t.Fatalf("case %d: value %q vs %q", i, got.Value, r.Value)
		}
		if len(got.Keys) != len(r.Keys) || (len(r.Keys) > 0 && !reflect.DeepEqual(got.Keys, r.Keys)) {
			t.Fatalf("case %d: keys %v vs %v", i, got.Keys, r.Keys)
		}
	}
}

func respRoundTrip(t *testing.T, r Response) Response {
	t.Helper()
	buf := AppendResponse(nil, &r)
	n, used := binary.Uvarint(buf)
	if used <= 0 || int(n) != len(buf)-used {
		t.Fatalf("frame length %d vs payload %d", n, len(buf)-used)
	}
	got, err := DecodeResponse(buf[used:])
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return got
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Op: OpGet, Status: StatusOK, Value: []byte("v")},
		{ID: 2, Op: OpGet, Status: StatusOK, Value: []byte{}},
		{ID: 3, Op: OpGet, Status: StatusNotFound},
		{ID: 4, Op: OpPut, Status: StatusOK},
		{ID: 5, Op: OpPut, Status: StatusNotLeader, Leader: 3},
		{ID: 6, Op: OpPut, Status: StatusNotLeader, Leader: 0},
		{ID: 7, Op: OpGet, Status: StatusErr, Err: "boom"},
		{ID: 8, Op: OpMultiGet, Status: StatusOK,
			Multi: [][]byte{[]byte("x"), nil, []byte("")},
			Found: []bool{true, false, true}},
		{ID: 9, Op: OpPing, Status: StatusOK},
	}
	for i, r := range cases {
		got := respRoundTrip(t, r)
		if got.ID != r.ID || got.Op != r.Op || got.Status != r.Status || got.Leader != r.Leader || got.Err != r.Err {
			t.Fatalf("case %d: header mismatch: %+v vs %+v", i, got, r)
		}
		if !bytes.Equal(got.Value, r.Value) {
			t.Fatalf("case %d: value %q vs %q", i, got.Value, r.Value)
		}
		if len(got.Multi) != len(r.Multi) {
			t.Fatalf("case %d: multi %v vs %v", i, got.Multi, r.Multi)
		}
		for j := range r.Multi {
			if !bytes.Equal(got.Multi[j], r.Multi[j]) || got.Found[j] != r.Found[j] {
				t.Fatalf("case %d key %d: %q/%v vs %q/%v", i, j, got.Multi[j], got.Found[j], r.Multi[j], r.Found[j])
			}
		}
	}
}

// Every truncation of a valid payload must come back as a clean error —
// never a panic, never a bogus accept that re-encodes differently.
func TestTruncatedPayloads(t *testing.T) {
	req := Request{ID: 300, Op: OpPut, Key: "key", Value: []byte("value")}
	buf := AppendRequest(nil, &req)
	_, used := binary.Uvarint(buf)
	payload := buf[used:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeRequest(payload[:cut]); err == nil {
			t.Fatalf("request truncated at %d decoded", cut)
		}
	}
	resp := Response{ID: 300, Op: OpMultiGet, Status: StatusOK,
		Multi: [][]byte{[]byte("abc"), []byte("def")}, Found: []bool{true, true}}
	rb := AppendResponse(nil, &resp)
	_, used = binary.Uvarint(rb)
	payload = rb[used:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeResponse(payload[:cut]); err == nil {
			t.Fatalf("response truncated at %d decoded", cut)
		}
	}
}

// A multiget count that promises more keys than the payload can hold
// must be rejected up front, not alloc-bombed.
func TestMultiGetCountOverflow(t *testing.T) {
	var b []byte
	b = binary.AppendUvarint(b, 1) // id
	b = append(b, byte(OpMultiGet), 0)
	b = binary.AppendUvarint(b, 1<<40) // absurd count
	if _, err := DecodeRequest(b); err == nil {
		t.Fatal("absurd multiget count accepted")
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, r := range []Request{
		{ID: 1, Op: OpPut, Key: "k", Value: []byte("v")},
		{ID: 2, Op: OpGet, Key: "k"},
		{ID: 3, Op: OpMultiGet, Keys: []string{"a", "bb"}},
		{ID: 4, Op: OpPing},
	} {
		buf := AppendRequest(nil, &r)
		_, used := binary.Uvarint(buf)
		f.Add(buf[used:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode canonically.
		re := AppendRequest(nil, &r)
		_, used := binary.Uvarint(re)
		r2, err := DecodeRequest(re[used:])
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if r.ID != r2.ID || r.Op != r2.Op || r.Key != r2.Key || !bytes.Equal(r.Value, r2.Value) {
			t.Fatalf("decode/encode/decode mismatch: %+v vs %+v", r, r2)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	for _, r := range []Response{
		{ID: 1, Op: OpGet, Status: StatusOK, Value: []byte("v")},
		{ID: 2, Op: OpPut, Status: StatusNotLeader, Leader: 2},
		{ID: 3, Op: OpMultiGet, Status: StatusOK, Multi: [][]byte{[]byte("v")}, Found: []bool{true}},
		{ID: 4, Op: OpGet, Status: StatusErr, Err: "x"},
	} {
		buf := AppendResponse(nil, &r)
		_, used := binary.Uvarint(buf)
		f.Add(buf[used:])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		re := AppendResponse(nil, &r)
		_, used := binary.Uvarint(re)
		r2, err := DecodeResponse(re[used:])
		if err != nil {
			t.Fatalf("re-encode failed to decode: %v", err)
		}
		if r.ID != r2.ID || r.Status != r2.Status || r.Leader != r2.Leader || !bytes.Equal(r.Value, r2.Value) {
			t.Fatalf("decode/encode/decode mismatch: %+v vs %+v", r, r2)
		}
	})
}
