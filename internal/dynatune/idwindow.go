package dynatune

import "sort"

// idWindow is the follower's `ids` list (paper §III-C2): a bounded,
// ascending list of received heartbeat sequence numbers. Packet reordering
// is handled by sorted insertion and duplicates are ignored; when the list
// exceeds its capacity the oldest (smallest) IDs are discarded.
type idWindow struct {
	ids []uint64
	cap int
}

func newIDWindow(capacity int) *idWindow {
	return &idWindow{cap: capacity}
}

// Add inserts id, keeping the list sorted and duplicate-free. It reports
// whether the id was new.
func (w *idWindow) Add(id uint64) bool {
	i := sort.Search(len(w.ids), func(i int) bool { return w.ids[i] >= id })
	if i < len(w.ids) && w.ids[i] == id {
		return false // duplicate delivery: ignore (paper §III-C2)
	}
	w.ids = append(w.ids, 0)
	copy(w.ids[i+1:], w.ids[i:])
	w.ids[i] = id
	if len(w.ids) > w.cap {
		w.ids = w.ids[len(w.ids)-w.cap:]
	}
	return true
}

// Len returns the number of recorded IDs.
func (w *idWindow) Len() int { return len(w.ids) }

// Reset discards all IDs.
func (w *idWindow) Reset() { w.ids = w.ids[:0] }

// LossRate returns the measured packet-loss rate p: the fraction of the
// expected ID range (ids[len-1] − ids[0] + 1) that never arrived. With
// fewer than two IDs it returns 0.
func (w *idWindow) LossRate() float64 {
	if len(w.ids) < 2 {
		return 0
	}
	expected := w.ids[len(w.ids)-1] - w.ids[0] + 1
	received := uint64(len(w.ids))
	if received >= expected {
		return 0
	}
	return 1 - float64(received)/float64(expected)
}
