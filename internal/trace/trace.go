// Package trace collects protocol events and derives from them the
// quantities the paper measures: detection time, out-of-service (OTS)
// time, leadership reigns and split-vote counts. It plays the role of the
// etcd log files the authors parse (§IV-A) — with the advantage that all
// nodes share the simulator's virtual clock, so there is no NTP skew.
package trace

import (
	"sync"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/raft"
)

// Recorder implements raft.Tracer for a whole cluster and supports
// post-hoc queries. It is safe for concurrent use (the real-time server
// traces from multiple goroutines; the simulator from one).
type Recorder struct {
	mu     sync.Mutex
	events []raft.Event

	// downMarks records harness-injected leader failures (the paper's
	// `docker pause` instants), which produce no protocol event of their
	// own.
	downMarks []downMark
}

type downMark struct {
	time time.Duration
	node raft.ID
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Trace implements raft.Tracer.
func (r *Recorder) Trace(ev raft.Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// MarkNodeDown records that the harness froze node at t (failure
// injection). Used to terminate that node's leadership reign.
func (r *Recorder) MarkNodeDown(t time.Duration, node raft.ID) {
	r.mu.Lock()
	r.downMarks = append(r.downMarks, downMark{t, node})
	r.mu.Unlock()
}

// Reset discards all recorded data.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.downMarks = r.downMarks[:0]
	r.mu.Unlock()
}

// Events returns a snapshot of all events in arrival order.
func (r *Recorder) Events() []raft.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]raft.Event(nil), r.events...)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// CountKind returns how many events of the given kind lie in [from, to).
func (r *Recorder) CountKind(kind raft.EventKind, from, to time.Duration) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ev := range r.events {
		if ev.Kind == kind && ev.Time >= from && ev.Time < to {
			n++
		}
	}
	return n
}

// FirstDetectionAfter returns the delay between t and the first follower
// timeout event after t — the paper's detection time for a failure
// injected at t.
func (r *Recorder) FirstDetectionAfter(t time.Duration) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.events {
		if ev.Kind == raft.EventTimeout && ev.Time > t {
			return ev.Time - t, true
		}
	}
	return 0, false
}

// FirstElectionAfter returns the delay between t and the next
// EventLeaderElected — the paper's OTS time for a failure at t — plus the
// winner's identity.
func (r *Recorder) FirstElectionAfter(t time.Duration) (time.Duration, raft.ID, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ev := range r.events {
		if ev.Kind == raft.EventLeaderElected && ev.Time > t {
			return ev.Time - t, ev.Node, true
		}
	}
	return 0, None, false
}

// None re-exports raft.None for callers that only import trace.
const None = raft.None

// Reign is one leadership tenure.
type Reign struct {
	Leader raft.ID
	Term   uint64
	Start  time.Duration
	End    time.Duration // horizon if still leading
}

// Reigns reconstructs leadership tenures up to horizon. A reign starts at
// EventLeaderElected and ends at the earliest of: the leader leaving the
// leader state (any EventStateChange for that node), the harness freezing
// it (MarkNodeDown), or the horizon.
func (r *Recorder) Reigns(horizon time.Duration) []Reign {
	r.mu.Lock()
	defer r.mu.Unlock()

	var reigns []Reign
	open := map[raft.ID]int{} // node → index into reigns of its open reign
	endReign := func(node raft.ID, at time.Duration) {
		if i, ok := open[node]; ok {
			if at < reigns[i].Start {
				at = reigns[i].Start
			}
			reigns[i].End = at
			delete(open, node)
		}
	}

	// Merge events and down-marks in time order. Both slices are already
	// time-ordered (single virtual clock).
	di := 0
	for _, ev := range r.events {
		for di < len(r.downMarks) && r.downMarks[di].time <= ev.Time {
			endReign(r.downMarks[di].node, r.downMarks[di].time)
			di++
		}
		switch ev.Kind {
		case raft.EventLeaderElected:
			endReign(ev.Node, ev.Time) // re-election by same node
			open[ev.Node] = len(reigns)
			reigns = append(reigns, Reign{Leader: ev.Node, Term: ev.Term, Start: ev.Time, End: horizon})
		case raft.EventStateChange:
			if ev.State != raft.StateLeader {
				endReign(ev.Node, ev.Time)
			}
		}
	}
	for ; di < len(r.downMarks); di++ {
		endReign(r.downMarks[di].node, r.downMarks[di].time)
	}
	return reigns
}

// OTSIntervals returns the spans within [from, horizon) during which no
// leader reigned — the shaded regions of Fig. 6.
func (r *Recorder) OTSIntervals(from, horizon time.Duration) *metrics.Intervals {
	reigns := r.Reigns(horizon)
	// Collect a coverage timeline from the union of reigns.
	type edge struct {
		t     time.Duration
		delta int
	}
	var edges []edge
	for _, rg := range reigns {
		if rg.End <= from || rg.Start >= horizon {
			continue
		}
		s, e := rg.Start, rg.End
		if s < from {
			s = from
		}
		if e > horizon {
			e = horizon
		}
		edges = append(edges, edge{s, +1}, edge{e, -1})
	}
	// Sort edges by time (+1 before -1 at equal times to avoid phantom
	// zero-length gaps).
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && (edges[j].t < edges[j-1].t ||
			(edges[j].t == edges[j-1].t && edges[j].delta > edges[j-1].delta)); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	out := &metrics.Intervals{}
	depth := 0
	cursor := from
	for _, e := range edges {
		if depth == 0 && e.t > cursor {
			out.Add(cursor, e.t)
		}
		depth += e.delta
		if depth == 0 {
			cursor = e.t
		}
	}
	if cursor < horizon {
		out.Add(cursor, horizon)
	}
	return out
}
