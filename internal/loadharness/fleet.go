// Package loadharness drives the real serving path at production
// concurrency: it boots a sharded fleet of real Raft nodes (the same
// code cmd/dynatuned runs) on loopback, opens tens of thousands of
// pipelined binary connections against the sharded Front, generates an
// OPEN-LOOP arrival schedule — requests fire on the clock whether or not
// earlier ones returned, so queueing delay is measured instead of hidden
// (no coordinated omission) — and reports the closed-SLA latency profile
// (p50/p90/p99/p999) that the simulator's ramp predicts.
package loadharness

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"dynatune/internal/raft"
	"dynatune/internal/server"
	"dynatune/internal/transport"
	"dynatune/internal/wireclient"
)

// FleetConfig sizes an in-process loopback fleet.
type FleetConfig struct {
	// Groups is the number of Raft groups (default 4).
	Groups int
	// NodesPerGroup is each group's replication factor (default 3).
	NodesPerGroup int
	// Tuner builds each node's tuner (default: static 150ms/15ms — the
	// harness measures the serving path, not elections).
	Tuner func() raft.Tuner
	// Logger receives node logs (default: discard — 100k-conn runs drown
	// stdout otherwise).
	Logger *log.Logger
	// BatchWindow enables server-side group commit on every node (see
	// server.Config.BatchWindow). Zero leaves batching off.
	BatchWindow time.Duration
}

// Fleet is a running loopback deployment: G groups of real servers, a
// binary Front, and an HTTP Front over the same backends.
type Fleet struct {
	Servers  [][]*server.Server
	BinFront *server.BinFront
	HTTPAddr string     // HTTP Front listen address
	BinAddr  string     // binary Front listen address
	NodeBins [][]string // per-group member binary addresses (worker fronts dial these)

	hsrv *http.Server
	hln  net.Listener
}

// StartFleet boots the fleet on loopback and waits for every group to
// elect a leader.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Groups <= 0 {
		cfg.Groups = 4
	}
	if cfg.NodesPerGroup <= 0 {
		cfg.NodesPerGroup = 3
	}
	if cfg.Tuner == nil {
		cfg.Tuner = func() raft.Tuner {
			return raft.NewStaticTuner(150*time.Millisecond, 15*time.Millisecond)
		}
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.New(io.Discard, "", 0)
	}
	f := &Fleet{}
	binURLs := make([][]string, cfg.Groups)
	httpURLs := make([][]string, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		srvs, err := startGroup(cfg.NodesPerGroup, cfg.Tuner, lg, cfg.BatchWindow)
		if err != nil {
			f.Stop()
			return nil, fmt.Errorf("loadharness: group %d: %w", g, err)
		}
		f.Servers = append(f.Servers, srvs)
		binURLs[g] = make([]string, len(srvs))
		httpURLs[g] = make([]string, len(srvs))
		for i, s := range srvs {
			binURLs[g][i] = s.BinAddr()
			httpURLs[g][i] = "http://" + s.HTTPAddr()
		}
	}
	f.NodeBins = binURLs
	for g, srvs := range f.Servers {
		if err := waitLeader(srvs, 15*time.Second); err != nil {
			f.Stop()
			return nil, fmt.Errorf("loadharness: group %d: %w", g, err)
		}
	}
	bf, err := server.StartBinFront("127.0.0.1:0", binURLs, wireclient.PoolConfig{Size: 4}, lg)
	if err != nil {
		f.Stop()
		return nil, err
	}
	f.BinFront = bf
	f.BinAddr = bf.Addr()

	hf, err := server.NewFront(httpURLs)
	if err != nil {
		f.Stop()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Stop()
		return nil, err
	}
	f.hln = ln
	f.HTTPAddr = ln.Addr().String()
	f.hsrv = &http.Server{Handler: hf, ErrorLog: lg}
	go f.hsrv.Serve(ln) //nolint:errcheck // exits on Stop
	return f, nil
}

// BatchStats aggregates every node's group-commit counters (in a healthy
// fleet only leaders propose, so this sums the per-group leaders).
func (f *Fleet) BatchStats() server.BatchStats {
	var agg server.BatchStats
	for _, srvs := range f.Servers {
		for _, s := range srvs {
			st := s.BatchStats()
			agg.ClientOps += st.ClientOps
			agg.Entries += st.Entries
			agg.Ops += st.Ops
			agg.Batches += st.Batches
			agg.FlushWindow += st.FlushWindow
			agg.FlushOps += st.FlushOps
			agg.FlushBytes += st.FlushBytes
			agg.FlushDrain += st.FlushDrain
			if st.MaxDepth > agg.MaxDepth {
				agg.MaxDepth = st.MaxDepth
			}
		}
	}
	return agg
}

// Stop tears the whole fleet down.
func (f *Fleet) Stop() {
	if f.hsrv != nil {
		f.hsrv.Close()
	}
	if f.BinFront != nil {
		f.BinFront.Close()
	}
	for _, srvs := range f.Servers {
		for _, s := range srvs {
			if s != nil {
				s.Stop()
			}
		}
	}
}

// startGroup boots one n-node Raft group on loopback ephemeral ports.
func startGroup(n int, mkTuner func() raft.Tuner, lg *log.Logger, batchWindow time.Duration) ([]*server.Server, error) {
	peers := map[raft.ID]transport.PeerAddr{}
	for i := 1; i <= n; i++ {
		tcp, err := reservePort("tcp")
		if err != nil {
			return nil, err
		}
		udp, err := reservePort("udp")
		if err != nil {
			return nil, err
		}
		peers[raft.ID(i)] = transport.PeerAddr{TCP: tcp, UDP: udp}
	}
	srvs := make([]*server.Server, 0, n)
	for i := 1; i <= n; i++ {
		s, err := server.Start(server.Config{
			ID:         raft.ID(i),
			Peers:      peers,
			Listen:     peers[raft.ID(i)],
			HTTPListen: "127.0.0.1:0",
			BinListen:   "127.0.0.1:0",
			Tuner:       mkTuner(),
			Logger:      lg,
			BatchWindow: batchWindow,
		})
		if err != nil {
			for _, p := range srvs {
				p.Stop()
			}
			return nil, err
		}
		srvs = append(srvs, s)
	}
	return srvs, nil
}

func waitLeader(srvs []*server.Server, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, s := range srvs {
			if s.Status().State == "leader" {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("no leader within %v", timeout)
}

// reservePort grabs an ephemeral loopback port and releases it for the
// server to re-bind (the usual test-fixture race, harmless on loopback).
func reservePort(network string) (string, error) {
	if network == "tcp" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		addr := ln.Addr().String()
		ln.Close()
		return addr, nil
	}
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := pc.LocalAddr().String()
	pc.Close()
	return addr, nil
}
