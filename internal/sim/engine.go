// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock.
//
// The engine is the substrate on which the whole evaluation testbed runs:
// the network simulator schedules packet deliveries, node runtimes schedule
// Raft timers, and the failure injector schedules leader pauses — all as
// events on one totally ordered queue. Virtual time makes thousand-trial
// experiments run in milliseconds and removes clock-skew concerns entirely,
// which is the same reason the paper ran its measured experiments on a
// single physical host.
//
// Determinism: all randomness used by a simulation must come from the
// engine's Rand (seeded at construction), and events at equal timestamps
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties). Given the same seed and inputs a run is bit-for-bit
// reproducible.
//
// # Implementation
//
// The scheduler is allocation-free on its steady-state hot path. Events
// live in an index-based arena recycled through a free list; a Handle is
// an (arena slot, generation) pair, and the generation — bumped every time
// a slot is recycled — makes Cancel safe against reuse: cancelling a
// handle whose event already fired (or whose slot now hosts a different
// event) is a guaranteed no-op. Ordering is kept by a hand-rolled 4-ary
// min-heap of (time, seq, slot) entries: keys are stored inline in the
// heap nodes, so comparisons touch no pointers and there is none of
// container/heap's interface boxing or dispatch.
//
// Cancellation policy: Cancel is lazy — the event's heap entry stays put
// and is skipped (and its slot freed) when it reaches the root. Raft
// timer churn can pile cancelled entries up faster than they surface, so
// the engine compacts eagerly: whenever the cancelled fraction of the
// queue exceeds one half (and at least compactMinCancelled entries are
// dead), the heap is filtered in place and re-heapified in O(n). Amortized
// against the cancellations that triggered it, compaction is O(1) per
// cancel, and it bounds queue memory at roughly twice the live event
// count.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid. Handles stay cheap, comparable values: a slot index
// and the generation the slot had when the event was scheduled.
type Handle struct {
	slot uint32 // arena index + 1; 0 means no event
	gen  uint32
}

// Valid reports whether the handle refers to a scheduled (possibly already
// fired) event.
func (h Handle) Valid() bool { return h.slot != 0 }

// event is one arena slot. Ordering keys (time, seq) live in the heap
// entry, not here; the slot holds only what firing and cancelling need.
type event struct {
	fn       func()
	gen      uint32
	canceled bool
}

// entry is one 4-ary heap node with its ordering keys inline.
type entry struct {
	at   time.Duration
	seq  uint64
	slot uint32
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// compactMinCancelled floors the eager-compaction trigger so that small
// queues never pay for compaction: with fewer dead entries than this, lazy
// skipping at the root is cheaper than a rebuild.
const compactMinCancelled = 256

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation runs entirely on the caller's goroutine.
type Engine struct {
	now       time.Duration
	seq       uint64
	heap      []entry
	arena     []event
	free      []uint32 // free list of recycled arena slots
	live      int      // scheduled, not cancelled
	lazy      int      // cancelled entries still occupying the heap
	rng       *rand.Rand
	fired     uint64
	cancelled uint64 // total Cancels that hit a live event (instrumentation)
	halted    bool
}

// NewEngine returns an engine whose clock starts at zero and whose
// randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far (for instrumentation
// and runaway detection in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live scheduled events. Lazily cancelled
// events still occupying the queue are not counted.
func (e *Engine) Pending() int { return e.live }

// Cancelled returns the total number of events cancelled over the engine's
// lifetime (instrumentation for timer-churn analysis).
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// queueLen returns the raw queue occupancy including lazily cancelled
// entries — the quantity the compaction policy bounds.
func (e *Engine) queueLen() int { return len(e.heap) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past (at < Now) is a programming error and panics: the discrete-event
// model has no way to run an event before the current instant.
func (e *Engine) Schedule(at time.Duration, fn func()) Handle {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	e.seq++
	var slot uint32
	if n := len(e.free); n > 0 {
		slot = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, event{})
		slot = uint32(len(e.arena) - 1)
	}
	ev := &e.arena[slot]
	ev.fn = fn
	ev.canceled = false
	e.heapPush(entry{at: at, seq: e.seq, slot: slot})
	e.live++
	return Handle{slot: slot + 1, gen: ev.gen}
}

// After registers fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a no-op: the generation check makes
// this hold even after the event's slot has been recycled for a newer
// event. Cancellation is lazy — see the package comment for the eager
// compaction that keeps dead entries from accumulating.
func (e *Engine) Cancel(h Handle) {
	if h.slot == 0 {
		return
	}
	slot := h.slot - 1
	if int(slot) >= len(e.arena) {
		return
	}
	ev := &e.arena[slot]
	if ev.gen != h.gen || ev.canceled || ev.fn == nil {
		return
	}
	ev.canceled = true
	ev.fn = nil // release the closure now; the slot frees on pop/compact
	e.live--
	e.lazy++
	e.cancelled++
	if e.lazy >= compactMinCancelled && e.lazy*2 >= len(e.heap) {
		e.compact()
	}
}

// compact filters cancelled entries out of the heap in place, frees their
// slots, and re-establishes the heap property bottom-up in O(n).
func (e *Engine) compact() {
	q := e.heap[:0]
	for _, ent := range e.heap {
		if e.arena[ent.slot].canceled {
			e.freeSlot(ent.slot)
		} else {
			q = append(q, ent)
		}
	}
	e.heap = q
	e.lazy = 0
	for i := (len(q) - 2) >> 2; i >= 0; i-- {
		e.siftDown(i)
	}
}

// freeSlot recycles an arena slot, bumping its generation so outstanding
// handles to the departed event go stale.
func (e *Engine) freeSlot(slot uint32) {
	ev := &e.arena[slot]
	ev.fn = nil
	ev.canceled = false
	ev.gen++
	e.free = append(e.free, slot)
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed (false means the
// queue is empty).
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		e.heapPopRoot()
		if e.arena[ent.slot].canceled {
			e.lazy--
			e.freeSlot(ent.slot)
			continue
		}
		fn := e.arena[ent.slot].fn
		e.freeSlot(ent.slot)
		e.live--
		e.now = ent.at
		e.fired++
		fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the
// engine is halted, or the next event lies strictly after until. The clock
// is left at the time of the last executed event (or advanced to until if
// the queue outlives the horizon).
func (e *Engine) Run(until time.Duration) {
	e.halted = false
	for !e.halted {
		ent, ok := e.peek()
		if !ok || ent.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunWhile executes events while cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	e.halted = false
	for !e.halted && cond() {
		if !e.Step() {
			return
		}
	}
}

// peek returns the next live entry, discarding cancelled ones that have
// surfaced at the root.
func (e *Engine) peek() (entry, bool) {
	for len(e.heap) > 0 {
		ent := e.heap[0]
		if !e.arena[ent.slot].canceled {
			return ent, true
		}
		e.heapPopRoot()
		e.lazy--
		e.freeSlot(ent.slot)
	}
	return entry{}, false
}

// --- 4-ary min-heap on (at, seq) ---
//
// Children of node i are 4i+1..4i+4. A 4-ary layout halves the tree depth
// of a binary heap, trading slightly more comparisons per level for far
// fewer cache-missing levels — the winning trade for the sift-down-heavy
// pop pattern of an event queue.

func (e *Engine) heapPush(ent entry) {
	e.heap = append(e.heap, ent)
	q := e.heap
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(ent, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ent
}

func (e *Engine) heapPopRoot() {
	q := e.heap
	n := len(q) - 1
	q[0] = q[n]
	e.heap = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

func (e *Engine) siftDown(i int) {
	q := e.heap
	n := len(q)
	ent := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(q[j], q[m]) {
				m = j
			}
		}
		if !entryLess(q[m], ent) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = ent
}
