package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRampValidate(t *testing.T) {
	bad := []Ramp{
		{},
		{StartRPS: -1, Steps: 1, StepDuration: time.Second},
		{StartRPS: 100, Steps: 0, StepDuration: time.Second},
		{StartRPS: 100, Steps: 1, StepDuration: 0},
		{StartRPS: 100, StepRPS: -5, Steps: 1, StepDuration: time.Second},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("ramp %d should fail", i)
		}
	}
}

func TestRPSAt(t *testing.T) {
	r := Ramp{StartRPS: 1000, StepRPS: 1000, StepDuration: 10 * time.Second, Steps: 3}
	cases := []struct {
		t    time.Duration
		want int
		ok   bool
	}{
		{0, 1000, true},
		{9 * time.Second, 1000, true},
		{10 * time.Second, 2000, true},
		{25 * time.Second, 3000, true},
		{30 * time.Second, 0, false},
	}
	for _, tc := range cases {
		got, ok := r.RPSAt(tc.t)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("RPSAt(%v) = %d,%v want %d,%v", tc.t, got, ok, tc.want, tc.ok)
		}
	}
	if r.Duration() != 30*time.Second {
		t.Fatalf("Duration = %v", r.Duration())
	}
}

func TestGeneratorUniformRate(t *testing.T) {
	r := Ramp{StartRPS: 100, StepRPS: 100, StepDuration: time.Second, Steps: 2}
	g, err := NewGenerator(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	var perStep [2]int
	prev := time.Duration(-1)
	for {
		at, ok := g.Next()
		if !ok {
			break
		}
		if at <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = at
		perStep[r.StepOf(at)]++
	}
	// Step 0: 100 RPS for 1s ≈ 100 arrivals; step 1: 200.
	if perStep[0] < 95 || perStep[0] > 105 {
		t.Fatalf("step 0 arrivals = %d", perStep[0])
	}
	if perStep[1] < 190 || perStep[1] > 210 {
		t.Fatalf("step 1 arrivals = %d", perStep[1])
	}
	// Exhausted generator stays exhausted.
	if _, ok := g.Next(); ok {
		t.Fatal("generator revived")
	}
}

func TestGeneratorPoissonRate(t *testing.T) {
	r := Ramp{StartRPS: 1000, StepDuration: 5 * time.Second, Steps: 1, Poisson: true}
	g, err := NewGenerator(r, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		count++
	}
	// 1000 RPS × 5s = 5000 expected; Poisson σ≈71.
	if count < 4700 || count > 5300 {
		t.Fatalf("poisson arrivals = %d, want ≈5000", count)
	}
}

func TestPoissonRequiresRNG(t *testing.T) {
	if _, err := NewGenerator(Ramp{StartRPS: 1, Steps: 1, StepDuration: time.Second, Poisson: true}, nil); err == nil {
		t.Fatal("expected error")
	}
}

func TestPaperRamp(t *testing.T) {
	r := PaperRamp(15000)
	if r.Steps != 15 || r.StartRPS != 1000 || r.StepRPS != 1000 || r.StepDuration != 10*time.Second {
		t.Fatalf("paper ramp = %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: arrivals are strictly increasing and all fall inside the
// schedule, for any ramp shape.
func TestPropertyArrivalsOrderedAndBounded(t *testing.T) {
	f := func(startRaw, stepRaw uint8, poisson bool) bool {
		r := Ramp{
			StartRPS:     int(startRaw%50) + 1,
			StepRPS:      int(stepRaw % 50),
			StepDuration: 100 * time.Millisecond,
			Steps:        4,
			Poisson:      poisson,
		}
		g, err := NewGenerator(r, rand.New(rand.NewSource(int64(startRaw)*7+int64(stepRaw))))
		if err != nil {
			return false
		}
		prev := time.Duration(-1)
		for {
			at, ok := g.Next()
			if !ok {
				return true
			}
			if at <= prev || at >= r.Duration() {
				return false
			}
			prev = at
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
