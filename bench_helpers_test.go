package bench

import (
	"strconv"
	"time"

	"dynatune/internal/raft"
)

// raftTuner aliases the tuner interface so bench code reads naturally.
type raftTuner = raft.Tuner

// newStatic builds a static tuner with h = Et/10 (the etcd ratio).
func newStatic(et time.Duration) raftTuner {
	return raft.NewStaticTuner(et, et/10)
}

func itoa(n int) string { return strconv.Itoa(n) }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func metricsMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
