package raft

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/netsim"
)

// chaosPersistRun drives a persisted cluster through a random schedule of
// *real* crashes — the node object is discarded and rebuilt from its
// fakePersister, losing all volatile state — interleaved with partitions,
// proposals and membership churn, then checks the Raft safety invariants.
// This is the property that justifies the whole storage layer: no sequence
// of crash-recoveries may elect two leaders in a term or diverge logs.
func chaosPersistRun(t testing.TB, seed int64, n int, withConfChurn bool) {
	t.Helper()
	ps := make([]*fakePersister, n)
	for i := range ps {
		ps[i] = &fakePersister{}
	}
	opts := defaultOpts()
	opts.n = n
	opts.seed = seed
	opts.params = netsim.Params{
		RTT:    30 * time.Millisecond,
		Jitter: 5 * time.Millisecond,
		Loss:   0.05,
		Dup:    0.01,
	}
	opts.persisters = func(i int) Persister { return ps[i] }
	c := newTestCluster(opts)
	rng := c.eng.Rand()

	peers := make([]ID, n)
	for i := range peers {
		peers[i] = ID(i + 1)
	}
	hardRestart := func(id ID) {
		rt := c.rts[id-1]
		for key, h := range rt.timers {
			c.eng.Cancel(h)
			delete(rt.timers, key)
		}
		node, err := NewNode(Config{
			ID:        id,
			Peers:     peers,
			Runtime:   rt,
			Tuner:     NewStaticTuner(1000*time.Millisecond, 100*time.Millisecond),
			Tracer:    recordTracer{c},
			Persister: ps[id-1],
			Restored:  ps[id-1].restored(),
			Apply:     func(ents []Entry) { rt.applied = append(rt.applied, ents...) },
		})
		if err != nil {
			t.Fatalf("rebuild node %d: %v", id, err)
		}
		rt.node = node
		c.nodes[id-1] = node
		rt.down = false
		node.Start()
	}

	proposed := 0
	for round := 0; round < 60; round++ {
		c.run(time.Duration(200+rng.Intn(800)) * time.Millisecond)
		switch rng.Intn(10) {
		case 0, 1: // crash a random live node, keeping quorum reachable
			down := 0
			for _, rt := range c.rts {
				if rt.down {
					down++
				}
			}
			if down < (n-1)/2 {
				id := ID(rng.Intn(n) + 1)
				if !c.rts[id-1].down {
					c.crash(id)
				}
			}
		case 2, 3: // crash-recover: rebuild from the durable store
			for id := ID(1); id <= ID(n); id++ {
				if c.rts[id-1].down {
					hardRestart(id)
					break
				}
			}
		case 4: // transient partition
			id := rng.Intn(n)
			c.net.PartitionNode(id, true)
			c.eng.After(time.Duration(300+rng.Intn(700))*time.Millisecond, func() {
				c.net.PartitionNode(id, false)
			})
		case 5: // membership no-op churn: remove then re-add a follower
			if withConfChurn {
				if lead := c.leader(); lead != nil {
					var target ID
					for _, p := range peers {
						if p != lead.ID() && !c.rts[p-1].down {
							target = p
							break
						}
					}
					if target != None {
						if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: target}); err == nil {
							// Re-add it after a while (possibly under a
							// different leader; failures are fine).
							c.eng.After(2*time.Second, func() {
								if l := c.leader(); l != nil {
									_, _ = l.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: target})
								}
							})
						}
					}
				}
			}
		default: // propose through whoever claims leadership
			if lead := c.leader(); lead != nil {
				if _, err := lead.Propose([]byte(fmt.Sprintf("op-%d", proposed))); err == nil {
					proposed++
				}
			}
		}
	}
	// Heal everything and let the cluster converge.
	for id := ID(1); id <= ID(n); id++ {
		c.net.PartitionNode(int(id-1), false)
		if c.rts[id-1].down {
			hardRestart(id)
		}
	}
	c.run(15 * time.Second)

	if proposed < 5 {
		t.Fatalf("schedule too hostile: only %d proposals landed", proposed)
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkLogMatching(); err != nil {
		t.Fatal(err)
	}
	if err := c.checkCommittedPrefixAgreement(); err != nil {
		t.Fatal(err)
	}
	// Durable state must mirror the live state wherever a node is up:
	// every log mutation flowed through the observer, so disk and memory
	// must agree entry for entry.
	for i, node := range c.nodes {
		if ps[i].haveHS && ps[i].hs.Term > node.Term() {
			t.Fatalf("node %d: durable term %d ahead of live term %d", i+1, ps[i].hs.Term, node.Term())
		}
		if got, want := ps[i].lastIndex(), node.Log().LastIndex(); got != want {
			t.Fatalf("node %d: durable last index %d, live %d", i+1, got, want)
		}
		for _, e := range ps[i].entries {
			lt, ok := node.Log().Term(e.Index)
			if !ok || lt != e.Term {
				t.Fatalf("node %d: durable entry %d term %d, live term %d (ok=%v)", i+1, e.Index, e.Term, lt, ok)
			}
		}
	}
}

func TestChaosPersistSafety3Nodes(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		chaosPersistRun(t, seed, 3, false)
	}
}

func TestChaosPersistSafety5Nodes(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		chaosPersistRun(t, seed, 5, false)
	}
}

func TestChaosPersistSafetyWithMembershipChurn(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		chaosPersistRun(t, 100+seed, 5, true)
	}
}
