package batcher

import (
	"sync/atomic"
	"time"
)

// Waiter is a resolve-once completion slot. The client goroutine blocks
// on C(); the commit path, abort path, and deadline sweeper all race to
// Resolve and exactly the first wins — later calls are no-ops, so a
// waiter can sit in the deadline heap after its commit resolved it
// without anyone caring (lazy deletion).
type Waiter struct {
	done atomic.Bool
	ch   chan error
}

// NewWaiter allocates a waiter.
func NewWaiter() *Waiter {
	return &Waiter{ch: make(chan error, 1)}
}

// Resolve delivers err (nil = success) if no one beat us to it; it
// reports whether this call won.
func (w *Waiter) Resolve(err error) bool {
	if !w.done.CompareAndSwap(false, true) {
		return false
	}
	w.ch <- err // buffered: never blocks
	return true
}

// Resolved reports whether the waiter already resolved.
func (w *Waiter) Resolved() bool { return w.done.Load() }

// C is the completion channel: exactly one value ever arrives.
func (w *Waiter) C() <-chan error { return w.ch }

// DeadlineHeap is the shared timeout structure replacing one
// `time.After` per in-flight request: a min-heap of (deadline, waiter,
// error) owned by a single goroutine (the server's event loop), swept by
// ONE timer armed to the earliest deadline. Resolved waiters are deleted
// lazily — Resolve is idempotent, so expiring them is a no-op.
type DeadlineHeap struct {
	items []deadlineItem
}

type deadlineItem struct {
	at  time.Time
	w   *Waiter
	err error // delivered on expiry (distinguishes propose vs read timeouts)
}

// Len returns the live item count (including lazily-deleted ones).
func (h *DeadlineHeap) Len() int { return len(h.items) }

// Push registers w to resolve with err at time at.
func (h *DeadlineHeap) Push(w *Waiter, at time.Time, err error) {
	h.items = append(h.items, deadlineItem{at: at, w: w, err: err})
	h.up(len(h.items) - 1)
}

// Next returns the earliest deadline (zero time when empty).
func (h *DeadlineHeap) Next() time.Time {
	if len(h.items) == 0 {
		return time.Time{}
	}
	return h.items[0].at
}

// Expire resolves every unresolved waiter whose deadline is ≤ now with
// its registered error, drops already-resolved heads for free, and
// returns the next pending deadline (zero when the heap emptied).
func (h *DeadlineHeap) Expire(now time.Time) time.Time {
	for len(h.items) > 0 {
		head := h.items[0]
		if head.at.After(now) {
			if !head.w.Resolved() {
				return head.at
			}
			h.pop() // early-resolved head: reclaim without waiting it out
			continue
		}
		head.w.Resolve(head.err) // no-op if already resolved
		h.pop()
	}
	return time.Time{}
}

// pop removes the head (h non-empty).
func (h *DeadlineHeap) pop() {
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = deadlineItem{}
	h.items = h.items[:n]
	if n > 0 {
		h.down(0)
	}
}

func (h *DeadlineHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].at.Before(h.items[parent].at) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *DeadlineHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.items[l].at.Before(h.items[min].at) {
			min = l
		}
		if r < n && h.items[r].at.Before(h.items[min].at) {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}
