package netsim

import (
	"encoding/binary"
	"hash/fnv"
	"testing"
	"time"

	"dynatune/internal/sim"
)

// goldenDelivery drives a fixed mixed-class send pattern over a lossy,
// jittery, duplicating mesh and hashes every delivered (to, msg, time)
// triple. It pins the full delivery path — jitter draws, loss draws, TCP
// in-order floors, UDP duplication — against refactors of the scheduling
// internals.
func goldenDelivery(seed int64) (hash uint64, delivered int, stats Stats) {
	eng := sim.NewEngine(seed)
	h := fnv.New64a()
	var buf [24]byte
	count := 0
	nw := New[int](eng, 3, Constant(Params{
		RTT: 20 * time.Millisecond, Jitter: 2 * time.Millisecond, Loss: 0.1, Dup: 0.05,
	}), func(to, msg int) {
		binary.LittleEndian.PutUint64(buf[:8], uint64(to))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(msg))
		binary.LittleEndian.PutUint64(buf[16:], uint64(eng.Now()))
		h.Write(buf[:])
		count++
	})
	i := 0
	var tick func()
	tick = func() {
		from, to := i%3, (i+1)%3
		cls := TCP
		if i%2 == 0 {
			cls = UDP
		}
		if i%17 == 0 {
			to = from // self-send path
		}
		nw.Send(from, to, cls, i)
		i++
		if i < 600 {
			eng.After(500*time.Microsecond, tick)
		}
	}
	eng.Schedule(0, tick)
	eng.Run(time.Minute)
	return h.Sum64(), count, nw.StatsFor(0, 1)
}

// Captured from the closure-per-Send delivery path that shipped before
// the pooled typed delivery rewrite.
const (
	goldenDeliveryHash  = uint64(0x8682da0e21dabd49)
	goldenDeliveryCount = 581
)

func TestGoldenDeliveryMatchesPreRewriteNetwork(t *testing.T) {
	hash, count, stats := goldenDelivery(1234)
	t.Logf("seed 1234: hash %#x delivered %d stats %+v", hash, count, stats)
	if hash != goldenDeliveryHash || count != goldenDeliveryCount {
		t.Fatalf("golden delivery diverged: hash %#x delivered %d, want hash %#x delivered %d",
			hash, count, goldenDeliveryHash, goldenDeliveryCount)
	}
}

func TestGoldenDeliveryDeterministic(t *testing.T) {
	h1, c1, s1 := goldenDelivery(5)
	h2, c2, s2 := goldenDelivery(5)
	if h1 != h2 || c1 != c2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%#x,%d) vs (%#x,%d)", h1, c1, h2, c2)
	}
}
