package sweep

import (
	"bytes"
	"testing"
	"time"

	"dynatune/internal/scenario"
)

// TestCampaignDeterministicAcrossWorkers is the sweep engine's core
// guarantee: a small 2×2 campaign must produce byte-identical CSV and
// JSON whether the (cell, rep) units run on one worker or eight — unit
// seeds derive from grid coordinates alone and rows merge in grid order.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	campaign := func(workers int) Campaign {
		return Campaign{
			Base: scenario.Spec{
				Name:     "determinism",
				Measure:  scenario.MeasureFailover,
				Topology: scenario.Topology{N: 3},
				Network:  scenario.Stable(100 * time.Millisecond),
				Variant:  scenario.VariantSpec{Name: "raft"},
				Faults:   []scenario.Fault{{Kind: scenario.FaultPauseLeader}},
				Trials:   3, Settle: scenario.Duration(2 * time.Second),
			},
			Axes: []Axis{
				{Name: "variant", Values: []string{"raft", "dynatune"}},
				{Name: "loss", Values: []string{"0", "0.05"}},
			},
			Reps: 2, Seed: 7, Workers: workers,
		}
	}
	emit := func(workers int) (csv, js []byte) {
		t.Helper()
		rep, err := Run(campaign(workers))
		if err != nil {
			t.Fatal(err)
		}
		var cbuf, jbuf bytes.Buffer
		if err := rep.WriteCSV(&cbuf); err != nil {
			t.Fatal(err)
		}
		if err := rep.WriteJSON(&jbuf); err != nil {
			t.Fatal(err)
		}
		return cbuf.Bytes(), jbuf.Bytes()
	}

	csv1, js1 := emit(1)
	csv8, js8 := emit(8)
	if !bytes.Equal(csv1, csv8) {
		t.Fatalf("CSV diverged across worker counts:\n1 worker:\n%s\n8 workers:\n%s", csv1, csv8)
	}
	if !bytes.Equal(js1, js8) {
		t.Fatal("JSON diverged across worker counts")
	}
	// And the report must have real content: 4 cells × 3 metrics of
	// failover samples.
	rep, err := Run(campaign(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rep.Rows))
	}
	// With variant swept, the header's base-variant field would mislabel
	// half the rows; it must be cleared.
	if rep.Variant != "" {
		t.Fatalf("mixed-variant campaign labelled %q", rep.Variant)
	}
	for _, row := range rep.Rows {
		if row.Metrics[0].Name != "detection_ms" || row.Metrics[0].Samples == 0 {
			t.Fatalf("empty cell %v: %+v", row.Cell, row.Metrics[0])
		}
		// 3 trials × 2 reps pooled.
		if row.Metrics[1].Name != "ots_ms" || row.Metrics[1].Samples != 6 {
			t.Fatalf("cell %v pooled %d OTS samples, want 6", row.Cell, row.Metrics[1].Samples)
		}
		if row.Metrics[1].CI95 <= 0 {
			t.Fatalf("cell %v has no CI over reps", row.Cell)
		}
	}
}

// TestRunReportsCellErrors: realization failures surface as campaign
// errors with the cell named, before any simulation runs.
func TestRunReportsCellErrors(t *testing.T) {
	base := scenario.Spec{
		Name:     "bad-variant",
		Measure:  scenario.MeasureFailover,
		Topology: scenario.Topology{N: 3},
		Network:  scenario.Stable(100 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft", Estimator: "nope"},
		Faults:   []scenario.Fault{{Kind: scenario.FaultPauseLeader}},
		Trials:   1, Settle: scenario.Duration(time.Second),
	}
	base.Variant.Name = "dynatune" // estimator "nope" now matters at bind time
	if _, err := Run(Campaign{Base: base, Axes: []Axis{{Name: "n", Values: []string{"3"}}}}); err == nil {
		t.Fatal("unrealizable cell accepted")
	}
}
