package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// The standing invariant suite for sharded throughput runs — the verdict
// layer the chaos-storm search drives. Five detectors:
//
//   - durability: every acked write is readable after heal, with a value
//     sequence at least as new as the ack (a stale survivor here is also
//     the observable of a double-commit across partitions — two leaders
//     both acking, one side's history discarded).
//   - double-apply: no replica state machine suppressed a duplicate
//     command (the store's idempotence table is the witness: a dupe means
//     an entry was delivered twice past the applied-index guard).
//   - stale-read: reads through the router's MultiGet path — including
//     the dual-read window of a live migration — never observe a value
//     older than the highest acked write for the key.
//   - unavailability: no serving group stays leaderless longer than the
//     configured bound.
//   - convergence: after heal plus settle, every group's live replicas
//     hold identical stores.

// Violation is one invariant trip.
type Violation struct {
	// Invariant names the detector ("durability", "double-apply",
	// "stale-read", "unavailability", "convergence").
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

// InvariantReport is the suite's verdict for one run.
type InvariantReport struct {
	// Checked lists the detectors that ran.
	Checked []string `json:"checked"`
	// AckedWrites is the number of distinct keys with at least one acked
	// write (the durability sweep's coverage); Probes counts mid-run
	// stale-read probes issued.
	AckedWrites int `json:"acked_writes"`
	Probes      int `json:"probes"`
	// MaxUnavailMs is the longest observed continuous leaderless span of
	// any serving group.
	MaxUnavailMs float64 `json:"max_unavail_ms"`
	// Violations is empty when every invariant held. Suppressed counts
	// trips beyond the per-run cap (the first maxViolations carry detail).
	Violations []Violation `json:"violations,omitempty"`
	Suppressed int          `json:"suppressed,omitempty"`
}

// OK reports whether every invariant held.
func (r *InvariantReport) OK() bool { return r == nil || len(r.Violations) == 0 }

// invariantNames is the suite's fixed detector list.
var invariantNames = []string{"durability", "double-apply", "stale-read", "unavailability", "convergence"}

// maxViolations caps the detail a single run accumulates: a badly broken
// run trips per-key, and thousands of identical lines help nobody.
const maxViolations = 16

// unavailScanEvery is the leaderless-span sampling period. Spans shorter
// than one tick can hide; the suite's bounds are orders of magnitude
// larger, so the quantization error is noise.
const unavailScanEvery = 50 * time.Millisecond

// confirmAfter is the stale-read re-check delay: a probe landing in the
// hairline window where a fresh leader has committed but not yet applied
// an entry would otherwise cry wolf. Real staleness (a migration serving
// from the wrong side, a lost write) persists; the apply gap does not.
const confirmAfter = 500 * time.Millisecond

// invariantTarget is the probe surface the checker consumes — the subset
// of MultiCluster it needs. Negative tests substitute a fake target with
// deliberately-broken stores.
type invariantTarget interface {
	Groups() int
	GroupLeader(g int) raft.ID
	GroupStores(g int) []StoreProbe
	ProbeRead(key string) (v []byte, found, servable bool)
}

// invariantChecker runs the suite over one sharded ramp. All sampling
// draws from the engine's seeded RNG and all state mutation happens on
// engine events, so the verdict is a pure function of the run's seed.
type invariantChecker struct {
	cfg     Invariants
	t       invariantTarget
	eng     *sim.Engine
	stopped bool

	// acked maps key → highest acked (leader-applied) client sequence;
	// ackedKeys is the same set in first-ack order — the deterministic
	// sampling pool (map iteration order must never reach the RNG).
	acked     map[string]uint64
	ackedKeys []string

	probes int

	// downSince tracks, per serving slot, when a leaderless span began
	// (-1 = group currently has a leader).
	downSince    []time.Duration
	maxDown      time.Duration
	maxDownGroup int

	violations []Violation
	suppressed int
}

func newInvariantChecker(cfg Invariants, t invariantTarget, eng *sim.Engine) *invariantChecker {
	return &invariantChecker{
		cfg:   cfg.withDefaults(),
		t:     t,
		eng:   eng,
		acked: make(map[string]uint64),
	}
}

// onComplete is the load generator's ack feed.
func (c *invariantChecker) onComplete(key string, seq uint64) {
	if _, ok := c.acked[key]; !ok {
		c.ackedKeys = append(c.ackedKeys, key)
	}
	if seq > c.acked[key] {
		c.acked[key] = seq
	}
}

// arm starts the periodic probes; they self-reschedule until stop.
func (c *invariantChecker) arm() {
	var scan func()
	scan = func() {
		if c.stopped {
			return
		}
		c.scanUnavail()
		c.eng.After(unavailScanEvery, scan)
	}
	c.eng.After(unavailScanEvery, scan)

	var probe func()
	probe = func() {
		if c.stopped {
			return
		}
		c.probeStale()
		c.eng.After(c.cfg.Every.D(), probe)
	}
	c.eng.After(c.cfg.Every.D(), probe)
}

// stop halts the periodic probes (the caller then runs the settle window
// and asks for the final report).
func (c *invariantChecker) stop() { c.stopped = true }

func (c *invariantChecker) violate(invariant, format string, args ...any) {
	if len(c.violations) >= maxViolations {
		c.suppressed++
		return
	}
	c.violations = append(c.violations, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// scanUnavail samples per-group leader presence and tracks the longest
// continuous leaderless span.
func (c *invariantChecker) scanUnavail() {
	now := c.eng.Now()
	groups := c.t.Groups()
	for len(c.downSince) < groups {
		c.downSince = append(c.downSince, -1)
	}
	for g := range c.downSince {
		if g >= groups {
			// The slot retired mid-span (remove-group): leaderlessness is
			// the lifecycle working as designed, not unavailability.
			c.downSince[g] = -1
			continue
		}
		down := c.t.GroupLeader(g) == 0
		switch {
		case down && c.downSince[g] < 0:
			c.downSince[g] = now
		case !down && c.downSince[g] >= 0:
			c.noteSpan(g, now-c.downSince[g])
			c.downSince[g] = -1
		}
	}
}

func (c *invariantChecker) noteSpan(g int, span time.Duration) {
	if span > c.maxDown {
		c.maxDown, c.maxDownGroup = span, g
	}
}

// probeStale samples acked keys and reads them through the router path.
func (c *invariantChecker) probeStale() {
	if len(c.ackedKeys) == 0 {
		return
	}
	rng := c.eng.Rand()
	n := c.cfg.ProbeKeys
	if n > len(c.ackedKeys) {
		n = len(c.ackedKeys)
	}
	for i := 0; i < n; i++ {
		key := c.ackedKeys[rng.Intn(len(c.ackedKeys))]
		c.probes++
		if stale, _ := c.keyStale(key, c.acked[key]); stale {
			// Re-check after the apply-gap grace before declaring: the ack
			// point is the leader's apply, and a just-elected leader may
			// trail it by an apply event.
			key, want := key, c.acked[key]
			c.eng.After(confirmAfter, func() {
				if stale, detail := c.keyStale(key, want); stale {
					c.violate("stale-read", "%s (confirmed after %v)", detail, confirmAfter)
				}
			})
		}
	}
}

// keyStale reads key through the router and reports whether the result is
// older than the acked sequence want. Unservable reads (every responsible
// group mid-election) and non-sequence values (foreign writes) are not
// stale — there is nothing trustworthy to compare.
func (c *invariantChecker) keyStale(key string, want uint64) (bool, string) {
	v, found, servable := c.t.ProbeRead(key)
	if !servable {
		return false, ""
	}
	if !found {
		return true, fmt.Sprintf("acked key %q (seq %d) invisible through the read path", key, want)
	}
	got, ok := kv.SeqOf(v)
	if !ok {
		return false, ""
	}
	if got < want {
		return true, fmt.Sprintf("key %q read seq %d, acked seq %d", key, got, want)
	}
	return false, ""
}

// report closes the run: final unavailability accounting, the durability
// sweep over every acked key, and the double-apply and convergence checks
// over every serving group's live replicas. Call after stop and the
// post-heal settle window.
func (c *invariantChecker) report() *InvariantReport {
	now := c.eng.Now()
	groups := c.t.Groups()
	for g, since := range c.downSince {
		if since >= 0 && g < groups {
			c.noteSpan(g, now-since)
		}
	}
	if c.maxDown > c.cfg.MaxUnavail.D() {
		c.violate("unavailability", "group %d leaderless for %v (bound %v)",
			c.maxDownGroup+1, c.maxDown, c.cfg.MaxUnavail.D())
	}

	// Durability: every acked write must be readable post-heal, at least
	// as new as its ack. ackedKeys is first-ack ordered — deterministic.
	for _, key := range c.ackedKeys {
		want := c.acked[key]
		v, found, servable := c.t.ProbeRead(key)
		switch {
		case !servable:
			c.violate("durability", "acked key %q unreadable post-heal (responsible group leaderless)", key)
		case !found:
			c.violate("durability", "acked key %q (seq %d) lost", key, want)
		default:
			if got, ok := kv.SeqOf(v); ok && got < want {
				c.violate("durability", "acked key %q survived at seq %d, acked seq %d", key, got, want)
			}
		}
	}

	for g := 0; g < groups; g++ {
		stores := c.t.GroupStores(g)
		var dupes uint64
		for _, st := range stores {
			dupes += st.Dupes()
		}
		if dupes > 0 {
			c.violate("double-apply", "group %d replicas suppressed %d duplicate command(s)", g+1, dupes)
		}
		for i := 1; i < len(stores); i++ {
			if !storesEqual(stores[0], stores[i]) {
				c.violate("convergence", "group %d: live replicas diverge post-heal", g+1)
				break
			}
		}
	}

	return &InvariantReport{
		Checked:      append([]string(nil), invariantNames...),
		AckedWrites:  len(c.ackedKeys),
		Probes:       c.probes,
		MaxUnavailMs: float64(c.maxDown) / float64(time.Millisecond),
		Violations:   c.violations,
		Suppressed:   c.suppressed,
	}
}

// storesEqual compares two replica stores through the probe surface.
func storesEqual(a, b StoreProbe) bool {
	ak, bk := a.SortedKeys(), b.SortedKeys()
	if len(ak) != len(bk) {
		return false
	}
	for i, k := range ak {
		if bk[i] != k {
			return false
		}
		av, _ := a.Get(k)
		bv, _ := b.Get(k)
		if string(av) != string(bv) {
			return false
		}
	}
	return true
}
