// Package transport carries raft messages over real networks using the
// paper's hybrid scheme (§III-E): heartbeats and their responses travel
// as UDP datagrams (loss-tolerant, measurement-friendly, no head-of-line
// blocking), while all consensus traffic (appends, votes) uses
// length-prefixed frames on per-peer TCP streams.
package transport

import (
	"bufio"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"dynatune/internal/raft"
	"dynatune/internal/wire"
)

// PeerAddr is one node's pair of listen addresses.
type PeerAddr struct {
	TCP string
	UDP string
}

// Config configures a Transport.
type Config struct {
	// ID is the local node.
	ID raft.ID
	// Listen holds the local listen addresses (host:port; port 0 picks
	// ephemeral ports, exposed via Addrs after Start).
	Listen PeerAddr
	// Peers maps every other node to its addresses. It may be extended
	// with SetPeer after Start (e.g. once ephemeral ports are known).
	Peers map[raft.ID]PeerAddr
	// Handler receives every inbound message. It is called from multiple
	// goroutines; callers serialize into their event loop.
	Handler func(raft.Message)
	// Logger, if nil, defaults to the standard logger with a node prefix.
	Logger *log.Logger
	// DialTimeout bounds outbound TCP connection attempts (default 2s).
	DialTimeout time.Duration
}

// Transport is a live hybrid UDP/TCP endpoint. Safe for concurrent use.
type Transport struct {
	cfg       Config
	lg        *log.Logger
	tcp       net.Listener
	udp       net.PacketConn
	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	peers    map[raft.ID]PeerAddr
	conns    map[raft.ID]*outConn
	uaddr    map[raft.ID]*net.UDPAddr
	accepted map[net.Conn]struct{}

	// drops counts messages dropped because a peer was unreachable.
	drops uint64
}

const (
	// outQueueMax bounds the per-peer send queue. Sends never touch the
	// socket: they enqueue and a per-peer writer goroutine drains the
	// queue in bursts, so the queue buffers the healthy path as well as
	// reconnect windows. Overflow drops the oldest first (raft prefers
	// fresh state over stale retransmits, and retransmits anything that
	// mattered).
	outQueueMax = 4096
	// Redial pacing: capped exponential with jitter. The first retry is
	// nearly immediate so transient breaks heal within a heartbeat; a
	// peer that stays down costs one dial per dialBackoffMax, not a
	// storm.
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

type outConn struct {
	to     raft.ID
	notify chan struct{} // cap 1; kicks the writer goroutine

	mu      sync.Mutex
	c       net.Conn
	w       *bufio.Writer
	queue   []raft.Message
	running bool // writer goroutine alive
	closed  bool
}

// Start opens the listeners and begins serving. The returned transport
// must be Closed.
func Start(cfg Config) (*Transport, error) {
	if cfg.ID == raft.None {
		return nil, errors.New("transport: need an ID")
	}
	if cfg.Handler == nil {
		return nil, errors.New("transport: need a Handler")
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	lg := cfg.Logger
	if lg == nil {
		lg = log.New(log.Writer(), fmt.Sprintf("transport[%d] ", cfg.ID), log.LstdFlags|log.Lmicroseconds)
	}
	tcpLn, err := net.Listen("tcp", cfg.Listen.TCP)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen: %w", err)
	}
	udpConn, err := net.ListenPacket("udp", cfg.Listen.UDP)
	if err != nil {
		tcpLn.Close()
		return nil, fmt.Errorf("transport: udp listen: %w", err)
	}
	t := &Transport{
		cfg:      cfg,
		lg:       lg,
		tcp:      tcpLn,
		udp:      udpConn,
		done:     make(chan struct{}),
		peers:    map[raft.ID]PeerAddr{},
		conns:    map[raft.ID]*outConn{},
		uaddr:    map[raft.ID]*net.UDPAddr{},
		accepted: map[net.Conn]struct{}{},
	}
	for id, pa := range cfg.Peers {
		t.SetPeer(id, pa)
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.udpLoop()
	return t, nil
}

// Addrs returns the bound listen addresses (useful with ephemeral ports).
func (t *Transport) Addrs() PeerAddr {
	return PeerAddr{TCP: t.tcp.Addr().String(), UDP: t.udp.LocalAddr().String()}
}

// SetPeer registers or updates a peer's addresses.
func (t *Transport) SetPeer(id raft.ID, pa PeerAddr) {
	t.mu.Lock()
	t.peers[id] = pa
	delete(t.uaddr, id) // re-resolve lazily
	oc := t.conns[id]
	delete(t.conns, id)
	t.mu.Unlock()
	// Close outside t.mu: oc.send acquires oc.mu then t.mu, so closing
	// under t.mu would invert the lock order and deadlock.
	if oc != nil {
		oc.close()
	}
}

// Drops returns how many messages were dropped for unreachable peers.
func (t *Transport) Drops() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Send transmits m to m.To, choosing UDP for heartbeat traffic and TCP
// otherwise. Failures are dropped silently after logging — raft is built
// for lossy links.
func (t *Transport) Send(m raft.Message) {
	if m.Type == raft.MsgHeartbeat || m.Type == raft.MsgHeartbeatResp {
		t.sendUDP(m)
		return
	}
	t.sendTCP(m)
}

func (t *Transport) sendUDP(m raft.Message) {
	addr := t.udpAddr(m.To)
	if addr == nil {
		t.drop(m, "no udp address")
		return
	}
	if _, err := t.udp.WriteTo(wire.Encode(m), addr); err != nil {
		t.drop(m, err.Error())
	}
}

func (t *Transport) udpAddr(id raft.ID) *net.UDPAddr {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a, ok := t.uaddr[id]; ok {
		return a
	}
	pa, ok := t.peers[id]
	if !ok {
		return nil
	}
	a, err := net.ResolveUDPAddr("udp", pa.UDP)
	if err != nil {
		return nil
	}
	t.uaddr[id] = a
	return a
}

func (t *Transport) sendTCP(m raft.Message) {
	oc := t.conn(m.To)
	if oc == nil {
		t.drop(m, "no tcp address")
		return
	}
	oc.send(t, m)
}

func (t *Transport) conn(id raft.ID) *outConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.peers[id]; !ok {
		return nil
	}
	oc, ok := t.conns[id]
	if !ok {
		oc = &outConn{to: id, notify: make(chan struct{}, 1)}
		t.conns[id] = oc
	}
	return oc
}

// send enqueues m for the peer's writer goroutine and returns without
// touching the network. Raft event loops call Send synchronously from
// broadcastAppend; if that write could block on a full TCP buffer while
// the peer's loop was blocked writing back to us, the two nodes would
// deadlock with full socket buffers in both directions. All socket I/O
// (dial, write, flush, backoff) therefore lives on the per-peer writer,
// and callers only ever pay an enqueue.
func (oc *outConn) send(t *Transport, m raft.Message) {
	oc.mu.Lock()
	if oc.closed {
		oc.mu.Unlock()
		t.drop(m, "conn closed")
		return
	}
	oc.enqueueLocked(t, m)
	if !oc.running {
		// Don't start a writer while the transport is shutting down: a
		// wg.Add racing wg.Wait would panic, and the queue dies with the
		// transport anyway.
		select {
		case <-t.done:
			oc.queue = nil
			oc.mu.Unlock()
			return
		default:
		}
		oc.running = true
		t.wg.Add(1)
		go oc.writeLoop(t)
	}
	oc.mu.Unlock()
	select {
	case oc.notify <- struct{}{}:
	default:
	}
}

// enqueueLocked buffers m for the writer, evicting the oldest message
// when the queue is full; oc.mu held.
func (oc *outConn) enqueueLocked(t *Transport, m raft.Message) {
	if len(oc.queue) >= outQueueMax {
		dropped := oc.queue[0]
		oc.queue = append(oc.queue[:0], oc.queue[1:]...)
		t.drop(dropped, "send queue full")
	}
	oc.queue = append(oc.queue, m)
}

// writeLoop owns the peer's socket: it dials with capped exponential
// backoff, drains the queue in bursts (one Flush per burst, not per
// frame), and on a write error requeues the unsent tail for the next
// connection. It exits when the outConn is closed or the transport
// shuts down.
func (oc *outConn) writeLoop(t *Transport) {
	defer t.wg.Done()
	fails := 0
	for {
		oc.mu.Lock()
		if oc.closed {
			oc.mu.Unlock()
			return
		}
		if len(oc.queue) == 0 {
			oc.mu.Unlock()
			select {
			case <-oc.notify:
				continue
			case <-t.done:
				oc.dropQueue(t, "transport closed")
				return
			}
		}
		if oc.c == nil {
			oc.mu.Unlock()
			c, err := t.dial(oc.to)
			if err != nil {
				fails++
				if !backoffWait(t, fails) {
					oc.dropQueue(t, "transport closed")
					return
				}
				continue
			}
			fails = 0
			oc.mu.Lock()
			if oc.closed {
				oc.mu.Unlock()
				c.Close()
				return
			}
			oc.c = c
			oc.w = bufio.NewWriter(c)
			oc.mu.Unlock()
			continue
		}
		// Detach the queued burst and write it without holding mu, so a
		// slow or blocked socket never blocks senders.
		burst := oc.queue
		oc.queue = nil
		c, w := oc.c, oc.w
		oc.mu.Unlock()

		var werr error
		for _, m := range burst {
			if werr = wire.WriteFrame(w, m); werr != nil {
				break
			}
		}
		if werr == nil {
			werr = w.Flush()
		}
		if werr == nil {
			continue
		}
		// Requeue the whole burst ahead of anything enqueued during the
		// write: a failed flush leaves no way to tell which frames hit
		// the wire, and raft tolerates the resulting duplicates but not
		// a systematically dropped tail.
		oc.mu.Lock()
		if oc.c == c {
			oc.resetLocked()
		}
		oc.queue = append(burst, oc.queue...)
		if over := len(oc.queue) - outQueueMax; over > 0 {
			for _, m := range oc.queue[:over] {
				t.drop(m, "send queue full")
			}
			oc.queue = oc.queue[over:]
		}
		oc.mu.Unlock()
	}
}

// dial connects to a peer by id (no locks held across the dial).
func (t *Transport) dial(id raft.ID) (net.Conn, error) {
	t.mu.Lock()
	pa := t.peers[id]
	t.mu.Unlock()
	c, err := net.DialTimeout("tcp", pa.TCP, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return c, nil
}

// backoffWait sleeps the capped-exponential redial delay with jitter
// over [d/2, d) (desynchronizes peers redialing a node that just
// restarted); it returns false when the transport shut down mid-wait.
func backoffWait(t *Transport, fails int) bool {
	d := dialBackoffBase << (fails - 1)
	if fails > 16 || d > dialBackoffMax || d <= 0 {
		d = dialBackoffMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-time.After(d):
		return true
	case <-t.done:
		return false
	}
}

func (oc *outConn) dropQueue(t *Transport, why string) {
	oc.mu.Lock()
	q := oc.queue
	oc.queue = nil
	oc.mu.Unlock()
	for _, m := range q {
		t.drop(m, why)
	}
}

func (oc *outConn) close() {
	oc.mu.Lock()
	oc.closed = true
	oc.queue = nil // queued messages die with the conn; raft retransmits
	oc.resetLocked()
	oc.mu.Unlock()
	select {
	case oc.notify <- struct{}{}: // wake the writer so it can exit
	default:
	}
}

func (oc *outConn) resetLocked() {
	if oc.c != nil {
		oc.c.Close()
		oc.c = nil
		oc.w = nil
	}
}

func (t *Transport) drop(m raft.Message, why string) {
	t.mu.Lock()
	t.drops++
	n := t.drops
	t.mu.Unlock()
	if n <= 8 || n%256 == 0 {
		t.lg.Printf("drop %v→%d %v: %s", m.Type, m.To, m.Term, why)
	}
}

func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.tcp.Accept()
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				t.lg.Printf("accept: %v", err)
				return
			}
		}
		t.wg.Add(1)
		go t.serveConn(c)
	}
}

func (t *Transport) serveConn(c net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	t.accepted[c] = struct{}{}
	t.mu.Unlock()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.accepted, c)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(c)
	for {
		m, err := wire.ReadFrame(r)
		if err != nil {
			return
		}
		if m.To != t.cfg.ID {
			continue // misaddressed frame
		}
		t.cfg.Handler(m)
	}
}

func (t *Transport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, _, err := t.udp.ReadFrom(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				t.lg.Printf("udp read: %v", err)
				return
			}
		}
		m, err := wire.Decode(buf[:n])
		if err != nil || m.To != t.cfg.ID {
			continue
		}
		t.cfg.Handler(m)
	}
}

// Close shuts the transport down and waits for its goroutines. It is
// idempotent.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() { close(t.done) })
	t.tcp.Close()
	t.udp.Close()
	t.mu.Lock()
	conns := make([]*outConn, 0, len(t.conns))
	for _, oc := range t.conns {
		conns = append(conns, oc)
	}
	acc := make([]net.Conn, 0, len(t.accepted))
	for c := range t.accepted {
		acc = append(acc, c)
	}
	t.mu.Unlock()
	// Close outside t.mu to respect the oc.mu → t.mu lock order used by
	// oc.send.
	for _, oc := range conns {
		oc.close()
	}
	for _, c := range acc {
		c.Close()
	}
	t.wg.Wait()
	return nil
}
