package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/loadharness"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/shard"
	"dynatune/internal/workload"
)

// LoadSection is the BENCH.json `load` entry: the real-socket serving
// numbers next to the simulator's prediction for the same deployment
// shape — the testbed↔production loop the ROADMAP asks for.
type LoadSection struct {
	Groups        int                        `json:"groups"`
	NodesPerGroup int                        `json:"nodes_per_group"`
	Conns         int                        `json:"conns"`
	Rate          float64                    `json:"target_rate"`
	BatchWindowUs float64                    `json:"batch_window_us"` // 0 = group commit off
	Stages        []loadharness.StageResult  `json:"stages"`
	Peak          loadharness.StageResult    `json:"peak"`
	SimP99Ms      float64                    `json:"sim_p99_ms,omitempty"`
	MeasuredP99Ms float64                    `json:"measured_p99_ms"`
	ProposeAmp    float64                    `json:"propose_amp,omitempty"` // raft entries per client put over the whole run
	Compare       *loadharness.CompareResult `json:"compare,omitempty"`
}

// loadCmd drives the open-loop loopback harness against a real fleet:
// boot G sharded groups in-process (the same server.Start path
// cmd/dynatuned runs), ramp pipelined binary connections against the
// sharded Front, and report the closed-SLA profile beside the
// simulator's p99 prediction for the same shape.
func loadCmd(args []string) {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	var (
		conns      = fs.Int("conns", 100000, "peak concurrent connections")
		startConns = fs.Int("start-conns", 10000, "ramp start connections")
		stages     = fs.Int("stages", 4, "ramp stages")
		stageDur   = fs.Duration("stage-dur", 5*time.Second, "measured window per stage")
		rate       = fs.Float64("rate", 5000, "total open-loop arrival rate at peak (req/s)")
		writeFrac  = fs.Float64("write-frac", 0.1, "fraction of puts")
		keys       = fs.Int("keys", 4096, "keyspace size")
		valueB     = fs.Int("value", 128, "value bytes")
		sla        = fs.Duration("sla", 100*time.Millisecond, "latency SLA")
		groups     = fs.Int("groups", 4, "raft groups (in-process fleet)")
		nodes      = fs.Int("nodes", 3, "nodes per group (in-process fleet)")
		front      = fs.String("front", "", "external binary Front address (skips booting a fleet)")
		fleetET    = fs.Duration("fleet-et", time.Second, "fleet static election timeout (heartbeat = 1/10; raise on starved CPUs so scheduling delay does not trigger elections)")
		compare    = fs.Bool("compare", true, "run the closed-loop binary-vs-HTTP comparison")
		cmpConns   = fs.Int("compare-conns", 64, "connections per protocol in the comparison")
		cmpDur     = fs.Duration("compare-dur", 5*time.Second, "comparison window")
		sim        = fs.Bool("sim", true, "run the simulator prediction for the same shape")
		jsonPath   = fs.String("json", "", "merge a `load` section into this BENCH.json")
		batchWin   = fs.Duration("batch-window", 200*time.Microsecond, "server-side group-commit window for the in-process fleet (0 disables batching)")
		pprofPath  = fs.String("pprof", "", "write a CPU profile covering the peak stage to this path")
		pinCores   = fs.Bool("pin-cores", true, "pin sharded load workers to distinct CPUs (skipped on a single-core host)")
		groupCmt   = fs.Bool("group-commit", false, "run the batched-vs-per-request group-commit comparison (boots its own fleets)")
		gcConns    = fs.Int("gc-conns", 1024, "connections per mode in the group-commit comparison")
		gcDepth    = fs.Int("gc-depth", 4, "pipeline depth per connection in the group-commit comparison")
		gcDur      = fs.Duration("gc-dur", 5*time.Second, "group-commit comparison window per mode")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	sec := LoadSection{
		Groups: *groups, NodesPerGroup: *nodes, Conns: *conns, Rate: *rate,
		BatchWindowUs: float64(*batchWin) / float64(time.Microsecond),
	}

	binAddr, httpAddr := *front, ""
	var fleetBins [][]string
	var fleet *loadharness.Fleet
	if binAddr == "" {
		fmt.Printf("booting %d×%d loopback fleet (batch window %v)...\n", *groups, *nodes, *batchWin)
		var err error
		fleet, err = loadharness.StartFleet(loadharness.FleetConfig{
			Groups: *groups, NodesPerGroup: *nodes,
			Tuner:       func() raft.Tuner { return raft.NewStaticTuner(*fleetET, *fleetET/10) },
			BatchWindow: *batchWin,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if fleet != nil {
				fleet.Stop()
			}
		}()
		binAddr, httpAddr, fleetBins = fleet.BinAddr, fleet.HTTPAddr, fleet.NodeBins
		fmt.Printf("fleet up: binary front %s, http front %s\n", binAddr, httpAddr)
	}

	// When Conns outruns this process's fd budget the harness re-execs
	// this binary into `load-worker` shards (fd limits are per-process).
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		os.Exit(1)
	}

	res, err := loadharness.Run(loadharness.Options{
		Addr:          binAddr,
		FleetBins:     fleetBins,
		WorkerCmd:     []string{exe, "load-worker"},
		Conns:         *conns,
		StartConns:    *startConns,
		Stages:        *stages,
		StageDuration: *stageDur,
		Rate:          *rate,
		WriteFrac:     *writeFrac,
		Keys:          *keys,
		ValueBytes:    *valueB,
		SLA:           *sla,
		Preload:       true,
		PinCores:      *pinCores,
		CPUProfile:    *pprofPath,
		Progress:      func(line string) { fmt.Println("  " + line) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "load: %v\n", err)
		os.Exit(1)
	}
	sec.Stages, sec.Peak, sec.MeasuredP99Ms = res.Stages, res.Peak, res.Peak.P99Ms
	if res.Peak.Errors > 0 {
		fmt.Fprintf(os.Stderr, "load: peak stage had %d errored requests\n", res.Peak.Errors)
	}
	if *pprofPath != "" {
		fmt.Printf("cpu profile (peak stage) written to %s\n", *pprofPath)
	}
	if fleet != nil {
		st := fleet.BatchStats()
		sec.ProposeAmp = st.ProposeAmp()
		if st.ClientOps > 0 {
			fmt.Printf("group commit: %d puts in %d entries (amp %.3f, mean batch %.1f, max %d)\n",
				st.ClientOps, st.Entries, st.ProposeAmp(), st.MeanDepth(), st.MaxDepth)
		}
	}

	if *sim {
		fmt.Println("running simulator prediction (same groups, loopback profile)...")
		sec.SimP99Ms = simPredictP99(*groups, *nodes, res.Peak.AchievedRate, *keys)
	}

	if *compare && httpAddr != "" {
		fmt.Printf("closed-loop comparison: binary vs HTTP at %d connections...\n", *cmpConns)
		cr, err := loadharness.CompareProtocols(loadharness.CompareOptions{
			BinAddr: binAddr, HTTPAddr: httpAddr,
			Conns: *cmpConns, Duration: *cmpDur,
			Keys: *keys, WriteFrac: *writeFrac,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: compare: %v\n", err)
			os.Exit(1)
		}
		sec.Compare = cr
		fmt.Printf("  binary  %9.0f ops/s  p99 %6.2f ms\n", cr.BinOpsPerSec, cr.BinP99Ms)
		fmt.Printf("  http    %9.0f ops/s  p99 %6.2f ms\n", cr.HTTPOpsPerSec, cr.HTTPP99Ms)
		fmt.Printf("  speedup %.2fx\n", cr.Speedup)
	}

	var gcRes *loadharness.GroupCommitResult
	if *groupCmt {
		if fleet != nil {
			// The comparison boots its own fleets; keeping the main fleet
			// (and its idle conns) alive would only steal CPU from the
			// measurement.
			fleet.Stop()
			fleet = nil
		}
		fmt.Printf("group-commit comparison: batched vs per-request at %d conns × depth %d...\n", *gcConns, *gcDepth)
		gcRes, err = loadharness.RunGroupCommitCompare(loadharness.GroupCommitOptions{
			Conns:       *gcConns,
			Depth:       *gcDepth,
			Duration:    *gcDur,
			Keys:        *keys,
			BatchWindow: *batchWin,
			Progress:    func(line string) { fmt.Println("  " + line) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "load: group commit: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("  %-12s %6s %10s %8s %8s %10s\n", "mode", "procs", "ops/s", "p99 ms", "amp", "mean batch")
		for _, r := range gcRes.Rows {
			fmt.Printf("  %-12s %6d %10.0f %8.2f %8.3f %10.1f\n",
				r.Mode, r.Procs, r.OpsPerSec, r.P99Ms, r.ProposeAmp, r.MeanBatch)
		}
		fmt.Printf("  batched/per-request speedup: %.2fx\n", gcRes.Speedup)
	}

	fmt.Println("\nsim-predicted vs measured p99 (peak stage):")
	fmt.Printf("  %-12s %10s %10s %10s %10s\n", "", "rate/s", "p99 ms", "p999 ms", "sla frac")
	if *sim {
		fmt.Printf("  %-12s %10.0f %10.2f %10s %10s\n", "simulated", res.Peak.AchievedRate, sec.SimP99Ms, "-", "-")
	}
	fmt.Printf("  %-12s %10.0f %10.2f %10.2f %10.4f\n", "measured",
		res.Peak.AchievedRate, res.Peak.P99Ms, res.Peak.P999Ms, res.Peak.SLAFrac)

	if *jsonPath != "" {
		if err := mergeSection(*jsonPath, "load", sec); err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		if gcRes != nil {
			if err := mergeSection(*jsonPath, "group_commit", gcRes); err != nil {
				fmt.Fprintf(os.Stderr, "load: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("merged load section into %s\n", *jsonPath)
	}
}

// simPredictP99 runs the simulator's sharded open-loop ramp at the
// measured rate over a loopback-like profile and returns its p99 — the
// prediction the measured table is judged against.
func simPredictP99(groups, nodes int, rate float64, keys int) float64 {
	rps := int(rate)
	if rps < 100 {
		rps = 100
	}
	r := shard.RunRamp(
		shard.Options{
			Groups: groups, NodesPerGroup: nodes, Seed: 42,
			Variant: cluster.VariantRaft(),
			Profile: netsim.Constant(netsim.Params{RTT: time.Millisecond, Jitter: 200 * time.Microsecond}),
		},
		workload.Ramp{StartRPS: rps, StepRPS: 0, StepDuration: 2 * time.Second, Steps: 3},
		shard.LoadOptions{Keys: keys, ClientRTT: time.Millisecond},
	)
	return r.P99Ms
}

// mergeSection read-modify-writes path as a generic JSON object so the
// `load` and `group_commit` entries compose with whatever `dynabench
// bench` wrote.
func mergeSection(path, key string, sec any) error {
	doc := map[string]json.RawMessage{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
	}
	if _, ok := doc["schema"]; !ok {
		doc["schema"], _ = json.Marshal("dynatune-bench/v1")
	}
	raw, err := json.Marshal(sec)
	if err != nil {
		return err
	}
	doc[key] = raw
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(path, out, 0o644)
}
