package loadharness

import (
	"runtime"
	"testing"
	"time"
)

// TestGroupCommitCompareSmall runs a tiny batched-vs-per-request sweep
// and checks the invariants the BENCH section relies on: per-request
// mode proposes one entry per put (amp 1.0), batched mode proposes
// fewer, and both modes move real traffic.
func TestGroupCommitCompareSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two fleets")
	}
	res, err := RunGroupCommitCompare(GroupCommitOptions{
		Conns:    32,
		Depth:    2,
		Duration: 1500 * time.Millisecond,
		Procs:    []int{runtime.GOMAXPROCS(0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	byMode := map[string]GroupCommitRow{}
	for _, r := range res.Rows {
		byMode[r.Mode] = r
		if r.OpsPerSec <= 0 || r.ClientPuts == 0 {
			t.Fatalf("%s moved no traffic: %+v", r.Mode, r)
		}
	}
	pr, ok := byMode["per_request"]
	if !ok {
		t.Fatal("no per_request row")
	}
	if pr.ProposeAmp < 0.999 || pr.ProposeAmp > 1.001 {
		t.Fatalf("per-request amp = %.4f, want 1.0 (one entry per put)", pr.ProposeAmp)
	}
	ba, ok := byMode["batched"]
	if !ok {
		t.Fatal("no batched row")
	}
	if ba.ProposeAmp >= 1.0 {
		t.Fatalf("batched amp = %.4f, batching had no effect", ba.ProposeAmp)
	}
	t.Logf("per-request %.0f ops/s vs batched %.0f ops/s (amp %.3f, mean batch %.1f)",
		pr.OpsPerSec, ba.OpsPerSec, ba.ProposeAmp, ba.MeanBatch)
}
