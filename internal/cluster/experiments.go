package cluster

import (
	"fmt"
	"time"

	"dynatune/internal/metrics"
	"dynatune/internal/raft"
	"dynatune/internal/workload"
)

// ElectionResult aggregates the paper's §IV-B1 measurement: detection and
// OTS times over repeated leader failures.
type ElectionResult struct {
	Variant string
	Trials  int
	// Per-trial samples in milliseconds.
	DetectionMs []float64
	OTSMs       []float64
	// MeanRandTimeoutMs is the mean randomized timeout across live
	// followers sampled at each failure instant (the paper reports 1454 ms
	// for Raft and 152 ms for Dynatune).
	MeanRandTimeoutMs float64
	// SplitVoteRounds counts candidate re-timeouts during the measured
	// elections (the §IV-E discussion).
	SplitVoteRounds int
	// FailedTrials counts trials where no leader emerged within the
	// per-trial timeout (excluded from the samples).
	FailedTrials int
}

// Summary bundles detection/OTS summaries.
func (r ElectionResult) Summary() (det, ots metrics.Summary) {
	return metrics.Summarize(r.DetectionMs), metrics.Summarize(r.OTSMs)
}

// FailureMode selects how the leader is killed in election trials.
type FailureMode int

const (
	// FailPause freezes the leader's process (the paper's `docker pause`).
	FailPause FailureMode = iota
	// FailPartition cuts the leader's links instead: the process keeps
	// running and must abdicate via check-quorum, exercising the
	// stale-leader path (an extra scenario beyond the paper's).
	FailPartition
)

// RunElectionTrials reproduces Fig. 4 / Fig. 8: repeatedly freeze the
// leader, measure detection (first follower timeout) and OTS (new leader
// elected), then thaw and settle. settle should exceed the time the tuner
// needs to engage (minListSize heartbeats).
func RunElectionTrials(opts Options, trials int, settle time.Duration) ElectionResult {
	return RunElectionTrialsWithFailure(opts, trials, settle, FailPause)
}

// RunElectionTrialsWithFailure is RunElectionTrials with a selectable
// failure mode. Trials run in shards of trialShardSize — each shard an
// independent cluster on its own engine — spread across TrialWorkers()
// workers and merged in shard order, so the result is deterministic for a
// given seed regardless of parallelism (and identical to the historical
// sequential runner whenever trials fit one shard).
func RunElectionTrialsWithFailure(opts Options, trials int, settle time.Duration, mode FailureMode) ElectionResult {
	counts := shardTrialCounts(trials, trialShardSize)
	parts := RunSharded(TrialWorkers(), len(counts), func(s int) electionShard {
		o := opts
		o.Seed = shardSeed(opts.Seed, s)
		return runElectionShard(o, counts[s], settle, mode)
	})
	res := ElectionResult{Variant: opts.Variant.Name, Trials: trials}
	var randSum float64
	randN := 0
	for _, p := range parts {
		res.DetectionMs = append(res.DetectionMs, p.DetectionMs...)
		res.OTSMs = append(res.OTSMs, p.OTSMs...)
		res.SplitVoteRounds += p.SplitVoteRounds
		res.FailedTrials += p.FailedTrials
		randSum += p.randSum
		randN += p.randN
	}
	if randN > 0 {
		res.MeanRandTimeoutMs = randSum / float64(randN)
	}
	return res
}

// electionShard is one shard's raw output: the samples plus the
// randomized-timeout sums, which merge exactly (unlike a per-shard mean).
type electionShard struct {
	ElectionResult
	randSum float64
	randN   int
}

// runElectionShard is the historical sequential trial loop, verbatim, over
// one dedicated cluster.
func runElectionShard(opts Options, trials int, settle time.Duration, mode FailureMode) electionShard {
	c := New(opts)
	c.Start()
	res := electionShard{ElectionResult: ElectionResult{Variant: opts.Variant.Name, Trials: trials}}
	rng := c.eng.Rand()
	var randSum float64
	randN := 0

	const trialTimeout = 60 * time.Second
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		if c.Leader() == nil {
			// Settle disturbed leadership (possible under loss); retry.
			res.FailedTrials++
			continue
		}
		// Randomize the failure phase within a heartbeat period.
		c.Run(time.Duration(rng.Int63n(int64(BaselineH))))
		if c.Leader() == nil {
			res.FailedTrials++
			continue
		}
		// Sample follower randomized timeouts at the failure instant.
		for _, d := range c.FollowerRandomizedTimeouts() {
			randSum += float64(d) / float64(time.Millisecond)
			randN++
		}
		var old raft.ID
		var failAt time.Duration
		switch mode {
		case FailPause:
			old, failAt = c.PauseLeader()
		case FailPartition:
			lead := c.Leader()
			old, failAt = lead.ID(), c.eng.Now()
			c.net.PartitionNode(int(old-1), true)
			// The isolated leader keeps "reigning" in its own view until
			// check-quorum; end its reign for OTS accounting at the cut.
			c.rec.MarkNodeDown(failAt, old)
		}

		splitBefore := c.rec.CountKind(raft.EventSplitVote, 0, failAt)
		deadline := c.eng.Now() + trialTimeout
		var otsD time.Duration
		elected := false
		for c.eng.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if d, _, ok := c.rec.FirstElectionAfter(failAt); ok {
				otsD, elected = d, true
				break
			}
		}
		recover := func() {
			switch mode {
			case FailPause:
				c.Resume(old)
			case FailPartition:
				c.net.PartitionNode(int(old-1), false)
			}
		}
		if !elected {
			res.FailedTrials++
			recover()
			c.Run(2 * time.Second)
			c.rec.Reset()
			continue
		}
		if det, ok := c.rec.FirstDetectionAfter(failAt); ok {
			res.DetectionMs = append(res.DetectionMs, float64(det)/float64(time.Millisecond))
		}
		res.OTSMs = append(res.OTSMs, float64(otsD)/float64(time.Millisecond))
		res.SplitVoteRounds += c.rec.CountKind(raft.EventSplitVote, failAt, c.eng.Now()) - splitBefore

		recover()
		c.Run(2 * time.Second)
		c.rec.Reset() // keep the event log O(trial)
		c.CompactAll(64)
	}
	res.randSum, res.randN = randSum, randN
	return res
}

// SeriesResult holds the time-series probes of a fluctuation run
// (Figs. 6 and 7).
type SeriesResult struct {
	Variant string
	Horizon time.Duration
	// RandTimeout3rdMs is the third-smallest randomized timeout across
	// live nodes, sampled once per second (Fig. 6).
	RandTimeout3rdMs *metrics.TimeSeries
	// LinkRTTMs is the nominal RTT of the 1↔2 link (the x-axis context of
	// Fig. 6).
	LinkRTTMs *metrics.TimeSeries
	// LeaderHMs is the mean tuned heartbeat interval on the leader
	// (Fig. 7a).
	LeaderHMs *metrics.TimeSeries
	// LeaderCPU / FollowerCPU are docker-stats-style percentages sampled
	// every 5 s (Fig. 7b).
	LeaderCPU   *metrics.TimeSeries
	FollowerCPU *metrics.TimeSeries
	// MeasuredLossPct is a live follower tuner's loss estimate (×100).
	MeasuredLossPct *metrics.TimeSeries
	// OTS spans observed after the first election (Fig. 6 shading).
	OTS *metrics.Intervals
	// Timeouts / Elections / Reverts count protocol events in the window.
	Timeouts  int
	Elections int
	Reverts   int
}

// RunFluctuation reproduces the §IV-C scenario shape: start a cluster
// under opts.Profile, wait for a leader, then probe once per second for
// horizon. cpuEvery controls the CPU sampling window (the paper uses 5 s).
func RunFluctuation(opts Options, horizon time.Duration, cpuEvery time.Duration) SeriesResult {
	c := New(opts)
	c.Start()
	lead := c.WaitLeader(30 * time.Second)
	if lead == nil {
		panic(fmt.Sprintf("cluster(%s): no initial leader", opts.Variant.Name))
	}
	leadID := lead.ID()
	// Pick the observation follower: the next node after the leader.
	followerID := raft.ID(1)
	if leadID == 1 {
		followerID = 2
	}
	start := c.eng.Now()

	res := SeriesResult{
		Variant:          opts.Variant.Name,
		Horizon:          horizon,
		RandTimeout3rdMs: metrics.NewTimeSeries("randomizedTimeout(ms)"),
		LinkRTTMs:        metrics.NewTimeSeries("rtt(ms)"),
		LeaderHMs:        metrics.NewTimeSeries("h(ms)"),
		LeaderCPU:        metrics.NewTimeSeries("leaderCPU(%)"),
		FollowerCPU:      metrics.NewTimeSeries("followerCPU(%)"),
		MeasuredLossPct:  metrics.NewTimeSeries("loss(%)"),
	}

	// Per-second probes.
	var probe func()
	probe = func() {
		t := c.eng.Now() - start
		if t > horizon {
			return
		}
		res.RandTimeout3rdMs.Add(t, float64(c.KthSmallestRandomizedTimeout(3))/float64(time.Millisecond))
		res.LinkRTTMs.Add(t, float64(c.LinkRTT(1, 2))/float64(time.Millisecond))
		if h := c.LeaderMeanHeartbeatInterval(); h > 0 {
			res.LeaderHMs.Add(t, float64(h)/float64(time.Millisecond))
		}
		if tn := c.DynatuneTuner(followerID); tn != nil {
			res.MeasuredLossPct.Add(t, tn.MeasuredLoss()*100)
		}
		c.eng.After(time.Second, probe)
	}
	c.eng.After(time.Second, probe)

	// CPU probes (leader identity may move; sample the *current* leader's
	// runtime and the fixed observation follower).
	var cpu func()
	cpu = func() {
		t := c.eng.Now() - start
		if t > horizon {
			return
		}
		if l := c.Leader(); l != nil {
			res.LeaderCPU.Add(t, c.CPUPercent(l.ID(), cpuEvery))
		}
		res.FollowerCPU.Add(t, c.CPUPercent(followerID, cpuEvery))
		c.eng.After(cpuEvery, cpu)
	}
	c.eng.After(cpuEvery, cpu)

	// Periodic compaction keeps week-long runs bounded.
	var compact func()
	compact = func() {
		if c.eng.Now()-start > horizon {
			return
		}
		c.CompactAll(64)
		c.eng.After(10*time.Second, compact)
	}
	c.eng.After(10*time.Second, compact)

	c.Run(horizon)

	res.OTS = c.rec.OTSIntervals(start, start+horizon)
	res.Timeouts = c.rec.CountKind(raft.EventTimeout, start, start+horizon)
	res.Elections = c.rec.CountKind(raft.EventLeaderElected, start, start+horizon)
	res.Reverts = c.rec.CountKind(raft.EventRevert, start, start+horizon)
	return res
}

// ThroughputPoint is one (offered RPS → achieved throughput, latency)
// measurement averaged over repetitions (Fig. 5).
type ThroughputPoint struct {
	OfferedRPS    int
	ThroughputRS  float64
	ThroughputStd float64
	LatencyMs     float64
}

// RunThroughputRamp reproduces §IV-B2: an open-loop RPS ramp against a
// healthy cluster, repeated reps times with distinct seeds; per-step
// throughput is averaged and its standard deviation reported. Repetitions
// run in parallel (each on its own engine) and accumulate in rep order,
// producing byte-identical output to a sequential run.
func RunThroughputRamp(opts Options, ramp workload.Ramp, reps int) []ThroughputPoint {
	type acc struct {
		thr metrics.Welford
		lat metrics.Welford
	}
	repSteps := RunSharded(TrialWorkers(), reps, func(rep int) []StepResult {
		o := opts
		o.Seed = shardSeed(opts.Seed, rep)
		c := New(o)
		lg := NewLoadGen(c, ramp, 100*time.Millisecond)
		c.Start()
		if c.WaitLeader(30*time.Second) == nil {
			panic("throughput ramp: no leader")
		}
		c.Run(3 * time.Second) // settle + tuner warmup
		lg.Start()
		c.Run(ramp.Duration() + 5*time.Second) // drain tail
		return lg.Results()
	})
	accs := make([]acc, ramp.Steps)
	for _, steps := range repSteps {
		for i, s := range steps {
			accs[i].thr.Add(s.ThroughputRS)
			if s.Completed > 0 {
				accs[i].lat.Add(s.LatencyMs)
			}
		}
	}
	out := make([]ThroughputPoint, ramp.Steps)
	for i := range accs {
		rps, _ := ramp.RPSAt(time.Duration(i)*ramp.StepDuration + 1)
		out[i] = ThroughputPoint{
			OfferedRPS:    rps,
			ThroughputRS:  accs[i].thr.Mean(),
			ThroughputStd: accs[i].thr.Std(),
			LatencyMs:     accs[i].lat.Mean(),
		}
	}
	return out
}

// PeakThroughput returns the highest achieved throughput on the curve.
func PeakThroughput(points []ThroughputPoint) float64 {
	var peak float64
	for _, p := range points {
		if p.ThroughputRS > peak {
			peak = p.ThroughputRS
		}
	}
	return peak
}

// TransferResult aggregates planned leadership handovers.
type TransferResult struct {
	Variant      string
	Trials       int
	HandoverMs   []float64 // transfer initiation → new leader elected
	FailedTrials int
}

// RunTransferTrials measures planned-maintenance handover (leadership
// transfer) latency — the complement of the crash failovers in Fig. 4:
// instead of freezing the leader, it hands leadership to a follower and
// measures the out-of-service window, which is bounded by one RTT rather
// than a detection timeout. Like the election trials it shards across the
// parallel runner with deterministic merge order.
func RunTransferTrials(opts Options, trials int, settle time.Duration) TransferResult {
	counts := shardTrialCounts(trials, trialShardSize)
	parts := RunSharded(TrialWorkers(), len(counts), func(s int) TransferResult {
		o := opts
		o.Seed = shardSeed(opts.Seed, s)
		return runTransferShard(o, counts[s], settle)
	})
	res := TransferResult{Variant: opts.Variant.Name, Trials: trials}
	for _, p := range parts {
		res.HandoverMs = append(res.HandoverMs, p.HandoverMs...)
		res.FailedTrials += p.FailedTrials
	}
	return res
}

// runTransferShard is the historical sequential transfer loop over one
// dedicated cluster.
func runTransferShard(opts Options, trials int, settle time.Duration) TransferResult {
	c := New(opts)
	c.Start()
	res := TransferResult{Variant: opts.Variant.Name, Trials: trials}
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		lead = c.Leader()
		if lead == nil {
			res.FailedTrials++
			continue
		}
		// Pick the next node around the ring as the target.
		target := raft.ID(int(lead.ID())%c.N() + 1)
		start := c.Now()
		if err := lead.TransferLeadership(target); err != nil {
			res.FailedTrials++
			continue
		}
		deadline := c.Now() + 30*time.Second
		done := false
		for c.Now() < deadline {
			c.Run(5 * time.Millisecond)
			if d, who, ok := c.rec.FirstElectionAfter(start); ok {
				if who != target {
					break // transfer lost a race; discard the trial
				}
				res.HandoverMs = append(res.HandoverMs, float64(d)/float64(time.Millisecond))
				done = true
				break
			}
		}
		if !done {
			res.FailedTrials++
		}
		c.Run(time.Second)
		c.rec.Reset()
	}
	return res
}
