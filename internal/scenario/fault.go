package scenario

import (
	"fmt"
	"math"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// FaultKind names one injector.
type FaultKind string

const (
	// FaultPauseLeader freezes the current leader (the paper's
	// `docker pause`); heals by resuming it.
	FaultPauseLeader FaultKind = "pause-leader"
	// FaultPartitionLeader cuts the leader's links in both directions: the
	// process keeps running and must abdicate via check-quorum.
	FaultPartitionLeader FaultKind = "partition-leader"
	// FaultAsymPartitionLeader cuts only the links INTO the leader: its
	// heartbeats still reach the followers (suppressing their failure
	// detectors) while no responses come back, so the out-of-service
	// window is governed entirely by the deaf leader's check-quorum
	// abdication — a scenario the paper's pause model cannot produce.
	FaultAsymPartitionLeader FaultKind = "asym-partition-leader"
	// FaultCrashLeader kills the leader process (volatile state lost) and
	// restarts it from its durable store after the spec's downtime.
	// Requires Topology.Persist.
	FaultCrashLeader FaultKind = "crash-leader"
	// FaultTransferLeader initiates a planned leadership transfer to the
	// next node around the ring instead of killing anything.
	FaultTransferLeader FaultKind = "transfer-leader"

	// FaultPauseNode / FaultCrashNode / FaultPartitionNode target the
	// fixed node in Fault.Node (1-based) instead of the leader.
	FaultPauseNode     FaultKind = "pause-node"
	FaultCrashNode     FaultKind = "crash-node"
	FaultPartitionNode FaultKind = "partition-node"
	// FaultLinkDown cuts the Fault.From↔Fault.To link in both directions.
	FaultLinkDown FaultKind = "link-down"
	// FaultRollingRestart crashes nodes 1..N in turn, one per occurrence
	// (Every/Count), each down for Duration before restarting from its
	// durable store. Requires Topology.Persist.
	FaultRollingRestart FaultKind = "rolling-restart"
	// FaultDegradeLinks replaces every link's schedule with the fault's
	// RTT/Jitter/Loss for Duration, then restores what it displaced —
	// `tc qdisc replace` as a fault, not a profile.
	FaultDegradeLinks FaultKind = "degrade-links"
	// FaultClockSkew skews the election timer of the fixed node in
	// Fault.Node: each armed timer delay is scaled by (1+Drift) and shifted
	// by Offset, modelling NTP rate error and step error (the paper's §IV-D
	// measurement caveat). Drift < 0 is a fast clock (timers fire early);
	// Duration heals by restoring the true clock.
	FaultClockSkew FaultKind = "clock-skew"
	// FaultPartitionGroups cuts every link crossing between the 1-based
	// node sets GroupA and GroupB in both directions — the classic
	// split-brain injection (netsim.PartitionGroups) — and heals the cuts
	// Duration later.
	FaultPartitionGroups FaultKind = "partition-groups"

	// FaultAddGroup / FaultRemoveGroup are the rebalance kinds, valid only
	// for sharded throughput runs: they fire MultiCluster.AddGroupLive /
	// RemoveGroupLive, starting a live drain → cutover → serve migration
	// (boot or decommission one Raft group and stream its keyspace share
	// while the workload keeps arriving). Deadline bounds the cutover;
	// remove-group always retires the highest-numbered group.
	FaultAddGroup    FaultKind = "add-group"
	FaultRemoveGroup FaultKind = "remove-group"
)

// Fault is one entry of the schedule. In failover trials only the first
// fault's Kind is used (one injection per trial); in series and
// throughput runs each fault fires at At, At+Every, ... (Count
// occurrences, clock-relative to the measurement start) and heals
// Duration later when Duration is set.
type Fault struct {
	Kind     FaultKind `json:"kind"`
	At       Duration  `json:"at,omitempty"`
	Every    Duration  `json:"every,omitempty"`
	Count    int       `json:"count,omitempty"`
	Duration Duration  `json:"duration,omitempty"`
	// Node is the 1-based fixed target of the *-node kinds.
	Node int `json:"node,omitempty"`
	// Group (1-based) is the alternative target of the *-node kinds on
	// sharded runs: instead of a fixed physical node, the fault resolves
	// to that Raft group's current leader at fire time — so a storm can
	// pause, crash, or partition the leader *inside* a moving group
	// mid-migration. Exactly one of Node and Group must be set for
	// pause-node / crash-node / partition-node.
	Group int `json:"group,omitempty"`
	// From/To are the 1-based endpoints of link faults.
	From int `json:"from,omitempty"`
	To   int `json:"to,omitempty"`
	// Degraded link conditions for degrade-links. Dist selects the delay
	// noise: "" / "normal" is Gaussian jitter, "pareto" is heavy-tailed
	// excess delay with shape Alpha (> 1) and scale Jitter — a misbehaving
	// middlebox rather than clean loss.
	RTT    Duration `json:"rtt,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	Loss   float64  `json:"loss,omitempty"`
	Dist   string   `json:"dist,omitempty"`
	Alpha  float64  `json:"alpha,omitempty"`
	// Reorder adds correlated reordering bursts to degrade-links: while
	// the degradation holds, burst windows of this length open on every
	// link at Pareto-distributed intervals (scale ReorderEvery), and the
	// packets crossing a link during a window are released in an order
	// permuted under the run's seed — the middlebox buffer-flush behavior
	// plain per-packet jitter can't produce. Both fields are required
	// together.
	Reorder      Duration `json:"reorder,omitempty"`
	ReorderEvery Duration `json:"reorder_every,omitempty"`
	// Deadline bounds a rebalance move's cutover (default 30s).
	Deadline Duration `json:"deadline,omitempty"`
	// Offset/Drift parameterize clock-skew (see FaultClockSkew).
	Offset Duration `json:"offset,omitempty"`
	Drift  float64  `json:"drift,omitempty"`
	// GroupA/GroupB are the 1-based node sets of partition-groups.
	GroupA []int `json:"group_a,omitempty"`
	GroupB []int `json:"group_b,omitempty"`
}

// trialInjector reports whether the kind can drive a failover trial.
func (k FaultKind) trialInjector() bool {
	switch k {
	case FaultPauseLeader, FaultPartitionLeader, FaultAsymPartitionLeader,
		FaultCrashLeader, FaultTransferLeader:
		return true
	}
	return false
}

// needsPersist reports whether the kind restarts crashed processes.
func (k FaultKind) needsPersist() bool {
	return k == FaultCrashLeader || k == FaultCrashNode || k == FaultRollingRestart
}

// rebalance reports whether the kind drives the sharded group lifecycle.
func (k FaultKind) rebalance() bool {
	return k == FaultAddGroup || k == FaultRemoveGroup
}

// groupAddressed reports whether the kind accepts Fault.Group targeting
// (resolve the target as that group's leader at fire time, sharded runs
// only).
func (k FaultKind) groupAddressed() bool {
	switch k {
	case FaultPauseNode, FaultCrashNode, FaultPartitionNode:
		return true
	}
	return false
}

// shardLink reports whether the kind acts purely on physical links, so a
// sharded run can inject it on the consolidated deployment's shared mesh
// (one cut affects every group riding the link). Node/link indices in the
// fault address physical nodes, 1..NodesPerGroup.
func (k FaultKind) shardLink() bool {
	switch k {
	case FaultLinkDown, FaultPartitionNode, FaultPartitionGroups, FaultDegradeLinks:
		return true
	}
	return false
}

func (f Fault) validate() error {
	switch f.Kind {
	case FaultPauseLeader, FaultPartitionLeader, FaultAsymPartitionLeader,
		FaultCrashLeader, FaultTransferLeader, FaultRollingRestart:
	case FaultPauseNode, FaultCrashNode, FaultPartitionNode:
		if f.Node < 1 && f.Group < 1 {
			return fmt.Errorf("%s needs a 1-based node or group target", f.Kind)
		}
		if f.Node >= 1 && f.Group >= 1 {
			return fmt.Errorf("%s targets both node %d and group %d — pick one", f.Kind, f.Node, f.Group)
		}
	case FaultLinkDown:
		if f.From < 1 || f.To < 1 || f.From == f.To {
			return fmt.Errorf("link-down needs distinct 1-based from/to")
		}
	case FaultDegradeLinks:
		if f.RTT <= 0 {
			return fmt.Errorf("degrade-links needs an rtt")
		}
		if f.Duration <= 0 {
			return fmt.Errorf("degrade-links needs a duration to restore after")
		}
		switch f.Dist {
		case "", "normal":
			if f.Alpha != 0 {
				return fmt.Errorf("degrade-links alpha only applies to dist=pareto")
			}
		case "pareto":
			if f.Alpha <= 1 {
				return fmt.Errorf("degrade-links dist=pareto needs alpha > 1 (finite mean), got %v", f.Alpha)
			}
			if f.Jitter <= 0 {
				return fmt.Errorf("degrade-links dist=pareto needs a jitter (the Pareto scale)")
			}
		default:
			return fmt.Errorf("degrade-links: unknown dist %q (want normal or pareto)", f.Dist)
		}
		if f.Reorder < 0 || f.ReorderEvery < 0 {
			return fmt.Errorf("degrade-links reorder fields must not be negative")
		}
		if (f.Reorder > 0) != (f.ReorderEvery > 0) {
			return fmt.Errorf("degrade-links reorder and reorder_every are required together")
		}
		if f.Reorder > 0 && f.Reorder.D() >= f.Duration.D() {
			return fmt.Errorf("degrade-links reorder window %v must be shorter than the fault duration %v", f.Reorder.D(), f.Duration.D())
		}
	case FaultAddGroup, FaultRemoveGroup:
		if f.Deadline < 0 {
			return fmt.Errorf("%s deadline must not be negative", f.Kind)
		}
	case FaultClockSkew:
		if f.Node < 1 {
			return fmt.Errorf("clock-skew needs a 1-based node")
		}
		if f.Offset == 0 && f.Drift == 0 {
			return fmt.Errorf("clock-skew needs an offset and/or a drift")
		}
		if f.Drift <= -1 {
			return fmt.Errorf("clock-skew drift %v would run the clock backwards (must exceed -1)", f.Drift)
		}
	case FaultPartitionGroups:
		if len(f.GroupA) == 0 || len(f.GroupB) == 0 {
			return fmt.Errorf("partition-groups needs two non-empty 1-based node groups")
		}
		seen := map[int]bool{}
		for _, id := range append(append([]int(nil), f.GroupA...), f.GroupB...) {
			if id < 1 {
				return fmt.Errorf("partition-groups member %d is not 1-based", id)
			}
			if seen[id] {
				return fmt.Errorf("partition-groups member %d appears twice", id)
			}
			seen[id] = true
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	if f.Count > 1 && f.Every <= 0 {
		return fmt.Errorf("%s repeats %d times but has no every", f.Kind, f.Count)
	}
	if f.Count < 0 {
		return fmt.Errorf("negative count")
	}
	if f.Group != 0 && !f.Kind.groupAddressed() {
		return fmt.Errorf("%s does not take a group target", f.Kind)
	}
	if (f.Reorder != 0 || f.ReorderEvery != 0) && f.Kind != FaultDegradeLinks {
		return fmt.Errorf("%s does not take reorder bursts (degrade-links only)", f.Kind)
	}
	return nil
}

// occurrences returns the fire times of one schedule entry, relative to
// the measurement start.
func (f Fault) occurrences() []time.Duration {
	n := f.Count
	if n < 1 {
		n = 1
	}
	out := make([]time.Duration, n)
	for k := range out {
		out[k] = f.At.D() + time.Duration(k)*f.Every.D()
	}
	return out
}

// linkToggler is the slice of a netsim mesh the cut bookkeeping needs;
// both a single-group Network[raft.Message] and the sharded fabric's
// envelope-multiplexed mesh satisfy it.
type linkToggler interface {
	SetDown(from, to int, down bool)
}

// linkCuts refcounts directed-link cuts across one run's fault schedule,
// so overlapping faults compose: a link stays down until every fault that
// cut it has healed, instead of the first heal silently restoring a path
// another fault still needs severed.
type linkCuts struct {
	n    int
	nw   linkToggler
	refs map[int]int // from*n+to → active cuts
}

func newLinkCuts(c Cluster) *linkCuts {
	return &linkCuts{n: c.N(), nw: c.Network(), refs: map[int]int{}}
}

func (lc *linkCuts) cut(from, to int) {
	key := from*lc.n + to
	lc.refs[key]++
	if lc.refs[key] == 1 {
		lc.nw.SetDown(from, to, true)
	}
}

func (lc *linkCuts) heal(from, to int) {
	key := from*lc.n + to
	if lc.refs[key] == 0 {
		return
	}
	lc.refs[key]--
	if lc.refs[key] == 0 {
		lc.nw.SetDown(from, to, false)
	}
}

// cutNode / healNode cut or release both directions of every link
// touching id (0-based) — the refcounted equivalent of PartitionNode.
func (lc *linkCuts) cutNode(id int)  { lc.eachLink(id, lc.cut) }
func (lc *linkCuts) healNode(id int) { lc.eachLink(id, lc.heal) }

// cutInbound / healInbound handle the asymmetric (deaf-node) cut.
func (lc *linkCuts) cutInbound(id int) {
	lc.eachPeer(id, func(other int) { lc.cut(other, id) })
}
func (lc *linkCuts) healInbound(id int) {
	lc.eachPeer(id, func(other int) { lc.heal(other, id) })
}

func (lc *linkCuts) eachLink(id int, op func(from, to int)) {
	lc.eachPeer(id, func(other int) {
		op(id, other)
		op(other, id)
	})
}

func (lc *linkCuts) eachPeer(id int, fn func(other int)) {
	for other := 0; other < lc.n; other++ {
		if other != id {
			fn(other)
		}
	}
}

// armFaults schedules every fault of the spec on the cluster's engine,
// with fire times relative to start (virtual time). Targets are resolved
// at fire time — "the leader" means the leader at that instant — so a
// cascading schedule naturally chases leadership as it moves.
func armFaults(c Cluster, start time.Duration, faults []Fault) {
	if len(faults) == 0 {
		return
	}
	eng := c.Engine()
	lc := newLinkCuts(c)
	for _, f := range faults {
		f := f
		for occ, at := range f.occurrences() {
			occ := occ
			eng.Schedule(start+at, func() { fire(c, f, occ, lc) })
		}
	}
}

// armShardFaults schedules a sharded run's faults on the multi-cluster's
// shared engine, fire times relative to start. Rebalance kinds drive the
// group lifecycle (a move firing while an earlier one is still draining
// is skipped — the lifecycle runs one migration at a time; schedule
// occurrences far enough apart for the drain to converge). Link-level
// kinds cut the consolidated deployment's shared physical mesh once, so
// every group riding the affected links feels the fault — the
// consolidation contract that made them expressible here at all.
func armShardFaults(mc MultiCluster, start time.Duration, faults []Fault) {
	eng := mc.Engine()
	var lc *linkCuts
	cutsFor := func() *linkCuts {
		nw := mc.PhysLinks()
		if nw == nil {
			return nil
		}
		if lc == nil {
			lc = &linkCuts{n: nw.N(), nw: nw, refs: map[int]int{}}
		}
		return lc
	}
	for _, f := range faults {
		f := f
		switch {
		case f.Group > 0 && f.Kind.groupAddressed():
			// Group-addressed process faults: the target is resolved as the
			// group's leader at each fire instant, so the fault chases
			// leadership — including into a group that is mid-migration.
			var cuts *linkCuts
			if f.Kind == FaultPartitionNode {
				if cuts = cutsFor(); cuts == nil {
					continue // per-group meshes: Validate rejects these specs
				}
			}
			for _, at := range f.occurrences() {
				eng.Schedule(start+at, func() { fireGroupFault(eng, mc, f, cuts) })
			}
		case f.Kind.rebalance():
			for _, at := range f.occurrences() {
				eng.Schedule(start+at, func() {
					switch f.Kind {
					case FaultAddGroup:
						_ = mc.AddGroupLive(f.Deadline.D())
					case FaultRemoveGroup:
						_ = mc.RemoveGroupLive(f.Deadline.D())
					}
				})
			}
		case f.Kind.shardLink():
			nw := mc.PhysLinks()
			if nw == nil {
				continue // per-group meshes: Validate rejects these specs
			}
			cuts := cutsFor()
			for _, at := range f.occurrences() {
				eng.Schedule(start+at, func() { fireShardLink(eng, nw, f, cuts) })
			}
		}
	}
}

// fireGroupFault injects one group-addressed fault occurrence: the target
// is the group's current leader. A retired slot, a leaderless election
// window, or an already-frozen target skips the occurrence — there is
// nothing meaningful to hit, and a storm schedule must stay injectable at
// whatever state it finds.
func fireGroupFault(eng *sim.Engine, mc MultiCluster, f Fault, lc *linkCuts) {
	g := f.Group - 1
	if g >= mc.Groups() {
		return
	}
	lead := mc.GroupLeader(g)
	if lead == 0 {
		return
	}
	heal := func(fn func()) {
		if f.Duration > 0 {
			eng.After(f.Duration.D(), fn)
		}
	}
	switch f.Kind {
	case FaultPauseNode:
		if mc.GroupNodePaused(g, lead) {
			return
		}
		mc.PauseGroupNode(g, lead)
		heal(func() { mc.ResumeGroupNode(g, lead) })
	case FaultCrashNode:
		if mc.GroupNodePaused(g, lead) {
			return
		}
		mc.CrashGroupNode(g, lead)
		heal(func() { mc.RestartGroupNode(g, lead) })
	case FaultPartitionNode:
		// The leader's group-local identity maps 1:1 onto a physical node
		// of the consolidated mesh, so the cut severs that node — and with
		// it every co-located group's replica, the consolidation blast
		// radius a physical fault is meant to have.
		lc.cutNode(int(lead) - 1)
		heal(func() { lc.healNode(int(lead) - 1) })
	}
}

// fireShardLink injects one physical-link fault occurrence on the shared
// mesh and, when the fault has a Duration, schedules its heal.
func fireShardLink(eng *sim.Engine, nw *netsim.Network[netsim.Envelope[raft.Message]], f Fault, lc *linkCuts) {
	heal := func(fn func()) {
		if f.Duration > 0 {
			eng.After(f.Duration.D(), fn)
		}
	}
	switch f.Kind {
	case FaultLinkDown:
		lc.cut(f.From-1, f.To-1)
		lc.cut(f.To-1, f.From-1)
		heal(func() {
			lc.heal(f.From-1, f.To-1)
			lc.heal(f.To-1, f.From-1)
		})
	case FaultPartitionNode:
		lc.cutNode(f.Node - 1)
		heal(func() { lc.healNode(f.Node - 1) })
	case FaultPartitionGroups:
		cross := func(op func(from, to int)) {
			for _, a := range f.GroupA {
				for _, b := range f.GroupB {
					op(a-1, b-1)
					op(b-1, a-1)
				}
			}
		}
		cross(lc.cut)
		heal(func() { cross(lc.heal) })
	case FaultDegradeLinks:
		degradeLinks(eng, nw, f)
	}
}

// degradeLinks swaps every inter-node link's schedule for the fault's
// conditions and restores exactly what it displaced Duration later. It is
// generic over the mesh payload so the single-group runner and the
// sharded shared mesh inject identically. Overlapping degrade pulses
// restore last-writer-wins — schedule them disjoint.
func degradeLinks[T any](eng *sim.Engine, nw *netsim.Network[T], f Fault) {
	n := nw.N()
	type linkProfile struct {
		from, to int
		p        netsim.Profile
	}
	prev := make([]linkProfile, 0, n*(n-1))
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			if from != to {
				prev = append(prev, linkProfile{from, to, nw.ProfileOf(from, to)})
			}
		}
	}
	nw.SetAllProfiles(netsim.Constant(netsim.Params{
		RTT: f.RTT.D(), Jitter: f.Jitter.D(), Loss: f.Loss,
		Dist: parseDist(f.Dist), Alpha: f.Alpha,
	}))
	if f.Duration > 0 {
		eng.After(f.Duration.D(), func() {
			for _, lp := range prev {
				nw.SetProfile(lp.from, lp.to, lp.p)
			}
		})
	}
	if f.Reorder > 0 {
		reorderBursts(eng, nw, f)
	}
}

// reorderShape is the Pareto shape of the gap between reorder bursts:
// heavy-tailed enough that bursts cluster (one congestion episode spawns
// several flushes close together, then a long quiet stretch) while
// keeping a finite mean gap.
const reorderShape = 1.5

// reorderBursts runs degrade-links' correlated-reordering schedule: for
// the fault's duration, mesh-wide reorder windows of length f.Reorder
// open at Pareto-distributed intervals with scale f.ReorderEvery. All
// draws come from the engine's RNG, so the burst times and the per-window
// permutations are a pure function of the run's seed.
func reorderBursts[T any](eng *sim.Engine, nw *netsim.Network[T], f Fault) {
	end := eng.Now() + f.Duration.D()
	var burst func()
	burst = func() {
		if eng.Now() >= end {
			return
		}
		window := f.Reorder.D()
		if left := end - eng.Now(); window > left {
			window = left // never hold packets past the degradation's heal
		}
		nw.ReorderAll(window)
		u := eng.Rand().Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		gap := time.Duration(float64(f.ReorderEvery.D()) * math.Pow(u, -1/reorderShape))
		if gap > f.Duration.D() {
			gap = f.Duration.D() // a tail draw past the fault just ends the schedule
		}
		eng.After(gap, burst)
	}
	burst()
}

// hasRebalance reports whether any fault drives the group lifecycle.
func hasRebalance(faults []Fault) bool {
	for _, f := range faults {
		if f.Kind.rebalance() {
			return true
		}
	}
	return false
}

// fire injects one fault occurrence and, when the fault has a Duration,
// schedules its heal.
func fire(c Cluster, f Fault, occ int, lc *linkCuts) {
	eng := c.Engine()
	heal := func(fn func()) {
		if f.Duration > 0 {
			eng.After(f.Duration.D(), fn)
		}
	}
	leaderID := func() (raft.ID, bool) {
		l := c.Leader()
		if l == nil {
			return 0, false
		}
		return l.ID(), true
	}
	switch f.Kind {
	case FaultPauseLeader:
		if id, ok := leaderID(); ok && !c.Paused(id) {
			c.Pause(id)
			heal(func() { c.Resume(id) })
		}
	case FaultCrashLeader:
		if id, ok := leaderID(); ok && !c.Paused(id) {
			c.Crash(id)
			heal(func() { c.Restart(id) })
		}
	case FaultPartitionLeader:
		if id, ok := leaderID(); ok {
			lc.cutNode(int(id - 1))
			c.Recorder().MarkNodeDown(eng.Now(), id)
			heal(func() { lc.healNode(int(id - 1)) })
		}
	case FaultAsymPartitionLeader:
		if id, ok := leaderID(); ok {
			lc.cutInbound(int(id - 1))
			c.Recorder().MarkNodeDown(eng.Now(), id)
			heal(func() { lc.healInbound(int(id - 1)) })
		}
	case FaultTransferLeader:
		if l := c.Leader(); l != nil {
			target := raft.ID(int(l.ID())%c.N() + 1)
			_ = l.TransferLeadership(target)
		}
	case FaultPauseNode:
		id := raft.ID(f.Node)
		if !c.Paused(id) {
			c.Pause(id)
			heal(func() { c.Resume(id) })
		}
	case FaultCrashNode:
		id := raft.ID(f.Node)
		if !c.Paused(id) {
			c.Crash(id)
			heal(func() { c.Restart(id) })
		}
	case FaultPartitionNode:
		id := raft.ID(f.Node)
		lc.cutNode(f.Node - 1)
		c.Recorder().MarkNodeDown(eng.Now(), id)
		heal(func() { lc.healNode(f.Node - 1) })
	case FaultLinkDown:
		lc.cut(f.From-1, f.To-1)
		lc.cut(f.To-1, f.From-1)
		heal(func() {
			lc.heal(f.From-1, f.To-1)
			lc.heal(f.To-1, f.From-1)
		})
	case FaultRollingRestart:
		id := raft.ID(occ%c.N() + 1)
		if !c.Paused(id) {
			c.Crash(id)
			heal(func() { c.Restart(id) })
		}
	case FaultClockSkew:
		id := raft.ID(f.Node)
		c.SetClockSkew(id, f.Offset.D(), f.Drift)
		heal(func() { c.SetClockSkew(id, 0, 0) })
	case FaultPartitionGroups:
		cross := func(op func(from, to int)) {
			for _, a := range f.GroupA {
				for _, b := range f.GroupB {
					op(a-1, b-1)
					op(b-1, a-1)
				}
			}
		}
		cross(lc.cut)
		heal(func() { cross(lc.heal) })
	case FaultDegradeLinks:
		// Snapshots every directed link's own schedule so heterogeneous
		// topologies (geo matrices) restore exactly.
		degradeLinks(eng, c.Network(), f)
	}
}
