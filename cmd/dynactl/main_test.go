package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeNode serves the subset of the dynatuned HTTP API dynactl uses.
func fakeNode(t *testing.T, leader bool, store map[string]string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/kv/", func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/kv/")
		switch r.Method {
		case http.MethodGet:
			v, ok := store[key]
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Write([]byte(v)) //nolint:errcheck // test server
		case http.MethodPut:
			if !leader {
				w.Header().Set("X-Raft-Leader", "1")
				http.Error(w, "not the leader", http.StatusMisdirectedRequest)
				return
			}
			var buf [256]byte
			n, _ := r.Body.Read(buf[:])
			store[key] = string(buf[:n])
			w.WriteHeader(http.StatusOK)
		case http.MethodDelete:
			if !leader {
				http.Error(w, "not the leader", http.StatusMisdirectedRequest)
				return
			}
			delete(store, key)
			w.WriteHeader(http.StatusOK)
		}
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		state := "follower"
		if leader {
			state = "leader"
		}
		w.Write([]byte(`{"state":"` + state + `"}`)) //nolint:errcheck // test server
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestClient(eps ...string) *client {
	return &client{hc: &http.Client{Timeout: 2 * time.Second}, endpoints: eps}
}

func host(s *httptest.Server) string { return strings.TrimPrefix(s.URL, "http://") }

func TestClientPutGetDelete(t *testing.T) {
	store := map[string]string{}
	leader := fakeNode(t, true, store)
	c := newTestClient(host(leader))
	if err := c.put("color", "blue"); err != nil {
		t.Fatal(err)
	}
	if store["color"] != "blue" {
		t.Fatalf("store = %v", store)
	}
	if err := c.get("color", "local"); err != nil {
		t.Fatal(err)
	}
	if err := c.del("color"); err != nil {
		t.Fatal(err)
	}
	if _, ok := store["color"]; ok {
		t.Fatal("delete did not remove key")
	}
	if err := c.get("color", "local"); err == nil {
		t.Fatal("get of deleted key succeeded")
	}
}

func TestClientFallsThroughToLeader(t *testing.T) {
	store := map[string]string{}
	follower := fakeNode(t, false, map[string]string{})
	leader := fakeNode(t, true, store)
	c := newTestClient(host(follower), host(leader))
	if err := c.put("k", "v"); err != nil {
		t.Fatal(err)
	}
	if store["k"] != "v" {
		t.Fatal("write did not reach the leader")
	}
}

func TestClientAllEndpointsDown(t *testing.T) {
	c := newTestClient("127.0.0.1:1") // nothing listens on port 1 for us
	if err := c.put("k", "v"); err == nil {
		t.Fatal("expected error with no reachable endpoint")
	}
	if err := c.status(); err == nil {
		t.Fatal("status should fail with no endpoints")
	}
}

func TestClientStatus(t *testing.T) {
	leader := fakeNode(t, true, map[string]string{})
	c := newTestClient(host(leader), "127.0.0.1:1")
	if err := c.status(); err != nil {
		t.Fatal(err) // one reachable endpoint suffices
	}
}

func TestClientBench(t *testing.T) {
	store := map[string]string{}
	leader := fakeNode(t, true, store)
	c := newTestClient(host(leader))
	if err := c.bench(10); err != nil {
		t.Fatal(err)
	}
	if len(store) != 10 {
		t.Fatalf("bench wrote %d keys", len(store))
	}
}
