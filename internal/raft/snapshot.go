package raft

import "time"

// Snapshot streaming and the automatic snapshot-at-index policy.
//
// A snapshot larger than Config.SnapshotChunk streams to a lagging
// follower as a chunk sequence (Raft §7 InstallSnapshot, chunked as etcd
// and TiKV do for multi-megabyte state machines): the leader keeps one
// in-flight transfer per follower and clocks exactly one chunk on each
// acknowledgement (MsgSnapResp), whose Hint carries the follower's byte
// position — the authoritative resume point after a dropped chunk or a
// dropped ack. The final chunk is acknowledged by a normal MsgAppResp at
// the snapshot index, so from the progress-tracking side a completed
// stream is indistinguishable from a legacy single-envelope install.
//
// Abort paths need no extra protocol: a leader stepping down discards its
// progress map (and the per-follower transfer state with it), and a
// follower clears its partial buffer on any role/term change — a later
// retransmit restarts cleanly from offset 0.

// SnapshotPolicy makes a node snapshot its state machine and truncate the
// log automatically as entries apply. The zero value disables the policy
// (compaction then only happens through explicit CompactLog calls).
type SnapshotPolicy struct {
	// EveryEntries triggers a snapshot when more than this many applied
	// entries are retained below the apply point. 0 disables the trigger.
	EveryEntries uint64
	// EveryBytes triggers a snapshot when the retained entries' payload
	// exceeds this size. 0 disables the trigger.
	EveryBytes uint64
	// RetainEntries is the retention floor: the log keeps this many
	// entries behind the apply point so healthy-but-slow followers catch
	// up from the log, and only truly lagging (or restarted) ones take
	// the snapshot path.
	RetainEntries uint64
}

// enabled reports whether any trigger is armed.
func (p SnapshotPolicy) enabled() bool { return p.EveryEntries > 0 || p.EveryBytes > 0 }

// snapXfer is the leader's state for one in-flight chunked transfer.
type snapXfer struct {
	to          ID
	index, term uint64
	data        []byte
	voters      []ID
	learners    []ID
	// offset is the next byte to ship; advanced only by follower acks.
	offset uint64
	// sentAt timestamps the last chunk send; a transfer silent for a full
	// election timeout is presumed dropped and the current chunk resent.
	sentAt time.Duration
}

// inboundSnap is the follower's reassembly buffer for one transfer.
type inboundSnap struct {
	from        ID
	index, term uint64
	total       uint64
	buf         []byte
}

// sendSnapChunk ships the transfer's current chunk.
func (n *Node) sendSnapChunk(x *snapXfer) {
	end := x.offset + uint64(n.cfg.SnapshotChunk)
	if end > uint64(len(x.data)) {
		end = uint64(len(x.data))
	}
	n.send(Message{
		Type:         MsgSnap,
		To:           x.to,
		Term:         n.term,
		Index:        x.index,
		LogTerm:      x.term,
		Snap:         x.data[x.offset:end],
		SnapOffset:   x.offset,
		SnapTotal:    uint64(len(x.data)),
		SnapVoters:   x.voters,
		SnapLearners: x.learners,
	})
	x.sentAt = n.cfg.Runtime.Now()
}

// handleSnapResp advances a chunked transfer on the leader: the follower
// acknowledged bytes up to m.Hint, so ship the next chunk from there.
func (n *Node) handleSnapResp(m Message) {
	if n.state != StateLeader {
		return
	}
	pr, ok := n.prs[m.From]
	if !ok {
		return
	}
	pr.recentActive = true
	pr.lastActive = n.cfg.Runtime.Now()
	x := pr.snap
	if x == nil || m.Index != x.index {
		return // ack for a transfer we already completed or abandoned
	}
	if m.Hint > uint64(len(x.data)) {
		return // incoherent resume point; wait for the stall resend
	}
	x.offset = m.Hint
	if x.offset >= uint64(len(x.data)) {
		// Every byte is delivered; the install's MsgAppResp clears x.
		return
	}
	n.sendSnapChunk(x)
}

// installSnapshot re-bases the follower on a complete snapshot and acks
// it at the snapshot index (the same ack a fully caught-up append sends).
func (n *Node) installSnapshot(from ID, index, term uint64, data []byte, voters, learners []ID) {
	n.log.RestoreSnapshot(index, term)
	if n.cfg.RestoreSnapshot != nil {
		n.cfg.RestoreSnapshot(data, index)
	}
	if len(voters) > 0 {
		n.adoptMembership(voters, learners)
	}
	n.persistSnapshot(Snapshot{
		Index: index, Term: term, Data: data,
		Voters: n.Voters(), Learners: n.Learners(),
	})
	n.send(Message{Type: MsgAppResp, To: from, Term: n.term, Index: index})
}

// maybeAutoCompact applies the snapshot policy after entries apply.
func (n *Node) maybeAutoCompact() {
	p := n.cfg.Snapshot
	if !p.enabled() || n.cfg.SnapshotData == nil {
		return
	}
	tail := n.log.Applied() - n.log.FirstIndex()
	if (p.EveryEntries > 0 && tail > p.EveryEntries) ||
		(p.EveryBytes > 0 && n.log.Bytes() > p.EveryBytes) {
		n.CompactLog(p.RetainEntries)
	}
}
