package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeMember is an HTTP stand-in for one group member with a scriptable
// leader view, so redirect-loop scenarios are deterministic instead of
// depending on real election timing.
type fakeMember struct {
	srv    *httptest.Server
	state  atomic.Value // "leader" | "follower"
	hint   atomic.Int64 // 1-based node id returned in X-Raft-Leader
	kvHits atomic.Int64
}

func newFakeMember(t *testing.T, state string, hint int) *fakeMember {
	t.Helper()
	m := &fakeMember{}
	m.state.Store(state)
	m.hint.Store(int64(hint))
	m.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/status":
			fmt.Fprintf(w, `{"state":%q}`, m.state.Load())
		case strings.HasPrefix(r.URL.Path, "/kv/"):
			if m.state.Load() != "leader" {
				w.Header().Set("X-Raft-Leader", fmt.Sprint(m.hint.Load()))
				w.WriteHeader(http.StatusMisdirectedRequest)
				return
			}
			m.kvHits.Add(1)
			w.WriteHeader(http.StatusOK)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(m.srv.Close)
	return m
}

// Two members with mutually stale hints must not trap the walk in a
// redirect loop: the front probes /status once and lands on the real
// leader, which neither stale hint pointed at.
func TestFrontProbeBreaksRedirectLoop(t *testing.T) {
	// Node 1 thinks node 2 leads; node 2 thinks node 1 leads; node 3 is the
	// actual leader no hint mentions.
	m1 := newFakeMember(t, "follower", 2)
	m2 := newFakeMember(t, "follower", 1)
	m3 := newFakeMember(t, "leader", 3)

	f, err := NewFront([][]string{{m1.srv.URL, m2.srv.URL, m3.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	fs := httptest.NewServer(f)
	defer fs.Close()

	req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/looped", strings.NewReader("v"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put through redirect loop: %s", resp.Status)
	}
	if m3.kvHits.Load() == 0 {
		t.Fatal("leader never received the forwarded write")
	}
}

// A hint pointing outside the member range (leader id 0: "no leader
// known") must also fall through to the probe rather than walking blind.
func TestFrontProbeOnDeadEndHint(t *testing.T) {
	m1 := newFakeMember(t, "follower", 0)
	m2 := newFakeMember(t, "follower", 0)
	m3 := newFakeMember(t, "leader", 3)

	f, err := NewFront([][]string{{m1.srv.URL, m2.srv.URL, m3.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	fs := httptest.NewServer(f)
	defer fs.Close()

	req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/deadend", strings.NewReader("v"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put with dead-end hints: %s", resp.Status)
	}
}

// Leadership moves between requests; the front must follow the fresh hint
// to the new leader without a probe (the hint is valid, just new).
func TestFrontFollowsHintAcrossLeaderChange(t *testing.T) {
	m1 := newFakeMember(t, "leader", 1)
	m2 := newFakeMember(t, "follower", 1)
	m3 := newFakeMember(t, "follower", 1)

	f, err := NewFront([][]string{{m1.srv.URL, m2.srv.URL, m3.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	fs := httptest.NewServer(f)
	defer fs.Close()

	put := func() int {
		req, _ := http.NewRequest(http.MethodPut, fs.URL+"/kv/k", strings.NewReader("v"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(); code != http.StatusOK {
		t.Fatalf("initial put: %d", code)
	}
	if m1.kvHits.Load() != 1 {
		t.Fatalf("initial leader hits: %d", m1.kvHits.Load())
	}

	// Leader moves 1 → 3; node 1 knows and hints correctly.
	m1.state.Store("follower")
	m1.hint.Store(int64(3))
	m2.hint.Store(int64(3))
	m3.state.Store("leader")
	m3.hint.Store(int64(3))

	if code := put(); code != http.StatusOK {
		t.Fatalf("post-change put: %d", code)
	}
	if m3.kvHits.Load() != 1 {
		t.Fatalf("new leader hits: %d", m3.kvHits.Load())
	}

	// The front cached the new leader: the next put goes straight there.
	base := m3.kvHits.Load()
	if code := put(); code != http.StatusOK {
		t.Fatalf("cached-leader put: %d", code)
	}
	if m3.kvHits.Load() != base+1 {
		t.Fatal("front did not cache the new leader")
	}
}
