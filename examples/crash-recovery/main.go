// Crash-recovery: run a durable 5-node Dynatune cluster, crash the leader
// (the process dies — volatile state including the tuner's measurement
// lists is gone), watch the cluster fail over, then restart the node from
// its persisted term/vote/log and watch it rejoin, replay, and re-warm its
// tuner from fresh heartbeats. Along the way, serve linearizable reads via
// both ReadIndex and the check-quorum lease.
//
//	go run ./examples/crash-recovery
package main

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/dynatune"
	"dynatune/internal/kv"
	"dynatune/internal/netsim"
	"dynatune/internal/raft"
)

func main() {
	network := netsim.Constant(netsim.Params{
		RTT:    100 * time.Millisecond,
		Jitter: 2 * time.Millisecond,
	})
	c := cluster.New(cluster.Options{
		N:       5,
		Seed:    1,
		Variant: cluster.VariantDynatune(dynatune.Options{}),
		Profile: network,
		Persist: true, // every node gets a durable store
	})
	c.Start()

	lead := c.WaitLeader(10 * time.Second)
	if lead == nil {
		panic("no leader elected")
	}
	c.Run(4 * time.Second) // tuner warm-up
	lead = c.Leader()
	fmt.Printf("leader: node %d, tuned Et on node %d: %v\n",
		lead.ID(), next(lead.ID()), c.Tuner(next(lead.ID())).ElectionTimeout())

	// Write some state through the replicated kv store.
	for i := 1; i <= 10; i++ {
		cmd := kv.Command{Op: kv.OpPut, Client: 1, Seq: uint64(i),
			Key: fmt.Sprintf("key-%d", i), Value: []byte(fmt.Sprintf("value-%d", i))}
		if _, err := lead.Propose(kv.Encode(cmd)); err != nil {
			panic(err)
		}
	}
	c.Run(time.Second)

	// Linearizable reads, both flavours.
	readDemo(c, "before crash")

	// Crash the leader: unlike the paper's `docker pause`, the process is
	// dead; only its durable store survives.
	old, failAt := c.CrashLeader()
	fmt.Printf("\ncrashed leader node %d at t=%v\n", old, failAt)
	newLead := c.WaitLeader(30 * time.Second)
	if newLead == nil {
		panic("no successor elected")
	}
	det, _ := c.Recorder().FirstDetectionAfter(failAt)
	ots, _, _ := c.Recorder().FirstElectionAfter(failAt)
	fmt.Printf("failover: detection %v, OTS %v, new leader node %d\n", det, ots, newLead.ID())

	// Restart the crashed node from its durable store.
	replay := c.Persister(old).Restored()
	fmt.Printf("\nrestarting node %d: durable term=%d, %d log entries to replay\n",
		old, replay.HardState.Term, len(replay.Entries))
	restartAt := c.Now()
	c.Restart(old)

	// The restarted tuner is cold (fallback Et=1s) and re-warms.
	tn := c.DynatuneTuner(old)
	fmt.Printf("restarted node %d: tuned=%v Et=%v (fallback)\n", old, tn.Tuned(), tn.ElectionTimeout())
	for !tn.Tuned() && c.Now() < restartAt+30*time.Second {
		c.Run(100 * time.Millisecond)
	}
	fmt.Printf("re-warmed after %v: Et=%v\n", c.Now()-restartAt, tn.ElectionTimeout())

	// It replayed its log and caught up with everything written meanwhile.
	c.Run(time.Second)
	if v, ok := c.Store(old).Get("key-10"); ok {
		fmt.Printf("restarted node's store: key-10 = %s\n", v)
	}
	if err := c.StoresConsistent(); err != nil {
		panic(err)
	}
	readDemo(c, "after recovery")
	fmt.Println("\nall stores consistent ✓")
}

// readDemo issues one ReadIndex and one lease read against the leader.
func readDemo(c *cluster.Cluster, label string) {
	lead := c.Leader()
	if lead == nil {
		return
	}
	start := c.Now()
	done := false
	if err := lead.ReadIndex(func(idx uint64, ok bool) {
		if ok {
			fmt.Printf("[%s] ReadIndex confirmed at index %d after %v (≈ one RTT)\n",
				label, idx, c.Now()-start)
		}
		done = true
	}); err != nil {
		fmt.Printf("[%s] ReadIndex: %v\n", label, err)
		return
	}
	for !done && c.Now() < start+5*time.Second {
		c.Run(10 * time.Millisecond)
	}
	if err := lead.LeaseRead(func(idx uint64, ok bool) {
		if ok {
			fmt.Printf("[%s] lease read served instantly at index %d (lease left: %v)\n",
				label, idx, lead.LeaseRemaining())
		}
	}); err != nil {
		fmt.Printf("[%s] lease read fell back: %v\n", label, err)
	}
}

func next(id raft.ID) raft.ID { return id%5 + 1 }
