package batcher

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dynatune/internal/kv"
)

type flushRec struct {
	mu      sync.Mutex
	batches [][]Op
	reasons []FlushReason
}

func (f *flushRec) flush(ops []Op, reason FlushReason) {
	f.mu.Lock()
	f.batches = append(f.batches, ops)
	f.reasons = append(f.reasons, reason)
	f.mu.Unlock()
}

func (f *flushRec) wait(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		f.mu.Lock()
		got := len(f.batches)
		f.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d batches after 2s, want %d", got, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func put(key string) kv.Command {
	return kv.Command{Op: kv.OpPut, Key: key, Value: []byte("v")}
}

func TestWindowFlushCoalesces(t *testing.T) {
	rec := &flushRec{}
	b := New(Config{Window: 2 * time.Millisecond, Flush: rec.flush})
	for i := 0; i < 5; i++ {
		b.Add(put(fmt.Sprintf("k%d", i)), NewWaiter())
	}
	rec.wait(t, 1)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.batches) != 1 || len(rec.batches[0]) != 5 {
		t.Fatalf("batches = %d (first depth %d), want one batch of 5", len(rec.batches), len(rec.batches[0]))
	}
	if rec.reasons[0] != FlushWindow {
		t.Fatalf("reason = %v, want window", rec.reasons[0])
	}
	if got := b.Stats(); got.Ops != 5 || got.Batches != 1 || got.MaxDepth != 5 || got.FlushWindow != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestOpsCapFlushesEarly(t *testing.T) {
	rec := &flushRec{}
	b := New(Config{Window: time.Hour, MaxOps: 3, Flush: rec.flush})
	for i := 0; i < 7; i++ {
		b.Add(put(fmt.Sprintf("k%d", i)), NewWaiter())
	}
	rec.wait(t, 2) // 7 ops, cap 3: two full batches, one op still queued
	rec.mu.Lock()
	if len(rec.batches[0]) != 3 || len(rec.batches[1]) != 3 {
		t.Fatalf("batch depths = %d, %d", len(rec.batches[0]), len(rec.batches[1]))
	}
	if rec.reasons[0] != FlushOps {
		t.Fatalf("reason = %v", rec.reasons[0])
	}
	rec.mu.Unlock()
	b.Drain(nil)
	rec.wait(t, 3)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.batches[2]) != 1 || rec.reasons[2] != FlushDrain {
		t.Fatalf("drain batch depth %d reason %v", len(rec.batches[2]), rec.reasons[2])
	}
}

func TestBytesCapFlushesEarly(t *testing.T) {
	rec := &flushRec{}
	b := New(Config{Window: time.Hour, MaxBytes: 100, Flush: rec.flush})
	big := kv.Command{Op: kv.OpPut, Key: "k", Value: make([]byte, 80)}
	b.Add(big, NewWaiter())
	b.Add(big, NewWaiter())
	rec.wait(t, 1)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.reasons[0] != FlushBytes {
		t.Fatalf("reason = %v, want bytes", rec.reasons[0])
	}
}

func TestDrainWithErrorAbortsAndCloses(t *testing.T) {
	rec := &flushRec{}
	b := New(Config{Window: time.Hour, Flush: rec.flush})
	w1 := NewWaiter()
	b.Add(put("a"), w1)
	boom := errors.New("leadership lost")
	b.Drain(boom)
	select {
	case err := <-w1.C():
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("queued waiter never resolved on drain")
	}
	// Post-close Adds resolve immediately with the drain error.
	w2 := NewWaiter()
	b.Add(put("b"), w2)
	select {
	case err := <-w2.C():
		if !errors.Is(err, boom) {
			t.Fatalf("post-close err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("post-close Add never resolved")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.batches) != 0 {
		t.Fatal("aborted batch must not reach Flush")
	}
}

func TestConcurrentAddAccountsEveryOp(t *testing.T) {
	var flushed atomic.Uint64
	b := New(Config{Window: 200 * time.Microsecond, MaxOps: 16, Flush: func(ops []Op, _ FlushReason) {
		flushed.Add(uint64(len(ops)))
		for _, op := range ops {
			op.W.Resolve(nil)
		}
	}})
	const gs, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w := NewWaiter()
				b.Add(put(fmt.Sprintf("g%d-%d", g, i)), w)
				<-w.C()
			}
		}(g)
	}
	wg.Wait()
	b.Drain(nil)
	if got := flushed.Load(); got != gs*per {
		t.Fatalf("flushed %d ops, want %d", got, gs*per)
	}
	st := b.Stats()
	if st.Ops != gs*per {
		t.Fatalf("stats.Ops = %d", st.Ops)
	}
	if st.Batches == 0 || st.Batches > st.Ops {
		t.Fatalf("stats.Batches = %d", st.Batches)
	}
}

func TestWaiterResolveOnce(t *testing.T) {
	w := NewWaiter()
	if !w.Resolve(nil) {
		t.Fatal("first resolve lost")
	}
	if w.Resolve(errors.New("late")) {
		t.Fatal("second resolve won")
	}
	if err := <-w.C(); err != nil {
		t.Fatalf("delivered %v, want the first resolution", err)
	}
	if !w.Resolved() {
		t.Fatal("not marked resolved")
	}
}

func TestDeadlineHeapExpiresInOrder(t *testing.T) {
	var h DeadlineHeap
	base := time.Now()
	errTO := errors.New("timed out")
	ws := make([]*Waiter, 5)
	// Push out of order; expiry must honor deadline order.
	for _, i := range []int{3, 0, 4, 1, 2} {
		ws[i] = NewWaiter()
		h.Push(ws[i], base.Add(time.Duration(i)*time.Millisecond), errTO)
	}
	if next := h.Next(); !next.Equal(base) {
		t.Fatalf("next = %v, want base", next)
	}
	// Expire through 2ms: waiters 0..2 time out, 3..4 stay.
	next := h.Expire(base.Add(2 * time.Millisecond))
	if !next.Equal(base.Add(3 * time.Millisecond)) {
		t.Fatalf("next after expire = %v", next)
	}
	for i := 0; i < 3; i++ {
		if !ws[i].Resolved() {
			t.Fatalf("waiter %d not expired", i)
		}
	}
	for i := 3; i < 5; i++ {
		if ws[i].Resolved() {
			t.Fatalf("waiter %d expired early", i)
		}
	}
	// Resolve 3 early: the sweep reclaims it without delivering a timeout,
	// and the next deadline is 4's.
	ws[3].Resolve(nil)
	if next := h.Expire(base.Add(2 * time.Millisecond)); !next.Equal(base.Add(4 * time.Millisecond)) {
		t.Fatalf("next after early resolve = %v", next)
	}
	if err := <-ws[3].C(); err != nil {
		t.Fatalf("early-resolved waiter got %v", err)
	}
	// Drain the rest.
	if next := h.Expire(base.Add(time.Minute)); !next.IsZero() {
		t.Fatalf("non-zero next on empty heap: %v", next)
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d", h.Len())
	}
	if err := <-ws[4].C(); !errors.Is(err, errTO) {
		t.Fatalf("expired waiter got %v", err)
	}
}
