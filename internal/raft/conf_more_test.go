package raft

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dynatune/internal/sim"
)

func TestTransferToLearnerRefused(t *testing.T) {
	opts := defaultOpts()
	opts.n = 4
	opts.memberN = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.addNode(4, []ID{1, 2, 3}, []ID{4})
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddLearner, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if err := lead.TransferLeadership(4); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("transfer to learner: err=%v, want ErrUnknownPeer", err)
	}
	// After promotion the transfer is allowed.
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if err := lead.TransferLeadership(4); err != nil {
		t.Fatalf("transfer to promoted voter: %v", err)
	}
	c.run(5 * time.Second)
	if got := c.leader(); got == nil || got.ID() != 4 {
		t.Fatalf("leadership did not land on the promoted node: %v", got)
	}
}

func TestLearnerCatchesUpViaSnapshot(t *testing.T) {
	// A learner joining after the log was compacted must be brought up via
	// InstallSnapshot — and the snapshot carries the membership.
	opts := defaultOpts()
	opts.n = 4
	opts.memberN = 3
	c, _ := newSnapshotCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	for i := 0; i < 100; i++ {
		if _, err := lead.Propose([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.run(2 * time.Second)
	for _, n := range c.nodes {
		n.CompactLog(4)
	}
	if lead.Log().FirstIndex() < 10 {
		t.Fatalf("compaction did not advance the floor (first=%d)", lead.Log().FirstIndex())
	}
	// The tail below FirstIndex is gone; the fresh learner must be fed by
	// InstallSnapshot, whose membership payload includes its learner role.
	joinerSM := &miniSM{}
	rt := &testRuntime{
		eng:     c.eng,
		net:     c.net,
		id:      4,
		timers:  map[timerKey]sim.Handle{},
		hbClass: c.rts[0].hbClass,
	}
	joiner, err := NewNode(Config{
		ID:              4,
		Peers:           []ID{1, 2, 3},
		Learners:        []ID{4},
		Runtime:         rt,
		Tuner:           NewStaticTuner(1000*time.Millisecond, 100*time.Millisecond),
		Tracer:          recordTracer{c},
		Apply:           joinerSM.apply,
		SnapshotData:    joinerSM.snapshot,
		RestoreSnapshot: joinerSM.restore,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.node = joiner
	c.rts = append(c.rts, rt)
	c.nodes = append(c.nodes, joiner)
	joiner.Start()

	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddLearner, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(5 * time.Second)
	if joiner.Log().Committed() < lead.Log().Committed()-1 {
		t.Fatalf("learner commit %d lags leader %d", joiner.Log().Committed(), lead.Log().Committed())
	}
	if !joiner.IsLearner() {
		t.Fatal("joiner lost its learner status")
	}
	if len(joiner.Voters()) != 3 {
		t.Fatalf("joiner's membership after snapshot: voters %v", joiner.Voters())
	}
}

func TestReadIndexSurvivesConfChange(t *testing.T) {
	// A membership change mid-flight must not break read confirmation: the
	// quorum requirement follows the *new* configuration once applied.
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.run(time.Second)
	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: victim}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if lead.Quorum() != 3 {
		t.Fatalf("quorum = %d, want 3 of 4", lead.Quorum())
	}
	confirmed := false
	if err := lead.ReadIndex(func(_ uint64, ok bool) { confirmed = ok }); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	if !confirmed {
		t.Fatal("read not confirmed under the shrunk membership")
	}
}

func TestRemovedNodeVoteNotCounted(t *testing.T) {
	// After removal commits, the removed node's (stale) vote responses
	// must not count toward a quorum: with 2 of 4 remaining voters down, a
	// candidate plus the removed node is NOT a majority.
	opts := defaultOpts()
	opts.n = 5
	opts.seed = 31
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: victim}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	// 4 voters remain; quorum 3. Crash two of them (keep the leader and
	// one follower): no quorum should be electable if the leader also
	// dies, regardless of what the removed node says.
	var keep ID
	crashed := 0
	for _, n := range c.nodes {
		id := n.ID()
		if id == lead.ID() || id == victim {
			continue
		}
		if keep == None {
			keep = id
			continue
		}
		c.crash(id)
		crashed++
	}
	if crashed != 2 {
		t.Fatalf("crashed %d, want 2", crashed)
	}
	c.crash(lead.ID())
	c.run(10 * time.Second)
	if l := c.leader(); l != nil {
		t.Fatalf("node %d won with only 1 live voter + a removed node", l.ID())
	}
}
