package server

import (
	"errors"
	"fmt"
	"log"

	"dynatune/internal/shard"
	"dynatune/internal/wireclient"
)

// BinFront is the binary-protocol counterpart of Front: a sharded
// listener that partitions the keyspace across Raft groups with the same
// epoch-versioned shard.Router, forwards each request to the owning
// group's leader over pooled pipelined connections, and carries leader
// redirects in-protocol (StatusNotLeader + hint) instead of HTTP 421s.
// Multigets partition per group, fan out, and reassemble positionally.
type BinFront struct {
	router *shard.Router
	groups []*wireclient.GroupClient
	bs     *binServer
}

// StartBinFront listens on listen and routes across groups; groups[g]
// lists group g's member *binary* addresses indexed by node ID-1.
func StartBinFront(listen string, groups [][]string, cfg wireclient.PoolConfig, lg *log.Logger) (*BinFront, error) {
	if len(groups) == 0 {
		return nil, errors.New("server: bin front needs at least one group")
	}
	f := &BinFront{
		router: shard.NewRouter(len(groups), 0),
		groups: make([]*wireclient.GroupClient, len(groups)),
	}
	for g, members := range groups {
		if len(members) == 0 {
			return nil, fmt.Errorf("server: bin front group %d has no members", g)
		}
		f.groups[g] = wireclient.NewGroupClient(members, cfg)
	}
	if lg == nil {
		lg = log.New(log.Writer(), "binfront ", log.LstdFlags|log.Lmicroseconds)
	}
	bs, err := startBinServer(listen, f.handle, lg)
	if err != nil {
		for _, gc := range f.groups {
			gc.Close()
		}
		return nil, err
	}
	f.bs = bs
	return f, nil
}

// Addr returns the listen address.
func (f *BinFront) Addr() string { return f.bs.addr() }

// Router exposes the key→group mapping.
func (f *BinFront) Router() *shard.Router { return f.router }

// Close drains the listener and tears down the backend pools.
func (f *BinFront) Close() {
	f.bs.close()
	for _, gc := range f.groups {
		gc.Close()
	}
}

func (f *BinFront) handle(req wireclient.Request) wireclient.Response {
	switch req.Op {
	case wireclient.OpPing:
		return wireclient.Response{}

	case wireclient.OpPut, wireclient.OpGet:
		if req.Key == "" {
			return binErrf("missing key")
		}
		g := f.router.Route(req.Key)
		resp, err := f.groups[g].Call(&req)
		if err != nil {
			return binErrf(fmt.Sprintf("group %d: %v", g, err))
		}
		// The front resolved the leader itself; a residual not-leader
		// (walk exhausted mid-election) surfaces as an error, never as a
		// redirect the client cannot act on — it holds front addresses,
		// not member addresses.
		if resp.Status == wireclient.StatusNotLeader {
			return binErrf(fmt.Sprintf("group %d: no leader", g))
		}
		return resp

	case wireclient.OpMultiGet:
		return f.multiGet(req)

	default:
		return binErrf(fmt.Sprintf("bad op %d", req.Op))
	}
}

// multiGet partitions keys by owning group, issues one backend multiget
// per group concurrently, and reassembles the results positionally.
func (f *BinFront) multiGet(req wireclient.Request) wireclient.Response {
	if len(req.Keys) == 0 {
		return binErrf("multiget needs keys")
	}
	if len(req.Keys) > maxMultiGetKeys {
		return binErrf(fmt.Sprintf("at most %d keys per multiget", maxMultiGetKeys))
	}
	type part struct {
		keys []string
		pos  []int
	}
	parts := map[shard.GroupID]*part{}
	for i, k := range req.Keys {
		if k == "" {
			return binErrf("empty key in multiget")
		}
		g := f.router.Route(k)
		p := parts[g]
		if p == nil {
			p = &part{}
			parts[g] = p
		}
		p.keys = append(p.keys, k)
		p.pos = append(p.pos, i)
	}
	resp := wireclient.Response{
		Multi: make([][]byte, len(req.Keys)),
		Found: make([]bool, len(req.Keys)),
	}
	type res struct {
		g    shard.GroupID
		resp wireclient.Response
		err  error
	}
	results := make(chan res, len(parts))
	for g, p := range parts {
		go func(g shard.GroupID, p *part) {
			r, err := f.groups[g].Call(&wireclient.Request{Op: wireclient.OpMultiGet, Keys: p.keys})
			results <- res{g: g, resp: r, err: err}
		}(g, p)
	}
	for range parts {
		r := <-results
		p := parts[r.g]
		if r.err != nil {
			return binErrf(fmt.Sprintf("group %d: %v", r.g, r.err))
		}
		if r.resp.Status != wireclient.StatusOK {
			return binErrf(fmt.Sprintf("group %d: %s: %s", r.g, r.resp.Status, r.resp.Err))
		}
		if len(r.resp.Multi) != len(p.keys) {
			return binErrf(fmt.Sprintf("group %d: %d results for %d keys", r.g, len(r.resp.Multi), len(p.keys)))
		}
		for i, pos := range p.pos {
			resp.Multi[pos] = r.resp.Multi[i]
			resp.Found[pos] = r.resp.Found[i]
		}
	}
	return resp
}
