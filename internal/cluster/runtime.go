package cluster

import (
	"math/rand"
	"time"

	"dynatune/internal/netsim"
	"dynatune/internal/raft"
	"dynatune/internal/sim"
)

// nodeRT adapts one raft.Node to the simulated testbed: it implements
// raft.Runtime, serializes all of the node's work through a sim.Proc
// (modelling its CPU), routes messages over the netsim mesh, and applies
// the failure model (a paused node drops everything, like a paused
// container).
type nodeRT struct {
	c    *Cluster
	id   raft.ID
	node *raft.Node
	proc *sim.Proc

	timers map[timerKey]sim.Handle

	// tuned enables the tuning-overhead cost components.
	tuned bool
	// hbClass is the delivery class for heartbeats and their responses
	// (UDP for Dynatune's hybrid transport, TCP for stock etcd).
	hbClass netsim.Class

	paused bool

	// skewOffset / skewDrift skew this node's election timer (the clock-skew
	// fault): each armed delay is scaled by (1+drift) and shifted by offset.
	// Heartbeat timers are untouched — the fault models NTP error on the
	// failure detector, not a wholesale slowdown of the process.
	skewOffset time.Duration
	skewDrift  float64

	// stats
	msgsSent, msgsRecv uint64
}

type timerKey struct {
	kind raft.TimerKind
	peer raft.ID
}

var _ raft.Runtime = (*nodeRT)(nil)

func (rt *nodeRT) Now() time.Duration { return rt.c.eng.Now() }
func (rt *nodeRT) Rand() *rand.Rand   { return rt.c.eng.Rand() }

func (rt *nodeRT) Send(m raft.Message) {
	if rt.paused {
		return
	}
	rt.msgsSent++
	// Sending consumes CPU on this node (it delays this node's future
	// work) but does not delay the wire departure: the cost accrues to the
	// processor, the packet leaves now.
	rt.proc.Charge(rt.c.cost.sendCost(m, rt.tuned))
	cls := netsim.TCP
	if m.Type == raft.MsgHeartbeat || m.Type == raft.MsgHeartbeatResp {
		cls = rt.hbClass
	}
	rt.c.net.Send(int(rt.id-1), int(m.To-1), cls, m)
}

func (rt *nodeRT) deliver(m raft.Message) {
	if rt.paused {
		return // frozen container: sockets overflow, packets die
	}
	rt.msgsRecv++
	rt.proc.Exec(rt.c.cost.recvCost(m, rt.tuned), func() {
		rt.node.Step(m)
	})
}

func (rt *nodeRT) SetTimer(kind raft.TimerKind, peer raft.ID, at time.Duration) {
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.c.eng.Cancel(h)
	}
	if kind == raft.TimerElection && (rt.skewDrift != 0 || rt.skewOffset != 0) {
		now := rt.c.eng.Now()
		d := at - now
		if d < 0 {
			d = 0
		}
		d = time.Duration(float64(d)*(1+rt.skewDrift)) + rt.skewOffset
		if d < 0 {
			d = 0
		}
		at = now + d
	}
	rt.timers[key] = rt.c.eng.Schedule(at, func() {
		delete(rt.timers, key)
		if rt.paused {
			return
		}
		rt.proc.Exec(rt.c.cost.TimerFire, func() {
			rt.node.OnTimer(kind, peer)
		})
	})
}

func (rt *nodeRT) CancelTimer(kind raft.TimerKind, peer raft.ID) {
	key := timerKey{kind, peer}
	if h, ok := rt.timers[key]; ok {
		rt.c.eng.Cancel(h)
		delete(rt.timers, key)
	}
}

// pause freezes the node (the paper's `docker pause` failure).
func (rt *nodeRT) pause() {
	rt.paused = true
	rt.proc.Pause()
}

// resume unfreezes the node. Timers that fired while frozen are gone, so
// the election timer is re-armed; a stale leader will step down via
// check-quorum or on the first higher-term message.
func (rt *nodeRT) resume() {
	rt.paused = false
	rt.proc.Resume()
	rt.node.Start()
}

// dropTimers cancels and forgets every armed timer — a crashed process's
// timers must never drive its successor.
func (rt *nodeRT) dropTimers() {
	for key, h := range rt.timers {
		rt.c.eng.Cancel(h)
		delete(rt.timers, key)
	}
}
