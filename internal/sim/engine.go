// Package sim provides a deterministic discrete-event simulation engine
// with a virtual clock.
//
// The engine is the substrate on which the whole evaluation testbed runs:
// the network simulator schedules packet deliveries, node runtimes schedule
// Raft timers, and the failure injector schedules leader pauses — all as
// events on one totally ordered queue. Virtual time makes thousand-trial
// experiments run in milliseconds and removes clock-skew concerns entirely,
// which is the same reason the paper ran its measured experiments on a
// single physical host.
//
// Determinism: all randomness used by a simulation must come from the
// engine's Rand (seeded at construction), and events at equal timestamps
// fire in scheduling order (a monotonically increasing sequence number
// breaks ties). Given the same seed and inputs a run is bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid.
type Handle struct {
	ev *event
}

// Valid reports whether the handle refers to a scheduled (possibly already
// fired) event.
func (h Handle) Valid() bool { return h.ev != nil }

type event struct {
	at       time.Duration
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; a simulation runs entirely on the caller's goroutine.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// NewEngine returns an engine whose clock starts at zero and whose
// randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far (for instrumentation
// and runaway detection in tests).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled, including
// lazily cancelled ones.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past (at < Now) is a programming error and panics: the discrete-event
// model has no way to run an event before the current instant.
func (e *Engine) Schedule(at time.Duration, fn func()) Handle {
	if fn == nil {
		panic("sim: Schedule with nil fn")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return Handle{ev: ev}
}

// After registers fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an already
// fired or already cancelled event is a no-op. Cancellation is lazy: the
// event stays in the queue but is skipped when popped.
func (e *Engine) Cancel(h Handle) {
	if h.ev != nil {
		h.ev.canceled = true
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single next event, advancing the clock to its
// timestamp. It reports whether an event was executed (false means the
// queue is empty).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the
// engine is halted, or the next event lies strictly after until. The clock
// is left at the time of the last executed event (or advanced to until if
// the queue outlives the horizon).
func (e *Engine) Run(until time.Duration) {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunWhile executes events while cond returns true and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	e.halted = false
	for !e.halted && cond() {
		if !e.Step() {
			return
		}
	}
}

func (e *Engine) peek() *event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}
