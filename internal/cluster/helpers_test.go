package cluster

import (
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/workload"
)

func proposeCmd(seq uint64) []byte {
	return kv.Encode(kv.Command{Op: kv.OpPut, Client: 2, Seq: seq + 1, Key: "k", Value: []byte("v")})
}

func paperMiniRamp() workload.Ramp {
	return workload.Ramp{StartRPS: 100, StepRPS: 100, StepDuration: time.Second, Steps: 3}
}
