package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// The emitters render a Report with fully deterministic bytes: rows in
// grid order, metrics in measure order, floats through one shared
// formatter — so re-running a campaign (any worker count) and diffing
// the files is a valid determinism check, and baseline reports are
// stable artifacts.

// fnum renders a float compactly and deterministically (shortest
// round-trip representation).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV renders the report in long form: one row per (cell, metric),
// with one column per axis. Schema:
//
//	scenario,<axis>...,metric,better,samples,mean,std,min,max,p50,p90,p99,ci95
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := []string{"scenario"}
	for _, ax := range r.Axes {
		head = append(head, ax.Name)
	}
	head = append(head, "metric", "better", "samples", "mean", "std", "min", "max", "p50", "p90", "p99", "ci95")
	if err := cw.Write(head); err != nil {
		return err
	}
	for _, row := range r.Rows {
		for _, m := range row.Metrics {
			rec := []string{r.Scenario}
			rec = append(rec, row.Cell...)
			rec = append(rec, m.Name, m.Better, strconv.Itoa(m.Samples),
				fnum(m.Mean), fnum(m.Std), fnum(m.Min), fnum(m.Max),
				fnum(m.P50), fnum(m.P90), fnum(m.P99), fnum(m.CI95))
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the full report (the format ReadReport loads and the
// baseline gate diffs).
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadReport loads a JSON report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, err
	}
	return &r, nil
}
