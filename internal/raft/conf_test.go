package raft

import (
	"testing"
	"time"

	"dynatune/internal/sim"
)

func TestConfChangeCodecRoundtrip(t *testing.T) {
	for _, cc := range []ConfChange{
		{Op: ConfAddVoter, Node: 4},
		{Op: ConfAddLearner, Node: 9},
		{Op: ConfRemoveNode, Node: 1},
	} {
		got, err := DecodeConfChange(EncodeConfChange(cc))
		if err != nil {
			t.Fatalf("%+v: %v", cc, err)
		}
		if got != cc {
			t.Fatalf("roundtrip %+v -> %+v", cc, got)
		}
	}
}

func TestConfChangeCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeConfChange(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := DecodeConfChange(make([]byte, 9)); err == nil {
		t.Fatal("op 0 should fail")
	}
	bad := EncodeConfChange(ConfChange{Op: ConfAddVoter, Node: 1})
	bad[0] = 99
	if _, err := DecodeConfChange(bad); err == nil {
		t.Fatal("bad op should fail")
	}
}

// addNodeToCluster grows the harness with a fresh node that believes the
// membership already includes it, mirroring how an operator boots a
// joining member.
func (c *testCluster) addNode(id ID, voters []ID, learners []ID) *Node {
	rt := &testRuntime{
		eng:     c.eng,
		net:     c.net,
		id:      id,
		timers:  map[timerKey]sim.Handle{},
		hbClass: c.rts[0].hbClass,
	}
	node, err := NewNode(Config{
		ID:       id,
		Peers:    voters,
		Learners: learners,
		Runtime:  rt,
		Tuner:    NewStaticTuner(1000*time.Millisecond, 100*time.Millisecond),
		Tracer:   recordTracer{c},
		Apply:    func(ents []Entry) { rt.applied = append(rt.applied, ents...) },
	})
	if err != nil {
		panic(err)
	}
	rt.node = node
	c.rts = append(c.rts, rt)
	c.nodes = append(c.nodes, node)
	node.Start()
	return node
}

func TestConfChangeAddVoter(t *testing.T) {
	opts := defaultOpts()
	opts.n = 4 // node 4 exists in the mesh but starts outside the cluster
	opts.memberN = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	joiner := c.addNode(4, []ID{1, 2, 3, 4}, nil)

	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)

	if got := len(lead.Voters()); got != 4 {
		t.Fatalf("leader sees %d voters, want 4", got)
	}
	if lead.Quorum() != 3 {
		t.Fatalf("quorum = %d, want 3 of 4", lead.Quorum())
	}
	// The joiner replicates and can now vote: kill the leader and require
	// a successor (which may be the joiner).
	if _, err := lead.Propose([]byte("post-join")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	if joiner.Log().Committed() == 0 {
		t.Fatal("joiner never received the log")
	}
	c.crash(lead.ID())
	c.run(5 * time.Second)
	if c.leader() == nil {
		t.Fatal("no leader elected after failure with expanded membership")
	}
	if err := c.checkElectionSafety(); err != nil {
		t.Fatal(err)
	}
}

func TestConfChangeLearnerDoesNotVoteOrCampaign(t *testing.T) {
	opts := defaultOpts()
	opts.n = 4
	opts.memberN = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	learner := c.addNode(4, []ID{1, 2, 3}, []ID{4})
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddLearner, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)

	// Quorum unchanged: learners carry no vote.
	if lead.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2 (learner must not count)", lead.Quorum())
	}
	// The learner replicates.
	if _, err := lead.Propose([]byte("to-learner")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	if learner.Log().Committed() == 0 {
		t.Fatal("learner never replicated")
	}
	if !learner.IsLearner() {
		t.Fatal("joiner does not know it is a learner")
	}

	// Kill everyone but the learner: it must never become leader.
	c.crash(1)
	c.crash(2)
	c.crash(3)
	c.run(10 * time.Second)
	if learner.State() == StateLeader || learner.State() == StateCandidate {
		t.Fatalf("learner reached state %v", learner.State())
	}
}

func TestConfChangePromoteLearner(t *testing.T) {
	opts := defaultOpts()
	opts.n = 4
	opts.memberN = 3
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	c.addNode(4, []ID{1, 2, 3}, []ID{4})
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddLearner, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: 4}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if lead.Quorum() != 3 {
		t.Fatalf("quorum after promotion = %d, want 3", lead.Quorum())
	}
	if c.nodes[3].IsLearner() {
		t.Fatal("promoted node still believes it is a learner")
	}
	if len(lead.Learners()) != 0 {
		t.Fatalf("leader still lists learners: %v", lead.Learners())
	}
}

func TestConfChangeRemoveFollower(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: victim}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	if lead.Quorum() != 2 {
		t.Fatalf("quorum = %d, want 2 of 2", lead.Quorum())
	}
	if !c.nodes[victim-1].Removed() {
		t.Fatal("removed node does not know it was removed")
	}
	// The removed node must stay quiet: no campaigns disturbing the
	// remaining pair.
	termBefore := lead.Term()
	c.run(5 * time.Second)
	if c.leader() == nil || c.leader().Term() != termBefore {
		t.Fatalf("removal destabilized the cluster (term %d -> %v)", termBefore, c.leader())
	}
	// And the 2-node cluster still commits.
	if _, err := c.leader().Propose([]byte("after-removal")); err != nil {
		t.Fatal(err)
	}
	c.run(time.Second)
	if c.leader().Log().Committed() == 0 {
		t.Fatal("post-removal proposal never committed")
	}
}

func TestConfChangeRemoveLeaderStepsDown(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: lead.ID()}); err != nil {
		t.Fatal(err)
	}
	c.run(5 * time.Second)
	if lead.State() == StateLeader {
		t.Fatal("removed leader did not step down")
	}
	if !lead.Removed() {
		t.Fatal("removed leader does not know it was removed")
	}
	newLead := c.leader()
	if newLead == nil {
		t.Fatal("survivors elected no successor")
	}
	if newLead.ID() == lead.ID() {
		t.Fatal("removed node regained leadership")
	}
	if got := len(newLead.Voters()); got != 2 {
		t.Fatalf("successor sees %d voters, want 2", got)
	}
}

func TestConfChangePendingGuard(t *testing.T) {
	opts := defaultOpts()
	opts.n = 5
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	var targets []ID
	for _, n := range c.nodes {
		if n != lead {
			targets = append(targets, n.ID())
		}
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: targets[0]}); err != nil {
		t.Fatal(err)
	}
	// Immediately stacking a second change must be refused.
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: targets[1]}); err != ErrPendingConf {
		t.Fatalf("second change: err=%v, want ErrPendingConf", err)
	}
	c.run(2 * time.Second)
	// After the first applies, the next is allowed.
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: targets[1]}); err != nil {
		t.Fatalf("after apply: %v", err)
	}
}

func TestConfChangeValidation(t *testing.T) {
	c := newTestCluster(defaultOpts())
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: lead.ID()}); err == nil {
		t.Fatal("re-adding an existing voter should fail")
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: 99}); err == nil {
		t.Fatal("removing a non-member should fail")
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfAddLearner, Node: lead.ID()}); err == nil {
		t.Fatal("demoting a voter via add-learner should fail")
	}
	var follower *Node
	for _, n := range c.nodes {
		if n != lead {
			follower = n
			break
		}
	}
	if _, err := follower.ProposeConfChange(ConfChange{Op: ConfAddVoter, Node: 9}); err != ErrNotLeader {
		t.Fatalf("follower conf change: err=%v, want ErrNotLeader", err)
	}
}

func TestConfChangeSnapshotCarriesMembership(t *testing.T) {
	// Compact conf changes below the snapshot floor, then restore a node
	// from the snapshot: the membership must arrive via the snapshot.
	m := &fakePersister{}
	_ = m
	snap := Snapshot{Index: 10, Term: 2, Data: []byte("app"), Voters: []ID{1, 2, 3, 4}, Learners: []ID{5}}
	opts := defaultOpts()
	c := newTestCluster(opts)
	rt := c.rts[0]
	node, err := NewNode(Config{
		ID:      1,
		Peers:   []ID{1, 2, 3}, // stale config: snapshot must override
		Runtime: rt,
		Tuner:   NewStaticTuner(time.Second, 100*time.Millisecond),
		Restored: &Restored{
			HardState: HardState{Term: 2},
			Snapshot:  &snap,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(node.Voters()); got != 4 {
		t.Fatalf("restored voters %v, want 4", node.Voters())
	}
	if got := node.Learners(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("restored learners %v, want [5]", got)
	}
	if node.Quorum() != 3 {
		t.Fatalf("restored quorum %d, want 3", node.Quorum())
	}
}

func TestConfChangeSurvivesLeaderFailover(t *testing.T) {
	// A conf change committed just before the leader dies must hold on the
	// successor.
	opts := defaultOpts()
	opts.n = 5
	opts.seed = 7
	c := newTestCluster(opts)
	lead := c.waitLeader(5 * time.Second)
	if lead == nil {
		t.Fatal("no leader")
	}
	var victim ID
	for _, n := range c.nodes {
		if n != lead {
			victim = n.ID()
			break
		}
	}
	if _, err := lead.ProposeConfChange(ConfChange{Op: ConfRemoveNode, Node: victim}); err != nil {
		t.Fatal(err)
	}
	c.run(2 * time.Second)
	c.crash(lead.ID())
	c.run(10 * time.Second)
	newLead := c.leader()
	if newLead == nil {
		t.Fatal("no successor")
	}
	if got := len(newLead.Voters()); got != 4 {
		t.Fatalf("successor sees %d voters, want 4", got)
	}
	for _, v := range newLead.Voters() {
		if v == victim {
			t.Fatalf("removed node %d still a voter on the successor", victim)
		}
	}
}
