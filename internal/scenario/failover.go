package scenario

import (
	"fmt"
	"time"

	"dynatune/internal/kv"
	"dynatune/internal/raft"
)

// This file is the generic sharded failover-trial runner: every repeated
// fault experiment — leader pause (Fig. 4/8), symmetric and asymmetric
// partitions, crash+restart with persistence, planned leadership
// transfer — runs through runFailover, which splits the trial count into
// engine-sized shards, derives each shard's seed from the shard index
// alone, executes the shards on Env.RunShards (cluster.RunSharded) and
// merges in shard order. The per-trial bodies are verbatim ports of the
// historical cluster loops, so for a fixed seed the golden figure
// summaries are byte-identical to the pre-scenario code.

// PhaseJitterWindow randomizes the failure instant within one baseline
// heartbeat period, as the paper's scripts did. It must equal
// cluster.BaselineH — the byte-identical-to-legacy guarantee depends on
// it, and since the import must point from cluster to this package, a
// test on the cluster side pins the equality.
const PhaseJitterWindow = 100 * time.Millisecond

// failoverShard is one shard's raw output: the samples plus the
// randomized-timeout sums, which merge exactly (unlike a per-shard mean).
type failoverShard struct {
	FailoverResult
	randSum float64
	randN   int
}

func runFailover(spec Spec, env Env) *FailoverResult {
	kind := spec.TrialFault()
	var counts []int
	if kind == FaultCrashLeader {
		// Crash-recovery historically runs every trial on one durable
		// cluster (the restarted node must carry its store across trials),
		// so it stays a single shard on the experiment seed.
		counts = []int{spec.Trials}
	} else {
		counts = ShardCounts(spec.Trials, TrialShardSize)
	}
	parts := make([]failoverShard, len(counts))
	env.runShards(len(counts), func(s int) {
		c := env.NewCluster(ShardSeed(spec.Seed, s))
		switch kind {
		case FaultTransferLeader:
			parts[s] = runTransferShard(c, counts[s], spec.Settle.D())
		case FaultCrashLeader:
			parts[s] = runCrashShard(c, counts[s], spec.Settle.D(), spec.Downtime.D())
		default:
			parts[s] = runElectionShard(c, counts[s], spec.Settle.D(), kind)
		}
	})
	res := &FailoverResult{Variant: env.variantName(spec), Trials: spec.Trials}
	var randSum float64
	randN := 0
	for _, p := range parts {
		res.DetectionMs = append(res.DetectionMs, p.DetectionMs...)
		res.OTSMs = append(res.OTSMs, p.OTSMs...)
		res.HandoverMs = append(res.HandoverMs, p.HandoverMs...)
		res.RetuneMs = append(res.RetuneMs, p.RetuneMs...)
		res.SplitVoteRounds += p.SplitVoteRounds
		res.FailedTrials += p.FailedTrials
		res.ReplayEntries += p.ReplayEntries // single crash shard; others zero
		randSum += p.randSum
		randN += p.randN
	}
	if randN > 0 {
		res.MeanRandTimeoutMs = randSum / float64(randN)
	}
	return res
}

// runElectionShard repeatedly kills the leader with the selected injector
// and measures detection (first follower timeout) and OTS (new leader
// elected) — the historical sequential election loop, with the asymmetric
// partition as a third injector alongside pause and symmetric partition.
func runElectionShard(c Cluster, trials int, settle time.Duration, kind FaultKind) failoverShard {
	c.Start()
	res := failoverShard{FailoverResult: FailoverResult{Trials: trials}}
	eng := c.Engine()
	rec := c.Recorder()
	rng := eng.Rand()
	var randSum float64
	randN := 0

	const trialTimeout = 60 * time.Second
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		if c.Leader() == nil {
			// Settle disturbed leadership (possible under loss); retry.
			res.FailedTrials++
			continue
		}
		// Randomize the failure phase within a heartbeat period.
		c.Run(time.Duration(rng.Int63n(int64(PhaseJitterWindow))))
		if c.Leader() == nil {
			res.FailedTrials++
			continue
		}
		// Sample follower randomized timeouts at the failure instant.
		for _, d := range c.FollowerRandomizedTimeouts() {
			randSum += float64(d) / float64(time.Millisecond)
			randN++
		}
		var old raft.ID
		var failAt time.Duration
		switch kind {
		case FaultPauseLeader:
			old, failAt = c.PauseLeader()
		case FaultPartitionLeader:
			lead := c.Leader()
			old, failAt = lead.ID(), eng.Now()
			c.Network().PartitionNode(int(old-1), true)
			// The isolated leader keeps "reigning" in its own view until
			// check-quorum; end its reign for OTS accounting at the cut.
			rec.MarkNodeDown(failAt, old)
		case FaultAsymPartitionLeader:
			lead := c.Leader()
			old, failAt = lead.ID(), eng.Now()
			// Deaf leader: its heartbeats still reach the followers, so
			// nothing times out until check-quorum makes it abdicate.
			c.Network().SetNodeInbound(int(old-1), true)
			rec.MarkNodeDown(failAt, old)
		}

		splitBefore := rec.CountKind(raft.EventSplitVote, 0, failAt)
		deadline := eng.Now() + trialTimeout
		var otsD time.Duration
		elected := false
		for eng.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if d, _, ok := rec.FirstElectionAfter(failAt); ok {
				otsD, elected = d, true
				break
			}
		}
		recover := func() {
			switch kind {
			case FaultPauseLeader:
				c.Resume(old)
			case FaultPartitionLeader:
				c.Network().PartitionNode(int(old-1), false)
			case FaultAsymPartitionLeader:
				c.Network().SetNodeInbound(int(old-1), false)
			}
		}
		if !elected {
			res.FailedTrials++
			recover()
			c.Run(2 * time.Second)
			rec.Reset()
			continue
		}
		if det, ok := rec.FirstDetectionAfter(failAt); ok {
			res.DetectionMs = append(res.DetectionMs, float64(det)/float64(time.Millisecond))
		}
		res.OTSMs = append(res.OTSMs, float64(otsD)/float64(time.Millisecond))
		res.SplitVoteRounds += rec.CountKind(raft.EventSplitVote, failAt, eng.Now()) - splitBefore

		recover()
		c.Run(2 * time.Second)
		rec.Reset() // keep the event log O(trial)
		c.CompactAll(64)
	}
	res.randSum, res.randN = randSum, randN
	return res
}

// runTransferShard measures planned-maintenance handovers: leadership is
// transferred to the next node around the ring and the out-of-service
// window is bounded by one RTT rather than a detection timeout.
func runTransferShard(c Cluster, trials int, settle time.Duration) failoverShard {
	c.Start()
	res := failoverShard{FailoverResult: FailoverResult{Trials: trials}}
	rec := c.Recorder()
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		lead = c.Leader()
		if lead == nil {
			res.FailedTrials++
			continue
		}
		// Pick the next node around the ring as the target.
		target := raft.ID(int(lead.ID())%c.N() + 1)
		start := c.Now()
		if err := lead.TransferLeadership(target); err != nil {
			res.FailedTrials++
			continue
		}
		deadline := c.Now() + 30*time.Second
		done := false
		for c.Now() < deadline {
			c.Run(5 * time.Millisecond)
			if d, who, ok := rec.FirstElectionAfter(start); ok {
				if who != target {
					break // transfer lost a race; discard the trial
				}
				res.HandoverMs = append(res.HandoverMs, float64(d)/float64(time.Millisecond))
				done = true
				break
			}
		}
		if !done {
			res.FailedTrials++
		}
		c.Run(time.Second)
		rec.Reset()
	}
	return res
}

// runCrashShard crash-restarts the leader repeatedly: the process dies
// (volatile state lost), stays down for downtime, then recovers from its
// durable store and rejoins; the restarted node's tuner warm-up is timed.
func runCrashShard(c Cluster, trials int, settle, downtime time.Duration) failoverShard {
	c.Start()
	res := failoverShard{FailoverResult: FailoverResult{Trials: trials}}
	eng := c.Engine()
	rec := c.Recorder()
	var replaySum float64
	replayN := 0

	const trialTimeout = 60 * time.Second
	for t := 0; t < trials; t++ {
		lead := c.WaitLeader(30 * time.Second)
		if lead == nil {
			res.FailedTrials++
			continue
		}
		c.Run(settle)
		if c.Leader() == nil {
			res.FailedTrials++
			continue
		}
		// Keep some replicated state flowing so recovery has work to do.
		if err := proposePut(c.Leader(), 1, uint64(t+1), "trial", []byte(fmt.Sprintf("%d", t))); err == nil {
			c.Run(100 * time.Millisecond)
		}

		old, failAt := c.CrashLeader()
		deadline := eng.Now() + trialTimeout
		elected := false
		var otsD time.Duration
		for eng.Now() < deadline {
			c.Run(20 * time.Millisecond)
			if d, _, ok := rec.FirstElectionAfter(failAt); ok {
				otsD, elected = d, true
				break
			}
		}
		if !elected {
			res.FailedTrials++
			c.Restart(old)
			c.Run(2 * time.Second)
			rec.Reset()
			continue
		}
		if det, ok := rec.FirstDetectionAfter(failAt); ok {
			res.DetectionMs = append(res.DetectionMs, float64(det)/float64(time.Millisecond))
		}
		res.OTSMs = append(res.OTSMs, float64(otsD)/float64(time.Millisecond))

		c.Run(downtime)
		restored := c.Persister(old).Restored()
		if restored != nil {
			replaySum += float64(len(restored.Entries))
			replayN++
		}
		restartAt := eng.Now()
		c.Restart(old)

		// Time the rejoined node's tuner warm-up (Dynatune only).
		if tn := c.DynatuneTuner(old); tn != nil {
			warmDeadline := eng.Now() + 30*time.Second
			for eng.Now() < warmDeadline {
				c.Run(20 * time.Millisecond)
				if tn.Tuned() {
					res.RetuneMs = append(res.RetuneMs,
						float64(eng.Now()-restartAt)/float64(time.Millisecond))
					break
				}
			}
		} else {
			c.Run(2 * time.Second)
		}
		rec.Reset()
		c.CompactAll(64)
	}
	if replayN > 0 {
		res.ReplayEntries = replaySum / float64(replayN)
	}
	return res
}

// proposePut proposes one kv put through the leader (the state machine
// decodes every normal entry, so experiments must write real commands).
func proposePut(lead *raft.Node, client, seq uint64, key string, val []byte) error {
	_, err := lead.Propose(kv.Encode(kv.Command{Op: kv.OpPut, Client: client, Seq: seq, Key: key, Value: val}))
	return err
}
