package shard

import (
	"fmt"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/workload"
)

// RampResult aggregates one sharded ramp run.
type RampResult struct {
	Groups int
	Points []StepResult
	// AggThroughput is the mean aggregate committed-ops rate over the
	// whole ramp (completed / ramp duration) — the scaling benchmark's
	// headline metric.
	AggThroughput float64
	// PeakThroughput is the best single step.
	PeakThroughput float64
	// P99Ms is the tail latency over the whole ramp.
	P99Ms         float64
	Completed     int
	ProposeErrors uint64
	// Lost counts proposals overwritten by a newer leader before
	// committing; Pending counts arrivals never proposed (stuck behind a
	// leaderless group at run end). Without them a leader-churn
	// throughput dip is indistinguishable from capacity loss.
	Lost    uint64
	Pending int
}

// RunRamp runs one keyed open-loop ramp against a sharded cluster built
// from opts: start all groups, wait for every leader, settle, drive the
// ramp, drain, aggregate. It mirrors cluster.RunThroughputRamp for the
// multi-group world.
func RunRamp(opts Options, ramp workload.Ramp, load LoadOptions) RampResult {
	s := New(opts)
	lg := NewLoadGen(s, ramp, load)
	s.Start()
	if !s.WaitLeaders(30 * time.Second) {
		panic(fmt.Sprintf("shard: not all of %d groups elected a leader", s.Groups()))
	}
	s.Run(3 * time.Second) // settle + tuner warmup
	lg.Start()
	s.Run(ramp.Duration() + 5*time.Second) // drain tail

	res := RampResult{
		Groups:        s.Groups(),
		Points:        lg.Results(),
		P99Ms:         lg.P99Ms(),
		Completed:     lg.TotalCompleted(),
		ProposeErrors: lg.ProposeErrors(),
		Lost:          lg.Lost(),
		Pending:       lg.Pending(),
	}
	res.AggThroughput = float64(res.Completed) / ramp.Duration().Seconds()
	for _, p := range res.Points {
		if p.ThroughputRS > res.PeakThroughput {
			res.PeakThroughput = p.ThroughputRS
		}
	}
	return res
}

// RunRampReps repeats the sharded ramp across reps derived seeds on the
// parallel trial runner (each repetition is a full independent multi-group
// simulation on its own engine) and returns the per-rep results in seed
// order — deterministic for any worker count.
func RunRampReps(opts Options, ramp workload.Ramp, load LoadOptions, reps int) []RampResult {
	return cluster.RunSharded(cluster.TrialWorkers(), reps, func(rep int) RampResult {
		o := opts
		if rep > 0 {
			o.Seed = o.withDefaults().Seed + int64(rep)*1000003
		}
		return RunRamp(o, ramp, load)
	})
}

// MeanAggThroughput averages the headline aggregate-throughput metric over
// repetitions.
func MeanAggThroughput(results []RampResult) float64 {
	if len(results) == 0 {
		return 0
	}
	var sum float64
	for _, r := range results {
		sum += r.AggThroughput
	}
	return sum / float64(len(results))
}
