package cluster

import (
	"fmt"
	"testing"
	"time"

	"dynatune/internal/dynatune"
	"dynatune/internal/workload"
)

// The golden strings below were captured from the experiment runners as
// they shipped before the allocation-free engine rewrite and the parallel
// trial runner. They pin that, for a fixed seed, the refactor changes
// nothing observable: same trials succeed, same samples, same summaries to
// the microsecond. Trial counts stay within one runner shard so the
// sequential shard body — which is byte-identical to the old sequential
// runners — produces them.

func electionFingerprint(res ElectionResult) string {
	det, ots := res.Summary()
	return fmt.Sprintf("n=%d/%d det=%.6f/%.6f ots=%.6f/%.6f rand=%.6f split=%d failed=%d",
		len(res.DetectionMs), len(res.OTSMs), det.Mean, det.P99, ots.Mean, ots.P99,
		res.MeanRandTimeoutMs, res.SplitVoteRounds, res.FailedTrials)
}

const (
	goldenRaftElections     = "n=10/10 det=1184.494167/1488.969720 ots=1385.221193/1690.389227 rand=1515.754110 split=0 failed=0"
	goldenDynatuneElections = "n=10/10 det=127.260055/161.603909 ots=1401.907059/2057.647634 rand=161.265327 split=4 failed=0"
	goldenTransfers         = "n=10 failed=0 147.984547 148.934541 150.058138 148.030553 151.545019 145.931394 147.442209 147.625909 155.071104 149.955285"
	goldenRamp              = "[2000 1894.500000 1.000000 203.202141][4000 3899.000000 0.000000 203.430166]"
)

func TestGoldenElectionSummaries(t *testing.T) {
	raft := RunElectionTrials(Options{N: 5, Seed: 31, Variant: VariantRaft(), Profile: stableNet(100)}, 10, 3*time.Second)
	if got := electionFingerprint(raft); got != goldenRaftElections {
		t.Errorf("Raft elections diverged:\n got %q\nwant %q", got, goldenRaftElections)
	}
	dyn := RunElectionTrials(Options{N: 5, Seed: 33, Variant: VariantDynatune(dynatune.Options{}), Profile: stableNet(100)}, 10, 4*time.Second)
	if got := electionFingerprint(dyn); got != goldenDynatuneElections {
		t.Errorf("Dynatune elections diverged:\n got %q\nwant %q", got, goldenDynatuneElections)
	}
}

func TestGoldenTransferSummaries(t *testing.T) {
	res := RunTransferTrials(Options{N: 5, Seed: 59, Variant: VariantRaft(), Profile: stableNet(100)}, 10, time.Second)
	s := fmt.Sprintf("n=%d failed=%d", len(res.HandoverMs), res.FailedTrials)
	for _, v := range res.HandoverMs {
		s += fmt.Sprintf(" %.6f", v)
	}
	if s != goldenTransfers {
		t.Errorf("transfers diverged:\n got %q\nwant %q", s, goldenTransfers)
	}
}

func TestGoldenThroughputRamp(t *testing.T) {
	ramp := workload.Ramp{StartRPS: 2000, StepRPS: 2000, StepDuration: 2 * time.Second, Steps: 2}
	pts := RunThroughputRamp(Options{N: 5, Seed: 43, Variant: VariantRaft(), Profile: stableNet(100)}, ramp, 2)
	s := ""
	for _, p := range pts {
		s += fmt.Sprintf("[%d %.6f %.6f %.6f]", p.OfferedRPS, p.ThroughputRS, p.ThroughputStd, p.LatencyMs)
	}
	if s != goldenRamp {
		t.Errorf("ramp diverged:\n got %q\nwant %q", s, goldenRamp)
	}
}
