package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPendingExcludesCancelled pins the Pending() fix: lazily cancelled
// events still occupy the queue but are not pending.
func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	var hs []Handle
	for i := 0; i < 10; i++ {
		hs = append(hs, e.Schedule(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", e.Pending())
	}
	for i := 0; i < 4; i++ {
		e.Cancel(hs[i])
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d after 4 cancels, want 6 (cancelled events must not count)", e.Pending())
	}
	if e.queueLen() != 10 {
		t.Fatalf("queueLen() = %d, want 10 (cancellation is lazy)", e.queueLen())
	}
	if e.Cancelled() != 4 {
		t.Fatalf("Cancelled() = %d, want 4", e.Cancelled())
	}
	// Double-cancel must not double-count.
	e.Cancel(hs[0])
	if e.Pending() != 6 || e.Cancelled() != 4 {
		t.Fatalf("double cancel changed counters: pending %d cancelled %d", e.Pending(), e.Cancelled())
	}
	e.Run(time.Second)
	if e.Pending() != 0 || e.Fired() != 6 {
		t.Fatalf("after run: pending %d fired %d", e.Pending(), e.Fired())
	}
}

// TestHandleGenerationCancelAfterFire pins that cancelling a handle whose
// event already fired never touches the event that now occupies the
// recycled slot.
func TestHandleGenerationCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	fired1, fired2 := false, false
	h1 := e.Schedule(time.Millisecond, func() { fired1 = true })
	e.Run(10 * time.Millisecond) // h1 fires; its slot returns to the free list
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	// The next schedule recycles h1's slot (single-event engine).
	h2 := e.Schedule(20*time.Millisecond, func() { fired2 = true })
	e.Cancel(h1) // stale: must NOT cancel the second event
	e.Run(time.Second)
	if !fired2 {
		t.Fatal("cancel of a fired handle killed the event reusing its slot")
	}
	// And cancelling h2 after it fired is equally inert.
	e.Cancel(h2)
	if e.Cancelled() != 0 {
		t.Fatalf("stale cancels counted: %d", e.Cancelled())
	}
}

// TestHandleGenerationCancelAfterReuse pins the cancel-after-cancel-after-
// reuse chain: a handle cancelled once, whose slot was then reused, must
// stay inert forever.
func TestHandleGenerationCancelAfterReuse(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(time.Millisecond, func() { t.Error("cancelled event fired") })
	e.Cancel(h)
	e.Run(10 * time.Millisecond) // pops the dead entry, frees the slot
	ok := false
	e.Schedule(20*time.Millisecond, func() { ok = true }) // reuses the slot
	e.Cancel(h)                                           // stale generation: no-op
	e.Run(time.Second)
	if !ok {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
}

// TestCompactionPurgesCancelledBacklog drives the raft-timer churn pattern
// past the compaction threshold and checks that dead entries are evicted
// eagerly instead of accumulating until their (far-future) timestamps pop.
func TestCompactionPurgesCancelledBacklog(t *testing.T) {
	e := NewEngine(1)
	// One far-future live event, then churn: schedule + immediately cancel.
	fired := false
	e.Schedule(time.Hour, func() { fired = true })
	for i := 0; i < 10*compactMinCancelled; i++ {
		h := e.Schedule(time.Hour, func() {})
		e.Cancel(h)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Eager compaction must have bounded the raw queue well below the
	// churn volume (policy: cancelled fraction may not exceed ~half).
	if q := e.queueLen(); q > compactMinCancelled+1 {
		t.Fatalf("queueLen() = %d after churn — compaction did not run", q)
	}
	e.Run(2 * time.Hour)
	if !fired || e.Fired() != 1 {
		t.Fatalf("live event lost by compaction: fired=%v count=%d", fired, e.Fired())
	}
}

// TestCompactionPreservesOrdering interleaves cancels with keeps across
// many timestamps and checks the survivors still fire in order after a
// forced compaction.
func TestCompactionPreservesOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	n := 4 * compactMinCancelled
	for i := 0; i < n; i++ {
		i := i
		h := e.Schedule(time.Duration(n-i)*time.Millisecond, func() { got = append(got, n-i) })
		if i%2 == 0 {
			e.Cancel(h)
		}
	}
	e.Run(time.Hour)
	if len(got) != n/2 {
		t.Fatalf("fired %d, want %d", len(got), n/2)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order after compaction at %d: %d then %d", i, got[i-1], got[i])
		}
	}
}

// Property: equal-timestamp events fire strictly in scheduling order
// (FIFO), for any batch size and any interleaving with other timestamps.
func TestPropertyEqualTimestampFIFO(t *testing.T) {
	f := func(batchSizes []uint8) bool {
		e := NewEngine(3)
		type fireRec struct{ batch, k int }
		var got []fireRec
		for b, sz := range batchSizes {
			at := time.Duration(sz%7) * time.Millisecond // many collisions across batches
			for k := 0; k < int(sz%5)+1; k++ {
				b, k := b, k
				e.Schedule(at, func() { got = append(got, fireRec{b, k}) })
			}
		}
		e.Run(time.Second)
		// Within each batch (same timestamp by construction) order must be
		// ascending in k; across batches at the same timestamp, ascending b.
		seen := map[int]fireRec{} // timestamp bucket → last fired
		for _, r := range got {
			at := int(batchSizes[r.batch] % 7)
			if last, ok := seen[at]; ok {
				if r.batch < last.batch || (r.batch == last.batch && r.k <= last.k) {
					return false
				}
			}
			seen[at] = r
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaReuseIsAllocationFree pins the tentpole property: steady-state
// schedule/fire cycles allocate nothing once the arena has warmed up.
func TestArenaReuseIsAllocationFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ { // warm the arena and heap
		e.Schedule(e.Now()+time.Microsecond, fn)
		e.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per op, want 0", allocs)
	}
}

// TestTimerChurnIsAllocationFree pins the set/cancel pattern raft timers
// follow.
func TestTimerChurnIsAllocationFree(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	var h Handle
	for i := 0; i < 1024; i++ {
		e.Cancel(h)
		h = e.Schedule(e.Now()+time.Millisecond, fn)
		if i%8 == 0 {
			e.Step()
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel(h)
		h = e.Schedule(e.Now()+time.Millisecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("timer churn allocates %.1f objects per op, want 0", allocs)
	}
}
