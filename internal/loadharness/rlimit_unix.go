//go:build unix

package loadharness

import "syscall"

// RaiseFDLimit lifts RLIMIT_NOFILE's soft limit to at least want
// (bounded by the hard limit) and returns the resulting soft limit.
// 100k loopback connections cost ~200k descriptors (both ends live in
// this process when the fleet is in-process), far past typical defaults.
func RaiseFDLimit(want uint64) (uint64, error) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	if lim.Cur >= want {
		return lim.Cur, nil
	}
	if want > lim.Max {
		// Root may raise the hard limit too (up to fs/nr_open); try, and
		// fall back to the existing hard limit if refused.
		try := lim
		try.Cur, try.Max = want, want
		if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try); err == nil {
			return want, nil
		}
	}
	target := want
	if target > lim.Max {
		target = lim.Max
	}
	lim.Cur = target
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0, err
	}
	return lim.Cur, nil
}
