// Package kv implements the replicated key-value state machine standing in
// for etcd: a binary command codec, a deterministic store that applies
// committed Raft entries in order, and idempotence bookkeeping via
// (client, sequence) request IDs.
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"dynatune/internal/raft"
)

// Op is a command type.
type Op uint8

const (
	// OpPut sets a key.
	OpPut Op = iota + 1
	// OpDelete removes a key.
	OpDelete
	// OpNoop does nothing (useful for barriers/leases).
	OpNoop
	// OpInstallSpan merges a keyspan export (EncodeSpan) into the store —
	// the bulk phase of snapshot-shipped shard migration: one replicated
	// command installs a whole chunk of keys instead of one key each.
	OpInstallSpan
	// OpDeleteSpan removes every key named in a span payload (the values
	// are ignored) — the cleanup counterpart of OpInstallSpan, retiring a
	// migrated span's source copies in O(chunks) commands.
	OpDeleteSpan
	// OpBatch carries several independent client commands in one
	// replicated entry — the server-side group-commit unit. The Value
	// holds an EncodeOps payload; each inner command keeps its own
	// (Client, Seq) pair, so the idempotence table dedupes retried
	// sub-commands exactly as if they had been replicated one entry each.
	// The outer command's Client/Seq are ignored (encode them as zero).
	// Batches never nest: DecodeOps rejects an inner OpBatch.
	OpBatch
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpNoop:
		return "noop"
	case OpInstallSpan:
		return "install-span"
	case OpDeleteSpan:
		return "delete-span"
	case OpBatch:
		return "batch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Command is one replicated mutation. Reads are served locally from the
// leader (linearizable reads via read-index are out of scope, as they are
// for the paper).
type Command struct {
	Op     Op
	Client uint64 // issuing client, for idempotence
	Seq    uint64 // client-local sequence number
	Key    string
	Value  []byte
}

// ErrCorrupt reports an undecodable command.
var ErrCorrupt = errors.New("kv: corrupt command encoding")

// Encode serializes c into a compact binary form:
// op(1) client(8) seq(8) keyLen(4) key valLen(4) val.
func Encode(c Command) []byte {
	buf := make([]byte, 0, 1+8+8+4+len(c.Key)+4+len(c.Value))
	buf = append(buf, byte(c.Op))
	buf = binary.BigEndian.AppendUint64(buf, c.Client)
	buf = binary.BigEndian.AppendUint64(buf, c.Seq)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Key)))
	buf = append(buf, c.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Value)))
	buf = append(buf, c.Value...)
	return buf
}

// Decode parses a command encoded by Encode.
func Decode(b []byte) (Command, error) {
	var c Command
	if len(b) < 1+8+8+4 {
		return c, ErrCorrupt
	}
	c.Op = Op(b[0])
	if c.Op < OpPut || c.Op > OpBatch {
		return c, fmt.Errorf("%w: bad op %d", ErrCorrupt, b[0])
	}
	c.Client = binary.BigEndian.Uint64(b[1:])
	c.Seq = binary.BigEndian.Uint64(b[9:])
	rest := b[17:]
	keyLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) < keyLen+4 {
		return c, ErrCorrupt
	}
	c.Key = string(rest[:keyLen])
	rest = rest[keyLen:]
	valLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) != valLen {
		return c, ErrCorrupt
	}
	if valLen > 0 {
		c.Value = append([]byte(nil), rest...)
	}
	return c, nil
}

// Store is the deterministic state machine. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	data    map[string][]byte
	applied uint64 // last applied log index
	// lastSeq tracks the highest applied sequence per client, making
	// retried commands idempotent.
	lastSeq map[uint64]uint64

	applies uint64 // total commands applied (instrumentation)
	dupes   uint64 // commands skipped as duplicates
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    make(map[string][]byte),
		lastSeq: make(map[uint64]uint64),
	}
}

// Apply consumes committed Raft entries in order. Entries with nil Data
// (leader no-ops) are skipped; undecodable entries panic, since a
// replicated corrupt entry means divergence.
func (s *Store) Apply(ents []raft.Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range ents {
		if e.Index <= s.applied {
			continue // replay after restart
		}
		s.applied = e.Index
		if e.Data == nil || e.Type != raft.EntryNormal {
			// Leader no-ops and configuration changes are raft-internal.
			continue
		}
		c, err := Decode(e.Data)
		if err != nil {
			panic(fmt.Sprintf("kv: entry %d: %v", e.Index, err))
		}
		if c.Op == OpBatch {
			// A group-commit entry: each inner command applies — and
			// dedupes — independently, exactly as if replicated alone.
			cmds, err := DecodeOps(c.Value)
			if err != nil {
				panic(fmt.Sprintf("kv: entry %d: batch: %v", e.Index, err))
			}
			for _, sub := range cmds {
				s.applyCmd(e.Index, sub)
			}
			continue
		}
		s.applyCmd(e.Index, c)
	}
}

// applyCmd applies one non-batch command under s.mu, running the
// per-client idempotence check first.
func (s *Store) applyCmd(index uint64, c Command) {
	if c.Client != 0 && c.Seq != 0 && c.Seq <= s.lastSeq[c.Client] {
		s.dupes++
		return
	}
	if c.Client != 0 {
		s.lastSeq[c.Client] = c.Seq
	}
	switch c.Op {
	case OpPut:
		s.data[c.Key] = c.Value
	case OpDelete:
		delete(s.data, c.Key)
	case OpNoop:
	case OpInstallSpan:
		pairs, err := DecodeSpan(c.Value)
		if err != nil {
			panic(fmt.Sprintf("kv: entry %d: span: %v", index, err))
		}
		for _, p := range pairs {
			s.data[p.Key] = p.Value
		}
	case OpDeleteSpan:
		pairs, err := DecodeSpan(c.Value)
		if err != nil {
			panic(fmt.Sprintf("kv: entry %d: span: %v", index, err))
		}
		for _, p := range pairs {
			delete(s.data, p.Key)
		}
	}
	s.applies++
}

// LastSeq returns the highest applied sequence for client (0 when the
// client has none). It lets a synchronous client confirm whether its
// command survived a leader change: unlike inspecting the log at the
// proposed index, the idempotence table rides in snapshots, so the answer
// stays valid even after the index was compacted away.
func (s *Store) LastSeq(client uint64) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastSeq[client]
}

// Get returns the value for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	return v, ok
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// AppliedIndex returns the last applied log index.
func (s *Store) AppliedIndex() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Applies returns the number of commands applied (excluding duplicates).
func (s *Store) Applies() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applies
}

// Dupes returns the number of duplicate commands suppressed.
func (s *Store) Dupes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dupes
}

// SortedKeys returns every key in ascending order. The shard layer's
// migration drain iterates the store through this: a sorted export makes
// the scan order — and therefore the batched-propose order, the log
// contents, and every downstream measurement — a pure function of the
// store state, where ranging the map directly would leak Go's randomized
// map order into the simulation.
func (s *Store) SortedKeys() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.data))
	for k := range s.data {
		out = append(out, k)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Snapshot returns a deep copy of the data (testing and state-transfer
// scaffolding).
func (s *Store) Snapshot() map[string][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string][]byte, len(s.data))
	for k, v := range s.data {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// MarshalSnapshot serializes the full store state (data, idempotence
// table, applied index) for InstallSnapshot transfers. The format is the
// command codec's style: counts followed by length-prefixed pairs.
func (s *Store) MarshalSnapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf := binary.BigEndian.AppendUint64(nil, s.applied)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.data)))
	for k, v := range s.data {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(k)))
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v)))
		buf = append(buf, v...)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.lastSeq)))
	for c, seq := range s.lastSeq {
		buf = binary.BigEndian.AppendUint64(buf, c)
		buf = binary.BigEndian.AppendUint64(buf, seq)
	}
	return buf
}

// RestoreSnapshot replaces the store's state with a snapshot produced by
// MarshalSnapshot; index is the snapshot's last included log index and
// becomes the applied index (overriding the marshalled one, which came
// from the leader's clock of the same log anyway).
func (s *Store) RestoreSnapshot(b []byte, index uint64) error {
	data := make(map[string][]byte)
	lastSeq := make(map[uint64]uint64)
	if len(b) < 12 {
		return ErrCorrupt
	}
	b = b[8:] // marshalled applied index superseded by the argument
	nData := binary.BigEndian.Uint32(b)
	b = b[4:]
	for i := uint32(0); i < nData; i++ {
		if len(b) < 4 {
			return ErrCorrupt
		}
		klen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < klen+4 {
			return ErrCorrupt
		}
		k := string(b[:klen])
		b = b[klen:]
		vlen := binary.BigEndian.Uint32(b)
		b = b[4:]
		if uint32(len(b)) < vlen {
			return ErrCorrupt
		}
		data[k] = append([]byte(nil), b[:vlen]...)
		b = b[vlen:]
	}
	if len(b) < 4 {
		return ErrCorrupt
	}
	nSeq := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) != uint32(nSeq)*16 {
		return ErrCorrupt
	}
	for i := uint32(0); i < nSeq; i++ {
		lastSeq[binary.BigEndian.Uint64(b)] = binary.BigEndian.Uint64(b[8:])
		b = b[16:]
	}
	s.mu.Lock()
	s.data = data
	s.lastSeq = lastSeq
	s.applied = index
	s.mu.Unlock()
	return nil
}

// Equal reports whether two stores hold identical data (divergence checks
// in tests).
func (s *Store) Equal(other *Store) bool {
	a, b := s.Snapshot(), other.Snapshot()
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if string(b[k]) != string(v) {
			return false
		}
	}
	return true
}

// SeqValue encodes a client sequence number as an 8-byte big-endian
// value. Load generators running under the invariant checker write these
// instead of opaque payloads so a later read reveals *which* acked write
// it observes — the staleness and durability invariants compare the
// decoded sequence against the highest acked one for the key.
func SeqValue(seq uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, seq)
	return b
}

// SeqOf decodes a SeqValue-encoded value. It reports false for values of
// any other shape (e.g. direct Puts or migration-copied fixtures), which
// the invariant probes skip rather than misread.
func SeqOf(v []byte) (uint64, bool) {
	if len(v) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(v), true
}
