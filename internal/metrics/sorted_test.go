package metrics

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSummarizeSortedMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	want := Summarize(xs)
	got := SummarizeSorted(SortedCopy(xs))
	if got != want {
		t.Fatalf("SummarizeSorted diverged:\n got %+v\nwant %+v", got, want)
	}
	// And it must not have mutated the caller's slice order.
	if sort.Float64sAreSorted(xs) {
		t.Fatal("input was mutated (or the rng is broken)")
	}
}

func TestQuantilesOneSortManyQuantiles(t *testing.T) {
	xs := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	qs := Quantiles(xs, 0, 0.5, 0.9, 1)
	want := []float64{Quantile(xs, 0), Quantile(xs, 0.5), Quantile(xs, 0.9), Quantile(xs, 1)}
	for i := range qs {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles[%d] = %v, want %v", i, qs[i], want[i])
		}
	}
	if got := Quantiles(nil, 0.5, 0.99); got[0] != 0 || got[1] != 0 {
		t.Fatalf("Quantiles(nil) = %v", got)
	}
	sorted := SortedCopy(xs)
	if QuantileSorted(sorted, 0.5) != 5 {
		t.Fatalf("QuantileSorted median = %v", QuantileSorted(sorted, 0.5))
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Fatal("QuantileSorted(nil) != 0")
	}
}

func TestSummarizeSortedEmpty(t *testing.T) {
	if s := SummarizeSorted(nil); s != (Summary{}) {
		t.Fatalf("empty summary %+v", s)
	}
}
