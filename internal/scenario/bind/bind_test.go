package bind

import (
	"encoding/json"
	"testing"
	"time"

	"dynatune/internal/cluster"
	"dynatune/internal/netsim"
	"dynatune/internal/scenario"
)

// TestSpecPathMatchesLegacyAPI pins the refactor's core invariant from
// the declarative side: a file-shaped spec realized by bind must produce
// byte-identical samples to the legacy cluster entry point it replaced
// (both route through the same engine, shard split, and seed derivation).
func TestSpecPathMatchesLegacyAPI(t *testing.T) {
	spec := scenario.Spec{
		Name:     "equivalence",
		Measure:  scenario.MeasureFailover,
		Topology: scenario.Topology{N: 5},
		Network:  scenario.Stable(100 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft"},
		Faults:   []scenario.Fault{{Kind: scenario.FaultPauseLeader}},
		Trials:   10, Seed: 31, Settle: scenario.Duration(3 * time.Second),
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	legacy := cluster.RunElectionTrials(cluster.Options{
		N: 5, Seed: 31, Variant: cluster.VariantRaft(),
		Profile: netsim.Constant(netsim.Params{RTT: 100 * time.Millisecond, Jitter: 2 * time.Millisecond}),
	}, 10, 3*time.Second)
	got, want := res.Failover, legacy
	if len(got.OTSMs) != len(want.OTSMs) || got.FailedTrials != want.FailedTrials {
		t.Fatalf("shape diverged: %d/%d vs %d/%d", len(got.OTSMs), got.FailedTrials, len(want.OTSMs), want.FailedTrials)
	}
	for i := range got.OTSMs {
		if got.OTSMs[i] != want.OTSMs[i] || got.DetectionMs[i] != want.DetectionMs[i] {
			t.Fatalf("sample %d diverged: %v/%v vs %v/%v",
				i, got.DetectionMs[i], got.OTSMs[i], want.DetectionMs[i], want.OTSMs[i])
		}
	}
	if got.MeanRandTimeoutMs != want.MeanRandTimeoutMs {
		t.Fatalf("randTO diverged: %v vs %v", got.MeanRandTimeoutMs, want.MeanRandTimeoutMs)
	}
}

// TestSpecFromJSONRuns exercises the file-driven path end to end: a spec
// decoded from JSON (as `dynabench scenario -file` would) runs on the
// engine and produces samples.
func TestSpecFromJSONRuns(t *testing.T) {
	raw := `{
	  "name": "json-elections",
	  "measure": "failover",
	  "topology": {"n": 5},
	  "network": {"segments": [{"start": "0s", "rtt": "100ms", "jitter": "2ms"}]},
	  "variant": {"name": "dynatune"},
	  "faults": [{"kind": "pause-leader"}],
	  "trials": 6, "seed": 33, "settle": "4s"
	}`
	var spec scenario.Spec
	if err := json.Unmarshal([]byte(raw), &spec); err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failover.OTSMs) < 5 {
		t.Fatalf("only %d/%d trials produced samples", len(res.Failover.OTSMs), spec.Trials)
	}
}

// Each named scenario beyond the paper gets a smoke run (scaled down) and
// a scenario-specific invariant, so the registry cannot rot.

func TestCascadingLeaderFailuresSmoke(t *testing.T) {
	spec := mustLookup(t, "cascading-leader-failures")
	res, err := Run(spec) // 60 s of sim time — already smoke-sized
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// Two overlapping leader freezes must force (at least) two elections
	// and visible OTS.
	if s.Elections < 2 {
		t.Fatalf("cascade produced %d elections, want >= 2", s.Elections)
	}
	if s.OTS.Total() <= 0 {
		t.Fatal("cascade produced no out-of-service time")
	}
}

func TestAsymPartitionAbdicationSmoke(t *testing.T) {
	spec := mustLookup(t, "asym-partition-abdication")
	spec.Trials = 8
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Failover
	if len(f.OTSMs) < 6 {
		t.Fatalf("only %d/%d asym trials succeeded", len(f.OTSMs), f.Trials)
	}
	det, ots := f.Summary()
	if ots.Mean <= det.Mean {
		t.Fatalf("OTS %.0f <= detection %.0f", ots.Mean, det.Mean)
	}
	// The deaf leader keeps heartbeating, so followers cannot detect until
	// check-quorum abdication — detection must be later than under a
	// symmetric cut of the same deployment.
	sym := spec
	sym.Faults = []scenario.Fault{{Kind: scenario.FaultPartitionLeader}}
	symRes, err := Run(sym)
	if err != nil {
		t.Fatal(err)
	}
	_, symOTS := symRes.Failover.Summary()
	if ots.Mean <= symOTS.Mean {
		t.Fatalf("asym OTS %.0fms not slower than symmetric %.0fms — abdication path not exercised",
			ots.Mean, symOTS.Mean)
	}
}

func TestRollingRestartUnderLoadSmoke(t *testing.T) {
	spec := mustLookup(t, "rolling-restart-under-load")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Ramp
	var completed int
	for _, p := range r.Points {
		completed += int(p.ThroughputRS * spec.Workload.StepDuration.D().Seconds())
	}
	offered := spec.Workload.StartRPS * spec.Workload.Steps * int(spec.Workload.StepDuration.D().Seconds())
	if completed < offered/2 {
		t.Fatalf("rolling restart collapsed throughput: %d of %d offered", completed, offered)
	}
	if completed >= offered {
		t.Fatalf("no visible restart impact: %d of %d offered", completed, offered)
	}
}

func TestWanFlapRampSmoke(t *testing.T) {
	spec := mustLookup(t, "wan-flap-ramp")
	spec.Workload.Steps = 2 // smoke-size the ramp
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardRamps) != 1 {
		t.Fatalf("reps: %d", len(res.ShardRamps))
	}
	r := res.ShardRamps[0]
	if r.Groups != 4 {
		t.Fatalf("groups: %d", r.Groups)
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed under the flapping WAN")
	}
	if r.AggThroughput <= 0 || r.P99Ms <= 0 {
		t.Fatalf("empty aggregates: %+v", r)
	}
}

func TestLossPulseDegradeSmoke(t *testing.T) {
	spec := mustLookup(t, "loss-pulse-degrade")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// The follower's tuner must have measured real loss inside the first
	// pulse (t=10s..18s) and seen none before it.
	before := s.MeasuredLossPct.MeanBetween(2*time.Second, 9*time.Second)
	during := s.MeasuredLossPct.MeanBetween(13*time.Second, 19*time.Second)
	if during < before+2 {
		t.Fatalf("loss pulse invisible to the tuner: before %.2f%% during %.2f%%", before, during)
	}
	// Adaptive h must keep the cluster stable: no elections.
	if s.Elections != 0 {
		t.Fatalf("loss pulse caused %d elections", s.Elections)
	}
}

func TestClockSkewFollowerSmoke(t *testing.T) {
	spec := mustLookup(t, "clock-skew-follower")
	res, err := Run(spec) // 60 s of sim time — already smoke-sized
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// The fast clock must visibly fire premature timeouts...
	if s.Timeouts == 0 {
		t.Fatal("skewed follower never timed out — the fault had no effect")
	}
	// ...and pre-vote + leader stickiness must absorb every one of them:
	// each campaign reverts on the next leader contact, no election, no
	// out-of-service time (the §IV-D NTP-error story).
	if s.Elections != 0 {
		t.Fatalf("clock skew forced %d elections", s.Elections)
	}
	if s.OTS.Total() != 0 {
		t.Fatalf("clock skew cost %.1fs of service", s.OTS.Total().Seconds())
	}
	if s.Reverts < s.Timeouts {
		t.Fatalf("%d timeouts but only %d reverts — campaigns escalated", s.Timeouts, s.Reverts)
	}
}

func TestSplitBrain23Smoke(t *testing.T) {
	spec := mustLookup(t, "split-brain-2-3")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// For this seed the initial leader lands in the minority {1,2}: the
	// majority must elect exactly one successor during the split, and the
	// heal must not trigger another election (the stale side submits to
	// the newer term instead of disrupting it).
	if s.Elections != 1 {
		t.Fatalf("split produced %d elections, want exactly 1 (majority successor)", s.Elections)
	}
	if s.Timeouts == 0 {
		t.Fatal("nobody detected the split")
	}
	// The double-commit half of this scenario's claim is asserted at the
	// store level in internal/cluster's TestSplitBrainNoDoubleCommit.
}

func TestPaperScenariosRealize(t *testing.T) {
	// Every registry entry must realize into an executable env (variant,
	// regions, profile all resolvable) without running the heavy ones.
	for _, name := range scenario.Names() {
		spec := mustLookup(t, name)
		if _, err := EnvFor(spec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunNamedUnknown(t *testing.T) {
	if _, err := RunNamed("no-such-scenario", 1); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestShardedTopologyDefaultsNodesPerGroupToN pins that {"n":5,"groups":2}
// means 2 groups of 5 — not shard's internal default of 3.
func TestShardedTopologyDefaultsNodesPerGroupToN(t *testing.T) {
	spec := scenario.Spec{
		Name:     "npg-default",
		Measure:  scenario.MeasureThroughput,
		Topology: scenario.Topology{N: 5, Groups: 2},
		Network:  scenario.Stable(20 * time.Millisecond),
		Variant:  scenario.VariantSpec{Name: "raft"},
		Workload: &scenario.Workload{StartRPS: 200, StepRPS: 0,
			StepDuration: scenario.Duration(time.Second), Steps: 1, Keys: 64},
		Seed: 5,
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := res.ShardRamps[0]
	if r.Groups != 2 {
		t.Fatalf("groups: %d", r.Groups)
	}
	if r.Completed == 0 {
		t.Fatal("nothing completed — 5-node groups never elected?")
	}
}

func TestVariantRealization(t *testing.T) {
	for _, tc := range []struct {
		in   scenario.VariantSpec
		want string
	}{
		{scenario.VariantSpec{Name: "raft"}, "Raft"},
		{scenario.VariantSpec{Name: "raft-low"}, "Raft-Low"},
		{scenario.VariantSpec{Name: "dynatune", Estimator: "ewma"}, "Dynatune"},
		{scenario.VariantSpec{Name: "dynatune-ext"}, "Dynatune-Ext"},
		{scenario.VariantSpec{Name: "fix-k", FixK: 10}, "Fix-K(10)"},
	} {
		v, err := Variant(tc.in)
		if err != nil {
			t.Fatalf("%+v: %v", tc.in, err)
		}
		if v.Name != tc.want {
			t.Fatalf("%+v -> %q, want %q", tc.in, v.Name, tc.want)
		}
	}
	if _, err := Variant(scenario.VariantSpec{Name: "nope"}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := Variant(scenario.VariantSpec{Name: "dynatune", Estimator: "nope"}); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestSummarizeCoversPayloads(t *testing.T) {
	spec := scenario.Spec{Name: "x", Variant: scenario.VariantSpec{Name: "raft"}}
	for _, res := range []*scenario.Result{
		{Spec: spec, Failover: &scenario.FailoverResult{Trials: 1, DetectionMs: []float64{1}, OTSMs: []float64{2},
			HandoverMs: []float64{3}, RetuneMs: []float64{4}}},
		{Spec: spec, Ramp: &scenario.RampResult{Points: []scenario.RampPoint{{OfferedRPS: 1, ThroughputRS: 2}}}},
		{Spec: spec, Reads: &scenario.ReadsResult{Issued: 1}},
		{Spec: spec, Membership: &scenario.MembershipResult{}},
		{Spec: spec, ShardRamps: []scenario.ShardRampResult{{Groups: 2}}},
	} {
		if s := Summarize(res); len(s) == 0 {
			t.Fatalf("empty summary for %+v", res)
		}
	}
}

func mustLookup(t *testing.T, name string) scenario.Spec {
	t.Helper()
	spec, ok := scenario.Lookup(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	return spec
}

// TestScaleOutUnderRampSmoke is the acceptance check for the live
// rebalance path: the move must relocate ≈1/(G+1) of the keyspace (within
// 20%), lose or double-apply nothing across the cutover, and record
// mid-move completions in the phase buckets.
func TestScaleOutUnderRampSmoke(t *testing.T) {
	spec := mustLookup(t, "scale-out-under-ramp")
	spec.Workload.Steps = 2 // smoke-size: 20s ramp, move fires at 12s
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardRamps) != 1 {
		t.Fatalf("reps: %d", len(res.ShardRamps))
	}
	r := res.ShardRamps[0]
	if r.Groups != 4 {
		t.Fatalf("groups after scale-out: %d, want 4", r.Groups)
	}
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if r.Lost != 0 || r.ProposeErrors != 0 {
		t.Fatalf("scale-out lost writes: lost=%d proposeErrors=%d", r.Lost, r.ProposeErrors)
	}
	if r.Pending != 0 {
		t.Fatalf("%d arrivals stranded", r.Pending)
	}
	rb := r.Rebalance
	if rb == nil || len(rb.Moves) != 1 {
		t.Fatalf("rebalance report missing: %+v", rb)
	}
	mv := rb.Moves[0]
	if mv.Kind != "add-group" || mv.Aborted {
		t.Fatalf("unexpected move: %+v", mv)
	}
	// Moved-key fraction within 20% of 1/(G+1) = 1/4.
	if mv.MovedFraction < 0.25*0.8 || mv.MovedFraction > 0.25*1.2 {
		t.Fatalf("moved fraction %.3f outside 1/4 ±20%%", mv.MovedFraction)
	}
	if rb.Mid.Completed == 0 {
		t.Fatal("no completions during the move — mid-move latency unmeasured")
	}
	if rb.Pre.Completed == 0 || rb.Post.Completed == 0 {
		t.Fatalf("phase buckets incomplete: pre=%d post=%d", rb.Pre.Completed, rb.Post.Completed)
	}
	if rb.Mid.P99Ms <= 0 {
		t.Fatal("mid-move p99 not recorded")
	}
}

func TestScaleInUnderRampSmoke(t *testing.T) {
	spec := mustLookup(t, "scale-in-under-ramp")
	spec.Workload.Steps = 2
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := res.ShardRamps[0]
	if r.Groups != 3 {
		t.Fatalf("groups after scale-in: %d, want 3", r.Groups)
	}
	if r.Lost != 0 || r.Pending != 0 {
		t.Fatalf("scale-in dropped traffic: lost=%d pending=%d", r.Lost, r.Pending)
	}
	rb := r.Rebalance
	if rb == nil || len(rb.Moves) != 1 || rb.Moves[0].Kind != "remove-group" || rb.Moves[0].Aborted {
		t.Fatalf("rebalance report: %+v", rb)
	}
	if f := rb.Moves[0].MovedFraction; f < 0.25*0.8 || f > 0.25*1.2 {
		t.Fatalf("moved fraction %.3f outside 1/4 ±20%%", f)
	}
	if rb.Mid.Completed == 0 {
		t.Fatal("no completions during the move")
	}
}

// TestFollowerCatchupSnapshotSmoke runs the compaction × crash registry
// scenario at smoke size: the snapshot policy must keep every group's
// live log bounded even while a crashed node is down long enough for its
// successor to compact past it, and the restarted node must converge
// (snapshot catch-up) with the invariant suite green.
func TestFollowerCatchupSnapshotSmoke(t *testing.T) {
	spec := mustLookup(t, "follower-catchup-snapshot")
	spec.Workload.Steps = 3 // 30s ramp covers crash at 8s + restart at 20s + catch-up
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardRamps) != 1 {
		t.Fatalf("reps: %d", len(res.ShardRamps))
	}
	r := res.ShardRamps[0]
	if r.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if r.Lost != 0 {
		t.Fatalf("lost %d acked writes across the crash", r.Lost)
	}
	inv := r.Invariants
	if inv == nil {
		t.Fatal("invariant suite not armed")
	}
	if !inv.OK() {
		t.Fatalf("invariant violations: %+v", inv.Violations)
	}
	// The policy (every 512, retain 64) must bound the worst replica's
	// live log regardless of ramp length; 2× the threshold allows one
	// trigger's worth of slack between applies.
	if r.MaxLogEntries == 0 {
		t.Fatal("log sampler recorded nothing")
	}
	if r.MaxLogEntries > 1024 {
		t.Fatalf("live log reached %d entries; policy (512, retain 64) did not bound it", r.MaxLogEntries)
	}
}

// TestScaleOutDeterministicAcrossWorkers: the migration rides the shared
// engine, so a rebalancing run must be identical for any trial-runner
// worker count — the contract every report above it depends on.
func TestScaleOutDeterministicAcrossWorkers(t *testing.T) {
	spec := mustLookup(t, "scale-out-under-ramp")
	spec.Workload.Steps = 2
	spec.Reps = 2 // two independent engines, fanned across workers
	run := func(workers int) *scenario.Result {
		res, err := RunWorkers(spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	ja, err := json.Marshal(a.ShardRamps)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.ShardRamps)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("scale-out diverged across worker counts:\n1: %s\n8: %s", ja, jb)
	}
}

func TestParetoMiddleboxSmoke(t *testing.T) {
	spec := mustLookup(t, "pareto-middlebox")
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	// The heavy tail must be visible to the protocol: premature timeouts
	// (stragglers exceeding the tuned timeout) with no permanent outage.
	if s.Timeouts == 0 {
		t.Fatal("pareto stragglers never fired a timeout — the tail is invisible")
	}
	if s.OTS.Total() > 10*time.Second {
		t.Fatalf("middlebox pulse cost %.1fs of service — worse than a crash", s.OTS.Total().Seconds())
	}
}
