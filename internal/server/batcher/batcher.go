// Package batcher implements server-side group commit for the real
// serving path: a propose batcher that coalesces concurrent client
// commands arriving within a short window (or up to an op/byte cap) into
// one multi-op raft entry, plus the shared commit-waiter machinery — a
// resolve-once Waiter and a deadline heap driven by a single reused
// timer — that replaces the per-request `time.After` allocation on every
// propose and linearizable read.
//
// The batcher itself is runtime-agnostic: it hands finished batches to a
// Flush callback and never touches the raft node, so it is testable
// without a cluster and reusable by any front that funnels commands into
// a single propose loop.
package batcher

import (
	"sync"
	"time"

	"dynatune/internal/kv"
)

// DefaultWindow mirrors the wireclient write-coalescing window: long
// enough that concurrent puts on a loaded server share an entry, short
// enough to be invisible next to a replication round trip.
const DefaultWindow = 200 * time.Microsecond

// Defaults for the batch caps.
const (
	DefaultMaxOps   = 128
	DefaultMaxBytes = 256 << 10
)

// FlushReason says why a batch left the accumulator.
type FlushReason uint8

const (
	// FlushWindow: the coalescing window expired.
	FlushWindow FlushReason = iota
	// FlushOps: the op-count cap filled.
	FlushOps
	// FlushBytes: the byte cap filled.
	FlushBytes
	// FlushDrain: the batcher is shutting down or aborting.
	FlushDrain
)

func (r FlushReason) String() string {
	switch r {
	case FlushWindow:
		return "window"
	case FlushOps:
		return "ops"
	case FlushBytes:
		return "bytes"
	case FlushDrain:
		return "drain"
	default:
		return "unknown"
	}
}

// Op is one queued proposal: the command plus the waiter its client
// blocks on.
type Op struct {
	Cmd kv.Command
	W   *Waiter
}

// Config tunes a Batcher.
type Config struct {
	// Window is the coalescing window (default DefaultWindow).
	Window time.Duration
	// MaxOps flushes a batch early at this many ops (default 128).
	MaxOps int
	// MaxBytes flushes early once the encoded payload estimate passes
	// this (default 256 KiB) — a batch must stay well under the wire
	// frame cap.
	MaxBytes int
	// Flush receives each finished batch. It is called WITHOUT the
	// batcher lock, from the caller that tripped a cap, the window
	// timer's goroutine, or Drain.
	Flush func(ops []Op, reason FlushReason)
}

// Stats counts batching activity. Snapshot via Batcher.Stats.
type Stats struct {
	Ops         uint64 `json:"ops"`     // commands accepted
	Batches     uint64 `json:"batches"` // flushes
	MaxDepth    int    `json:"max_depth"`
	FlushWindow uint64 `json:"flush_window"`
	FlushOps    uint64 `json:"flush_ops"`
	FlushBytes  uint64 `json:"flush_bytes"`
	FlushDrain  uint64 `json:"flush_drain"`
}

// MeanDepth is ops per batch.
func (s Stats) MeanDepth() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Batches)
}

// Batcher accumulates ops and flushes them as batches. Safe for
// concurrent Add from many client goroutines.
type Batcher struct {
	cfg Config

	mu        sync.Mutex
	ops       []Op
	bytes     int
	armed     bool
	closed    bool
	closedErr error
	stats     Stats

	// timer is the ONE reused flush timer: armed when the first op of a
	// batch arrives, consumed or left to fire harmlessly when a cap
	// flushes first. No per-request timer allocation anywhere.
	timer *time.Timer
}

// New builds a Batcher. cfg.Flush must be set.
func New(cfg Config) *Batcher {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = DefaultMaxOps
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.Flush == nil {
		panic("batcher: Config.Flush is required")
	}
	b := &Batcher{cfg: cfg}
	b.timer = time.AfterFunc(time.Hour, b.onWindow)
	b.timer.Stop()
	return b
}

// opBytes estimates c's encoded footprint inside a batch payload.
func opBytes(c kv.Command) int {
	return 4 + 1 + 8 + 8 + 4 + len(c.Key) + 4 + len(c.Value)
}

// Add queues cmd. The op flushes with its batch when the window expires
// or a cap fills — whichever comes first. After Close, w resolves
// immediately with errClosed from Drain's error.
func (b *Batcher) Add(cmd kv.Command, w *Waiter) {
	b.mu.Lock()
	if b.closed {
		err := b.closedErr
		b.mu.Unlock()
		w.Resolve(err)
		return
	}
	b.ops = append(b.ops, Op{Cmd: cmd, W: w})
	b.bytes += opBytes(cmd)
	b.stats.Ops++
	var (
		flush  []Op
		reason FlushReason
	)
	switch {
	case len(b.ops) >= b.cfg.MaxOps:
		flush, reason = b.take(), FlushOps
	case b.bytes >= b.cfg.MaxBytes:
		flush, reason = b.take(), FlushBytes
	case len(b.ops) == 1:
		// First op of a new batch: arm the window.
		b.armed = true
		b.timer.Reset(b.cfg.Window)
	}
	if flush != nil {
		b.note(flush, reason)
	}
	b.mu.Unlock()
	if flush != nil {
		b.cfg.Flush(flush, reason)
	}
}

// take detaches the accumulated batch (b.mu held).
func (b *Batcher) take() []Op {
	ops := b.ops
	b.ops = nil
	b.bytes = 0
	if b.armed {
		b.armed = false
		b.timer.Stop()
	}
	return ops
}

// note records a flush in the stats (b.mu held).
func (b *Batcher) note(ops []Op, reason FlushReason) {
	b.stats.Batches++
	if len(ops) > b.stats.MaxDepth {
		b.stats.MaxDepth = len(ops)
	}
	switch reason {
	case FlushWindow:
		b.stats.FlushWindow++
	case FlushOps:
		b.stats.FlushOps++
	case FlushBytes:
		b.stats.FlushBytes++
	case FlushDrain:
		b.stats.FlushDrain++
	}
}

// onWindow fires when the coalescing window expires.
func (b *Batcher) onWindow() {
	b.mu.Lock()
	if !b.armed || len(b.ops) == 0 {
		// A cap flush beat the timer (or a stale fire raced Stop).
		b.mu.Unlock()
		return
	}
	ops := b.take()
	b.note(ops, FlushWindow)
	b.mu.Unlock()
	b.cfg.Flush(ops, FlushWindow)
}

// Drain flushes whatever is queued and, when err is non-nil, closes the
// batcher: queued ops resolve with err instead of flushing, and later
// Adds resolve immediately with err. Drain with err == nil just forces
// the pending batch out (a barrier, not a shutdown).
func (b *Batcher) Drain(err error) {
	b.mu.Lock()
	ops := b.take()
	if err != nil {
		b.closed = true
		b.closedErr = err
	}
	if len(ops) > 0 {
		b.note(ops, FlushDrain)
	}
	b.mu.Unlock()
	if len(ops) == 0 {
		return
	}
	if err != nil {
		for _, op := range ops {
			op.W.Resolve(err)
		}
		return
	}
	b.cfg.Flush(ops, FlushDrain)
}

// Stats snapshots the counters.
func (b *Batcher) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
