package netsim

import (
	"testing"
	"time"

	"dynatune/internal/sim"
)

// newFaultNet builds a 4-node mesh recording deliveries per node.
func newFaultNet(t *testing.T) (*sim.Engine, *Network[int], *[4]int) {
	t.Helper()
	eng := sim.NewEngine(1)
	var got [4]int
	nw := New(eng, 4, Constant(Params{RTT: 2 * time.Millisecond}), func(to, msg int) {
		got[to]++
	})
	return eng, nw, &got
}

func sendAll(eng *sim.Engine, nw *Network[int]) {
	for from := 0; from < 4; from++ {
		for to := 0; to < 4; to++ {
			if from != to {
				nw.Send(from, to, UDP, 1)
			}
		}
	}
	eng.Run(eng.Now() + 10*time.Millisecond)
}

func TestSetNodeInboundIsAsymmetric(t *testing.T) {
	eng, nw, got := newFaultNet(t)
	nw.SetNodeInbound(0, true)
	sendAll(eng, nw)
	if got[0] != 0 {
		t.Fatalf("deaf node received %d", got[0])
	}
	// Node 0's outbound still works: every other node hears 3 peers.
	for i := 1; i < 4; i++ {
		if got[i] != 3 {
			t.Fatalf("node %d received %d, want 3 (node 0 still talking)", i, got[i])
		}
	}
	nw.SetNodeInbound(0, false)
	*got = [4]int{}
	sendAll(eng, nw)
	if got[0] != 3 {
		t.Fatalf("healed node received %d, want 3", got[0])
	}
}

func TestSetNodeOutboundIsAsymmetric(t *testing.T) {
	eng, nw, got := newFaultNet(t)
	nw.SetNodeOutbound(0, true)
	sendAll(eng, nw)
	if got[0] != 3 {
		t.Fatalf("mute node received %d, want 3 (inbound open)", got[0])
	}
	for i := 1; i < 4; i++ {
		if got[i] != 2 {
			t.Fatalf("node %d received %d, want 2 (node 0 muted)", i, got[i])
		}
	}
}

func TestPartitionGroupsCutsOnlyCrossLinks(t *testing.T) {
	eng, nw, got := newFaultNet(t)
	nw.PartitionGroups([]int{0, 1}, []int{2, 3}, true)
	sendAll(eng, nw)
	// Each node hears only its side's other member.
	for i := 0; i < 4; i++ {
		if got[i] != 1 {
			t.Fatalf("node %d received %d, want 1 (intra-side only)", i, got[i])
		}
	}
	nw.PartitionGroups([]int{0, 1}, []int{2, 3}, false)
	*got = [4]int{}
	sendAll(eng, nw)
	for i := 0; i < 4; i++ {
		if got[i] != 3 {
			t.Fatalf("node %d received %d after heal, want 3", i, got[i])
		}
	}
}

func TestProfileOfRoundTripsThroughSetProfile(t *testing.T) {
	_, nw, _ := newFaultNet(t)
	orig := nw.ProfileOf(0, 1)
	degraded := Constant(Params{RTT: 300 * time.Millisecond, Loss: 0.25})
	nw.SetAllProfiles(degraded)
	if got := nw.ProfileOf(0, 1).Segments[0].Params; got.Loss != 0.25 {
		t.Fatalf("degrade not installed: %+v", got)
	}
	nw.SetAllProfiles(orig)
	if got := nw.ProfileOf(0, 1).Segments[0].Params; got != orig.Segments[0].Params {
		t.Fatalf("restore mismatch: %+v vs %+v", got, orig.Segments[0].Params)
	}
}
