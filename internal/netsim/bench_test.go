package netsim

import (
	"testing"
	"time"

	"dynatune/internal/sim"
)

// BenchmarkUDPSendDeliver measures the full simulated packet lifecycle.
func BenchmarkUDPSendDeliver(b *testing.B) {
	eng := sim.NewEngine(1)
	delivered := 0
	nw := New(eng, 2, Constant(Params{RTT: time.Millisecond, Jitter: 100 * time.Microsecond}),
		func(to, msg int) { delivered++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(0, 1, UDP, i)
		eng.Run(eng.Now() + 2*time.Millisecond)
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkTCPSendDeliver measures the reliable in-order path with loss.
func BenchmarkTCPSendDeliver(b *testing.B) {
	eng := sim.NewEngine(1)
	delivered := 0
	nw := New(eng, 2, Constant(Params{RTT: time.Millisecond, Loss: 0.05}),
		func(to, msg int) { delivered++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Send(0, 1, TCP, i)
		eng.Run(eng.Now() + 2*time.Millisecond)
	}
	// Drain in-flight retransmissions before asserting reliability.
	eng.Run(eng.Now() + time.Second)
	if delivered != b.N {
		b.Fatalf("delivered %d of %d", delivered, b.N)
	}
}

// BenchmarkProfileAt measures schedule lookup on a long tc-style profile.
func BenchmarkProfileAt(b *testing.B) {
	p := GradualRTTRamp(Params{}, 50*time.Millisecond, 200*time.Millisecond, time.Millisecond, time.Second)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.At(time.Duration(i%300) * time.Second)
	}
}
